(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section side by side with the published numbers, then times
   the computational kernels with bechamel.

     dune exec bench/main.exe                 (default: Table V up to 10K sinks)
     CONTANGO_BENCH_FULL=1 dune exec bench/main.exe   (adds the 20K/50K rows)
     CONTANGO_BENCH_QUICK=1 dune exec bench/main.exe  (Table V up to 2K, no kernels)

   Artifacts (SVGs) land in bench_out/. *)

open Geometry
module Ev = Analysis.Evaluator

let full = Sys.getenv_opt "CONTANGO_BENCH_FULL" <> None
let quick = Sys.getenv_opt "CONTANGO_BENCH_QUICK" <> None

(* CONTANGO_BENCH_EVAL=1: run only the evaluator-kernel benchmark and the
   incremental-vs-seed flow comparison (writes evaluator_bench.json). *)
let eval_only = Sys.getenv_opt "CONTANGO_BENCH_EVAL" <> None

(* CONTANGO_BENCH_PASSES=1: run only the pass-level speculation benchmark
   (legacy copy-based loop vs journaled speculative search; writes
   pass_bench.json). *)
let passes_only = Sys.getenv_opt "CONTANGO_BENCH_PASSES" <> None

(* CONTANGO_BENCH_KERNEL=1: run only the flat-arena streaming kernel vs
   boxed reference throughput benchmark (writes kernel_bench.json with a
   top-level speedup_100k field — the CI throughput-regression guard). *)
let kernel_only = Sys.getenv_opt "CONTANGO_BENCH_KERNEL" <> None

(* CONTANGO_BENCH_REGION=1: run only the regional-vs-monolithic flow
   benchmark at ti:20000 (writes region_bench.json with a top-level
   speedup field — the CI regional-performance guard). *)
let region_only = Sys.getenv_opt "CONTANGO_BENCH_REGION" <> None

(* CONTANGO_BENCH_SERVE=1: run only the serve-daemon benchmark — sustained
   concurrent request throughput against an in-process daemon plus the
   cross-request cache-hit rate. Writes bench_out/serve_bench.json. *)
let serve_only = Sys.getenv_opt "CONTANGO_BENCH_SERVE" <> None

(* CONTANGO_BENCH_SURROGATE=1: run only the surrogate-ranking benchmark —
   the Table V family with surrogate ranking off vs on (eval counts and
   final-quality deltas) plus a sequential Pareto sweep measuring the
   cross-point store hit rate. Writes bench_out/surrogate_bench.json;
   CI gates on reduction_pct, accuracy_ok and pareto.hit_rate. *)
let surrogate_only = Sys.getenv_opt "CONTANGO_BENCH_SURROGATE" <> None
let out_dir = "bench_out"

let fmt = Suite.Report.fmt

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table I: composite inverter analysis                                 *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I — inverter analysis (paper values are exact inputs)";
  let rows =
    List.map
      (fun (name, cin, cout, r) ->
        let composite =
          match name with
          | "1X Large" -> Tech.Composite.make Tech.Device.large_inverter 1
          | "1X Small" -> Tech.Composite.make Tech.Device.small_inverter 1
          | "2X Small" -> Tech.Composite.make Tech.Device.small_inverter 2
          | "4X Small" -> Tech.Composite.make Tech.Device.small_inverter 4
          | _ -> Tech.Composite.make Tech.Device.small_inverter 8
        in
        [ name; fmt ~decimals:1 cin; fmt ~decimals:1 cout; fmt ~decimals:1 r;
          fmt ~decimals:1 (Tech.Composite.c_in composite);
          fmt ~decimals:1 (Tech.Composite.c_out composite);
          fmt ~decimals:1 (Tech.Composite.r_out composite) ])
      Suite.Report.paper_table1
  in
  print_string
    (Suite.Report.table
       ~title:"(paper: input cap / output cap / output res; ours: computed composite)"
       ~header:[ "type"; "cin"; "cout"; "res"; "cin*"; "cout*"; "res*" ]
       rows);
  (* The §IV-B point: the non-dominated frontier prefers parallel smalls. *)
  let frontier =
    Tech.Composite.non_dominated
      (Tech.Composite.enumerate
         [ Tech.Device.small_inverter; Tech.Device.large_inverter ]
         ~max_count:8)
  in
  Printf.printf "non-dominated frontier (counts <= 8): %s\n"
    (String.concat ", " (List.map Tech.Composite.name frontier))

(* ------------------------------------------------------------------ *)
(* Tables II, III, IV share the per-benchmark flow runs                *)
(* ------------------------------------------------------------------ *)

type bench_result = {
  bench : Suite.Format_io.t;
  flow : Core.Flow.result;
  baseline : Suite.Baseline.result;
}

let run_benchmarks () =
  List.map
    (fun name ->
      let bench = Suite.Gen_ispd.generate name in
      Printf.printf "  running %s (%d sinks, %d obstacles)...%!" name
        (Array.length bench.Suite.Format_io.sinks)
        (List.length bench.Suite.Format_io.obstacles);
      let flow =
        Core.Flow.run ~tech:bench.Suite.Format_io.tech
          ~source:bench.Suite.Format_io.source
          ~obstacles:bench.Suite.Format_io.obstacles bench.Suite.Format_io.sinks
      in
      let baseline = Suite.Baseline.run bench in
      Printf.printf " skew %.2f ps, CLR %.2f ps, %.1f s\n%!"
        flow.Core.Flow.final.Ev.skew flow.Core.Flow.final.Ev.clr
        flow.Core.Flow.seconds;
      { bench; flow; baseline })
    Suite.Gen_ispd.names

let table2 results =
  section "Table II — inverted sinks vs. polarity-correcting inverters";
  let rows =
    List.map
      (fun r ->
        let name = r.bench.Suite.Format_io.name in
        let inv, added = List.assoc name Suite.Report.paper_table2 in
        [ name;
          string_of_int inv; string_of_int added;
          string_of_int r.flow.Core.Flow.polarity.Core.Polarity.inverted_before;
          string_of_int r.flow.Core.Flow.polarity.Core.Polarity.added ])
      results
  in
  print_string
    (Suite.Report.table
       ~title:"(inverted sinks after insertion -> inverters added by the minimal algorithm)"
       ~header:[ "bench"; "inv(paper)"; "add(paper)"; "inv(ours)"; "add(ours)" ]
       rows)

let table3 results =
  section "Table III — progress of individual flow steps (CLR / skew, ps)";
  let step_of (e : Core.Flow.trace_entry) = Core.Flow.step_name e.Core.Flow.step in
  let header =
    "step"
    :: List.concat_map
         (fun r ->
           let n = r.bench.Suite.Format_io.name in
           let short = String.sub n 6 (String.length n - 6) in
           [ short ^ " CLR"; "skew" ])
         results
  in
  let paper_rows =
    List.map
      (fun (step, vals) ->
        (step ^ "(p)")
        :: List.concat_map
             (fun (clr, skew) -> [ fmt ~decimals:1 clr; fmt ~decimals:2 skew ])
             vals)
      Suite.Report.paper_table3
  in
  let our_rows =
    List.map
      (fun step_name ->
        step_name
        :: List.concat_map
             (fun r ->
               let e =
                 List.find
                   (fun e -> step_of e = step_name)
                   r.flow.Core.Flow.trace
               in
               [ fmt ~decimals:1 e.Core.Flow.clr; fmt ~decimals:2 e.Core.Flow.skew ])
             results)
      [ "INITIAL"; "TBSZ"; "TWSZ"; "TWSN"; "BWSN" ]
  in
  let interleaved =
    List.concat (List.map2 (fun a b -> [ a; b ]) paper_rows our_rows)
  in
  print_string (Suite.Report.table ~title:"((p) = paper row)" ~header interleaved)

let table4 results =
  section "Table IV — final results vs. contest teams (CLR ps / cap % / CPU s)";
  let header =
    [ "bench"; "ours CLR"; "cap%"; "s"; "greedy CLR"; "paper CLR"; "NTU";
      "NCTU"; "UMich" ]
  in
  let rows =
    List.map
      (fun r ->
        let name = r.bench.Suite.Format_io.name in
        let cap_pct =
          100. *. r.flow.Core.Flow.final.Ev.stats.Ctree.Stats.total_cap
          /. r.bench.Suite.Format_io.tech.Tech.cap_limit
        in
        let paper = List.assoc name Suite.Report.paper_table4 in
        let team i =
          match List.nth paper i with
          | Some (clr, _, _) -> fmt ~decimals:1 clr
          | None -> "fail"
        in
        [ name;
          fmt ~decimals:2 r.flow.Core.Flow.final.Ev.clr;
          fmt ~decimals:1 cap_pct;
          fmt ~decimals:1 r.flow.Core.Flow.seconds;
          fmt ~decimals:1 r.baseline.Suite.Baseline.eval.Ev.clr;
          team 0; team 1; team 2; team 3 ])
      results
  in
  print_string (Suite.Report.table ~title:"" ~header rows);
  let avg f =
    List.fold_left (fun a r -> a +. f r) 0. results
    /. float_of_int (List.length results)
  in
  let ours = avg (fun r -> r.flow.Core.Flow.final.Ev.clr) in
  let greedy = avg (fun r -> r.baseline.Suite.Baseline.eval.Ev.clr) in
  Printf.printf
    "average CLR: ours %.2f ps, greedy baseline %.2f ps -> %.2fx improvement\n\
     (paper: Contango 14.65 ps, beating NTU 2.15x, NCTU 3.99x, U.Michigan 2.35x)\n"
    ours greedy (greedy /. ours);
  let skews = List.map (fun r -> r.flow.Core.Flow.final.Ev.skew) results in
  Printf.printf "final skews (ps): %s  (paper: 2.2-4.6 ps, avg 3.21 ps)\n"
    (String.concat ", " (List.map (fmt ~decimals:2) skews))

(* ------------------------------------------------------------------ *)
(* Table V: scalability on TI-style benchmarks                          *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section "Table V — scalability (TI-style die, moment-matching engine)";
  let json_rows = ref [] in
  let total_evals = ref 0 in
  let sizes =
    if quick then [ 200; 500; 1_000; 2_000 ]
    else if full then Suite.Gen_ti.family
    else [ 200; 500; 1_000; 2_000; 5_000; 10_000 ]
  in
  let config = Core.Config.scalability in
  let header =
    [ "sinks"; "CLR"; "skew"; "latency"; "cap pF"; "s"; "evals";
      "CLR(p)"; "skew(p)"; "lat(p)"; "cap(p)"; "runs(p)" ]
  in
  let rows =
    List.map
      (fun n ->
        Printf.printf "  running ti%d...%!" n;
        let b = Suite.Gen_ti.generate n in
        let r =
          Core.Flow.run ~config ~tech:b.Suite.Format_io.tech
            ~source:b.Suite.Format_io.source b.Suite.Format_io.sinks
        in
        Printf.printf " %.1f s\n%!" r.Core.Flow.seconds;
        total_evals := !total_evals + r.Core.Flow.eval_runs;
        let final = r.Core.Flow.final in
        json_rows :=
          Suite.Report.Json.Obj
            [
              ("sinks", Suite.Report.Json.Num (float_of_int n));
              ("skew_ps", Suite.Report.Json.Num final.Ev.skew);
              ("clr_ps", Suite.Report.Json.Num final.Ev.clr);
              ("latency_ps", Suite.Report.Json.Num final.Ev.t_max);
              ("cap_pf",
               Suite.Report.Json.Num
                 (final.Ev.stats.Ctree.Stats.total_cap /. 1000.));
              ("seconds", Suite.Report.Json.Num r.Core.Flow.seconds);
              ("eval_runs",
               Suite.Report.Json.Num (float_of_int r.Core.Flow.eval_runs));
            ]
          :: !json_rows;
        let _, pclr, pskew, plat, pcap, _, pruns =
          List.find (fun (m, _, _, _, _, _, _) -> m = n) Suite.Report.paper_table5
        in
        [ string_of_int n;
          fmt ~decimals:2 final.Ev.clr;
          fmt ~decimals:3 final.Ev.skew;
          fmt ~decimals:1 final.Ev.t_max;
          fmt ~decimals:1 (final.Ev.stats.Ctree.Stats.total_cap /. 1000.);
          fmt ~decimals:1 r.Core.Flow.seconds;
          string_of_int r.Core.Flow.eval_runs;
          fmt ~decimals:2 pclr; fmt ~decimals:3 pskew; fmt ~decimals:1 plat;
          fmt ~decimals:1 pcap; string_of_int pruns ])
      sizes
  in
  print_string
    (Suite.Report.table
       ~title:"(ours measured | paper columns suffixed (p); paper runtime was HSPICE-bound)"
       ~header rows);
  if not full then
    print_endline "set CONTANGO_BENCH_FULL=1 for the 20K and 50K rows";
  (List.rev !json_rows, !total_evals)

(* Machine-readable record of the measured results. *)
let write_json results table5_rows =
  let open Suite.Report.Json in
  let flow_json r =
    Obj
      [
        ("name", Str r.bench.Suite.Format_io.name);
        ("sinks", Num (float_of_int (Array.length r.bench.Suite.Format_io.sinks)));
        ("final_skew_ps", Num r.flow.Core.Flow.final.Ev.skew);
        ("final_clr_ps", Num r.flow.Core.Flow.final.Ev.clr);
        ("cap_pct",
         Num
           (100. *. r.flow.Core.Flow.final.Ev.stats.Ctree.Stats.total_cap
            /. r.bench.Suite.Format_io.tech.Tech.cap_limit));
        ("seconds", Num r.flow.Core.Flow.seconds);
        ("eval_runs", Num (float_of_int r.flow.Core.Flow.eval_runs));
        ("baseline_clr_ps", Num r.baseline.Suite.Baseline.eval.Ev.clr);
        ("inverted_sinks",
         Num (float_of_int r.flow.Core.Flow.polarity.Core.Polarity.inverted_before));
        ("polarity_inverters_added",
         Num (float_of_int r.flow.Core.Flow.polarity.Core.Polarity.added));
        ("trace",
         List
           (List.map
              (fun (e : Core.Flow.trace_entry) ->
                Obj
                  [
                    ("step", Str (Core.Flow.step_name e.Core.Flow.step));
                    ("skew_ps", Num e.Core.Flow.skew);
                    ("clr_ps", Num e.Core.Flow.clr);
                  ])
              r.flow.Core.Flow.trace));
      ]
  in
  let json =
    Obj
      [
        ("ispd09", List (List.map flow_json results));
        ("scalability", List table5_rows);
      ]
  in
  let path = Filename.concat out_dir "results.json" in
  Core.Persist.write_atomic path (to_string json);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Evaluator kernels: from-scratch vs incremental vs parallel           *)
(* ------------------------------------------------------------------ *)

let time_runs reps f =
  let t0 = Core.Monoclock.now () in
  for _ = 1 to reps do
    f ()
  done;
  (Core.Monoclock.now () -. t0) /. float_of_int reps

(* Accuracy-vs-speed sweep of the adaptive transient kernel on ZST-built
   (skew-balanced, unbuffered) stages: the realistic clock-stage shape,
   where threshold crossings cluster into a few narrow bands and the
   multi-rate march can skip the long flat stretches. The fixed-fine-step
   march is the accuracy reference. *)
let transient_kernel_rows () =
  section "Transient kernel — fixed-step vs adaptive multi-rate";
  let open Suite.Report.Json in
  let module Tr = Analysis.Transient in
  let sizes = if quick then [ 200; 1_000 ] else [ 200; 500; 1_000 ] in
  List.map
    (fun n ->
      let b = Suite.Gen_ti.generate n in
      let tech = b.Suite.Format_io.tech in
      let tree =
        Dme.Zst.build ~tech ~source:b.Suite.Format_io.source
          b.Suite.Format_io.sinks
      in
      let stage = List.hd (Analysis.Rcnet.stages ~seg_len:60_000 tree) in
      let rc = stage.Analysis.Rcnet.rc in
      let r_drv = tech.Tech.source_r and s_drv = tech.Tech.source_slew in
      let ws = Tr.workspace () and fcache = Tr.Fcache.create () in
      let solve mode = Tr.solve ~mode ~fcache ~ws rc ~r_drv ~s_drv in
      let reps = if n >= 1_000 then 3 else 5 in
      let reference = solve Tr.Fixed in
      let t_fixed = time_runs reps (fun () -> ignore (solve Tr.Fixed)) in
      Printf.printf "  %6d sinks (%6d nodes) %-11s %9.2f ms  (reference)\n%!"
        n rc.Analysis.Rcnet.size "fixed" (t_fixed *. 1e3);
      let mode_row (label, mode) =
        let res = solve mode in
        let dmax = ref 0. and smax = ref 0. in
        Array.iteri
          (fun k (d, s) ->
            let d0, s0 = reference.(k) in
            if Float.is_finite d0 || Float.is_finite d then begin
              dmax := Float.max !dmax (Float.abs (d -. d0));
              smax := Float.max !smax (Float.abs (s -. s0))
            end)
          res;
        let t = time_runs reps (fun () -> ignore (solve mode)) in
        let m =
          Tr.simulate ~mode ~fcache ~ws rc ~r_drv ~s_drv
            ~watch:(Array.map fst rc.Analysis.Rcnet.taps)
            ~on_cross:(fun _ _ _ -> ())
        in
        Printf.printf
          "  %6d sinks %-21s %9.2f ms (%5.2fx)  err d %7.4f / s %7.4f ps  \
           solves %d of %d\n%!"
          n label (t *. 1e3) (t_fixed /. t) !dmax !smax m.Tr.solves
          m.Tr.fine_equiv;
        Obj
          [
            ("mode", Str label);
            ("ms", Num (t *. 1e3));
            ("speedup", Num (t_fixed /. t));
            ("max_delay_err_ps", Num !dmax);
            ("max_slew_err_ps", Num !smax);
            ("solves", Num (float_of_int m.Tr.solves));
            ("fine_equiv", Num (float_of_int m.Tr.fine_equiv));
            ("truncated", Num (if m.Tr.truncated then 1. else 0.));
          ]
      in
      let mode_rows =
        List.map mode_row
          [
            ("adaptive8", Tr.Adaptive { mult = 8 });
            ("adaptive16", Tr.Adaptive { mult = 16 });
            ("adaptive32", Tr.Adaptive { mult = 32 });
            ("auto (default)", Tr.Auto { max_mult = 32 });
          ]
      in
      Obj
        [
          ("sinks", Num (float_of_int n));
          ("nodes", Num (float_of_int rc.Analysis.Rcnet.size));
          ("fixed_ms", Num (t_fixed *. 1e3));
          ("modes", List mode_rows);
        ])
    sizes

let evaluator_bench () =
  let transient_rows = transient_kernel_rows () in
  section "Evaluator kernels — from-scratch vs incremental vs parallel";
  let open Suite.Report.Json in
  let config = Core.Config.scalability in
  let engine = config.Core.Config.engine in
  let seg_len = config.Core.Config.seg_len in
  let sizes = if quick then [ 200; 500; 1_000 ] else [ 200; 500; 1_000; 2_000 ] in
  let kernel_rows =
    List.map
      (fun n ->
        let b = Suite.Gen_ti.generate n in
        let tree, _, _, _ =
          Core.Flow.initial_tree ~config ~tech:b.Suite.Format_io.tech
            ~source:b.Suite.Format_io.source b.Suite.Format_io.sinks
        in
        let reps = if n >= 2_000 then 3 else 5 in
        let t_scratch =
          time_runs reps (fun () -> ignore (Ev.evaluate ~engine ~seg_len tree))
        in
        (* A localized edit per repetition (distinct snake each time so the
           whole-result memo cannot short-circuit): the incremental session
           re-solves only the touched stage. *)
        let victim =
          let sinks = Ctree.Tree.sinks tree in
          sinks.(Array.length sinks / 2)
        in
        let bench_session parallel =
          let session =
            Ev.Incremental.create ~engine ~seg_len ~parallel tree
          in
          ignore (Ev.Incremental.refresh session);
          let rep = ref 0 in
          time_runs reps (fun () ->
              incr rep;
              Ctree.Tree.set_snake tree victim (!rep * 200);
              ignore (Ev.Incremental.refresh session))
        in
        let t_incr = bench_session false in
        let t_par = bench_session true in
        Printf.printf
          "  %6d sinks: scratch %8.2f ms | incremental %8.2f ms (%5.1fx) | parallel %8.2f ms\n%!"
          n (t_scratch *. 1e3) (t_incr *. 1e3) (t_scratch /. t_incr)
          (t_par *. 1e3);
        Obj
          [
            ("sinks", Num (float_of_int n));
            ("scratch_ms", Num (t_scratch *. 1e3));
            ("incremental_ms", Num (t_incr *. 1e3));
            ("parallel_ms", Num (t_par *. 1e3));
            ("kernel_speedup", Num (t_scratch /. t_incr));
          ])
      sizes
  in
  (* Full-flow comparison on the 2K-sink benchmark: seed evaluator (no
     session) vs incremental session. Results must be identical — only
     wall-clock may differ. *)
  section "Flow comparison — 2K sinks, seed evaluator vs incremental session";
  let flow_n = if quick then 1_000 else 2_000 in
  let b = Suite.Gen_ti.generate flow_n in
  let run_flow incremental =
    let config = { config with Core.Config.incremental } in
    Core.Flow.run ~config ~tech:b.Suite.Format_io.tech
      ~source:b.Suite.Format_io.source b.Suite.Format_io.sinks
  in
  Printf.printf "  running ti%d with the seed evaluator...\n%!" flow_n;
  let seed_run = run_flow false in
  Printf.printf "    %.1f s, skew %.3f ps, %d evals\n%!"
    seed_run.Core.Flow.seconds seed_run.Core.Flow.final.Ev.skew
    seed_run.Core.Flow.eval_runs;
  Printf.printf "  running ti%d with the incremental session...\n%!" flow_n;
  let inc_run = run_flow true in
  (* Trace counters are per-step deltas; session totals are their sum. *)
  let sum f =
    List.fold_left (fun acc e -> acc + f e) 0 inc_run.Core.Flow.trace
  in
  let cache_hits = sum (fun e -> e.Core.Flow.cache_hits) in
  let cache_misses = sum (fun e -> e.Core.Flow.cache_misses) in
  let kernel_solves = sum (fun e -> e.Core.Flow.kernel_solves) in
  let kernel_saved = sum (fun e -> e.Core.Flow.kernel_saved) in
  let kernel_truncations = sum (fun e -> e.Core.Flow.kernel_truncations) in
  Printf.printf
    "    %.1f s, skew %.3f ps, %d evals, cache %d hits / %d misses\n%!"
    inc_run.Core.Flow.seconds inc_run.Core.Flow.final.Ev.skew
    inc_run.Core.Flow.eval_runs cache_hits cache_misses;
  List.iter2
    (fun (s : Core.Flow.trace_entry) (i : Core.Flow.trace_entry) ->
      Printf.printf "      %-8s seed %5.2f s | incremental %5.2f s\n"
        (Core.Flow.step_name i.Core.Flow.step) s.Core.Flow.step_seconds
        i.Core.Flow.step_seconds)
    seed_run.Core.Flow.trace inc_run.Core.Flow.trace;
  let skew_delta =
    Float.abs
      (seed_run.Core.Flow.final.Ev.skew -. inc_run.Core.Flow.final.Ev.skew)
  in
  let speedup = seed_run.Core.Flow.seconds /. inc_run.Core.Flow.seconds in
  Printf.printf "  flow speedup %.2fx, |skew delta| = %.3g ps%s\n" speedup
    skew_delta
    (if skew_delta > 1e-9 then "  ** RESULTS DIVERGED **" else "");
  let json =
    Obj
      [
        ("transient_kernel", List transient_rows);
        ("kernels", List kernel_rows);
        ("flow",
         Obj
           [
             ("sinks", Num (float_of_int flow_n));
             ("seed_seconds", Num seed_run.Core.Flow.seconds);
             ("incremental_seconds", Num inc_run.Core.Flow.seconds);
             ("speedup", Num speedup);
             ("skew_delta_ps", Num skew_delta);
             ("seed_skew_ps", Num seed_run.Core.Flow.final.Ev.skew);
             ("incremental_skew_ps", Num inc_run.Core.Flow.final.Ev.skew);
             ("eval_runs", Num (float_of_int inc_run.Core.Flow.eval_runs));
             ("cache_hits", Num (float_of_int cache_hits));
             ("cache_misses", Num (float_of_int cache_misses));
             ("kernel_solves", Num (float_of_int kernel_solves));
             ("kernel_saved", Num (float_of_int kernel_saved));
             ("kernel_truncations", Num (float_of_int kernel_truncations));
           ]);
      ]
  in
  let path = Filename.concat out_dir "evaluator_bench.json" in
  Core.Persist.write_atomic path (to_string json);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Flat-arena streaming kernel (CONTANGO_BENCH_KERNEL=1)                *)
(* ------------------------------------------------------------------ *)

(* Throughput of the streaming flat kernel against the boxed reference on
   single-stage ZST trees, inflated to the 10K/50K/100K+ RC-node range by
   finer segmentation. Fixed-mode marches measure the raw sweep kernel —
   every step solves the whole tree, so nodes/sec is size × solves / time
   — and the default Auto mode shows the production-shaped gain on top.
   Both kernels march through the shared multi-rate controller, so the
   Fixed solve counts are identical by construction and the accuracy
   columns must agree to well under 1e-9 ps. *)
let kernel_bench () =
  section "Flat-arena kernel — boxed reference vs streaming flat";
  let open Suite.Report.Json in
  let module Tr = Analysis.Transient in
  let module Rcf = Analysis.Rcflat in
  let configs = [ (500, 6_000); (2_000, 5_000); (4_000, 3_500) ] in
  let rows =
    List.map
      (fun (nsinks, seg_len) ->
        let b = Suite.Gen_ti.generate nsinks in
        let tech = b.Suite.Format_io.tech in
        let tree =
          Dme.Zst.build ~tech ~source:b.Suite.Format_io.source
            b.Suite.Format_io.sinks
        in
        let stage = List.hd (Analysis.Rcnet.stages ~seg_len tree) in
        let rc = stage.Analysis.Rcnet.rc in
        let pool = Rcf.compile ~seg_len (Ctree.Arena.compile tree) in
        let si = 0 in
        assert (Rcf.nstages pool = 1);
        let n = rc.Analysis.Rcnet.size in
        let r_drv = tech.Tech.source_r and s_drv = tech.Tech.source_slew in
        let ws = Tr.workspace () in
        let bcache = Tr.Fcache.create ()
        and fcache = Tr.Flat.Fcache.create () in
        let boxed mode = Tr.solve ~mode ~fcache:bcache ~ws rc ~r_drv ~s_drv in
        let flat mode =
          Tr.Flat.solve ~mode ~fcache ~ws pool ~si ~r_drv ~s_drv
        in
        let reference = boxed Tr.Fixed in
        let dmax = ref 0. and smax = ref 0. in
        Array.iteri
          (fun k (d, s) ->
            let d0, s0 = reference.(k) in
            if Float.is_finite d0 || Float.is_finite d then begin
              dmax := Float.max !dmax (Float.abs (d -. d0));
              smax := Float.max !smax (Float.abs (s -. s0))
            end)
          (flat Tr.Fixed);
        let reps = if n >= 40_000 then 1 else 3 in
        (* Solve counts come from the cross-call kernel counters; both
           kernels march through the same controller so the Fixed counts
           match and nodes/sec is directly comparable. *)
        let timed mode run =
          let c0 = (Tr.counters ()).Tr.total_solves in
          let t = time_runs reps (fun () -> ignore (run mode)) in
          let solves = ((Tr.counters ()).Tr.total_solves - c0) / reps in
          (t, solves)
        in
        let t_boxed, solves = timed Tr.Fixed boxed in
        let t_flat, _ = timed Tr.Fixed flat in
        let t_aboxed, _ = timed Tr.default_mode boxed in
        let t_aflat, _ = timed Tr.default_mode flat in
        let nps t = float_of_int n *. float_of_int solves /. t in
        Printf.printf
          "  %6d sinks %7d nodes: fixed boxed %8.1f ms | flat %8.1f ms \
           (%4.2fx, %.1fM nodes/s) | auto %6.1f -> %6.1f ms | err d %.2g / s %.2g ps\n%!"
          nsinks n (t_boxed *. 1e3) (t_flat *. 1e3) (t_boxed /. t_flat)
          (nps t_flat /. 1e6) (t_aboxed *. 1e3) (t_aflat *. 1e3) !dmax !smax;
        (* Sub-femtosecond agreement: the level permutation reorders the
           residual accumulation, so crossings drift by ulps — observed
           ~1e-6 ps at 100K-node stages, guarded at 1e-5 ps. *)
        ( n,
          t_boxed /. t_flat,
          !dmax <= 1e-5 && !smax <= 1e-5,
          Obj
            [
              ("sinks", Num (float_of_int nsinks));
              ("seg_len_nm", Num (float_of_int seg_len));
              ("nodes", Num (float_of_int n));
              ("taps", Num (float_of_int (Array.length rc.Analysis.Rcnet.taps)));
              ("fixed_solves", Num (float_of_int solves));
              ("boxed_ms", Num (t_boxed *. 1e3));
              ("flat_ms", Num (t_flat *. 1e3));
              ("boxed_nodes_per_sec", Num (nps t_boxed));
              ("flat_nodes_per_sec", Num (nps t_flat));
              ("speedup", Num (t_boxed /. t_flat));
              ("auto_boxed_ms", Num (t_aboxed *. 1e3));
              ("auto_flat_ms", Num (t_aflat *. 1e3));
              ("auto_speedup", Num (t_aboxed /. t_aflat));
              ("max_delay_err_ps", Num !dmax);
              ("max_slew_err_ps", Num !smax);
            ] ))
      configs
  in
  let nodes_top, speedup_top, _, _ =
    List.fold_left
      (fun ((bn, _, _, _) as best) ((n, _, _, _) as row) ->
        if n > bn then row else best)
      (List.hd rows) rows
  in
  let accuracy_ok = List.for_all (fun (_, _, ok, _) -> ok) rows in
  Printf.printf "  largest row: %d nodes, %.2fx; accuracy_ok=%b\n%!" nodes_top
    speedup_top accuracy_ok;
  let json =
    Obj
      [
        ("rows", List (List.map (fun (_, _, _, j) -> j) rows));
        ("nodes_100k", Num (float_of_int nodes_top));
        ("speedup_100k", Num speedup_top);
        ("accuracy_ok", Num (if accuracy_ok then 1. else 0.));
      ]
  in
  let path = Filename.concat out_dir "kernel_bench.json" in
  Core.Persist.write_atomic path (to_string json);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let fig1 results =
  section "Figure 1 — the executed methodology (step sequence and IVC)";
  match results with
  | [] -> ()
  | r :: _ ->
    Printf.printf "on %s:\n" r.bench.Suite.Format_io.name;
    List.iter
      (fun (e : Core.Flow.trace_entry) ->
        Printf.printf
          "  %-8s -> skew %8.3f ps  CLR %8.3f ps  (%d evaluations so far)\n"
          (Core.Flow.step_name e.Core.Flow.step)
          e.Core.Flow.skew e.Core.Flow.clr e.Core.Flow.eval_runs)
      r.flow.Core.Flow.trace;
    print_endline
      "  each step iterates mutate->CNE->IVC internally; a failed check\n\
      \  rolls the tree back and moves to the next optimization"

let fig2 () =
  section "Figure 2 — contour detour around a composite obstacle";
  (* The paper's illustration: a composite (L-shaped) obstacle, a source
     to the west, a subtree enclosed by the obstacle. *)
  let rects =
    [ Rect.make ~lx:1_000_000 ~ly:1_000_000 ~hx:2_600_000 ~hy:2_200_000;
      Rect.make ~lx:1_800_000 ~ly:2_200_000 ~hx:2_600_000 ~hy:3_000_000 ]
  in
  let compound = List.hd (Route.Obstacle.compounds rects) in
  let tech = Tech.default45 () in
  let t = Ctree.Tree.create ~tech ~source_pos:(Point.make 0 1_600_000) in
  let inner =
    Ctree.Tree.add_node t ~kind:Ctree.Tree.Internal
      ~pos:(Point.make 1_900_000 1_700_000) ~parent:0 ()
  in
  List.iter
    (fun (label, pos) ->
      ignore
        (Ctree.Tree.add_node t
           ~kind:(Ctree.Tree.Sink { Ctree.Tree.cap = 10.; parity = 0; label })
           ~pos ~parent:inner ()))
    [ ("n", Point.make 2_000_000 3_400_000); ("e", Point.make 3_100_000 1_800_000);
      ("s", Point.make 1_600_000 600_000); ("se", Point.make 2_900_000 900_000) ];
  let result = Route.Detour.apply t compound ~root:inner in
  let t, _ = Ctree.Tree.compact t in
  Printf.printf
    "composite obstacle of %d rectangles, contour perimeter %.2f mm\n"
    (List.length rects)
    (float_of_int (Contour.perimeter compound.Route.Obstacle.contour) /. 1.e6);
  Printf.printf
    "%d attachments; removed arc between contour parameters %d and %d\n"
    result.Route.Detour.attachments (fst result.Route.Detour.cut)
    (snd result.Route.Detour.cut);
  Printf.printf "detour chain wirelength %.2f mm (perimeter minus removed arc)\n"
    (float_of_int result.Route.Detour.chain_wirelength /. 1.e6);
  let svg = Ctree.Svg.render ~obstacles:rects t in
  let path = Filename.concat out_dir "fig2_detour.svg" in
  Ctree.Svg.write_file path svg;
  Printf.printf "wrote %s\n" path

let fig3 results =
  section "Figure 3 — slack-coloured clock tree (fnb1)";
  match
    List.find_opt
      (fun r -> r.bench.Suite.Format_io.name = "ispd09fnb1")
      results
  with
  | None -> ()
  | Some r ->
    let tree = r.flow.Core.Flow.tree in
    let slacks = Core.Slack.combined tree r.flow.Core.Flow.final in
    let hi =
      Array.fold_left
        (fun acc v -> if Float.is_finite v then Float.max acc v else acc)
        0. slacks.Core.Slack.slow
    in
    let edge_color id =
      Ctree.Svg.gradient ~lo:0. ~hi slacks.Core.Slack.slow.(id)
    in
    let svg =
      Ctree.Svg.render ~edge_color
        ~obstacles:r.bench.Suite.Format_io.obstacles tree
    in
    let path = Filename.concat out_dir "fig3_fnb1_tree.svg" in
    Ctree.Svg.write_file path svg;
    Printf.printf
      "wrote %s (sinks as crosses, buffers as blue boxes, red = no\n\
       slow-down slack, green = %.1f ps of slack)\n"
      path hi

(* ------------------------------------------------------------------ *)
(* Ablations: what each design choice buys (on ispd09f22)               *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations — design choices on ispd09f22 (final skew / CLR, ps)";
  let bench = Suite.Gen_ispd.generate "ispd09f22" in
  let run_with label config =
    let flow =
      Core.Flow.run ~config ~tech:bench.Suite.Format_io.tech
        ~source:bench.Suite.Format_io.source
        ~obstacles:bench.Suite.Format_io.obstacles bench.Suite.Format_io.sinks
    in
    Printf.printf "  %-34s skew %7.3f  CLR %7.3f  (%d evals, %.1f s)
%!"
      label flow.Core.Flow.final.Ev.skew flow.Core.Flow.final.Ev.clr
      flow.Core.Flow.eval_runs flow.Core.Flow.seconds
  in
  let d = Core.Config.default in
  run_with "full flow (reference)" d;
  run_with "no stage balancing"
    { d with Core.Config.stage_balancing = false };
  run_with "no Elmore pre-balance"
    { d with Core.Config.elmore_prebalance = false };
  run_with "exact van Ginneken (no buckets)"
    { d with Core.Config.vg_buckets = None };
  run_with "Arnoldi engine end-to-end"
    { d with Core.Config.engine = Ev.Arnoldi };
  run_with "single-transition slacks"
    { d with Core.Config.multicorner_slacks = false };
  (* Four graduated wire widths instead of two: finer TWSZ granularity. *)
  (let tech4 =
     Tech.default45_multiwidth
       ~cap_limit:bench.Suite.Format_io.tech.Tech.cap_limit ()
   in
   let flow =
     Core.Flow.run ~tech:tech4 ~source:bench.Suite.Format_io.source
       ~obstacles:bench.Suite.Format_io.obstacles bench.Suite.Format_io.sinks
   in
   Printf.printf "  %-34s skew %7.3f  CLR %7.3f  (%d evals, %.1f s)\n%!"
     "four wire widths" flow.Core.Flow.final.Ev.skew
     flow.Core.Flow.final.Ev.clr flow.Core.Flow.eval_runs
     flow.Core.Flow.seconds);
  (* Bounded-skew construction: wirelength vs. Elmore skew budget. *)
  Printf.printf "  bounded-skew DME (construction only):
";
  List.iter
    (fun budget ->
      let t =
        Dme.Zst.build ~tech:bench.Suite.Format_io.tech
          ~source:bench.Suite.Format_io.source ~skew_budget:budget
          bench.Suite.Format_io.sinks
      in
      let stats = Ctree.Stats.compute t in
      let skew = (Ev.evaluate ~engine:Ev.Elmore_model t).Ev.skew in
      Printf.printf
        "    budget %6.1f ps -> wirelength %7.2f mm (snake %5.2f), elmore          skew %6.2f ps
%!"
        budget
        (float_of_int stats.Ctree.Stats.wirelength /. 1.e6)
        (float_of_int stats.Ctree.Stats.snake_total /. 1.e6)
        skew)
    [ 0.; 10.; 50. ]

(* ------------------------------------------------------------------ *)
(* Variation analysis (paper §I / §IV-H)                                 *)
(* ------------------------------------------------------------------ *)

let variation results =
  section "Variation analysis — Monte-Carlo intra-die perturbations";
  match results with
  | [] -> ()
  | r :: _ ->
    (* 5 % buffer-strength sigma, 2 % wire sigma, 20 trials on the final
       optimized tree of the first benchmark. *)
    let spec =
      { Analysis.Montecarlo.default_spec with Analysis.Montecarlo.trials = 20 }
    in
    let mc = Analysis.Montecarlo.run spec r.flow.Core.Flow.tree in
    Printf.printf
      "on %s (final tree, 20 trials, sigma_buf 5%%, sigma_wire 2%%):
"
      r.bench.Suite.Format_io.name;
    Printf.printf
      "  nominal skew %.2f ps -> mean %.2f ps, worst (effective) %.2f ps,        sigma %.2f ps
"
      mc.Analysis.Montecarlo.nominal_skew mc.Analysis.Montecarlo.mean_skew
      mc.Analysis.Montecarlo.max_skew mc.Analysis.Montecarlo.std_skew;
    print_endline
      "  (the paper's premise: effective skew under variation exceeds
      \   nominal skew, which is why CLR — not nominal skew alone — is
      \   optimized; strong composite buffers keep the gap small)"

(* ------------------------------------------------------------------ *)
(* Kernel micro-benchmarks (bechamel)                                   *)
(* ------------------------------------------------------------------ *)

let kernels () =
  section "Kernel timings (bechamel, monotonic clock)";
  let open Bechamel in
  let tech = Tech.default45 () in
  let rng = Suite.Rng.create 99 in
  let sinks =
    Array.init 200 (fun i ->
        { Dme.Zst.pos =
            Point.make (Suite.Rng.int rng 5_000_000) (Suite.Rng.int rng 5_000_000);
          cap = 10.; parity = 0; label = Printf.sprintf "s%d" i })
  in
  let tree = Dme.Zst.build ~tech ~source:(Point.make 0 2_500_000) sinks in
  let buf = Tech.Composite.make Tech.Device.small_inverter 8 in
  let buffered =
    Buffering.Fast_vg.insert tree ~buf
      ~cap_ceiling:(Route.Slewcap.lumped ~tech ~buf ())
      ()
  in
  let stage = List.hd (List.rev (Analysis.Rcnet.stages buffered)) in
  let rc = stage.Analysis.Rcnet.rc in
  let eval = Ev.evaluate ~engine:Ev.Arnoldi buffered in
  let obstacles =
    [ Rect.make ~lx:1_000_000 ~ly:1_000_000 ~hx:2_000_000 ~hy:2_000_000;
      Rect.make ~lx:3_000_000 ~ly:2_000_000 ~hx:4_000_000 ~hy:4_000_000 ]
  in
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        Test.make ~name:"elmore-stage" (Staged.stage (fun () ->
            ignore (Analysis.Elmore.solve rc ~r_drv:55. ~s_drv:20.)));
        Test.make ~name:"moments-stage" (Staged.stage (fun () ->
            ignore (Analysis.Moments.solve rc ~r_drv:55. ~s_drv:20.)));
        Test.make ~name:"transient-stage" (Staged.stage (fun () ->
            ignore (Analysis.Transient.solve rc ~r_drv:55. ~s_drv:20.)));
        Test.make ~name:"cne-arnoldi-200sinks" (Staged.stage (fun () ->
            ignore (Ev.evaluate ~engine:Ev.Arnoldi buffered)));
        Test.make ~name:"cne-spice-200sinks" (Staged.stage (fun () ->
            ignore (Ev.evaluate ~engine:Ev.Spice buffered)));
        Test.make ~name:"dme-zst-200sinks" (Staged.stage (fun () ->
            ignore (Dme.Zst.build ~tech ~source:(Point.make 0 2_500_000) sinks)));
        Test.make ~name:"vanginneken-fast" (Staged.stage (fun () ->
            ignore
              (Buffering.Fast_vg.insert tree ~buf
                 ~cap_ceiling:(Route.Slewcap.lumped ~tech ~buf ())
                 ())));
        Test.make ~name:"slack-propagation" (Staged.stage (fun () ->
            ignore (Core.Slack.combined buffered eval)));
        Test.make ~name:"maze-route" (Staged.stage (fun () ->
            ignore
              (Grid.route ~obstacles ~src:(Point.make 0 0)
                 ~dst:(Point.make 5_000_000 5_000_000))));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  let rows = List.sort (fun (_, a) (_, b) -> Float.compare a b) !rows in
  print_string
    (Suite.Report.table ~title:"" ~header:[ "kernel"; "time/run" ]
       (List.map
          (fun (name, ns) ->
            let pretty =
              if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            [ name; pretty ])
          rows))

(* ------------------------------------------------------------------ *)
(* Pass-level speculation benchmark (CONTANGO_BENCH_PASSES=1)          *)
(* ------------------------------------------------------------------ *)

(* Per-pass wall-clock, IVC attempts and accepts for the legacy
   copy-based attempt loop (speculation = -1, the PR 3 baseline) against
   the journaled speculative search at widths 1 and 4, on the 1000-sink
   TI instance. Also records the width-determinism check — widths 1 and 4
   must produce bit-identical trees and final skew/CLR — and the post-ZST
   speedup ratios (sum of step_seconds over every step after INITIAL).
   Writes bench_out/pass_bench.json. *)
let pass_bench () =
  section "Pass-level speculation benchmark — ti1000";
  let open Suite.Report.Json in
  let b = Suite.Gen_ti.generate 1_000 in
  let run label speculation =
    Printf.printf "  running %s (speculation = %d)...\n%!" label speculation;
    let config = { Core.Config.default with Core.Config.speculation } in
    let e0 = Ev.eval_count () in
    let r =
      Core.Flow.run ~config ~tech:b.Suite.Format_io.tech
        ~source:b.Suite.Format_io.source b.Suite.Format_io.sinks
    in
    let evals = Ev.eval_count () - e0 in
    Printf.printf
      "    %6.2f s flow, %4d evals, skew %.3f ps, CLR %.3f ps\n%!"
      r.Core.Flow.seconds evals r.Core.Flow.final.Ev.skew
      r.Core.Flow.final.Ev.clr;
    (r, evals)
  in
  let post_zst (r : Core.Flow.result) =
    List.fold_left
      (fun acc (e : Core.Flow.trace_entry) ->
        if e.Core.Flow.step = Core.Flow.Initial then acc
        else acc +. e.Core.Flow.step_seconds)
      0. r.Core.Flow.trace
  in
  let mode_json label speculation ((r : Core.Flow.result), evals) =
    Obj
      [
        ("label", Str label);
        ("speculation", Num (float_of_int speculation));
        ("seconds", Num r.Core.Flow.seconds);
        ("post_zst_seconds", Num (post_zst r));
        ("eval_runs", Num (float_of_int evals));
        ("final_skew_ps", Num r.Core.Flow.final.Ev.skew);
        ("final_clr_ps", Num r.Core.Flow.final.Ev.clr);
        ("steps",
         List
           (List.map
              (fun (e : Core.Flow.trace_entry) ->
                Obj
                  [
                    ("step", Str (Core.Flow.step_name e.Core.Flow.step));
                    ("seconds", Num e.Core.Flow.step_seconds);
                    ("attempts", Num (float_of_int e.Core.Flow.attempts));
                    ("accepts", Num (float_of_int e.Core.Flow.accepts));
                    ("skew_ps", Num e.Core.Flow.skew);
                    ("clr_ps", Num e.Core.Flow.clr);
                  ])
              r.Core.Flow.trace));
      ]
  in
  let legacy = run "legacy copy-based baseline" (-1) in
  let serial = run "journaled serial" 1 in
  let wide = run "journaled width 4" 4 in
  let rl, _ = legacy and r1, _ = serial and r4, _ = wide in
  let deterministic =
    Ctree.Tree.digest r1.Core.Flow.tree = Ctree.Tree.digest r4.Core.Flow.tree
    && r1.Core.Flow.final.Ev.skew = r4.Core.Flow.final.Ev.skew
    && r1.Core.Flow.final.Ev.clr = r4.Core.Flow.final.Ev.clr
  in
  let speedup r = post_zst rl /. post_zst r in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "\n  post-ZST: legacy %.2f s | width 1 %.2f s (%.2fx) | width 4 %.2f s \
     (%.2fx)\n\
    \  width 4 = width 1 (tree digest, skew, CLR): %b   (cores: %d)\n"
    (post_zst rl) (post_zst r1) (speedup r1) (post_zst r4) (speedup r4)
    deterministic cores;
  let header = [ "step"; "legacy s"; "w1 s"; "w4 s"; "att w1"; "acc w1" ] in
  let rows =
    List.map2
      (fun (el : Core.Flow.trace_entry) ((e1 : Core.Flow.trace_entry), e4) ->
        [
          Core.Flow.step_name el.Core.Flow.step;
          fmt el.Core.Flow.step_seconds;
          fmt e1.Core.Flow.step_seconds;
          fmt (e4 : Core.Flow.trace_entry).Core.Flow.step_seconds;
          string_of_int e1.Core.Flow.attempts;
          string_of_int e1.Core.Flow.accepts;
        ])
      rl.Core.Flow.trace
      (List.combine r1.Core.Flow.trace r4.Core.Flow.trace)
  in
  print_string (Suite.Report.table ~title:"" ~header rows);
  let json =
    Obj
      [
        ("instance", Str "ti1000");
        ("cores", Num (float_of_int cores));
        ("modes",
         List
           [
             mode_json "legacy" (-1) legacy;
             mode_json "width1" 1 serial;
             mode_json "width4" 4 wide;
           ]);
        ("post_zst_speedup_width1", Num (speedup r1));
        ("post_zst_speedup_width4", Num (speedup r4));
        ("deterministic_across_widths", Bool deterministic);
      ]
  in
  let path = Filename.concat out_dir "pass_bench.json" in
  Core.Persist.write_atomic path (to_string json);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Regional vs monolithic end-to-end flow (the PR's headline number)    *)
(* ------------------------------------------------------------------ *)

(* One monolithic and one regional run of the same ti:20000 instance
   under the scalability configuration (flat streaming kernel, 60 µm
   segments). The speedup is algorithmic as much as parallel: each
   region's optimization loops work on a quarter-size tree with sub-ps
   local skew, so none of them (nor the stitched polish) triggers the
   expensive monolithic second pass. *)
let region_bench () =
  let open Suite.Report.Json in
  section "Regional partition + stitch vs monolithic flow (ti:20000)";
  let bench = Suite.Gen_ti.generate 20_000 in
  let base_config =
    { Core.Config.default with
      Core.Config.engine = Ev.Spice;
      flat = true;
      seg_len = 60_000 }
  in
  let workers = max 1 (Domain.recommended_domain_count () - 1) in
  let flow config =
    let t0 = Core.Monoclock.now () in
    let r =
      Core.Flow.run_regional ~config ~tech:bench.Suite.Format_io.tech
        ~source:bench.Suite.Format_io.source
        ~obstacles:bench.Suite.Format_io.obstacles
        bench.Suite.Format_io.sinks
    in
    (r, Core.Monoclock.now () -. t0)
  in
  Printf.printf "  monolithic...%!";
  let mono, mono_s = flow base_config in
  Printf.printf " %.1f s, skew %.3f ps\n%!" mono_s
    mono.Core.Flow.r_flow.Core.Flow.final.Ev.skew;
  Printf.printf "  regional (12 regions, %d workers)...%!" workers;
  let reg, reg_s = flow { base_config with Core.Config.regions = 12 } in
  Printf.printf " %.1f s, skew %.3f ps\n%!" reg_s
    reg.Core.Flow.r_flow.Core.Flow.final.Ev.skew;
  let speedup = mono_s /. reg_s in
  Printf.printf "  speedup %.2fx\n" speedup;
  let region_json (rg : Core.Flow.region_report) =
    Obj
      [
        ("region", Num (float_of_int rg.Core.Flow.rg_index));
        ("sinks", Num (float_of_int rg.Core.Flow.rg_sinks));
        ("skew_ps", Num rg.Core.Flow.rg_skew);
        ("seconds", Num rg.Core.Flow.rg_seconds);
        ("eval_runs", Num (float_of_int rg.Core.Flow.rg_eval_runs));
      ]
  in
  let json =
    Obj
      [
        ("instance", Str "ti20000");
        ("workers", Num (float_of_int workers));
        ("regions", Num 12.);
        ("monolithic_s", Num mono_s);
        ("monolithic_skew_ps", Num mono.Core.Flow.r_flow.Core.Flow.final.Ev.skew);
        ("regional_s", Num reg_s);
        ("regional_skew_ps", Num reg.Core.Flow.r_flow.Core.Flow.final.Ev.skew);
        ("speedup", Num speedup);
        ("region_detail",
         match reg.Core.Flow.r_stitch with
         | None -> List []
         | Some st ->
           List (List.map region_json st.Core.Flow.st_regions));
      ]
  in
  let path = Filename.concat out_dir "region_bench.json" in
  Core.Persist.write_atomic path (to_string json);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Serve-daemon benchmark (CONTANGO_BENCH_SERVE=1)                      *)
(* ------------------------------------------------------------------ *)

(* Sustained concurrent throughput against an in-process [contango serve]
   daemon. A warm-up pass populates the shared evaluator/factorization
   store with one run of each spec; the measured phase then replays the
   same specs from several client threads at once, so every request after
   warm-up should be served out of the cross-request store. The headline
   numbers are requests/sec during the measured phase and the
   cross-request hit rate (store hits over store lookups) — the CI gate
   requires the latter to be nonzero. *)
let serve_bench () =
  section "Serve daemon — sustained concurrent requests (shared caches)";
  let open Suite.Report.Json in
  let specs = [| "ti:60"; "ti:100"; "grid:4" |] in
  let clients = 4 and per_client = 6 in
  let path = Filename.concat out_dir "serve_bench.sock" in
  let server =
    Serve.Server.create ~max_queue:32 (Unix.ADDR_UNIX path)
  in
  let addr = Serve.Server.sockaddr server in
  let server_thread = Thread.create Serve.Server.serve server in
  if not (Serve.Client.wait_ready addr) then
    failwith "serve_bench: daemon did not come up";
  let run_request spec =
    match
      Serve.Client.oneshot addr
        (Serve.Protocol.Run { spec; timeout_s = Some 120.; request_key = None })
    with
    | Ok (Serve.Protocol.Completed { body; _ }) -> body
    | Ok (Serve.Protocol.Busy _) -> failwith "serve_bench: unexpected Busy"
    | Ok (Serve.Protocol.Failed { code; detail }) ->
      failwith (Printf.sprintf "serve_bench: request failed (%s): %s" code detail)
    | Error msg -> failwith ("serve_bench: bad response: " ^ msg)
  in
  Printf.printf "  warm-up (%d specs)...\n%!" (Array.length specs);
  Array.iter (fun spec -> ignore (run_request spec)) specs;
  Printf.printf "  measured phase: %d clients x %d requests...\n%!" clients
    per_client;
  let store_hits = Atomic.make 0 and store_lookups = Atomic.make 0 in
  let cache_field body name =
    match to_float (Option.bind (member "cache" body) (member name)) with
    | Some v -> int_of_float v
    | None -> 0
  in
  let t0 = Core.Monoclock.now () in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun () ->
            for i = 0 to per_client - 1 do
              let spec = specs.((c + i) mod Array.length specs) in
              let body = run_request spec in
              let h = cache_field body "store_hits"
              and m = cache_field body "store_misses" in
              ignore (Atomic.fetch_and_add store_hits h);
              ignore (Atomic.fetch_and_add store_lookups (h + m))
            done)
          ())
  in
  List.iter Thread.join threads;
  let elapsed = Core.Monoclock.now () -. t0 in
  let total = clients * per_client in
  let rps = float_of_int total /. elapsed in
  let hit_rate =
    if Atomic.get store_lookups = 0 then 0.
    else float_of_int (Atomic.get store_hits)
         /. float_of_int (Atomic.get store_lookups)
  in
  (match Serve.Client.oneshot addr Serve.Protocol.Shutdown with
  | Ok _ -> ()
  | Error msg -> Printf.eprintf "  shutdown response: %s\n" msg);
  Thread.join server_thread;
  Printf.printf
    "  %d requests in %.2f s — %.1f req/s, cross-request hit rate %.3f\n"
    total elapsed rps hit_rate;
  let json =
    Obj
      [
        ("clients", Num (float_of_int clients));
        ("requests", Num (float_of_int total));
        ("seconds", Num elapsed);
        ("requests_per_sec", Num rps);
        ("store_hits", Num (float_of_int (Atomic.get store_hits)));
        ("store_lookups", Num (float_of_int (Atomic.get store_lookups)));
        ("cross_request_hit_rate", Num hit_rate);
        ("specs", List (Array.to_list (Array.map (fun s -> Str s) specs)));
      ]
  in
  let out = Filename.concat out_dir "serve_bench.json" in
  Core.Persist.write_atomic out (to_string json);
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* Surrogate-ranking benchmark: evals off vs on + Pareto store reuse    *)
(* ------------------------------------------------------------------ *)

(* A run counts as an accuracy regression when surrogate-on lands more
   than this much worse than surrogate-off on final skew or CLR. The
   ranked search may take a different (cheaper) path to a different
   local optimum; the tolerance bounds how much quality that path is
   allowed to give up. *)
let surrogate_tol_ps = 0.5

let surrogate_bench () =
  section "Surrogate ranking — Table V family, ranking off vs on";
  let sizes = [ 200; 500; 1_000; 2_000 ] in
  let run_one ~surrogate n =
    let b = Suite.Gen_ti.generate n in
    (* speculation = 1 pins the unranked search to the serial lazy scan:
       at auto width the surrogate-off eval counts would depend on the
       machine's core count (eager parallel batches evaluate would-be
       discarded rungs), and the off column is this benchmark's
       reference. Surrogate-on counts are width-independent by design. *)
    let config =
      { Core.Config.scalability with Core.Config.surrogate; speculation = 1 }
    in
    let r =
      Core.Flow.run ~config ~tech:b.Suite.Format_io.tech
        ~source:b.Suite.Format_io.source b.Suite.Format_io.sinks
    in
    (r.Core.Flow.eval_runs, r.Core.Flow.final, r.Core.Flow.surrogate)
  in
  let rows =
    List.map
      (fun n ->
        Printf.printf "  ti%d off...%!" n;
        let evals_off, off, _ = run_one ~surrogate:false n in
        Printf.printf " %d evals; on...%!" evals_off;
        let evals_on, on, stats = run_one ~surrogate:true n in
        Printf.printf " %d evals\n%!" evals_on;
        (n, evals_off, off, evals_on, on, stats))
      sizes
  in
  let header =
    [ "sinks"; "evals off"; "evals on"; "skew off"; "skew on"; "CLR off";
      "CLR on"; "warm"; "ranked"; "fall"; "saved"; "mispred" ]
  in
  print_string
    (Suite.Report.table ~title:"" ~header
       (List.map
          (fun (n, eo, off, en, on, stats) ->
            let warm, ranked, fall, saved, mis =
              match stats with
              | Some s ->
                Analysis.Surrogate.
                  ( s.warmup_rounds, s.ranked_rounds, s.fallbacks,
                    s.evals_saved, s.mispredicts )
              | None -> (0, 0, 0, 0, 0)
            in
            [ string_of_int n; string_of_int eo; string_of_int en;
              fmt ~decimals:3 off.Ev.skew; fmt ~decimals:3 on.Ev.skew;
              fmt ~decimals:2 off.Ev.clr; fmt ~decimals:2 on.Ev.clr;
              string_of_int warm; string_of_int ranked; string_of_int fall;
              string_of_int saved; string_of_int mis ])
          rows));
  let total f = List.fold_left (fun a r -> a + f r) 0 rows in
  let evals_off = total (fun (_, e, _, _, _, _) -> e) in
  let evals_on = total (fun (_, _, _, e, _, _) -> e) in
  let reduction_pct =
    if evals_off = 0 then 0.
    else 100. *. float_of_int (evals_off - evals_on) /. float_of_int evals_off
  in
  let regressions =
    List.filter
      (fun (_, _, off, _, on, _) ->
        on.Ev.skew > off.Ev.skew +. surrogate_tol_ps
        || on.Ev.clr > off.Ev.clr +. surrogate_tol_ps)
      rows
  in
  let accuracy_ok = regressions = [] in
  Printf.printf
    "eval runs: %d off -> %d on (%.1f%% reduction); accuracy %s\n" evals_off
    evals_on reduction_pct
    (if accuracy_ok then "ok"
     else
       "REGRESSED on "
       ^ String.concat ", "
           (List.map (fun (n, _, _, _, _, _) -> Printf.sprintf "ti%d" n)
              regressions));
  section "Pareto sweep — sequential (jobs=0), shared family stores";
  let b = Suite.Gen_ti.generate 500 in
  let sweep =
    Suite.Pareto.run ~jobs:0 ~config:Core.Config.scalability b
  in
  print_string (Suite.Pareto.table sweep);
  let hits, misses = Suite.Pareto.store_totals sweep in
  let hit_rate = Suite.Pareto.hit_rate sweep in
  Printf.printf "store: %d hits / %d misses (hit rate %.2f)\n" hits misses
    hit_rate;
  let open Suite.Report.Json in
  let stats_json =
    let s =
      List.fold_left
        (fun acc (_, _, _, _, _, stats) ->
          match (acc, stats) with
          | None, s -> s
          | Some a, Some s ->
            Some
              Analysis.Surrogate.
                {
                  observations = a.observations + s.observations;
                  refits = a.refits + s.refits;
                  warmup_rounds = a.warmup_rounds + s.warmup_rounds;
                  ranked_rounds = a.ranked_rounds + s.ranked_rounds;
                  fallbacks = a.fallbacks + s.fallbacks;
                  mispredicts = a.mispredicts + s.mispredicts;
                  evals_saved = a.evals_saved + s.evals_saved;
                }
          | Some _, None -> acc)
        None rows
    in
    match s with
    | None -> Null
    | Some s ->
      Obj
        Analysis.Surrogate.
          [
            ("observations", Num (float_of_int s.observations));
            ("refits", Num (float_of_int s.refits));
            ("warmup_rounds", Num (float_of_int s.warmup_rounds));
            ("ranked_rounds", Num (float_of_int s.ranked_rounds));
            ("fallbacks", Num (float_of_int s.fallbacks));
            ("mispredicts", Num (float_of_int s.mispredicts));
            ("evals_saved", Num (float_of_int s.evals_saved));
          ]
  in
  let json =
    Obj
      [
        ("eval_runs_off", Num (float_of_int evals_off));
        ("eval_runs_on", Num (float_of_int evals_on));
        ("reduction_pct", Num reduction_pct);
        ("accuracy_ok", Bool accuracy_ok);
        ("tolerance_ps", Num surrogate_tol_ps);
        ("rows",
         List
           (List.map
              (fun (n, eo, off, en, on, _) ->
                Obj
                  [
                    ("sinks", Num (float_of_int n));
                    ("evals_off", Num (float_of_int eo));
                    ("evals_on", Num (float_of_int en));
                    ("skew_off_ps", Num off.Ev.skew);
                    ("skew_on_ps", Num on.Ev.skew);
                    ("clr_off_ps", Num off.Ev.clr);
                    ("clr_on_ps", Num on.Ev.clr);
                  ])
              rows));
        ("surrogate", stats_json);
        ("pareto",
         Obj
           [
             ("bench", Str (Suite.Gen_ti.generate 500).Suite.Format_io.name);
             ("hits", Num (float_of_int hits));
             ("misses", Num (float_of_int misses));
             ("hit_rate", Num hit_rate);
             ("points",
              Num (float_of_int (List.length sweep.Suite.Pareto.pr_points)));
           ]);
      ]
  in
  let out = Filename.concat out_dir "surrogate_bench.json" in
  Core.Persist.write_atomic out (to_string json);
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)

let () =
  (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let t0 = Core.Monoclock.now () in
  if surrogate_only then begin
    surrogate_bench ();
    Printf.printf "\ntotal harness time: %.1f s\n" (Core.Monoclock.now () -. t0)
  end
  else if serve_only then begin
    serve_bench ();
    Printf.printf "\ntotal harness time: %.1f s\n" (Core.Monoclock.now () -. t0)
  end
  else if region_only then begin
    region_bench ();
    Printf.printf "\ntotal harness time: %.1f s\n" (Core.Monoclock.now () -. t0)
  end
  else if passes_only then begin
    pass_bench ();
    Printf.printf "\ntotal harness time: %.1f s\n" (Core.Monoclock.now () -. t0)
  end
  else if kernel_only then begin
    kernel_bench ();
    Printf.printf "\ntotal harness time: %.1f s\n" (Core.Monoclock.now () -. t0)
  end
  else if eval_only then begin
    evaluator_bench ();
    Printf.printf "\ntotal harness time: %.1f s\n" (Core.Monoclock.now () -. t0)
  end
  else begin
    Printf.printf
      "Contango benchmark harness — reproduces the DATE'10 evaluation\n\
       (engine: backward-Euler transient 'SPICE substitute' for ISPD-scale,\n\
       two-pole moment matching for the TI scalability family)\n";
    table1 ();
    section "Running the seven ISPD'09-style benchmarks through the full flow";
    let results = run_benchmarks () in
    table2 results;
    table3 results;
    table4 results;
    let table5_rows, table5_evals = table5 () in
    write_json results table5_rows;
    (* Deterministic eval-run total of the Table V suite — the CI
       regression guard diffs this against bench/eval_baseline.txt. *)
    Core.Persist.write_atomic
      (Filename.concat out_dir "eval_total.txt")
      (Printf.sprintf "%d\n" table5_evals);
    fig1 results;
    fig2 ();
    fig3 results;
    if not quick then evaluator_bench ();
    if not quick then ablations ();
    if not quick then variation results;
    if not quick then kernels ();
    Printf.printf "\ntotal harness time: %.1f s\n" (Core.Monoclock.now () -. t0)
  end
