open Geometry
module Tree = Ctree.Tree

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tech = Tech.default45 ()

(* ---------- Slewcap ---------- *)

let test_slewcap_lumped () =
  let weak = Tech.Composite.make Tech.Device.small_inverter 2 in
  let strong = Tech.Composite.make Tech.Device.small_inverter 16 in
  let cw = Route.Slewcap.lumped ~tech ~buf:weak () in
  let cs = Route.Slewcap.lumped ~tech ~buf:strong () in
  check_bool "positive" true (cw > 0.);
  check_bool "stronger drives more" true (cs > 2. *. cw)

let test_slewcap_simulated () =
  let buf = Tech.Composite.make Tech.Device.small_inverter 8 in
  let lumped = Route.Slewcap.lumped ~tech ~buf ~margin:1.0 () in
  let sim = Route.Slewcap.simulated ~tech ~buf () in
  check_bool "same order of magnitude" true
    (sim > 0.2 *. lumped && sim < 3. *. lumped)

(* ---------- Obstacle ---------- *)

let test_obstacle_compound () =
  let a = Rect.make ~lx:0 ~ly:0 ~hx:100 ~hy:100 in
  let b = Rect.make ~lx:100 ~ly:20 ~hx:180 ~hy:80 in
  let c = Rect.make ~lx:500 ~ly:500 ~hx:600 ~hy:600 in
  let comps = Route.Obstacle.compounds [ a; b; c ] in
  check_int "two compounds" 2 (List.length comps);
  let big =
    List.find (fun o -> List.length o.Route.Obstacle.rects = 2) comps
  in
  check_bool "inside union" true (Route.Obstacle.inside big (Point.make 150 50));
  check_bool "boundary not inside" false
    (Route.Obstacle.inside big (Point.make 0 50));
  check_bool "shared edge interior" true
    (Route.Obstacle.inside big (Point.make 100 50));
  check_int "polyline overlap" 90
    (Route.Obstacle.polyline_overlap big
       [ Point.make 120 (-10); Point.make 120 50; Point.make 500 50 ])

(* ---------- Detour machinery ---------- *)

let sink label pos cap = (label, pos, cap)

(* Tree whose Steiner structure sits inside a 2x2 mm obstacle while the
   sinks are outside. *)
let enclosed_case () =
  let obstacle = Rect.make ~lx:1_000_000 ~ly:1_000_000 ~hx:3_000_000 ~hy:3_000_000 in
  let t = Tree.create ~tech ~source_pos:(Point.make 0 2_000_000) in
  let inner =
    Tree.add_node t ~kind:Tree.Internal ~pos:(Point.make 2_000_000 2_000_000)
      ~parent:(Tree.root t) ()
  in
  let add (label, pos, cap) =
    ignore
      (Tree.add_node t ~kind:(Tree.Sink { Tree.cap = cap; parity = 0; label })
         ~pos ~parent:inner ())
  in
  List.iter add
    [ sink "n" (Point.make 2_000_000 3_500_000) 10.;
      sink "e" (Point.make 3_500_000 2_000_000) 10.;
      sink "s" (Point.make 2_000_000 500_000) 10. ];
  (t, obstacle, inner)

let test_enclosed_roots () =
  let t, obstacle, inner = enclosed_case () in
  let compound = List.hd (Route.Obstacle.compounds [ obstacle ]) in
  Alcotest.(check (list int)) "inner found" [ inner ]
    (Route.Detour.enclosed_roots t compound)

let test_subtree_cap () =
  let t, _, inner = enclosed_case () in
  let cap = Route.Detour.subtree_cap t inner in
  let stats = Ctree.Stats.compute t in
  Alcotest.(check (float 1e-6)) "equals full tree cap here"
    stats.Ctree.Stats.total_cap cap

let test_detour_apply () =
  let t, obstacle, inner = enclosed_case () in
  let compound = List.hd (Route.Obstacle.compounds [ obstacle ]) in
  let result = Route.Detour.apply t compound ~root:inner in
  check_int "three attachments" 3 result.Route.Detour.attachments;
  let t, _ = Tree.compact t in
  Alcotest.(check (list string)) "valid after detour" [] (Ctree.Validate.check t);
  check_int "sinks preserved" 3 (Array.length (Tree.sinks t));
  (* No wire crosses the obstacle interior any more. *)
  let overlap = ref 0 in
  Tree.iter t (fun nd ->
      if nd.Tree.parent >= 0 then begin
        let pts =
          match nd.Tree.route with
          | [] -> [ (Tree.node t nd.Tree.parent).Tree.pos; nd.Tree.pos ]
          | r -> r
        in
        overlap := !overlap + Route.Obstacle.polyline_overlap compound pts
      end);
  check_int "no interior overlap" 0 !overlap

let test_detour_cut_farthest () =
  (* Source attaches on the west side; the detour must wrap both ways and
     cut an arc on the east (far) side: total chain stays below the full
     perimeter. *)
  let t, obstacle, inner = enclosed_case () in
  let compound = List.hd (Route.Obstacle.compounds [ obstacle ]) in
  let result = Route.Detour.apply t compound ~root:inner in
  let perim = Contour.perimeter compound.Route.Obstacle.contour in
  check_bool "chain shorter than perimeter" true
    (result.Route.Detour.chain_wirelength < perim);
  let cut_lo, cut_hi = result.Route.Detour.cut in
  let west, _ = Contour.project compound.Route.Obstacle.contour (Point.make 0 2_000_000) in
  (* the removed arc is far from the west attachment *)
  check_bool "cut not at the source side" true
    (Contour.dist_along compound.Route.Obstacle.contour west cut_lo > 0
     || Contour.dist_along compound.Route.Obstacle.contour west cut_hi > 0)

let test_slewcap_wire_aware () =
  let buf = Tech.Composite.make Tech.Device.small_inverter 16 in
  let wa = Route.Slewcap.wire_aware ~tech ~buf () in
  let lu = Route.Slewcap.lumped ~tech ~buf ~margin:0.8 () in
  check_bool "wire-aware positive" true (wa > 0.);
  (* wire resistance only makes the bound tighter than the lumped one *)
  check_bool "wire-aware <= lumped" true (wa <= lu +. 1.);
  let strong = Tech.Composite.make Tech.Device.small_inverter 64 in
  check_bool "monotone in strength" true
    (Route.Slewcap.wire_aware ~tech ~buf:strong () > wa)

let test_detour_sink_inside () =
  (* A sink strictly inside the obstacle becomes an attachment itself;
     the wire to it legitimately crosses the boundary. *)
  let obstacle = Rect.make ~lx:1_000_000 ~ly:1_000_000 ~hx:3_000_000 ~hy:3_000_000 in
  let t = Tree.create ~tech ~source_pos:(Point.make 0 2_000_000) in
  let inner =
    Tree.add_node t ~kind:Tree.Internal ~pos:(Point.make 2_000_000 2_000_000)
      ~parent:(Tree.root t) ()
  in
  ignore
    (Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 10.; parity = 0; label = "in" })
       ~pos:(Point.make 1_500_000 1_500_000) ~parent:inner ());
  ignore
    (Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 10.; parity = 0; label = "out" })
       ~pos:(Point.make 3_500_000 2_000_000) ~parent:inner ());
  let compound = List.hd (Route.Obstacle.compounds [ obstacle ]) in
  let result = Route.Detour.apply t compound ~root:inner in
  check_int "both attachments" 2 result.Route.Detour.attachments;
  let t, _ = Tree.compact t in
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check t);
  check_int "sinks kept" 2 (Array.length (Tree.sinks t))

(* ---------- Repair ---------- *)

let test_repair_bend_flip () =
  (* A bent wire whose XY configuration crosses an obstacle flips to YX. *)
  let obstacle = Rect.make ~lx:800_000 ~ly:(-200_000) ~hx:1_200_000 ~hy:800_000 in
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let s =
    Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 10.; parity = 0; label = "s" })
      ~pos:(Point.make 2_000_000 1_000_000) ~parent:(Tree.root t)
      ~bend:Segment.L.XY ()
  in
  let repaired, report = Route.Repair.run t ~obstacles:[ obstacle ] ~drivable_cap:1e9 in
  check_int "one flip" 1 report.Route.Repair.bend_flips;
  check_int "no remaining overlap" 0 report.Route.Repair.remaining_overlap;
  check_bool "bend changed" true ((Tree.node repaired s).Tree.bend = Segment.L.YX)

let test_repair_drivable_skip () =
  (* Small enclosed subtree under the cap bound: left alone. *)
  let t, obstacle, _ = enclosed_case () in
  let _, report = Route.Repair.run t ~obstacles:[ obstacle ] ~drivable_cap:1e9 in
  check_int "skipped" 1 report.Route.Repair.drivable_skips;
  check_int "no detour" 0 report.Route.Repair.detours

let test_repair_detours_heavy () =
  let t, obstacle, _ = enclosed_case () in
  let _, report = Route.Repair.run t ~obstacles:[ obstacle ] ~drivable_cap:10. in
  check_int "detoured" 1 report.Route.Repair.detours

let test_repair_preserves_sinks () =
  let t, obstacle, _ = enclosed_case () in
  let before = Array.length (Tree.sinks t) in
  let repaired, _ = Route.Repair.run t ~obstacles:[ obstacle ] ~drivable_cap:10. in
  check_int "sinks preserved" before (Array.length (Tree.sinks repaired));
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check repaired)

let test_illegal_buffers () =
  let obstacle = Rect.make ~lx:400_000 ~ly:(-100_000) ~hx:600_000 ~hy:100_000 in
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let s =
    Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 10.; parity = 0; label = "s" })
      ~pos:(Point.make 1_000_000 0) ~parent:(Tree.root t) ()
  in
  check_int "none yet" 0
    (List.length (Route.Repair.illegal_buffers t ~obstacles:[ obstacle ]));
  let buf = Tech.Composite.make Tech.Device.small_inverter 4 in
  ignore (Tree.insert_buffer_on_wire t s ~at:500_000 ~buf);
  check_int "one illegal" 1
    (List.length (Route.Repair.illegal_buffers t ~obstacles:[ obstacle ]))

let repair_qcheck =
  QCheck.Test.make
    ~name:"repair: random obstacle fields keep trees valid, sinks intact"
    ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Suite.Rng.create seed in
      let obstacles =
        List.init 3 (fun _ ->
            let lx = 500_000 + Suite.Rng.int rng 2_000_000 in
            let ly = 500_000 + Suite.Rng.int rng 2_000_000 in
            Rect.make ~lx ~ly ~hx:(lx + 300_000 + Suite.Rng.int rng 700_000)
              ~hy:(ly + 300_000 + Suite.Rng.int rng 700_000))
      in
      let inside p = List.exists (fun r -> Rect.contains_open r p) obstacles in
      let rec pos () =
        let p =
          Point.make (Suite.Rng.int rng 4_000_000) (Suite.Rng.int rng 4_000_000)
        in
        if inside p then pos () else p
      in
      let sinks =
        Array.init 25 (fun i ->
            { Dme.Zst.pos = pos (); cap = 10.; parity = 0;
              label = Printf.sprintf "s%d" i })
      in
      let tree = Dme.Zst.build ~tech ~source:(Point.make 0 2_000_000) sinks in
      let repaired, _ =
        Route.Repair.run tree ~obstacles ~drivable_cap:300.
      in
      Ctree.Validate.check repaired = []
      && Array.length (Tree.sinks repaired) = 25)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "route"
    [
      ("slewcap",
       [ Alcotest.test_case "lumped" `Quick test_slewcap_lumped;
         Alcotest.test_case "simulated" `Quick test_slewcap_simulated;
         Alcotest.test_case "wire-aware" `Quick test_slewcap_wire_aware ]);
      ("obstacle", [ Alcotest.test_case "compound" `Quick test_obstacle_compound ]);
      ("detour",
       [ Alcotest.test_case "enclosed roots" `Quick test_enclosed_roots;
         Alcotest.test_case "sink inside" `Quick test_detour_sink_inside;
         Alcotest.test_case "subtree cap" `Quick test_subtree_cap;
         Alcotest.test_case "apply" `Quick test_detour_apply;
         Alcotest.test_case "cut farthest" `Quick test_detour_cut_farthest ]);
      ("repair",
       [ Alcotest.test_case "bend flip" `Quick test_repair_bend_flip;
         Alcotest.test_case "drivable skip" `Quick test_repair_drivable_skip;
         Alcotest.test_case "detours heavy" `Quick test_repair_detours_heavy;
         Alcotest.test_case "preserves sinks" `Quick test_repair_preserves_sinks;
         Alcotest.test_case "illegal buffers" `Quick test_illegal_buffers;
         q repair_qcheck ]);
    ]
