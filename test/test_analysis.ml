open Geometry
module Tree = Ctree.Tree
module Ev = Analysis.Evaluator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_near tol = Alcotest.(check (float tol))

let tech = Tech.default45 ()

(* A lumped RC: R=1000 Ω into C=100 fF, tau = 100 ps. *)
let lumped_rc () =
  { Analysis.Rcnet.parent = [| -1; 0 |]; res = [| 0.; 1000. |];
    cap = [| 0.; 100. |]; taps = [| (1, Analysis.Rcnet.Tap_sink 7) |]; size = 2 }

(* Distributed line: nseg segments + lumped load at the end. *)
let line ~nseg ~seg_r ~seg_c ~load =
  let size = nseg + 2 in
  {
    Analysis.Rcnet.parent = Array.init size (fun i -> i - 1);
    res = Array.init size (fun i -> if i = 0 then 0. else if i <= nseg then seg_r else 1e-3);
    cap = Array.init size (fun i -> if i = 0 then 0. else if i <= nseg then seg_c else load);
    taps = [| (size - 1, Analysis.Rcnet.Tap_sink 0) |];
    size;
  }

(* ---------- Analytic checks on the lumped RC ---------- *)

let test_lumped_elmore () =
  let d, s = (Analysis.Elmore.solve (lumped_rc ()) ~r_drv:1e-3 ~s_drv:0.1).(0) in
  check_near 0.1 "elmore delay = tau" 100. d;
  check_near 1. "elmore slew ~ tau ln9" (100. *. log 9.) s

let test_lumped_moments () =
  (* Exact single pole: t50 = tau ln2, slew = tau ln9. *)
  let d, s = (Analysis.Moments.solve (lumped_rc ()) ~r_drv:1e-3 ~s_drv:0.1).(0) in
  check_near 0.5 "t50 = tau ln2" (100. *. log 2.) d;
  check_near 0.5 "slew = tau ln9" (100. *. log 9.) s

let test_lumped_transient () =
  let d, s =
    (Analysis.Transient.solve ~step:0.05 (lumped_rc ()) ~r_drv:1e-3 ~s_drv:0.1).(0)
  in
  check_near 0.5 "t50" (100. *. log 2.) d;
  check_near 1.0 "slew" (100. *. log 9.) s

let test_transient_probe_waveform () =
  (* v(t) = 1 - exp(-t/tau) for a step input. *)
  let rc = lumped_rc () in
  let times = [| 50.; 100.; 200.; 400. |] in
  let v = Analysis.Transient.probe ~step:0.05 rc ~r_drv:1e-3 ~s_drv:0.1 ~node:1 ~times in
  Array.iteri
    (fun i t ->
      check_near 0.01 (Printf.sprintf "v(%g)" t) (1. -. exp (-.t /. 100.)) v.(i))
    times

let test_engines_agree_distributed () =
  (* On a distributed line the two accurate engines agree within ~10 %,
     while Elmore overestimates the delay. *)
  let rc = line ~nseg:10 ~seg_r:100. ~seg_c:10. ~load:60. in
  let de, _ = (Analysis.Elmore.solve rc ~r_drv:50. ~s_drv:30.).(0) in
  let dm, _ = (Analysis.Moments.solve rc ~r_drv:50. ~s_drv:30.).(0) in
  let dt, _ = (Analysis.Transient.solve ~step:0.1 rc ~r_drv:50. ~s_drv:30.).(0) in
  check_bool "elmore is an upper bound" true (de > dt);
  check_bool "moments close to transient" true
    (Float.abs (dm -. dt) /. dt < 0.12)

let test_moments_values () =
  (* m1 of the lumped RC equals (r_drv + R) * C. *)
  let m1, m2, _ = Analysis.Moments.moments (lumped_rc ()) ~r_drv:500. in
  check_near 1e-6 "m1 at tap" 150. m1.(1);
  check_near 1e-6 "m2 = m1^2 (single pole)" (150. *. 150.) m2.(1)

let test_resistive_shielding () =
  (* A long resistive wire shields the far cap: near-tap delay is much
     less than Elmore suggests; transient sees it, so transient < elmore
     more strongly at the near node than at the far node. *)
  let rc = line ~nseg:20 ~seg_r:200. ~seg_c:20. ~load:10. in
  let near = 1 and far = 21 in
  let rc = { rc with Analysis.Rcnet.taps = [| (near, Analysis.Rcnet.Tap_sink 0); (far, Analysis.Rcnet.Tap_sink 1) |] } in
  let e = Analysis.Elmore.solve rc ~r_drv:20. ~s_drv:10. in
  let t = Analysis.Transient.solve ~step:0.2 rc ~r_drv:20. ~s_drv:10. in
  let ratio i = fst t.(i) /. fst e.(i) in
  check_bool "near node shielded more" true (ratio 0 < ratio 1)

(* ---------- Rcnet stage extraction ---------- *)

let buf8 = Tech.Composite.make Tech.Device.small_inverter 8

let staged_tree () =
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let b1 =
    Tree.add_node t ~kind:(Tree.Buffer buf8) ~pos:(Point.make 500_000 0)
      ~parent:(Tree.root t) ()
  in
  let mid = Tree.add_node t ~kind:Tree.Internal ~pos:(Point.make 1_000_000 0) ~parent:b1 () in
  let _s1 =
    Tree.add_node t
      ~kind:(Tree.Sink { Tree.cap = 12.; parity = 1; label = "s1" })
      ~pos:(Point.make 1_500_000 0) ~parent:mid ()
  in
  let _s2 =
    Tree.add_node t
      ~kind:(Tree.Sink { Tree.cap = 20.; parity = 1; label = "s2" })
      ~pos:(Point.make 1_000_000 400_000) ~parent:mid ()
  in
  t

let test_stages () =
  let t = staged_tree () in
  let stages = Analysis.Rcnet.stages ~seg_len:100_000 t in
  check_int "two stages" 2 (List.length stages);
  let s0 = List.hd stages and s1 = List.nth stages 1 in
  check_int "source drives stage 0" 0 s0.Analysis.Rcnet.driver;
  check_int "stage 0 has one tap (the buffer)" 1
    (Array.length s0.Analysis.Rcnet.rc.Analysis.Rcnet.taps);
  check_int "stage 1 has two taps" 2
    (Array.length s1.Analysis.Rcnet.rc.Analysis.Rcnet.taps);
  (* Stage 0 cap: 500 um of wide wire + buffer cin. *)
  let wide = Tech.wire tech (Tech.widest_wire tech) in
  check_near 1e-6 "stage0 cap"
    (Tech.Wire.cap wide 500_000 +. Tech.Composite.c_in buf8)
    (Analysis.Rcnet.total_cap s0.Analysis.Rcnet.rc);
  (* Stage 1 cap: 500+500+400 um of wire + sink loads. *)
  check_near 1e-6 "stage1 cap"
    (Tech.Wire.cap wide 1_400_000 +. 32.)
    (Analysis.Rcnet.total_cap s1.Analysis.Rcnet.rc)

(* ---------- Evaluator ---------- *)

let test_evaluator_basics () =
  let t = staged_tree () in
  Ev.reset_eval_count ();
  let ev = Ev.evaluate ~engine:Ev.Spice t in
  check_int "eval counted" 1 (Ev.eval_count ());
  check_int "runs = corners x transitions" 4 (List.length ev.Ev.runs);
  check_bool "latencies positive" true (ev.Ev.t_min > 0.);
  check_bool "skew small two-sink" true (ev.Ev.skew < 50.);
  check_bool "clr >= skew" true (ev.Ev.clr >= ev.Ev.skew -. 1e-9);
  check_bool "no violations" true (Ev.ok ev)

let test_evaluator_corners () =
  let t = staged_tree () in
  let ev = Ev.evaluate ~engine:Ev.Spice t in
  let nominal = Ev.nominal_run ev Ev.Rise in
  let slow =
    List.find
      (fun (r : Ev.run) ->
        r.Ev.transition = Ev.Rise
        && r.Ev.corner.Tech.Corner.r_scale > 1.0)
      ev.Ev.runs
  in
  let s = (Tree.sinks t).(0) in
  check_bool "slow corner is slower" true
    (slow.Ev.latency.(s) > nominal.Ev.latency.(s))

let test_evaluator_rise_fall () =
  let t = staged_tree () in
  let ev = Ev.evaluate ~engine:Ev.Spice t in
  let rise = Ev.nominal_run ev Ev.Rise and fall = Ev.nominal_run ev Ev.Fall in
  let s = (Tree.sinks t).(0) in
  (* Asymmetric pull-up/pull-down: rise and fall latencies differ, a
     little. *)
  check_bool "rise <> fall" true
    (Float.abs (rise.Ev.latency.(s) -. fall.Ev.latency.(s)) > 0.001);
  check_bool "but not wildly" true
    (Float.abs (rise.Ev.latency.(s) -. fall.Ev.latency.(s)) < 20.)

let test_evaluator_slew_violation () =
  (* A sink 8 mm from a weak source with no buffers must violate slew. *)
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let _ =
    Tree.add_node t
      ~kind:(Tree.Sink { Tree.cap = 20.; parity = 0; label = "far" })
      ~pos:(Point.make 8_000_000 0) ~parent:(Tree.root t) ()
  in
  let ev = Ev.evaluate ~engine:Ev.Spice t in
  check_bool "violates" true (ev.Ev.slew_violations > 0);
  check_bool "not ok" false (Ev.ok ev)

let test_engine_consistency_tree () =
  let t = staged_tree () in
  let sp = Ev.evaluate ~engine:Ev.Spice t in
  let ar = Ev.evaluate ~engine:Ev.Arnoldi t in
  let s = (Tree.sinks t).(0) in
  let lat e = (Ev.nominal_run e Ev.Rise).Ev.latency.(s) in
  check_bool "arnoldi within 10% of spice" true
    (Float.abs (lat sp -. lat ar) /. lat sp < 0.10)

let transient_qcheck =
  QCheck.Test.make ~name:"transient matches moments on random RC lines"
    ~count:30
    QCheck.(triple (int_range 2 12) (int_range 10 300) (int_range 5 120))
    (fun (nseg, r, c) ->
      let rc =
        line ~nseg ~seg_r:(float_of_int r) ~seg_c:(float_of_int c) ~load:30.
      in
      let dm, _ = (Analysis.Moments.solve rc ~r_drv:40. ~s_drv:20.).(0) in
      let dt, _ = (Analysis.Transient.solve ~step:0.2 rc ~r_drv:40. ~s_drv:20.).(0) in
      Float.abs (dm -. dt) /. Float.max 1. dt < 0.15)

let monotone_qcheck =
  QCheck.Test.make ~name:"transient: more load, more delay" ~count:30
    QCheck.(pair (int_range 10 200) (int_range 10 200))
    (fun (load1, extra) ->
      let solve load =
        let rc = line ~nseg:6 ~seg_r:150. ~seg_c:15. ~load in
        fst (Analysis.Transient.solve ~step:0.2 rc ~r_drv:60. ~s_drv:20.).(0)
      in
      solve (float_of_int (load1 + extra)) > solve (float_of_int load1))

let test_three_corners () =
  let typ = Tech.Corner.make ~name:"typ@1.1V" ~vdd:1.1 () in
  let tech3 =
    Tech.make ~wires:tech.Tech.wires ~devices:tech.Tech.devices
      ~slew_limit:100. ~cap_limit:infinity
      ~corners:[ Tech.Corner.fast; typ; Tech.Corner.slow ] ()
  in
  let t = Tree.create ~tech:tech3 ~source_pos:(Point.make 0 0) in
  let b = Tree.add_node t ~kind:(Tree.Buffer buf8) ~pos:(Point.make 400_000 0)
      ~parent:(Tree.root t) () in
  ignore (Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 15.; parity = 1; label = "s" })
            ~pos:(Point.make 900_000 0) ~parent:b ());
  let ev = Ev.evaluate ~engine:Ev.Spice t in
  check_int "6 runs (3 corners x 2 transitions)" 6 (List.length ev.Ev.runs);
  (* Latency ordering follows supply ordering. *)
  let s = (Tree.sinks t).(0) in
  let lat c =
    (List.find
       (fun (r : Ev.run) ->
         r.Ev.transition = Ev.Rise && r.Ev.corner.Tech.Corner.name = c)
       ev.Ev.runs)
      .Ev.latency.(s)
  in
  check_bool "fast < typ < slow" true
    (lat "fast@1.2V" < lat "typ@1.1V" && lat "typ@1.1V" < lat "slow@1.0V")

let evaluator_snake_qcheck =
  QCheck.Test.make
    ~name:"evaluator: snaking a sink wire slows it most" ~count:20
    QCheck.(int_range 100_000 400_000)
    (fun extra ->
      let t = staged_tree () in
      let sinks = Tree.sinks t in
      let before = Ev.evaluate ~engine:Ev.Spice t in
      let brun = Ev.nominal_run before Ev.Rise in
      (Tree.node t sinks.(0)).Tree.snake <- extra;
      let after = Ev.evaluate ~engine:Ev.Spice t in
      let arun = Ev.nominal_run after Ev.Rise in
      (* the snaked sink slows; sharing only through the driver stage, the
         sibling moves far less *)
      let d0 = arun.Ev.latency.(sinks.(0)) -. brun.Ev.latency.(sinks.(0)) in
      let d1 =
        Float.abs (arun.Ev.latency.(sinks.(1)) -. brun.Ev.latency.(sinks.(1)))
      in
      d0 > 0.05 && d1 < d0)

let test_local_skew () =
  (* Three sinks: two adjacent with close latencies, one far with a very
     different latency. Local skew at a small radius must ignore the far
     pair. *)
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let mid = Tree.add_node t ~kind:Tree.Internal ~pos:(Point.make 500_000 0)
      ~parent:(Tree.root t) () in
  let add label pos =
    Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 10.; parity = 0; label })
      ~pos ~parent:mid ()
  in
  let a = add "a" (Point.make 600_000 0) in
  let b = add "b" (Point.make 650_000 0) in
  let c = add "c" (Point.make 3_000_000 0) in
  let ev = Ev.evaluate ~engine:Ev.Spice t in
  let run = Ev.nominal_run ev Ev.Rise in
  let local = Analysis.Localskew.compute run ~tree:t ~radius:100_000 in
  let near_gap = Float.abs (run.Ev.latency.(a) -. run.Ev.latency.(b)) in
  let far_gap = Float.abs (run.Ev.latency.(a) -. run.Ev.latency.(c)) in
  check_near 1e-9 "local = near pair gap" near_gap local;
  check_bool "far pair bigger" true (far_gap > local);
  (* a radius covering everything reproduces the global spread *)
  let global = Analysis.Localskew.compute run ~tree:t ~radius:10_000_000 in
  check_near 1e-9 "global radius = global skew" ev.Ev.skew_rise global;
  (* profile is monotone in radius *)
  let prof = Analysis.Localskew.profile run ~tree:t ~radii:[ 100_000; 10_000_000 ] in
  (match prof with
  | [ (_, small); (_, big) ] -> check_bool "monotone" true (small <= big)
  | _ -> Alcotest.fail "profile shape")

let test_montecarlo () =
  let t = staged_tree () in
  let spec = { Analysis.Montecarlo.default_spec with Analysis.Montecarlo.trials = 10 } in
  let r = Analysis.Montecarlo.run spec t in
  check_bool "nominal finite" true (Float.is_finite r.Analysis.Montecarlo.nominal_skew);
  check_bool "variation raises effective skew" true
    (r.Analysis.Montecarlo.max_skew >= r.Analysis.Montecarlo.nominal_skew -. 1e-9);
  check_bool "std positive" true (r.Analysis.Montecarlo.std_skew > 0.);
  (* deterministic given the seed *)
  let r2 = Analysis.Montecarlo.run spec (staged_tree ()) in
  check_near 1e-9 "deterministic" r.Analysis.Montecarlo.mean_skew
    r2.Analysis.Montecarlo.mean_skew

let test_montecarlo_stronger_buffers_help () =
  (* Paper §IV-H claim (ii): stronger buffers reduce variation impact.
     Same tree structure with 4x vs 16x composites under the same relative
     sigma: the stronger tree's skew spread must be no larger. *)
  (* One independent buffer per branch: common-mode variation cancels in
     skew, per-branch variation does not — that is what buffer strength
     mitigates. *)
  let build count =
    let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
    let buf = Tech.Composite.make Tech.Device.small_inverter count in
    let mid = Tree.add_node t ~kind:Tree.Internal ~pos:(Point.make 400_000 0)
        ~parent:(Tree.root t) () in
    let branch dy label =
      let b = Tree.add_node t ~kind:(Tree.Buffer buf)
          ~pos:(Point.make 700_000 dy) ~parent:mid () in
      ignore (Tree.add_node t
                ~kind:(Tree.Sink { Tree.cap = 40.; parity = 1; label })
                ~pos:(Point.make 1_200_000 dy) ~parent:b ())
    in
    branch 0 "a";
    branch 400_000 "b";
    t
  in
  let spread count =
    let spec =
      { Analysis.Montecarlo.default_spec with
        Analysis.Montecarlo.trials = 25; sigma_wire = 0. }
    in
    (Analysis.Montecarlo.run spec (build count)).Analysis.Montecarlo.std_skew
  in
  check_bool "16x spread <= 4x spread" true (spread 16 <= spread 4 +. 1e-6)

let test_montecarlo_wire_sigma () =
  (* Wire jitter alone must also produce spread. *)
  let t = staged_tree () in
  let spec =
    { Analysis.Montecarlo.default_spec with
      Analysis.Montecarlo.trials = 10; sigma_buffer = 0.; sigma_wire = 0.05 }
  in
  let r = Analysis.Montecarlo.run spec t in
  check_bool "wire-only spread" true (r.Analysis.Montecarlo.std_skew > 0.)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "analysis"
    [
      ("engines-lumped",
       [ Alcotest.test_case "elmore" `Quick test_lumped_elmore;
         Alcotest.test_case "moments" `Quick test_lumped_moments;
         Alcotest.test_case "transient" `Quick test_lumped_transient;
         Alcotest.test_case "waveform" `Quick test_transient_probe_waveform ]);
      ("engines-distributed",
       [ Alcotest.test_case "agreement" `Quick test_engines_agree_distributed;
         Alcotest.test_case "moment values" `Quick test_moments_values;
         Alcotest.test_case "resistive shielding" `Quick test_resistive_shielding;
         q transient_qcheck; q monotone_qcheck ]);
      ("rcnet", [ Alcotest.test_case "stages" `Quick test_stages ]);
      ("evaluator",
       [ Alcotest.test_case "basics" `Quick test_evaluator_basics;
         Alcotest.test_case "corners" `Quick test_evaluator_corners;
         Alcotest.test_case "rise/fall" `Quick test_evaluator_rise_fall;
         Alcotest.test_case "slew violation" `Quick test_evaluator_slew_violation;
         Alcotest.test_case "engine consistency" `Quick test_engine_consistency_tree ]);
      ("corners3",
       [ Alcotest.test_case "three corners" `Quick test_three_corners;
         q evaluator_snake_qcheck ]);
      ("localskew", [ Alcotest.test_case "windowed" `Quick test_local_skew ]);
      ("montecarlo",
       [ Alcotest.test_case "distribution" `Quick test_montecarlo;
         Alcotest.test_case "stronger buffers help" `Quick test_montecarlo_stronger_buffers_help;
         Alcotest.test_case "wire sigma" `Quick test_montecarlo_wire_sigma ]);
    ]
