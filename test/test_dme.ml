open Geometry
module Topology = Dme.Topology

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tech = Tech.default45 ()

let sinks_of_points pts =
  Array.of_list
    (List.mapi
       (fun i p -> { Dme.Zst.pos = p; cap = 10.; parity = 0; label = Printf.sprintf "s%d" i })
       pts)

let random_sinks seed n span =
  let rng = Suite.Rng.create seed in
  Array.init n (fun i ->
      { Dme.Zst.pos = Point.make (Suite.Rng.int rng span) (Suite.Rng.int rng span);
        cap = 5. +. Suite.Rng.float rng *. 25.; parity = 0;
        label = Printf.sprintf "s%d" i })

(* ---------- Topology ---------- *)

let test_topology_leaves () =
  let pts = Array.init 17 (fun i -> Point.make (i * 100) ((i * 37) mod 500)) in
  let topo = Topology.generate pts in
  check_int "size" 17 (Topology.size topo);
  let leaves = List.sort compare (Topology.leaves topo) in
  Alcotest.(check (list int)) "all leaves once" (List.init 17 Fun.id) leaves

let test_topology_balance () =
  (* Edahiro rounds halve cluster count: depth stays near log2 n. *)
  let pts = (random_sinks 3 128 1_000_000 |> Array.map (fun s -> s.Dme.Zst.pos)) in
  let topo = Topology.generate pts in
  let d = Topology.depth topo in
  check_bool "depth close to log2" true (d >= 7 && d <= 11)

let test_topology_single () =
  check_bool "single sink" true (Topology.generate [| Point.make 5 5 |] = Topology.Leaf 0)

(* ---------- Merge: Tsay balance point ---------- *)

let test_merge_symmetric () =
  (* Two equal sinks: the tapping point is equidistant. *)
  let positions = [| Point.make 0 0; Point.make 1_000_000 0 |] in
  let caps = [| 10.; 10. |] in
  let wire = Tech.wire tech (Tech.widest_wire tech) in
  let m =
    Dme.Merge.bottom_up (Topology.Node (Topology.Leaf 0, Topology.Leaf 1))
      ~positions ~caps ~wire
  in
  (match m.Dme.Merge.shape with
  | Dme.Merge.Mnode (_, _, ea, eb) ->
    Alcotest.(check (float 1.)) "balanced split" ea eb;
    Alcotest.(check (float 1.)) "covers distance" 1_000_000. (ea +. eb)
  | Dme.Merge.Mleaf _ -> Alcotest.fail "expected a merge node");
  check_bool "region between sinks" true
    (Marc.dist_to_point m.Dme.Merge.region (Point.make 500_000 0) <= 1)

let test_merge_asymmetric_caps () =
  (* Heavier load on sink 1 pulls the tapping point towards it. *)
  let positions = [| Point.make 0 0; Point.make 1_000_000 0 |] in
  let caps = [| 5.; 200. |] in
  let wire = Tech.wire tech (Tech.widest_wire tech) in
  let m =
    Dme.Merge.bottom_up (Topology.Node (Topology.Leaf 0, Topology.Leaf 1))
      ~positions ~caps ~wire
  in
  match m.Dme.Merge.shape with
  | Dme.Merge.Mnode (_, _, ea, eb) ->
    check_bool "tap closer to heavy sink" true (ea > eb)
  | Dme.Merge.Mleaf _ -> Alcotest.fail "expected a merge node"

let test_merge_snaking () =
  (* Merge a slow two-sink subtree (long internal wire => real delay) with
     a nearby single sink: the fast side's edge must be elongated
     (snaked) beyond the geometric distance to preserve zero skew. *)
  let positions =
    [| Point.make 0 0; Point.make 2_000_000 0; Point.make 1_000_000 10_000 |]
  in
  let caps = [| 10.; 10.; 10. |] in
  let wire = Tech.wire tech (Tech.widest_wire tech) in
  let topo =
    Topology.Node (Topology.Node (Topology.Leaf 0, Topology.Leaf 1), Topology.Leaf 2)
  in
  let m = Dme.Merge.bottom_up topo ~positions ~caps ~wire in
  match m.Dme.Merge.shape with
  | Dme.Merge.Mnode (a, _, ea, eb) ->
    check_bool "slow side has delay" true (a.Dme.Merge.delay > 1.);
    check_bool "tap on slow side" true (ea = 0.);
    check_bool "fast side snaked beyond distance" true (eb > 10_000.)
  | Dme.Merge.Mleaf _ -> Alcotest.fail "expected a merge node"

let test_edge_delay_formula () =
  let wire = Tech.Wire.make ~name:"w" ~res_per_nm:1e-4 ~cap_per_nm:2e-4 in
  (* 1mm: R=100, C=200; into 50fF: 100*(100+50)*1e-3 = 15 ps *)
  Alcotest.(check (float 1e-9)) "edge delay" 15.
    (Dme.Merge.edge_delay ~wire ~len:1_000_000. ~load:50.)

(* ---------- End-to-end ZST ---------- *)

let elmore_skew tree =
  let ev = Analysis.Evaluator.evaluate ~engine:Analysis.Evaluator.Elmore_model tree in
  ev.Analysis.Evaluator.skew

let test_zst_zero_skew () =
  let sinks = random_sinks 11 60 4_000_000 in
  let tree = Dme.Zst.build ~tech ~source:(Point.make 0 2_000_000) sinks in
  Alcotest.(check (list string)) "validates" [] (Ctree.Validate.check tree);
  check_int "all sinks present" 60 (Array.length (Ctree.Tree.sinks tree));
  check_bool "near-zero elmore skew" true (elmore_skew tree < 1.0)

let test_zst_single_sink () =
  let sinks = sinks_of_points [ Point.make 1_000_000 1_000_000 ] in
  let tree = Dme.Zst.build ~tech ~source:(Point.make 0 0) sinks in
  check_int "one sink" 1 (Array.length (Ctree.Tree.sinks tree));
  Alcotest.(check (list string)) "validates" [] (Ctree.Validate.check tree)

let test_zst_coincident_sinks () =
  let p = Point.make 500_000 500_000 in
  let sinks = sinks_of_points [ p; p; p ] in
  let tree = Dme.Zst.build ~tech ~source:(Point.make 0 0) sinks in
  check_int "three sinks" 3 (Array.length (Ctree.Tree.sinks tree));
  check_bool "tiny skew" true (elmore_skew tree < 0.5)

let test_zst_rejects_empty () =
  Alcotest.check_raises "no sinks" (Invalid_argument "Zst.build: no sinks")
    (fun () -> ignore (Dme.Zst.build ~tech ~source:Point.origin [||]))

let test_zst_trunk () =
  (* A boundary source yields a trunk: the root has exactly one child. *)
  let sinks = random_sinks 23 40 3_000_000 in
  let tree = Dme.Zst.build ~tech ~source:(Point.make 0 1_500_000) sinks in
  check_int "single trunk" 1
    (List.length (Ctree.Tree.node tree (Ctree.Tree.root tree)).Ctree.Tree.children)

let test_bst_budget () =
  let sinks = random_sinks 31 50 4_000_000 in
  let zst = Dme.Zst.build ~tech ~source:(Point.make 0 0) sinks in
  let wl t = (Ctree.Stats.compute t).Ctree.Stats.wirelength in
  let prev_wl = ref (wl zst) in
  List.iter
    (fun budget ->
      let bst = Dme.Zst.build ~tech ~source:(Point.make 0 0) ~skew_budget:budget sinks in
      Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check bst);
      (* construction skew stays within the budget (plus model slack) *)
      check_bool
        (Printf.sprintf "skew within budget %g" budget)
        true
        (elmore_skew bst <= budget +. 2.);
      (* a larger budget never costs wirelength *)
      check_bool "wirelength non-increasing" true (wl bst <= !prev_wl);
      prev_wl := wl bst)
    [ 5.; 20.; 100. ]

let test_bst_saves_snake () =
  (* The snaking construction of test_merge_snaking: a slow two-sink
     subtree merged with a nearby sink. With a generous budget the fast
     side's elongation is skipped (eb = d); with budget 0 it is snaked. *)
  let positions =
    [| Point.make 0 0; Point.make 2_000_000 0; Point.make 1_000_000 10_000 |]
  in
  let caps = [| 10.; 10.; 10. |] in
  let wire = Tech.wire tech (Tech.widest_wire tech) in
  let topo =
    Topology.Node (Topology.Node (Topology.Leaf 0, Topology.Leaf 1), Topology.Leaf 2)
  in
  let eb_of budget =
    match
      (Dme.Merge.bottom_up ~skew_budget:budget topo ~positions ~caps ~wire)
        .Dme.Merge.shape
    with
    | Dme.Merge.Mnode (_, _, _, eb) -> eb
    | Dme.Merge.Mleaf _ -> Alcotest.fail "expected merge node"
  in
  let strict = eb_of 0. and relaxed = eb_of 1e6 in
  check_bool "zst mode snakes" true (strict > 10_000.);
  check_bool "bst mode keeps geometric length" true (relaxed <= 10_000. +. 1.);
  (* The recorded spread reflects the absorbed imbalance. *)
  let m = Dme.Merge.bottom_up ~skew_budget:1e6 topo ~positions ~caps ~wire in
  check_bool "spread recorded" true
    (m.Dme.Merge.delay -. m.Dme.Merge.delay_min > 1.)

let tsay_balance_qcheck =
  QCheck.Test.make
    ~name:"merge: tapping point solves the Tsay balance equation" ~count:100
    QCheck.(quad (int_range 10 400) (int_range 10 400)
              (int_range 100_000 3_000_000) (int_range 0 1_000_000))
    (fun (ca, cb, dx, dy) ->
      let positions = [| Point.make 0 0; Point.make dx dy |] in
      let caps = [| float_of_int ca; float_of_int cb |] in
      let wire = Tech.wire tech (Tech.widest_wire tech) in
      let m =
        Dme.Merge.bottom_up
          (Topology.Node (Topology.Leaf 0, Topology.Leaf 1))
          ~positions ~caps ~wire
      in
      match m.Dme.Merge.shape with
      | Dme.Merge.Mnode (_, _, ea, eb) ->
        let da = Dme.Merge.edge_delay ~wire ~len:ea ~load:caps.(0) in
        let db = Dme.Merge.edge_delay ~wire ~len:eb ~load:caps.(1) in
        (* both leaves have zero internal delay: the edges must balance *)
        Float.abs (da -. db) < 0.05
        && Float.abs (ea +. eb -. float_of_int (dx + dy)) < 2.
      | Dme.Merge.Mleaf _ -> false)

let zst_qcheck =
  QCheck.Test.make ~name:"zst: random instances have sub-ps elmore skew"
    ~count:25
    QCheck.(pair (int_range 2 80) (int_range 0 1000))
    (fun (n, seed) ->
      let sinks = random_sinks seed n 3_000_000 in
      let tree = Dme.Zst.build ~tech ~source:(Point.make 0 0) sinks in
      Ctree.Validate.check tree = [] && elmore_skew tree < 1.0)

let zst_wirelength_qcheck =
  QCheck.Test.make
    ~name:"zst: wirelength at least the spanning lower bound, not absurd"
    ~count:20
    QCheck.(int_range 10 60)
    (fun n ->
      let sinks = random_sinks (n * 7) n 2_000_000 in
      let tree = Dme.Zst.build ~tech ~source:(Point.make 0 0) sinks in
      let stats = Ctree.Stats.compute tree in
      let span =
        Array.fold_left
          (fun acc s -> max acc (Point.dist Point.origin s.Dme.Zst.pos))
          0 sinks
      in
      stats.Ctree.Stats.wirelength >= span
      && stats.Ctree.Stats.wirelength < span * n)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "dme"
    [
      ("topology",
       [ Alcotest.test_case "leaves" `Quick test_topology_leaves;
         Alcotest.test_case "balance" `Quick test_topology_balance;
         Alcotest.test_case "single" `Quick test_topology_single ]);
      ("merge",
       [ Alcotest.test_case "symmetric" `Quick test_merge_symmetric;
         Alcotest.test_case "asymmetric caps" `Quick test_merge_asymmetric_caps;
         Alcotest.test_case "snaking" `Quick test_merge_snaking;
         Alcotest.test_case "edge delay" `Quick test_edge_delay_formula;
         q tsay_balance_qcheck ]);
      ("zst",
       [ Alcotest.test_case "zero skew" `Quick test_zst_zero_skew;
         Alcotest.test_case "single sink" `Quick test_zst_single_sink;
         Alcotest.test_case "coincident sinks" `Quick test_zst_coincident_sinks;
         Alcotest.test_case "empty rejected" `Quick test_zst_rejects_empty;
         Alcotest.test_case "trunk" `Quick test_zst_trunk;
         Alcotest.test_case "bounded-skew budget" `Quick test_bst_budget;
         Alcotest.test_case "bounded-skew saves snake" `Quick test_bst_saves_snake;
         q zst_qcheck; q zst_wirelength_qcheck ]);
    ]
