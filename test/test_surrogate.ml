(* Calibrated surrogate ranking: OLS refit correctness against a
   closed-form fixture, ring-buffer recency, widening dynamics, the
   off-mode bit-identity guarantee, the width-independence of the
   ranked schedule, and the eval-budget/accuracy contract of ranking
   against the unranked lazy search. *)

module Tree = Ctree.Tree
module Ev = Analysis.Evaluator
module Surrogate = Analysis.Surrogate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_near tol = Alcotest.(check (float tol))

(* ---------- OLS closed-form fixture ---------- *)

(* Samples generated exactly from a known linear law must be recovered
   exactly (up to the tiny conditioning ridge): the residual of a
   consistent over-determined system is zero, so the minimiser is the
   generating coefficient vector itself. *)
let test_ols_fixture () =
  let beta_true = [| 2.0; -3.0; 0.5; 0.0; 1.0; 0.0; 0.0; -1.0 |] in
  let bias_true = 0.25 in
  let rng = Suite.Rng.create 77 in
  let samples =
    Array.init 24 (fun _ ->
        let x =
          Array.init Surrogate.dim (fun _ ->
              (Suite.Rng.float rng *. 4.) -. 2.)
        in
        let y =
          bias_true
          +. Array.fold_left ( +. ) 0.
               (Array.mapi (fun j b -> b *. x.(j)) beta_true)
        in
        (x, y))
  in
  let beta = Surrogate.ols samples in
  check_int "one coefficient per feature plus bias" (Surrogate.dim + 1)
    (Array.length beta);
  Array.iteri
    (fun j b ->
      check_near 1e-4 (Printf.sprintf "coefficient %d recovered" j) b
        beta.(j))
    beta_true;
  check_near 1e-4 "bias recovered (last slot)" bias_true
    beta.(Surrogate.dim)

(* ---------- ring-buffer recency ---------- *)

(* After the generating law changes, a full window of fresh samples must
   displace the stale ones: the ring holds only the most recent
   [capacity] observations, so the refit tracks the new law. *)
let test_ring_recency () =
  let t = Surrogate.create () in
  let key = "ring-test" in
  let sample x0 = Array.init Surrogate.dim (fun j -> if j = 0 then x0 else 0.) in
  for i = 1 to 100 do
    let x0 = float_of_int (i mod 17) in
    Surrogate.observe t ~key (sample x0) x0
  done;
  (* More than one full window of the new law: the most recent refit
     must fit a window that holds new-regime samples only. *)
  for i = 1 to 72 do
    let x0 = float_of_int (i mod 13) in
    Surrogate.observe t ~key (sample x0) ((2. *. x0) +. 1.)
  done;
  match Surrogate.predict t ~key (sample 10.) with
  | None -> Alcotest.fail "model still cold after 164 observations"
  | Some (pred, trust) ->
    check_near 0.5 "prediction follows the recent regime" 21. pred;
    check_bool "trust radius is finite" true (Float.is_finite trust)

(* ---------- widening dynamics and the audit schedule ---------- *)

let test_widening_and_audit () =
  let t = Surrogate.create () in
  let key = "widen-test" in
  check_int "widening starts at zero" 0 (Surrogate.widening t ~key);
  Surrogate.note_mispredict t ~key;
  Surrogate.note_mispredict t ~key;
  check_int "each mispredict widens by one" 2 (Surrogate.widening t ~key);
  Surrogate.note_intrust t ~key;
  check_int "an in-trust win decays the widening" 1
    (Surrogate.widening t ~key);
  Surrogate.note_intrust t ~key;
  Surrogate.note_intrust t ~key;
  check_int "decay floors at zero" 0 (Surrogate.widening t ~key);
  let fired = ref [] in
  for i = 1 to 16 do
    if Surrogate.audit_hopeless t then fired := i :: !fired
  done;
  Alcotest.(check (list int))
    "audit fires on exactly every 8th hopeless round" [ 16; 8 ]
    !fired

(* ---------- flow-level oracles ---------- *)

let run_flow ~surrogate ~speculation b =
  let config =
    { Core.Config.scalability with
      Core.Config.surrogate;
      speculation;
      rank_top = 0 }
  in
  Core.Flow.run ~config ~tech:b.Suite.Format_io.tech
    ~source:b.Suite.Format_io.source
    ~obstacles:b.Suite.Format_io.obstacles b.Suite.Format_io.sinks

(* surrogate = off must reproduce the unranked flow bit for bit — the
   flag alone (feature probes, state creation) cannot perturb anything. *)
let test_off_bit_identity () =
  let b = Suite.Runner.load_bench "ti:200" in
  let r1 = run_flow ~surrogate:false ~speculation:1 b in
  let r2 = run_flow ~surrogate:false ~speculation:1 b in
  check_bool "off-mode runs are bit-identical" true
    (Tree.digest r1.Core.Flow.tree = Tree.digest r2.Core.Flow.tree);
  check_int "off-mode eval counts are deterministic"
    r1.Core.Flow.eval_runs r2.Core.Flow.eval_runs;
  check_bool "off-mode run carries no surrogate stats" true
    (r1.Core.Flow.surrogate = None)

(* The ranked schedule is a pure function of (model state, features,
   measured results) — never of the speculation width — so surrogate-on
   runs must agree bit for bit AND eval for eval at widths 1 and 4. *)
let test_on_width_independence () =
  let b = Suite.Runner.load_bench "ti:200" in
  let r1 = run_flow ~surrogate:true ~speculation:1 b in
  let r4 = run_flow ~surrogate:true ~speculation:4 b in
  check_bool "ranked trees bit-identical across widths" true
    (Tree.digest r1.Core.Flow.tree = Tree.digest r4.Core.Flow.tree);
  check_int "ranked eval counts identical across widths"
    r1.Core.Flow.eval_runs r4.Core.Flow.eval_runs

(* Ranking must save evaluations and stay within the quality tolerance
   of the unranked search (it may converge to a nearby optimum). *)
let test_on_vs_off_budget () =
  let b = Suite.Runner.load_bench "ti:500" in
  let off = run_flow ~surrogate:false ~speculation:1 b in
  let on = run_flow ~surrogate:true ~speculation:1 b in
  check_bool "ranking does not cost extra evaluations" true
    (on.Core.Flow.eval_runs <= off.Core.Flow.eval_runs);
  let tol = 0.5 in
  check_bool "final skew within tolerance of unranked" true
    (on.Core.Flow.final.Ev.skew
     <= off.Core.Flow.final.Ev.skew +. tol);
  check_bool "final CLR within tolerance of unranked" true
    (on.Core.Flow.final.Ev.clr <= off.Core.Flow.final.Ev.clr +. tol);
  match on.Core.Flow.surrogate with
  | None -> Alcotest.fail "surrogate-on run lost its stats"
  | Some s ->
    check_bool "calibration observed measured pairs" true
      Surrogate.(s.observations > 0);
    check_bool "some rounds went through ranking" true
      Surrogate.(s.ranked_rounds > 0)

(* ---------- suite store-hit reporting ---------- *)

let test_suite_store_hits () =
  let out_dir = Filename.concat (Filename.get_temp_dir_name ()) "surro_suite" in
  let config = { Core.Config.scalability with Core.Config.speculation = 1 } in
  let r =
    Suite.Runner.run ~out_dir ~jobs:0 ~config
      [ Suite.Runner.spec_of_string "ti:60"; Suite.Runner.spec_of_string "ti:60" ]
  in
  let completed =
    List.filter_map
      (fun (ir : Suite.Runner.instance_report) ->
        match ir.Suite.Runner.status with
        | Suite.Runner.Completed c -> Some c
        | Suite.Runner.Failed _ -> None)
      r.Suite.Runner.reports
  in
  check_int "both instances completed" 2 (List.length completed);
  let hits =
    List.fold_left (fun a c -> a + c.Suite.Runner.store_hits) 0 completed
  in
  let misses =
    List.fold_left (fun a c -> a + c.Suite.Runner.store_misses) 0 completed
  in
  check_bool "identical twin instance hits the shared store" true (hits > 0);
  check_bool "store counters track traffic" true (hits + misses > 0);
  let json = Suite.Report.Json.to_string (Suite.Runner.to_json r) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "suite.json reports store hits" true
    (contains json "\"store_hits\"")

let () =
  Alcotest.run "surrogate"
    [
      ( "model",
        [
          Alcotest.test_case "OLS closed-form fixture" `Quick
            test_ols_fixture;
          Alcotest.test_case "ring-buffer recency" `Quick test_ring_recency;
          Alcotest.test_case "widening decay and audit schedule" `Quick
            test_widening_and_audit;
        ] );
      ( "flow",
        [
          Alcotest.test_case "surrogate off is bit-identical" `Quick
            test_off_bit_identity;
          Alcotest.test_case "ranked schedule is width-independent" `Quick
            test_on_width_independence;
          Alcotest.test_case "ranking saves evals within tolerance" `Quick
            test_on_vs_off_budget;
        ] );
      ( "suite",
        [
          Alcotest.test_case "store hits reported per instance" `Quick
            test_suite_store_hits;
        ] );
    ]
