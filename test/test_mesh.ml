open Geometry

let check_bool = Alcotest.(check bool)
let check_near tol = Alcotest.(check (float tol))

let tech = Tech.default45 ()

(* ---------- Network: CG transient vs. analytic / tree solver ---------- *)

let test_network_single_rc () =
  (* R=1000, C=100: tau = 100 ps; matches the analytic single pole. *)
  let net = Mesh.Network.create () in
  let n = Mesh.Network.add_node net ~cap:100. in
  let results =
    Mesh.Network.transient net
      ~sources:[ { Mesh.Network.node = n; r_drv = 1000.; t0 = 0.; ramp = 0.1 } ]
      ~watch:[| n |] ~step:0.1 ()
  in
  let t50, slew = results.(0) in
  check_near 0.7 "t50 = tau ln2" (100. *. log 2.) t50;
  check_near 1.5 "slew = tau ln9" (100. *. log 9.) slew

let test_network_matches_tree_solver () =
  (* A ladder without loops must agree with the tree transient engine:
     mirror the rc structure node for node. *)
  let nseg = 6 in
  let seg_r = 150. and seg_c = 20. and load = 50. in
  let s_drv = 25. in
  let rc =
    { Analysis.Rcnet.parent = Array.init (nseg + 2) (fun i -> i - 1);
      res =
        Array.init (nseg + 2) (fun i ->
            if i = 0 then 0. else if i <= nseg then seg_r else 1e-3);
      cap =
        Array.init (nseg + 2) (fun i ->
            if i = 0 then 0. else if i <= nseg then seg_c else load);
      taps = [| (nseg + 1, Analysis.Rcnet.Tap_sink 0) |];
      size = nseg + 2 }
  in
  let net = Mesh.Network.create () in
  let nodes =
    Array.init (nseg + 2) (fun i -> Mesh.Network.add_node net ~cap:rc.Analysis.Rcnet.cap.(i))
  in
  for i = 1 to nseg + 1 do
    Mesh.Network.add_res net nodes.(i - 1) nodes.(i) rc.Analysis.Rcnet.res.(i)
  done;
  let ramp = s_drv /. 0.8 in
  let t50_net, slew_net =
    (Mesh.Network.transient net
       ~sources:[ { Mesh.Network.node = nodes.(0); r_drv = 40.; t0 = 0.; ramp } ]
       ~watch:[| nodes.(nseg + 1) |] ~step:0.2 ()).(0)
  in
  let d_tree, slew_tree =
    (Analysis.Transient.solve ~step:0.2 rc ~r_drv:40. ~s_drv).(0)
  in
  (* The tree engine reports delay from the ramp's 50 % point; the network
     reports absolute time. *)
  check_near 1.0 "t50 agree" (d_tree +. (ramp /. 2.)) t50_net;
  check_near 2.0 "slew agree" slew_tree slew_net

let test_network_loop () =
  (* Two parallel resistive paths halve the effective resistance. *)
  let solve_with both =
    let net = Mesh.Network.create () in
    let a = Mesh.Network.add_node net ~cap:0. in
    let b = Mesh.Network.add_node net ~cap:200. in
    Mesh.Network.add_res net a b 400.;
    if both then Mesh.Network.add_res net a b 400.;
    fst
      (Mesh.Network.transient net
         ~sources:[ { Mesh.Network.node = a; r_drv = 1.; t0 = 0.; ramp = 0.1 } ]
         ~watch:[| b |] ~step:0.2 ()).(0)
  in
  let single = solve_with false and double = solve_with true in
  check_near 2.0 "parallel halves delay" (single /. 2.) double

let test_network_errors () =
  let net = Mesh.Network.create () in
  let a = Mesh.Network.add_node net ~cap:1. in
  Alcotest.check_raises "bad res"
    (Invalid_argument "Network.add_res: nonpositive resistance") (fun () ->
      Mesh.Network.add_res net a a 0.);
  check_bool "no sources rejected" true
    (try
       ignore (Mesh.Network.transient net ~sources:[] ~watch:[| a |] ());
       false
     with Invalid_argument _ -> true)

(* ---------- Grid mesh ---------- *)

let region = Rect.make ~lx:0 ~ly:0 ~hx:2_000_000 ~hy:2_000_000

let some_sinks n =
  let rng = Suite.Rng.create 5 in
  Array.init n (fun _ ->
      ( Point.make (Suite.Rng.int rng 2_000_000) (Suite.Rng.int rng 2_000_000),
        10. ))

let test_mesh_build () =
  let m = Mesh.Grid_mesh.build ~tech ~region ~nx:5 ~ny:5 ~sinks:(some_sinks 30) in
  check_bool "mesh cap positive" true (Mesh.Grid_mesh.wire_cap m > 0.);
  (* 2mm x 2mm, 5x5: 2 x 5 lines x 2mm of wide wire. *)
  let expected =
    Tech.Wire.cap (Tech.wire tech (Tech.widest_wire tech)) (2 * 5 * 2_000_000)
  in
  check_bool "mesh wire cap >= grid wires" true
    (Mesh.Grid_mesh.wire_cap m >= expected)

let test_mesh_taps () =
  let m = Mesh.Grid_mesh.build ~tech ~region ~nx:9 ~ny:9 ~sinks:(some_sinks 10) in
  let taps = Mesh.Grid_mesh.tap_points m ~k:3 in
  check_bool "9 taps" true (Array.length taps = 9);
  (* Taps lie in the region, corners included. *)
  Array.iter (fun p -> check_bool "in region" true (Rect.contains region p)) taps;
  check_bool "corner tap" true
    (Array.exists (fun p -> Point.equal p (Point.make 0 0)) taps)

let test_mesh_equalises () =
  (* Spread tap arrivals over 40 ps; the mesh must deliver much less sink
     skew, and a denser mesh must absorb more. *)
  let sinks = some_sinks 60 in
  let skew_of nx =
    let m = Mesh.Grid_mesh.build ~tech ~region ~nx ~ny:nx ~sinks in
    let rng = Suite.Rng.create 9 in
    let taps =
      Array.to_list (Mesh.Grid_mesh.tap_points m ~k:3)
      |> List.map (fun pos ->
             { Mesh.Grid_mesh.pos;
               arrival = 200. +. Suite.Rng.float rng *. 40.;
               r_drv = 14.; ramp = 25. })
    in
    (Mesh.Grid_mesh.evaluate m ~taps ()).Mesh.Grid_mesh.skew
  in
  let sparse = skew_of 5 and dense = skew_of 12 in
  check_bool "mesh absorbs most of 40ps" true (sparse < 30.);
  check_bool "denser absorbs more" true (dense < sparse)

let test_mesh_hybrid () =
  let m = Mesh.Grid_mesh.build ~tech ~region ~nx:8 ~ny:8 ~sinks:(some_sinks 40) in
  let res, flow =
    Mesh.Grid_mesh.hybrid ~tech ~source:(Point.make 0 1_000_000) ~k:3 m
  in
  check_bool "tree is tight" true
    (flow.Core.Flow.final.Analysis.Evaluator.skew < 10.);
  check_bool "mesh skew finite" true (Float.is_finite res.Mesh.Grid_mesh.skew);
  check_bool "all sinks reached" true
    (Array.for_all Float.is_finite res.Mesh.Grid_mesh.latencies);
  check_bool "latencies after tree delay" true
    (res.Mesh.Grid_mesh.t_min > 100.)

let test_mesh_single_tap () =
  let m = Mesh.Grid_mesh.build ~tech ~region ~nx:5 ~ny:5 ~sinks:(some_sinks 12) in
  let taps = Mesh.Grid_mesh.tap_points m ~k:1 in
  check_bool "single centre tap" true (Array.length taps = 1);
  let res =
    Mesh.Grid_mesh.evaluate m
      ~taps:[ { Mesh.Grid_mesh.pos = taps.(0); arrival = 100.; r_drv = 10.; ramp = 20. } ]
      ()
  in
  check_bool "arrivals after launch" true (res.Mesh.Grid_mesh.t_min >= 100.);
  check_bool "skew sane" true
    (res.Mesh.Grid_mesh.skew >= 0. && res.Mesh.Grid_mesh.skew < 200.)

let test_mesh_rejects () =
  check_bool "nx<2 rejected" true
    (try ignore (Mesh.Grid_mesh.build ~tech ~region ~nx:1 ~ny:5 ~sinks:(some_sinks 3)); false
     with Invalid_argument _ -> true);
  check_bool "no sinks rejected" true
    (try ignore (Mesh.Grid_mesh.build ~tech ~region ~nx:4 ~ny:4 ~sinks:[||]); false
     with Invalid_argument _ -> true)

let test_crosslink () =
  (* Two sinks in different stages with jittered launches: the link must
     reduce the mean divergence; candidates must be nearby pairs. *)
  let rng = Suite.Rng.create 31 in
  let sinks =
    Array.init 24 (fun i ->
        { Dme.Zst.pos =
            Point.make (Suite.Rng.int rng 2_000_000) (Suite.Rng.int rng 2_000_000);
          cap = 10.; parity = 0; label = Printf.sprintf "s%d" i })
  in
  let tree = Dme.Zst.build ~tech ~source:(Point.make 0 1_000_000) sinks in
  let buf = Tech.Composite.make Tech.Device.small_inverter 16 in
  let tree =
    Buffering.Fast_vg.insert tree ~buf
      ~cap_ceiling:(Route.Slewcap.wire_aware ~tech ~buf ()) ()
  in
  ignore (Core.Polarity.correct tree ~buf ~strategy:Core.Polarity.Minimal);
  let eval = Analysis.Evaluator.evaluate tree in
  (* pick a candidate whose sinks live in different driver stages —
     same-stage pairs see only common-mode jitter, where a link correctly
     buys nothing *)
  let rec driver_of i =
    let nd = Ctree.Tree.node tree i in
    if nd.Ctree.Tree.parent < 0 then i
    else
      match (Ctree.Tree.node tree nd.Ctree.Tree.parent).Ctree.Tree.kind with
      | Ctree.Tree.Buffer _ | Ctree.Tree.Source -> nd.Ctree.Tree.parent
      | _ -> driver_of nd.Ctree.Tree.parent
  in
  let cands = Mesh.Crosslink.candidates tree ~radius:1_500_000 ~limit:20 () in
  match List.find_opt (fun (a, b) -> driver_of a <> driver_of b) cands with
  | None -> Alcotest.fail "no cross-stage candidate pair"
  | Some (a, b) ->
    let pa = (Ctree.Tree.node tree a).Ctree.Tree.pos in
    let pb = (Ctree.Tree.node tree b).Ctree.Tree.pos in
    check_bool "candidates nearby" true (Point.dist pa pb <= 800_000);
    let r = Mesh.Crosslink.evaluate tree ~eval ~pair:(a, b) ~sigma:5. ~trials:12 () in
    check_bool "link reduces divergence" true
      (r.Mesh.Crosslink.linked < r.Mesh.Crosslink.unlinked);
    check_bool "link cap positive" true (r.Mesh.Crosslink.link_cap > 0.);
    (* determinism *)
    let r2 = Mesh.Crosslink.evaluate tree ~eval ~pair:(a, b) ~sigma:5. ~trials:12 () in
    check_near 1e-9 "deterministic" r.Mesh.Crosslink.linked r2.Mesh.Crosslink.linked

let network_qcheck =
  QCheck.Test.make ~name:"network: adding load never speeds a node up"
    ~count:20
    QCheck.(pair (int_range 50 400) (int_range 10 200))
    (fun (r, extra) ->
      let t50 load =
        let net = Mesh.Network.create () in
        let a = Mesh.Network.add_node net ~cap:10. in
        let b = Mesh.Network.add_node net ~cap:load in
        Mesh.Network.add_res net a b (float_of_int r);
        fst
          (Mesh.Network.transient net
             ~sources:[ { Mesh.Network.node = a; r_drv = 30.; t0 = 0.; ramp = 10. } ]
             ~watch:[| b |] ~step:0.5 ()).(0)
      in
      t50 (float_of_int (100 + extra)) >= t50 100. -. 0.5)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "mesh"
    [
      ("network",
       [ Alcotest.test_case "single RC" `Quick test_network_single_rc;
         Alcotest.test_case "matches tree solver" `Quick test_network_matches_tree_solver;
         Alcotest.test_case "resistive loop" `Quick test_network_loop;
         Alcotest.test_case "errors" `Quick test_network_errors;
         q network_qcheck ]);
      ("grid-mesh",
       [ Alcotest.test_case "build" `Quick test_mesh_build;
         Alcotest.test_case "taps" `Quick test_mesh_taps;
         Alcotest.test_case "equalises" `Quick test_mesh_equalises;
         Alcotest.test_case "single tap" `Quick test_mesh_single_tap;
         Alcotest.test_case "rejects" `Quick test_mesh_rejects;
         Alcotest.test_case "hybrid" `Slow test_mesh_hybrid ]);
      ("crosslink", [ Alcotest.test_case "link gain" `Slow test_crosslink ]);
    ]
