(* Regional flow: partition balance/coverage properties, regions=1
   bit-identity with the monolithic flow, stitched-vs-monolithic quality
   oracle, worker-count determinism, and POLISH-checkpoint fast resume. *)

open Geometry
module Tree = Ctree.Tree
module Ev = Analysis.Evaluator
module Flow = Core.Flow
module Partition = Core.Partition

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tech = Tech.default45 ()

(* Small round budget keeps the flows fast; mixed parities exercise the
   polarity bookkeeping across the graft. *)
let config = { Core.Config.default with Core.Config.max_rounds = 25 }

let random_sinks seed n span =
  let rng = Suite.Rng.create seed in
  Array.init n (fun i ->
      { Dme.Zst.pos =
          Point.make (Suite.Rng.int rng span) (Suite.Rng.int rng span);
        cap = 5. +. (Suite.Rng.float rng *. 25.); parity = i mod 2;
        label = Printf.sprintf "s%d" i })

let source = Point.make 0 1_500_000

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Core.Persist.mkdir_p d;
  d

(* ---------- partition properties ---------- *)

let test_partition_coverage () =
  List.iter
    (fun (seed, n, regions) ->
      let sinks = random_sinks seed n 3_000_000 in
      let parts = Partition.split ~regions sinks in
      check_int
        (Printf.sprintf "n=%d r=%d region count" n regions)
        (min regions n) (Array.length parts);
      Array.iter
        (fun cell ->
          check_bool "non-empty" true (Array.length cell > 0);
          check_bool "sorted" true
            (Array.for_all Fun.id
               (Array.init
                  (Array.length cell - 1)
                  (fun i -> cell.(i) < cell.(i + 1)))))
        parts;
      (* The cells partition [0, n): disjoint and covering. *)
      let seen = Array.make n 0 in
      Array.iter (Array.iter (fun i -> seen.(i) <- seen.(i) + 1)) parts;
      check_bool "exact cover" true (Array.for_all (( = ) 1) seen);
      (* Determinism: same input, same partition. *)
      let again = Partition.split ~regions sinks in
      check_bool "deterministic" true (parts = again))
    [ (11, 40, 2); (12, 97, 3); (13, 97, 4); (14, 256, 7); (15, 300, 8);
      (16, 5, 8) (* regions clamped to n *) ]

let test_partition_balance () =
  (* Power-of-two splits: each bisection level misses the capacitance
     target by at most one sink, so a region's share of the total is off
     by at most [depth] maximum sink caps. *)
  List.iter
    (fun (seed, n, regions, depth) ->
      let sinks = random_sinks seed n 3_000_000 in
      let parts = Partition.split ~regions sinks in
      let cap idxs =
        Array.fold_left (fun a i -> a +. sinks.(i).Dme.Zst.cap) 0. idxs
      in
      let total = cap (Array.init n Fun.id) in
      let max_cap =
        Array.fold_left (fun a s -> Float.max a s.Dme.Zst.cap) 0. sinks
      in
      let share = total /. float_of_int regions in
      let slack = float_of_int depth *. max_cap in
      Array.iteri
        (fun k cell ->
          let c = cap cell in
          check_bool
            (Printf.sprintf "n=%d r=%d region %d cap %.1f within %.1f±%.1f"
               n regions k c share slack)
            true
            (Float.abs (c -. share) <= slack))
        parts)
    [ (21, 128, 2, 1); (22, 200, 4, 2); (23, 333, 8, 3) ]

(* ---------- regions=1 delegates bit-identically ---------- *)

let test_regions_one_identity () =
  let sinks = random_sinks 77 60 2_500_000 in
  let mono = Flow.run ~config ~tech ~source sinks in
  let reg =
    Flow.run_regional
      ~config:{ config with Core.Config.regions = 1 }
      ~tech ~source sinks
  in
  check_bool "r_stitch is None" true (reg.Flow.r_stitch = None);
  check_bool "tree digest identical" true
    (Tree.digest reg.Flow.r_flow.Flow.tree = Tree.digest mono.Flow.tree);
  check_bool "skew bit-identical" true
    (Int64.bits_of_float reg.Flow.r_flow.Flow.final.Ev.skew
    = Int64.bits_of_float mono.Flow.final.Ev.skew);
  check_int "monolithic trace" 5 (List.length reg.Flow.r_flow.Flow.trace)

(* ---------- stitched-vs-monolithic oracle ---------- *)

let test_stitched_oracle () =
  let n = 240 in
  let sinks = random_sinks 4040 n 4_000_000 in
  let mono = Flow.run ~config ~tech ~source sinks in
  let reg =
    Flow.run_regional
      ~config:{ config with Core.Config.regions = 4 }
      ~tech ~source sinks
  in
  let r = reg.Flow.r_flow in
  Alcotest.(check (list string))
    "stitched tree valid" [] (Ctree.Validate.check r.Flow.tree);
  (* Every original sink survives the graft, exactly once, and no
     pseudo-sink leaks into the stitched tree. *)
  let labels = Hashtbl.create n in
  Array.iter
    (fun id ->
      match (Tree.node r.Flow.tree id).Tree.kind with
      | Tree.Sink s ->
        check_bool
          (Printf.sprintf "label %S not duplicated" s.Tree.label)
          false
          (Hashtbl.mem labels s.Tree.label);
        Hashtbl.replace labels s.Tree.label ()
      | _ -> Alcotest.fail "non-sink in Tree.sinks")
    (Tree.sinks r.Flow.tree);
  check_int "all sinks present" n (Hashtbl.length labels);
  Array.iter
    (fun s -> check_bool s.Dme.Zst.label true (Hashtbl.mem labels s.Dme.Zst.label))
    sinks;
  (* Quality: the stitched result lands in the same skew class as the
     monolithic flow — the polish must have repaid the inter-region
     imbalance (which starts out at tens of ps). *)
  check_bool "skew finite" true (Float.is_finite r.Flow.final.Ev.skew);
  check_bool
    (Printf.sprintf "stitched skew %.3f vs monolithic %.3f"
       r.Flow.final.Ev.skew mono.Flow.final.Ev.skew)
    true
    (r.Flow.final.Ev.skew <= mono.Flow.final.Ev.skew +. 10.);
  (* The stitch report matches the partition. *)
  match reg.Flow.r_stitch with
  | None -> Alcotest.fail "no stitch report on a 4-region run"
  | Some st ->
    check_int "four regions" 4 (List.length st.Flow.st_regions);
    check_int "region sinks sum" n
      (List.fold_left
         (fun a (rr : Flow.region_report) -> a + rr.Flow.rg_sinks)
         0 st.Flow.st_regions);
    List.iter
      (fun (rr : Flow.region_report) ->
        check_bool "region skew finite" true (Float.is_finite rr.Flow.rg_skew))
      st.Flow.st_regions;
    check_bool "trace carries STITCH+POLISH" true
      (List.map (fun (t : Flow.trace_entry) -> t.Flow.step) r.Flow.trace
      = [ Flow.Stitch; Flow.Polish ])

(* ---------- worker-count determinism ---------- *)

let test_worker_determinism () =
  let sinks = random_sinks 505 150 3_000_000 in
  let cfg = { config with Core.Config.regions = 3 } in
  let a = Flow.run_regional ~config:cfg ~jobs:0 ~tech ~source sinks in
  let b = Flow.run_regional ~config:cfg ~jobs:2 ~tech ~source sinks in
  check_bool "digest independent of workers" true
    (Tree.digest a.Flow.r_flow.Flow.tree = Tree.digest b.Flow.r_flow.Flow.tree);
  check_bool "skew bit-identical" true
    (Int64.bits_of_float a.Flow.r_flow.Flow.final.Ev.skew
    = Int64.bits_of_float b.Flow.r_flow.Flow.final.Ev.skew)

(* ---------- checkpoint / resume ---------- *)

let test_regional_resume () =
  let sinks = random_sinks 909 120 3_000_000 in
  let cfg = { config with Core.Config.regions = 3 } in
  let dir = temp_dir "contango_regional" in
  let a = Flow.run_regional ~config:cfg ~checkpoint_dir:dir ~tech ~source sinks in
  (* Layout: one subdirectory per region, one for the top flow, and the
     stitched POLISH checkpoint at the root. *)
  List.iter
    (fun sub ->
      check_bool (sub ^ " checkpointed") true
        (Sys.file_exists
           (Flow.Checkpoint.path ~dir:(Filename.concat dir sub) Flow.Bwsn)))
    [ "region_0"; "region_1"; "region_2"; "top" ];
  check_bool "POLISH checkpoint written" true
    (Sys.file_exists (Flow.Checkpoint.path ~dir Flow.Polish));
  (* Fast resume: the POLISH checkpoint short-circuits the whole run to
     a bit-identical result. *)
  let b =
    Flow.run_regional ~config:cfg ~checkpoint_dir:dir ~resume:true ~tech
      ~source sinks
  in
  check_bool "fast resume skips the stitch report" true
    (b.Flow.r_stitch = None);
  check_bool "resumed digest identical" true
    (Tree.digest b.Flow.r_flow.Flow.tree = Tree.digest a.Flow.r_flow.Flow.tree);
  check_bool "resumed skew bit-identical" true
    (Int64.bits_of_float b.Flow.r_flow.Flow.final.Ev.skew
    = Int64.bits_of_float a.Flow.r_flow.Flow.final.Ev.skew);
  (* Losing the POLISH checkpoint still resumes from the per-region and
     top checkpoints and re-derives the same stitched tree. *)
  Sys.remove (Flow.Checkpoint.path ~dir Flow.Polish);
  let c =
    Flow.run_regional ~config:cfg ~checkpoint_dir:dir ~resume:true ~tech
      ~source sinks
  in
  check_bool "re-derived digest identical" true
    (Tree.digest c.Flow.r_flow.Flow.tree = Tree.digest a.Flow.r_flow.Flow.tree)

let () =
  Alcotest.run "regional"
    [
      ("partition",
       [
         Alcotest.test_case "coverage + determinism" `Quick
           test_partition_coverage;
         Alcotest.test_case "capacity balance" `Quick test_partition_balance;
       ]);
      ("flow",
       [
         Alcotest.test_case "regions=1 bit-identity" `Quick
           test_regions_one_identity;
         Alcotest.test_case "stitched vs monolithic oracle" `Slow
           test_stitched_oracle;
         Alcotest.test_case "worker determinism" `Slow
           test_worker_determinism;
       ]);
      ("resume",
       [ Alcotest.test_case "polish fast-path" `Slow test_regional_resume ]);
    ]
