open Geometry
module Tree = Ctree.Tree

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tech = Tech.default45 ()

let example_tree () =
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let buf = Tech.Composite.make Tech.Device.small_inverter 8 in
  let b =
    Tree.add_node t ~kind:(Tree.Buffer buf) ~pos:(Point.make 400_000 0)
      ~parent:(Tree.root t) ()
  in
  ignore
    (Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 15.; parity = 1; label = "ff1" })
       ~pos:(Point.make 800_000 0) ~parent:b ());
  ignore
    (Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 22.; parity = 1; label = "ff2" })
       ~pos:(Point.make 400_000 300_000) ~parent:b ());
  t

let count_prefix deck prefix =
  String.split_on_char '\n' deck
  |> List.filter (fun l -> String.length l >= String.length prefix
                           && String.sub l 0 (String.length prefix) = prefix)
  |> List.length

let test_deck_structure () =
  let deck = Analysis.Netlist.to_string (example_tree ()) in
  check_bool "has title" true (String.sub deck 0 1 = "*");
  check_int "one clock source" 1 (count_prefix deck "Vclk");
  check_int "one source resistance" 1 (count_prefix deck "Rsrc");
  check_int "one behavioural inverter" 1 (count_prefix deck "B");
  check_int "transient card" 1 (count_prefix deck ".tran");
  check_int "end card" 1 (count_prefix deck ".end");
  (* two sinks -> two t50 measures and two slew measures *)
  check_int "t50 measures" 2 (count_prefix deck ".measure tran t50_");
  check_int "slew measures" 2 (count_prefix deck ".measure tran slew_")

let test_deck_segments () =
  (* 30 um segmentation of an 800_000+300_000+400_000 nm tree: resistor
     count grows with finer segmentation. *)
  let coarse = Analysis.Netlist.to_string ~seg_len:200_000 (example_tree ()) in
  let fine = Analysis.Netlist.to_string ~seg_len:20_000 (example_tree ()) in
  check_bool "finer -> more resistors" true
    (count_prefix fine "R" > count_prefix coarse "R")

let test_deck_sink_caps () =
  let deck = Analysis.Netlist.to_string (example_tree ()) in
  check_bool "sink ff1 cap present" true
    (List.exists
       (fun l -> l = "* sink ff1")
       (String.split_on_char '\n' deck));
  (* inverter subckt parts present *)
  check_bool "inverter comment" true
    (List.exists
       (fun l ->
         String.length l > 20 && String.sub l 0 20 = "* composite inverter")
       (String.split_on_char '\n' deck))

let test_deck_cap_consistency () =
  (* The summed capacitor values in the deck must equal the tree's total
     capacitance accounting: wire + sink + buffer cin + buffer cout. *)
  let tree = example_tree () in
  let deck = Analysis.Netlist.to_string ~seg_len:25_000 tree in
  let total_deck_cap =
    String.split_on_char '\n' deck
    |> List.filter (fun l -> String.length l > 1 && l.[0] = 'C')
    |> List.fold_left
         (fun acc l ->
           (* last token is like "12.5f" *)
           let tokens = String.split_on_char ' ' l in
           let v = List.nth tokens (List.length tokens - 1) in
           let v = String.sub v 0 (String.length v - 1) in
           acc +. float_of_string v)
         0.
  in
  let s = Ctree.Stats.compute tree in
  let expected =
    s.Ctree.Stats.wire_cap +. s.Ctree.Stats.sink_cap
    +. s.Ctree.Stats.buffer_in_cap +. s.Ctree.Stats.buffer_out_cap
  in
  Alcotest.(check (float 0.01)) "deck caps = tree caps" expected total_deck_cap

let test_deck_res_consistency () =
  (* Summed wire resistors (excluding source and inverter output Rs). *)
  let tree = example_tree () in
  let deck = Analysis.Netlist.to_string ~seg_len:25_000 tree in
  let total_deck_res =
    String.split_on_char '\n' deck
    |> List.filter (fun l ->
           String.length l > 1 && l.[0] = 'R' && not (String.sub l 0 4 = "Rsrc"))
    |> List.fold_left
         (fun acc l ->
           let tokens = String.split_on_char ' ' l in
           (* inverter output resistors connect n<i>i to n<i>o; skip them *)
           match tokens with
           | _ :: a :: _ :: v :: _ when String.length a > 1 &&
               a.[String.length a - 1] = 'i' -> ignore v; acc
           | _ :: _ :: _ :: v :: _ -> acc +. float_of_string v
           | _ -> acc)
         0.
  in
  let expected = ref 0. in
  Ctree.Tree.iter tree (fun nd ->
      if nd.Ctree.Tree.parent >= 0 then
        expected :=
          !expected
          +. Tech.Wire.res (Ctree.Tree.wire_of tree nd) (Ctree.Tree.wire_len nd));
  Alcotest.(check (float 0.01)) "deck wire res = tree wire res" !expected
    total_deck_res

let test_write_file () =
  let path = Filename.temp_file "contango" ".cir" in
  Analysis.Netlist.write_file path (example_tree ());
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  check_bool "file non-empty" true (len > 200)

let () =
  Alcotest.run "netlist"
    [
      ("deck",
       [ Alcotest.test_case "structure" `Quick test_deck_structure;
         Alcotest.test_case "segmentation" `Quick test_deck_segments;
         Alcotest.test_case "sink caps" `Quick test_deck_sink_caps;
         Alcotest.test_case "cap consistency" `Quick test_deck_cap_consistency;
         Alcotest.test_case "res consistency" `Quick test_deck_res_consistency;
         Alcotest.test_case "write file" `Quick test_write_file ]);
    ]
