(* Suite runner: fault isolation, telemetry streaming, baseline gating. *)

module Runner = Suite.Runner
module Json = Suite.Report.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let arnoldi_config =
  { Core.Config.default with Core.Config.engine = Analysis.Evaluator.Arnoldi }

let temp_dir () = Filename.temp_dir "contango_suite" ""

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let status_label (r : Runner.instance_report) =
  match r.Runner.status with
  | Runner.Completed _ -> "completed"
  | Runner.Failed { reason = Runner.Crashed; _ } -> "crashed"
  | Runner.Failed { reason = Runner.Timed_out; _ } -> "timed_out"

(* ---------- spec parsing ---------- *)

let test_spec_parsing () =
  (match Runner.spec_of_string "fail:boom" with
  | Runner.Inject_fail "boom" -> ()
  | _ -> Alcotest.fail "fail:boom");
  (match Runner.spec_of_string "hang:spin" with
  | Runner.Inject_hang "spin" -> ()
  | _ -> Alcotest.fail "hang:spin");
  (match Runner.spec_of_string "grid:3" with
  | Runner.Bench b ->
    check_int "grid:3 sinks" 9 (Array.length b.Suite.Format_io.sinks)
  | _ -> Alcotest.fail "grid:3 should load a benchmark");
  (* spec_of_string never raises: an unloadable spec becomes a
     structured Bad_spec that the suite reports as a Crashed instance. *)
  check_bool "garbage spec becomes Bad_spec" true
    (match Runner.spec_of_string "no-such-bench" with
    | Runner.Bad_spec { bs_name = "no-such-bench"; _ } -> true
    | _ -> false)

(* ---------- fault isolation (the tentpole acceptance scenario) ---------- *)

let test_fault_isolation () =
  let out_dir = temp_dir () in
  let specs =
    List.map Runner.spec_of_string [ "grid:3"; "fail:boom"; "hang:spin" ]
  in
  let result =
    Runner.run ~out_dir ~timeout:0.5 ~jobs:0 ~config:arnoldi_config specs
  in
  check_int "three reports, input order" 3 (List.length result.Runner.reports);
  Alcotest.(check (list string))
    "statuses"
    [ "completed"; "crashed"; "timed_out" ]
    (List.map status_label result.Runner.reports);
  check_int "exactly two failure records" 2
    (List.length (Runner.failures result));
  let completed =
    List.find
      (fun r -> match r.Runner.status with
        | Runner.Completed _ -> true | _ -> false)
      result.Runner.reports
  in
  check_int "completed instance ran the full flow" 5
    (List.length completed.Runner.steps);
  (* The crash detail is a structured record, not a lost exception. *)
  (match (List.hd (Runner.failures result)).Runner.status with
  | Runner.Failed { detail; _ } ->
    check_bool "crash detail mentions the failure" true
      (String.length detail > 0)
  | _ -> Alcotest.fail "expected a failure record");
  (* suite.json is written and parseable even though two instances died. *)
  let path = Runner.write_suite_json result in
  check_string "suite.json location" (Filename.concat out_dir "suite.json") path;
  (match Json.of_string (String.concat "\n" (read_lines path)) with
  | Error e -> Alcotest.fail ("suite.json does not parse: " ^ e)
  | Ok doc ->
    check_int "suite.json has all three instances" 3
      (List.length (Json.to_list (Json.member "instances" doc)));
    let failed =
      Json.to_float (Json.member "failed" (Option.get (Json.member "suite" doc)))
    in
    Alcotest.(check (option (float 0.))) "failed count" (Some 2.) failed);
  (* Streamed telemetry: one parseable JSONL line per completed step. *)
  let lines = read_lines completed.Runner.trace_path in
  check_int "five trace lines" 5 (List.length lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error e -> Alcotest.fail ("trace line does not parse: " ^ e)
      | Ok obj ->
        check_bool "trace line has a step" true
          (Json.to_str (Json.member "step" obj) <> None);
        check_bool "trace line is tagged with the bench" true
          (Json.to_str (Json.member "bench" obj) = Some "grid3x3"))
    lines;
  (* Summary renders every instance, including the failed ones. *)
  let table = Runner.summary_table result in
  List.iter
    (fun needle ->
      check_bool (needle ^ " in summary") true (contains table needle))
    [ "grid3x3"; "boom"; "spin" ]

(* A real benchmark (not an injected hang) past its budget is recorded as
   timed out via the cooperative deadline in Ivc.evaluate. *)
let test_real_bench_timeout () =
  let out_dir = temp_dir () in
  let result =
    Runner.run ~out_dir ~timeout:1e-5 ~jobs:0 ~config:arnoldi_config
      [ Runner.spec_of_string "grid:4" ]
  in
  match (List.hd result.Runner.reports).Runner.status with
  | Runner.Failed { reason = Runner.Timed_out; _ } -> ()
  | Runner.Failed { reason = Runner.Crashed; detail } ->
    Alcotest.fail ("expected timeout, crashed: " ^ detail)
  | Runner.Completed _ ->
    Alcotest.fail "expected timeout, completed under 10us"

(* A hang instance without any timeout cannot be run — structured failure,
   not a stuck suite. *)
let test_hang_requires_timeout () =
  let out_dir = temp_dir () in
  let result =
    Runner.run ~out_dir ~jobs:0 ~config:arnoldi_config
      [ Runner.Inject_hang "spin" ]
  in
  match (List.hd result.Runner.reports).Runner.status with
  | Runner.Failed { reason = Runner.Crashed; _ } -> ()
  | _ -> Alcotest.fail "expected a crash record"

(* Instances keep their input order and distinct trace files even when the
   same benchmark is listed twice. *)
let test_duplicate_names () =
  let out_dir = temp_dir () in
  let specs = List.map Runner.spec_of_string [ "grid:3"; "grid:3" ] in
  let result = Runner.run ~out_dir ~jobs:0 ~config:arnoldi_config specs in
  match result.Runner.reports with
  | [ a; b ] ->
    check_bool "distinct trace files" true
      (a.Runner.trace_path <> b.Runner.trace_path);
    check_bool "both trace files exist" true
      (Sys.file_exists a.Runner.trace_path
       && Sys.file_exists b.Runner.trace_path)
  | _ -> Alcotest.fail "expected two reports"

(* ---------- golden-baseline gating ---------- *)

let run_small () =
  let out_dir = temp_dir () in
  Runner.run ~out_dir ~jobs:0 ~config:arnoldi_config
    [ Runner.spec_of_string "grid:3" ]

let test_baseline_self () =
  let result = run_small () in
  let golden = Runner.to_json result in
  check_int "self-diff has no regressions" 0
    (List.length (Runner.diff_baseline ~golden result))

let test_baseline_regression () =
  let result = run_small () in
  (* A golden that claims far better numbers than measured. *)
  let golden =
    Json.Obj
      [ ("instances",
         Json.List
           [ Json.Obj
               [ ("name", Json.Str "grid3x3");
                 ("status", Json.Str "completed");
                 ("skew_ps", Json.Num 0.0);
                 ("clr_ps", Json.Num 0.0) ] ]) ]
  in
  let regs = Runner.diff_baseline ~golden result in
  check_bool "tampered golden flags a regression" true (regs <> []);
  (* A golden-completed instance missing from the run is a regression. *)
  let golden_missing =
    Json.Obj
      [ ("instances",
         Json.List
           [ Json.Obj
               [ ("name", Json.Str "ghost-bench");
                 ("status", Json.Str "completed");
                 ("skew_ps", Json.Num 1.0);
                 ("clr_ps", Json.Num 1.0) ] ]) ]
  in
  check_int "missing instance is a regression" 1
    (List.length (Runner.diff_baseline ~golden:golden_missing result));
  (* load_baseline round-trips through the written file. *)
  let path = Runner.write_suite_json result in
  match Runner.load_baseline path with
  | Error e -> Alcotest.fail e
  | Ok golden ->
    check_int "written suite.json works as its own golden" 0
      (List.length (Runner.diff_baseline ~golden result))

(* ---------- JSON parser (new of_string) ---------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\n\t");
        ("n", Json.Num (-12.5));
        ("t", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Num 1.; Json.Str "x"; Json.Obj [] ]) ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> check_bool "pretty round-trip" true (v = v')
  | Error e -> Alcotest.fail e);
  (match Json.of_string (Json.to_compact_string v) with
  | Ok v' -> check_bool "compact round-trip" true (v = v')
  | Error e -> Alcotest.fail e);
  (match Json.of_string "{\"u\":\"A\\u00e9\"}" with
  | Ok (Json.Obj [ ("u", Json.Str s) ]) ->
    check_string "unicode escapes decode to UTF-8" "A\xc3\xa9" s
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      check_bool ("rejects " ^ bad) true
        (match Json.of_string bad with Error _ -> true | Ok _ -> false))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nulll"; "1 2"; "\"unterminated" ]

let () =
  Alcotest.run "runner"
    [
      ("spec", [ Alcotest.test_case "parsing" `Quick test_spec_parsing ]);
      ("faults",
       [ Alcotest.test_case "isolation + telemetry" `Slow test_fault_isolation;
         Alcotest.test_case "real bench timeout" `Quick test_real_bench_timeout;
         Alcotest.test_case "hang requires timeout" `Quick
           test_hang_requires_timeout;
         Alcotest.test_case "duplicate names" `Quick test_duplicate_names ]);
      ("baseline",
       [ Alcotest.test_case "self" `Quick test_baseline_self;
         Alcotest.test_case "regressions" `Quick test_baseline_regression ]);
      ("json", [ Alcotest.test_case "parse round-trip" `Quick test_json_roundtrip ]);
    ]
