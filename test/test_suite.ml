open Geometry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Suite.Rng.create 42 and b = Suite.Rng.create 42 in
  let seq g = List.init 50 (fun _ -> Suite.Rng.int g 1000) in
  Alcotest.(check (list int)) "same seed same stream" (seq a) (seq b);
  let c = Suite.Rng.create 43 in
  check_bool "different seed differs" true (seq (Suite.Rng.create 42) <> seq c)

let test_rng_ranges () =
  let g = Suite.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Suite.Rng.int g 7 in
    check_bool "in range" true (v >= 0 && v < 7);
    let f = Suite.Rng.float g in
    check_bool "float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_split () =
  let g = Suite.Rng.create 5 in
  let h = Suite.Rng.split g in
  check_bool "split independent-ish" true
    (List.init 10 (fun _ -> Suite.Rng.int g 100)
     <> List.init 10 (fun _ -> Suite.Rng.int h 100))

let rng_normal_qcheck =
  QCheck.Test.make ~name:"rng: normal has roughly zero mean, unit variance"
    ~count:5
    QCheck.(int_range 0 100)
    (fun seed ->
      let g = Suite.Rng.create seed in
      let n = 4000 in
      let xs = List.init n (fun _ -> Suite.Rng.normal g) in
      let mean = List.fold_left ( +. ) 0. xs /. float_of_int n in
      let var =
        List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs
        /. float_of_int n
      in
      Float.abs mean < 0.1 && var > 0.8 && var < 1.2)

(* ---------- Format round-trip ---------- *)

let test_format_roundtrip () =
  let b = Suite.Gen_ispd.generate "ispd09f22" in
  let text = Suite.Format_io.to_string b in
  match Suite.Format_io.of_string ~name:b.Suite.Format_io.name text with
  | Error e -> Alcotest.fail e
  | Ok b2 ->
    check_int "sinks" (Array.length b.Suite.Format_io.sinks)
      (Array.length b2.Suite.Format_io.sinks);
    check_bool "chip" true (Rect.equal b.Suite.Format_io.chip b2.Suite.Format_io.chip);
    check_bool "source" true
      (Point.equal b.Suite.Format_io.source b2.Suite.Format_io.source);
    check_int "obstacles" (List.length b.Suite.Format_io.obstacles)
      (List.length b2.Suite.Format_io.obstacles);
    Alcotest.(check (float 1e-9)) "cap limit"
      b.Suite.Format_io.tech.Tech.cap_limit b2.Suite.Format_io.tech.Tech.cap_limit;
    (* Sink payloads survive. *)
    Array.iteri
      (fun i s ->
        let s2 = b2.Suite.Format_io.sinks.(i) in
        check_bool "pos" true (Point.equal s.Dme.Zst.pos s2.Dme.Zst.pos);
        Alcotest.(check (float 1e-6)) "cap" s.Dme.Zst.cap s2.Dme.Zst.cap)
      b.Suite.Format_io.sinks

let test_format_errors () =
  check_bool "unknown directive" true
    (Result.is_error (Suite.Format_io.of_string ~name:"x" "bogus 1 2 3"));
  check_bool "missing chip" true
    (Result.is_error (Suite.Format_io.of_string ~name:"x" "source 0 0\nsink a 1 1 5"));
  check_bool "no sinks" true
    (Result.is_error
       (Suite.Format_io.of_string ~name:"x" "chip 0 0 10 10\nsource 0 0"));
  check_bool "bad number" true
    (Result.is_error
       (Suite.Format_io.of_string ~name:"x" "chip 0 0 ten 10\nsource 0 0\nsink a 1 1 5"))

let test_format_comments_defaults () =
  let text = "# a comment\nchip 0 0 1000 1000\nsource 0 0\n\nsink a 10 10 5.5\n" in
  match Suite.Format_io.of_string ~name:"mini" text with
  | Error e -> Alcotest.fail e
  | Ok b ->
    check_int "one sink" 1 (Array.length b.Suite.Format_io.sinks);
    (* Defaults: contest tech, unlimited cap. *)
    check_bool "default tech" true
      (Array.length b.Suite.Format_io.tech.Tech.wires = 2);
    check_bool "unlimited" true (b.Suite.Format_io.tech.Tech.cap_limit = infinity)

(* ---------- Generators ---------- *)

let test_ispd_names_and_counts () =
  check_int "seven benchmarks" 7 (List.length Suite.Gen_ispd.names);
  let expected =
    [ ("ispd09f11", 121); ("ispd09f12", 117); ("ispd09f21", 117);
      ("ispd09f22", 91); ("ispd09f31", 273); ("ispd09f32", 190);
      ("ispd09fnb1", 330) ]
  in
  List.iter
    (fun (name, n) ->
      let b = Suite.Gen_ispd.generate name in
      check_int name n (Array.length b.Suite.Format_io.sinks))
    expected

let test_ispd_deterministic () =
  let a = Suite.Gen_ispd.generate "ispd09f31" in
  let b = Suite.Gen_ispd.generate "ispd09f31" in
  Alcotest.(check string) "identical files"
    (Suite.Format_io.to_string a) (Suite.Format_io.to_string b)

let test_ispd_sinks_legal () =
  List.iter
    (fun name ->
      let b = Suite.Gen_ispd.generate name in
      Array.iter
        (fun s ->
          check_bool "sink on chip" true
            (Rect.contains b.Suite.Format_io.chip s.Dme.Zst.pos);
          check_bool "sink not inside obstacle" true
            (not
               (List.exists
                  (fun r -> Rect.contains_open r s.Dme.Zst.pos)
                  b.Suite.Format_io.obstacles)))
        b.Suite.Format_io.sinks)
    Suite.Gen_ispd.names

let test_ispd_obstacles () =
  let b = Suite.Gen_ispd.generate "ispd09fnb1" in
  check_bool "fnb1 has blockages" true (List.length b.Suite.Format_io.obstacles >= 12);
  let f11 = Suite.Gen_ispd.generate "ispd09f11" in
  check_int "f11 clean" 0 (List.length f11.Suite.Format_io.obstacles);
  check_bool "unknown rejected" true
    (try ignore (Suite.Gen_ispd.generate "nope"); false
     with Invalid_argument _ -> true)

let test_ti_generator () =
  check_int "135K candidate sites" 135_000 Suite.Gen_ti.candidate_count;
  let b = Suite.Gen_ti.generate 500 in
  check_int "sampled" 500 (Array.length b.Suite.Format_io.sinks);
  Array.iter
    (fun s ->
      check_bool "on die" true (Rect.contains b.Suite.Format_io.chip s.Dme.Zst.pos))
    b.Suite.Format_io.sinks;
  (* Deterministic. *)
  let b2 = Suite.Gen_ti.generate 500 in
  Alcotest.(check string) "deterministic"
    (Suite.Format_io.to_string b) (Suite.Format_io.to_string b2);
  check_bool "family ends at 50K" true
    (List.nth Suite.Gen_ti.family (List.length Suite.Gen_ti.family - 1) = 50_000);
  check_bool "rejects out of range" true
    (try ignore (Suite.Gen_ti.generate 0); false with Invalid_argument _ -> true)

let ti_sampling_qcheck =
  QCheck.Test.make ~name:"ti: samples are distinct sites" ~count:5
    QCheck.(int_range 50 400)
    (fun n ->
      let b = Suite.Gen_ti.generate n in
      let labels =
        Array.to_list (Array.map (fun s -> s.Dme.Zst.label) b.Suite.Format_io.sinks)
      in
      List.length (List.sort_uniq compare labels) = n)

let test_grid_generator () =
  let b = Suite.Gen_grid.generate ~n:4 () in
  check_int "16 sinks" 16 (Array.length b.Suite.Format_io.sinks);
  check_bool "rejects n=0" true
    (try ignore (Suite.Gen_grid.generate ~n:0 ()); false
     with Invalid_argument _ -> true)

let test_grid_symmetric_skew () =
  (* Perfect symmetry: the unbuffered ZST over a grid must have near-zero
     Elmore skew despite massive tie-breaking freedom. *)
  let b = Suite.Gen_grid.generate ~n:6 () in
  let t =
    Dme.Zst.build ~tech:b.Suite.Format_io.tech ~source:b.Suite.Format_io.source
      b.Suite.Format_io.sinks
  in
  let skew =
    (Analysis.Evaluator.evaluate ~engine:Analysis.Evaluator.Elmore_model t)
      .Analysis.Evaluator.skew
  in
  check_bool "grid zst sub-ps" true (skew < 1.0);
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check t)

(* ---------- Baseline ---------- *)

let test_baseline_runs () =
  let b = Suite.Gen_ispd.generate "ispd09f22" in
  let r = Suite.Baseline.run b in
  check_int "slew legal" 0 r.Suite.Baseline.eval.Analysis.Evaluator.slew_violations;
  check_bool "unoptimized skew is large" true
    (r.Suite.Baseline.eval.Analysis.Evaluator.skew > 20.);
  Alcotest.(check (list string)) "valid tree" []
    (Ctree.Validate.check r.Suite.Baseline.tree)

let test_format_file_roundtrip () =
  let b = Suite.Gen_grid.generate ~n:3 () in
  let path = Filename.temp_file "contango" ".cts" in
  Suite.Format_io.write_file path b;
  let b2 =
    match Suite.Format_io.read_file path with
    | Ok b2 -> b2
    | Error e -> Alcotest.failf "read_file: %s" e
  in
  Sys.remove path;
  check_int "sinks survive file" (Array.length b.Suite.Format_io.sinks)
    (Array.length b2.Suite.Format_io.sinks);
  check_bool "source survives" true
    (Point.equal b.Suite.Format_io.source b2.Suite.Format_io.source)

(* ---------- Json ---------- *)

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_json_basic () =
  let open Suite.Report.Json in
  let v =
    Obj
      [ ("name", Str "f1"); ("n", Num 42.); ("ok", Bool true);
        ("x", Num nan); ("rows", List [ Num 1.5; Null ]) ]
  in
  let s = to_string v in
  check_bool "string field" true (contains_sub s "\"name\": \"f1\"");
  check_bool "integer printed plain" true (contains_sub s "\"n\": 42");
  check_bool "nan becomes null" true (contains_sub s "\"x\": null");
  check_bool "bool" true (contains_sub s "true");
  check_bool "nested list" true (contains_sub s "1.5")

let test_json_escape () =
  let open Suite.Report.Json in
  let s = to_string (Str "a\"b\\c\nd") in
  check_bool "quote escaped" true (contains_sub s "a\\\"b");
  check_bool "backslash escaped" true (contains_sub s "\\\\c");
  check_bool "newline escaped" true (contains_sub s "\\n")

(* ---------- Report ---------- *)

let test_report_table () =
  let s =
    Suite.Report.table ~title:"T" ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  check_bool "contains title" true (String.length s > 10 && String.sub s 0 1 = "T");
  check_bool "has separator" true (String.contains s '-')

let test_paper_constants () =
  check_int "table3 has 5 steps" 5 (List.length Suite.Report.paper_table3);
  List.iter
    (fun (_, row) -> check_int "7 benchmarks per row" 7 (List.length row))
    Suite.Report.paper_table3;
  check_int "table4 rows" 7 (List.length Suite.Report.paper_table4);
  check_int "table5 rows" 8 (List.length Suite.Report.paper_table5);
  check_int "table2 rows" 7 (List.length Suite.Report.paper_table2);
  check_int "table1 rows" 5 (List.length Suite.Report.paper_table1);
  (* Spot values from the paper. *)
  let _, fnb1 = List.nth Suite.Report.paper_table2 6 in
  check_int "fnb1 inverted" 153 (fst fnb1);
  check_int "fnb1 added" 2 (snd fnb1)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "suite"
    [
      ("rng",
       [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
         Alcotest.test_case "ranges" `Quick test_rng_ranges;
         Alcotest.test_case "split" `Quick test_rng_split;
         q rng_normal_qcheck ]);
      ("format",
       [ Alcotest.test_case "roundtrip" `Quick test_format_roundtrip;
         Alcotest.test_case "file roundtrip" `Quick test_format_file_roundtrip;
         Alcotest.test_case "errors" `Quick test_format_errors;
         Alcotest.test_case "comments/defaults" `Quick test_format_comments_defaults ]);
      ("gen-ispd",
       [ Alcotest.test_case "names/counts" `Quick test_ispd_names_and_counts;
         Alcotest.test_case "deterministic" `Quick test_ispd_deterministic;
         Alcotest.test_case "sinks legal" `Quick test_ispd_sinks_legal;
         Alcotest.test_case "obstacles" `Quick test_ispd_obstacles ]);
      ("gen-ti",
       [ Alcotest.test_case "generator" `Quick test_ti_generator;
         q ti_sampling_qcheck ]);
      ("gen-grid",
       [ Alcotest.test_case "generator" `Quick test_grid_generator;
         Alcotest.test_case "symmetric skew" `Quick test_grid_symmetric_skew ]);
      ("baseline", [ Alcotest.test_case "runs" `Slow test_baseline_runs ]);
      ("report",
       [ Alcotest.test_case "table" `Quick test_report_table;
         Alcotest.test_case "json" `Quick test_json_basic;
         Alcotest.test_case "json escapes" `Quick test_json_escape;
         Alcotest.test_case "paper constants" `Quick test_paper_constants ]);
    ]
