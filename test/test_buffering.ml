open Geometry
module Tree = Ctree.Tree

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tech = Tech.default45 ()
let buf8 = Tech.Composite.make Tech.Device.small_inverter 8

(* One long line: source ---- 6mm ---- sink. *)
let long_line () =
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  ignore
    (Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 20.; parity = 0; label = "s" })
       ~pos:(Point.make 6_000_000 0) ~parent:(Tree.root t) ());
  t

let random_zst seed n =
  let rng = Suite.Rng.create seed in
  let sinks =
    Array.init n (fun i ->
        { Dme.Zst.pos = Point.make (Suite.Rng.int rng 5_000_000) (Suite.Rng.int rng 5_000_000);
          cap = 5. +. Suite.Rng.float rng *. 25.; parity = 0;
          label = Printf.sprintf "s%d" i })
  in
  Dme.Zst.build ~tech ~source:(Point.make 0 2_500_000) sinks

(* Check every driver's stage capacitance against a bound. *)
let max_stage_cap tree =
  List.fold_left
    (fun acc stage -> Float.max acc (Analysis.Rcnet.total_cap stage.Analysis.Rcnet.rc))
    0.
    (Analysis.Rcnet.stages tree)

let test_line_insertion () =
  let t = long_line () in
  let ceiling = 400. in
  let buffered = Buffering.Vanginneken.insert t ~buf:buf8 ~cap_ceiling:ceiling () in
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check buffered);
  let n = Buffering.Vanginneken.last_inserted () in
  (* 6mm of wide wire = 1500 fF of wire cap: needs at least 3 buffers. *)
  check_bool "enough buffers" true (n >= 3);
  check_bool "stage caps within ceiling" true
    (max_stage_cap buffered <= ceiling +. 1.);
  check_bool "input tree untouched" true (Array.length (Tree.buffer_ids t) = 0)

let test_line_fast_matches_exact () =
  let t = long_line () in
  let exact = Buffering.Vanginneken.insert t ~buf:buf8 ~cap_ceiling:400. () in
  let fast = Buffering.Fast_vg.insert t ~buf:buf8 ~cap_ceiling:400. () in
  let delay tree =
    (Analysis.Evaluator.evaluate ~engine:Analysis.Evaluator.Elmore_model tree)
      .Analysis.Evaluator.t_max
  in
  let de = delay exact and df = delay fast in
  check_bool "fast within 10% of exact" true (Float.abs (df -. de) /. de < 0.10)

let test_tree_insertion () =
  let zst = random_zst 5 40 in
  let ceiling = 450. in
  let buffered = Buffering.Fast_vg.insert zst ~buf:buf8 ~cap_ceiling:ceiling () in
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check buffered);
  check_bool "stage caps bounded" true (max_stage_cap buffered <= ceiling +. 1.);
  check_int "sinks preserved" 40 (Array.length (Tree.sinks buffered))

let test_infeasible_sink () =
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  ignore
    (Tree.add_node t
       ~kind:(Tree.Sink { Tree.cap = 9999.; parity = 0; label = "huge" })
       ~pos:(Point.make 100_000 0) ~parent:(Tree.root t) ());
  check_bool "raises infeasible" true
    (try
       ignore (Buffering.Fast_vg.insert t ~buf:buf8 ~cap_ceiling:400. ());
       false
     with Buffering.Fast_vg.Infeasible _ -> true)

let test_rejects_buffered_input () =
  let t = long_line () in
  let buffered = Buffering.Fast_vg.insert t ~buf:buf8 ~cap_ceiling:400. () in
  check_bool "raises on double insertion" true
    (try
       ignore (Buffering.Fast_vg.insert buffered ~buf:buf8 ~cap_ceiling:400. ());
       false
     with Buffering.Fast_vg.Infeasible _ -> true)

let test_forbidden_region () =
  (* Buffers must avoid the obstacle band across the middle of the line. *)
  let obstacle = Rect.make ~lx:2_000_000 ~ly:(-500_000) ~hx:4_000_000 ~hy:500_000 in
  let t = long_line () in
  let forbidden p = Rect.contains_open obstacle p in
  let buffered =
    Buffering.Fast_vg.insert t ~buf:buf8 ~forbidden ~cap_ceiling:600. ()
  in
  Alcotest.(check (list int)) "no illegal buffers" []
    (Route.Repair.illegal_buffers buffered ~obstacles:[ obstacle ])

let test_polarity_oblivious () =
  (* Inverting buffers leave some sinks inverted; that is by design. *)
  let zst = random_zst 9 30 in
  let buffered = Buffering.Fast_vg.insert zst ~buf:buf8 ~cap_ceiling:450. () in
  let wrong = Core.Polarity.inverted_sinks buffered in
  check_bool "some sinks inverted" true (List.length wrong > 0)

let test_zero_length_edges () =
  (* Regression: stacked zero-length edges (coincident DME merge points)
     must still offer buffer positions, or dense trees become infeasible
     at any ceiling. *)
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let p = Point.make 1_000_000 0 in
  (* a chain of zero-length internal nodes at the same point, fanning out
     to loaded sinks *)
  let n1 = Tree.add_node t ~kind:Tree.Internal ~pos:p ~parent:(Tree.root t) () in
  let n2 = Tree.add_node t ~kind:Tree.Internal ~pos:p ~parent:n1 () in
  let n3 = Tree.add_node t ~kind:Tree.Internal ~pos:p ~parent:n2 () in
  List.iteri
    (fun i parent ->
      ignore
        (Tree.add_node t
           ~kind:(Tree.Sink { Tree.cap = 120.; parity = 0; label = Printf.sprintf "s%d" i })
           ~pos:(Point.make 1_050_000 (i * 50_000)) ~parent ()))
    [ n1; n2; n3; n3 ];
  (* Ceiling below the combined load: only buffers placed at the stacked
     zero-length edges can split it. *)
  let buffered = Buffering.Fast_vg.insert t ~buf:buf8 ~cap_ceiling:200. () in
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check buffered);
  check_bool "stage caps bounded" true (max_stage_cap buffered <= 201.)

let insertion_qcheck =
  QCheck.Test.make
    ~name:"vg: random trees stay valid, stage caps bounded, sinks kept"
    ~count:15
    QCheck.(pair (int_range 5 50) (int_range 0 1000))
    (fun (n, seed) ->
      let zst = random_zst seed n in
      let ceiling = 500. in
      match Buffering.Fast_vg.insert zst ~buf:buf8 ~cap_ceiling:ceiling () with
      | buffered ->
        Ctree.Validate.check buffered = []
        && Array.length (Tree.sinks buffered) = n
        && max_stage_cap buffered <= ceiling +. 1.
      | exception Buffering.Fast_vg.Infeasible _ -> true)

let buffer_count_qcheck =
  QCheck.Test.make ~name:"vg: tighter ceiling, more buffers" ~count:10
    QCheck.(int_range 0 500)
    (fun seed ->
      let zst = random_zst seed 30 in
      let count ceiling =
        ignore (Buffering.Fast_vg.insert zst ~buf:buf8 ~cap_ceiling:ceiling ());
        Buffering.Fast_vg.last_inserted ()
      in
      count 250. >= count 800.)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "buffering"
    [
      ("van-ginneken",
       [ Alcotest.test_case "line insertion" `Quick test_line_insertion;
         Alcotest.test_case "fast matches exact" `Quick test_line_fast_matches_exact;
         Alcotest.test_case "tree insertion" `Quick test_tree_insertion;
         Alcotest.test_case "infeasible sink" `Quick test_infeasible_sink;
         Alcotest.test_case "double insertion rejected" `Quick test_rejects_buffered_input;
         Alcotest.test_case "forbidden region" `Quick test_forbidden_region;
         Alcotest.test_case "polarity oblivious" `Quick test_polarity_oblivious;
         Alcotest.test_case "zero-length edges" `Quick test_zero_length_edges;
         q insertion_qcheck; q buffer_count_qcheck ]);
    ]
