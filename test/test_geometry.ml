open Geometry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Point ---------- *)

let test_point_dist () =
  check_int "manhattan" 7 (Point.dist (Point.make 0 0) (Point.make 3 4));
  check_int "self" 0 (Point.dist (Point.make 5 5) (Point.make 5 5));
  check_int "negative coords" 10 (Point.dist (Point.make (-3) (-2)) (Point.make 2 3))

let test_point_midpoint () =
  let m = Point.midpoint (Point.make 0 0) (Point.make 10 6) in
  check_int "mid x" 5 m.Point.x;
  check_int "mid y" 3 m.Point.y;
  (* Odd spans round towards the first argument. *)
  let m = Point.midpoint (Point.make 0 0) (Point.make 3 3) in
  check_int "odd x" 1 m.Point.x

let test_point_aligned () =
  check_bool "x aligned" true (Point.is_aligned (Point.make 1 5) (Point.make 1 9));
  check_bool "y aligned" true (Point.is_aligned (Point.make 2 7) (Point.make 9 7));
  check_bool "not aligned" false (Point.is_aligned (Point.make 1 2) (Point.make 3 4))

(* ---------- Rect ---------- *)

let r00_44 = Rect.make ~lx:0 ~ly:0 ~hx:4 ~hy:4

let test_rect_basic () =
  check_int "width" 4 (Rect.width r00_44);
  check_int "area" 16 (Rect.area r00_44);
  check_bool "contains corner" true (Rect.contains r00_44 (Point.make 0 0));
  check_bool "contains_open corner" false (Rect.contains_open r00_44 (Point.make 0 0));
  check_bool "contains_open inside" true (Rect.contains_open r00_44 (Point.make 2 2));
  Alcotest.check_raises "inverted" (Invalid_argument "Rect.make: inverted bounds (3,0)-(1,4)")
    (fun () -> ignore (Rect.make ~lx:3 ~ly:0 ~hx:1 ~hy:4))

let test_rect_intersect () =
  let b = Rect.make ~lx:2 ~ly:2 ~hx:6 ~hy:6 in
  (match Rect.intersect r00_44 b with
  | Some i ->
    check_int "ix" 2 i.Rect.lx;
    check_int "ihx" 4 i.Rect.hx
  | None -> Alcotest.fail "expected intersection");
  let far = Rect.make ~lx:10 ~ly:10 ~hx:12 ~hy:12 in
  check_bool "disjoint" true (Rect.intersect r00_44 far = None);
  (* Touching rectangles: degenerate intersection, not open overlap. *)
  let touch = Rect.make ~lx:4 ~ly:0 ~hx:8 ~hy:4 in
  check_bool "abuts" true (Rect.abuts r00_44 touch);
  check_bool "no open overlap" false (Rect.overlaps_open r00_44 touch)

let test_rect_dist_clamp () =
  check_int "inside dist" 0 (Rect.dist_to_point r00_44 (Point.make 1 1));
  check_int "outside dist" 5 (Rect.dist_to_point r00_44 (Point.make 7 6));
  let c = Rect.clamp r00_44 (Point.make 7 6) in
  check_int "clamp x" 4 c.Point.x;
  check_int "clamp y" 4 c.Point.y

let test_compound_groups () =
  let a = Rect.make ~lx:0 ~ly:0 ~hx:4 ~hy:4 in
  let b = Rect.make ~lx:4 ~ly:1 ~hx:8 ~hy:3 in (* abuts a on an edge *)
  let c = Rect.make ~lx:20 ~ly:20 ~hx:22 ~hy:22 in
  let groups = Rect.compound_groups [ a; b; c ] in
  check_int "two groups" 2 (List.length groups);
  let sizes = List.sort compare (List.map List.length groups) in
  Alcotest.(check (list int)) "sizes" [ 1; 2 ] sizes;
  (* Corner-only contact does not merge. *)
  let d = Rect.make ~lx:4 ~ly:4 ~hx:8 ~hy:8 in
  let groups = Rect.compound_groups [ a; d ] in
  check_int "corner contact separate" 2 (List.length groups)

(* ---------- Segment and L-shapes ---------- *)

let test_segment_basic () =
  let s = Segment.make (Point.make 0 0) (Point.make 10 0) in
  check_int "length" 10 (Segment.length s);
  check_bool "horizontal" true (Segment.is_horizontal s);
  check_bool "contains" true (Segment.contains s (Point.make 5 0));
  check_bool "not contains" false (Segment.contains s (Point.make 5 1));
  Alcotest.check_raises "diagonal rejected"
    (Invalid_argument "Segment.make: (0,0) and (1,1) are not axis-aligned")
    (fun () -> ignore (Segment.make (Point.make 0 0) (Point.make 1 1)))

let test_segment_overlap () =
  let r = Rect.make ~lx:2 ~ly:(-1) ~hx:5 ~hy:1 in
  let s = Segment.make (Point.make 0 0) (Point.make 10 0) in
  check_int "open overlap" 3 (Segment.overlap_with_rect s r);
  (* Along the boundary: no open overlap. *)
  let s_edge = Segment.make (Point.make 0 1) (Point.make 10 1) in
  check_int "boundary no overlap" 0 (Segment.overlap_with_rect s_edge r)

let test_lshape () =
  let p = Point.make 0 0 and q = Point.make 10 10 in
  let bend_xy = Segment.L.bend Segment.L.XY p q in
  check_int "XY bend x" 10 bend_xy.Point.x;
  check_int "XY bend y" 0 bend_xy.Point.y;
  check_int "XY segs" 2 (List.length (Segment.L.segments Segment.L.XY p q));
  (* Obstacle on the XY path only: best flips to YX. *)
  let obs = Rect.make ~lx:4 ~ly:(-2) ~hx:6 ~hy:2 in
  let best, overlap = Segment.L.best p q [ obs ] in
  check_bool "best is YX" true (best = Segment.L.YX);
  check_int "no overlap" 0 overlap

(* ---------- Manhattan arcs ---------- *)

let test_marc_basic () =
  let a = Marc.of_point (Point.make 0 0) in
  let b = Marc.of_point (Point.make 10 0) in
  check_int "dist points" 10 (Marc.dist a b);
  let arc = Marc.of_arc (Point.make 0 0) (Point.make 5 5) in
  check_int "dist to on-arc point" 0 (Marc.dist_to_point arc (Point.make 3 3));
  check_bool "is_arc" true (Marc.is_arc arc);
  Alcotest.check_raises "non-arc"
    (Invalid_argument "Marc.of_arc: (0,0)-(5,3) is not a Manhattan arc")
    (fun () -> ignore (Marc.of_arc (Point.make 0 0) (Point.make 5 3)))

let test_marc_merging () =
  (* Classic DME: TRRs with radii summing to the distance intersect. *)
  let a = Marc.of_point (Point.make 0 0) in
  let b = Marc.of_point (Point.make 10 0) in
  let d = Marc.dist a b in
  let ra = 3 in
  (match Marc.intersect (Marc.expand a ra) (Marc.expand b (d - ra)) with
  | Some ms ->
    check_int "ms within ra of a" ra (Marc.dist a ms);
    check_int "ms within rb of b" (d - ra) (Marc.dist b ms)
  | None -> Alcotest.fail "merging segment must exist");
  (* Disjoint when radii fall short. *)
  check_bool "short radii disjoint" true
    (Marc.intersect (Marc.expand a 2) (Marc.expand b 2) = None)

let test_marc_closest () =
  let arc = Marc.of_arc (Point.make 0 0) (Point.make 6 6) in
  let c = Marc.closest_to arc (Point.make 10 0) in
  check_int "closest on arc" 0 (Marc.dist_to_point arc c);
  check_int "distance preserved" (Marc.dist_to_point arc (Point.make 10 0))
    (Point.dist (Point.make 10 0) c)

let marc_qcheck =
  QCheck.Test.make ~name:"marc: closest_to is within 1nm of region and optimal"
    ~count:300
    QCheck.(quad (int_range (-500) 500) (int_range (-500) 500)
              (int_range (-500) 500) (int_range 0 200))
    (fun (x, y, px, r) ->
      let core = Marc.of_arc (Point.make x y) (Point.make (x + 60) (y + 60)) in
      let region = Marc.expand core r in
      let p = Point.make px (y - 300) in
      let c = Marc.closest_to region p in
      (* parity snap may leave the region by at most 1 nm *)
      Marc.dist_to_point region c <= 1
      && Point.dist p c <= Marc.dist_to_point region p + 2)

(* ---------- Contour ---------- *)

let square = Rect.make ~lx:0 ~ly:0 ~hx:10 ~hy:10

let test_contour_square () =
  let c = Contour.of_rects [ square ] in
  check_int "perimeter" 40 (Contour.perimeter c);
  check_int "vertices" 4 (List.length (Contour.vertices c));
  let s, p = Contour.project c (Point.make 5 (-3)) in
  check_int "projected on bottom" 0 p.Point.y;
  check_int "x kept" 5 p.Point.x;
  let q = Contour.point_at c s in
  check_bool "roundtrip" true (Point.equal p q)

let test_contour_l_union () =
  (* L-shaped union of two rects: outer contour only. *)
  let a = Rect.make ~lx:0 ~ly:0 ~hx:10 ~hy:4 in
  let b = Rect.make ~lx:0 ~ly:4 ~hx:4 ~hy:10 in
  let c = Contour.of_rects [ a; b ] in
  check_int "L perimeter" 40 (Contour.perimeter c);
  check_int "L vertices" 6 (List.length (Contour.vertices c));
  check_bool "contains interior" true (Contour.contains c (Point.make 2 2));
  check_bool "excludes notch" false (Contour.contains c (Point.make 8 8))

let test_contour_walks () =
  let c = Contour.of_rects [ square ] in
  let s1, _ = Contour.project c (Point.make 0 0) in
  let s2, _ = Contour.project c (Point.make 10 10) in
  check_int "half perimeter both ways" 20 (Contour.dist_along c s1 s2);
  let path = Contour.shortest_path c s1 s2 in
  let len =
    let rec go = function
      | a :: b :: rest -> Point.dist a b + go (b :: rest)
      | _ -> 0
    in
    go path
  in
  check_int "path length matches" 20 len;
  check_int "fwd + bwd = perimeter" 40
    (Contour.dist_forward c s1 s2 + Contour.dist_forward c s2 s1)

let test_contour_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Contour.of_rects: empty list")
    (fun () -> ignore (Contour.of_rects []));
  let far = Rect.make ~lx:100 ~ly:100 ~hx:110 ~hy:110 in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Contour.of_rects: rectangles do not form one compound")
    (fun () -> ignore (Contour.of_rects [ square; far ]))

let contour_qcheck =
  QCheck.Test.make ~name:"contour: project lands on boundary, point_at inverts"
    ~count:200
    QCheck.(pair (int_range (-50) 150) (int_range (-50) 150))
    (fun (x, y) ->
      let a = Rect.make ~lx:0 ~ly:0 ~hx:60 ~hy:30 in
      let b = Rect.make ~lx:20 ~ly:30 ~hx:80 ~hy:70 in
      let c = Contour.of_rects [ a; b ] in
      let s, p = Contour.project c (Point.make x y) in
      let q = Contour.point_at c s in
      Point.equal p q && 0 <= s && s < Contour.perimeter c)

(* ---------- Grid (maze router) ---------- *)

let test_contour_plus_shape () =
  (* Plus-shaped union of three rects: 12 corners, correct perimeter. *)
  let rects =
    [ Rect.make ~lx:10 ~ly:0 ~hx:20 ~hy:30;
      Rect.make ~lx:0 ~ly:10 ~hx:10 ~hy:20;
      Rect.make ~lx:20 ~ly:10 ~hx:30 ~hy:20 ]
  in
  let c = Contour.of_rects rects in
  check_int "12 vertices" 12 (List.length (Contour.vertices c));
  check_int "perimeter" 120 (Contour.perimeter c);
  check_bool "center inside" true (Contour.contains c (Point.make 15 15));
  check_bool "notch outside" false (Contour.contains c (Point.make 2 2))

let test_contour_path_lengths () =
  let c = Contour.of_rects [ square ] in
  let s1, _ = Contour.project c (Point.make 3 0) in
  let s2, _ = Contour.project c (Point.make 10 7) in
  let poly_len path =
    let rec go = function
      | a :: b :: rest -> Point.dist a b + go (b :: rest)
      | _ -> 0
    in
    go path
  in
  check_int "forward path length" (Contour.dist_forward c s1 s2)
    (poly_len (Contour.path_between c `Forward s1 s2));
  check_int "backward path length" (Contour.dist_forward c s2 s1)
    (poly_len (Contour.path_between c `Backward s1 s2))

let test_marc_endpoints_center () =
  let arc = Marc.of_arc (Point.make 0 0) (Point.make 8 8) in
  let a, b = Marc.endpoints arc in
  check_int "endpoints on arc a" 0 (Marc.dist_to_point arc a);
  check_int "endpoints on arc b" 0 (Marc.dist_to_point arc b);
  check_bool "center within snap" true (Marc.dist_to_point arc (Marc.center arc) <= 1)

let test_rect_expand () =
  let r = Rect.make ~lx:10 ~ly:10 ~hx:20 ~hy:20 in
  let e = Rect.expand r 5 in
  check_int "expanded width" 20 (Rect.width e);
  (* over-shrink collapses to the centre point *)
  let s = Rect.expand r (-50) in
  check_int "collapsed" 0 (Rect.area s);
  check_bool "at centre" true (Point.equal (Rect.center r) (Rect.center s))

let test_bounding_box () =
  let bb =
    Rect.bounding_box
      [ Rect.make ~lx:5 ~ly:0 ~hx:6 ~hy:1; Rect.make ~lx:0 ~ly:7 ~hx:2 ~hy:9 ]
  in
  check_bool "covers both" true
    (Rect.contains bb (Point.make 5 0) && Rect.contains bb (Point.make 2 9))

let lshape_qcheck =
  QCheck.Test.make ~name:"L: both configs connect p to q with manhattan length"
    ~count:200
    QCheck.(quad (int_range (-100) 100) (int_range (-100) 100)
              (int_range (-100) 100) (int_range (-100) 100))
    (fun (px, py, qx, qy) ->
      let p = Point.make px py and q = Point.make qx qy in
      List.for_all
        (fun config ->
          let segs = Segment.L.segments config p q in
          let len = List.fold_left (fun a s -> a + Segment.length s) 0 segs in
          len = Point.dist p q)
        [ Segment.L.XY; Segment.L.YX ])

let test_route_free () =
  match Grid.route ~obstacles:[] ~src:(Point.make 0 0) ~dst:(Point.make 50 30) with
  | Some path ->
    check_int "free route is manhattan" 80 (Grid.path_length path);
    check_bool "starts at src" true (Point.equal (List.hd path) (Point.make 0 0))
  | None -> Alcotest.fail "route must exist"

let test_route_blocked () =
  (* Wall between src and dst forces a detour. *)
  let wall = Rect.make ~lx:20 ~ly:(-100) ~hx:30 ~hy:100 in
  let src = Point.make 0 0 and dst = Point.make 50 0 in
  match Grid.route ~obstacles:[ wall ] ~src ~dst with
  | Some path ->
    check_bool "longer than manhattan" true (Grid.path_length path > 50);
    (* No segment crosses the wall interior. *)
    let rec ok = function
      | a :: b :: rest ->
        Segment.overlap_with_rect (Segment.make a b) wall = 0 && ok (b :: rest)
      | _ -> true
    in
    check_bool "avoids interior" true (ok path)
  | None -> Alcotest.fail "route must exist around a finite wall"

let test_route_escape () =
  (* Source strictly inside an obstacle escapes to its boundary. *)
  let obs = Rect.make ~lx:0 ~ly:0 ~hx:10 ~hy:10 in
  match Grid.route ~obstacles:[ obs ] ~src:(Point.make 5 5) ~dst:(Point.make 30 5) with
  | Some path -> check_bool "starts at src" true (Point.equal (List.hd path) (Point.make 5 5))
  | None -> Alcotest.fail "escape route must exist"

let grid_qcheck =
  QCheck.Test.make ~name:"grid: route legal and no shorter than manhattan"
    ~count:100
    QCheck.(pair (pair (int_range 0 19) (int_range 0 19)) (pair small_nat small_nat))
    (fun ((ax, ay), (bx, by)) ->
      (* terminals outside the obstacles: escape stubs may legally cross *)
      let src = Point.make ax ay and dst = Point.make (bx + 120) (by + 120) in
      let obstacles =
        [ Rect.make ~lx:40 ~ly:20 ~hx:80 ~hy:90;
          Rect.make ~lx:80 ~ly:60 ~hx:110 ~hy:100 ]
      in
      match Grid.route ~obstacles ~src ~dst with
      | None -> false
      | Some path ->
        let rec legal = function
          | a :: b :: rest ->
            List.for_all
              (fun r -> Segment.overlap_with_rect (Segment.make a b) r = 0)
              obstacles
            && legal (b :: rest)
          | _ -> true
        in
        Grid.path_length path >= Point.dist src dst && legal path)

(* ---------- Bucket ---------- *)

let test_bucket_basic () =
  let b = Bucket.create ~cell:10 in
  Bucket.add b 1 (Point.make 0 0);
  Bucket.add b 2 (Point.make 100 100);
  Bucket.add b 3 (Point.make 5 5);
  (match Bucket.nearest b (Point.make 1 1) with
  | Some (id, _) -> check_int "nearest id" 1 id
  | None -> Alcotest.fail "nearest must exist");
  (match Bucket.nearest b ~exclude:(fun i -> i = 1) (Point.make 1 1) with
  | Some (id, _) -> check_int "excluded nearest" 3 id
  | None -> Alcotest.fail "nearest must exist");
  Bucket.remove b 3;
  check_int "size after remove" 2 (Bucket.size b);
  check_bool "mem" false (Bucket.mem b 3)

let bucket_qcheck =
  QCheck.Test.make ~name:"bucket: nearest matches brute force" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (int_range 0 1000) (int_range 0 1000)))
    (fun pts ->
      let b = Bucket.create ~cell:64 in
      List.iteri (fun i (x, y) -> Bucket.add b i (Point.make x y)) pts;
      let query = Point.make 321 456 in
      match Bucket.nearest b query with
      | None -> pts = []
      | Some (_, found) ->
        let best =
          List.fold_left
            (fun acc (x, y) -> min acc (Point.dist query (Point.make x y)))
            max_int pts
        in
        Point.dist query found = best)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "geometry"
    [
      ("listx",
       [ Alcotest.test_case "last" `Quick (fun () ->
             Alcotest.(check int) "last of many" 3
               (Listx.last ~what:"t" [ 1; 2; 3 ]);
             Alcotest.(check int) "last of one" 7 (Listx.last ~what:"t" [ 7 ]);
             Alcotest.(check bool) "empty names the caller" true
               (match Listx.last ~what:"caller-site" [] with
               | exception Invalid_argument msg ->
                 String.length msg > 0
                 && String.sub msg 0 11 = "caller-site"
               | _ -> false)) ]);
      ("point",
       [ Alcotest.test_case "dist" `Quick test_point_dist;
         Alcotest.test_case "midpoint" `Quick test_point_midpoint;
         Alcotest.test_case "aligned" `Quick test_point_aligned ]);
      ("rect",
       [ Alcotest.test_case "basic" `Quick test_rect_basic;
         Alcotest.test_case "intersect/abut" `Quick test_rect_intersect;
         Alcotest.test_case "dist/clamp" `Quick test_rect_dist_clamp;
         Alcotest.test_case "compound groups" `Quick test_compound_groups;
         Alcotest.test_case "expand/shrink" `Quick test_rect_expand;
         Alcotest.test_case "bounding box" `Quick test_bounding_box ]);
      ("segment",
       [ Alcotest.test_case "basic" `Quick test_segment_basic;
         Alcotest.test_case "overlap" `Quick test_segment_overlap;
         Alcotest.test_case "L-shapes" `Quick test_lshape;
         q lshape_qcheck ]);
      ("marc",
       [ Alcotest.test_case "basic" `Quick test_marc_basic;
         Alcotest.test_case "merging segments" `Quick test_marc_merging;
         Alcotest.test_case "closest" `Quick test_marc_closest;
         Alcotest.test_case "endpoints/center" `Quick test_marc_endpoints_center;
         q marc_qcheck ]);
      ("contour",
       [ Alcotest.test_case "square" `Quick test_contour_square;
         Alcotest.test_case "L union" `Quick test_contour_l_union;
         Alcotest.test_case "walks" `Quick test_contour_walks;
         Alcotest.test_case "rejects" `Quick test_contour_rejects;
         Alcotest.test_case "plus shape" `Quick test_contour_plus_shape;
         Alcotest.test_case "path lengths" `Quick test_contour_path_lengths;
         q contour_qcheck ]);
      ("grid",
       [ Alcotest.test_case "free" `Quick test_route_free;
         Alcotest.test_case "blocked" `Quick test_route_blocked;
         Alcotest.test_case "escape" `Quick test_route_escape;
         q grid_qcheck ]);
      ("bucket",
       [ Alcotest.test_case "basic" `Quick test_bucket_basic; q bucket_qcheck ]);
    ]
