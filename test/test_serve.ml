(* The serve daemon and the lifetime bugfixes that ride with it (ISSUE 8):
   protocol round-trips, cross-request cache reuse, bounded-queue
   backpressure, per-request deadlines — plus regressions for the pool
   exception shield, the inline-submit serialization, the Fcache clock
   eviction and the runner's spec validation. *)

module Protocol = Serve.Protocol
module Client = Serve.Client
module Server = Serve.Server
module Json = Suite.Report.Json
module Dp = Analysis.Domain_pool
module Tr = Analysis.Transient
module Rcnet = Analysis.Rcnet

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  nl = 0 || go 0

(* ---------- protocol ---------- *)

let test_protocol_roundtrip () =
  let requests =
    [
      Protocol.Run
        { spec = "ti:200"; timeout_s = Some 12.5; request_key = None };
      Protocol.Run
        { spec = "grid:4"; timeout_s = None; request_key = Some "k-1" };
      Protocol.Eval
        { spec = "f11"; timeout_s = Some 0.25; request_key = Some "k-2" };
      Protocol.Sleep { seconds = 1.5; timeout_s = None };
      Protocol.Stats;
      Protocol.Ping;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_request (Protocol.encode_request r) with
      | Ok r' -> check_bool "request round-trips" true (r = r')
      | Error e -> Alcotest.fail e)
    requests;
  let responses =
    [
      Protocol.Completed
        { op = "run"; body = Json.Obj [ ("skew_ps", Json.Num 1.25) ] };
      Protocol.Completed { op = "ping"; body = Json.Null };
      Protocol.Busy { retry_after_s = 0.5 };
      Protocol.Failed { code = "deadline"; detail = "budget exceeded" };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_response (Protocol.encode_response r) with
      | Ok r' -> check_bool "response round-trips" true (r = r')
      | Error e -> Alcotest.fail e)
    responses;
  (* Garbage shapes decode to errors, not exceptions. *)
  List.iter
    (fun bad ->
      check_bool "bad request json rejected" true
        (match Protocol.decode_request bad with
        | Error _ -> true
        | Ok _ -> false))
    [ Json.Null; Json.Obj []; Json.Obj [ ("op", Json.Str "warp") ] ]

let test_framing () =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let payload =
        Json.Obj [ ("op", Json.Str "ping"); ("n", Json.Num 42.) ]
      in
      Protocol.write_frame a payload;
      Protocol.write_frame a (Json.Str "second");
      (match Protocol.read_frame b with
      | Some j -> check_bool "first frame intact" true (j = payload)
      | None -> Alcotest.fail "unexpected EOF");
      (match Protocol.read_frame b with
      | Some j -> check_bool "second frame intact" true (j = Json.Str "second")
      | None -> Alcotest.fail "unexpected EOF");
      (* Clean EOF at a frame boundary is None, not an error. *)
      Unix.close a;
      check_bool "clean EOF" true (Protocol.read_frame b = None))

(* ---------- daemon fixture ---------- *)

let with_server ?config ?max_queue ?workers f =
  let dir = Filename.temp_dir "contango_serve" "" in
  let path = Filename.concat dir "d.sock" in
  let server = Server.create ?config ?max_queue ?workers (Unix.ADDR_UNIX path) in
  let addr = Server.sockaddr server in
  let thread = Thread.create Server.serve server in
  Fun.protect
    ~finally:(fun () ->
      (match Client.oneshot addr Protocol.Shutdown with
      | Ok _ | Error _ -> ()
      | exception Unix.Unix_error _ -> Server.shutdown server);
      Thread.join thread)
    (fun () ->
      check_bool "daemon comes up" true (Client.wait_ready addr);
      f addr)

let cache_field body name =
  match
    Json.to_float (Option.bind (Json.member "cache" body) (Json.member name))
  with
  | Some v -> int_of_float v
  | None -> Alcotest.failf "response body lacks cache.%s" name

let run_ok addr spec =
  match
    Client.oneshot addr
      (Protocol.Run { spec; timeout_s = Some 120.; request_key = None })
  with
  | Ok (Protocol.Completed { body; _ }) -> body
  | Ok (Protocol.Busy _) -> Alcotest.fail "unexpected Busy"
  | Ok (Protocol.Failed { code; detail }) ->
    Alcotest.failf "request failed (%s): %s" code detail
  | Error e -> Alcotest.fail e

(* ---------- daemon behaviour ---------- *)

(* The tentpole's acceptance scenario: a second identical request must be
   served out of the shared stage/factorisation store — nonzero hits,
   zero misses — and still report the identical result. *)
let test_cache_reuse () =
  with_server (fun addr ->
      let first = run_ok addr "ti:40" in
      let second = run_ok addr "ti:40" in
      check_bool "first request misses the store" true
        (cache_field first "store_misses" > 0);
      check_bool "repeat hits the store" true
        (cache_field second "store_hits" > 0);
      check_int "repeat never misses" 0 (cache_field second "store_misses");
      let skew body =
        Json.to_float
          (Option.bind (Json.member "result" body) (Json.member "skew_ps"))
      in
      check_bool "identical result" true (skew first = skew second))

let test_deadline () =
  with_server (fun addr ->
      (* Budget expires mid-hold: the cooperative sleep notices within a
         few ms and answers a structured deadline error. *)
      (match
         Client.oneshot addr
           (Protocol.Sleep { seconds = 30.; timeout_s = Some 0.05 })
       with
      | Ok (Protocol.Failed { code; _ }) -> check_string "code" "deadline" code
      | Ok _ -> Alcotest.fail "expected a deadline failure"
      | Error e -> Alcotest.fail e);
      (* Same through the flow's own cooperative checks. *)
      match
        Client.oneshot addr
          (Protocol.Run
             { spec = "ti:100"; timeout_s = Some 0.002; request_key = None })
      with
      | Ok (Protocol.Failed { code; _ }) -> check_string "code" "deadline" code
      | Ok _ -> Alcotest.fail "expected a deadline failure"
      | Error e -> Alcotest.fail e)

let test_bad_spec_request () =
  with_server (fun addr ->
      match
        Client.oneshot addr
          (Protocol.Run { spec = "ti:-5"; timeout_s = None; request_key = None })
      with
      | Ok (Protocol.Failed { code; detail }) ->
        check_string "code" "bad_request" code;
        check_bool "detail names the sink count" true
          (contains detail "positive")
      | Ok _ -> Alcotest.fail "expected bad_request"
      | Error e -> Alcotest.fail e)

let queue_depth addr =
  match Client.oneshot addr Protocol.Stats with
  | Ok (Protocol.Completed { body; _ }) -> (
    match Json.to_float (Json.member "queue_depth" body) with
    | Some v -> int_of_float v
    | None -> Alcotest.fail "stats lacks queue_depth")
  | Ok _ | Error _ -> Alcotest.fail "stats request failed"

let test_backpressure () =
  with_server ~max_queue:2 (fun addr ->
      (* Two Sleep requests occupy both queue slots; Stats is answered
         inline, so we can poll for the moment both are admitted without
         racing the connection threads. *)
      let sleepers =
        List.init 2 (fun _ ->
            Thread.create
              (fun () ->
                Client.oneshot addr
                  (Protocol.Sleep { seconds = 2.0; timeout_s = Some 30. }))
              ())
      in
      let give_up = Core.Monoclock.now () +. 10. in
      while queue_depth addr < 2 && Core.Monoclock.now () < give_up do
        Thread.yield ()
      done;
      check_int "queue full" 2 (queue_depth addr);
      (match
         Client.oneshot addr (Protocol.Sleep { seconds = 0.1; timeout_s = None })
       with
      | Ok (Protocol.Busy { retry_after_s }) ->
        check_bool "retry hint positive" true (retry_after_s > 0.)
      | Ok _ -> Alcotest.fail "expected Busy over the queue bound"
      | Error e -> Alcotest.fail e);
      (* Stats stays answerable while saturated, and counted the reject. *)
      (match Client.oneshot addr Protocol.Stats with
      | Ok (Protocol.Completed { body; _ }) ->
        check_bool "busy_rejected counted" true
          (Json.to_float (Json.member "busy_rejected" body) = Some 1.)
      | Ok _ | Error _ -> Alcotest.fail "stats request failed");
      List.iter
        (fun t ->
          match Thread.join t with
          | () -> ())
        sleepers;
      (* Slots free up again once the sleepers drain. *)
      match
        Client.oneshot addr (Protocol.Sleep { seconds = 0.; timeout_s = None })
      with
      | Ok (Protocol.Completed _) -> ()
      | Ok _ -> Alcotest.fail "queue should have drained"
      | Error e -> Alcotest.fail e)

(* ---------- connection lifecycle regressions ---------- *)

(* Regression for the graceful-shutdown hang: an idle connection kept
   [conns > 0] with nothing in flight, so the drain loop waited on it
   forever. The drain now closes idle connections, so shutdown completes
   while a parked client is still connected. *)
let test_shutdown_with_idle_conn () =
  let dir = Filename.temp_dir "contango_serve" "" in
  let path = Filename.concat dir "d.sock" in
  let server = Server.create (Unix.ADDR_UNIX path) in
  let addr = Server.sockaddr server in
  let thread = Thread.create Server.serve server in
  check_bool "daemon comes up" true (Client.wait_ready addr);
  (* Park a connection that never sends a request. *)
  let idle = Client.connect addr in
  (match Client.oneshot addr Protocol.Shutdown with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let joined = Atomic.make false in
  let joiner =
    Thread.create
      (fun () ->
        Thread.join thread;
        Atomic.set joined true)
      ()
  in
  let give_up = Core.Monoclock.now () +. 10. in
  while (not (Atomic.get joined)) && Core.Monoclock.now () < give_up do
    Unix.sleepf 0.01
  done;
  check_bool "drain does not wait on the idle connection" true
    (Atomic.get joined);
  Client.close idle;
  Thread.join joiner

(* Pin the ready condition: any decoded response counts, even one from a
   daemon that answers everything Busy — readiness means "the socket
   speaks the protocol", not "the daemon has capacity". *)
let test_wait_ready_accepts_busy () =
  let dir = Filename.temp_dir "contango_serve" "" in
  let path = Filename.concat dir "busy.sock" in
  let addr = Unix.ADDR_UNIX path in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd addr;
  Unix.listen fd 4;
  let stop = Atomic.make false in
  let accepter =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          match Unix.accept fd with
          | c, _ ->
            (try
               ignore (Protocol.read_frame c);
               Protocol.write_frame c
                 (Protocol.encode_response
                    (Protocol.Busy { retry_after_s = 0.5 }))
             with Protocol.Framing_error _ | Unix.Unix_error _ -> ());
            (try Unix.close c with Unix.Unix_error _ -> ())
          | exception Unix.Unix_error _ -> Atomic.set stop true
        done)
      ()
  in
  check_bool "busy answers count as ready" true
    (Client.wait_ready ~timeout_s:5. addr);
  Atomic.set stop true;
  (* Unblock the accept so the thread can exit. *)
  (try Client.close (Client.connect addr) with Unix.Unix_error _ -> ());
  Unix.close fd;
  Thread.join accepter

(* Pin [oneshot]'s close-on-raise: a server that answers with an
   oversize header makes every exchange raise Framing_error, and the
   process fd population must not grow — the connection is closed on the
   way out of the raise. *)
let test_oneshot_closes_on_raise () =
  let count_fds () = Array.length (Sys.readdir "/proc/self/fd") in
  let dir = Filename.temp_dir "contango_serve" "" in
  let path = Filename.concat dir "evil.sock" in
  let addr = Unix.ADDR_UNIX path in
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd addr;
  Unix.listen fd 16;
  let rounds = 10 in
  let accepter =
    Thread.create
      (fun () ->
        for _ = 1 to rounds do
          match Unix.accept fd with
          | c, _ ->
            (try
               ignore (Protocol.read_frame c);
               (* Header claiming an impossible frame; no payload. *)
               let b = Bytes.create 4 in
               Bytes.set_int32_be b 0
                 (Int32.of_int (Protocol.max_frame + 1));
               Protocol.really_write c b
             with Protocol.Framing_error _ | Unix.Unix_error _ -> ());
            (try Unix.close c with Unix.Unix_error _ -> ())
          | exception Unix.Unix_error _ -> ()
        done)
      ()
  in
  let before = count_fds () in
  for _ = 1 to rounds do
    match Client.oneshot addr Protocol.Ping with
    | Ok _ | Error _ -> Alcotest.fail "expected a framing error"
    | exception Protocol.Framing_error _ -> ()
  done;
  Thread.join accepter;
  Unix.close fd;
  (* Transient fds (the readdir handle, the accepter's live connection)
     can make the baseline wobble by one downward; a leak would grow the
     population by one per round. *)
  check_bool "no fd leaked across raising exchanges" true
    (count_fds () <= before)

(* ---------- pool regressions ---------- *)

(* A raising submitted job must neither kill a worker domain (shrinking
   the pool) nor poison later work; it is counted instead. *)
let test_pool_survives_raising_job () =
  let pool = Dp.create ~size:1 () in
  Fun.protect
    ~finally:(fun () -> Dp.shutdown pool)
    (fun () ->
      Dp.submit pool (fun () -> failwith "boom");
      let give_up = Core.Monoclock.now () +. 10. in
      while Dp.failed_jobs pool < 1 && Core.Monoclock.now () < give_up do
        Thread.yield ()
      done;
      check_int "failure counted" 1 (Dp.failed_jobs pool);
      check_int "pool not shrunk" 1 (Dp.size pool);
      let doubled = Dp.map pool (fun x -> 2 * x) [| 1; 2; 3 |] in
      check_bool "map still works" true (doubled = [| 2; 4; 6 |]))

(* Size-0 pools run jobs inline on the submitting thread — and systhreads
   of one domain interleave preemptively, so without serialization two
   inline jobs corrupt the domain-exclusive scratch they assume they own
   (the daemon crash on single-core hosts). The overlap detector below
   fails on the unserialized submit. *)
let test_inline_submit_serialized () =
  let pool = Dp.create ~size:0 () in
  let inside = Atomic.make 0 in
  let overlap = Atomic.make false in
  let threads =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to 5 do
              Dp.submit pool (fun () ->
                  if Atomic.fetch_and_add inside 1 <> 0 then
                    Atomic.set overlap true;
                  Thread.yield ();
                  Thread.delay 0.002;
                  Atomic.decr inside)
            done)
          ())
  in
  List.iter Thread.join threads;
  check_bool "inline jobs never overlap" false (Atomic.get overlap)

(* ---------- Fcache clock eviction ---------- *)

let mk_rc seed =
  let n = 8 in
  let parent = Array.init n (fun i -> i - 1) in
  let res = Array.init n (fun i -> 50. +. float_of_int ((seed * 37) + i)) in
  let cap = Array.init n (fun i -> 2. +. float_of_int ((seed * 11) + i)) in
  let taps = [| (n - 1, Rcnet.Tap_sink 0) |] in
  { Rcnet.parent; res; cap; taps; size = n }

(* At capacity, insertion evicts exactly one cold entry — never the entry
   being inserted (the pre-fix whole-table reset dropped it too, so the
   very next lookup refactored it). *)
let test_fcache_insert_at_cap () =
  let c = Tr.Fcache.create ~cap:2 () in
  let rc1 = mk_rc 1 and rc2 = mk_rc 2 and rc3 = mk_rc 3 in
  let _ = Tr.Fcache.get c rc1 ~step:0.5 in
  let _ = Tr.Fcache.get c rc2 ~step:0.5 in
  check_int "at capacity" 2 (Tr.Fcache.length c);
  let f3 = Tr.Fcache.get c rc3 ~step:0.5 in
  check_bool "stays within cap" true (Tr.Fcache.length c <= 2);
  check_bool "just-inserted entry retained" true
    (Tr.Fcache.get c rc3 ~step:0.5 == f3)

(* Entries hit since their last inspection survive the rotation: the warm
   entry outlives the cold one. *)
let test_fcache_second_chance () =
  let c = Tr.Fcache.create ~cap:2 () in
  let rc1 = mk_rc 4 and rc2 = mk_rc 5 and rc3 = mk_rc 6 in
  let f1 = Tr.Fcache.get c rc1 ~step:0.5 in
  let _ = Tr.Fcache.get c rc2 ~step:0.5 in
  (* Mark rc1 used, leave rc2 cold; the insert evicts rc2. *)
  check_bool "hit returns the cached factor" true
    (Tr.Fcache.get c rc1 ~step:0.5 == f1);
  let _ = Tr.Fcache.get c rc3 ~step:0.5 in
  check_bool "warm entry survives eviction" true
    (Tr.Fcache.get c rc1 ~step:0.5 == f1);
  Tr.Fcache.clear c;
  check_int "clear empties" 0 (Tr.Fcache.length c);
  check_bool "refactors after clear" true
    (Tr.Fcache.get c rc1 ~step:0.5 != f1)

(* A shared Fstore is consulted on local misses and fed by local
   factorisations, so a second cache sees the first one's work. *)
let test_fcache_store_backing () =
  let store = Tr.Fstore.create () in
  let c1 = Tr.Fcache.create ~store () in
  let rc = mk_rc 7 in
  let f = Tr.Fcache.get c1 rc ~step:0.5 in
  check_bool "published to the store" true (Tr.Fstore.length store > 0);
  let c2 = Tr.Fcache.create ~store () in
  check_bool "fresh cache hits the store" true
    (Tr.Fcache.get c2 rc ~step:0.5 == f)

(* ---------- runner spec validation ---------- *)

let arnoldi_config =
  { Core.Config.default with Core.Config.engine = Analysis.Evaluator.Arnoldi }

let test_bad_specs_are_structured () =
  List.iter
    (fun (s, fragment) ->
      match Suite.Runner.spec_of_string s with
      | Suite.Runner.Bad_spec { bs_name; bs_detail } ->
        check_string "bad spec keeps its name" s bs_name;
        check_bool
          (Printf.sprintf "detail of %S mentions %S" s fragment)
          true
          (contains bs_detail fragment)
      | _ -> Alcotest.failf "%S should parse as Bad_spec" s)
    [
      ("ti:-5", "positive");
      ("grid:0", "positive");
      ("ti:many", "positive integer");
      ("no-such-bench.cts", "");
    ]

let test_bad_spec_runs_as_crashed () =
  let dir = Filename.temp_dir "contango_serve_suite" "" in
  let specs = List.map Suite.Runner.spec_of_string [ "ti:-5"; "ti:30" ] in
  let result =
    Suite.Runner.run ~out_dir:dir ~jobs:0 ~config:arnoldi_config specs
  in
  (match result.Suite.Runner.reports with
  | [ bad; good ] ->
    (match bad.Suite.Runner.status with
    | Suite.Runner.Failed { reason = Suite.Runner.Crashed; detail } ->
      check_bool "failure carries the validation message" true
        (contains detail "positive")
    | _ -> Alcotest.fail "bad spec should report Crashed");
    (match good.Suite.Runner.status with
    | Suite.Runner.Completed _ -> ()
    | _ -> Alcotest.fail "valid instance must still complete")
  | _ -> Alcotest.fail "expected two instance reports");
  check_int "exactly one failure" 1
    (List.length (Suite.Runner.failures result))

let () =
  Alcotest.run "serve"
    [
      ("protocol",
       [ Alcotest.test_case "request/response round-trip" `Quick
           test_protocol_roundtrip;
         Alcotest.test_case "framing" `Quick test_framing ]);
      ("daemon",
       [ Alcotest.test_case "cross-request cache reuse" `Slow test_cache_reuse;
         Alcotest.test_case "deadline expiry" `Quick test_deadline;
         Alcotest.test_case "bad spec" `Quick test_bad_spec_request;
         Alcotest.test_case "backpressure at max-queue" `Slow
           test_backpressure ]);
      ("lifecycle",
       [ Alcotest.test_case "shutdown with idle connection" `Quick
           test_shutdown_with_idle_conn;
         Alcotest.test_case "wait_ready accepts busy" `Quick
           test_wait_ready_accepts_busy;
         Alcotest.test_case "oneshot closes on raise" `Quick
           test_oneshot_closes_on_raise ]);
      ("pool",
       [ Alcotest.test_case "raising job survives" `Quick
           test_pool_survives_raising_job;
         Alcotest.test_case "inline submit serialized" `Quick
           test_inline_submit_serialized ]);
      ("fcache",
       [ Alcotest.test_case "insert at capacity" `Quick
           test_fcache_insert_at_cap;
         Alcotest.test_case "second chance" `Quick test_fcache_second_chance;
         Alcotest.test_case "store backing" `Quick test_fcache_store_backing ]);
      ("runner",
       [ Alcotest.test_case "bad specs are structured" `Quick
           test_bad_specs_are_structured;
         Alcotest.test_case "bad spec runs as Crashed" `Slow
           test_bad_spec_runs_as_crashed ]);
    ]
