(* Chaos harness drills (ISSUE 10): the fault-injection spec grammar and
   its seeded determinism, the hardened frame-I/O loops under injected
   EINTR/stall/short-write storms, read deadlines, persist-layer disk
   faults, and end-to-end daemon drills — every fault class fires, the
   daemon never dies, and a retried request with an idempotency key is
   answered without recomputation. *)

module Protocol = Serve.Protocol
module Client = Serve.Client
module Server = Serve.Server
module Chaos = Serve.Chaos
module Json = Suite.Report.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse_exn spec =
  match Chaos.parse spec with
  | Ok c -> c
  | Error e -> Alcotest.failf "spec %S should parse: %s" spec e

(* ---------- spec grammar ---------- *)

let test_parse_table () =
  let ok =
    [
      "";
      "drop_pre=0.5";
      "drop_pre=1@3";
      "seed=9,job_crash=1@3,stall_s=0.2,short_bytes=4";
      "frame_garbage=0.1, frame_truncate=0.1 ,frame_oversize=0@0";
      "eintr=0.25,short_write=0.25,stall=0.1,persist=1,drop_post=0.5";
    ]
  in
  List.iter
    (fun spec ->
      match Chaos.parse spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%S should parse: %s" spec e)
    ok;
  let bad =
    [
      "warp=1";           (* unknown fault class *)
      "drop_pre=2";       (* probability out of range *)
      "drop_pre=-0.1";
      "drop_pre=0.5@x";   (* malformed budget *)
      "drop_pre=0.5@-1";
      "seed=abc";
      "stall_s=-1";
      "short_bytes=0";
      "drop_pre";         (* not an assignment *)
    ]
  in
  List.iter
    (fun spec ->
      match Chaos.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should be rejected" spec)
    bad;
  check_bool "none is inactive" false (Chaos.is_active Chaos.none);
  check_bool "seed alone is inactive" false
    (Chaos.is_active (parse_exn "seed=5"));
  check_bool "an armed class is active" true
    (Chaos.is_active (parse_exn "drop_pre=0.01"))

(* ---------- seeded determinism and budgets ---------- *)

let plans spec n =
  let c = parse_exn spec in
  List.init n (fun _ -> Chaos.plan_response c)

let test_determinism () =
  check_bool "same seed, same plan stream" true
    (plans "seed=42,drop_pre=0.5" 60 = plans "seed=42,drop_pre=0.5" 60);
  check_bool "different seed, different stream" true
    (plans "seed=42,drop_pre=0.5" 60 <> plans "seed=43,drop_pre=0.5" 60);
  check_bool "chaos off delivers everything" true
    (List.for_all (( = ) Chaos.Deliver) (plans "seed=1" 20))

let test_budget () =
  let c = parse_exn "seed=7,drop_pre=1@2" in
  let dropped =
    List.init 100 (fun _ -> Chaos.plan_response c)
    |> List.filter (( <> ) Chaos.Deliver)
  in
  check_int "budget caps lifetime injections" 2 (List.length dropped);
  check_bool "every injection is the armed class" true
    (List.for_all (( = ) Chaos.Drop_before) dropped);
  check_int "counter agrees" 2 (Chaos.total_injected c);
  check_int "counted under its class" 2
    (List.assoc "drop_pre" (Chaos.injected c))

(* ---------- frame I/O under injected storms ---------- *)

(* A fault hook that fires [n] times, then goes quiet — an always-firing
   EINTR hook would starve the retry loop forever by design. *)
let firing n fault =
  let left = ref n in
  {
    Protocol.on_io =
      (fun _ ->
        if !left > 0 then begin
          decr left;
          Some fault
        end
        else None);
  }

let with_socketpair f =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_io_fault_loops () =
  let payload =
    Json.Obj [ ("op", Json.Str "ping"); ("blob", Json.Str (String.make 800 'x')) ]
  in
  let table =
    [
      ("eintr storm", firing 5 Protocol.Fault_eintr);
      ("short writes", firing 50 (Protocol.Fault_short 1));
      ("mid-frame stalls", firing 2 (Protocol.Fault_stall 0.01));
    ]
  in
  List.iter
    (fun (name, faults) ->
      with_socketpair (fun a b ->
          Protocol.write_frame ~faults a payload;
          match Protocol.read_frame ~faults b with
          | Some j ->
            check_bool (name ^ ": frame survives intact") true (j = payload)
          | None -> Alcotest.failf "%s: unexpected EOF" name))
    table;
  (* The Chaos-produced hook wires the same classes. *)
  check_bool "io classes arm the hook" true
    (Chaos.io_faults (parse_exn "eintr=0.5") <> None);
  check_bool "non-io classes do not" true
    (Chaos.io_faults (parse_exn "drop_pre=1") = None)

let test_read_deadline () =
  with_socketpair (fun _a b ->
      (* Silent peer: the deadline fires while waiting for the header. *)
      match Protocol.read_frame ~timeout_s:0.05 b with
      | exception Protocol.Timeout -> ()
      | _ -> Alcotest.fail "expected Timeout on a silent peer");
  with_socketpair (fun a b ->
      (* Stalled peer: header arrives, the payload never does — the
         deadline covers the whole frame, not just the first byte. *)
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 64l;
      Protocol.really_write a hdr;
      match Protocol.read_frame ~timeout_s:0.1 b with
      | exception Protocol.Timeout -> ()
      | _ -> Alcotest.fail "expected Timeout mid-frame")

(* ---------- persist-layer disk faults ---------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_persist_faults () =
  let dir = Filename.temp_dir "contango_chaos_persist" "" in
  let path = Filename.concat dir "snap.json" in
  Core.Persist.write_atomic path "original";
  let chaos = parse_exn "seed=11,persist=1" in
  Chaos.install_persist chaos;
  Fun.protect ~finally:Chaos.uninstall_persist (fun () ->
      (* Consecutive injections cycle the three failure points; whichever
         fires, the destination keeps its old content and no temp file
         survives. *)
      List.iter
        (fun expect ->
          match Core.Persist.write_atomic path "replacement" with
          | () -> Alcotest.fail "expected an injected disk fault"
          | exception Core.Persist.Injected_fault f ->
            check_string "faults cycle" expect (Core.Persist.fault_name f);
            check_string "destination intact" "original" (read_file path);
            check_int "no temp file left behind" 1
              (Array.length (Sys.readdir dir)))
        [ "fsync"; "rename"; "torn-tmp" ]);
  (* Hook removed: writes land again. *)
  Core.Persist.write_atomic path "replacement";
  check_string "uninstalled hook injects nothing" "replacement"
    (read_file path)

(* ---------- end-to-end daemon drills ---------- *)

let with_server ?chaos ?conn_timeout_s ?max_conns f =
  let dir = Filename.temp_dir "contango_chaos" "" in
  let path = Filename.concat dir "d.sock" in
  let chaos = Option.map parse_exn chaos in
  let server =
    Server.create ?chaos ?conn_timeout_s ?max_conns (Unix.ADDR_UNIX path)
  in
  let addr = Server.sockaddr server in
  let thread = Thread.create Server.serve server in
  Fun.protect
    ~finally:(fun () ->
      (* The programmatic path, not a wire Shutdown: under a connection
         cap or an armed chaos spec the wire exchange itself can be
         rejected or corrupted, and the fixture must always stop the
         daemon. *)
      Server.shutdown server;
      Thread.join thread)
    (fun () -> f addr)

let get_stats addr =
  match Client.oneshot addr Protocol.Stats with
  | Ok (Protocol.Completed { body; _ }) -> body
  | Ok _ | Error _ -> Alcotest.fail "stats request failed"

let num_field body name =
  match Json.to_float (Json.member name body) with
  | Some v -> int_of_float v
  | None -> Alcotest.failf "stats lacks %s" name

let sub_field body obj name =
  match
    Json.to_float (Option.bind (Json.member obj body) (Json.member name))
  with
  | Some v -> int_of_float v
  | None -> Alcotest.failf "stats lacks %s.%s" obj name

(* The tentpole's acceptance drill: the daemon drops the connection after
   computing but before writing the response; the client's keyed retry is
   answered from the idempotency cache — the work happened exactly once. *)
let test_drop_pre_idempotent_retry () =
  with_server ~chaos:"seed=1,drop_pre=1@1" (fun addr ->
      (match
         Client.request_with_retry ~retries:3 addr
           (Protocol.Run
              { spec = "ti:20"; timeout_s = Some 120.;
                request_key = Some "drill-1" })
       with
      | Ok (Protocol.Completed _) -> ()
      | Ok _ -> Alcotest.fail "expected a completed retry"
      | Error e -> Alcotest.fail e);
      let body = get_stats addr in
      check_int "the drop was injected" 1 (sub_field body "chaos" "drop_pre");
      check_int "retry served from the idempotency cache (no recompute)" 1
        (num_field body "idempotent_hits"))

let test_job_crash_retried () =
  with_server ~chaos:"seed=2,job_crash=1@1" (fun addr ->
      (match
         Client.request_with_retry ~retries:3 addr
           (Protocol.Run
              { spec = "ti:20"; timeout_s = Some 120.;
                request_key = Some "drill-2" })
       with
      | Ok (Protocol.Completed _) -> ()
      | Ok _ -> Alcotest.fail "expected the retry to complete"
      | Error e -> Alcotest.fail e);
      let body = get_stats addr in
      check_int "the crash was injected" 1
        (sub_field body "chaos" "job_crash");
      (* A crashed attempt is never cached — the retry recomputed. *)
      check_int "no phantom cache entry" 0 (num_field body "idempotent_hits"))

(* Each frame-corruption class: the first exchange dies on the client
   (framing error or early close), the daemon survives and the next
   exchange is clean. *)
let test_frame_corruption_classes () =
  List.iter
    (fun cls ->
      with_server ~chaos:(Printf.sprintf "seed=3,%s=1@1" cls) (fun addr ->
          (match Client.oneshot addr Protocol.Ping with
          | exception Protocol.Framing_error _ -> ()
          | Error _ -> ()
          | Ok _ ->
            Alcotest.failf "%s: first response should be corrupted" cls);
          match Client.oneshot addr Protocol.Ping with
          | Ok (Protocol.Completed _) -> ()
          | Ok _ | Error _ ->
            Alcotest.failf "%s: daemon should answer cleanly after" cls
          | exception Protocol.Framing_error e ->
            Alcotest.failf "%s: daemon still corrupting: %s" cls e))
    [ "frame_garbage"; "frame_truncate"; "frame_oversize" ]

let test_conn_timeout () =
  with_server ~conn_timeout_s:0.1 (fun addr ->
      let fd = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close fd)
        (fun () ->
          let t0 = Core.Monoclock.now () in
          check_bool "daemon closes the silent connection" true
            (Protocol.read_frame fd = None);
          check_bool "well before the test would notice a hang" true
            (Core.Monoclock.now () -. t0 < 5.));
      let body = get_stats addr in
      check_bool "timeout counted" true
        (sub_field body "connections" "timeouts" >= 1))

let test_max_conns_eviction () =
  with_server ~max_conns:1 (fun addr ->
      let c1 = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c1)
        (fun () ->
          (match Client.request c1 Protocol.Ping with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e);
          (* Let c1's handler finish marking itself idle. *)
          Unix.sleepf 0.05;
          let c2 = Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Client.close c2)
            (fun () ->
              (match Client.request c2 Protocol.Ping with
              | Ok _ -> ()
              | Error e -> Alcotest.fail e);
              check_bool "oldest idle connection evicted" true
                (Protocol.read_frame c1 = None);
              match Client.request c2 Protocol.Stats with
              | Ok (Protocol.Completed { body; _ }) ->
                check_int "eviction counted" 1
                  (sub_field body "connections" "evicted")
              | Ok _ | Error _ -> Alcotest.fail "stats request failed")))

let test_max_conns_reject_when_busy () =
  with_server ~max_conns:1 (fun addr ->
      let c1 = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c1)
        (fun () ->
          Protocol.write_frame c1
            (Protocol.encode_request
               (Protocol.Sleep { seconds = 1.0; timeout_s = Some 30. }));
          (* Let the daemon mark the connection busy. *)
          Unix.sleepf 0.1;
          (* No idle victim: the newcomer gets an unsolicited busy frame
             and a close. Read-only on purpose — writing a request here
             races the server's close (an EPIPE a real retrying client
             absorbs, but a test must not depend on). *)
          let c2 = Client.connect addr in
          Fun.protect
            ~finally:(fun () -> Client.close c2)
            (fun () ->
              match Protocol.read_frame c2 with
              | Some j -> (
                match Protocol.decode_response j with
                | Ok (Protocol.Busy { retry_after_s }) ->
                  check_bool "retry hint positive" true (retry_after_s > 0.)
                | Ok _ | Error _ -> Alcotest.fail "expected a busy rejection")
              | None -> Alcotest.fail "expected a busy frame before close");
          (* The busy connection itself was never a victim. *)
          match Protocol.read_frame c1 with
          | Some j -> (
            match Protocol.decode_response j with
            | Ok (Protocol.Completed _) -> ()
            | _ -> Alcotest.fail "sleep should complete")
          | None -> Alcotest.fail "busy connection must survive the cap"))

(* ---------- request-key plumbing ---------- *)

let test_request_key_plumbing () =
  let run =
    Protocol.Run { spec = "ti:9"; timeout_s = None; request_key = None }
  in
  check_bool "keyless by default" true (Protocol.request_key run = None);
  let keyed = Protocol.with_request_key run "k9" in
  check_bool "key attached" true (Protocol.request_key keyed = Some "k9");
  (match Protocol.decode_request (Protocol.encode_request keyed) with
  | Ok r -> check_bool "key survives the wire" true (r = keyed)
  | Error e -> Alcotest.fail e);
  check_bool "keyless ops are untouched" true
    (Protocol.with_request_key Protocol.Ping "k" = Protocol.Ping)

let () =
  Alcotest.run "chaos"
    [
      ("spec",
       [ Alcotest.test_case "parse table" `Quick test_parse_table;
         Alcotest.test_case "seeded determinism" `Quick test_determinism;
         Alcotest.test_case "injection budgets" `Quick test_budget ]);
      ("io",
       [ Alcotest.test_case "frame loops under storms" `Quick
           test_io_fault_loops;
         Alcotest.test_case "read deadline" `Quick test_read_deadline ]);
      ("persist",
       [ Alcotest.test_case "disk fault cycle" `Quick test_persist_faults ]);
      ("daemon",
       [ Alcotest.test_case "drop_pre + idempotent retry" `Slow
           test_drop_pre_idempotent_retry;
         Alcotest.test_case "job crash retried" `Slow test_job_crash_retried;
         Alcotest.test_case "frame corruption classes" `Quick
           test_frame_corruption_classes;
         Alcotest.test_case "connection timeout" `Quick test_conn_timeout;
         Alcotest.test_case "oldest-idle eviction" `Quick
           test_max_conns_eviction;
         Alcotest.test_case "reject when all busy" `Quick
           test_max_conns_reject_when_busy ]);
      ("protocol",
       [ Alcotest.test_case "request-key plumbing" `Quick
           test_request_key_plumbing ]);
    ]
