open Geometry
module Tree = Ctree.Tree

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_f = Alcotest.(check (float 1e-6))

let tech = Tech.default45 ()
let buf8 = Tech.Composite.make Tech.Device.small_inverter 8

let sink ?(cap = 10.) ?(parity = 0) label = Tree.Sink { Tree.cap; parity; label }

(* source --1mm-- internal --1mm-- sinkA
                         \--2mm(L)-- sinkB *)
let small_tree () =
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let mid =
    Tree.add_node t ~kind:Tree.Internal ~pos:(Point.make 1_000_000 0)
      ~parent:(Tree.root t) ()
  in
  let a =
    Tree.add_node t ~kind:(sink "a") ~pos:(Point.make 2_000_000 0) ~parent:mid ()
  in
  let b =
    Tree.add_node t ~kind:(sink "b") ~pos:(Point.make 2_000_000 1_000_000)
      ~parent:mid ()
  in
  (t, mid, a, b)

let test_build () =
  let t, mid, a, b = small_tree () in
  check_int "size" 4 (Tree.size t);
  check_int "a geom" 1_000_000 (Tree.node t a).Tree.geom_len;
  check_int "b geom (L)" 2_000_000 (Tree.node t b).Tree.geom_len;
  check_int "mid children" 2 (List.length (Tree.node t mid).Tree.children);
  Alcotest.(check (list string)) "validate" [] (Ctree.Validate.check t);
  check_int "sinks" 2 (Array.length (Tree.sinks t));
  check_int "buffers" 0 (Array.length (Tree.buffer_ids t))

let test_orders () =
  let t, mid, a, b = small_tree () in
  let topo = Array.to_list (Tree.topo_order t) in
  check_int "topo length" 4 (List.length topo);
  check_bool "root first" true (List.hd topo = Tree.root t);
  (* parents before children *)
  let pos x = Option.get (List.find_index (fun i -> i = x) topo) in
  check_bool "mid before a" true (pos mid < pos a);
  check_bool "mid before b" true (pos mid < pos b);
  let post = Array.to_list (Tree.post_order t) in
  check_bool "root last in post" true
    (List.nth post (List.length post - 1) = Tree.root t)

let test_wire_len_snake () =
  let t, _, a, _ = small_tree () in
  let nd = Tree.node t a in
  nd.Tree.snake <- 500_000;
  check_int "electrical" 1_500_000 (Tree.wire_len nd);
  check_f "cap includes snake"
    (Tech.Wire.cap (Tree.wire_of t nd) 1_500_000)
    (Tree.wire_cap t nd)

let test_split_wire () =
  let t, _, a, _ = small_tree () in
  (Tree.node t a).Tree.snake <- 400_000;
  let m = Tree.split_wire t a ~at:250_000 in
  Alcotest.(check (list string)) "validate after split" [] (Ctree.Validate.check t);
  let mn = Tree.node t m and an = Tree.node t a in
  check_int "upper geom" 250_000 mn.Tree.geom_len;
  check_int "lower geom" 750_000 an.Tree.geom_len;
  (* proportional snake split preserves the total *)
  check_int "snake preserved" 400_000 (mn.Tree.snake + an.Tree.snake);
  check_bool "a under m" true (an.Tree.parent = m)

let test_split_l_wire () =
  let t, _, _, b = small_tree () in
  (* split in the middle of the L: 2mm wire, split at 1.5mm *)
  let m = Tree.split_wire t b ~at:1_500_000 in
  Alcotest.(check (list string)) "validate" [] (Ctree.Validate.check t);
  check_int "upper+lower = total" 2_000_000
    ((Tree.node t m).Tree.geom_len + (Tree.node t b).Tree.geom_len)

let test_point_along_wire () =
  let t, _, a, b = small_tree () in
  let p = Tree.point_along_wire t a 250_000 in
  check_int "straight wire x" 1_250_000 p.Point.x;
  (* L wire: first leg horizontal (XY bend) *)
  let q = Tree.point_along_wire t b 500_000 in
  check_int "L first leg x" 1_500_000 q.Point.x;
  check_int "L first leg y" 0 q.Point.y;
  let r = Tree.point_along_wire t b 1_500_000 in
  check_int "L second leg x" 2_000_000 r.Point.x;
  check_int "L second leg y" 500_000 r.Point.y

let test_insert_remove_buffer () =
  let t, _, a, _ = small_tree () in
  let bid = Tree.insert_buffer_on_wire t a ~at:500_000 ~buf:buf8 in
  check_int "one buffer" 1 (Array.length (Tree.buffer_ids t));
  let inv = Tree.inversions t in
  check_int "sink a inverted" 1 inv.(a);
  Tree.remove_buffer t bid;
  check_int "no buffers" 0 (Array.length (Tree.buffer_ids t));
  Alcotest.check_raises "remove non-buffer"
    (Invalid_argument "Tree.remove_buffer: not a buffer") (fun () ->
      Tree.remove_buffer t a)

let test_set_route () =
  let t, _, a, _ = small_tree () in
  let detour =
    [ Point.make 1_000_000 0; Point.make 1_000_000 300_000;
      Point.make 2_000_000 300_000; Point.make 2_000_000 0 ]
  in
  Tree.set_route t a detour;
  check_int "detour length" 1_600_000 (Tree.node t a).Tree.geom_len;
  Alcotest.(check (list string)) "validate" [] (Ctree.Validate.check t);
  (* Bad endpoints rejected. *)
  Alcotest.check_raises "bad route"
    (Invalid_argument "Tree.set_route: endpoints do not match parent/node")
    (fun () -> Tree.set_route t a [ Point.make 0 0; Point.make 5 5; (Tree.node t a).Tree.pos ])

let test_detach_reparent_compact () =
  let t, mid, a, b = small_tree () in
  Tree.detach t b;
  check_int "topo skips detached" 3 (Array.length (Tree.topo_order t));
  Tree.reparent t b ~new_parent:(Tree.root t);
  check_int "back to 4" 4 (Array.length (Tree.topo_order t));
  check_int "geom recomputed" (Point.dist (Point.make 0 0) (Point.make 2_000_000 1_000_000))
    (Tree.node t b).Tree.geom_len;
  (* Drop a whole subtree and compact. *)
  Tree.detach t mid;
  let t2, remap = Tree.compact t in
  check_int "compact size" 2 (Tree.size t2);
  check_bool "a dropped" true (remap.(a) = -1);
  check_bool "b kept" true (remap.(b) >= 0);
  Alcotest.(check (list string)) "validate compact" [] (Ctree.Validate.check t2)

let test_copy_assign () =
  let t, _, a, _ = small_tree () in
  let snapshot = Tree.copy t in
  (Tree.node t a).Tree.snake <- 999;
  ignore (Tree.insert_buffer_on_wire t a ~at:0 ~buf:buf8);
  check_bool "diverged" true (Tree.size t <> Tree.size snapshot);
  Tree.assign ~dst:t ~src:snapshot;
  check_int "restored size" 4 (Tree.size t);
  check_int "restored snake" 0 (Tree.node t a).Tree.snake

let test_subtree_sinks () =
  let t, mid, a, b = small_tree () in
  Alcotest.(check (list int)) "subtree of mid" [ a; b ] (Tree.subtree_sinks t mid);
  Alcotest.(check (list int)) "subtree of sink" [ a ] (Tree.subtree_sinks t a)

let test_add_node_errors () =
  let t, _, _, _ = small_tree () in
  Alcotest.check_raises "bad parent"
    (Invalid_argument "Tree.add_node: invalid parent 99") (fun () ->
      ignore (Tree.add_node t ~kind:Tree.Internal ~pos:Point.origin ~parent:99 ()));
  Alcotest.check_raises "short geom"
    (Invalid_argument "Tree.add_node: geom_len shorter than Manhattan distance")
    (fun () ->
      ignore
        (Tree.add_node t ~kind:Tree.Internal ~pos:(Point.make 5_000_000 0)
           ~parent:0 ~geom_len:10 ()))

let test_inversions_nested () =
  let t, mid, a, b = small_tree () in
  ignore mid;
  ignore (Tree.insert_buffer_on_wire t a ~at:200_000 ~buf:buf8);
  ignore (Tree.insert_buffer_on_wire t a ~at:100_000 ~buf:buf8);
  ignore (Tree.insert_buffer_on_wire t b ~at:500_000 ~buf:buf8);
  let inv = Tree.inversions t in
  check_int "a double inverted" 2 inv.(a);
  check_int "b single inverted" 1 inv.(b)

let test_split_routed_wire () =
  let t, _, a, _ = small_tree () in
  let detour =
    [ Point.make 1_000_000 0; Point.make 1_000_000 400_000;
      Point.make 2_000_000 400_000; Point.make 2_000_000 0 ]
  in
  Tree.set_route t a detour;
  let total = (Tree.node t a).Tree.geom_len in
  let m = Tree.split_wire t a ~at:700_000 in
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check t);
  check_int "length preserved" total
    ((Tree.node t m).Tree.geom_len + (Tree.node t a).Tree.geom_len);
  (* the split point sits on the original polyline *)
  let sp = (Tree.node t m).Tree.pos in
  check_bool "split on detour" true
    (sp.Point.x = 1_000_000 || sp.Point.y = 400_000 || sp.Point.x = 2_000_000)

let test_point_along_routed_wire () =
  let t, _, a, _ = small_tree () in
  Tree.set_route t a
    [ Point.make 1_000_000 0; Point.make 1_000_000 300_000;
      Point.make 2_000_000 300_000; Point.make 2_000_000 0 ];
  let p = Tree.point_along_wire t a 150_000 in
  check_int "on first leg x" 1_000_000 p.Point.x;
  check_int "on first leg y" 150_000 p.Point.y;
  let q = Tree.point_along_wire t a 800_000 in
  check_int "on middle leg y" 300_000 q.Point.y

let test_assign_independence () =
  let t, _, a, _ = small_tree () in
  let snapshot = Tree.copy t in
  Tree.assign ~dst:t ~src:snapshot;
  (* mutating the snapshot afterwards must not leak into t *)
  (Tree.node snapshot a).Tree.snake <- 777;
  check_int "independent" 0 (Tree.node t a).Tree.snake

(* ---------- Stats ---------- *)

let test_stats () =
  let t, _, a, _ = small_tree () in
  ignore (Tree.insert_buffer_on_wire t a ~at:500_000 ~buf:buf8);
  let s = Ctree.Stats.compute t in
  check_int "wirelength" 4_000_000 s.Ctree.Stats.wirelength;
  check_int "sink count" 2 s.Ctree.Stats.sink_count;
  check_int "buffer count" 1 s.Ctree.Stats.buffer_count;
  check_int "buffer devices" 8 s.Ctree.Stats.buffer_devices;
  check_f "sink cap" 20. s.Ctree.Stats.sink_cap;
  check_f "buffer cin" (Tech.Composite.c_in buf8) s.Ctree.Stats.buffer_in_cap;
  check_f "total"
    (s.Ctree.Stats.wire_cap +. s.Ctree.Stats.sink_cap +. s.Ctree.Stats.buffer_in_cap)
    s.Ctree.Stats.total_cap

(* ---------- Validate catches corruption ---------- *)

let test_validate_catches () =
  let t, _, a, _ = small_tree () in
  (Tree.node t a).Tree.snake <- -5;
  check_bool "negative snake caught" true (Ctree.Validate.check t <> []);
  let t, _, a, _ = small_tree () in
  (Tree.node t a).Tree.geom_len <- 1;
  check_bool "short geom caught" true (Ctree.Validate.check t <> [])

(* ---------- Svg ---------- *)

let test_svg () =
  let t, _, a, _ = small_tree () in
  ignore (Tree.insert_buffer_on_wire t a ~at:500_000 ~buf:buf8);
  let svg = Ctree.Svg.render t in
  check_bool "is svg" true (String.length svg > 100);
  check_bool "open tag" true (String.sub svg 0 4 = "<svg");
  (* crosses for sinks, rect for buffer, circle for source *)
  let count_sub sub =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length svg then acc
      else if String.sub svg i n = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check_bool "has buffer rect" true (count_sub "fill=\"#3355cc\"" >= 1);
  check_bool "has source circle" true (count_sub "<circle" = 1);
  check_bool "has sink crosses" true (count_sub "<path" >= 2)

let test_gradient () =
  Alcotest.(check string) "red at no slack" "#dc0030"
    (Ctree.Svg.gradient ~lo:0. ~hi:10. 0.);
  Alcotest.(check string) "green at full slack" "#00aa30"
    (Ctree.Svg.gradient ~lo:0. ~hi:10. 10.)

let tree_qcheck =
  QCheck.Test.make
    ~name:"tree: random splits keep validity and total wirelength" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 15) (int_range 1 99))
    (fun cuts ->
      let t, _, a, _ = small_tree () in
      let before = (Ctree.Stats.compute t).Ctree.Stats.wirelength in
      let target = ref a in
      List.iter
        (fun pct ->
          let nd = Tree.node t !target in
          let at = nd.Tree.geom_len * pct / 100 in
          target := Tree.split_wire t !target ~at)
        cuts;
      Ctree.Validate.check t = []
      && (Ctree.Stats.compute t).Ctree.Stats.wirelength = before)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ctree"
    [
      ("tree",
       [ Alcotest.test_case "build" `Quick test_build;
         Alcotest.test_case "orders" `Quick test_orders;
         Alcotest.test_case "wire len / snake" `Quick test_wire_len_snake;
         Alcotest.test_case "split wire" `Quick test_split_wire;
         Alcotest.test_case "split L wire" `Quick test_split_l_wire;
         Alcotest.test_case "point along wire" `Quick test_point_along_wire;
         Alcotest.test_case "insert/remove buffer" `Quick test_insert_remove_buffer;
         Alcotest.test_case "set route" `Quick test_set_route;
         Alcotest.test_case "detach/reparent/compact" `Quick test_detach_reparent_compact;
         Alcotest.test_case "copy/assign" `Quick test_copy_assign;
         Alcotest.test_case "subtree sinks" `Quick test_subtree_sinks;
         Alcotest.test_case "add_node errors" `Quick test_add_node_errors;
         Alcotest.test_case "nested inversions" `Quick test_inversions_nested;
         Alcotest.test_case "split routed wire" `Quick test_split_routed_wire;
         Alcotest.test_case "point along routed wire" `Quick test_point_along_routed_wire;
         Alcotest.test_case "assign independence" `Quick test_assign_independence;
         q tree_qcheck ]);
      ("stats", [ Alcotest.test_case "aggregate" `Quick test_stats ]);
      ("validate", [ Alcotest.test_case "catches corruption" `Quick test_validate_catches ]);
      ("svg",
       [ Alcotest.test_case "render" `Quick test_svg;
         Alcotest.test_case "gradient" `Quick test_gradient ]);
    ]
