(* Adaptive multi-rate transient kernel vs the fixed-fine-step reference:
   across random stages, driver resistances, and corner-style scalings,
   every reported 50 % latency and 10–90 % slew must agree within the
   documented 0.05 ps tolerance (ISSUE 2 / doc/EXTENDING.md). Plus
   regression tests for the workspace, factorisation cache, epsilon step
   matching, and the truncation signal. *)

module Tr = Analysis.Transient
module Rcnet = Analysis.Rcnet

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tolerance = 0.05 (* ps *)

(* ---------- random stage generator ---------- *)

(* A random RC tree in the kernel's native representation: random
   topology (each node hangs off an earlier one, so indices stay
   topological), random segment electricals spanning on-chip wire and
   via-ish values, and a random subset of nodes watched as taps. *)
let random_rc rng =
  let n = 2 + Random.State.int rng 220 in
  let parent = Array.make n (-1) in
  let res = Array.make n 0. in
  let cap = Array.make n 0. in
  for i = 1 to n - 1 do
    (* Bias towards recent nodes: long chains with occasional branching,
       like segmented routed wires. *)
    parent.(i) <-
      (if Random.State.bool rng then i - 1
       else Random.State.int rng i);
    res.(i) <- 10. +. Random.State.float rng 900.;
    cap.(i) <- 0.5 +. Random.State.float rng 20.
  done;
  cap.(0) <- 0.5 +. Random.State.float rng 5.;
  let ntaps = 1 + Random.State.int rng 6 in
  let taps =
    Array.init ntaps (fun k ->
        (1 + Random.State.int rng (n - 1), Rcnet.Tap_sink k))
  in
  { Rcnet.parent; res; cap; taps; size = n }

let random_drive rng =
  let r_drv = 20. +. Random.State.float rng 2000. in
  (* Corner-style resistance scaling, as Evaluator applies per corner. *)
  let r_scale = 0.8 +. Random.State.float rng 0.5 in
  let s_drv = 4. +. Random.State.float rng 60. in
  (r_drv *. r_scale, s_drv)

let check_close ~label ~step ref_results results =
  Array.iteri
    (fun k (d_ref, s_ref) ->
      let d, s = results.(k) in
      if Float.is_finite d_ref || Float.is_finite d then begin
        let dd = Float.abs (d -. d_ref) and ds = Float.abs (s -. s_ref) in
        if not (dd <= tolerance && ds <= tolerance) then
          Alcotest.failf
            "%s step=%.2g tap=%d: delay %.6f vs %.6f (Δ=%.4f), slew %.6f \
             vs %.6f (Δ=%.4f)"
            label step k d d_ref dd s s_ref ds
      end)
    ref_results

(* The accuracy property at one fine step: Fixed at [step] is the
   reference; every adaptive mode must track it within [tolerance]. *)
let accuracy_at ~samples ~step ~seed () =
  let rng = Random.State.make [| seed |] in
  let ws = Tr.workspace () in
  let fcache = Tr.Fcache.create () in
  for i = 1 to samples do
    let rc = random_rc rng in
    let r_drv, s_drv = random_drive rng in
    let reference = Tr.solve ~step ~mode:Tr.Fixed ~fcache ~ws rc ~r_drv ~s_drv in
    List.iter
      (fun (name, mode) ->
        let adaptive = Tr.solve ~step ~mode ~fcache ~ws rc ~r_drv ~s_drv in
        check_close
          ~label:(Printf.sprintf "sample %d %s" i name)
          ~step reference adaptive)
      [
        ("adaptive×8", Tr.Adaptive { mult = 8 });
        ("adaptive×16", Tr.Adaptive { mult = 16 });
        ("adaptive×32", Tr.Adaptive { mult = 32 });
        ("auto", Tr.Auto { max_mult = 32 });
      ]
  done

let test_accuracy_default_step () = accuracy_at ~samples:120 ~step:0.5 ~seed:7 ()
let test_accuracy_fine_reference () = accuracy_at ~samples:40 ~step:0.1 ~seed:11 ()

(* ---------- adaptive actually saves work ---------- *)

let long_chain_rc n =
  let parent = Array.init n (fun i -> i - 1) in
  let res = Array.make n 100. in
  let cap = Array.make n 4. in
  res.(0) <- 0.;
  { Rcnet.parent; res; cap;
    taps = [| (n - 1, Rcnet.Tap_sink 0) |]; size = n }

let test_auto_saves_solves () =
  let rc = long_chain_rc 400 in
  let run mode =
    Tr.simulate ~mode rc ~r_drv:150. ~s_drv:20.
      ~watch:(Array.map fst rc.Rcnet.taps)
      ~on_cross:(fun _ _ _ -> ())
  in
  let fixed = run Tr.Fixed in
  let auto = run (Tr.Auto { max_mult = 32 }) in
  check_bool "fixed does fine_equiv solves" true
    (fixed.Tr.solves = fixed.Tr.fine_equiv);
  check_bool "auto covers the same span" true
    (auto.Tr.fine_equiv >= (fixed.Tr.fine_equiv * 9 / 10));
  check_bool
    (Printf.sprintf "auto saves >2x (%d vs %d solves)" auto.Tr.solves
       fixed.Tr.solves)
    true
    (auto.Tr.solves * 2 < fixed.Tr.solves)

(* ---------- cross-call counters ---------- *)

let test_counters () =
  let rc = long_chain_rc 100 in
  let c0 = Tr.counters () in
  ignore (Tr.solve ~mode:(Tr.Auto { max_mult = 32 }) rc ~r_drv:150. ~s_drv:20.);
  let c1 = Tr.counters () in
  check_bool "solves advance" true
    (c1.Tr.total_solves > c0.Tr.total_solves);
  check_bool "saved advances on an adaptive march" true
    (c1.Tr.total_saved > c0.Tr.total_saved)

(* ---------- truncation signal ---------- *)

let test_truncation_signalled () =
  let rc = long_chain_rc 200 in
  let watch = Array.map fst rc.Rcnet.taps in
  let nothing _ _ _ = () in
  let short =
    Tr.simulate ~max_steps:40 rc ~r_drv:150. ~s_drv:20. ~watch
      ~on_cross:nothing
  in
  check_bool "budget too small => truncated" true short.Tr.truncated;
  check_bool "budget respected" true (short.Tr.fine_equiv <= 40);
  let full =
    Tr.simulate rc ~r_drv:150. ~s_drv:20. ~watch ~on_cross:nothing
  in
  check_bool "default budget completes" false full.Tr.truncated;
  let c0 = Tr.counters () in
  ignore
    (Tr.simulate ~max_steps:10 rc ~r_drv:150. ~s_drv:20. ~watch
       ~on_cross:nothing);
  check_int "truncation counted" (c0.Tr.total_truncations + 1)
    (Tr.counters ()).Tr.total_truncations

(* ---------- workspace reuse ---------- *)

let test_workspace_reuse_identical () =
  let rng = Random.State.make [| 23 |] in
  let ws = Tr.workspace () in
  for _ = 1 to 30 do
    let rc = random_rc rng in
    let r_drv, s_drv = random_drive rng in
    let fresh = Tr.solve rc ~r_drv ~s_drv in
    let reused = Tr.solve ~ws rc ~r_drv ~s_drv in
    Array.iteri
      (fun k (d, s) ->
        let d', s' = reused.(k) in
        check_bool "workspace reuse is bit-identical" true
          (d = d' && s = s'))
      fresh
  done

(* ---------- factorisation cache ---------- *)

let test_fcache_identical_and_bounded () =
  let rng = Random.State.make [| 31 |] in
  let fcache = Tr.Fcache.create ~cap:64 () in
  for _ = 1 to 40 do
    let rc = random_rc rng in
    let r_drv, s_drv = random_drive rng in
    let plain = Tr.solve rc ~r_drv ~s_drv in
    let cached = Tr.solve ~fcache rc ~r_drv ~s_drv in
    let cached2 = Tr.solve ~fcache rc ~r_drv ~s_drv in
    Array.iteri
      (fun k (d, s) ->
        let d1, s1 = cached.(k) and d2, s2 = cached2.(k) in
        check_bool "cached factor changes nothing" true
          (d = d1 && s = s1 && d = d2 && s = s2))
      plain;
    check_bool "cache stays within cap" true (Tr.Fcache.length fcache <= 64)
  done;
  check_bool "cache holds entries" true (Tr.Fcache.length fcache > 0);
  Tr.Fcache.clear fcache;
  check_int "clear empties" 0 (Tr.Fcache.length fcache)

(* ---------- epsilon step matching (satellite bugfix) ---------- *)

let test_step_epsilon_match () =
  let rc = long_chain_rc 20 in
  (* A step recomposed through float arithmetic differs from the literal
     in the last bits; the kernel must accept the pairing anyway. *)
  let exact = 0.5 in
  let recomposed = exact /. 3. *. 3. in
  check_bool "steps differ in the last bits or match" true
    (Float.abs (recomposed -. exact) < 1e-12);
  let f = Tr.factor ~step:exact rc in
  let r =
    Tr.solve ~step:recomposed ~factored:f ~mode:Tr.Fixed rc ~r_drv:150.
      ~s_drv:20.
  in
  check_bool "recomposed step accepted" true (Array.length r = 1);
  (match
     Tr.solve ~step:1.0 ~factored:f ~mode:Tr.Fixed rc ~r_drv:150. ~s_drv:20.
   with
  | _ -> Alcotest.fail "genuine mismatch must raise"
  | exception Invalid_argument _ -> ());
  (* Probe takes ?factored now too (satellite): same acceptance rule. *)
  let v =
    Tr.probe ~step:recomposed ~factored:f rc ~r_drv:150. ~s_drv:20. ~node:19
      ~times:[| 100.; 400. |]
  in
  check_int "probe with shared factorisation" 2 (Array.length v)

(* ---------- session probe uses the cache (satellite) ---------- *)

let test_session_probe () =
  let module Ev = Analysis.Evaluator in
  let tech = Tech.default45 () in
  let tree =
    Ctree.Tree.create ~tech ~source_pos:(Geometry.Point.make 0 0)
  in
  ignore
    (Ctree.Tree.add_node tree
       ~kind:(Ctree.Tree.Sink { Ctree.Tree.cap = 15.; parity = 0; label = "s" })
       ~pos:(Geometry.Point.make 200_000 0) ~parent:(Ctree.Tree.root tree) ());
  let session = Ev.Incremental.create tree in
  let rc = long_chain_rc 50 in
  let direct =
    Tr.probe rc ~r_drv:150. ~s_drv:20. ~node:49 ~times:[| 50.; 200.; 800. |]
  in
  let via_session =
    Ev.Incremental.probe session rc ~r_drv:150. ~s_drv:20. ~node:49
      ~times:[| 50.; 200.; 800. |]
  in
  Array.iteri
    (fun i v ->
      check_bool "session probe matches direct" true (v = via_session.(i)))
    direct;
  check_bool "probe populated the session factor cache" true
    ((Ev.Incremental.stats session).Ev.factored_entries > 0)

let () =
  Alcotest.run "transient-adaptive"
    [
      ( "accuracy",
        [
          Alcotest.test_case "vs fixed 0.5ps reference" `Quick
            test_accuracy_default_step;
          Alcotest.test_case "vs fixed 0.1ps reference" `Quick
            test_accuracy_fine_reference;
        ] );
      ( "budget",
        [
          Alcotest.test_case "auto saves solves" `Quick test_auto_saves_solves;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "truncation signal" `Quick
            test_truncation_signalled;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "workspace reuse" `Quick
            test_workspace_reuse_identical;
          Alcotest.test_case "fcache" `Quick test_fcache_identical_and_bounded;
          Alcotest.test_case "step epsilon" `Quick test_step_epsilon_match;
          Alcotest.test_case "session probe" `Quick test_session_probe;
        ] );
    ]
