let check_f = Alcotest.(check (float 1e-9))
let check_fa tol = Alcotest.(check (float tol))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Units ---------- *)

let test_units () =
  check_f "ohm*fF = 1e-3 ps" 1e-3 Tech.Units.rc_to_ps;
  check_f "ps_of_rc" 0.1 (Tech.Units.ps_of_rc 100. 1.);
  check_int "nm_of_um" 1500 (Tech.Units.nm_of_um 1.5);
  check_f "um_of_nm" 1.5 (Tech.Units.um_of_nm 1500);
  check_fa 1e-6 "ln9" (log 9.) Tech.Units.ln9

(* ---------- Wire ---------- *)

let test_wire () =
  let w = Tech.Wire.make ~name:"t" ~res_per_nm:1e-4 ~cap_per_nm:2e-4 in
  check_f "res" 100. (Tech.Wire.res w 1_000_000);
  check_f "cap" 200. (Tech.Wire.cap w 1_000_000);
  (* Elmore of 1mm driving 100fF: 100*(100+100)*1e-3 = 20ps *)
  check_f "elmore" 20. (Tech.Wire.elmore_ps w 1_000_000 ~load:100.);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Wire.make: nonpositive unit parasitics") (fun () ->
      ignore (Tech.Wire.make ~name:"bad" ~res_per_nm:0. ~cap_per_nm:1.))

(* ---------- Device: Table I values ---------- *)

let test_table1_devices () =
  let l = Tech.Device.large_inverter and s = Tech.Device.small_inverter in
  check_f "large cin" 35. l.Tech.Device.c_in;
  check_f "large cout" 80. l.Tech.Device.c_out;
  check_fa 1e-6 "large rout" 61.2 (Tech.Device.r_out l);
  check_f "small cin" 4.2 s.Tech.Device.c_in;
  check_f "small cout" 6.1 s.Tech.Device.c_out;
  check_fa 1e-6 "small rout" 440. (Tech.Device.r_out s);
  check_bool "inverting" true l.Tech.Device.inverting;
  (* rise/fall asymmetry present *)
  check_bool "r_up > r_down" true (l.Tech.Device.r_up > l.Tech.Device.r_down)

(* ---------- Composite: the paper's 8x-small observation ---------- *)

let test_composite_scaling () =
  let c8 = Tech.Composite.make Tech.Device.small_inverter 8 in
  check_fa 1e-9 "8x cin" 33.6 (Tech.Composite.c_in c8);
  check_fa 1e-9 "8x cout" 48.8 (Tech.Composite.c_out c8);
  check_fa 1e-9 "8x rout" 55. (Tech.Composite.r_out c8);
  Alcotest.(check string) "name" "8xINV_S" (Tech.Composite.name c8);
  Alcotest.check_raises "count<1" (Invalid_argument "Composite.make: count < 1")
    (fun () -> ignore (Tech.Composite.make Tech.Device.small_inverter 0))

let test_composite_dominance () =
  (* Table I's point: 8 small inverters dominate 1 large on every axis. *)
  let c8 = Tech.Composite.make Tech.Device.small_inverter 8 in
  let l1 = Tech.Composite.make Tech.Device.large_inverter 1 in
  check_bool "cin" true (Tech.Composite.c_in c8 < Tech.Composite.c_in l1);
  check_bool "cout" true (Tech.Composite.c_out c8 < Tech.Composite.c_out l1);
  check_bool "rout" true (Tech.Composite.r_out c8 < Tech.Composite.r_out l1);
  let all =
    Tech.Composite.enumerate
      [ Tech.Device.small_inverter; Tech.Device.large_inverter ]
      ~max_count:16
  in
  let front = Tech.Composite.non_dominated all in
  (* 1x and 2x large are dominated by 8x/16x small; 8x small survives.
     (Large composites at high counts remain non-dominated: no available
     small count matches their drive.) *)
  check_bool "weak larges dominated" true
    (List.for_all
       (fun c ->
         c.Tech.Composite.base.Tech.Device.name <> "INV_L"
         || c.Tech.Composite.count > 2)
       front);
  check_bool "8x small on frontier" true
    (List.exists
       (fun c ->
         c.Tech.Composite.base.Tech.Device.name = "INV_S"
         && c.Tech.Composite.count = 8)
       front);
  (* Frontier is sorted by cin and strictly improving in rout. *)
  let rec sorted = function
    | a :: b :: rest ->
      Tech.Composite.c_in a < Tech.Composite.c_in b
      && Tech.Composite.r_out a > Tech.Composite.r_out b
      && sorted (b :: rest)
    | _ -> true
  in
  check_bool "frontier sorted/pareto" true (sorted front)

let test_composite_scale_rounding () =
  let c8 = Tech.Composite.make Tech.Device.small_inverter 8 in
  check_int "scale 1.25 of 8 = 10" 10
    (Tech.Composite.scale c8 1.25).Tech.Composite.count;
  check_int "scale down floors at 1" 1
    (Tech.Composite.scale (Tech.Composite.make Tech.Device.small_inverter 2) 0.1)
      .Tech.Composite.count

let composite_qcheck =
  QCheck.Test.make ~name:"composite: parallel law (cap*n, r/n)" ~count:200
    QCheck.(int_range 1 64)
    (fun n ->
      let c = Tech.Composite.make Tech.Device.small_inverter n in
      let fn = float_of_int n in
      Float.abs (Tech.Composite.c_in c -. (4.2 *. fn)) < 1e-9
      && Float.abs (Tech.Composite.r_out c -. (440. /. fn)) < 1e-9)

(* ---------- Corner ---------- *)

let test_corners () =
  check_f "fast is nominal" 1.0 Tech.Corner.fast.Tech.Corner.r_scale;
  check_bool "slow slower" true (Tech.Corner.slow.Tech.Corner.r_scale > 1.0);
  check_bool "slow within sane band" true
    (Tech.Corner.slow.Tech.Corner.r_scale < 1.2);
  check_bool "d_scale tracks" true
    (Tech.Corner.slow.Tech.Corner.d_scale > 1.0
    && Tech.Corner.slow.Tech.Corner.d_scale
       < Tech.Corner.slow.Tech.Corner.r_scale +. 0.01);
  Alcotest.check_raises "vdd <= vth" (Invalid_argument "Corner: vdd <= vth")
    (fun () -> ignore (Tech.Corner.make ~name:"x" ~vdd:0.1 ()))

let test_corner_monotone () =
  (* Lower supply => higher resistance scale. *)
  let r v = (Tech.Corner.make ~name:"v" ~vdd:v ()).Tech.Corner.r_scale in
  check_bool "monotone" true (r 0.9 > r 1.0 && r 1.0 > r 1.1 && r 1.1 > r 1.2)

(* ---------- Tech bundle ---------- *)

let test_tech_bundle () =
  let t = Tech.default45 () in
  check_int "two wire classes" 2 (Array.length t.Tech.wires);
  check_bool "wide has lower res" true
    ((Tech.wire t (Tech.widest_wire t)).Tech.Wire.res_per_nm
    < (Tech.wire t (Tech.narrowest_wire t)).Tech.Wire.res_per_nm);
  check_bool "wide has higher cap" true
    ((Tech.wire t (Tech.widest_wire t)).Tech.Wire.cap_per_nm
    > (Tech.wire t (Tech.narrowest_wire t)).Tech.Wire.cap_per_nm);
  check_f "slew limit" 100. t.Tech.slew_limit;
  check_int "two corners" 2 (List.length t.Tech.corners);
  check_bool "unlimited cap default" true (t.Tech.cap_limit = infinity);
  let t2 = Tech.default45 ~cap_limit:5000. () in
  check_f "cap limit set" 5000. t2.Tech.cap_limit

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tech"
    [
      ("units", [ Alcotest.test_case "conversions" `Quick test_units ]);
      ("wire", [ Alcotest.test_case "parasitics" `Quick test_wire ]);
      ("device", [ Alcotest.test_case "table1" `Quick test_table1_devices ]);
      ("composite",
       [ Alcotest.test_case "scaling" `Quick test_composite_scaling;
         Alcotest.test_case "dominance" `Quick test_composite_dominance;
         Alcotest.test_case "scale rounding" `Quick test_composite_scale_rounding;
         q composite_qcheck ]);
      ("corner",
       [ Alcotest.test_case "defaults" `Quick test_corners;
         Alcotest.test_case "monotone" `Quick test_corner_monotone ]);
      ("bundle", [ Alcotest.test_case "default45" `Quick test_tech_bundle ]);
    ]
