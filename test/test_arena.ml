(* Flat-engine correctness: the arena snapshot, the flat stage pool and
   the streaming kernel must be interchangeable with the boxed
   extraction/evaluation pipeline — topology and electricals exactly,
   per-stage fingerprints bit-for-bit, timing results to ≤ 1e-9 ps —
   through arbitrary edit sequences, in-place stage updates, pool
   relocation/compaction, and journal-revision staleness. *)

open Geometry
module Tree = Ctree.Tree
module Arena = Ctree.Arena
module Rcnet = Analysis.Rcnet
module Rcflat = Analysis.Rcflat
module Transient = Analysis.Transient
module Ev = Analysis.Evaluator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tech = Tech.default45 ()
let buf8 = Tech.Composite.make Tech.Device.small_inverter 8

(* Same topology as test_incremental's rich tree: source → buffer →
   branch → two buffered subtrees, four sinks. *)
let rich_tree () =
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let a =
    Tree.add_node t ~kind:(Tree.Buffer buf8) ~pos:(Point.make 300_000 0)
      ~parent:(Tree.root t) ()
  in
  let mid =
    Tree.add_node t ~kind:Tree.Internal ~pos:(Point.make 600_000 0) ~parent:a ()
  in
  let b =
    Tree.add_node t ~kind:(Tree.Buffer buf8) ~pos:(Point.make 900_000 0)
      ~parent:mid ()
  in
  let c =
    Tree.add_node t ~kind:(Tree.Buffer buf8) ~pos:(Point.make 600_000 300_000)
      ~parent:mid ()
  in
  let sink label pos parent =
    ignore
      (Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 15.; parity = 0; label })
         ~pos ~parent ())
  in
  sink "s1" (Point.make 1_200_000 0) b;
  sink "s2" (Point.make 900_000 300_000) b;
  sink "s3" (Point.make 600_000 600_000) c;
  sink "s4" (Point.make 900_000 450_000) c;
  t

let same_float a b =
  (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) <= 1e-9

let check_same_eval label (fresh : Ev.t) (inc : Ev.t) =
  let ok = ref true in
  let expect cond = if not cond then ok := false in
  expect (same_float fresh.Ev.skew inc.Ev.skew);
  expect (same_float fresh.Ev.skew_rise inc.Ev.skew_rise);
  expect (same_float fresh.Ev.skew_fall inc.Ev.skew_fall);
  expect (same_float fresh.Ev.clr inc.Ev.clr);
  expect (same_float fresh.Ev.t_min inc.Ev.t_min);
  expect (same_float fresh.Ev.t_max inc.Ev.t_max);
  expect (fresh.Ev.slew_violations = inc.Ev.slew_violations);
  expect (fresh.Ev.cap_ok = inc.Ev.cap_ok);
  expect (List.length fresh.Ev.runs = List.length inc.Ev.runs);
  List.iter2
    (fun (fr : Ev.run) (ir : Ev.run) ->
      expect (fr.Ev.corner.Tech.Corner.name = ir.Ev.corner.Tech.Corner.name);
      expect (fr.Ev.transition = ir.Ev.transition);
      expect (Array.length fr.Ev.latency = Array.length ir.Ev.latency);
      Array.iteri
        (fun i l -> expect (same_float l ir.Ev.latency.(i)))
        fr.Ev.latency;
      Array.iteri (fun i s -> expect (same_float s ir.Ev.slew.(i))) fr.Ev.slew)
    fresh.Ev.runs inc.Ev.runs;
  check_bool label true !ok

(* Apply one random structural or electrical edit (same distribution as
   the boxed incremental oracle). *)
let random_edit rng tree =
  let n_wires = Array.length tech.Tech.wires in
  let pick_wire_node () = 1 + Random.State.int rng (Tree.size tree - 1) in
  match Random.State.int rng 5 with
  | 0 ->
    let id = pick_wire_node () in
    Tree.set_snake tree id (Random.State.int rng 60_000)
  | 1 ->
    let id = pick_wire_node () in
    Tree.set_wire_class tree id (Random.State.int rng n_wires)
  | 2 -> (
    let bufs = Tree.buffer_ids tree in
    match Array.length bufs with
    | 0 -> ()
    | nb -> (
      let id = bufs.(Random.State.int rng nb) in
      match (Tree.node tree id).Tree.kind with
      | Tree.Buffer b ->
        let f = 0.5 +. Random.State.float rng 1.5 in
        Tree.set_buffer tree id (Tech.Composite.scale b f)
      | _ -> ()))
  | 3 ->
    let id = pick_wire_node () in
    let nd = Tree.node tree id in
    if nd.Tree.geom_len > 20_000 then
      ignore
        (Tree.insert_buffer_on_wire tree id
           ~at:(10_000 + Random.State.int rng (nd.Tree.geom_len - 20_000))
           ~buf:buf8)
  | _ -> (
    let bufs = Tree.buffer_ids tree in
    if Array.length bufs > 2 then
      Tree.remove_buffer tree bufs.(Random.State.int rng (Array.length bufs)))

(* ---------- Arena snapshot ---------- *)

let check_arena_matches_tree label tree (a : Arena.t) =
  let ok = ref true in
  let expect cond = if not cond then ok := false in
  expect (Arena.in_sync a);
  expect (Arena.size a = Tree.size tree);
  for id = 0 to Tree.size tree - 1 do
    let nd = Tree.node tree id in
    expect (a.Arena.parent.(id) = nd.Tree.parent);
    expect (a.Arena.len.(id) = Tree.wire_len nd);
    (* Sibling chain reproduces the children list in order. *)
    let chain = ref [] in
    let c = ref a.Arena.first_child.(id) in
    while !c >= 0 do
      chain := !c :: !chain;
      c := a.Arena.next_sibling.(!c)
    done;
    expect (List.rev !chain = nd.Tree.children);
    (if nd.Tree.parent >= 0 then begin
       let wire = Tree.wire_of tree nd in
       let len = Tree.wire_len nd in
       expect (a.Arena.wire_r.{id} = Tech.Wire.res wire len);
       expect (a.Arena.wire_c.{id} = Tech.Wire.cap wire len)
     end
     else expect (a.Arena.wire_r.{id} = 0. && a.Arena.wire_c.{id} = 0.));
    match nd.Tree.kind with
    | Tree.Source -> expect (a.Arena.kind.(id) = Arena.k_source)
    | Tree.Internal -> expect (a.Arena.kind.(id) = Arena.k_internal)
    | Tree.Sink s ->
      expect (a.Arena.kind.(id) = Arena.k_sink);
      expect (a.Arena.tap_c.{id} = s.Tree.cap)
    | Tree.Buffer b ->
      expect (a.Arena.kind.(id) = Arena.k_buffer);
      expect (a.Arena.tap_c.{id} = Tech.Composite.c_in b);
      expect (a.Arena.drv_c_out.{id} = Tech.Composite.c_out b);
      expect (a.Arena.drv_r_up.{id} = Tech.Composite.r_up b);
      expect (a.Arena.drv_r_down.{id} = Tech.Composite.r_down b);
      expect (a.Arena.drv_d_intr.{id} = Tech.Composite.d_intrinsic b);
      expect (a.Arena.drv_slew_c.{id} = Tech.Composite.slew_coeff b);
      expect
        (a.Arena.inverting.(id) = if Tech.Composite.inverting b then 1 else 0)
  done;
  check_bool label true !ok

let test_arena_snapshot () =
  let tree = rich_tree () in
  let a = Arena.compile tree in
  check_arena_matches_tree "fresh compile matches tree" tree a

let test_arena_sync_touched () =
  let tree = rich_tree () in
  let a = Arena.compile tree in
  Tree.set_snake tree 2 40_000;
  Tree.set_wire_class tree 5 0;
  check_bool "edits leave the arena stale" false (Arena.in_sync a);
  Arena.sync ~touched:[ 2; 5 ] a;
  check_arena_matches_tree "touched patch resyncs" tree a;
  (* A structural edit changes the node count: the touched patch must
     detect it and recompile instead. *)
  let nb = Tree.insert_buffer_on_wire tree 6 ~at:50_000 ~buf:buf8 in
  Arena.sync ~touched:[ nb ] a;
  check_arena_matches_tree "size change forces recompile" tree a

let test_arena_staleness_detection () =
  let tree = rich_tree () in
  let a = Arena.compile tree in
  check_bool "in sync after compile" true (Arena.in_sync a);
  (* Out-of-band mutation (direct field write + touch) must be visible
     through the revision counter. *)
  (Tree.node tree 2).Tree.snake <- 25_000;
  Tree.touch tree;
  check_bool "out-of-band touch detected" false (Arena.in_sync a);
  Arena.sync a;
  check_bool "full sync recovers" true (Arena.in_sync a);
  check_arena_matches_tree "and matches the tree" tree a

(* ---------- Flat stage pool vs boxed extraction ---------- *)

let check_pool_matches_boxed label tree (p : Rcflat.t) =
  let ok = ref true in
  let expect cond = if not cond then ok := false in
  let boxed = Array.of_list (Rcnet.stages tree) in
  expect (Rcflat.nstages p = Array.length boxed);
  Array.iteri
    (fun si (st : Rcnet.stage) ->
      expect (p.Rcflat.driver.(si) = st.Rcnet.driver);
      let rc = st.Rcnet.rc in
      expect (Int64.equal p.Rcflat.fp.(si) (Rcnet.fingerprint rc));
      let frc = Rcflat.stage_rc p si in
      expect (frc.Rcnet.size = rc.Rcnet.size);
      expect (frc.Rcnet.parent = rc.Rcnet.parent);
      expect (frc.Rcnet.res = rc.Rcnet.res);
      expect (frc.Rcnet.cap = rc.Rcnet.cap);
      expect (frc.Rcnet.taps = rc.Rcnet.taps))
    boxed;
  check_bool label true !ok

let test_pool_matches_boxed () =
  let tree = rich_tree () in
  let p = Rcflat.compile (Arena.compile tree) in
  check_pool_matches_boxed "initial pool = boxed stages" tree p

let test_pool_update_and_relocate () =
  let tree = rich_tree () in
  let a = Arena.compile tree in
  let p = Rcflat.compile a in
  (* Value edits that keep each stage in place, then snake growth that
     forces stages past their slack (relocation, eventually compaction). *)
  let snakes = [ 5_000; 120_000; 400_000; 900_000; 50_000; 0 ] in
  List.iter
    (fun s ->
      Tree.set_snake tree 2 s;
      Tree.set_snake tree 6 (s / 2);
      Arena.sync ~touched:[ 2; 6 ] a;
      (* Node 2's wire is in the stage driven by node 1; node 6's in the
         stage driven by node 3 — update every stage whose driver we can
         find, mirroring the evaluator's dirty set. *)
      for si = 0 to Rcflat.nstages p - 1 do
        Rcflat.update_stage p si
      done;
      check_pool_matches_boxed
        (Printf.sprintf "pool matches after snake=%d" s)
        tree p)
    snakes;
  check_bool "pool accounting stays consistent" true
    (Rcflat.total_nodes p > 0)

(* ---------- Streaming kernel vs boxed kernel ---------- *)

let test_flat_kernel_matches_boxed () =
  let tree = rich_tree () in
  let p = Rcflat.compile (Arena.compile tree) in
  let boxed = Array.of_list (Rcnet.stages tree) in
  let fcache = Transient.Flat.Fcache.create () in
  let ok = ref true in
  Array.iteri
    (fun si (st : Rcnet.stage) ->
      let rc = st.Rcnet.rc in
      let bres = Transient.solve rc ~r_drv:120. ~s_drv:8. in
      let fres = Transient.Flat.solve ~fcache p ~si ~r_drv:120. ~s_drv:8. in
      if Array.length bres <> Array.length fres then ok := false
      else
        Array.iteri
          (fun k (d, s) ->
            let fd, fs = fres.(k) in
            if not (same_float d fd && same_float s fs) then ok := false)
          bres)
    boxed;
  check_bool "per-stage flat solve = boxed solve" true !ok

let test_flat_probe_matches_boxed () =
  let tree = rich_tree () in
  let p = Rcflat.compile (Arena.compile tree) in
  let rc = (List.hd (Rcnet.stages tree)).Rcnet.rc in
  let times = [| 5.; 20.; 80.; 200.; 600. |] in
  let node = rc.Rcnet.size - 1 in
  let vb = Transient.probe rc ~r_drv:120. ~s_drv:8. ~node ~times in
  let fcache = Transient.Flat.Fcache.create () in
  let vf =
    Transient.Flat.probe ~fcache p ~si:0 ~r_drv:120. ~s_drv:8. ~node ~times
  in
  Array.iteri
    (fun i v ->
      check_bool
        (Printf.sprintf "waveform sample %d matches" i)
        true
        (Float.abs (v -. vf.(i)) <= 1e-9))
    vb

(* ---------- Whole-tree flat evaluation oracles ---------- *)

let test_flat_evaluate_oracle () =
  let tree = rich_tree () in
  let boxed = Ev.evaluate ~engine:Ev.Spice tree in
  let flat = Ev.evaluate ~engine:Ev.Spice ~flat:true tree in
  check_same_eval "flat evaluate = boxed evaluate" boxed flat

let test_flat_incremental_oracle () =
  (* The cache-correctness oracle, flat edition: a flat session chased
     through random edit sequences (journaled, so the dirty fast path is
     exercised) must match a from-scratch boxed evaluation to ≤ 1e-9 ps
     at every step. *)
  let tree = rich_tree () in
  let session = Ev.Incremental.create ~engine:Ev.Spice ~flat:true tree in
  let rng = Random.State.make [| 42 |] in
  let boxed0 = Ev.evaluate ~engine:Ev.Spice tree in
  check_same_eval "initial flat refresh matches boxed evaluate" boxed0
    (Ev.Incremental.refresh session);
  for i = 1 to 25 do
    let j = Tree.Journal.start tree in
    random_edit rng tree;
    let hint = Core.Speculate.hint_of_journal j in
    Tree.Journal.commit j;
    let boxed = Ev.evaluate ~engine:Ev.Spice tree in
    let inc = Ev.Incremental.refresh ?edits:hint session in
    check_same_eval (Printf.sprintf "edit %d matches" i) boxed inc
  done;
  let st = Ev.Incremental.stats session in
  check_bool "cache produced hits" true (st.Ev.hits > 0);
  check_bool "dirty fast path exercised" true (st.Ev.dirty_refreshes > 0)

let test_flat_parallel_matches_sequential () =
  let tree = rich_tree () in
  let seq =
    Ev.Incremental.create ~engine:Ev.Spice ~flat:true ~parallel:false tree
  in
  let par =
    Ev.Incremental.create ~engine:Ev.Spice ~flat:true ~parallel:true tree
  in
  check_same_eval "flat parallel = flat sequential"
    (Ev.Incremental.refresh seq)
    (Ev.Incremental.refresh par);
  Tree.set_snake tree 2 40_000;
  check_same_eval "after edit too"
    (Ev.Incremental.refresh seq)
    (Ev.Incremental.refresh par);
  let s1 = Ev.Incremental.stats seq and s2 = Ev.Incremental.stats par in
  check_int "identical hit counts" s1.Ev.hits s2.Ev.hits;
  check_int "identical miss counts" s1.Ev.misses s2.Ev.misses

let test_flat_unreported_mutation_falls_back () =
  (* A mutation the session was never told about must not poison the
     flat caches: the broken anchor forces a full refresh whose result
     still matches a from-scratch evaluation. *)
  let tree = rich_tree () in
  let session = Ev.Incremental.create ~engine:Ev.Spice ~flat:true tree in
  ignore (Ev.Incremental.refresh session);
  Tree.set_snake tree 2 33_000;
  Ev.Incremental.note_edits session ~edits:None
    ~new_revision:(Tree.revision tree);
  let boxed = Ev.evaluate ~engine:Ev.Spice tree in
  check_same_eval "full-refresh fallback matches" boxed
    (Ev.Incremental.refresh session);
  let st = Ev.Incremental.stats session in
  check_int "no dirty refresh happened" 0 st.Ev.dirty_refreshes

let test_flat_rebind_after_compact () =
  let tree = rich_tree () in
  let session = Ev.Incremental.create ~engine:Ev.Spice ~flat:true tree in
  ignore (Ev.Incremental.refresh session);
  let clone, _ = Tree.compact (Tree.copy tree) in
  let misses_before = (Ev.Incremental.stats session).Ev.misses in
  let inc = Ev.Incremental.refresh ~tree:clone session in
  let boxed = Ev.evaluate ~engine:Ev.Spice clone in
  check_same_eval "compacted clone matches" boxed inc;
  check_int "content-keyed caches carry over" misses_before
    (Ev.Incremental.stats session).Ev.misses

let () =
  Alcotest.run "arena"
    [
      ( "arena",
        [
          Alcotest.test_case "snapshot matches tree" `Quick
            test_arena_snapshot;
          Alcotest.test_case "touched-patch sync" `Quick
            test_arena_sync_touched;
          Alcotest.test_case "revision staleness detection" `Quick
            test_arena_staleness_detection;
        ] );
      ( "pool",
        [
          Alcotest.test_case "matches boxed extraction" `Quick
            test_pool_matches_boxed;
          Alcotest.test_case "in-place update and relocation" `Quick
            test_pool_update_and_relocate;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "flat solve = boxed solve" `Quick
            test_flat_kernel_matches_boxed;
          Alcotest.test_case "flat probe = boxed probe" `Quick
            test_flat_probe_matches_boxed;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "flat evaluate oracle" `Quick
            test_flat_evaluate_oracle;
          Alcotest.test_case "flat incremental oracle" `Slow
            test_flat_incremental_oracle;
          Alcotest.test_case "parallel = sequential" `Quick
            test_flat_parallel_matches_sequential;
          Alcotest.test_case "unreported mutation falls back" `Quick
            test_flat_unreported_mutation_falls_back;
          Alcotest.test_case "rebind after compact" `Quick
            test_flat_rebind_after_compact;
        ] );
    ]
