open Geometry
module Tree = Ctree.Tree
module Ev = Analysis.Evaluator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_near tol = Alcotest.(check (float tol))

let tech = Tech.default45 ()
let config = { Core.Config.default with Core.Config.max_rounds = 30 }

let random_sinks seed n span =
  let rng = Suite.Rng.create seed in
  Array.init n (fun i ->
      { Dme.Zst.pos = Point.make (Suite.Rng.int rng span) (Suite.Rng.int rng span);
        cap = 5. +. Suite.Rng.float rng *. 25.; parity = 0;
        label = Printf.sprintf "s%d" i })

let small_flow_input () = random_sinks 4242 30 3_000_000

let initial_tree () =
  let sinks = small_flow_input () in
  let tree, buf, _, _ =
    Core.Flow.initial_tree ~config ~tech ~source:(Point.make 0 1_500_000) sinks
  in
  (tree, buf)

(* ---------- Slack (paper §III) ---------- *)

let test_slack_definitions () =
  let tree, _ = initial_tree () in
  let ev = Ev.evaluate ~engine:Ev.Spice tree in
  let run = Ev.nominal_run ev Ev.Rise in
  let slacks = Core.Slack.of_run tree run in
  let sinks = Tree.sinks tree in
  (* Definition 1: Slack_slow s = Tmax - Ts, Slack_fast s = Ts - Tmin. *)
  Array.iter
    (fun s ->
      let l = run.Ev.latency.(s) in
      check_near 1e-6 "slow slack def" (slacks.Core.Slack.t_max -. l)
        slacks.Core.Slack.sink_slow.(s);
      check_near 1e-6 "fast slack def" (l -. slacks.Core.Slack.t_min)
        slacks.Core.Slack.sink_fast.(s))
    sinks;
  (* Some sink is critical in each direction. *)
  check_bool "critical slow sink" true
    (Array.exists (fun s -> slacks.Core.Slack.sink_slow.(s) < 1e-9) sinks);
  check_bool "critical fast sink" true
    (Array.exists (fun s -> slacks.Core.Slack.sink_fast.(s) < 1e-9) sinks)

let test_slack_lemma1 () =
  (* Edge slack = min over downstream sinks (Lemma 1). *)
  let tree, _ = initial_tree () in
  let ev = Ev.evaluate ~engine:Ev.Spice tree in
  let slacks = Core.Slack.of_run tree (Ev.nominal_run ev Ev.Rise) in
  Tree.iter tree (fun nd ->
      if nd.Tree.parent >= 0 then begin
        let below = Tree.subtree_sinks tree nd.Tree.id in
        if below <> [] then begin
          let expected =
            List.fold_left
              (fun acc s -> Float.min acc slacks.Core.Slack.sink_slow.(s))
              infinity below
          in
          check_near 1e-6 "lemma 1" expected slacks.Core.Slack.slow.(nd.Tree.id)
        end
      end)

let test_slack_lemma2 () =
  (* Slacks are monotone non-decreasing down any path (Lemma 2). *)
  let tree, _ = initial_tree () in
  let ev = Ev.evaluate ~engine:Ev.Spice tree in
  let slacks = Core.Slack.of_run tree (Ev.nominal_run ev Ev.Fall) in
  Tree.iter tree (fun nd ->
      if nd.Tree.parent >= 0 && nd.Tree.parent <> Tree.root tree then begin
        check_bool "slow monotone" true
          (slacks.Core.Slack.slow.(nd.Tree.id)
           >= slacks.Core.Slack.slow.(nd.Tree.parent) -. 1e-9);
        check_bool "fast monotone" true
          (slacks.Core.Slack.fast.(nd.Tree.id)
           >= slacks.Core.Slack.fast.(nd.Tree.parent) -. 1e-9)
      end)

let test_slack_proposition1 () =
  (* Δ decomposition: the per-edge deltas along any root-to-sink path sum
     to that sink's slack (Proposition 1). *)
  let tree, _ = initial_tree () in
  let ev = Ev.evaluate ~engine:Ev.Spice tree in
  let run = Ev.nominal_run ev Ev.Rise in
  let slacks = Core.Slack.of_run tree run in
  Array.iter
    (fun s ->
      let rec path_sum i acc =
        if i < 0 || i = Tree.root tree then acc
        else
          path_sum (Tree.node tree i).Tree.parent
            (acc +. Core.Slack.delta_slow slacks tree i)
      in
      check_near 1e-6 "deltas sum to sink slack"
        slacks.Core.Slack.sink_slow.(s) (path_sum s 0.))
    (Tree.sinks tree)

let test_slack_combined_min () =
  let tree, _ = initial_tree () in
  let ev = Ev.evaluate ~engine:Ev.Spice tree in
  let rise = Core.Slack.of_run tree (Ev.nominal_run ev Ev.Rise) in
  let fall = Core.Slack.of_run tree (Ev.nominal_run ev Ev.Fall) in
  let combined = Core.Slack.combined tree ev in
  Tree.iter tree (fun nd ->
      let i = nd.Tree.id in
      check_bool "combined <= rise" true
        (combined.Core.Slack.slow.(i) <= rise.Core.Slack.slow.(i) +. 1e-9);
      check_bool "combined <= fall" true
        (combined.Core.Slack.slow.(i) <= fall.Core.Slack.slow.(i) +. 1e-9))

(* Regression: corners must compare by name, not physical identity.
   Rebuilding each run's corner record (structurally equal, physically
   distinct — as a variation sweep or file round-trip does) used to make
   [combined] silently drop every run but the head, so the fall-transition
   nominal run no longer constrained the slack. *)
let test_slack_combined_cloned_corners () =
  let tree, _ = initial_tree () in
  let ev = Ev.evaluate ~engine:Ev.Arnoldi tree in
  let clone (c : Tech.Corner.t) = { c with Tech.Corner.name = c.Tech.Corner.name } in
  let cloned =
    { ev with
      Ev.runs =
        List.map
          (fun (r : Ev.run) -> { r with Ev.corner = clone r.Ev.corner })
          ev.Ev.runs }
  in
  let reference = Core.Slack.combined tree ev in
  let combined = Core.Slack.combined tree cloned in
  check_near 1e-12 "t_min unaffected by corner cloning"
    reference.Core.Slack.t_min combined.Core.Slack.t_min;
  check_near 1e-12 "t_max unaffected by corner cloning"
    reference.Core.Slack.t_max combined.Core.Slack.t_max;
  Tree.iter tree (fun nd ->
      let i = nd.Tree.id in
      check_near 1e-12 "slow slack unaffected by corner cloning"
        reference.Core.Slack.slow.(i) combined.Core.Slack.slow.(i);
      check_near 1e-12 "fast slack unaffected by corner cloning"
        reference.Core.Slack.fast.(i) combined.Core.Slack.fast.(i));
  (* Guard against vacuity: with both nominal transitions kept, combined
     is strictly tighter than the rise run alone somewhere. *)
  let rise = Core.Slack.of_run tree (Ev.nominal_run ev Ev.Rise) in
  let tighter = ref false in
  Tree.iter tree (fun nd ->
      let i = nd.Tree.id in
      if combined.Core.Slack.slow.(i) < rise.Core.Slack.slow.(i) -. 1e-9 then
        tighter := true);
  check_bool "fall run contributes to the combined slack" true !tighter

(* ---------- Polarity (paper §IV-D, Prop. 2) ---------- *)

let buffered_tree seed =
  let sinks = random_sinks seed 40 3_000_000 in
  let zst = Dme.Zst.build ~tech ~source:(Point.make 0 1_500_000) sinks in
  let buf = Tech.Composite.make Tech.Device.small_inverter 16 in
  let ceiling = Route.Slewcap.lumped ~tech ~buf () in
  (Buffering.Fast_vg.insert zst ~buf ~cap_ceiling:ceiling (), buf)

let test_polarity_strategies_correct () =
  List.iter
    (fun strategy ->
      let tree, buf = buffered_tree 7 in
      ignore (Core.Polarity.correct tree ~buf ~strategy);
      Alcotest.(check (list int)) "no inverted sinks left" []
        (Core.Polarity.inverted_sinks tree);
      Alcotest.(check (list string)) "still valid" [] (Ctree.Validate.check tree))
    [ Core.Polarity.Per_sink; Core.Polarity.Top_then_per_sink; Core.Polarity.Minimal ]

let test_polarity_minimal_cheapest () =
  let strictly = ref false in
  List.iter
    (fun seed ->
      let count strategy =
        let tree, buf = buffered_tree seed in
        (Core.Polarity.correct tree ~buf ~strategy).Core.Polarity.added
      in
      let per_sink = count Core.Polarity.Per_sink in
      let top = count Core.Polarity.Top_then_per_sink in
      let minimal = count Core.Polarity.Minimal in
      check_bool "minimal <= top variant" true (minimal <= top);
      check_bool "minimal <= per-sink" true (minimal <= per_sink);
      if minimal < per_sink then strictly := true)
    [ 7; 8; 12; 21 ];
  (* Wrong sinks cluster (Table II): on some tree the gap is strict. *)
  check_bool "strictly cheaper somewhere" true !strictly

let test_polarity_one_per_path () =
  (* Proposition 2's constraint: at most one added inverter per
     root-to-sink path. All sinks need parity 0, so after Minimal every
     path has an EVEN total count and at most one was added below any
     formerly-uniform subtree. We verify the weaker, checkable invariant:
     correcting twice adds nothing. *)
  let tree, buf = buffered_tree 9 in
  ignore (Core.Polarity.correct tree ~buf ~strategy:Core.Polarity.Minimal);
  let second = Core.Polarity.correct tree ~buf ~strategy:Core.Polarity.Minimal in
  check_int "idempotent" 0 second.Core.Polarity.added

let test_polarity_counts_match_marks () =
  let tree, buf = buffered_tree 10 in
  let predicted = Core.Polarity.minimal_count tree in
  let report = Core.Polarity.correct tree ~buf ~strategy:Core.Polarity.Minimal in
  check_int "count equals marks" predicted report.Core.Polarity.added

let polarity_qcheck =
  QCheck.Test.make ~name:"polarity: minimal corrects any random tree"
    ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let tree, buf = buffered_tree seed in
      ignore (Core.Polarity.correct tree ~buf ~strategy:Core.Polarity.Minimal);
      Core.Polarity.inverted_sinks tree = []
      && Ctree.Validate.check tree = [])

(* ---------- Stage balancing ---------- *)

let test_stage_balance () =
  let tree, buf = buffered_tree 11 in
  ignore (Core.Polarity.correct tree ~buf ~strategy:Core.Polarity.Minimal);
  ignore (Core.Stage_balance.equalize tree ~buf);
  let lo, hi = Core.Stage_balance.count_range tree in
  check_int "uniform stage count" lo hi;
  Alcotest.(check (list int)) "polarity still correct" []
    (Core.Polarity.inverted_sinks tree);
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check tree)

let test_stage_balance_artificial () =
  (* Hand-build a tree with a 2-stage deficit and check the equaliser. *)
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let buf = Tech.Composite.make Tech.Device.small_inverter 8 in
  let chain parent n stop =
    (* n buffers spaced along a wire towards [stop] *)
    let target = ref parent in
    for i = 1 to n do
      let pos =
        Point.make (stop * i / (n + 1)) 0
      in
      target :=
        Tree.add_node t ~kind:(Tree.Buffer buf) ~pos ~parent:!target ()
    done;
    !target
  in
  let a_end = chain (Tree.root t) 4 1_000_000 in
  let _sink_a =
    Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 10.; parity = 0; label = "a" })
      ~pos:(Point.make 1_000_000 0) ~parent:a_end ()
  in
  let b_end = chain (Tree.root t) 2 800_000 in
  let _sink_b =
    Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 10.; parity = 0; label = "b" })
      ~pos:(Point.make 800_000 200_000) ~parent:b_end ()
  in
  let lo, hi = Core.Stage_balance.count_range t in
  check_int "deficit before" 2 (hi - lo);
  let report = Core.Stage_balance.equalize t ~buf in
  check_int "one pair added" 1 report.Core.Stage_balance.pairs_added;
  let lo, hi = Core.Stage_balance.count_range t in
  check_int "uniform after" lo hi;
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check t)

(* ---------- Probes / sensitivities ---------- *)

let test_sensitivities_shape () =
  let tree, _ = initial_tree () in
  let sens = Core.Probes.sensitivities tree in
  let order = Tree.topo_order tree in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      if nd.Tree.parent >= 0 then begin
        check_bool "snake delay positive" true
          (sens.Core.Probes.snake_delay.(i) > 0.);
        check_bool "snake slew >= delay sens" true
          (sens.Core.Probes.snake_slew.(i) >= sens.Core.Probes.snake_delay.(i))
      end)
    order;
  (* Deeper stage cap at the trunk should exceed a sink wire's. *)
  let sinks = Tree.sinks tree in
  let trunk = List.hd (Core.Buffer_slide.trunk_chain tree) in
  check_bool "trunk sees more stage cap" true
    (sens.Core.Probes.cdown.(trunk) > sens.Core.Probes.cdown.(sinks.(0)))

let test_probe_calibration () =
  let tree, _ = initial_tree () in
  let baseline = Ev.evaluate ~engine:Ev.Spice tree in
  let size_before = Tree.size tree in
  let stats_before = Ctree.Stats.compute tree in
  let twn, corr = Core.Wiresnaking.estimate_twn config tree ~baseline in
  check_bool "twn positive" true (twn > 0.);
  check_bool "correction clamped" true (corr >= 0.5 && corr <= 4.);
  (* probing restores the tree exactly *)
  check_int "size restored" size_before (Tree.size tree);
  check_int "wirelength restored" stats_before.Ctree.Stats.wirelength
    (Ctree.Stats.compute tree).Ctree.Stats.wirelength

let test_slew_headroom_stage_aware () =
  let tree, _ = initial_tree () in
  let ev = Ev.evaluate ~engine:Ev.Spice tree in
  let hr = Core.Probes.subtree_slew_headroom tree ev in
  let limit = tech.Tech.slew_limit in
  Array.iter
    (fun s -> check_bool "sink headroom within [0,limit]" true
        (hr.(s) >= 0. && hr.(s) <= limit))
    (Tree.sinks tree);
  (* The root's headroom only reflects its own stage, not the worst sink:
     it must be at least the worst FIRST-stage tap headroom, which can be
     better than the global worst. *)
  let global_worst =
    List.fold_left
      (fun acc (r : Ev.run) -> Float.max acc r.Ev.worst_slew)
      0. ev.Ev.runs
  in
  let trunk = List.hd (Core.Buffer_slide.trunk_chain tree) in
  check_bool "stage-aware headroom" true
    (hr.(trunk) >= limit -. global_worst -. 1e-9)

(* ---------- IVC ---------- *)

let test_ivc_rollback () =
  let tree, _ = initial_tree () in
  let baseline = Ev.evaluate ~engine:Ev.Spice tree in
  let before = Tree.size tree in
  (* A mutation that makes things strictly worse must be rolled back. *)
  let result =
    Core.Ivc.attempt config tree ~baseline ~objective:Core.Ivc.Skew (fun t ->
        let s = (Tree.sinks t).(0) in
        Tree.set_snake t s ((Tree.node t s).Tree.snake + 3_000_000))
  in
  check_bool "rejected" true (Result.is_error result);
  check_int "size restored" before (Tree.size tree);
  let after = Ev.evaluate ~engine:Ev.Spice tree in
  check_near 1e-9 "skew restored" baseline.Ev.skew after.Ev.skew

let test_ivc_accepts_improvement () =
  let tree, _ = initial_tree () in
  let baseline = Ev.evaluate ~engine:Ev.Spice tree in
  (* Snake the fastest sink a little: should reduce skew. *)
  let slacks = Core.Slack.combined tree baseline in
  let fastest =
    Array.fold_left
      (fun acc s ->
        if slacks.Core.Slack.sink_slow.(s) > slacks.Core.Slack.sink_slow.(acc)
        then s else acc)
      (Tree.sinks tree).(0) (Tree.sinks tree)
  in
  let result =
    Core.Ivc.attempt config tree ~baseline ~objective:Core.Ivc.Skew (fun t ->
        Tree.set_snake t fastest ((Tree.node t fastest).Tree.snake + 100_000))
  in
  check_bool "accepted" true (Result.is_ok result)

let test_ivc_better () =
  let mk skew clr =
    let base = Ev.evaluate ~engine:Ev.Elmore_model (fst (initial_tree ())) in
    { base with Ev.skew; clr }
  in
  let a = mk 10. 20. and b = mk 5. 30. in
  check_bool "skew objective" true
    (Core.Ivc.better Core.Ivc.Skew ~candidate:b ~baseline:a);
  check_bool "clr objective prefers a" true
    (Core.Ivc.better Core.Ivc.Clr ~candidate:a ~baseline:b)

(* ---------- Insertion sweep ---------- *)

let test_insertion_legal () =
  let sinks = small_flow_input () in
  let zst = Dme.Zst.build ~tech:(Tech.default45 ~cap_limit:40_000. ())
      ~source:(Point.make 0 1_500_000) sinks in
  let result = Core.Insertion.run config zst in
  let ev = result.Core.Insertion.eval in
  check_int "no slew violations" 0 ev.Ev.slew_violations;
  check_bool "within power budget" true
    (ev.Ev.stats.Ctree.Stats.total_cap
     <= (1. -. config.Core.Config.gamma) *. 40_000. +. 1e-6);
  check_bool "strongest-first preference" true
    (result.Core.Insertion.buf.Tech.Composite.count >= 2)

let test_insertion_candidates_order () =
  let cands = Core.Insertion.candidates config tech in
  check_bool "non-empty" true (cands <> []);
  let rec decreasing_strength = function
    | a :: b :: rest ->
      Tech.Composite.r_out a <= Tech.Composite.r_out b
      && decreasing_strength (b :: rest)
    | _ -> true
  in
  check_bool "strongest first" true (decreasing_strength cands)

let test_delta_fast () =
  let tree, _ = initial_tree () in
  let ev = Ev.evaluate ~engine:Ev.Spice tree in
  let slacks = Core.Slack.of_run tree (Ev.nominal_run ev Ev.Rise) in
  (* Mirror of Prop. 1 for speed-up: deltas along a path sum to the sink's
     fast slack. *)
  Array.iter
    (fun s ->
      let rec path_sum i acc =
        if i < 0 || i = Tree.root tree then acc
        else
          path_sum (Tree.node tree i).Tree.parent
            (acc +. Core.Slack.delta_fast slacks tree i)
      in
      check_near 1e-6 "fast deltas sum" slacks.Core.Slack.sink_fast.(s)
        (path_sum s 0.))
    (Tree.sinks tree)

let test_insertion_tried_counter () =
  let sinks = small_flow_input () in
  let zst =
    Dme.Zst.build ~tech:(Tech.default45 ~cap_limit:40_000. ())
      ~source:(Point.make 0 1_500_000) sinks
  in
  let r = Core.Insertion.run config zst in
  check_bool "at least one attempt" true (r.Core.Insertion.tried >= 1);
  check_bool "ceiling recorded" true (r.Core.Insertion.ceiling > 0.)

(* ---------- Optimizers make progress and stay legal ---------- *)

let test_wiresnaking_progress () =
  let tree, _ = initial_tree () in
  let baseline = Ev.evaluate ~engine:Ev.Spice tree in
  let r = Core.Wiresnaking.run config tree ~baseline in
  check_bool "skew not worse" true
    (r.Core.Wiresnaking.eval.Ev.skew <= baseline.Ev.skew +. 1e-6);
  check_int "stays violation free" 0 r.Core.Wiresnaking.eval.Ev.slew_violations;
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check tree)

let test_flow_end_to_end () =
  let sinks = small_flow_input () in
  let r =
    Core.Flow.run ~config ~tech:(Tech.default45 ~cap_limit:40_000. ())
      ~source:(Point.make 0 1_500_000) sinks
  in
  check_int "five trace steps" 5 (List.length r.Core.Flow.trace);
  let initial = List.hd r.Core.Flow.trace in
  let final = List.nth r.Core.Flow.trace 4 in
  check_bool "skew improved" true (final.Core.Flow.skew < initial.Core.Flow.skew);
  check_bool "clr improved" true (final.Core.Flow.clr < initial.Core.Flow.clr);
  check_bool "single-digit final skew" true (final.Core.Flow.skew < 10.);
  check_int "legal" 0 r.Core.Flow.final.Ev.slew_violations;
  check_bool "cap ok" true r.Core.Flow.final.Ev.cap_ok;
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check r.Core.Flow.tree);
  Alcotest.(check (list int)) "polarity correct" []
    (Core.Polarity.inverted_sinks r.Core.Flow.tree)

let test_flow_with_obstacles_legal_buffers () =
  let rng = Suite.Rng.create 77 in
  let obstacles =
    [ Rect.make ~lx:800_000 ~ly:800_000 ~hx:2_000_000 ~hy:2_000_000 ]
  in
  let inside p = List.exists (fun r -> Rect.contains_open r p) obstacles in
  let rec pos () =
    let p = Point.make (Suite.Rng.int rng 3_000_000) (Suite.Rng.int rng 3_000_000) in
    if inside p then pos () else p
  in
  let sinks =
    Array.init 25 (fun i ->
        { Dme.Zst.pos = pos (); cap = 10.; parity = 0;
          label = Printf.sprintf "s%d" i })
  in
  let r =
    Core.Flow.run ~config ~tech ~source:(Point.make 0 1_500_000) ~obstacles sinks
  in
  Alcotest.(check (list int)) "no buffers in obstacles" []
    (Route.Repair.illegal_buffers r.Core.Flow.tree ~obstacles);
  check_bool "repair report present" true (r.Core.Flow.repair <> None)

(* ---------- Buffer slide / sizing ---------- *)

let test_trunk_detection () =
  let tree, _ = initial_tree () in
  let chain = Core.Buffer_slide.trunk_chain tree in
  check_bool "trunk exists" true (List.length chain >= 1);
  let buffers = Core.Buffer_slide.trunk_buffers tree in
  check_bool "trunk has buffers" true (List.length buffers >= 1)

let test_respace_preserves () =
  let tree, buf = initial_tree () in
  let ceiling = Route.Slewcap.lumped ~tech ~buf () in
  let before_sinks = Array.length (Tree.sinks tree) in
  let slid, report = Core.Buffer_slide.respace tree ~ceiling in
  Alcotest.(check (list string)) "valid" [] (Ctree.Validate.check slid);
  check_int "sinks preserved" before_sinks (Array.length (Tree.sinks slid));
  check_bool "parity of chain preserved" true
    ((report.Core.Buffer_slide.trunk_buffers_after
      - report.Core.Buffer_slide.trunk_buffers_before) mod 2 = 0);
  Alcotest.(check (list int)) "polarity survives respace" []
    (Core.Polarity.inverted_sinks slid)

let test_bottom_buffers () =
  let tree, _ = initial_tree () in
  let bottoms = Core.Buffer_sizing.bottom_buffers tree in
  check_bool "bottom buffers exist" true (bottoms <> []);
  (* None of them has a buffer descendant. *)
  List.iter
    (fun id ->
      let rec no_buf_below i =
        List.for_all
          (fun c ->
            (match (Tree.node tree c).Tree.kind with
            | Tree.Buffer _ -> false
            | _ -> true)
            && no_buf_below c)
          (Tree.node tree i).Tree.children
      in
      check_bool "leaf-level" true (no_buf_below id))
    bottoms

let test_flow_deterministic () =
  let run () =
    let sinks = small_flow_input () in
    (Core.Flow.run ~config ~tech:(Tech.default45 ~cap_limit:40_000. ())
       ~source:(Point.make 0 1_500_000) sinks)
      .Core.Flow.final.Ev.skew
  in
  check_near 1e-9 "two runs identical" (run ()) (run ())

let test_flow_multiwidth () =
  (* Four wire classes: TWSZ has finer granularity and must use the
     intermediate classes. *)
  let sinks = random_sinks 99 25 2_500_000 in
  let tech4 = Tech.default45_multiwidth ~cap_limit:40_000. () in
  let r = Core.Flow.run ~config ~tech:tech4 ~source:(Point.make 0 1_000_000) sinks in
  check_bool "flow works on 4-width tech" true (r.Core.Flow.final.Ev.skew < 10.);
  let classes = Hashtbl.create 4 in
  Ctree.Tree.iter r.Core.Flow.tree (fun nd ->
      if nd.Ctree.Tree.parent >= 0 then
        Hashtbl.replace classes nd.Ctree.Tree.wire_class ());
  check_bool "more than one wire class in use" true (Hashtbl.length classes >= 2)

let test_flow_arnoldi_engine () =
  (* The methodology is evaluator-agnostic: the Arnoldi engine must reach
     the same band; cross-check the result under the transient engine. *)
  let sinks = small_flow_input () in
  let cfg = { config with Core.Config.engine = Ev.Arnoldi } in
  let r =
    Core.Flow.run ~config:cfg ~tech:(Tech.default45 ~cap_limit:40_000. ())
      ~source:(Point.make 0 1_500_000) sinks
  in
  check_bool "arnoldi flow converges" true (r.Core.Flow.final.Ev.skew < 10.);
  let cross = Ev.evaluate ~engine:Ev.Spice r.Core.Flow.tree in
  check_bool "cross-checked skew sane" true (cross.Ev.skew < 20.)

let test_stage_balance_noop_when_balanced () =
  let tree, buf = initial_tree () in
  (* initial_tree already balances; a second call adds nothing *)
  let report = Core.Stage_balance.equalize tree ~buf in
  check_int "no pairs on balanced tree" 0 report.Core.Stage_balance.pairs_added

let test_wiresizing_uses_narrow_classes () =
  let sinks = small_flow_input () in
  let tree, _, _, _ =
    Core.Flow.initial_tree ~config ~tech ~source:(Point.make 0 1_500_000) sinks
  in
  let baseline = Ev.evaluate ~engine:Ev.Spice tree in
  let widest = Tech.widest_wire tech in
  let narrow_before =
    let n = ref 0 in
    Ctree.Tree.iter tree (fun nd ->
        if nd.Ctree.Tree.parent >= 0 && nd.Ctree.Tree.wire_class < widest then incr n);
    !n
  in
  let r = Core.Wiresizing.run config tree ~baseline in
  let narrow_after =
    let n = ref 0 in
    Ctree.Tree.iter tree (fun nd ->
        if nd.Ctree.Tree.parent >= 0 && nd.Ctree.Tree.wire_class < widest then incr n);
    !n
  in
  check_bool "some wires downsized" true
    (narrow_after > narrow_before || r.Core.Wiresizing.rounds = 0);
  check_bool "skew not worse" true
    (r.Core.Wiresizing.eval.Ev.skew <= baseline.Ev.skew +. 1e-6)

let test_flow_ablation_flags () =
  (* The ablation switches must not break legality, only quality. *)
  let sinks = random_sinks 4321 20 2_000_000 in
  List.iter
    (fun cfg ->
      let r =
        Core.Flow.run ~config:cfg ~tech:(Tech.default45 ~cap_limit:40_000. ())
          ~source:(Point.make 0 1_000_000) sinks
      in
      check_int "legal" 0 r.Core.Flow.final.Ev.slew_violations;
      Alcotest.(check (list string)) "valid" []
        (Ctree.Validate.check r.Core.Flow.tree))
    [ { config with Core.Config.stage_balancing = false };
      { config with Core.Config.elmore_prebalance = false } ]

let flow_qcheck =
  (* Whole-flow invariants over random instances (Arnoldi engine for
     speed): valid tree, correct polarity, no violations, within the cap
     budget, and skew never worse than the initial state. *)
  QCheck.Test.make ~name:"flow: invariants hold on random instances" ~count:5
    QCheck.(pair (int_range 8 35) (int_range 0 10_000))
    (fun (n, seed) ->
      let sinks = random_sinks seed n 2_500_000 in
      let cfg =
        { config with Core.Config.engine = Ev.Arnoldi; max_rounds = 40 }
      in
      let r =
        Core.Flow.run ~config:cfg ~tech:(Tech.default45 ~cap_limit:50_000. ())
          ~source:(Point.make 0 1_000_000) sinks
      in
      let initial = List.hd r.Core.Flow.trace in
      Ctree.Validate.check r.Core.Flow.tree = []
      && Core.Polarity.inverted_sinks r.Core.Flow.tree = []
      && r.Core.Flow.final.Ev.slew_violations = 0
      && r.Core.Flow.final.Ev.cap_ok
      && r.Core.Flow.final.Ev.skew <= initial.Core.Flow.skew +. 1e-6
      && Array.length (Ctree.Tree.sinks r.Core.Flow.tree) = n)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ("slack",
       [ Alcotest.test_case "definitions" `Quick test_slack_definitions;
         Alcotest.test_case "lemma 1" `Quick test_slack_lemma1;
         Alcotest.test_case "lemma 2" `Quick test_slack_lemma2;
         Alcotest.test_case "proposition 1" `Quick test_slack_proposition1;
         Alcotest.test_case "fast deltas" `Quick test_delta_fast;
         Alcotest.test_case "combined min" `Quick test_slack_combined_min;
         Alcotest.test_case "combined: cloned corners" `Quick
           test_slack_combined_cloned_corners ]);
      ("polarity",
       [ Alcotest.test_case "strategies correct" `Quick test_polarity_strategies_correct;
         Alcotest.test_case "minimal cheapest" `Quick test_polarity_minimal_cheapest;
         Alcotest.test_case "idempotent" `Quick test_polarity_one_per_path;
         Alcotest.test_case "marks = added" `Quick test_polarity_counts_match_marks;
         q polarity_qcheck ]);
      ("stage-balance",
       [ Alcotest.test_case "equalises" `Quick test_stage_balance;
         Alcotest.test_case "artificial deficit" `Quick test_stage_balance_artificial;
         Alcotest.test_case "noop when balanced" `Quick test_stage_balance_noop_when_balanced ]);
      ("probes",
       [ Alcotest.test_case "sensitivities" `Quick test_sensitivities_shape;
         Alcotest.test_case "calibration" `Quick test_probe_calibration;
         Alcotest.test_case "stage-aware headroom" `Quick test_slew_headroom_stage_aware ]);
      ("ivc",
       [ Alcotest.test_case "rollback" `Quick test_ivc_rollback;
         Alcotest.test_case "accepts improvement" `Quick test_ivc_accepts_improvement;
         Alcotest.test_case "objectives" `Quick test_ivc_better ]);
      ("insertion",
       [ Alcotest.test_case "legal result" `Quick test_insertion_legal;
         Alcotest.test_case "candidate order" `Quick test_insertion_candidates_order;
         Alcotest.test_case "tried counter" `Quick test_insertion_tried_counter ]);
      ("optimizers",
       [ Alcotest.test_case "wiresnaking progress" `Quick test_wiresnaking_progress;
         Alcotest.test_case "wiresizing narrows" `Quick test_wiresizing_uses_narrow_classes ]);
      ("flow",
       [ Alcotest.test_case "end to end" `Slow test_flow_end_to_end;
         Alcotest.test_case "obstacle legality" `Slow test_flow_with_obstacles_legal_buffers;
         Alcotest.test_case "deterministic" `Slow test_flow_deterministic;
         Alcotest.test_case "multiwidth tech" `Slow test_flow_multiwidth;
         Alcotest.test_case "arnoldi engine" `Slow test_flow_arnoldi_engine;
         Alcotest.test_case "ablation flags legal" `Slow test_flow_ablation_flags;
         q flow_qcheck ]);
      ("buffers",
       [ Alcotest.test_case "trunk detection" `Quick test_trunk_detection;
         Alcotest.test_case "respace" `Quick test_respace_preserves;
         Alcotest.test_case "bottom buffers" `Quick test_bottom_buffers ]);
    ]
