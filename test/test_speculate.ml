(* Journaled tree edits + speculative candidate search (the machinery
   behind Ivc.attempt/speculate): rollback exactness against a Tree.copy
   oracle, redo-replay, dirty-hint classification, the no-copy guarantee
   of the journaled attempt path, the incremental dirty-set fast path,
   and the width-independence (determinism) of the speculative flow. *)

open Geometry
module Tree = Ctree.Tree
module Ev = Analysis.Evaluator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_near tol = Alcotest.(check (float tol))

let tech = Tech.default45 ()
let config = { Core.Config.default with Core.Config.max_rounds = 30 }

let random_sinks seed n span =
  let rng = Suite.Rng.create seed in
  Array.init n (fun i ->
      { Dme.Zst.pos =
          Point.make (Suite.Rng.int rng span) (Suite.Rng.int rng span);
        cap = 5. +. (Suite.Rng.float rng *. 25.); parity = 0;
        label = Printf.sprintf "s%d" i })

let initial_tree () =
  let sinks = random_sinks 4242 30 3_000_000 in
  let tree, buf, _, _ =
    Core.Flow.initial_tree ~config ~tech ~source:(Point.make 0 1_500_000)
      sinks
  in
  (tree, buf)

(* ---------- random edit sequences ---------- *)

let pick_node rng tree pred =
  let n = Tree.size tree in
  let rec go k =
    if k = 0 then None
    else
      let id = Suite.Rng.int rng n in
      if pred (Tree.node tree id) then Some id else go (k - 1)
  in
  go 64

(* Apply one random mutation through the public mutators; returns whether
   anything was edited. [structural] admits node-creating edits. *)
let random_edit ~structural rng tree buf =
  let wires nd = nd.Tree.parent >= 0 in
  let kinds = if structural then 6 else 4 in
  match Suite.Rng.int rng kinds with
  | 0 -> (
    match pick_node rng tree wires with
    | Some id ->
      Tree.set_snake tree id
        ((Tree.node tree id).Tree.snake + 1_000 + Suite.Rng.int rng 20_000);
      true
    | None -> false)
  | 1 -> (
    match
      pick_node rng tree (fun nd -> wires nd && nd.Tree.wire_class > 0)
    with
    | Some id ->
      Tree.set_wire_class tree id ((Tree.node tree id).Tree.wire_class - 1);
      true
    | None -> false)
  | 2 -> (
    match pick_node rng tree wires with
    | Some id ->
      Tree.set_geom_len tree id
        ((Tree.node tree id).Tree.geom_len + 1 + Suite.Rng.int rng 5_000);
      true
    | None -> false)
  | 3 -> (
    match
      pick_node rng tree (fun nd ->
          match nd.Tree.kind with Tree.Buffer _ -> true | _ -> false)
    with
    | Some id -> (
      match (Tree.node tree id).Tree.kind with
      | Tree.Buffer b ->
        Tree.set_buffer tree id (Tech.Composite.scale b 1.15);
        true
      | _ -> false)
    | None -> false)
  | 4 -> (
    match
      pick_node rng tree (fun nd -> wires nd && Tree.wire_len nd >= 2_000)
    with
    | Some id ->
      let len = Tree.wire_len (Tree.node tree id) in
      ignore (Tree.split_wire tree id ~at:(1 + Suite.Rng.int rng (len - 1)));
      true
    | None -> false)
  | _ -> (
    match
      pick_node rng tree (fun nd -> wires nd && Tree.wire_len nd >= 2_000)
    with
    | Some id ->
      let len = Tree.wire_len (Tree.node tree id) in
      ignore
        (Tree.insert_buffer_on_wire tree id
           ~at:(1 + Suite.Rng.int rng (len - 1))
           ~buf);
      true
    | None -> false)

(* ---------- journal: rollback exactness + replay ---------- *)

let test_journal_rollback_random () =
  let base, buf = initial_tree () in
  let rng = Suite.Rng.create 99 in
  for _trial = 1 to 25 do
    let tree = Tree.copy base in
    let oracle = Tree.copy tree in
    let rev0 = Tree.revision tree in
    let j = Tree.Journal.start tree in
    let edits = ref 0 in
    for _ = 1 to 1 + Suite.Rng.int rng 8 do
      if random_edit ~structural:true rng tree buf then incr edits
    done;
    let mutated = Tree.digest tree in
    check_bool "journal stayed consistent" true (Tree.Journal.consistent j);
    Tree.Journal.rollback j;
    check_int "size restored" (Tree.size oracle) (Tree.size tree);
    check_bool "rollback restores exact content" true
      (Tree.digest tree = Tree.digest oracle);
    check_bool "rollback advances the revision (memo safety)" true
      (Tree.revision tree > rev0 || !edits = 0);
    (* The redo log replays the exact mutated content onto any
       content-identical tree — the mechanism behind Speculate.commit. *)
    if mutated <> Tree.digest oracle then begin
      Tree.Journal.replay j ~onto:oracle;
      check_bool "replay reproduces the edits" true
        (Tree.digest oracle = mutated)
    end
  done

let test_journal_value_only_hint () =
  let tree, _ = initial_tree () in
  let s = (Tree.sinks tree).(0) in
  let rev = Tree.revision tree in
  let j = Tree.Journal.start tree in
  Tree.set_snake tree s ((Tree.node tree s).Tree.snake + 7_000);
  (match Core.Speculate.hint_of_journal j with
  | Some h ->
    check_int "hint base revision" rev h.Ev.base_revision;
    check_bool "hint covers the touched node" true (List.mem s h.Ev.nodes)
  | None -> Alcotest.fail "value edit must yield a dirty hint");
  Tree.Journal.rollback j;
  let j2 = Tree.Journal.start tree in
  let w =
    match
      pick_node (Suite.Rng.create 7) tree (fun nd ->
          nd.Tree.parent >= 0 && Tree.wire_len nd >= 2_000)
    with
    | Some id -> id
    | None -> Alcotest.fail "no splittable wire"
  in
  ignore (Tree.split_wire tree w ~at:1_000);
  check_bool "structural edit yields no hint" true
    (Core.Speculate.hint_of_journal j2 = None);
  Tree.Journal.rollback j2

(* ---------- Ivc.attempt: no tree copies on the hot path ---------- *)

let test_attempt_no_copy () =
  let tree, _ = initial_tree () in
  let baseline = Ev.evaluate ~engine:Ev.Spice tree in
  let worsen t =
    let s = (Tree.sinks t).(0) in
    Tree.set_snake t s ((Tree.node t s).Tree.snake + 3_000_000)
  in
  let c0 = Tree.copies () in
  let r =
    Core.Ivc.attempt config tree ~baseline ~objective:Core.Ivc.Skew worsen
  in
  check_bool "worsening candidate rejected" true (Result.is_error r);
  ignore
    (Core.Ivc.speculate config tree ~baseline ~objective:Core.Ivc.Skew
       [| worsen; worsen |]);
  check_int "journaled attempts never copy the tree" c0 (Tree.copies ());
  (* The legacy mode is the one that snapshots. *)
  let legacy = { config with Core.Config.speculation = -1 } in
  ignore
    (Core.Ivc.attempt legacy tree ~baseline ~objective:Core.Ivc.Skew worsen);
  check_bool "legacy mode snapshots" true (Tree.copies () > c0)

(* A candidate that writes a node field directly bypasses the journal;
   on the main lane there is no replica to resync from, so the search
   must refuse loudly instead of leaving the tree corrupted. *)
let test_serial_bypass_raises () =
  let tree, _ = initial_tree () in
  let baseline = Ev.evaluate ~engine:Ev.Spice tree in
  let bypass t =
    let s = (Tree.sinks t).(0) in
    (Tree.node t s).Tree.snake <- (Tree.node t s).Tree.snake + 1_000;
    Tree.touch t
  in
  check_bool "journal bypass on the main lane raises" true
    (match
       Core.Ivc.speculate config tree ~baseline ~objective:Core.Ivc.Skew
         [| bypass |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- incremental dirty-set fast path ---------- *)

let test_dirty_refresh_agreement () =
  let tree, _ = initial_tree () in
  let s = Ev.Incremental.create ~engine:Ev.Spice tree in
  let hooks =
    { Core.Speculate.eval =
        (fun ?edits t -> Ev.Incremental.refresh ?edits ~tree:t s);
      note =
        (fun ~edits ~new_revision ->
          Ev.Incremental.note_edits s ~edits ~new_revision) }
  in
  let config = { config with Core.Config.evaluator = Some hooks } in
  ignore (Core.Ivc.evaluate config tree);
  let sk = (Tree.sinks tree).(0) in
  let j = Tree.Journal.start tree in
  Tree.set_snake tree sk ((Tree.node tree sk).Tree.snake + 500_000);
  let ev = Core.Ivc.evaluate ~journal:j config tree in
  let st = Ev.Incremental.stats s in
  check_bool "dirty fast path engaged" true (st.Ev.dirty_refreshes >= 1);
  let scratch = Ev.evaluate ~engine:Ev.Spice tree in
  check_near 1e-9 "hinted refresh = from-scratch skew" scratch.Ev.skew
    ev.Ev.skew;
  check_near 1e-9 "hinted refresh = from-scratch clr" scratch.Ev.clr ev.Ev.clr;
  (* The rollback is reported through note_edits, so the anchor chain
     survives and the next refresh is dirty too — not a full extraction. *)
  Core.Ivc.rollback config tree j;
  let ev2 = Core.Ivc.evaluate config tree in
  let scratch2 = Ev.evaluate ~engine:Ev.Spice tree in
  check_near 1e-9 "post-rollback refresh = from-scratch" scratch2.Ev.skew
    ev2.Ev.skew;
  let st2 = Ev.Incremental.stats s in
  check_bool "rollback kept the anchor chain" true
    (st2.Ev.dirty_refreshes >= 2)

(* ---------- speculation width determinism ---------- *)

let test_width_determinism () =
  let b = Suite.Runner.load_bench "ti:200" in
  let run width =
    let config = { Core.Config.default with Core.Config.speculation = width } in
    let r0 = Ev.eval_count () in
    let r =
      Core.Flow.run ~config ~tech:b.Suite.Format_io.tech
        ~source:b.Suite.Format_io.source
        ~obstacles:b.Suite.Format_io.obstacles b.Suite.Format_io.sinks
    in
    (r, Ev.eval_count () - r0)
  in
  let r1, e1 = run 1 in
  let r4, e4 = run 4 in
  check_near 0. "final skew identical at widths 1 and 4"
    r1.Core.Flow.final.Ev.skew r4.Core.Flow.final.Ev.skew;
  check_near 0. "final CLR identical" r1.Core.Flow.final.Ev.clr
    r4.Core.Flow.final.Ev.clr;
  check_bool "final trees bit-identical" true
    (Tree.digest r1.Core.Flow.tree = Tree.digest r4.Core.Flow.tree);
  (* Serial exploration stops at each round's winner; wider runs may
     additionally evaluate (and discard) losing ladder rungs. *)
  check_bool "serial evaluates no more than width 4" true (e1 <= e4)

(* ---------- monotonic deadline ---------- *)

let test_monoclock_and_deadline () =
  let t1 = Core.Monoclock.now () in
  let acc = ref 0. in
  for i = 1 to 10_000 do
    acc := !acc +. float_of_int i
  done;
  let t2 = Core.Monoclock.now () in
  check_bool "monotonic non-decreasing" true (t2 >= t1 && !acc > 0.);
  let tree, _ = initial_tree () in
  let expired =
    { config with Core.Config.deadline = Some (Core.Monoclock.now () -. 1.) }
  in
  check_bool "expired deadline raises" true
    (match Core.Ivc.evaluate expired tree with
    | exception Core.Ivc.Deadline_exceeded -> true
    | _ -> false)

let () =
  Alcotest.run "speculate"
    [
      ( "journal",
        [
          Alcotest.test_case "random rollback vs copy oracle" `Quick
            test_journal_rollback_random;
          Alcotest.test_case "value-only hint" `Quick
            test_journal_value_only_hint;
        ] );
      ( "ivc",
        [
          Alcotest.test_case "no copies on attempt path" `Quick
            test_attempt_no_copy;
          Alcotest.test_case "journal bypass raises" `Quick
            test_serial_bypass_raises;
          Alcotest.test_case "dirty refresh agreement" `Quick
            test_dirty_refresh_agreement;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "width 4 = width 1" `Quick test_width_determinism;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "monoclock + expiry" `Quick
            test_monoclock_and_deadline;
        ] );
    ]
