(* Checkpoint/resume + degraded-mode retry: canonical tree serialization
   round-trips (including snakes, routes, rescaled buffers, polarity
   inverters), malformed-input fuzzing (Tree.of_string and
   Format_io.of_string never raise), atomic checksummed persistence,
   Flow.Checkpoint save/load, kill-and-resume bit-identity of the full
   flow, and the Numerical_failure → degraded-retry recovery path. *)

open Geometry
module Tree = Ctree.Tree
module Ev = Analysis.Evaluator
module Flow = Core.Flow

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let tech = Tech.default45 ()
let config = { Core.Config.default with Core.Config.max_rounds = 30 }

(* Mixed parities force polarity-correcting inverters into the tree. *)
let random_sinks seed n span =
  let rng = Suite.Rng.create seed in
  Array.init n (fun i ->
      { Dme.Zst.pos =
          Point.make (Suite.Rng.int rng span) (Suite.Rng.int rng span);
        cap = 5. +. (Suite.Rng.float rng *. 25.); parity = i mod 2;
        label = Printf.sprintf "s%d" i })

let initial_tree ?(seed = 4242) () =
  let sinks = random_sinks seed 30 3_000_000 in
  let tree, buf, _, _ =
    Core.Flow.initial_tree ~config ~tech ~source:(Point.make 0 1_500_000)
      sinks
  in
  (tree, buf)

let pick_node rng tree pred =
  let n = Tree.size tree in
  let rec go k =
    if k = 0 then None
    else
      let id = Suite.Rng.int rng n in
      if pred (Tree.node tree id) then Some id else go (k - 1)
  in
  go 64

(* One random mutation through the public mutators, covering every field
   the serializer writes: snakes, wire classes, geometry, buffer
   rescales, wire splits, buffer insertion and explicit Z-routes. *)
let random_edit rng tree buf =
  let wires nd = nd.Tree.parent >= 0 in
  (* Geometry-changing edits must skip explicitly routed wires: Validate
     requires the polyline length to equal geom_len exactly. *)
  let routeless nd = wires nd && nd.Tree.route = [] in
  match Suite.Rng.int rng 7 with
  | 0 -> (
    match pick_node rng tree wires with
    | Some id ->
      Tree.set_snake tree id
        ((Tree.node tree id).Tree.snake + 1_000 + Suite.Rng.int rng 20_000)
    | None -> ())
  | 1 -> (
    match
      pick_node rng tree (fun nd -> wires nd && nd.Tree.wire_class > 0)
    with
    | Some id ->
      Tree.set_wire_class tree id ((Tree.node tree id).Tree.wire_class - 1)
    | None -> ())
  | 2 -> (
    match pick_node rng tree routeless with
    | Some id ->
      Tree.set_geom_len tree id
        ((Tree.node tree id).Tree.geom_len + 1 + Suite.Rng.int rng 5_000)
    | None -> ())
  | 3 -> (
    match
      pick_node rng tree (fun nd ->
          match nd.Tree.kind with Tree.Buffer _ -> true | _ -> false)
    with
    | Some id -> (
      match (Tree.node tree id).Tree.kind with
      | Tree.Buffer b -> Tree.set_buffer tree id (Tech.Composite.scale b 1.15)
      | _ -> ())
    | None -> ())
  | 4 -> (
    match
      pick_node rng tree (fun nd -> routeless nd && Tree.wire_len nd >= 2_000)
    with
    | Some id ->
      let len = Tree.wire_len (Tree.node tree id) in
      ignore (Tree.split_wire tree id ~at:(1 + Suite.Rng.int rng (len - 1)))
    | None -> ())
  | 5 -> (
    match
      pick_node rng tree (fun nd -> routeless nd && Tree.wire_len nd >= 2_000)
    with
    | Some id ->
      let len = Tree.wire_len (Tree.node tree id) in
      ignore
        (Tree.insert_buffer_on_wire tree id
           ~at:(1 + Suite.Rng.int rng (len - 1))
           ~buf)
    | None -> ())
  | _ -> (
    (* Explicit Z-route through a random middle x; geom_len updated to
       the polyline length so Validate stays green. *)
    match pick_node rng tree wires with
    | Some id ->
      let nd = Tree.node tree id in
      let p = (Tree.node tree nd.Tree.parent).Tree.pos in
      let q = nd.Tree.pos in
      let m = Suite.Rng.int rng 3_000_000 in
      let route =
        [ p; Point.make m p.Point.y; Point.make m q.Point.y; q ]
      in
      let len =
        abs (m - p.Point.x) + abs (q.Point.y - p.Point.y)
        + abs (q.Point.x - m)
      in
      Tree.set_geom_len tree id len;
      Tree.set_route tree id route
    | None -> ())

(* ---------- serialization round-trip ---------- *)

let test_roundtrip_random () =
  let base, buf = initial_tree () in
  let rng = Suite.Rng.create 2024 in
  for trial = 1 to 20 do
    let tree = Tree.copy base in
    for _ = 1 to Suite.Rng.int rng 25 do
      random_edit rng tree buf
    done;
    Alcotest.(check (list string))
      (Printf.sprintf "trial %d stays valid" trial)
      [] (Ctree.Validate.check tree);
    let text = Tree.to_string tree in
    match Tree.of_string ~tech text with
    | Error e -> Alcotest.failf "trial %d failed to parse: %s" trial e
    | Ok back ->
      check_bool
        (Printf.sprintf "trial %d digest round-trips" trial)
        true
        (Tree.digest back = Tree.digest tree);
      check_string
        (Printf.sprintf "trial %d reserialization is canonical" trial)
        text (Tree.to_string back)
  done

let test_roundtrip_labels () =
  (* Labels with spaces, %, unicode bytes and an empty label survive the
     percent-escaping. *)
  let tree = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let labels = [ "plain"; "with space"; "100%"; "caf\xc3\xa9"; "" ] in
  List.iteri
    (fun i label ->
      ignore
        (Tree.add_node tree
           ~kind:(Tree.Sink { cap = 7.5 +. float_of_int i; parity = i land 1;
                              label })
           ~pos:(Point.make (10_000 * (i + 1)) 20_000)
           ~parent:0 ()))
    labels;
  match Tree.of_string ~tech (Tree.to_string tree) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok back ->
    let back_labels =
      Array.to_list (Tree.sinks back)
      |> List.map (fun id ->
             match (Tree.node back id).Tree.kind with
             | Tree.Sink s -> s.Tree.label
             | _ -> assert false)
    in
    Alcotest.(check (list string)) "labels survive" labels back_labels;
    check_bool "digest" true (Tree.digest back = Tree.digest tree)

(* ---------- malformed-input fuzz ---------- *)

(* Random corruptions of valid output must yield Ok or Error, never an
   exception — of_string is the attack surface of checkpoint loading. *)
let test_tree_of_string_fuzz () =
  let tree, _ = initial_tree () in
  let text = Tree.to_string tree in
  let n = String.length text in
  let rng = Suite.Rng.create 31337 in
  for _ = 1 to 400 do
    let mutated =
      match Suite.Rng.int rng 4 with
      | 0 -> String.sub text 0 (Suite.Rng.int rng n)  (* truncate *)
      | 1 ->
        (* flip one byte *)
        let b = Bytes.of_string text in
        Bytes.set b (Suite.Rng.int rng n)
          (Char.chr (Suite.Rng.int rng 256));
        Bytes.to_string b
      | 2 ->
        (* drop one line *)
        let lines = String.split_on_char '\n' text in
        let k = Suite.Rng.int rng (List.length lines) in
        String.concat "\n" (List.filteri (fun i _ -> i <> k) lines)
      | _ ->
        (* duplicate one line *)
        let lines = String.split_on_char '\n' text in
        let k = Suite.Rng.int rng (List.length lines) in
        String.concat "\n"
          (List.concat_map
             (fun (i, l) -> if i = k then [ l; l ] else [ l ])
             (List.mapi (fun i l -> (i, l)) lines))
    in
    match Tree.of_string ~tech mutated with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "of_string raised %s on %S" (Printexc.to_string e)
        (String.sub mutated 0 (min 200 (String.length mutated)))
  done

let test_format_io_fuzz () =
  let b = Suite.Gen_grid.generate ~n:3 () in
  let text = Suite.Format_io.to_string b in
  let n = String.length text in
  let rng = Suite.Rng.create 777 in
  for _ = 1 to 300 do
    let mutated =
      match Suite.Rng.int rng 3 with
      | 0 -> String.sub text 0 (Suite.Rng.int rng n)
      | 1 ->
        let b = Bytes.of_string text in
        Bytes.set b (Suite.Rng.int rng n)
          (Char.chr (Suite.Rng.int rng 256));
        Bytes.to_string b
      | _ ->
        let garbage =
          String.init (Suite.Rng.int rng 40) (fun _ ->
              Char.chr (32 + Suite.Rng.int rng 95))
        in
        text ^ garbage ^ "\n"
    in
    match Suite.Format_io.of_string ~name:"fuzz" mutated with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "Format_io.of_string raised %s" (Printexc.to_string e)
  done

let test_read_file_diagnostics () =
  let path = Filename.temp_file "contango_bad" ".cts" in
  let oc = open_out path in
  output_string oc "chip 0 0 100 100\nsource 0 0\nsink a 1 1 notanumber\n";
  close_out oc;
  (match Suite.Format_io.read_file path with
  | Ok _ -> Alcotest.fail "bad benchmark parsed"
  | Error e ->
    check_bool
      (Printf.sprintf "error %S carries path:line" e)
      true
      (let prefix = path ^ ":3:" in
       String.length e >= String.length prefix
       && String.sub e 0 (String.length prefix) = prefix));
  Sys.remove path;
  match Suite.Format_io.read_file "/nonexistent/contango.cts" with
  | Ok _ -> Alcotest.fail "missing file parsed"
  | Error _ -> ()

(* ---------- atomic checksummed persistence ---------- *)

let test_persist () =
  let dir = Filename.temp_file "contango_persist" "" in
  Sys.remove dir;
  Core.Persist.mkdir_p (Filename.concat dir "sub");
  let path = Filename.concat dir "sub/data.txt" in
  let payload = "hello\ncheckpoint\n" in
  Core.Persist.write_atomic_checked path payload;
  (match Core.Persist.read_checked path with
  | Ok s -> check_string "payload round-trips" payload s
  | Error e -> Alcotest.failf "read_checked: %s" e);
  (* overwrite is atomic-replace, not append *)
  Core.Persist.write_atomic_checked path "v2";
  (match Core.Persist.read_checked path with
  | Ok s -> check_string "overwrite" "v2" s
  | Error e -> Alcotest.failf "read_checked after overwrite: %s" e);
  (* no leftover temp files *)
  check_int "no temp litter" 1
    (Array.length (Sys.readdir (Filename.concat dir "sub")));
  (* corruption is detected *)
  let raw =
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  in
  let b = Bytes.of_string raw in
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b);
  (match Core.Persist.read_checked path with
  | Ok _ -> Alcotest.fail "corrupted file passed the checksum"
  | Error _ -> ());
  (match Core.Persist.read_checked (Filename.concat dir "absent") with
  | Ok _ -> Alcotest.fail "missing file read"
  | Error _ -> ())

(* ---------- Flow.Checkpoint save/load ---------- *)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Core.Persist.mkdir_p d;
  d

let test_checkpoint_save_load () =
  let tree, buf = initial_tree () in
  let dir = temp_dir "contango_ckpt" in
  let polarity = { Core.Polarity.inverted_before = 3; added = 2 } in
  let repair =
    Some
      { Route.Repair.bend_flips = 1; detours = 2; drivable_skips = 3;
        reroutes = 4; remaining_overlap = 5 }
  in
  let metas =
    [ { Flow.m_step = Flow.Initial; m_skew = 12.5; m_clr = 14.25;
        m_t_max = 200.0625; m_slew_waived = false; m_cap_waived = false };
      { Flow.m_step = Flow.Tbsz; m_skew = 3.5; m_clr = 4.75;
        m_t_max = 150.125; m_slew_waived = true; m_cap_waived = false } ]
  in
  Flow.Checkpoint.save ~dir ~step:Flow.Tbsz ~tree ~buf ~polarity ~repair
    ~metas;
  (match Flow.Checkpoint.load_latest ~tech ~dir with
  | None -> Alcotest.fail "no checkpoint loaded"
  | Some l ->
    check_bool "step" true (l.Flow.Checkpoint.ck_step = Flow.Tbsz);
    check_bool "tree digest" true
      (Tree.digest l.Flow.Checkpoint.ck_tree = Tree.digest tree);
    check_bool "buf" true
      (Tech.Composite.equal l.Flow.Checkpoint.ck_buf buf);
    check_int "polarity inverted_before" 3
      l.Flow.Checkpoint.ck_polarity.Core.Polarity.inverted_before;
    check_int "polarity added" 2
      l.Flow.Checkpoint.ck_polarity.Core.Polarity.added;
    (match l.Flow.Checkpoint.ck_repair with
    | Some r ->
      check_int "repair reroutes" 4 r.Route.Repair.reroutes;
      check_int "repair overlap" 5 r.Route.Repair.remaining_overlap
    | None -> Alcotest.fail "repair lost");
    check_int "metas" 2 (List.length l.Flow.Checkpoint.ck_metas);
    let m2 = List.nth l.Flow.Checkpoint.ck_metas 1 in
    check_bool "meta step" true (m2.Flow.m_step = Flow.Tbsz);
    check_bool "meta skew bit-exact" true
      (Int64.bits_of_float m2.Flow.m_skew = Int64.bits_of_float 3.5);
    check_bool "meta waived flags" true
      (m2.Flow.m_slew_waived && not m2.Flow.m_cap_waived));
  (* A corrupted later checkpoint degrades load_latest to the earlier
     one instead of failing it. *)
  Flow.Checkpoint.save ~dir ~step:Flow.Twsz ~tree ~buf ~polarity ~repair
    ~metas;
  let twsz = Flow.Checkpoint.path ~dir Flow.Twsz in
  Out_channel.with_open_bin twsz (fun oc ->
      Out_channel.output_string oc "garbage");
  match Flow.Checkpoint.load_latest ~tech ~dir with
  | Some l -> check_bool "degraded" true (l.Flow.Checkpoint.ck_step = Flow.Tbsz)
  | None -> Alcotest.fail "corrupt later checkpoint killed the resume"

(* ---------- kill-and-resume bit-identity ---------- *)

let flow_config =
  { Core.Config.default with
    Core.Config.max_rounds = 25;
    speculation = 1 }

let run_flow ?checkpoint_dir ?(resume = false) sinks =
  Flow.run ~config:flow_config ?checkpoint_dir ~resume ~tech
    ~source:(Point.make 0 1_500_000) sinks

let test_resume_equivalence () =
  let sinks = random_sinks 909 25 2_000_000 in
  let full_dir = temp_dir "contango_full" in
  let a = run_flow ~checkpoint_dir:full_dir sinks in
  check_int "no incidents in the clean run" 0 (List.length a.Flow.incidents);
  (* every stage checkpointed *)
  List.iter
    (fun s ->
      check_bool
        (Flow.step_name s ^ " checkpointed")
        true
        (Sys.file_exists (Flow.Checkpoint.path ~dir:full_dir s)))
    [ Flow.Initial; Flow.Tbsz; Flow.Twsz; Flow.Twsn; Flow.Bwsn ];
  (* Simulate a SIGKILL after a prefix of stages by copying only those
     checkpoint files, then resume and compare bit-exactly. *)
  let copy src dst =
    let data =
      In_channel.with_open_bin src (fun ic -> In_channel.input_all ic)
    in
    Out_channel.with_open_bin dst (fun oc ->
        Out_channel.output_string oc data)
  in
  List.iter
    (fun kept ->
      let dir = temp_dir "contango_resume" in
      List.iter
        (fun s ->
          copy
            (Flow.Checkpoint.path ~dir:full_dir s)
            (Flow.Checkpoint.path ~dir s))
        kept;
      let b = run_flow ~checkpoint_dir:dir ~resume:true sinks in
      check_bool "resumed tree is bit-identical" true
        (Tree.digest b.Flow.tree = Tree.digest a.Flow.tree);
      check_bool "skew bit-identical" true
        (Int64.bits_of_float b.Flow.final.Ev.skew
        = Int64.bits_of_float a.Flow.final.Ev.skew);
      check_bool "clr bit-identical" true
        (Int64.bits_of_float b.Flow.final.Ev.clr
        = Int64.bits_of_float a.Flow.final.Ev.clr);
      check_int "full trace replayed" 5 (List.length b.Flow.trace))
    [ [ Flow.Initial ]; [ Flow.Initial; Flow.Tbsz; Flow.Twsz ] ];
  (* Resume with an empty directory = plain run from scratch. *)
  let empty = temp_dir "contango_empty" in
  let c = run_flow ~checkpoint_dir:empty ~resume:true sinks in
  check_bool "scratch resume identical" true
    (Tree.digest c.Flow.tree = Tree.digest a.Flow.tree)

(* ---------- Numerical_failure + degraded-mode retry ---------- *)

let test_numerical_failure_raised () =
  (* A NaN sink cap poisons the path-resistance moments; the Arnoldi
     engine must refuse (typed failure), not return NaN skew. *)
  let tree = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  ignore
    (Tree.add_node tree
       ~kind:(Tree.Sink { cap = nan; parity = 0; label = "bad" })
       ~pos:(Point.make 50_000 0) ~parent:0 ());
  match Ev.evaluate ~engine:Ev.Arnoldi tree with
  | _ -> Alcotest.fail "NaN cap evaluated without a Numerical_failure"
  | exception Analysis.Numerics.Numerical_failure _ -> ()

let test_degraded_retry () =
  let sinks = random_sinks 606 25 2_000_000 in
  let config =
    { flow_config with Core.Config.inject_numerical_failures = 1 }
  in
  let seen = ref [] in
  let r =
    Flow.run ~config ~on_incident:(fun i -> seen := i :: !seen) ~tech
      ~source:(Point.make 0 1_500_000) sinks
  in
  (* The injected failure fired after INITIAL, was retried in degraded
     mode, and the flow still completed with a valid tree. *)
  check_bool "incident recorded" true (List.length r.Flow.incidents >= 1);
  check_int "on_incident streamed" (List.length r.Flow.incidents)
    (List.length !seen);
  let first = List.hd r.Flow.incidents in
  check_string "action" "retry-degraded" first.Flow.inc_action;
  check_int "first attempt" 0 first.Flow.inc_attempt;
  check_bool "injection named in the error" true
    (let e = first.Flow.inc_error in
     let needle = "injected" in
     let rec go i =
       i + String.length needle <= String.length e
       && (String.sub e i (String.length needle) = needle || go (i + 1))
     in
     go 0);
  Alcotest.(check (list string)) "final tree valid" []
    (Ctree.Validate.check r.Flow.tree);
  check_int "all five steps completed" 5 (List.length r.Flow.trace);
  check_bool "skew finite" true (Float.is_finite r.Flow.final.Ev.skew)

let test_retries_exhausted () =
  let sinks = random_sinks 303 25 2_000_000 in
  let config =
    { flow_config with Core.Config.inject_numerical_failures = 10 }
  in
  match
    Flow.run ~config ~tech ~source:(Point.make 0 1_500_000) sinks
  with
  | _ -> Alcotest.fail "10 injected failures survived 2 retries"
  | exception Analysis.Numerics.Numerical_failure _ -> ()

let () =
  Alcotest.run "checkpoint"
    [
      ("serialize",
       [
         Alcotest.test_case "random round-trip" `Quick test_roundtrip_random;
         Alcotest.test_case "label escaping" `Quick test_roundtrip_labels;
         Alcotest.test_case "tree fuzz" `Quick test_tree_of_string_fuzz;
       ]);
      ("format_io",
       [
         Alcotest.test_case "fuzz" `Quick test_format_io_fuzz;
         Alcotest.test_case "diagnostics" `Quick test_read_file_diagnostics;
       ]);
      ("persist",
       [ Alcotest.test_case "atomic + checksum" `Quick test_persist ]);
      ("checkpoint",
       [
         Alcotest.test_case "save/load" `Quick test_checkpoint_save_load;
         Alcotest.test_case "resume equivalence" `Slow
           test_resume_equivalence;
       ]);
      ("recovery",
       [
         Alcotest.test_case "numerical failure typed" `Quick
           test_numerical_failure_raised;
         Alcotest.test_case "degraded retry" `Slow test_degraded_retry;
         Alcotest.test_case "retries exhausted" `Quick
           test_retries_exhausted;
       ]);
    ]
