(* Incremental-evaluation correctness: the session API must be bit-for-bit
   interchangeable with from-scratch evaluation through arbitrary edit
   sequences — the cache-correctness oracle — plus regression tests for
   the corner-identity and probe bugs fixed alongside it. *)

open Geometry
module Tree = Ctree.Tree
module Ev = Analysis.Evaluator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_near tol = Alcotest.(check (float tol))

let tech = Tech.default45 ()
let buf8 = Tech.Composite.make Tech.Device.small_inverter 8

(* Source → buffer → branch point → two buffered subtrees, four sinks:
   enough stages that localized edits leave most of the tree untouched. *)
let rich_tree () =
  let t = Tree.create ~tech ~source_pos:(Point.make 0 0) in
  let a =
    Tree.add_node t ~kind:(Tree.Buffer buf8) ~pos:(Point.make 300_000 0)
      ~parent:(Tree.root t) ()
  in
  let mid =
    Tree.add_node t ~kind:Tree.Internal ~pos:(Point.make 600_000 0) ~parent:a ()
  in
  let b =
    Tree.add_node t ~kind:(Tree.Buffer buf8) ~pos:(Point.make 900_000 0)
      ~parent:mid ()
  in
  let c =
    Tree.add_node t ~kind:(Tree.Buffer buf8) ~pos:(Point.make 600_000 300_000)
      ~parent:mid ()
  in
  let sink label pos parent =
    ignore
      (Tree.add_node t ~kind:(Tree.Sink { Tree.cap = 15.; parity = 0; label })
         ~pos ~parent ())
  in
  sink "s1" (Point.make 1_200_000 0) b;
  sink "s2" (Point.make 900_000 300_000) b;
  sink "s3" (Point.make 600_000 600_000) c;
  sink "s4" (Point.make 900_000 450_000) c;
  t

let same_float a b =
  (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) <= 1e-9

let check_same_eval label (fresh : Ev.t) (inc : Ev.t) =
  let ok = ref true in
  let expect cond = if not cond then ok := false in
  expect (same_float fresh.Ev.skew inc.Ev.skew);
  expect (same_float fresh.Ev.skew_rise inc.Ev.skew_rise);
  expect (same_float fresh.Ev.skew_fall inc.Ev.skew_fall);
  expect (same_float fresh.Ev.clr inc.Ev.clr);
  expect (same_float fresh.Ev.t_min inc.Ev.t_min);
  expect (same_float fresh.Ev.t_max inc.Ev.t_max);
  expect (fresh.Ev.slew_violations = inc.Ev.slew_violations);
  expect (fresh.Ev.cap_ok = inc.Ev.cap_ok);
  expect (List.length fresh.Ev.runs = List.length inc.Ev.runs);
  List.iter2
    (fun (fr : Ev.run) (ir : Ev.run) ->
      expect (fr.Ev.corner.Tech.Corner.name = ir.Ev.corner.Tech.Corner.name);
      expect (fr.Ev.transition = ir.Ev.transition);
      expect (Array.length fr.Ev.latency = Array.length ir.Ev.latency);
      Array.iteri
        (fun i l -> expect (same_float l ir.Ev.latency.(i)))
        fr.Ev.latency;
      Array.iteri (fun i s -> expect (same_float s ir.Ev.slew.(i))) fr.Ev.slew)
    fresh.Ev.runs inc.Ev.runs;
  check_bool label true !ok

(* Apply one random structural or electrical edit. *)
let random_edit rng tree =
  let n_wires = Array.length tech.Tech.wires in
  let pick_wire_node () =
    (* any non-root node *)
    1 + Random.State.int rng (Tree.size tree - 1)
  in
  match Random.State.int rng 5 with
  | 0 ->
    let id = pick_wire_node () in
    Tree.set_snake tree id (Random.State.int rng 60_000)
  | 1 ->
    let id = pick_wire_node () in
    Tree.set_wire_class tree id (Random.State.int rng n_wires)
  | 2 -> (
    (* rescale a random existing buffer *)
    let bufs = Tree.buffer_ids tree in
    match Array.length bufs with
    | 0 -> ()
    | nb -> (
      let id = bufs.(Random.State.int rng nb) in
      match (Tree.node tree id).Tree.kind with
      | Tree.Buffer b ->
        let f = 0.5 +. Random.State.float rng 1.5 in
        Tree.set_buffer tree id (Tech.Composite.scale b f)
      | _ -> ()))
  | 3 ->
    (* insert a buffer mid-wire when the wire is long enough *)
    let id = pick_wire_node () in
    let nd = Tree.node tree id in
    if nd.Tree.geom_len > 20_000 then
      ignore
        (Tree.insert_buffer_on_wire tree id
           ~at:(10_000 + Random.State.int rng (nd.Tree.geom_len - 20_000))
           ~buf:buf8)
  | _ -> (
    (* remove a buffer, but keep at least two so stages remain *)
    let bufs = Tree.buffer_ids tree in
    if Array.length bufs > 2 then
      Tree.remove_buffer tree bufs.(Random.State.int rng (Array.length bufs)))

let oracle_for engine () =
  let tree = rich_tree () in
  let seg_len = 30_000 in
  let session = Ev.Incremental.create ~engine ~seg_len tree in
  let rng = Random.State.make [| 42 |] in
  let fresh0 = Ev.evaluate ~engine ~seg_len tree in
  check_same_eval "initial refresh matches evaluate" fresh0
    (Ev.Incremental.refresh session);
  for i = 1 to 25 do
    random_edit rng tree;
    let fresh = Ev.evaluate ~engine ~seg_len tree in
    let inc = Ev.Incremental.refresh session in
    check_same_eval (Printf.sprintf "edit %d matches" i) fresh inc
  done;
  let st = Ev.Incremental.stats session in
  check_bool "cache produced hits" true (st.Ev.hits > 0)

let test_oracle_spice () = oracle_for Ev.Spice ()
let test_oracle_arnoldi () = oracle_for Ev.Arnoldi ()

let test_refresh_after_copy_and_compact () =
  (* ?tree rebinding: caches are content-keyed, so a compacted clone (new
     node numbering) must still evaluate identically and mostly from
     cache. *)
  let tree = rich_tree () in
  let session = Ev.Incremental.create ~engine:Ev.Spice tree in
  ignore (Ev.Incremental.refresh session);
  let clone, _ = Tree.compact (Tree.copy tree) in
  let misses_before = (Ev.Incremental.stats session).Ev.misses in
  let inc = Ev.Incremental.refresh ~tree:clone session in
  let fresh = Ev.evaluate ~engine:Ev.Spice clone in
  check_same_eval "compacted clone matches" fresh inc;
  check_int "identical content re-solves nothing" misses_before
    (Ev.Incremental.stats session).Ev.misses

let test_parallel_matches_sequential () =
  let tree = rich_tree () in
  let seq = Ev.Incremental.create ~engine:Ev.Spice ~parallel:false tree in
  let par = Ev.Incremental.create ~engine:Ev.Spice ~parallel:true tree in
  check_same_eval "parallel = sequential"
    (Ev.Incremental.refresh seq)
    (Ev.Incremental.refresh par);
  Tree.set_snake tree 2 40_000;
  check_same_eval "after edit too"
    (Ev.Incremental.refresh seq)
    (Ev.Incremental.refresh par)

let test_fast_refresh_memo () =
  let tree = rich_tree () in
  let session = Ev.Incremental.create ~engine:Ev.Spice tree in
  ignore (Ev.Incremental.refresh session);
  ignore (Ev.Incremental.refresh session);
  ignore (Ev.Incremental.refresh session);
  let st = Ev.Incremental.stats session in
  check_int "3 refreshes" 3 st.Ev.refreshes;
  check_int "2 were memo hits" 2 st.Ev.fast_refreshes;
  (* Any mutation invalidates the memo... *)
  Tree.set_snake tree 2 10_000;
  ignore (Ev.Incremental.refresh session);
  check_int "edit forces a real refresh" 2
    (Ev.Incremental.stats session).Ev.fast_refreshes;
  (* ...including direct field writes flagged with [touch]. *)
  (Tree.node tree 2).Tree.snake <- 20_000;
  Tree.touch tree;
  let fresh = Ev.evaluate ~engine:Ev.Spice tree in
  check_same_eval "direct write + touch is seen" fresh
    (Ev.Incremental.refresh session)

let test_revision_counter () =
  let tree = rich_tree () in
  let r0 = Tree.revision tree in
  Tree.set_snake tree 2 1_000;
  check_bool "set_snake bumps" true (Tree.revision tree > r0);
  let r1 = Tree.revision tree in
  Tree.set_wire_class tree 2 0;
  Tree.set_buffer tree 1 buf8;
  ignore (Tree.insert_buffer_on_wire tree 2 ~at:50_000 ~buf:buf8);
  check_bool "mutators bump" true (Tree.revision tree >= r1 + 3);
  let copy = Tree.copy tree in
  check_int "copy preserves revision" (Tree.revision tree) (Tree.revision copy)

(* ---------- Engine agreement (satellite test) ---------- *)

let test_engines_agree_on_tree () =
  let tree = rich_tree () in
  let spice = Ev.evaluate ~engine:Ev.Spice tree in
  let arnoldi = Ev.evaluate ~engine:Ev.Arnoldi tree in
  let elmore = Ev.evaluate ~engine:Ev.Elmore_model tree in
  let rel a b = Float.abs (a -. b) /. Float.max b 1. in
  check_bool "arnoldi t_max within 12% of spice" true
    (rel arnoldi.Ev.t_max spice.Ev.t_max < 0.12);
  check_bool "arnoldi t_min within 12% of spice" true
    (rel arnoldi.Ev.t_min spice.Ev.t_min < 0.12);
  check_bool "elmore is pessimistic on latency" true
    (elmore.Ev.t_max > spice.Ev.t_max);
  (* Per-sink nominal latencies track between the accurate engines. *)
  let rs = Ev.nominal_run spice Ev.Rise and ra = Ev.nominal_run arnoldi Ev.Rise in
  Array.iter
    (fun s ->
      check_bool "per-sink latency tracks" true
        (rel ra.Ev.latency.(s) rs.Ev.latency.(s) < 0.12))
    spice.Ev.sinks

(* ---------- Corner structural identity (satellite bugfix) ---------- *)

let test_corner_structural_identity () =
  let tree = rich_tree () in
  let ev = Ev.evaluate ~engine:Ev.Arnoldi tree in
  (* Rebuild every run with a physically distinct but structurally equal
     corner record — with `==` matching this made nominal_run raise. *)
  let clone_corner (c : Tech.Corner.t) =
    { Tech.Corner.name = c.Tech.Corner.name; vdd = c.Tech.Corner.vdd;
      r_scale = c.Tech.Corner.r_scale; d_scale = c.Tech.Corner.d_scale }
  in
  let ev' =
    { ev with
      Ev.runs =
        List.map
          (fun (r : Ev.run) -> { r with Ev.corner = clone_corner r.Ev.corner })
          ev.Ev.runs }
  in
  let r = Ev.nominal_run ev' Ev.Rise in
  check_bool "nominal_run works on rebuilt corners" true
    (r.Ev.transition = Ev.Rise);
  let f = Ev.nominal_run ev' Ev.Fall in
  check_bool "fall too" true (f.Ev.transition = Ev.Fall)

(* ---------- Probe robustness (satellite bugfix) ---------- *)

let lumped_rc () =
  { Analysis.Rcnet.parent = [| -1; 0 |]; res = [| 0.; 1000. |];
    cap = [| 0.; 100. |]; taps = [| (1, Analysis.Rcnet.Tap_sink 7) |]; size = 2 }

let test_probe_unsorted_times () =
  let rc = lumped_rc () in
  let sorted = [| 50.; 100.; 200.; 400. |] in
  let shuffled = [| 200.; 50.; 400.; 100. |] in
  let vs =
    Analysis.Transient.probe ~step:0.05 rc ~r_drv:1e-3 ~s_drv:0.1 ~node:1
      ~times:sorted
  in
  let vu =
    Analysis.Transient.probe ~step:0.05 rc ~r_drv:1e-3 ~s_drv:0.1 ~node:1
      ~times:shuffled
  in
  check_near 1e-12 "t=200 matches" vs.(2) vu.(0);
  check_near 1e-12 "t=50 matches" vs.(0) vu.(1);
  check_near 1e-12 "t=400 matches" vs.(3) vu.(2);
  check_near 1e-12 "t=100 matches" vs.(1) vu.(3)

let test_probe_trailing_times () =
  (* tau = 100 ps: by t = 1500 ps the node has settled at ~1. Previously
     any probe time past the last crossing-driven step returned 0. *)
  let rc = lumped_rc () in
  let v =
    Analysis.Transient.probe ~step:0.05 rc ~r_drv:1e-3 ~s_drv:0.1 ~node:1
      ~times:[| 100.; 1500.; 1500.; 2000. |]
  in
  check_near 0.01 "settled value, not 0" 1.0 v.(1);
  check_near 1e-12 "duplicate trailing time" v.(1) v.(2);
  check_near 0.01 "far trailing time" 1.0 v.(3)

(* Regression: trace cache counters must be per-step deltas. The flow used
   to copy the session's cumulative totals into every entry, so later
   entries could only grow and summing the trace double-counted. With
   per-step deltas, a cheap step (TWSZ converges in a few rounds here)
   records fewer misses than the INITIAL full evaluation — impossible
   under the old cumulative semantics. *)
let test_trace_cache_deltas () =
  let b = Suite.Gen_grid.generate ~n:3 () in
  let config = { Core.Config.default with Core.Config.engine = Ev.Arnoldi } in
  let r =
    Core.Flow.run ~config ~tech:b.Suite.Format_io.tech
      ~source:b.Suite.Format_io.source b.Suite.Format_io.sinks
  in
  let trace = r.Core.Flow.trace in
  check_int "one entry per step" 5 (List.length trace);
  let initial = List.hd trace in
  check_int "first evaluation starts cold" 0 initial.Core.Flow.cache_hits;
  check_bool "INITIAL misses every stage" true
    (initial.Core.Flow.cache_misses > 0);
  check_bool "some later step records fewer misses than INITIAL" true
    (List.exists
       (fun (e : Core.Flow.trace_entry) ->
         e.Core.Flow.step <> Core.Flow.Initial
         && e.Core.Flow.cache_misses < initial.Core.Flow.cache_misses)
       trace);
  check_bool "later steps hit the cache" true
    (List.exists
       (fun (e : Core.Flow.trace_entry) -> e.Core.Flow.cache_hits > 0)
       trace)

(* Regression: the second-pass trigger threshold is configuration, not a
   hardcoded [skew > 5.]. Forcing the trigger (negative threshold) must
   run the TWSZ/TWSN/BWSN sequence again — strictly more evaluations than
   with the second pass disabled (infinite threshold). *)
let test_second_pass_threshold () =
  let b = Suite.Gen_grid.generate ~n:3 () in
  let run threshold =
    let config =
      { Core.Config.default with
        Core.Config.engine = Ev.Arnoldi;
        second_pass_skew_ps = threshold }
    in
    Core.Flow.run ~config ~tech:b.Suite.Format_io.tech
      ~source:b.Suite.Format_io.source b.Suite.Format_io.sinks
  in
  let disabled = run infinity in
  let forced = run (-1.) in
  check_bool "forced second pass spends more evaluations" true
    (forced.Core.Flow.eval_runs > disabled.Core.Flow.eval_runs);
  check_bool "second pass never worsens the final skew" true
    (forced.Core.Flow.final.Ev.skew
     <= disabled.Core.Flow.final.Ev.skew +. 1e-9)

let () =
  Alcotest.run "incremental"
    [
      ( "oracle",
        [
          Alcotest.test_case "spice edit sequence" `Quick test_oracle_spice;
          Alcotest.test_case "arnoldi edit sequence" `Quick test_oracle_arnoldi;
          Alcotest.test_case "copy+compact rebind" `Quick
            test_refresh_after_copy_and_compact;
          Alcotest.test_case "parallel determinism" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "fast-refresh memo" `Quick test_fast_refresh_memo;
          Alcotest.test_case "revision counter" `Quick test_revision_counter;
        ] );
      ( "engines",
        [ Alcotest.test_case "agreement" `Quick test_engines_agree_on_tree ] );
      ( "regressions",
        [
          Alcotest.test_case "corner identity" `Quick
            test_corner_structural_identity;
          Alcotest.test_case "probe unsorted" `Quick test_probe_unsorted_times;
          Alcotest.test_case "probe trailing" `Quick test_probe_trailing_times;
          Alcotest.test_case "trace cache deltas" `Quick
            test_trace_cache_deltas;
          Alcotest.test_case "second-pass threshold" `Quick
            test_second_pass_threshold;
        ] );
    ]
