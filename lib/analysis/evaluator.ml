module Tree = Ctree.Tree
module Arena = Ctree.Arena

type engine = Elmore_model | Arnoldi | Spice
type transition = Rise | Fall

let flip = function Rise -> Fall | Fall -> Rise

type run = {
  corner : Tech.Corner.t;
  transition : transition;
  latency : float array;
  slew : float array;
  worst_slew : float;
  worst_slew_node : int;
}

type t = {
  runs : run list;
  sinks : int array;
  skew_rise : float;
  skew_fall : float;
  skew : float;
  t_min : float;
  t_max : float;
  clr : float;
  slew_violations : int;
  cap_ok : bool;
  stats : Ctree.Stats.t;
}

(* Atomic: the suite runner fans whole flows out over domains, so the
   process-wide run count is bumped from several domains at once. *)
let counter = Atomic.make 0
let eval_count () = Atomic.get counter
let reset_eval_count () = Atomic.set counter 0

let solve_stage ?step ?mode ?fcache ?fp ?ws engine rc ~r_drv ~s_drv =
  match engine with
  | Elmore_model -> Elmore.solve rc ~r_drv ~s_drv
  | Arnoldi -> Moments.solve rc ~r_drv ~s_drv
  | Spice -> Transient.solve ?step ?mode ?fcache ?fp ?ws rc ~r_drv ~s_drv

(* The inverter's internal switching ramp: mostly a device property, with a
   mild dependence on how slowly the input arrives. Quantised to a ¼ ps
   grid so that last-bit noise in an upstream stage's slew cannot ripple a
   fresh (r_drv, s_drv) cache key into every downstream stage — any
   self-consistent evaluator is admissible (paper §V fn. 2), and both
   [evaluate] and [Incremental.refresh] share this exact function. *)
let internal_ramp_slew ~in_slew =
  let raw = Float.max 2.0 (0.15 *. in_slew) in
  Float.round (raw *. 4.) /. 4.

(* Chain one corner × source-transition pass over the stages. [solve] is
   indexed by the stage position so callers can attach per-stage cached
   state (fingerprints, factorisations) without recomputing it here. *)
let propagate_with ~solve tree stages (corner : Tech.Corner.t)
    source_transition =
  let n = Tree.size tree in
  let tech = Tree.tech tree in
  let latency = Array.make n nan in
  let slew = Array.make n nan in
  (* Per-driver launch state: arrival of the output ramp's 50 % point, the
     output transition, and the slew seen at the driver's input. *)
  let launch = Array.make n nan in
  let out_tr = Array.make n source_transition in
  let in_slew = Array.make n tech.Tech.source_slew in
  launch.(Tree.root tree) <- 0.;
  let worst_slew = ref 0. and worst_node = ref (-1) in
  Array.iteri
    (fun si { Rcnet.driver; rc } ->
      let tr = out_tr.(driver) in
      let r_base =
        match (Tree.node tree driver).Tree.kind with
        | Tree.Source -> tech.Tech.source_r
        | Tree.Buffer b ->
          (match tr with
          | Rise -> Tech.Composite.r_up b
          | Fall -> Tech.Composite.r_down b)
        | Tree.Internal | Tree.Sink _ ->
          invalid_arg "Evaluator: stage driven by a non-driver node"
      in
      let r_drv = r_base *. corner.Tech.Corner.r_scale in
      let s_drv =
        match (Tree.node tree driver).Tree.kind with
        | Tree.Source -> tech.Tech.source_slew
        | _ -> internal_ramp_slew ~in_slew:in_slew.(driver)
      in
      let results = solve si rc ~r_drv ~s_drv in
      Array.iteri
        (fun k (_, tap) ->
          let d, s = results.(k) in
          let arrival = launch.(driver) +. d in
          match tap with
          | Rcnet.Tap_sink id ->
            latency.(id) <- arrival;
            slew.(id) <- s;
            if s > !worst_slew then begin worst_slew := s; worst_node := id end
          | Rcnet.Tap_buffer id ->
            latency.(id) <- arrival;
            slew.(id) <- s;
            if s > !worst_slew then begin worst_slew := s; worst_node := id end;
            (match (Tree.node tree id).Tree.kind with
            | Tree.Buffer b ->
              let gate_delay =
                (Tech.Composite.d_intrinsic b *. corner.Tech.Corner.d_scale)
                +. (Tech.Composite.slew_coeff b *. s)
              in
              launch.(id) <- arrival +. gate_delay;
              in_slew.(id) <- s;
              out_tr.(id) <-
                (if Tech.Composite.inverting b then flip tr else tr)
            | _ -> invalid_arg "Evaluator: buffer tap on non-buffer node"))
        rc.Rcnet.taps)
    stages;
  { corner; transition = source_transition; latency; slew;
    worst_slew = !worst_slew; worst_slew_node = !worst_node }

let propagate ?step ?mode ?fcache ?fps ?ws engine tree stages corner
    source_transition =
  propagate_with
    ~solve:(fun si rc ~r_drv ~s_drv ->
      let fp = Option.map (fun a -> a.(si)) fps in
      solve_stage ?step ?mode ?fcache ?fp ?ws engine rc ~r_drv ~s_drv)
    tree stages corner source_transition

(* Launch-chain state of one corner × transition pass over a flat stage
   pool. Split out of the propagation loop so the level-batched parallel
   refresh can advance many passes in lockstep: gather the stage drives
   of one DAG level for every pass, solve them all, then apply the taps —
   in stage order, so every float and every worst-slew comparison matches
   the sequential pass exactly. *)
type pstate = {
  p_latency : float array;
  p_slew : float array;
  p_launch : float array;
  p_out_tr : transition array;
  p_in_slew : float array;
  mutable p_worst : float;
  mutable p_worst_node : int;
}

let pstate_make tree source_transition =
  let n = Tree.size tree in
  let tech = Tree.tech tree in
  let st =
    { p_latency = Array.make n nan; p_slew = Array.make n nan;
      p_launch = Array.make n nan;
      p_out_tr = Array.make n source_transition;
      p_in_slew = Array.make n tech.Tech.source_slew;
      p_worst = 0.; p_worst_node = -1 }
  in
  st.p_launch.(Tree.root tree) <- 0.;
  st

(* Driver parameters of stage [si] given the pass state: reads the
   arena's kind tag and stored drive resistances — the exact values the
   boxed accessors return — so the (r_drv, s_drv) cache keys are
   bit-identical to the boxed pass's. *)
let stage_drive tech (arena : Arena.t) (pool : Rcflat.t)
    (corner : Tech.Corner.t) st si =
  let driver = pool.Rcflat.driver.(si) in
  let tr = st.p_out_tr.(driver) in
  let k = arena.Arena.kind.(driver) in
  let r_base =
    if k = Arena.k_source then tech.Tech.source_r
    else if k = Arena.k_buffer then
      match tr with
      | Rise -> arena.Arena.drv_r_up.{driver}
      | Fall -> arena.Arena.drv_r_down.{driver}
    else invalid_arg "Evaluator: stage driven by a non-driver node"
  in
  let r_drv = r_base *. corner.Tech.Corner.r_scale in
  let s_drv =
    if k = Arena.k_source then tech.Tech.source_slew
    else internal_ramp_slew ~in_slew:st.p_in_slew.(driver)
  in
  (driver, tr, r_drv, s_drv)

let pstate_apply (arena : Arena.t) (pool : Rcflat.t)
    (corner : Tech.Corner.t) st si ~driver ~tr results =
  let nodes = pool.Rcflat.tap_node.(si) in
  let kinds = pool.Rcflat.tap_kind.(si) in
  let launch_d = st.p_launch.(driver) in
  for k = 0 to Array.length nodes - 1 do
    let id = nodes.(k) in
    let d, s = results.(k) in
    let arrival = launch_d +. d in
    st.p_latency.(id) <- arrival;
    st.p_slew.(id) <- s;
    if s > st.p_worst then begin
      st.p_worst <- s;
      st.p_worst_node <- id
    end;
    if kinds.(k) = 1 then begin
      let gate_delay =
        (arena.Arena.drv_d_intr.{id} *. corner.Tech.Corner.d_scale)
        +. (arena.Arena.drv_slew_c.{id} *. s)
      in
      st.p_launch.(id) <- arrival +. gate_delay;
      st.p_in_slew.(id) <- s;
      st.p_out_tr.(id) <- (if arena.Arena.inverting.(id) = 1 then flip tr else tr)
    end
  done

let pstate_run st corner transition =
  { corner; transition; latency = st.p_latency; slew = st.p_slew;
    worst_slew = st.p_worst; worst_slew_node = st.p_worst_node }

(* Flat analogue of [propagate_with]: one sequential corner × transition
   pass over the stage pool. *)
let propagate_pool ~solve tree arena pool (corner : Tech.Corner.t)
    source_transition =
  let tech = Tree.tech tree in
  let st = pstate_make tree source_transition in
  for si = 0 to pool.Rcflat.nstages - 1 do
    let driver, tr, r_drv, s_drv = stage_drive tech arena pool corner st si in
    let results = solve si ~r_drv ~s_drv in
    pstate_apply arena pool corner st si ~driver ~tr results
  done;
  pstate_run st corner source_transition

let spread latencies sinks =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun s ->
      let l = latencies.(s) in
      if not (Float.is_nan l) then begin
        if l < !lo then lo := l;
        if l > !hi then hi := l
      end)
    sinks;
  (!lo, !hi)

(* Corners are records; callers legitimately rebuild the corner list (e.g.
   variation sweeps), so identity is the name, not physical equality. *)
let corner_equal (a : Tech.Corner.t) (b : Tech.Corner.t) =
  a.Tech.Corner.name = b.Tech.Corner.name

(* Fold a set of per-corner/transition runs into the summary record.
   Shared verbatim by [evaluate] and [Incremental.refresh] so the two
   entry points cannot drift apart. *)
let summarize tree runs =
  let tech = Tree.tech tree in
  let sinks = Tree.sinks tree in
  let corners = tech.Tech.corners in
  let nominal = List.hd corners in
  let find corner tr =
    List.find
      (fun r -> corner_equal r.corner corner && r.transition = tr)
      runs
  in
  let skew_of r =
    let lo, hi = spread r.latency sinks in
    if Array.length sinks = 0 then 0. else hi -. lo
  in
  let nom_rise = find nominal Rise and nom_fall = find nominal Fall in
  let skew_rise = skew_of nom_rise and skew_fall = skew_of nom_fall in
  let lo_r, hi_r = spread nom_rise.latency sinks in
  let lo_f, hi_f = spread nom_fall.latency sinks in
  (* CLR: slowest corner's max latency minus fastest corner's min latency,
     per source transition. With one corner this degenerates to skew. *)
  let slow_corner =
    List.fold_left
      (fun acc c ->
        if c.Tech.Corner.r_scale > acc.Tech.Corner.r_scale then c else acc)
      nominal corners
  in
  let clr_of tr =
    let _, hi = spread (find slow_corner tr).latency sinks in
    let lo, _ = spread (find nominal tr).latency sinks in
    hi -. lo
  in
  let clr = Float.max (clr_of Rise) (clr_of Fall) in
  (* Last line of defence: a NaN here would silently disable every
     downstream comparison (minimax selection, violation gates). Infinity
     is allowed — truncated transient marches report it intentionally. *)
  let t_min = Float.min lo_r lo_f and t_max = Float.max hi_r hi_f in
  if
    Float.is_nan skew_rise || Float.is_nan skew_fall || Float.is_nan clr
    || Float.is_nan t_min || Float.is_nan t_max
  then
    Numerics.fail
      "evaluator summarize: NaN summary (skew_r=%g skew_f=%g clr=%g)"
      skew_rise skew_fall clr;
  let slew_violations =
    List.fold_left
      (fun acc r ->
        acc
        + Array.fold_left
            (fun acc s ->
              if (not (Float.is_nan s)) && s > tech.Tech.slew_limit then acc + 1
              else acc)
            0 r.slew)
      0 runs
  in
  let stats = Ctree.Stats.compute tree in
  {
    runs;
    sinks;
    skew_rise;
    skew_fall;
    skew = Float.max skew_rise skew_fall;
    t_min;
    t_max;
    clr;
    slew_violations;
    cap_ok = stats.Ctree.Stats.total_cap <= tech.Tech.cap_limit;
    stats;
  }

let evaluate ?(engine = Spice) ?(flat = false) ?seg_len ?transient_step
    ?transient_mode tree =
  Atomic.incr counter;
  let tech = Tree.tech tree in
  let corners = tech.Tech.corners in
  if flat && engine = Spice then begin
    (* Streaming path: one arena snapshot and one flat stage pool scoped
       to this call; the corner × transition runs share a flat
       factorisation cache and a workspace exactly like the boxed runs
       share theirs, so cached factors stay bit-identical to recomputed
       ones. *)
    let arena = Arena.compile tree in
    let pool = Rcflat.compile ?seg_len arena in
    let fcache = Transient.Flat.Fcache.create () in
    let ws = Transient.domain_workspace () in
    let solve si ~r_drv ~s_drv =
      Transient.Flat.solve ?step:transient_step ?mode:transient_mode ~fcache
        ~ws pool ~si ~r_drv ~s_drv
    in
    let runs =
      List.concat_map
        (fun corner ->
          List.map
            (fun tr -> propagate_pool ~solve tree arena pool corner tr)
            [ Rise; Fall ])
        corners
    in
    summarize tree runs
  end
  else begin
    let stages = Array.of_list (Rcnet.stages ?seg_len tree) in
    (* Scoped to this call: one workspace and one factorisation cache let
       the corner × transition runs share per-stage factorisations (and,
       in the adaptive modes, the coarse-rate factors) without allocating
       state arrays per stage. Numerics are unchanged — a cached factor is
       bit-identical to a recomputed one. *)
    let fcache, ws, fps =
      match engine with
      | Spice ->
        ( Some (Transient.Fcache.create ()),
          Some (Transient.domain_workspace ()),
          Some (Array.map (fun st -> Rcnet.fingerprint st.Rcnet.rc) stages) )
      | Arnoldi | Elmore_model -> (None, None, None)
    in
    let runs =
      List.concat_map
        (fun corner ->
          List.map
            (propagate ?step:transient_step ?mode:transient_mode ?fcache ?fps
               ?ws engine tree stages corner)
            [ Rise; Fall ])
        corners
    in
    summarize tree runs
  end

let nominal_run t tr =
  let nominal = (List.hd t.runs).corner in
  List.find
    (fun r -> r.transition = tr && corner_equal r.corner nominal)
    t.runs

let ok t = t.slew_violations = 0 && t.cap_ok

let pp_summary ppf t =
  Format.fprintf ppf
    "skew=%.3fps (r %.3f / f %.3f) clr=%.3fps lat=[%.1f,%.1f]ps slewviol=%d%s"
    t.skew t.skew_rise t.skew_fall t.clr t.t_min t.t_max t.slew_violations
    (if t.cap_ok then "" else " CAP-OVER")

type cache_stats = {
  hits : int;
  misses : int;
  refreshes : int;
  fast_refreshes : int;
  dirty_refreshes : int;
  entries : int;
  factored_entries : int;
  store_hits : int;
  store_misses : int;
}

(* A journaled edit, as reported by the tree journal: the revision the
   edit started from and the node ids it touched. Sessions chain hints —
   a hint anchored at the revision the session last saw lets a refresh
   re-extract only the stages those nodes live in. *)
type edit_hint = { base_revision : int; nodes : int list }

module Store = struct
  (* Cross-session stage-result sharing for a long-lived process: the
     same content-derived (fingerprint, r_drv, s_drv) keys the per-slot
     caches use, behind a lock-striped bounded table safe from any
     domain. Result arrays are written once by the solving engine and
     only read afterwards, so handing one array to several sessions is
     race-free. Sessions sharing a store MUST be numerically identical
     (same engine, transient step and mode) — the keys do not encode the
     config, the owner of the store does (the serve daemon keys stores
     per config family, and Flow skips the store on degraded retries). *)
  type key = Int64.t * float * float

  type stripe = {
    lock : Mutex.t;
    tbl : (key, (float * float) array) Hashtbl.t;
  }

  type t = {
    stripes : stripe array;
    stripe_cap : int;
    evictions : int Atomic.t;
    fstore : Transient.Fstore.t;
  }

  (* Per-request view: the shared store plus this request's own hit/miss
     counters (atomic — the parallel corner × transition slots of one
     session bump them from several domains). *)
  type handle = {
    store : t;
    h_hits : int Atomic.t;
    h_misses : int Atomic.t;
  }

  let create ?(stripes = 16) ?(cap = 262_144) () =
    let nstripes = max 1 stripes in
    { stripes =
        Array.init nstripes (fun _ ->
            { lock = Mutex.create (); tbl = Hashtbl.create 1024 });
      stripe_cap = max 16 (cap / nstripes);
      evictions = Atomic.make 0;
      fstore = Transient.Fstore.create () }

  let stripe_of t ((fp, _, _) : key) =
    t.stripes.((Int64.to_int fp land max_int) mod Array.length t.stripes)

  let handle t = { store = t; h_hits = Atomic.make 0; h_misses = Atomic.make 0 }
  let of_handle h = h.store
  let fstore t = t.fstore

  let find h key =
    let s = stripe_of h.store key in
    Mutex.lock s.lock;
    let r = Hashtbl.find_opt s.tbl key in
    Mutex.unlock s.lock;
    (match r with
    | Some _ -> Atomic.incr h.h_hits
    | None -> Atomic.incr h.h_misses);
    r

  let add h key v =
    let t = h.store in
    let s = stripe_of t key in
    Mutex.lock s.lock;
    if not (Hashtbl.mem s.tbl key) then begin
      if Hashtbl.length s.tbl >= t.stripe_cap then begin
        (* Random-subset eviction: drop a quarter of the stripe in hash
           order — effectively random keys, never the one being added. *)
        let drop = max 1 (t.stripe_cap / 4) in
        let doomed = ref [] and k = ref 0 in
        (try
           Hashtbl.iter
             (fun key _ ->
               if !k >= drop then raise Exit;
               doomed := key :: !doomed;
               incr k)
             s.tbl
         with Exit -> ());
        List.iter (Hashtbl.remove s.tbl) !doomed;
        ignore (Atomic.fetch_and_add t.evictions !k)
      end;
      Hashtbl.add s.tbl key v
    end;
    Mutex.unlock s.lock

  let hits h = Atomic.get h.h_hits
  let misses h = Atomic.get h.h_misses

  let length t =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.lock;
        let n = Hashtbl.length s.tbl in
        Mutex.unlock s.lock;
        acc + n)
      0 t.stripes

  let evictions t = Atomic.get t.evictions

  let clear t =
    Array.iter
      (fun s ->
        Mutex.lock s.lock;
        Hashtbl.reset s.tbl;
        Mutex.unlock s.lock)
      t.stripes;
    Transient.Fstore.clear t.fstore
end

module Incremental = struct
  (* One (corner × source transition) evaluation pass owns its own cache
     so the domain-parallel phase shares no mutable state between jobs:
     results are deterministic regardless of scheduling, and no locks are
     taken on the hot path. The key is the stage's content fingerprint
     plus the driver parameters — correctness does not depend on the tree
     revision counter, which is only a whole-result fast path. *)
  type slot = {
    s_corner : Tech.Corner.t;
    s_transition : transition;
    cache : (Int64.t * float * float, (float * float) array) Hashtbl.t;
    (* Per-slot kernel state: workspaces are mutable scratch and the
       factorisation cache fills lazily (the adaptive kernel factors its
       coarse rates on first use), so each domain-parallel pass owns its
       own pair — no locks, no races, scheduling-independent results. *)
    s_fcache : Transient.Fcache.t;
    s_ffcache : Transient.Flat.Fcache.t;
    s_ws : Transient.workspace;
    mutable hits : int;
    mutable misses : int;
  }

  type session = {
    engine : engine;
    flat : bool;
    seg_len : int option;
    parallel : bool;
    tstep : float option;
    tmode : Transient.mode option;
    (* Shared cross-session store this session reads through (and
       publishes to), or [None] for a self-contained session. *)
    store : Store.handle option;
    mutable tree : Tree.t;
    slots : slot array;
    (* Flat-engine state: the arena snapshot and the stage pool the
       session last compiled (rebuilt when the session is rebound to a
       different tree), a scratch workspace for the serial prep phase,
       and one workspace per domain for the chunked parallel solves
       (allocated lazily on the first parallel flat refresh). *)
    mutable f_arena : Arena.t option;
    mutable f_pool : Rcflat.t option;
    f_scratch : Transient.workspace;
    mutable f_ws : Transient.workspace array;
    (* Probe calls come from the session's own thread (tests, debugging),
       never from the parallel phase; they get a dedicated cache and
       workspace so they cannot disturb the slots'. *)
    probe_fcache : Transient.Fcache.t;
    probe_ws : Transient.workspace;
    mutable last : t option;
    mutable last_revision : int;
    mutable last_tree : Tree.t;
    mutable refreshes : int;
    mutable fast_refreshes : int;
    mutable dirty_refreshes : int;
    (* Stage caches for the dirty-set fast path. [c_stages]/[c_fps] hold
       the extraction the session last computed; [c_stage_of] maps a tree
       node to the stage owning its parent wire and [c_driven] maps a
       driver node to the stage it drives. [anchor_rev] is the tree
       revision the caches describe, advanced by [note_edits] as journaled
       edits are reported; [pending] accumulates their touched nodes until
       the next refresh. Any unreported mutation breaks the chain and the
       next refresh falls back to a full extraction. *)
    mutable c_stages : Rcnet.stage array;
    mutable c_fps : Int64.t array;
    mutable c_stage_of : int array;
    mutable c_driven : int array;
    mutable stages_tree : Tree.t;
    mutable anchor_rev : int;
    mutable pending : int list;
  }

  (* Reset-on-overflow cap: generous enough that a full Flow run never
     trips it, small enough to bound memory on pathological inputs.
     (Factorisation caches carry their own cap; see Transient.Fcache.) *)
  let cache_cap = 200_000

  let create ?(engine = Spice) ?(flat = false) ?seg_len ?(parallel = true)
      ?transient_step ?transient_mode ?store tree =
    (* The flat pool streams the backward-Euler kernel; the model engines
       never touch it, so the knob quietly means "boxed" for them. *)
    let flat = flat && engine = Spice in
    let corners = (Tree.tech tree).Tech.corners in
    (* Per-slot factorisation caches read through the store's shared
       factorisation table, so a repeat request re-solves its stages
       without re-factoring them even when the result store has turned
       the entries over. *)
    let fstore = Option.map (fun h -> Store.fstore (Store.of_handle h)) store in
    let slots =
      Array.of_list
        (List.concat_map
           (fun corner ->
             List.map
               (fun tr ->
                 { s_corner = corner; s_transition = tr;
                   cache = Hashtbl.create 1024;
                   s_fcache = Transient.Fcache.create ?store:fstore ();
                   s_ffcache = Transient.Flat.Fcache.create ();
                   s_ws = Transient.workspace (); hits = 0; misses = 0 })
               [ Rise; Fall ])
           corners)
    in
    { engine; flat; seg_len; parallel; tstep = transient_step;
      tmode = transient_mode; store; tree; slots; f_arena = None; f_pool = None;
      f_scratch = Transient.workspace (); f_ws = [||];
      probe_fcache = Transient.Fcache.create ();
      probe_ws = Transient.workspace (); last = None; last_revision = -1;
      last_tree = tree; refreshes = 0; fast_refreshes = 0;
      dirty_refreshes = 0; c_stages = [||]; c_fps = [||];
      c_stage_of = [||]; c_driven = [||]; stages_tree = tree;
      anchor_rev = -1; pending = [] }

  let run_slot session stages fps slot =
    let solve si rc ~r_drv ~s_drv =
      let key = (fps.(si), r_drv, s_drv) in
      match Hashtbl.find_opt slot.cache key with
      | Some r ->
        slot.hits <- slot.hits + 1;
        r
      | None ->
        slot.misses <- slot.misses + 1;
        let r =
          (* Local miss: another request may already have solved this
             exact stage — consult the shared store before the engine. *)
          match Option.bind session.store (fun h -> Store.find h key) with
          | Some r -> r
          | None ->
            let r =
              match session.engine with
              | Spice ->
                Transient.solve ?step:session.tstep ?mode:session.tmode
                  ~fcache:slot.s_fcache ~fp:fps.(si) ~ws:slot.s_ws rc ~r_drv
                  ~s_drv
              | Arnoldi ->
                (* Newton-polished crossings: same roots as [Moments.solve]
                   to ~1e-12 ps at a fraction of the cost (see moments.mli). *)
                Moments.solve_fast rc ~r_drv ~s_drv
              | Elmore_model -> solve_stage session.engine rc ~r_drv ~s_drv
            in
            (match session.store with
            | Some h -> Store.add h key r
            | None -> ());
            r
        in
        if Hashtbl.length slot.cache >= cache_cap then Hashtbl.reset slot.cache;
        Hashtbl.add slot.cache key r;
        r
    in
    propagate_with ~solve session.tree stages slot.s_corner slot.s_transition

  let run_slot_flat session arena pool slot =
    let solve si ~r_drv ~s_drv =
      let key = (pool.Rcflat.fp.(si), r_drv, s_drv) in
      match Hashtbl.find_opt slot.cache key with
      | Some r ->
        slot.hits <- slot.hits + 1;
        r
      | None ->
        slot.misses <- slot.misses + 1;
        let r =
          match Option.bind session.store (fun h -> Store.find h key) with
          | Some r -> r
          | None ->
            let r =
              Transient.Flat.solve ?step:session.tstep ?mode:session.tmode
                ~fcache:slot.s_ffcache ~ws:slot.s_ws pool ~si ~r_drv ~s_drv
            in
            (match session.store with
            | Some h -> Store.add h key r
            | None -> ());
            r
        in
        if Hashtbl.length slot.cache >= cache_cap then Hashtbl.reset slot.cache;
        Hashtbl.add slot.cache key r;
        r
    in
    propagate_pool ~solve session.tree arena pool slot.s_corner
      slot.s_transition

  (* One pending flat solve of the level-batched refresh: which slot and
     stage it serves, its drive key, the pre-resolved march state, and
     the cell the chunk worker drops the result into. *)
  type fjob = {
    j_slot : int;
    j_si : int;
    j_r : float;
    j_s : float;
    j_prepped : Transient.Flat.prepped;
    j_out : (float * float) array option ref;
  }

  (* Level-batched parallel flat refresh. Stages within one DAG level
     share no launch dependency, and the pool stores a level as a
     contiguous stage-index range — so the fan-out unit is an index
     range, not a per-stage closure. Per level: every slot's cache
     misses are gathered and prepped serially (preps touch the shared
     per-slot factorisation caches), the job array is cut into at most
     one contiguous chunk per workspace, the chunks march on the domain
     pool with no shared mutable state, and the results are committed
     and the tap/launch state advanced serially in stage order. Hits,
     misses, cache contents and every reported float match the
     sequential pass exactly. *)
  let run_all_flat session arena pool =
    if Array.length session.f_ws = 0 then
      session.f_ws <-
        Array.init
          (Domain_pool.size (Domain_pool.global ()) + 1)
          (fun _ -> Transient.workspace ());
    let tech = Tree.tech session.tree in
    let nslots = Array.length session.slots in
    let states =
      Array.map (fun s -> pstate_make session.tree s.s_transition)
        session.slots
    in
    let level_res : (float * float) array option ref array array =
      Array.make nslots [||]
    in
    let level_tr = Array.make nslots [||] in
    let level_drv = Array.make nslots [||] in
    for l = 0 to pool.Rcflat.nlevels - 1 do
      let lo = pool.Rcflat.level_off.(l) in
      let hi = pool.Rcflat.level_off.(l + 1) in
      let w = hi - lo in
      let jobs = ref [] in
      for k = 0 to nslots - 1 do
        let slot = session.slots.(k) in
        let st = states.(k) in
        let res = Array.make w (ref None) in
        let trs = Array.make w slot.s_transition in
        let drvs = Array.make w (-1) in
        (* Within-level dedup: first occurrence of a missing key becomes
           the job, later occurrences share its output cell and count as
           the cache hits they would be sequentially. *)
        let local = Hashtbl.create ((2 * w) + 1) in
        for si = lo to hi - 1 do
          let driver, tr, r_drv, s_drv =
            stage_drive tech arena pool slot.s_corner st si
          in
          let key = (pool.Rcflat.fp.(si), r_drv, s_drv) in
          let out =
            match Hashtbl.find_opt local key with
            | Some cell ->
              slot.hits <- slot.hits + 1;
              cell
            | None ->
              (match Hashtbl.find_opt slot.cache key with
              | Some r ->
                slot.hits <- slot.hits + 1;
                let cell = ref (Some r) in
                Hashtbl.add local key cell;
                cell
              | None ->
                slot.misses <- slot.misses + 1;
                (match
                   Option.bind session.store (fun h -> Store.find h key)
                 with
                | Some r ->
                  (* Shared-store hit: commit it locally right away so
                     later levels hit the slot cache like any other. *)
                  let cell = ref (Some r) in
                  Hashtbl.add local key cell;
                  if Hashtbl.length slot.cache >= cache_cap then
                    Hashtbl.reset slot.cache;
                  Hashtbl.add slot.cache key r;
                  cell
                | None ->
                  let cell = ref None in
                  Hashtbl.add local key cell;
                  let prepped =
                    Transient.Flat.prep ?step:session.tstep
                      ?mode:session.tmode ~fcache:slot.s_ffcache
                      ~scratch:session.f_scratch pool ~si ~r_drv
                  in
                  jobs :=
                    { j_slot = k; j_si = si; j_r = r_drv; j_s = s_drv;
                      j_prepped = prepped; j_out = cell }
                    :: !jobs;
                  cell))
          in
          res.(si - lo) <- out;
          trs.(si - lo) <- tr;
          drvs.(si - lo) <- driver
        done;
        level_res.(k) <- res;
        level_tr.(k) <- trs;
        level_drv.(k) <- drvs
      done;
      (match !jobs with
      | [] -> ()
      | js ->
        let arr = Array.of_list (List.rev js) in
        let nj = Array.length arr in
        let nchunks = Int.min (Array.length session.f_ws) nj in
        let per = nj / nchunks and extra = nj mod nchunks in
        let chunks =
          Array.init nchunks (fun c ->
              let start = (c * per) + Int.min c extra in
              let stop = start + per + (if c < extra then 1 else 0) in
              (c, start, stop))
        in
        ignore
          (Domain_pool.map (Domain_pool.global ())
             (fun (c, start, stop) ->
               let ws = session.f_ws.(c) in
               for i = start to stop - 1 do
                 let j = arr.(i) in
                 j.j_out :=
                   Some
                     (Transient.Flat.solve_prepped ?step:session.tstep ~ws
                        pool ~si:j.j_si ~prepped:j.j_prepped ~r_drv:j.j_r
                        ~s_drv:j.j_s)
               done)
             chunks);
        Array.iter
          (fun j ->
            let slot = session.slots.(j.j_slot) in
            let key = (pool.Rcflat.fp.(j.j_si), j.j_r, j.j_s) in
            let r = Option.get !(j.j_out) in
            (match session.store with
            | Some h -> Store.add h key r
            | None -> ());
            if Hashtbl.length slot.cache >= cache_cap then
              Hashtbl.reset slot.cache;
            Hashtbl.add slot.cache key r)
          arr);
      for k = 0 to nslots - 1 do
        let slot = session.slots.(k) in
        let st = states.(k) in
        for si = lo to hi - 1 do
          let results = Option.get !(level_res.(k).(si - lo)) in
          pstate_apply arena pool slot.s_corner st si
            ~driver:level_drv.(k).(si - lo)
            ~tr:level_tr.(k).(si - lo)
            results
        done
      done
    done;
    let runs =
      Array.to_list
        (Array.map2
           (fun slot st -> pstate_run st slot.s_corner slot.s_transition)
           session.slots states)
    in
    summarize session.tree runs

  let run_all session =
    match (session.f_arena, session.f_pool) with
    | Some arena, Some pool when session.flat ->
      if session.parallel && Array.length session.slots > 1 then
        run_all_flat session arena pool
      else
        summarize session.tree
          (Array.to_list
             (Array.map (run_slot_flat session arena pool) session.slots))
    | _ ->
      let stages = session.c_stages and fps = session.c_fps in
      let runs =
        if session.parallel && Array.length session.slots > 1 then
          Domain_pool.map (Domain_pool.global ())
            (run_slot session stages fps)
            session.slots
        else Array.map (run_slot session stages fps) session.slots
      in
      summarize session.tree (Array.to_list runs)

  (* Node → stage maps for the dirty fast path: a stage is dirtied when
     a node whose parent wire it contains (or a buffer whose drive it
     provides) is edited. Unreachable (detached) nodes keep -1, which
     forces any edit touching them back to a full extraction. *)
  let stage_maps tree ~nstages ~driver_of =
    let n = Tree.size tree in
    let stage_of = Array.make n (-1) in
    let driven = Array.make n (-1) in
    for si = 0 to nstages - 1 do
      driven.(driver_of si) <- si
    done;
    Array.iter
      (fun id ->
        let nd = Tree.node tree id in
        if nd.Tree.parent >= 0 then
          stage_of.(id) <-
            (if driven.(nd.Tree.parent) >= 0 then driven.(nd.Tree.parent)
             else stage_of.(nd.Tree.parent)))
      (Tree.topo_order tree);
    (stage_of, driven)

  let full_refresh session =
    let tree = session.tree in
    (if session.flat then begin
       let arena =
         match session.f_arena with
         | Some a when Arena.tree a == tree ->
           Arena.sync a;
           a
         | _ ->
           (* Rebound to a different tree (or first refresh): the pool
              holds slices of the old arena, so both are rebuilt. *)
           let a = Arena.compile tree in
           session.f_arena <- Some a;
           session.f_pool <- None;
           a
       in
       let pool =
         match session.f_pool with
         | Some p ->
           Rcflat.recompile p;
           p
         | None ->
           let p = Rcflat.compile ?seg_len:session.seg_len arena in
           session.f_pool <- Some p;
           p
       in
       let stage_of, driven =
         stage_maps tree ~nstages:pool.Rcflat.nstages ~driver_of:(fun si ->
             pool.Rcflat.driver.(si))
       in
       session.c_stages <- [||];
       session.c_fps <- [||];
       session.c_stage_of <- stage_of;
       session.c_driven <- driven
     end
     else begin
       let stages =
         Array.of_list (Rcnet.stages ?seg_len:session.seg_len tree)
       in
       let fps = Array.map (fun st -> Rcnet.fingerprint st.Rcnet.rc) stages in
       let stage_of, driven =
         stage_maps tree ~nstages:(Array.length stages) ~driver_of:(fun si ->
             stages.(si).Rcnet.driver)
       in
       session.c_stages <- stages;
       session.c_fps <- fps;
       session.c_stage_of <- stage_of;
       session.c_driven <- driven
     end);
    session.stages_tree <- tree;
    session.anchor_rev <- Tree.revision tree;
    session.pending <- [];
    run_all session

  (* Which stage indices does the accumulated dirty set cover? [None]
     means the hint chain cannot be trusted (broken anchor, unmapped
     node, tree rebound or resized) and a full extraction is needed. *)
  let dirty_plan session ~edits ~rev =
    if
      session.stages_tree != session.tree
      || session.anchor_rev < 0
      || Array.length session.c_stage_of <> Tree.size session.tree
    then None
    else
      let nodes =
        match edits with
        | Some e ->
          if e.base_revision = session.anchor_rev then
            Some (List.rev_append e.nodes session.pending)
          else None
        | None -> if session.anchor_rev = rev then Some session.pending else None
      in
      match nodes with
      | None -> None
      | Some nodes ->
        let ids = List.sort_uniq compare nodes in
        let rec go acc = function
          | [] -> Some (ids, List.sort_uniq compare acc)
          | id :: rest ->
            if id < 0 || id >= Tree.size session.tree then None
            else
              let si = session.c_stage_of.(id) in
              if si < 0 then None
              else begin
                match (Tree.node session.tree id).Tree.kind with
                | Tree.Buffer _ ->
                  (* A rescaled buffer changes its input cap (upstream
                     stage) and its drive (the stage it owns). *)
                  let di = session.c_driven.(id) in
                  if di < 0 then None else go (di :: si :: acc) rest
                | _ -> go (si :: acc) rest
              end
        in
        go [] ids

  (* Re-extract only the dirty stages; every slot then re-propagates over
     the cached stage array, hitting its solve cache on the clean ones
     (the downstream-latency cone is handled by the propagation itself —
     arrival chaining is recomputed for free, only dirty-stage solves
     miss). *)
  let dirty_refresh session ids dirty rev =
    session.dirty_refreshes <- session.dirty_refreshes + 1;
    (if session.flat then begin
       (* Dirty hints come from value-only journals (size and stage set
          unchanged), so patching the touched arena nodes and
          re-extracting the dirty stages in place is exact. *)
       let arena = Option.get session.f_arena in
       let pool = Option.get session.f_pool in
       Arena.sync ~touched:ids arena;
       List.iter (Rcflat.update_stage pool) dirty
     end
     else
       List.iter
         (fun si ->
           let driver = session.c_stages.(si).Rcnet.driver in
           let st =
             Rcnet.stage_for ?seg_len:session.seg_len session.tree ~driver
           in
           session.c_stages.(si) <- st;
           session.c_fps.(si) <- Rcnet.fingerprint st.Rcnet.rc)
         dirty);
    session.anchor_rev <- rev;
    session.pending <- [];
    run_all session

  let refresh ?tree ?edits session =
    (match tree with Some t -> session.tree <- t | None -> ());
    Atomic.incr counter;
    session.refreshes <- session.refreshes + 1;
    let rev = Tree.revision session.tree in
    match session.last with
    | Some res when session.last_tree == session.tree && session.last_revision = rev ->
      session.fast_refreshes <- session.fast_refreshes + 1;
      res
    | _ ->
      let res =
        match dirty_plan session ~edits ~rev with
        | Some (ids, dirty) -> dirty_refresh session ids dirty rev
        | None -> full_refresh session
      in
      session.last <- Some res;
      session.last_revision <- Tree.revision session.tree;
      session.last_tree <- session.tree;
      res

  let note_edits session ~edits ~new_revision =
    match edits with
    | Some e
      when session.stages_tree == session.tree
           && session.anchor_rev >= 0
           && e.base_revision = session.anchor_rev ->
      session.pending <- List.rev_append e.nodes session.pending;
      session.anchor_rev <- new_revision
    | _ ->
      (* Unreported or unanchored mutation: the next refresh must
         re-extract everything. *)
      session.anchor_rev <- -1;
      session.pending <- []

  let probe session rc ~r_drv ~s_drv ~node ~times =
    Transient.probe ?step:session.tstep ~fcache:session.probe_fcache
      ~ws:session.probe_ws rc ~r_drv ~s_drv ~node ~times

  let stats session =
    let hits = Array.fold_left (fun a s -> a + s.hits) 0 session.slots in
    let misses = Array.fold_left (fun a s -> a + s.misses) 0 session.slots in
    let entries =
      Array.fold_left (fun a s -> a + Hashtbl.length s.cache) 0 session.slots
    in
    let factored_entries =
      Transient.Fcache.length session.probe_fcache
      + Array.fold_left
          (fun a s ->
            a + Transient.Fcache.length s.s_fcache
            + Transient.Flat.Fcache.length s.s_ffcache)
          0 session.slots
    in
    let store_hits, store_misses =
      match session.store with
      | Some h -> (Store.hits h, Store.misses h)
      | None -> (0, 0)
    in
    { hits; misses; refreshes = session.refreshes;
      fast_refreshes = session.fast_refreshes;
      dirty_refreshes = session.dirty_refreshes; entries; factored_entries;
      store_hits; store_misses }

  let invalidate session =
    Array.iter
      (fun s ->
        Hashtbl.reset s.cache;
        Transient.Fcache.clear s.s_fcache;
        Transient.Flat.Fcache.clear s.s_ffcache;
        s.hits <- 0;
        s.misses <- 0)
      session.slots;
    Transient.Fcache.clear session.probe_fcache;
    session.last <- None;
    session.last_revision <- -1;
    session.anchor_rev <- -1;
    session.pending <- []
end
