module Tree = Ctree.Tree

type engine = Elmore_model | Arnoldi | Spice
type transition = Rise | Fall

let flip = function Rise -> Fall | Fall -> Rise

type run = {
  corner : Tech.Corner.t;
  transition : transition;
  latency : float array;
  slew : float array;
  worst_slew : float;
  worst_slew_node : int;
}

type t = {
  runs : run list;
  sinks : int array;
  skew_rise : float;
  skew_fall : float;
  skew : float;
  t_min : float;
  t_max : float;
  clr : float;
  slew_violations : int;
  cap_ok : bool;
  stats : Ctree.Stats.t;
}

let counter = ref 0
let eval_count () = !counter
let reset_eval_count () = counter := 0

let solve_stage engine rc ~r_drv ~s_drv =
  match engine with
  | Elmore_model -> Elmore.solve rc ~r_drv ~s_drv
  | Arnoldi -> Moments.solve rc ~r_drv ~s_drv
  | Spice -> Transient.solve rc ~r_drv ~s_drv

(* The inverter's internal switching ramp: mostly a device property, with a
   mild dependence on how slowly the input arrives. *)
let internal_ramp_slew ~in_slew = Float.max 2.0 (0.15 *. in_slew)

let propagate engine tree stages (corner : Tech.Corner.t) source_transition =
  let n = Tree.size tree in
  let tech = Tree.tech tree in
  let latency = Array.make n nan in
  let slew = Array.make n nan in
  (* Per-driver launch state: arrival of the output ramp's 50 % point, the
     output transition, and the slew seen at the driver's input. *)
  let launch = Array.make n nan in
  let out_tr = Array.make n source_transition in
  let in_slew = Array.make n tech.Tech.source_slew in
  launch.(Tree.root tree) <- 0.;
  let worst_slew = ref 0. and worst_node = ref (-1) in
  List.iter
    (fun { Rcnet.driver; rc } ->
      let tr = out_tr.(driver) in
      let r_base =
        match (Tree.node tree driver).Tree.kind with
        | Tree.Source -> tech.Tech.source_r
        | Tree.Buffer b ->
          (match tr with
          | Rise -> Tech.Composite.r_up b
          | Fall -> Tech.Composite.r_down b)
        | Tree.Internal | Tree.Sink _ ->
          invalid_arg "Evaluator: stage driven by a non-driver node"
      in
      let r_drv = r_base *. corner.Tech.Corner.r_scale in
      let s_drv =
        match (Tree.node tree driver).Tree.kind with
        | Tree.Source -> tech.Tech.source_slew
        | _ -> internal_ramp_slew ~in_slew:in_slew.(driver)
      in
      let results = solve_stage engine rc ~r_drv ~s_drv in
      Array.iteri
        (fun k (_, tap) ->
          let d, s = results.(k) in
          let arrival = launch.(driver) +. d in
          match tap with
          | Rcnet.Tap_sink id ->
            latency.(id) <- arrival;
            slew.(id) <- s;
            if s > !worst_slew then begin worst_slew := s; worst_node := id end
          | Rcnet.Tap_buffer id ->
            latency.(id) <- arrival;
            slew.(id) <- s;
            if s > !worst_slew then begin worst_slew := s; worst_node := id end;
            (match (Tree.node tree id).Tree.kind with
            | Tree.Buffer b ->
              let gate_delay =
                (Tech.Composite.d_intrinsic b *. corner.Tech.Corner.d_scale)
                +. (Tech.Composite.slew_coeff b *. s)
              in
              launch.(id) <- arrival +. gate_delay;
              in_slew.(id) <- s;
              out_tr.(id) <-
                (if Tech.Composite.inverting b then flip tr else tr)
            | _ -> invalid_arg "Evaluator: buffer tap on non-buffer node"))
        rc.Rcnet.taps)
    stages;
  { corner; transition = source_transition; latency; slew;
    worst_slew = !worst_slew; worst_slew_node = !worst_node }

let spread latencies sinks =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun s ->
      let l = latencies.(s) in
      if not (Float.is_nan l) then begin
        if l < !lo then lo := l;
        if l > !hi then hi := l
      end)
    sinks;
  (!lo, !hi)

let evaluate ?(engine = Spice) ?seg_len tree =
  incr counter;
  let tech = Tree.tech tree in
  let stages = Rcnet.stages ?seg_len tree in
  let sinks = Tree.sinks tree in
  let corners = tech.Tech.corners in
  let nominal = List.hd corners in
  let runs =
    List.concat_map
      (fun corner ->
        List.map (propagate engine tree stages corner) [ Rise; Fall ])
      corners
  in
  let find corner tr =
    List.find
      (fun r -> r.corner == corner && r.transition = tr)
      runs
  in
  let skew_of r =
    let lo, hi = spread r.latency sinks in
    if Array.length sinks = 0 then 0. else hi -. lo
  in
  let nom_rise = find nominal Rise and nom_fall = find nominal Fall in
  let skew_rise = skew_of nom_rise and skew_fall = skew_of nom_fall in
  let lo_r, hi_r = spread nom_rise.latency sinks in
  let lo_f, hi_f = spread nom_fall.latency sinks in
  (* CLR: slowest corner's max latency minus fastest corner's min latency,
     per source transition. With one corner this degenerates to skew. *)
  let slow_corner =
    List.fold_left
      (fun acc c ->
        if c.Tech.Corner.r_scale > acc.Tech.Corner.r_scale then c else acc)
      nominal corners
  in
  let clr_of tr =
    let _, hi = spread (find slow_corner tr).latency sinks in
    let lo, _ = spread (find nominal tr).latency sinks in
    hi -. lo
  in
  let clr = Float.max (clr_of Rise) (clr_of Fall) in
  let slew_violations =
    List.fold_left
      (fun acc r ->
        acc
        + Array.fold_left
            (fun acc s ->
              if (not (Float.is_nan s)) && s > tech.Tech.slew_limit then acc + 1
              else acc)
            0 r.slew)
      0 runs
  in
  let stats = Ctree.Stats.compute tree in
  {
    runs;
    sinks;
    skew_rise;
    skew_fall;
    skew = Float.max skew_rise skew_fall;
    t_min = Float.min lo_r lo_f;
    t_max = Float.max hi_r hi_f;
    clr;
    slew_violations;
    cap_ok = stats.Ctree.Stats.total_cap <= tech.Tech.cap_limit;
    stats;
  }

let nominal_run t tr =
  let nominal = (List.hd t.runs).corner in
  List.find (fun r -> r.transition = tr && r.corner == nominal) t.runs

let ok t = t.slew_violations = 0 && t.cap_ok

let pp_summary ppf t =
  Format.fprintf ppf
    "skew=%.3fps (r %.3f / f %.3f) clr=%.3fps lat=[%.1f,%.1f]ps slewviol=%d%s"
    t.skew t.skew_rise t.skew_fall t.clr t.t_min t.t_max t.slew_violations
    (if t.cap_ok then "" else " CAP-OVER")
