(** Typed escape hatch for numerical blow-ups in the analysis layer.

    Raised by {!Transient}, {!Moments} and {!Evaluator} when a NaN would
    otherwise leak into latency/slew/skew (NaN comparisons are all false,
    so a leaked NaN silently disables violation counting and minimax
    selection downstream). Infinity is not a failure — truncated
    transient marches intentionally report [infinity]; only NaN is
    poison. The flow layer catches this per stage and retries in
    degraded mode. *)

exception Numerical_failure of string

(** [fail fmt ...] raises {!Numerical_failure} with a formatted message. *)
val fail : ('a, unit, string, 'b) format4 -> 'a
