(** Monte-Carlo intra-die variation analysis.

    The paper motivates its CLR objective and buffer-strengthening steps
    with process variations: "intra-die variations may be stronger on some
    paths than on others, which would further increase effective skew"
    (§I), and "the impact of variations on skew is best reduced by (i)
    decreasing sink latency and (ii) using the strongest possible buffers"
    (§IV-H). This module checks those claims directly: each trial draws an
    independent Gaussian strength perturbation per buffer instance (and
    optionally per wire), re-evaluates the tree, and reports the skew
    distribution. *)

type spec = {
  trials : int;        (** Monte-Carlo samples (default 30) *)
  sigma_buffer : float;
      (** relative std-dev of each buffer's drive resistance (default
          0.05 — 5 % strength variation) *)
  sigma_wire : float;
      (** relative std-dev of each wire's resistance (default 0.02) *)
  seed : int;
  engine : Evaluator.engine;
}

val default_spec : spec

type result = {
  nominal_skew : float;
  mean_skew : float;
  max_skew : float;    (** worst skew over all trials — "effective skew" *)
  std_skew : float;
  mean_latency : float;
}

(** [run spec tree] — the input tree is not modified; each trial
    evaluates a perturbed deep copy. *)
val run : spec -> Ctree.Tree.t -> result
