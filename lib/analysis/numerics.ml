(* Typed escape hatch for numerical blow-ups.

   The transient kernel, the moment-matching models and the evaluator all
   produce floats that feed directly into skew/CLR; a NaN anywhere in
   that chain silently poisons every downstream comparison (NaN compares
   false, so violation counters and minimax loops just stop seeing the
   affected sinks). Instead of letting a non-finite result leak into a
   report, the analysis layer raises [Numerical_failure] at the point of
   origin. The flow layer catches it at stage granularity, rolls back to
   the last verified checkpoint and retries in degraded mode.

   Infinity is NOT treated as a failure: the adaptive transient kernel
   intentionally returns [(infinity, infinity)] for truncated marches,
   and the minimax machinery handles it. Only NaN is poison. *)

exception Numerical_failure of string

let () =
  Printexc.register_printer (function
    | Numerical_failure m -> Some (Printf.sprintf "Numerical_failure(%s)" m)
    | _ -> None)

let fail fmt =
  Printf.ksprintf (fun m -> raise (Numerical_failure m)) fmt
