type summary = {
  skew_rise : float;
  skew_fall : float;
  skew : float;
  t_min : float;
  t_max : float;
  clr : float;
  slew_violations : int;
}

(* Region-local nominal/corner spread, shifted by the region's offset.
   Mirrors [Evaluator.summarize]'s spread (NaN entries skipped). *)
let spread offset (r : Evaluator.run) sinks =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun s ->
      let l = r.Evaluator.latency.(s) in
      if not (Float.is_nan l) then begin
        if l < !lo then lo := l;
        if l > !hi then hi := l
      end)
    sinks;
  (offset +. !lo, offset +. !hi)

let find_run (ev : Evaluator.t) corner tr =
  List.find
    (fun (r : Evaluator.run) ->
      Evaluator.corner_equal r.Evaluator.corner corner
      && r.Evaluator.transition = tr)
    ev.Evaluator.runs

(* Global spread of one (corner, transition) pass: min/max over the
   per-region shifted spreads. *)
let global_spread parts corner tr =
  List.fold_left
    (fun (glo, ghi) (offset, ev) ->
      let lo, hi = spread offset (find_run ev corner tr) ev.Evaluator.sinks in
      (Float.min glo lo, Float.max ghi hi))
    (infinity, neg_infinity) parts

let combine ~tech parts =
  if parts = [] then invalid_arg "Regional.combine: no regions";
  let corners = tech.Tech.corners in
  let nominal = List.hd corners in
  let slow_corner =
    List.fold_left
      (fun acc c ->
        if c.Tech.Corner.r_scale > acc.Tech.Corner.r_scale then c else acc)
      nominal corners
  in
  let lo_r, hi_r = global_spread parts nominal Evaluator.Rise in
  let lo_f, hi_f = global_spread parts nominal Evaluator.Fall in
  let clr_of tr =
    let _, hi = global_spread parts slow_corner tr in
    let lo, _ = global_spread parts nominal tr in
    hi -. lo
  in
  {
    skew_rise = hi_r -. lo_r;
    skew_fall = hi_f -. lo_f;
    skew = Float.max (hi_r -. lo_r) (hi_f -. lo_f);
    t_min = Float.min lo_r lo_f;
    t_max = Float.max hi_r hi_f;
    clr = Float.max (clr_of Evaluator.Rise) (clr_of Evaluator.Fall);
    slew_violations =
      List.fold_left
        (fun acc (_, ev) -> acc + ev.Evaluator.slew_violations)
        0 parts;
  }

let pad_targets parts =
  let mids =
    List.map
      (fun (offset, (ev : Evaluator.t)) ->
        offset +. ((ev.Evaluator.t_min +. ev.Evaluator.t_max) /. 2.))
      parts
  in
  let top = List.fold_left Float.max neg_infinity mids in
  Array.of_list (List.map (fun m -> Float.max 0. (top -. m)) mids)
