(* Flat RC stage pool: every stage of a tree packed into one contiguous
   pair of float64 Bigarray buffers (res / cap) plus a stage-local parent
   index array, with CSR-style per-stage offsets. The extraction walks a
   [Ctree.Arena] snapshot (first-child / next-sibling chains) and
   replicates [Rcnet.build_stage]'s push order and float arithmetic
   exactly, so per-stage fingerprints — and therefore every content-keyed
   cache and the adaptive controller's rate selection — are bit-identical
   to the boxed extraction's.

   Within a stage, rc indices are already topological (parents pushed
   before children by the DFS), so the precomputed leaf-to-root
   elimination order is simply [size-1 downto 1] over the slice: the flat
   transient kernel streams the slice with [unsafe_get]/[unsafe_set] and
   never chases a pointer.

   Dirty-set updates re-extract a single stage in place: each stage's
   region carries a little slack, a stage that outgrows it relocates to
   the pool tail (the hole is accounted in [wasted]) and the pool
   compacts itself once relocation waste exceeds half the pool. *)

module Arena = Ctree.Arena

type f64 = Arena.f64

let ba n : f64 =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max n 1) in
  Bigarray.Array1.fill a 0.;
  a

type t = {
  arena : Arena.t;
  seg_len : int;
  (* The pool. [parent] holds STAGE-LOCAL parent indices (-1 at each
     stage root), so a stage region can be moved without rewriting it. *)
  mutable res : f64;
  mutable cap : f64;
  mutable parent : int array;
  mutable plen : int;            (* used prefix of the pool *)
  mutable wasted : int;          (* slots stranded by relocations *)
  (* Per-stage metadata, indexed by stage position (BFS order, source
     stage first — identical to [Rcnet.stages] list order). *)
  mutable nstages : int;
  mutable off : int array;       (* region start in the pool *)
  mutable size : int array;      (* current rc node count *)
  mutable slots : int array;     (* region capacity (size + slack) *)
  mutable driver : int array;    (* ctree node id of the stage driver *)
  mutable fp : int64 array;      (* = Rcnet.fingerprint of the stage *)
  mutable watch : int array array;     (* tap rc indices, tap order *)
  mutable tap_kind : int array array;  (* 0 = sink, 1 = buffer *)
  mutable tap_node : int array array;  (* ctree node ids *)
  (* Stage levels: BFS depth boundaries. Stages are emitted in BFS order,
     so level [l] is the contiguous index range
     [level_off.(l), level_off.(l+1)); stages within one level have no
     driver/launch dependency on each other — the batched parallel solve
     fans out over these ranges. *)
  mutable nlevels : int;
  mutable level_off : int array;
}

(* ------------------------------------------------------------------ *)
(* Growable storage                                                    *)
(* ------------------------------------------------------------------ *)

let ensure_pool p need =
  let capn = Bigarray.Array1.dim p.res in
  if need > capn then begin
    let c = max need (2 * capn) in
    let res' = ba c and cap' = ba c in
    Bigarray.Array1.blit p.res (Bigarray.Array1.sub res' 0 capn);
    Bigarray.Array1.blit p.cap (Bigarray.Array1.sub cap' 0 capn);
    p.res <- res';
    p.cap <- cap';
    let par' = Array.make c (-1) in
    Array.blit p.parent 0 par' 0 capn;
    p.parent <- par'
  end

let ensure_meta p need =
  let capn = Array.length p.off in
  if need > capn then begin
    let c = max need (max 16 (2 * capn)) in
    let gi a fill =
      let b = Array.make c fill in
      Array.blit a 0 b 0 capn;
      b
    in
    p.off <- gi p.off 0;
    p.size <- gi p.size 0;
    p.slots <- gi p.slots 0;
    p.driver <- gi p.driver (-1);
    let fp' = Array.make c 0L in
    Array.blit p.fp 0 fp' 0 capn;
    p.fp <- fp';
    let ga a =
      let b = Array.make c [||] in
      Array.blit a 0 b 0 capn;
      b
    in
    p.watch <- ga p.watch;
    p.tap_kind <- ga p.tap_kind;
    p.tap_node <- ga p.tap_node
  end

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

(* RC node count of the stage below [driver] — an int-only walk, used to
   reserve the region before writing. *)
let measure p ~driver =
  let a = p.arena in
  let len = a.Arena.len and kind = a.Arena.kind in
  let first = a.Arena.first_child and next = a.Arena.next_sibling in
  let seg_len = p.seg_len in
  let rec go acc id =
    let nsegs = max 1 ((len.(id) + seg_len - 1) / seg_len) in
    let acc = acc + nsegs in
    if kind.(id) = Arena.k_internal then children acc id else acc
  and children acc id =
    let acc = ref acc and c = ref first.(id) in
    while !c >= 0 do
      acc := go !acc !c;
      c := next.(!c)
    done;
    !acc
  in
  1 + children 0 driver

(* Mirror of [Rcnet.fingerprint] over a pool region; the mixed values are
   bit-identical to the boxed stage's, so the hashes agree. *)
let fingerprint_region p ~base ~n ~watch ~tap_kind =
  let open Int64 in
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix x = h := mul (logxor !h x) prime in
  let mix_int i = mix (of_int i) in
  let mix_float f = mix (bits_of_float f) in
  mix_int n;
  for i = 0 to n - 1 do
    mix_int p.parent.(base + i);
    mix_float p.res.{base + i};
    mix_float p.cap.{base + i}
  done;
  let ntaps = Array.length watch in
  mix_int ntaps;
  for k = 0 to ntaps - 1 do
    mix_int watch.(k);
    mix_int tap_kind.(k)
  done;
  !h

(* Write the stage driven by [driver] at pool offset [base] and fill its
   metadata at stage index [si]. Push order, parent indices and every
   float operation replicate [Rcnet.build_stage] verbatim. *)
let extract p ~si ~driver ~base ~on_buffer =
  let a = p.arena in
  let len = a.Arena.len and kind = a.Arena.kind in
  let first = a.Arena.first_child and next = a.Arena.next_sibling in
  let wire_r = a.Arena.wire_r and wire_c = a.Arena.wire_c in
  let tap_c = a.Arena.tap_c in
  let seg_len = p.seg_len in
  let res = p.res and cap = p.cap and parent = p.parent in
  let out_cap =
    if kind.(driver) = Arena.k_buffer then a.Arena.drv_c_out.{driver} else 0.
  in
  parent.(base) <- -1;
  res.{base} <- 0.;
  cap.{base} <- out_cap;
  let count = ref 1 in
  let taps = ref [] in
  let ntaps = ref 0 in
  let rec expand up id =
    let nsegs = max 1 ((len.(id) + seg_len - 1) / seg_len) in
    let fsegs = float_of_int nsegs in
    let seg_r = wire_r.{id} /. fsegs in
    let seg_c = wire_c.{id} /. fsegs in
    let last = ref up in
    for _ = 1 to nsegs do
      let j = !count in
      parent.(base + j) <- !last;
      res.{base + j} <- seg_r;
      cap.{base + j} <- seg_c;
      count := j + 1;
      last := j
    done;
    let e = !last in
    let k = kind.(id) in
    if k = Arena.k_internal then begin
      let c = ref first.(id) in
      while !c >= 0 do
        expand e !c;
        c := next.(!c)
      done
    end
    else if k = Arena.k_sink then begin
      cap.{base + e} <- cap.{base + e} +. tap_c.{id};
      taps := (e, 0, id) :: !taps;
      incr ntaps
    end
    else if k = Arena.k_buffer then begin
      cap.{base + e} <- cap.{base + e} +. tap_c.{id};
      taps := (e, 1, id) :: !taps;
      incr ntaps;
      on_buffer id
    end
    else invalid_arg "Rcflat: source below stage root"
  in
  let c = ref first.(driver) in
  while !c >= 0 do
    expand 0 !c;
    c := next.(!c)
  done;
  let n = !count in
  let ntaps = !ntaps in
  let watch = Array.make ntaps 0 in
  let tkind = Array.make ntaps 0 in
  let tnode = Array.make ntaps 0 in
  (* The list holds taps newest-first; filling backwards restores the
     DFS (= boxed) tap order. *)
  let k = ref (ntaps - 1) in
  List.iter
    (fun (idx, kd, id) ->
      watch.(!k) <- idx;
      tkind.(!k) <- kd;
      tnode.(!k) <- id;
      decr k)
    !taps;
  p.off.(si) <- base;
  p.size.(si) <- n;
  p.driver.(si) <- driver;
  p.watch.(si) <- watch;
  p.tap_kind.(si) <- tkind;
  p.tap_node.(si) <- tnode;
  p.fp.(si) <- fingerprint_region p ~base ~n ~watch ~tap_kind:tkind

let slack n = max 4 (n / 8)

(* ------------------------------------------------------------------ *)
(* Compile / recompile                                                 *)
(* ------------------------------------------------------------------ *)

let push_level p depth =
  (* Stages come off the BFS queue in nondecreasing depth; open a new
     level range whenever the depth steps up. *)
  if depth >= p.nlevels then begin
    let capn = Array.length p.level_off in
    if depth + 2 > capn then begin
      let b = Array.make (max (depth + 2) (2 * capn)) 0 in
      Array.blit p.level_off 0 b 0 capn;
      p.level_off <- b
    end;
    for l = p.nlevels to depth do
      p.level_off.(l + 1) <- p.level_off.(l)
    done;
    p.nlevels <- depth + 1
  end;
  p.level_off.(depth + 1) <- p.level_off.(depth + 1) + 1

let recompile p =
  p.plen <- 0;
  p.wasted <- 0;
  p.nstages <- 0;
  p.nlevels <- 0;
  if Array.length p.level_off < 2 then p.level_off <- Array.make 8 0;
  p.level_off.(0) <- 0;
  p.level_off.(1) <- 0;
  let pending = Queue.create () in
  Queue.add (Arena.root p.arena, 0) pending;
  while not (Queue.is_empty pending) do
    let driver, depth = Queue.pop pending in
    let si = p.nstages in
    ensure_meta p (si + 1);
    let n = measure p ~driver in
    let cap_slots = n + slack n in
    ensure_pool p (p.plen + cap_slots);
    extract p ~si ~driver ~base:p.plen
      ~on_buffer:(fun id -> Queue.add (id, depth + 1) pending);
    p.slots.(si) <- cap_slots;
    p.plen <- p.plen + cap_slots;
    p.nstages <- si + 1;
    push_level p depth
  done

let compile ?(seg_len = Rcnet.default_seg_len) arena =
  let p =
    { arena; seg_len; res = ba 0; cap = ba 0; parent = Array.make 1 (-1);
      plen = 0; wasted = 0; nstages = 0; off = [||]; size = [||];
      slots = [||]; driver = [||]; fp = [||]; watch = [||]; tap_kind = [||];
      tap_node = [||]; nlevels = 0; level_off = Array.make 8 0 }
  in
  recompile p;
  p

(* ------------------------------------------------------------------ *)
(* In-place dirty update                                               *)
(* ------------------------------------------------------------------ *)

let compact p =
  let total = ref 0 in
  for si = 0 to p.nstages - 1 do
    total := !total + p.slots.(si)
  done;
  let res' = ba !total and cap' = ba !total in
  let par' = Array.make (max !total 1) (-1) in
  let cursor = ref 0 in
  for si = 0 to p.nstages - 1 do
    let o = p.off.(si) and s = p.slots.(si) in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub p.res o s)
      (Bigarray.Array1.sub res' !cursor s);
    Bigarray.Array1.blit
      (Bigarray.Array1.sub p.cap o s)
      (Bigarray.Array1.sub cap' !cursor s);
    Array.blit p.parent o par' !cursor s;
    p.off.(si) <- !cursor;
    cursor := !cursor + s
  done;
  p.res <- res';
  p.cap <- cap';
  p.parent <- par';
  p.plen <- !cursor;
  p.wasted <- 0

(* Re-extract one stage after its tree content changed. The driver and
   the stage's position in the BFS order are structural invariants on the
   dirty path (structural edits force a full recompile upstream). *)
let update_stage p si =
  let driver = p.driver.(si) in
  let n = measure p ~driver in
  if n <= p.slots.(si) then
    extract p ~si ~driver ~base:p.off.(si) ~on_buffer:(fun _ -> ())
  else begin
    (* Outgrew its region: relocate to the tail, strand the old slots. *)
    p.wasted <- p.wasted + p.slots.(si);
    let cap_slots = n + slack n in
    ensure_pool p (p.plen + cap_slots);
    extract p ~si ~driver ~base:p.plen ~on_buffer:(fun _ -> ());
    p.slots.(si) <- cap_slots;
    p.plen <- p.plen + cap_slots;
    if 2 * p.wasted > p.plen then compact p
  end

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

let nstages p = p.nstages
let total_nodes p = p.plen - p.wasted

(* Materialise a boxed [Rcnet.t] copy of one stage — the equivalence
   oracle in the tests compares it against the boxed extraction. *)
let stage_rc p si =
  let base = p.off.(si) and n = p.size.(si) in
  let parent = Array.init n (fun i -> p.parent.(base + i)) in
  let res = Array.init n (fun i -> p.res.{base + i}) in
  let cap = Array.init n (fun i -> p.cap.{base + i}) in
  let taps =
    Array.init
      (Array.length p.watch.(si))
      (fun k ->
        let id = p.tap_node.(si).(k) in
        ( p.watch.(si).(k),
          if p.tap_kind.(si).(k) = 0 then Rcnet.Tap_sink id
          else Rcnet.Tap_buffer id ))
  in
  { Rcnet.parent; res; cap; taps; size = n }
