(** A small fixed pool of OCaml 5 domains for coarse-grained parallel
    fan-out (stdlib-only: [Domain], [Mutex], [Condition], [Atomic]).

    Jobs must not share mutable state unless they synchronise themselves;
    the evaluator hands each job its own output slot and per-slot caches,
    so runs are deterministic regardless of scheduling. *)

type t

(** [create ?size ()] spawns [size] worker domains (default
    [Domain.recommended_domain_count () - 1], floored at 0). A pool of
    size 0 runs everything on the calling domain. *)
val create : ?size:int -> unit -> t

(** Number of worker domains (excludes the calling domain). *)
val size : t -> int

(** [submit pool job] enqueues a fire-and-forget job. Workers run every
    job behind an exception shield — a raising job can never take its
    domain down (which would silently shrink the pool for the rest of
    the process) — so a [submit]ted job's exception is swallowed and
    counted in {!failed_jobs}; jobs that must report failures should
    capture them in their own state (as {!map} does internally). On a
    size-0 pool the job runs inline on the calling domain, serialized
    against other inline submitters: concurrent [submit]s from
    systhreads of one domain run one at a time, preserving the
    domain-exclusive scratch (DLS workspaces) jobs rely on. A job must
    not [submit] into the pool running it inline, or it deadlocks. *)
val submit : t -> (unit -> unit) -> unit

(** Jobs whose exception was caught by the worker shield since the pool
    was created. [map]/[map_weighted] jobs capture and re-raise their
    own errors, so they never count here. *)
val failed_jobs : t -> int

(** Join all workers. The pool must not be used afterwards. *)
val shutdown : t -> unit

(** Parallel [Array.map], order-preserving. The calling domain executes
    jobs too, so a size-0 pool is exactly sequential [Array.map]. If any
    job raises, the exception for the lowest index is re-raised after all
    jobs finish. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_weighted pool ~weight f xs] — {!map}, but jobs are submitted to
    the queue heaviest-first (ties broken by input index), so a big job
    scheduled last in input order cannot become the tail the whole pool
    waits on. The calling domain takes the heaviest job itself. Results
    stay in input order; on a size-0 pool this is plain sequential
    [Array.map], like {!map}. *)
val map_weighted : t -> weight:('a -> int) -> ('a -> 'b) -> 'a array -> 'b array

(** The shared lazily-created pool (default size), joined automatically
    at process exit. *)
val global : unit -> t
