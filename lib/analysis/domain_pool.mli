(** A small fixed pool of OCaml 5 domains for coarse-grained parallel
    fan-out (stdlib-only: [Domain], [Mutex], [Condition], [Atomic]).

    Jobs must not share mutable state unless they synchronise themselves;
    the evaluator hands each job its own output slot and per-slot caches,
    so runs are deterministic regardless of scheduling. *)

type t

(** [create ?size ()] spawns [size] worker domains (default
    [Domain.recommended_domain_count () - 1], floored at 0). A pool of
    size 0 runs everything on the calling domain. *)
val create : ?size:int -> unit -> t

(** Number of worker domains (excludes the calling domain). *)
val size : t -> int

(** Join all workers. The pool must not be used afterwards. *)
val shutdown : t -> unit

(** Parallel [Array.map], order-preserving. The calling domain executes
    jobs too, so a size-0 pool is exactly sequential [Array.map]. If any
    job raises, the exception for the lowest index is re-raised after all
    jobs finish. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map_weighted pool ~weight f xs] — {!map}, but jobs are submitted to
    the queue heaviest-first (ties broken by input index), so a big job
    scheduled last in input order cannot become the tail the whole pool
    waits on. The calling domain takes the heaviest job itself. Results
    stay in input order; on a size-0 pool this is plain sequential
    [Array.map], like {!map}. *)
val map_weighted : t -> weight:('a -> int) -> ('a -> 'b) -> 'a array -> 'b array

(** The shared lazily-created pool (default size), joined automatically
    at process exit. *)
val global : unit -> t
