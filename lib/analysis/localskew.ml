open Geometry
module Tree = Ctree.Tree

let compute (run : Evaluator.run) ~tree ~radius =
  if radius <= 0 then invalid_arg "Localskew.compute: radius <= 0";
  let sinks = Tree.sinks tree in
  (* Bucket sinks on a grid of pitch [radius]; any pair within the radius
     lives in the same or neighbouring buckets. *)
  let buckets = Hashtbl.create (Array.length sinks) in
  Array.iter
    (fun s ->
      let p = (Tree.node tree s).Tree.pos in
      let key = (p.Point.x / radius, p.Point.y / radius) in
      Hashtbl.replace buckets key
        (s :: (try Hashtbl.find buckets key with Not_found -> [])))
    sinks;
  let worst = ref 0. in
  let consider a b =
    let pa = (Tree.node tree a).Tree.pos and pb = (Tree.node tree b).Tree.pos in
    if Point.dist pa pb <= radius then begin
      let d =
        Float.abs
          (run.Evaluator.latency.(a) -. run.Evaluator.latency.(b))
      in
      if Float.is_finite d && d > !worst then worst := d
    end
  in
  Hashtbl.iter
    (fun (bx, by) members ->
      (* within the bucket *)
      let rec pairs = function
        | a :: rest ->
          List.iter (consider a) rest;
          pairs rest
        | [] -> ()
      in
      pairs members;
      (* against forward neighbour buckets only, to visit each pair once *)
      List.iter
        (fun (dx, dy) ->
          match Hashtbl.find_opt buckets (bx + dx, by + dy) with
          | Some others ->
            List.iter (fun a -> List.iter (consider a) others) members
          | None -> ())
        [ (1, 0); (0, 1); (1, 1); (1, -1) ])
    buckets;
  !worst

let profile run ~tree ~radii =
  List.map (fun r -> (r, compute run ~tree ~radius:r)) radii
