module Tree = Ctree.Tree

type spec = {
  trials : int;
  sigma_buffer : float;
  sigma_wire : float;
  seed : int;
  engine : Evaluator.engine;
}

let default_spec =
  { trials = 30; sigma_buffer = 0.05; sigma_wire = 0.02; seed = 1;
    engine = Evaluator.Spice }

type result = {
  nominal_skew : float;
  mean_skew : float;
  max_skew : float;
  std_skew : float;
  mean_latency : float;
}

(* Minimal Gaussian PRNG (Box–Muller over splitmix64), independent of the
   global Random state so trials are reproducible. *)
module Prng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let uniform t =
    Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

  let normal t =
    let u1 = Float.max 1e-12 (uniform t) and u2 = uniform t in
    sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
end

(* Perturb a buffer's drive strength by scaling its base device's
   resistances; count and capacitances stay (strength variation, not a
   different cell). *)
let perturb_buffer rng sigma (b : Tech.Composite.t) =
  let f = Float.max 0.5 (1. +. (sigma *. Prng.normal rng)) in
  let d = b.Tech.Composite.base in
  let d' =
    Tech.Device.make ~name:d.Tech.Device.name ~c_in:d.Tech.Device.c_in
      ~c_out:d.Tech.Device.c_out
      ~r_up:(d.Tech.Device.r_up *. f)
      ~r_down:(d.Tech.Device.r_down *. f)
      ~d_intrinsic:(d.Tech.Device.d_intrinsic *. f)
      ~slew_coeff:d.Tech.Device.slew_coeff
      ~inverting:d.Tech.Device.inverting ()
  in
  Tech.Composite.make d' b.Tech.Composite.count

(* Wire resistance variation: model as extra/less snake-equivalent length
   is wrong (changes C too); instead jitter via the wire class is global.
   We approximate per-wire R variation by scaling the snake... no — use a
   dedicated per-wire jitter on [geom_len] electrical length for R and C
   together, the dominant intra-die interconnect effect (width/thickness
   variation moves both). *)
let perturb_wire rng sigma (nd : Tree.node) =
  if sigma > 0. && Tree.wire_len nd > 0 then begin
    let f = Float.max 0.7 (1. +. (sigma *. Prng.normal rng)) in
    let len = float_of_int (Tree.wire_len nd) in
    let target = int_of_float (len *. f) in
    (* keep geometry; express the perturbation as snake delta, clamped so
       electrical length stays >= geometric *)
    nd.Tree.snake <- max 0 (nd.Tree.snake + (target - Tree.wire_len nd))
  end

let run spec tree =
  if spec.trials < 1 then invalid_arg "Montecarlo.run: trials < 1";
  let nominal = Evaluator.evaluate ~engine:spec.engine tree in
  let rng = Prng.create spec.seed in
  let skews = ref [] and lats = ref [] in
  for _ = 1 to spec.trials do
    let t = Tree.copy tree in
    Tree.iter t (fun nd ->
        (match nd.Tree.kind with
        | Tree.Buffer b ->
          nd.Tree.kind <- Tree.Buffer (perturb_buffer rng spec.sigma_buffer b)
        | _ -> ());
        if nd.Tree.parent >= 0 then perturb_wire rng spec.sigma_wire nd);
    let ev = Evaluator.evaluate ~engine:spec.engine t in
    skews := ev.Evaluator.skew :: !skews;
    lats := ev.Evaluator.t_max :: !lats
  done;
  let n = float_of_int spec.trials in
  let mean xs = List.fold_left ( +. ) 0. xs /. n in
  let mean_skew = mean !skews in
  let std_skew =
    sqrt (mean (List.map (fun s -> (s -. mean_skew) ** 2.) !skews))
  in
  {
    nominal_skew = nominal.Evaluator.skew;
    mean_skew;
    max_skew = List.fold_left Float.max 0. !skews;
    std_skew;
    mean_latency = mean !lats;
  }
