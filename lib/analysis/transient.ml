(* Backward Euler on the MNA of an RC tree:
     (C/h + G) v_{t+h} = (C/h) v_t + i_src(t+h)
   where G is the conductance Laplacian of the tree edges plus the driver
   conductance at the root. Because the matrix is tree-structured and
   constant, a single leaf-elimination factorisation is computed up front
   and every step costs two O(n) sweeps. Conductances are in 1/Ω, caps in
   fF, time in ps: i = C dv/dt gives (fF/ps) · V = mA·10⁻³... all terms are
   scaled consistently by expressing capacitance as cap·1e-3 fF/ps units
   (Ω·fF = 10⁻³ ps).

   The driver conductance 1/r_drv appears only in the root's diagonal
   entry, and the leaf elimination (children before parents) never reads
   the root diagonal while eliminating. The factorisation below therefore
   excludes the driver term entirely: the effective root diagonal is
   reconstructed as [dfact.(0) +. g0] at solve time, which lets one
   factorisation be shared across arbitrary driver resistances.

   Stepping controller (the adaptive modes). A fixed fine march spends
   most of its steps where nothing observable happens: the input ramp is
   over within a few ps, and each watched node only needs fine resolution
   inside the windows that contain its 10/50/90 % crossings. The adaptive
   march therefore:

     1. fine-steps through the driver ramp plus four coarse windows (the
        input kink and the fast modes it excites live here);
     2. runs THREE coarse backward-Euler marches in lockstep, with steps
        a = mult·h, b = a/2 and c = a/4, from the shared fine state.
        Backward Euler's global error has an asymptotic expansion in
        powers of the step size, so at every coarse boundary the three
        states are extrapolated in the step down to the fine step h by
        the quadratic Lagrange fit through (a, v_a), (b, v_b), (c, v_c).
        The extrapolated state tracks the fixed-fine-step march to
        O(a·b·c) — not merely the exact solution, which the fine march
        itself misses by O(h);
     3. scans only the live frontier of watched nodes at each boundary.
        When an extrapolated value brackets a pending threshold, the
        window is rewound: the full extrapolated entry state is rebuilt
        and the window re-integrated at the fine step, firing crossings
        exactly like the reference march. All coarse marches restart
        from the fine exit state.

   Crossing-time agreement with the fixed-fine reference is set by the
   extrapolation residual. For a single pole τ the backward-Euler march
   at step h follows exp with effective constant τ_eff = h/ln(1+h/τ)
   = τ·(1 + x/2 − x²/12 + x³/24 − …), x = h/τ; the quadratic fit
   cancels the x and x² terms, leaving a slew residual
   ≈ ln 9·(a·b·c)/(24·τ²) ≈ 0.011·a³/τ² ps. The Auto controller picks
   a ≈ 0.8·τ^⅔ (both in ps), keeping that residual ≈ 0.006 ps — an
   order under the documented 0.05 ps tolerance — while a quiet window
   costs 7 solves instead of mult, saving ~mult/7 outside crossing
   windows. *)

type factored = {
  g : float array;      (* edge conductance to parent; g.(0) unused (0.) *)
  dfact : float array;  (* factored diagonal, WITHOUT the driver term at 0 *)
  c_over_h : float array;
  h : float;            (* the timestep the factorisation assumed *)
}

let default_step = 0.5

let factor ?(step = default_step) (rc : Rcnet.t) =
  let n = rc.size in
  let g = Array.make n 0. in
  for i = 1 to n - 1 do
    (* Zero-length wires can produce 0 Ω segments; clamp for stability. *)
    g.(i) <- 1. /. Float.max rc.res.(i) 1e-6
  done;
  let c_over_h = Array.map (fun c -> c *. Tech.Units.rc_to_ps /. step) rc.cap in
  let dfact = Array.make n 0. in
  for i = 0 to n - 1 do
    dfact.(i) <- c_over_h.(i) +. g.(i)
  done;
  (* Children contribute g to their parent's diagonal. *)
  for i = 1 to n - 1 do
    dfact.(rc.parent.(i)) <- dfact.(rc.parent.(i)) +. g.(i)
  done;
  (* Leaf elimination, children before parents (indices are topological). *)
  for i = n - 1 downto 1 do
    let p = rc.parent.(i) in
    dfact.(p) <- dfact.(p) -. (g.(i) *. g.(i) /. dfact.(i))
  done;
  { g; dfact; c_over_h; h = step }

(* One implicit step from state [vin] to state [vout] (they may alias):
   source voltage vs at t+h, driver conductance g0 = 1/r_drv. [vin] is
   only read by the forward sweep, so in-place stepping is safe. *)
let step_solve (rc : Rcnet.t) f ~g0 ~vs ~vin ~vout ~r =
  let n = rc.size in
  for i = 0 to n - 1 do
    r.(i) <- f.c_over_h.(i) *. vin.(i)
  done;
  r.(0) <- r.(0) +. (g0 *. vs);
  for i = n - 1 downto 1 do
    let p = rc.parent.(i) in
    r.(p) <- r.(p) +. (f.g.(i) /. f.dfact.(i) *. r.(i))
  done;
  vout.(0) <- r.(0) /. (f.dfact.(0) +. g0);
  for i = 1 to n - 1 do
    vout.(i) <- (r.(i) +. (f.g.(i) *. vout.(rc.parent.(i)))) /. f.dfact.(i)
  done

let ramp_voltage ~ramp t = if t <= 0. then 0. else if t >= ramp then 1. else t /. ramp

let default_max_steps = 2_000_000

let thresholds = [| 0.1; 0.5; 0.9 |]

(* ------------------------------------------------------------------ *)
(* Workspace                                                           *)
(* ------------------------------------------------------------------ *)

type workspace = {
  mutable cap_n : int;          (* capacity of the node-sized arrays *)
  mutable v : float array;      (* fine-march state *)
  mutable r : float array;      (* solve residual *)
  mutable va0 : float array;    (* a-march: window entry / exit (swapped) *)
  mutable va1 : float array;
  mutable vb0 : float array;    (* b-march: entry / exit *)
  mutable vb1 : float array;
  mutable vc0 : float array;    (* c-march: entry / exit *)
  mutable vc1 : float array;
  mutable cap_w : int;          (* capacity of the watch-sized arrays *)
  mutable prev : float array;   (* last scanned value per watch slot *)
  mutable nextk : int array;    (* next pending threshold per watch slot *)
  mutable live : int array;     (* compact frontier of uncrossed slots *)
}

let workspace () =
  { cap_n = 0; v = [||]; r = [||]; va0 = [||]; va1 = [||]; vb0 = [||];
    vb1 = [||]; vc0 = [||]; vc1 = [||]; cap_w = 0; prev = [||];
    nextk = [||]; live = [||] }

(* One lazily-created workspace per domain — the fallback when a caller
   passes no [?ws], so ad-hoc solves on a pool worker (the regional
   flow's per-region extractions, one-off probes) reuse the grown state
   arrays across calls instead of reallocating them. *)
let domain_workspace_key = Domain.DLS.new_key workspace
let domain_workspace () = Domain.DLS.get domain_workspace_key

let grow ws ~n ~w =
  if ws.cap_n < n then begin
    let c = Int.max n (Int.max 64 (2 * ws.cap_n)) in
    ws.v <- Array.make c 0.;
    ws.r <- Array.make c 0.;
    ws.va0 <- Array.make c 0.;
    ws.va1 <- Array.make c 0.;
    ws.vb0 <- Array.make c 0.;
    ws.vb1 <- Array.make c 0.;
    ws.vc0 <- Array.make c 0.;
    ws.vc1 <- Array.make c 0.;
    ws.cap_n <- c
  end;
  if ws.cap_w < w then begin
    let c = Int.max w (Int.max 16 (2 * ws.cap_w)) in
    ws.prev <- Array.make c 0.;
    ws.nextk <- Array.make c 0;
    ws.live <- Array.make c 0;
    ws.cap_w <- c
  end

(* ------------------------------------------------------------------ *)
(* Factorisation cache                                                 *)
(* ------------------------------------------------------------------ *)

(* Second-chance ("clock") eviction shared by the bounded factorisation
   caches. The old behaviour at capacity was [Hashtbl.reset] — harmless
   in a one-shot flow whose working set never reaches the cap, but in a
   long-lived server it dumps every warm factorisation at once and then
   thrashes at the cap boundary. Instead, entries carry a [used] bit set
   on every hit; insertion at capacity rotates a FIFO ring, giving used
   entries a second chance (clearing the bit) and evicting the first
   cold one. The entry being inserted is never a candidate — it joins
   the ring only after room has been made. *)
type 'v centry = { cv : 'v; mutable used : bool }

let clock_find tbl key =
  match Hashtbl.find_opt tbl key with
  | Some e ->
    e.used <- true;
    Some e.cv
  | None -> None

let clock_insert tbl ring ~cap key v =
  if Hashtbl.length tbl >= cap then begin
    (* Terminates: a full rotation clears every [used] flag it sees, so
       within 2·|ring| pops a cold entry is found. *)
    let budget = ref (2 * Queue.length ring) in
    let evicted = ref false in
    while (not !evicted) && !budget > 0 do
      decr budget;
      match Queue.pop ring with
      | exception Queue.Empty -> evicted := true
      | k -> (
        match Hashtbl.find_opt tbl k with
        | Some e when e.used ->
          e.used <- false;
          Queue.add k ring
        | Some _ ->
          Hashtbl.remove tbl k;
          evicted := true
        | None -> ())
    done
  end;
  Hashtbl.add tbl key { cv = v; used = false };
  Queue.add key ring

(* Process-wide factorisation store shared across independent caches
   (and, in the serve daemon, across requests): a lock-striped bounded
   table safe to touch from any domain. [factored] values are immutable
   after {!factor} returns, so sharing them across domains is free of
   data races; only the stripe tables need the locks. *)
module Fstore = struct
  type stripe = {
    lock : Mutex.t;
    tbl : (int64 * float, factored) Hashtbl.t;
  }

  type t = {
    stripes : stripe array;
    stripe_cap : int;
    evictions : int Atomic.t;
  }

  let create ?(stripes = 16) ?(cap = 16384) () =
    let nstripes = Int.max 1 stripes in
    {
      stripes =
        Array.init nstripes (fun _ ->
            { lock = Mutex.create (); tbl = Hashtbl.create 64 });
      stripe_cap = Int.max 1 (cap / nstripes);
      evictions = Atomic.make 0;
    }

  let stripe t ((fp, _) : int64 * float) =
    t.stripes.((Int64.to_int fp land max_int) mod Array.length t.stripes)

  let find t key =
    let s = stripe t key in
    Mutex.lock s.lock;
    let r = Hashtbl.find_opt s.tbl key in
    Mutex.unlock s.lock;
    r

  let add t key f =
    let s = stripe t key in
    Mutex.lock s.lock;
    if not (Hashtbl.mem s.tbl key) then begin
      if Hashtbl.length s.tbl >= t.stripe_cap then begin
        (* Random-subset eviction: drop a quarter of the stripe in hash
           order — bounded, incremental, and never the entry about to be
           inserted. *)
        let drop = Int.max 1 (t.stripe_cap / 4) in
        let doomed = ref [] and n = ref 0 in
        (try
           Hashtbl.iter
             (fun k _ ->
               if !n >= drop then raise Exit;
               doomed := k :: !doomed;
               incr n)
             s.tbl
         with Exit -> ());
        List.iter (Hashtbl.remove s.tbl) !doomed;
        ignore (Atomic.fetch_and_add t.evictions !n)
      end;
      Hashtbl.add s.tbl key f
    end;
    Mutex.unlock s.lock

  let length t =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.lock;
        let n = Hashtbl.length s.tbl in
        Mutex.unlock s.lock;
        acc + n)
      0 t.stripes

  let evictions t = Atomic.get t.evictions

  let clear t =
    Array.iter
      (fun s ->
        Mutex.lock s.lock;
        Hashtbl.reset s.tbl;
        Mutex.unlock s.lock)
      t.stripes
end

module Fcache = struct
  type nonrec t = {
    tbl : (int64 * float, factored centry) Hashtbl.t;
    ring : (int64 * float) Queue.t;
    cap : int;
    store : Fstore.t option;
  }

  let create ?(cap = 4096) ?store () =
    { tbl = Hashtbl.create 64; ring = Queue.create (); cap; store }

  let get c ?fp rc ~step =
    let fp = match fp with Some f -> f | None -> Rcnet.fingerprint rc in
    let key = (fp, step) in
    match clock_find c.tbl key with
    | Some f -> f
    | None -> (
      (* A cached factor is bit-identical to a recomputed one, so the
         shared store changes wall-clock only, never numerics. *)
      match Option.bind c.store (fun s -> Fstore.find s key) with
      | Some f ->
        clock_insert c.tbl c.ring ~cap:c.cap key f;
        f
      | None ->
        let f = factor ~step rc in
        clock_insert c.tbl c.ring ~cap:c.cap key f;
        Option.iter (fun s -> Fstore.add s key f) c.store;
        f)

  let length c = Hashtbl.length c.tbl

  let clear c =
    Hashtbl.reset c.tbl;
    Queue.clear c.ring
end

(* Steps composed arithmetically (mult *. step /. mult, corner scaling…)
   may differ from the factorisation's in the last bits; accept them
   within a relative epsilon instead of tripping on exact inequality. *)
let step_matches f step =
  Float.abs (f.h -. step) <= 1e-9 *. Float.max (Float.abs f.h) (Float.abs step)

let get_factored ?factored ?fcache ?fp ~step rc =
  match factored with
  | Some f ->
    if not (step_matches f step) then
      invalid_arg "Transient: factored timestep mismatch";
    f
  | None -> (
    match fcache with
    | Some c -> Fcache.get c ?fp rc ~step
    | None -> factor ~step rc)

(* ------------------------------------------------------------------ *)
(* Stepping controller                                                 *)
(* ------------------------------------------------------------------ *)

type mode =
  | Fixed
  | Adaptive of { mult : int }
  | Auto of { max_mult : int }

let default_mode = Auto { max_mult = 32 }

(* Coarse window target a ≈ coeff·τ^⅔ keeps the extrapolation residual
   ≈ 0.011·coeff³ ps regardless of τ (see the header note); 0.8 leaves
   an order of magnitude under the 0.05 ps tolerance for multi-pole
   stages whose residual constants exceed the single-pole estimate. *)
let auto_window_coeff = 0.8

(* Smallest watched first moment (≈ the fastest tap's dominant time
   constant, driver included), using caller scratch to stay
   allocation-free. *)
let stage_tau (rc : Rcnet.t) ~r_drv ~watch ~down ~m =
  let n = rc.size in
  Array.blit rc.cap 0 down 0 n;
  for i = n - 1 downto 1 do
    down.(rc.parent.(i)) <- down.(rc.parent.(i)) +. down.(i)
  done;
  m.(0) <- Tech.Units.ps_of_rc r_drv down.(0);
  for i = 1 to n - 1 do
    m.(i) <- m.(rc.parent.(i)) +. Tech.Units.ps_of_rc rc.res.(i) down.(i)
  done;
  let tau = ref infinity in
  Array.iter (fun wi -> if m.(wi) < !tau then tau := m.(wi)) watch;
  if Float.is_finite !tau then !tau else 0.

(* Window-size selection from the watched time constant — shared by the
   boxed and flat kernels so the same stage always gets the same rate. *)
let mult_of_tau ~tau ~step ~max_mult =
  let target =
    auto_window_coeff *. Float.pow (Float.max tau 0.) (2. /. 3.) /. step
  in
  let cap = Int.max 2 (2 * (max_mult / 2)) in
  let mult =
    if Float.is_finite target then Int.min (int_of_float target) cap else cap
  in
  (* Below 12 the 7-solve window overhead eats the saving. *)
  if mult < 12 then 1 else 2 * (mult / 2)

let resolve_mult mode (rc : Rcnet.t) ~r_drv ~watch ~step ~down ~m =
  match mode with
  | Fixed -> 1
  | Adaptive { mult } -> if mult < 2 then 1 else 2 * (mult / 2)
  | Auto { max_mult } ->
    if Array.length watch = 0 then 1
    else
      let tau = stage_tau rc ~r_drv ~watch ~down ~m in
      mult_of_tau ~tau ~step ~max_mult

(* ------------------------------------------------------------------ *)
(* Cross-call telemetry                                                *)
(* ------------------------------------------------------------------ *)

type march = { solves : int; fine_equiv : int; truncated : bool }

type counters = {
  total_solves : int;
  total_saved : int;
  total_truncations : int;
}

let solves_ctr = Atomic.make 0
let saved_ctr = Atomic.make 0
let trunc_ctr = Atomic.make 0

let counters () =
  { total_solves = Atomic.get solves_ctr;
    total_saved = Atomic.get saved_ctr;
    total_truncations = Atomic.get trunc_ctr }

let reset_counters () =
  Atomic.set solves_ctr 0;
  Atomic.set saved_ctr 0;
  Atomic.set trunc_ctr 0

(* ------------------------------------------------------------------ *)
(* The march                                                           *)
(* ------------------------------------------------------------------ *)

(* The three-rate march controller, generic over the per-step kernel:
   [fine] is the fine-step factorisation, [rate stp] produces (or looks
   up) a coarse-rate one, and [solve f ~vs ~vin ~vout] advances one
   implicit step — the driver conductance and the residual scratch are
   captured inside the closure. The closure dispatch costs one indirect
   call per *step* (the per-node work stays inside [solve]), so the boxed
   and flat kernels share every line of controller logic — lead-in,
   Lagrange extrapolation, bracket/rewind, truncation accounting — and
   cannot drift apart. *)
let march_core ~step ~mult ~fine ~rate ~solve ~ws ~n ~ramp ~watch ~on_cross
    ~max_steps =
  (* [watch] : rc node indices to monitor; [on_cross] called with
     (watch_slot, threshold_index, time). Thresholds are 0.1, 0.5, 0.9. *)
  begin
    let nwatch = Array.length watch in
    let v = ws.v in
    Array.fill v 0 n 0.;
    let prev = ws.prev and nextk = ws.nextk and live = ws.live in
    for w0 = 0 to nwatch - 1 do
      prev.(w0) <- 0.;
      nextk.(w0) <- 0;
      live.(w0) <- w0
    done;
    let nlive = ref nwatch in
    let remaining = ref (nwatch * 3) in
    let solves = ref 0 in
    let fine_equiv = ref 0 in
    let truncated = ref false in
    (* Scan the live frontier against [v] after a fine step t0 → t0+h;
       nodes with all three thresholds crossed leave the frontier. *)
    let scan ~t0 ~h =
      let idx = ref 0 in
      while !idx < !nlive do
        let w0 = live.(!idx) in
        let vw = v.(watch.(w0)) in
        let k = ref nextk.(w0) in
        while !k < 3 && vw >= thresholds.(!k) do
          (* Linear interpolation inside the step. *)
          let frac =
            if vw -. prev.(w0) <= 0. then 1.
            else (thresholds.(!k) -. prev.(w0)) /. (vw -. prev.(w0))
          in
          on_cross w0 !k (t0 +. (frac *. h));
          decr remaining;
          incr k
        done;
        nextk.(w0) <- !k;
        if !k > 2 then begin
          decr nlive;
          live.(!idx) <- live.(!nlive);
          live.(!nlive) <- w0
        end
        else begin
          prev.(w0) <- vw;
          incr idx
        end
      done
    in
    let t = ref 0. in
    (* Up to [budget] fine steps from the current state; accounted in
       both [solves] and [fine_equiv]. *)
    let fine_steps budget =
      let taken = ref 0 in
      while !remaining > 0 && !taken < budget do
        incr taken;
        incr solves;
        let t1 = !t +. step in
        solve fine ~vs:(ramp_voltage ~ramp t1) ~vin:v ~vout:v;
        scan ~t0:!t ~h:step;
        t := t1
      done;
      fine_equiv := !fine_equiv + !taken
    in
    if mult <= 1 then begin
      fine_steps max_steps;
      truncated := !remaining > 0
    end
    else begin
      let step_a = step *. float_of_int mult in
      let step_b = step_a /. 2. in
      let step_c = step_a /. 4. in
      let fa = rate step_a and fb = rate step_b and fc = rate step_c in
      (* Quadratic Lagrange extrapolation in the step size, evaluated at
         the fine step: v̂ = wa·v_a + wb·v_b + wc·v_c. *)
      let wa =
        (step -. step_b) *. (step -. step_c)
        /. ((step_a -. step_b) *. (step_a -. step_c))
      in
      let wb =
        (step -. step_a) *. (step -. step_c)
        /. ((step_b -. step_a) *. (step_b -. step_c))
      in
      let wc =
        (step -. step_a) *. (step -. step_b)
        /. ((step_c -. step_a) *. (step_c -. step_b))
      in
      (* Lead-in: fine through the input ramp plus four coarse windows, so
         the kink and the fast modes it excites are resolved — and mostly
         decayed — before the step-size extrapolation starts. *)
      let lead = int_of_float (ceil (ramp /. step)) + (4 * mult) in
      fine_steps (Int.min lead max_steps);
      if !remaining > 0 then
        if !fine_equiv + mult > max_steps then truncated := true
        else begin
          Array.blit v 0 ws.va0 0 n;
          Array.blit v 0 ws.vb0 0 n;
          Array.blit v 0 ws.vc0 0 n;
          let continue_ = ref true in
          while !remaining > 0 && !continue_ do
            if !fine_equiv + mult > max_steps then begin
              continue_ := false;
              truncated := true
            end
            else begin
              let t1 = !t +. step_a in
              incr solves;
              solve fa ~vs:(ramp_voltage ~ramp t1) ~vin:ws.va0 ~vout:ws.va1;
              incr solves;
              solve fb ~vs:(ramp_voltage ~ramp (!t +. step_b)) ~vin:ws.vb0
                ~vout:ws.vb1;
              incr solves;
              solve fb ~vs:(ramp_voltage ~ramp t1) ~vin:ws.vb1 ~vout:ws.vb1;
              incr solves;
              solve fc ~vs:(ramp_voltage ~ramp (!t +. step_c)) ~vin:ws.vc0
                ~vout:ws.vc1;
              for q = 2 to 4 do
                incr solves;
                solve fc
                  ~vs:(ramp_voltage ~ramp (!t +. (float_of_int q *. step_c)))
                  ~vin:ws.vc1 ~vout:ws.vc1
              done;
              (* Bracket test on the extrapolated frontier values. *)
              let hot = ref false in
              for idx = 0 to !nlive - 1 do
                let w0 = live.(idx) in
                let wi = watch.(w0) in
                if (wa *. ws.va1.(wi)) +. (wb *. ws.vb1.(wi))
                   +. (wc *. ws.vc1.(wi))
                   >= thresholds.(nextk.(w0))
                then hot := true
              done;
              if !hot then begin
                (* Rewind: rebuild the extrapolated entry state and
                   re-integrate the window at the fine rate. [prev]
                   already holds these values for the frontier (the same
                   extrapolation was committed there last boundary). *)
                for i = 0 to n - 1 do
                  v.(i) <-
                    (wa *. ws.va0.(i)) +. (wb *. ws.vb0.(i))
                    +. (wc *. ws.vc0.(i))
                done;
                fine_steps mult;
                if !remaining > 0 then begin
                  (* All coarse marches restart from the fine state. *)
                  t := t1;
                  Array.blit v 0 ws.va0 0 n;
                  Array.blit v 0 ws.vb0 0 n;
                  Array.blit v 0 ws.vc0 0 n
                end
              end
              else begin
                for idx = 0 to !nlive - 1 do
                  let w0 = live.(idx) in
                  let wi = watch.(w0) in
                  prev.(w0) <-
                    (wa *. ws.va1.(wi)) +. (wb *. ws.vb1.(wi))
                    +. (wc *. ws.vc1.(wi))
                done;
                (* Commit: window-exit states become the next entry. *)
                let tmp = ws.va0 in
                ws.va0 <- ws.va1;
                ws.va1 <- tmp;
                let tmp = ws.vb0 in
                ws.vb0 <- ws.vb1;
                ws.vb1 <- tmp;
                let tmp = ws.vc0 in
                ws.vc0 <- ws.vc1;
                ws.vc1 <- tmp;
                t := t1;
                fine_equiv := !fine_equiv + mult
              end
            end
          done
        end
    end;
    ignore (Atomic.fetch_and_add solves_ctr !solves);
    ignore (Atomic.fetch_and_add saved_ctr (!fine_equiv - !solves));
    if !truncated then Atomic.incr trunc_ctr;
    { solves = !solves; fine_equiv = !fine_equiv; truncated = !truncated }
  end

let simulate ?(step = default_step) ?(mode = default_mode) ?factored ?fcache
    ?fp ?ws ?(max_steps = default_max_steps) (rc : Rcnet.t) ~r_drv ~s_drv
    ~watch ~on_cross =
  let n = rc.size in
  if n = 0 then { solves = 0; fine_equiv = 0; truncated = false }
  else begin
    let ws = match ws with Some w -> w | None -> domain_workspace () in
    grow ws ~n ~w:(Array.length watch);
    let g0 = 1. /. r_drv in
    let ramp = s_drv /. 0.8 in
    let mult =
      resolve_mult mode rc ~r_drv ~watch ~step ~down:ws.va0 ~m:ws.vb0
    in
    let fine = get_factored ?factored ?fcache ?fp ~step rc in
    let rate stp =
      match fcache with
      | Some c -> Fcache.get c ?fp rc ~step:stp
      | None -> factor ~step:stp rc
    in
    let r = ws.r in
    let solve f ~vs ~vin ~vout = step_solve rc f ~g0 ~vs ~vin ~vout ~r in
    march_core ~step ~mult ~fine ~rate ~solve ~ws ~n ~ramp ~watch ~on_cross
      ~max_steps
  end

let solve ?step ?mode ?factored ?fcache ?fp ?ws (rc : Rcnet.t) ~r_drv ~s_drv =
  let ntaps = Array.length rc.taps in
  let watch = Array.map fst rc.taps in
  let times = Array.make (ntaps * 3) nan in
  let res =
    simulate ?step ?mode ?factored ?fcache ?fp ?ws rc ~r_drv ~s_drv ~watch
      ~on_cross:(fun w k t -> times.((w * 3) + k) <- t)
  in
  let ramp = s_drv /. 0.8 in
  Array.init ntaps (fun w ->
      let t10 = times.(w * 3) and t50 = times.((w * 3) + 1)
      and t90 = times.((w * 3) + 2) in
      if Float.is_nan t90 then begin
        (* A truncated march legitimately never reached 90 %; anything
           else means the waveform itself went non-finite. *)
        if not res.truncated then
          Numerics.fail "transient solve: NaN crossing at tap node %d"
            (fst rc.taps.(w));
        (infinity, infinity)
      end
      else begin
        let delay = t50 -. (ramp /. 2.) and slew = t90 -. t10 in
        if Float.is_nan delay || Float.is_nan slew then
          Numerics.fail "transient solve: NaN result at tap node %d"
            (fst rc.taps.(w));
        (delay, slew)
      end)

let probe ?(step = default_step) ?factored ?fcache ?fp ?ws (rc : Rcnet.t)
    ~r_drv ~s_drv ~node ~times =
  let f = get_factored ?factored ?fcache ?fp ~step rc in
  let g0 = 1. /. r_drv in
  let n = rc.size in
  let v, r =
    match ws with
    | Some w ->
      grow w ~n ~w:0;
      (w.v, w.r)
    | None -> (Array.make (Int.max n 1) 0., Array.make (Int.max n 1) 0.)
  in
  Array.fill v 0 n 0.;
  let ramp = s_drv /. 0.8 in
  let nt = Array.length times in
  let out = Array.make nt 0. in
  (* Visit probe times in ascending order regardless of caller ordering,
     scattering results back through the sort permutation. *)
  let order = Array.init nt (fun i -> i) in
  Array.sort (fun a b -> Float.compare times.(a) times.(b)) order;
  let t_end = if nt = 0 then 0. else times.(order.(nt - 1)) in
  let t = ref 0. in
  let k = ref 0 in
  while !t < t_end && !k < nt do
    let t1 = !t +. step in
    step_solve rc f ~g0 ~vs:(ramp_voltage ~ramp t1) ~vin:v ~vout:v ~r;
    while !k < nt && times.(order.(!k)) <= t1 do
      out.(order.(!k)) <- v.(node);
      incr k
    done;
    t := t1
  done;
  (* Probe times at or past the final simulated step (including duplicates
     of t_end when step granularity skips them) take the last computed
     node voltage instead of silently reading 0. *)
  while !k < nt do
    out.(order.(!k)) <- v.(node);
    incr k
  done;
  out

(* ------------------------------------------------------------------ *)
(* Flat kernel over the Rcflat stage pool                              *)
(* ------------------------------------------------------------------ *)

module Flat = struct
  (* Same backward-Euler factorisation as the boxed kernel, stored as
     flat float64 buffers with both per-node divisions of the sweeps
     precomputed: [fgd] holds g/dfact (the forward-sweep coefficient,
     which is also the backward-sweep parent coefficient, since
     (r + g·v_p)/dfact = r/dfact + (g/dfact)·v_p) and [finv] holds
     1/dfact. Per step the kernel does no division and no allocation.

     The factored arrays are additionally permuted into breadth-first
     level order. Both sweeps chain through the tree one parent hop per
     node, so in DFS order each long wire is a serial latency chain of
     dependent multiply-adds (with a division in that chain on the boxed
     side). In level order every node of a level depends only on the
     previous level, which the out-of-order core overlaps freely — the
     sweeps become throughput-bound instead of latency-bound. The
     permutation only reorders the residual accumulation, so crossing
     times agree with the boxed reference to sub-femtosecond (observed
     ~1e-6 ps at 100K-node stages). State vectors live in permuted
     space for the whole march; [fpos] maps stage-local rc indices into
     it for watch lists and probes. *)
  type ffactored = {
    fn : int;
    fparent : int array;  (* permuted-space parent; fparent.(0) = -1 *)
    fpos : int array;     (* stage-local rc index -> permuted index *)
    fgd : Rcflat.f64;     (* g / dfact, coefficient of both sweeps *)
    finv : Rcflat.f64;    (* 1 / dfact *)
    fcoh : Rcflat.f64;    (* c·(rc_to_ps)/h *)
    fd0 : float;          (* factored root diagonal, driver term excluded *)
    fh : float;
  }

  let fba n : Rcflat.f64 =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (Int.max n 1)

  let factor (p : Rcflat.t) ~si ~step =
    let n = p.Rcflat.size.(si) in
    let base = p.Rcflat.off.(si) in
    let res = p.Rcflat.res and cap = p.Rcflat.cap in
    let parent = p.Rcflat.parent in
    let fg = Array.make (Int.max n 1) 0. in
    for i = 1 to n - 1 do
      (* Same clamp as the boxed [factor]. *)
      fg.(i) <- 1. /. Float.max res.{base + i} 1e-6
    done;
    let dfact = Array.make (Int.max n 1) 0. in
    for i = 0 to n - 1 do
      dfact.(i) <- (cap.{base + i} *. Tech.Units.rc_to_ps /. step) +. fg.(i)
    done;
    for i = 1 to n - 1 do
      let pa = parent.(base + i) in
      dfact.(pa) <- dfact.(pa) +. fg.(i)
    done;
    (* Leaf elimination over the precomputed order: within a stage the rc
       indices are topological, so the order is simply n-1 downto 1. *)
    for i = n - 1 downto 1 do
      let pa = parent.(base + i) in
      dfact.(pa) <- dfact.(pa) -. (fg.(i) *. fg.(i) /. dfact.(i))
    done;
    (* Stable counting sort by tree level: the permutation is a function
       of the stage structure only, so every rate of a stage shares it. *)
    let level = Array.make (Int.max n 1) 0 in
    let nlevels = ref 1 in
    for i = 1 to n - 1 do
      level.(i) <- level.(parent.(base + i)) + 1;
      if level.(i) >= !nlevels then nlevels := level.(i) + 1
    done;
    let loff = Array.make (!nlevels + 1) 0 in
    for i = 0 to n - 1 do
      loff.(level.(i) + 1) <- loff.(level.(i) + 1) + 1
    done;
    for l = 1 to !nlevels do
      loff.(l) <- loff.(l) + loff.(l - 1)
    done;
    let ord = Array.make (Int.max n 1) 0 in
    let fpos = Array.make (Int.max n 1) 0 in
    for i = 0 to n - 1 do
      let k = loff.(level.(i)) in
      loff.(level.(i)) <- k + 1;
      ord.(k) <- i;
      fpos.(i) <- k
    done;
    let fparent = Array.make (Int.max n 1) (-1) in
    let fgd = fba n and finv = fba n and fcoh = fba n in
    fgd.{0} <- 0.;
    finv.{0} <- 0.;
    fcoh.{0} <- cap.{base} *. Tech.Units.rc_to_ps /. step;
    for k = 1 to n - 1 do
      let i = ord.(k) in
      fparent.(k) <- fpos.(parent.(base + i));
      fgd.{k} <- fg.(i) /. dfact.(i);
      finv.{k} <- 1. /. dfact.(i);
      fcoh.{k} <- cap.{base + i} *. Tech.Units.rc_to_ps /. step
    done;
    { fn = n; fparent; fpos; fgd; finv; fcoh; fd0 = dfact.(0); fh = step }

  (* One implicit step over the permuted stage: division-free tight loops
     on flat memory, zero allocation. [vin]/[vout] may alias. The
     residual buffer [r] must be all-zero on entry and is left all-zero —
     the forward sweep accumulates child contributions into it before
     visiting a node, and the backward sweep clears each slot as it
     consumes it, fusing what would otherwise be a third initialisation
     pass into the two sweeps. *)
  let step_solve f ~g0 ~vs ~(vin : float array) ~(vout : float array)
      ~(r : float array) =
    let n = f.fn in
    let fcoh = f.fcoh and fgd = f.fgd and finv = f.finv in
    let parent = f.fparent in
    for i = n - 1 downto 1 do
      let ri =
        (Bigarray.Array1.unsafe_get fcoh i *. Array.unsafe_get vin i)
        +. Array.unsafe_get r i
      in
      Array.unsafe_set r i ri;
      let pa = Array.unsafe_get parent i in
      Array.unsafe_set r pa
        (Array.unsafe_get r pa +. (Bigarray.Array1.unsafe_get fgd i *. ri))
    done;
    let r0 = (fcoh.{0} *. vin.(0)) +. r.(0) +. (g0 *. vs) in
    r.(0) <- 0.;
    vout.(0) <- r0 /. (f.fd0 +. g0);
    for i = 1 to n - 1 do
      let pa = Array.unsafe_get parent i in
      Array.unsafe_set vout i
        ((Array.unsafe_get r i *. Bigarray.Array1.unsafe_get finv i)
        +. (Bigarray.Array1.unsafe_get fgd i *. Array.unsafe_get vout pa));
      Array.unsafe_set r i 0.
    done

  module Fcache = struct
    type t = {
      tbl : (int64 * float, ffactored centry) Hashtbl.t;
      ring : (int64 * float) Queue.t;
      cap : int;
    }

    let create ?(cap = 4096) () =
      { tbl = Hashtbl.create 64; ring = Queue.create (); cap }

    let get c (p : Rcflat.t) ~si ~step =
      let key = (p.Rcflat.fp.(si), step) in
      match clock_find c.tbl key with
      | Some f -> f
      | None ->
        let f = factor p ~si ~step in
        clock_insert c.tbl c.ring ~cap:c.cap key f;
        f

    let length c = Hashtbl.length c.tbl

    let clear c =
      Hashtbl.reset c.tbl;
      Queue.clear c.ring
  end

  (* Same arithmetic as the boxed [stage_tau] on bit-identical inputs, so
     the Auto controller resolves the same mult for the same stage. *)
  let stage_tau (p : Rcflat.t) ~si ~r_drv ~watch ~down ~m =
    let n = p.Rcflat.size.(si) in
    let base = p.Rcflat.off.(si) in
    let res = p.Rcflat.res and cap = p.Rcflat.cap in
    let parent = p.Rcflat.parent in
    for i = 0 to n - 1 do
      down.(i) <- cap.{base + i}
    done;
    for i = n - 1 downto 1 do
      let pa = parent.(base + i) in
      down.(pa) <- down.(pa) +. down.(i)
    done;
    m.(0) <- Tech.Units.ps_of_rc r_drv down.(0);
    for i = 1 to n - 1 do
      m.(i) <- m.(parent.(base + i)) +. Tech.Units.ps_of_rc res.{base + i} down.(i)
    done;
    let tau = ref infinity in
    Array.iter (fun wi -> if m.(wi) < !tau then tau := m.(wi)) watch;
    if Float.is_finite !tau then !tau else 0.

  let resolve_mult mode (p : Rcflat.t) ~si ~r_drv ~watch ~step ~down ~m =
    match mode with
    | Fixed -> 1
    | Adaptive { mult } -> if mult < 2 then 1 else 2 * (mult / 2)
    | Auto { max_mult } ->
      if Array.length watch = 0 then 1
      else
        let tau = stage_tau p ~si ~r_drv ~watch ~down ~m in
        mult_of_tau ~tau ~step ~max_mult

  (* Everything a march needs besides mutable scratch. [prep] touches the
     shared factorisation cache; [solve_prepped] touches only its own
     workspace — the batched evaluator preps serially and fans the
     prepped solves out across domains with zero shared mutable state. *)
  type prepped = {
    p_mult : int;
    p_fine : ffactored;
    p_a : ffactored option;
    p_b : ffactored option;
    p_c : ffactored option;
  }

  let prep ?(step = default_step) ?(mode = default_mode) ~fcache ~scratch
      (p : Rcflat.t) ~si ~r_drv =
    let n = p.Rcflat.size.(si) in
    grow scratch ~n ~w:0;
    let watch = p.Rcflat.watch.(si) in
    let mult =
      resolve_mult mode p ~si ~r_drv ~watch ~step ~down:scratch.va0
        ~m:scratch.vb0
    in
    let fine = Fcache.get fcache p ~si ~step in
    if mult <= 1 then { p_mult = mult; p_fine = fine; p_a = None; p_b = None;
                        p_c = None }
    else begin
      let step_a = step *. float_of_int mult in
      let fa = Fcache.get fcache p ~si ~step:step_a in
      let fb = Fcache.get fcache p ~si ~step:(step_a /. 2.) in
      let fc = Fcache.get fcache p ~si ~step:(step_a /. 4.) in
      { p_mult = mult; p_fine = fine; p_a = Some fa; p_b = Some fb;
        p_c = Some fc }
    end

  let simulate_prepped ?(step = default_step) ?(max_steps = default_max_steps)
      ~ws (p : Rcflat.t) ~si ~prepped ~r_drv ~s_drv ~watch ~on_cross =
    let n = p.Rcflat.size.(si) in
    if n = 0 then { solves = 0; fine_equiv = 0; truncated = false }
    else begin
      grow ws ~n ~w:(Array.length watch);
      let g0 = 1. /. r_drv in
      let ramp = s_drv /. 0.8 in
      (* The march state lives in the factorisation's level-permuted
         space; watches follow it. The residual buffer is self-cleaning
         across steps but may hold leftovers from the boxed kernel, which
         shares the workspace. *)
      let watch = Array.map (fun wi -> prepped.p_fine.fpos.(wi)) watch in
      Array.fill ws.r 0 n 0.;
      let r = ws.r in
      let solve f ~vs ~vin ~vout = step_solve f ~g0 ~vs ~vin ~vout ~r in
      (* The controller recomputes step_a/b/c with the exact expressions
         [prep] used, so float equality selects the right handle. *)
      let mult = prepped.p_mult in
      let step_a = step *. float_of_int mult in
      let rate stp =
        let pick = function Some f -> f | None -> factor p ~si ~step:stp in
        if stp = step_a then pick prepped.p_a
        else if stp = step_a /. 2. then pick prepped.p_b
        else pick prepped.p_c
      in
      march_core ~step ~mult ~fine:prepped.p_fine ~rate ~solve ~ws ~n ~ramp
        ~watch ~on_cross ~max_steps
    end

  (* Flat analogue of the boxed [solve]: crossing times to (delay, slew)
     pairs per tap, with identical truncation and NaN semantics. *)
  let solve_prepped ?step ?max_steps ~ws (p : Rcflat.t) ~si ~prepped ~r_drv
      ~s_drv =
    let watch = p.Rcflat.watch.(si) in
    let ntaps = Array.length watch in
    let times = Array.make (Int.max (ntaps * 3) 1) nan in
    let res =
      simulate_prepped ?step ?max_steps ~ws p ~si ~prepped ~r_drv ~s_drv
        ~watch
        ~on_cross:(fun w k t -> times.((w * 3) + k) <- t)
    in
    let ramp = s_drv /. 0.8 in
    Array.init ntaps (fun w ->
        let t10 = times.(w * 3) and t50 = times.((w * 3) + 1)
        and t90 = times.((w * 3) + 2) in
        if Float.is_nan t90 then begin
          if not res.truncated then
            Numerics.fail "transient solve: NaN crossing at tap node %d"
              p.Rcflat.tap_node.(si).(w);
          (infinity, infinity)
        end
        else begin
          let delay = t50 -. (ramp /. 2.) and slew = t90 -. t10 in
          if Float.is_nan delay || Float.is_nan slew then
            Numerics.fail "transient solve: NaN result at tap node %d"
              p.Rcflat.tap_node.(si).(w);
          (delay, slew)
        end)

  let solve ?step ?mode ?max_steps ~fcache ?ws (p : Rcflat.t) ~si ~r_drv
      ~s_drv =
    let ws = match ws with Some w -> w | None -> domain_workspace () in
    let prepped = prep ?step ?mode ~fcache ~scratch:ws p ~si ~r_drv in
    solve_prepped ?step ?max_steps ~ws p ~si ~prepped ~r_drv ~s_drv

  let probe ?(step = default_step) ~fcache ?ws (p : Rcflat.t) ~si ~r_drv
      ~s_drv ~node ~times =
    let f = Fcache.get fcache p ~si ~step in
    let g0 = 1. /. r_drv in
    let n = p.Rcflat.size.(si) in
    let node = f.fpos.(node) in
    let v, r =
      match ws with
      | Some w ->
        grow w ~n ~w:0;
        (w.v, w.r)
      | None -> (Array.make (Int.max n 1) 0., Array.make (Int.max n 1) 0.)
    in
    Array.fill v 0 n 0.;
    Array.fill r 0 n 0.;
    let ramp = s_drv /. 0.8 in
    let nt = Array.length times in
    let out = Array.make nt 0. in
    let order = Array.init nt (fun i -> i) in
    Array.sort (fun a b -> Float.compare times.(a) times.(b)) order;
    let t_end = if nt = 0 then 0. else times.(order.(nt - 1)) in
    let t = ref 0. in
    let k = ref 0 in
    while !t < t_end && !k < nt do
      let t1 = !t +. step in
      step_solve f ~g0 ~vs:(ramp_voltage ~ramp t1) ~vin:v ~vout:v ~r;
      while !k < nt && times.(order.(!k)) <= t1 do
        out.(order.(!k)) <- v.(node);
        incr k
      done;
      t := t1
    done;
    while !k < nt do
      out.(order.(!k)) <- v.(node);
      incr k
    done;
    out
end
