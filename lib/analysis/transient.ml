(* Backward Euler on the MNA of an RC tree:
     (C/h + G) v_{t+h} = (C/h) v_t + i_src(t+h)
   where G is the conductance Laplacian of the tree edges plus the driver
   conductance at the root. Because the matrix is tree-structured and
   constant, a single leaf-elimination factorisation is computed up front
   and every step costs two O(n) sweeps. Conductances are in 1/Ω, caps in
   fF, time in ps: i = C dv/dt gives (fF/ps) · V = mA·10⁻³... all terms are
   scaled consistently by expressing capacitance as cap·1e-3 fF/ps units
   (Ω·fF = 10⁻³ ps).

   The driver conductance 1/r_drv appears only in the root's diagonal
   entry, and the leaf elimination (children before parents) never reads
   the root diagonal while eliminating. The factorisation below therefore
   excludes the driver term entirely: the effective root diagonal is
   reconstructed as [dfact.(0) +. g0] at solve time, which lets one
   factorisation be shared across arbitrary driver resistances. *)

type factored = {
  g : float array;      (* edge conductance to parent; g.(0) unused (0.) *)
  dfact : float array;  (* factored diagonal, WITHOUT the driver term at 0 *)
  c_over_h : float array;
  h : float;            (* the timestep the factorisation assumed *)
}

let factor ?(step = 0.5) (rc : Rcnet.t) =
  let n = rc.size in
  let g = Array.make n 0. in
  for i = 1 to n - 1 do
    (* Zero-length wires can produce 0 Ω segments; clamp for stability. *)
    g.(i) <- 1. /. Float.max rc.res.(i) 1e-6
  done;
  let c_over_h = Array.map (fun c -> c *. Tech.Units.rc_to_ps /. step) rc.cap in
  let dfact = Array.make n 0. in
  for i = 0 to n - 1 do
    dfact.(i) <- c_over_h.(i) +. g.(i)
  done;
  (* Children contribute g to their parent's diagonal. *)
  for i = 1 to n - 1 do
    dfact.(rc.parent.(i)) <- dfact.(rc.parent.(i)) +. g.(i)
  done;
  (* Leaf elimination, children before parents (indices are topological). *)
  for i = n - 1 downto 1 do
    let p = rc.parent.(i) in
    dfact.(p) <- dfact.(p) -. (g.(i) *. g.(i) /. dfact.(i))
  done;
  { g; dfact; c_over_h; h = step }

(* One implicit step: given v (in place), source voltage vs at t+h, driver
   conductance g0 = 1/r_drv. *)
let step_solve (rc : Rcnet.t) f ~g0 ~vs ~v ~r =
  let n = rc.size in
  for i = 0 to n - 1 do
    r.(i) <- f.c_over_h.(i) *. v.(i)
  done;
  r.(0) <- r.(0) +. (g0 *. vs);
  for i = n - 1 downto 1 do
    let p = rc.parent.(i) in
    r.(p) <- r.(p) +. (f.g.(i) /. f.dfact.(i) *. r.(i))
  done;
  v.(0) <- r.(0) /. (f.dfact.(0) +. g0);
  for i = 1 to n - 1 do
    v.(i) <- (r.(i) +. (f.g.(i) *. v.(rc.parent.(i)))) /. f.dfact.(i)
  done

let ramp_voltage ~ramp t = if t <= 0. then 0. else if t >= ramp then 1. else t /. ramp

let max_steps = 2_000_000

let get_factored ?factored ~step rc =
  match factored with
  | Some f ->
    if f.h <> step then invalid_arg "Transient: factored timestep mismatch";
    f
  | None -> factor ~step rc

let simulate ?(step = 0.5) ?factored (rc : Rcnet.t) ~r_drv ~s_drv ~watch
    ~on_cross =
  (* [watch] : rc node indices to monitor; [on_cross] called with
     (watch_slot, threshold_index, time). Thresholds are 0.1, 0.5, 0.9. *)
  let n = rc.size in
  if n = 0 then ()
  else begin
    let f = get_factored ?factored ~step rc in
    let g0 = 1. /. r_drv in
    let v = Array.make n 0. and r = Array.make n 0. in
    let ramp = s_drv /. 0.8 in
    let nwatch = Array.length watch in
    let crossed = Array.make (nwatch * 3) false in
    let prev = Array.make nwatch 0. in
    let remaining = ref (nwatch * 3) in
    let thresholds = [| 0.1; 0.5; 0.9 |] in
    let t = ref 0. in
    let steps = ref 0 in
    while !remaining > 0 && !steps < max_steps do
      incr steps;
      let t1 = !t +. step in
      step_solve rc f ~g0 ~vs:(ramp_voltage ~ramp t1) ~v ~r;
      for w = 0 to nwatch - 1 do
        let vw = v.(watch.(w)) in
        for k = 0 to 2 do
          if (not crossed.((w * 3) + k)) && vw >= thresholds.(k) then begin
            crossed.((w * 3) + k) <- true;
            decr remaining;
            (* Linear interpolation inside the step. *)
            let frac =
              if vw -. prev.(w) <= 0. then 1.
              else (thresholds.(k) -. prev.(w)) /. (vw -. prev.(w))
            in
            on_cross w k (!t +. (frac *. step))
          end
        done;
        prev.(w) <- vw
      done;
      t := t1
    done
  end

let solve ?step ?factored (rc : Rcnet.t) ~r_drv ~s_drv =
  let ntaps = Array.length rc.taps in
  let watch = Array.map fst rc.taps in
  let times = Array.make (ntaps * 3) nan in
  simulate ?step ?factored rc ~r_drv ~s_drv ~watch ~on_cross:(fun w k t ->
      times.((w * 3) + k) <- t);
  let ramp = s_drv /. 0.8 in
  Array.init ntaps (fun w ->
      let t10 = times.(w * 3) and t50 = times.((w * 3) + 1)
      and t90 = times.((w * 3) + 2) in
      if Float.is_nan t90 then (infinity, infinity)
      else (t50 -. (ramp /. 2.), t90 -. t10))

let probe ?(step = 0.5) (rc : Rcnet.t) ~r_drv ~s_drv ~node ~times =
  let f = factor ~step rc in
  let g0 = 1. /. r_drv in
  let n = rc.size in
  let v = Array.make n 0. and r = Array.make n 0. in
  let ramp = s_drv /. 0.8 in
  let nt = Array.length times in
  let out = Array.make nt 0. in
  (* Visit probe times in ascending order regardless of caller ordering,
     scattering results back through the sort permutation. *)
  let order = Array.init nt (fun i -> i) in
  Array.sort (fun a b -> Float.compare times.(a) times.(b)) order;
  let t_end = if nt = 0 then 0. else times.(order.(nt - 1)) in
  let t = ref 0. in
  let k = ref 0 in
  while !t < t_end && !k < nt do
    let t1 = !t +. step in
    step_solve rc f ~g0 ~vs:(ramp_voltage ~ramp t1) ~v ~r;
    while !k < nt && times.(order.(!k)) <= t1 do
      out.(order.(!k)) <- v.(node);
      incr k
    done;
    t := t1
  done;
  (* Probe times at or past the final simulated step (including duplicates
     of t_end when step granularity skips them) take the last computed
     node voltage instead of silently reading 0. *)
  while !k < nt do
    out.(order.(!k)) <- v.(node);
    incr k
  done;
  out
