(** Backward-Euler transient simulation of a driver stage — the
    ngSPICE/HSPICE substitute — with an adaptive multi-rate stepping
    controller.

    The stage's RC tree is driven through the Thevenin resistance [r_drv]
    by a saturated 0→1 ramp with 10–90 % slew [s_drv]. Each timestep solves
    the tree-structured linear system exactly in O(n) (one leaf-elimination
    factorisation reused across steps). Tap voltages are monitored and the
    10/50/90 % crossing times recovered by linear interpolation.

    In the adaptive modes the kernel fine-steps only through the driver
    ramp and the narrow windows that bracket a watched threshold crossing;
    everything in between is covered by a trio of coarse backward-Euler
    marches (steps [mult·h], [mult·h/2], [mult·h/4]) whose states are
    extrapolated in the step size down to the fine step at every coarse
    boundary (quadratic Richardson, residual [O(mult³h³/τ²)]). A
    bracketed window is rewound to its extrapolated entry state and
    re-integrated at the fine step, so reported latencies and slews track
    the fixed-fine-step reference within ≤ 0.05 ps (see
    doc/EXTENDING.md, "Transient kernel"). *)

(** A leaf-elimination factorisation of a stage's RC matrix for a fixed
    timestep. The driver conductance is deliberately excluded — it only
    enters the root diagonal, which is reconstructed at solve time — so
    one factorisation serves every [r_drv] the optimizer tries. *)
type factored

(** Factor a stage for timestep [step] ps (default 0.5). O(n). *)
val factor : ?step:float -> Rcnet.t -> factored

(** Reusable, growable scratch buffers (node-voltage states, residuals,
    frontier bookkeeping). A workspace may be reused across stages and
    calls of any size — arrays grow on demand and are fully re-initialised
    by each call, so results never depend on what ran before. Not
    thread-safe: use one workspace per domain. *)
type workspace

val workspace : unit -> workspace

(** The calling domain's lazily-created workspace ([Domain.DLS]) — the
    fallback used by {!solve}/{!simulate} when no [?ws] is passed, so
    ad-hoc solves on one domain reuse the grown arrays across calls. *)
val domain_workspace : unit -> workspace

(** Process-wide factorisation store: a lock-striped bounded table of
    [(fingerprint, step) → factored] safe to use from any domain
    concurrently — the cross-request sharing layer behind the serve
    daemon ([factored] values are immutable once built, so handing the
    same factorisation to several domains is race-free). A per-domain
    {!Fcache} created with [?store] consults it on a local miss and
    publishes what it factors, so warm factorisations survive session
    (and request) teardown. Eviction is incremental (a quarter of the
    full stripe, in hash order), never a whole-table wipe. *)
module Fstore : sig
  type t

  (** [create ?stripes ?cap ()] — [cap] (default 16384) entries spread
      over [stripes] (default 16) independently locked stripes. *)
  val create : ?stripes:int -> ?cap:int -> unit -> t

  (** Live entries across all stripes (takes each stripe lock). *)
  val length : t -> int

  (** Entries evicted since creation. *)
  val evictions : t -> int

  val clear : t -> unit
end

(** Per-(stage, step) factorisation cache keyed by {!Rcnet.fingerprint}.
    The backward-Euler factor depends on the timestep, so each rate of the
    multi-rate kernel gets its own entry. Bounded: at [cap] entries
    (default 4096) insertion evicts exactly one cold entry by
    second-chance ("clock") rotation — entries hit since their last
    inspection survive, and the entry being inserted is never dropped —
    so a long-lived process keeps its warm set instead of dumping the
    whole table at the cap boundary. Not thread-safe: use one cache per
    domain. *)
module Fcache : sig
  type t

  (** [store] attaches a shared {!Fstore}: local misses consult it
      before factoring, local factorisations are published to it. *)
  val create : ?cap:int -> ?store:Fstore.t -> unit -> t

  (** [get c rc ~step] returns the cached factorisation for [rc] at
      [step], computing and storing it on a miss. [fp] supplies a
      precomputed fingerprint of [rc] (callers that already hashed the
      stage avoid a second O(n) pass). *)
  val get : t -> ?fp:int64 -> Rcnet.t -> step:float -> factored

  val length : t -> int
  val clear : t -> unit
end

(** Stepping controller.

    - [Fixed]: the classic single-rate march at [step]; the accuracy
      reference.
    - [Adaptive { mult }]: coarse step [mult·step] (mult is rounded down
      to even; values < 2 mean [Fixed]).
    - [Auto { max_mult }]: pick [mult] per stage from its time constants
      (the smallest watched first moment, an Elmore/dominant-pole
      estimate), capped at [max_mult]. Stages too stiff to profit fall
      back to [Fixed]. *)
type mode =
  | Fixed
  | Adaptive of { mult : int }
  | Auto of { max_mult : int }

val default_step : float

(** [Auto { max_mult = 32 }] — the default for {!solve} and {!simulate}. *)
val default_mode : mode

(** What one {!simulate} march did. [solves] counts linear-system solves
    actually performed (fine + coarse); [fine_equiv] is what a [Fixed]
    march over the same span would have taken, so [fine_equiv - solves]
    is the saving. [truncated] is set when the march hit its step budget
    with crossings still pending — the corresponding results are reported
    as [infinity] by {!solve} and are genuinely unknown rather than
    merely slow. *)
type march = { solves : int; fine_equiv : int; truncated : bool }

(** Cumulative cross-call kernel counters (atomic, safe to read from any
    domain). [total_saved] may be slightly negative on pathological
    inputs where the coarse overhead outweighs the skipped steps. *)
type counters = {
  total_solves : int;
  total_saved : int;
  total_truncations : int;
}

val counters : unit -> counters
val reset_counters : unit -> unit

(** Run the march, reporting each 10/50/90 % crossing of a watched node
    through [on_cross (watch_slot, threshold_index, time)]. [factored]
    must match [step] (within 1e-9 relative — steps composed
    arithmetically are accepted); coarse-rate factorisations are taken
    from [fcache] when given, recomputed otherwise. [max_steps] bounds
    the march in fine-step equivalents (default 2,000,000).
    @raise Invalid_argument if the factorisation's timestep genuinely
    disagrees with [step]. *)
val simulate :
  ?step:float -> ?mode:mode -> ?factored:factored -> ?fcache:Fcache.t ->
  ?fp:int64 -> ?ws:workspace -> ?max_steps:int -> Rcnet.t ->
  r_drv:float -> s_drv:float -> watch:int array ->
  on_cross:(int -> int -> float -> unit) -> march

(** Per-tap [(delay, slew)] in ps: delay from the driver ramp's 50 % point
    to the tap's 50 % crossing; slew is the 10–90 % interval. Indexed like
    [rc.taps]. Taps whose march truncated are [(infinity, infinity)]. *)
val solve :
  ?step:float -> ?mode:mode -> ?factored:factored -> ?fcache:Fcache.t ->
  ?fp:int64 -> ?ws:workspace -> Rcnet.t -> r_drv:float -> s_drv:float ->
  (float * float) array

(** Full waveform probe for tests: voltages of a chosen rc node sampled at
    the given times, always at the fixed fine rate. Times may be in any
    order; probe times beyond the last simulated step return the final
    node voltage. Passing [factored]/[fcache] reuses factorisations like
    {!solve}. *)
val probe :
  ?step:float -> ?factored:factored -> ?fcache:Fcache.t -> ?fp:int64 ->
  ?ws:workspace -> Rcnet.t -> r_drv:float -> s_drv:float -> node:int ->
  times:float array -> float array

(** The streaming kernel over an {!Rcflat} stage pool.

    Same backward-Euler march and the same multi-rate controller
    (literally shared code), but the forward/backward sweeps are tight
    loops of [unsafe_get]/[unsafe_set] over flat memory with both
    per-node divisions precomputed at factor time, the residual
    initialisation fused into the sweeps, and zero per-step allocation.
    The factored arrays are permuted into breadth-first level order, so
    the parent-hop dependency chains of the sweeps span levels and every
    node within a level is independent — throughput-bound multiply-adds
    instead of one latency chain per wire. The permutation reorders the
    residual accumulation and the reciprocal differs from the boxed
    division by 1 ulp per operation, so crossing times drift from the
    boxed reference at the rounding level: sub-femtosecond, observed
    ~1e-6 ps at 100K-node stages. Fingerprints, rate selection and
    cache keys are bit-identical, so a flat and a boxed evaluation of
    the same tree take the same adaptive decisions. *)
module Flat : sig
  type ffactored

  val factor : Rcflat.t -> si:int -> step:float -> ffactored

  (** Per-(stage, step) factorisation cache, keyed by the pool's
      fingerprints — equal to the boxed {!Fcache} keys. *)
  module Fcache : sig
    type t

    val create : ?cap:int -> unit -> t
    val get : t -> Rcflat.t -> si:int -> step:float -> ffactored
    val length : t -> int
    val clear : t -> unit
  end

  (** Everything a march needs besides mutable scratch: the resolved
      rate [mult] and the factorisation handles for every rate. {!prep}
      touches the shared {!Fcache}; {!solve_prepped} touches only the
      workspace it is given — so preps run serially and the prepped
      solves fan out across domains with no shared mutable state. *)
  type prepped

  val prep :
    ?step:float -> ?mode:mode -> fcache:Fcache.t -> scratch:workspace ->
    Rcflat.t -> si:int -> r_drv:float -> prepped

  (** Flat analogue of {!solve} with the march state pre-resolved:
      per-tap [(delay, slew)], indexed like the stage's tap arrays. *)
  val solve_prepped :
    ?step:float -> ?max_steps:int -> ws:workspace -> Rcflat.t -> si:int ->
    prepped:prepped -> r_drv:float -> s_drv:float -> (float * float) array

  (** [prep] + [solve_prepped] in one call — the sequential path. *)
  val solve :
    ?step:float -> ?mode:mode -> ?max_steps:int -> fcache:Fcache.t ->
    ?ws:workspace -> Rcflat.t -> si:int -> r_drv:float -> s_drv:float ->
    (float * float) array

  (** Flat analogue of {!probe}: waveform of stage-local rc node [node]
      of stage [si], fixed fine rate. *)
  val probe :
    ?step:float -> fcache:Fcache.t -> ?ws:workspace -> Rcflat.t -> si:int ->
    r_drv:float -> s_drv:float -> node:int -> times:float array ->
    float array
end
