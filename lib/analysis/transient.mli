(** Backward-Euler transient simulation of a driver stage — the
    ngSPICE/HSPICE substitute.

    The stage's RC tree is driven through the Thevenin resistance [r_drv]
    by a saturated 0→1 ramp with 10–90 % slew [s_drv]. Each timestep solves
    the tree-structured linear system exactly in O(n) (one leaf-elimination
    factorisation reused across steps). Tap voltages are monitored and the
    10/50/90 % crossing times recovered by linear interpolation. *)

(** Per-tap [(delay, slew)] in ps: delay from the driver ramp's 50 % point
    to the tap's 50 % crossing; slew is the 10–90 % interval. Indexed like
    [rc.taps]. [step] is the timestep in ps (default 0.5). *)
val solve :
  ?step:float -> Rcnet.t -> r_drv:float -> s_drv:float ->
  (float * float) array

(** Full waveform probe for tests: voltages of a chosen rc node sampled at
    the given times (which must be ascending). *)
val probe :
  ?step:float -> Rcnet.t -> r_drv:float -> s_drv:float -> node:int ->
  times:float array -> float array
