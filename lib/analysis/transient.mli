(** Backward-Euler transient simulation of a driver stage — the
    ngSPICE/HSPICE substitute.

    The stage's RC tree is driven through the Thevenin resistance [r_drv]
    by a saturated 0→1 ramp with 10–90 % slew [s_drv]. Each timestep solves
    the tree-structured linear system exactly in O(n) (one leaf-elimination
    factorisation reused across steps). Tap voltages are monitored and the
    10/50/90 % crossing times recovered by linear interpolation. *)

(** A leaf-elimination factorisation of a stage's RC matrix for a fixed
    timestep. The driver conductance is deliberately excluded — it only
    enters the root diagonal, which is reconstructed at solve time — so
    one factorisation serves every [r_drv] the optimizer tries. *)
type factored

(** Factor a stage for timestep [step] ps (default 0.5). O(n). *)
val factor : ?step:float -> Rcnet.t -> factored

(** Per-tap [(delay, slew)] in ps: delay from the driver ramp's 50 % point
    to the tap's 50 % crossing; slew is the 10–90 % interval. Indexed like
    [rc.taps]. [step] is the timestep in ps (default 0.5). Passing a
    [factored] obtained from {!factor} on the same RC and step skips the
    factorisation sweep. @raise Invalid_argument if the factorisation's
    timestep disagrees with [step]. *)
val solve :
  ?step:float -> ?factored:factored -> Rcnet.t -> r_drv:float ->
  s_drv:float -> (float * float) array

(** Full waveform probe for tests: voltages of a chosen rc node sampled at
    the given times. Times may be in any order; probe times beyond the last
    simulated step return the final node voltage. *)
val probe :
  ?step:float -> Rcnet.t -> r_drv:float -> s_drv:float -> node:int ->
  times:float array -> float array
