(** Flat RC stage pool for the streaming transient kernel.

    Compiles every stage of a tree — walked through its
    {!Ctree.Arena} snapshot — into one contiguous pair of float64
    {!Bigarray.Array1} buffers ([res]/[cap]) plus a stage-local parent
    index array, with CSR-style per-stage offsets ([off]/[size]). The
    extraction replicates [Rcnet.build_stage]'s push order and float
    arithmetic exactly: per-stage {!fp} fingerprints equal
    [Rcnet.fingerprint] of the boxed extraction, so solve caches,
    factorisation caches and the adaptive rate selection behave
    identically on either representation.

    Within a stage the rc indices are topological (parents first), so
    the precomputed leaf-to-root elimination order for the slice at
    [off.(si)] is simply [size.(si)-1 downto 1] — the kernel streams the
    slice without chasing pointers.

    Stage regions carry slack so the incremental dirty path can
    {!update_stage} in place; a stage that outgrows its region relocates
    to the pool tail and the pool compacts itself once relocation waste
    exceeds half the pool. *)

type f64 = Ctree.Arena.f64

type t = private {
  arena : Ctree.Arena.t;
  seg_len : int;
  mutable res : f64;            (** pool, Ω per edge-to-parent *)
  mutable cap : f64;            (** pool, fF (tap loads folded in) *)
  mutable parent : int array;   (** STAGE-LOCAL parent; -1 at stage roots *)
  mutable plen : int;
  mutable wasted : int;
  mutable nstages : int;
  mutable off : int array;      (** region start per stage *)
  mutable size : int array;     (** rc node count per stage *)
  mutable slots : int array;    (** region capacity per stage *)
  mutable driver : int array;   (** ctree driver node id per stage *)
  mutable fp : int64 array;     (** = [Rcnet.fingerprint] per stage *)
  mutable watch : int array array;     (** tap rc indices, tap order *)
  mutable tap_kind : int array array;  (** 0 = sink, 1 = buffer *)
  mutable tap_node : int array array;  (** ctree node ids per tap *)
  mutable nlevels : int;
  mutable level_off : int array;
}
(** Stages are in BFS order (source stage first), identical to the
    [Rcnet.stages] list order. Level [l] of the stage DAG is the
    contiguous stage range [level_off.(l), level_off.(l+1)): stages in
    one level share no driver/launch dependency, which is what the
    batched parallel solve fans out over. Treat all arrays as read-only
    and do not retain them across {!update_stage}/{!recompile} (regions
    may move, buffers may be replaced). *)

val compile : ?seg_len:int -> Ctree.Arena.t -> t
(** Extract every stage. [seg_len] defaults to
    {!Rcnet.default_seg_len}. The arena must be in sync with its tree. *)

val recompile : t -> unit
(** Re-extract everything in place (reusing grown buffers) — the full
    refresh path after structural edits. *)

val update_stage : t -> int -> unit
(** Re-extract one stage after a value-level edit, in place when it
    still fits its region. The stage set and BFS order must be
    unchanged (structural edits require {!recompile}). *)

val nstages : t -> int

val total_nodes : t -> int
(** Live RC nodes in the pool (slack excluded via stage sizes is not
    subtracted — this counts allocated minus relocation waste). *)

val stage_rc : t -> int -> Rcnet.t
(** Materialise a boxed copy of one stage — the tests' equivalence
    oracle against the boxed extraction. *)
