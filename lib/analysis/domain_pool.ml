(* A tiny fixed-size pool of OCaml 5 domains for coarse-grained fan-out
   (one job per corner × transition evaluation pass). Stdlib-only: a
   mutex/condition protected queue feeds the workers; the caller also
   drains the queue itself ("caller helps") so a pool of size 0 — the
   right size on a single-core host — degrades to plain sequential
   execution with no domain spawned at all. *)

type job = unit -> unit

type t = {
  mutable domains : unit Domain.t list;
  queue : job Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closing : bool;
  failed : int Atomic.t;
}

(* Every queued job runs through this shield: an exception escaping a
   job would otherwise kill the worker domain silently — permanently
   shrinking the pool for the rest of the process — and resurface much
   later out of [shutdown]'s [Domain.join]. [map_order] captures per-job
   errors itself (and re-raises them at the call site); raw [submit]ted
   jobs have no caller to report to, so their failures are only
   counted. *)
let run_protected pool job =
  try job () with _ -> Atomic.incr pool.failed

let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.closing do
      Condition.wait pool.nonempty pool.lock
    done;
    if Queue.is_empty pool.queue && pool.closing then Mutex.unlock pool.lock
    else begin
      let job = Queue.pop pool.queue in
      Mutex.unlock pool.lock;
      run_protected pool job;
      loop ()
    end
  in
  loop ()

let create ?size () =
  let size =
    match size with
    | Some s -> max 0 s
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let pool =
    { domains = []; queue = Queue.create (); lock = Mutex.create ();
      nonempty = Condition.create (); closing = false;
      failed = Atomic.make 0 }
  in
  pool.domains <- List.init size (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = List.length pool.domains

let failed_jobs pool = Atomic.get pool.failed

(* Fire-and-forget: the job runs on a worker as soon as one is free (its
   exceptions are swallowed and counted, see [run_protected]). On a
   size-0 pool there is no worker to ever drain the queue, so the job
   runs inline — the same degradation [map] makes — but serialized under
   the pool lock: concurrent submitters are systhreads interleaving on
   one domain, and jobs assume they own the domain's scratch (DLS
   workspaces, stage builders) exactly as they would on a dedicated
   worker domain. Running two inline jobs interleaved would corrupt that
   scratch mid-solve. A job must therefore never [submit] back into the
   pool that is running it inline. *)
let submit pool job =
  if size pool = 0 then begin
    Mutex.lock pool.lock;
    (* [run_protected] swallows every exception, so the unlock runs. *)
    run_protected pool job;
    Mutex.unlock pool.lock
  end
  else begin
    Mutex.lock pool.lock;
    Queue.add job pool.queue;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.lock
  end

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closing <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* Try to pop and run one queued job; false when the queue is empty. *)
let help_one pool =
  Mutex.lock pool.lock;
  match Queue.pop pool.queue with
  | job ->
    Mutex.unlock pool.lock;
    run_protected pool job;
    true
  | exception Queue.Empty ->
    Mutex.unlock pool.lock;
    false

(* [order] is a permutation of [0, n): the submission schedule. Results
   land in input order regardless; only which job the workers see first —
   and which one the caller crunches itself — changes. *)
let map_order pool ~order f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if size pool = 0 || n = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = Atomic.make n in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    let run i =
      (match f xs.(i) with
      | y -> results.(i) <- Some y
      | exception e -> errors.(i) <- Some e);
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_lock;
        Condition.broadcast all_done;
        Mutex.unlock done_lock
      end
    in
    Mutex.lock pool.lock;
    for k = 1 to n - 1 do
      let i = order.(k) in
      Queue.add (fun () -> run i) pool.queue
    done;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    (* The caller takes the schedule's first job itself, then helps
       drain the queue. *)
    run order.(0);
    while help_one pool do () done;
    Mutex.lock done_lock;
    while Atomic.get remaining > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    Array.init n (fun i ->
        match errors.(i) with
        | Some e -> raise e
        | None -> (
          match results.(i) with
          | Some y -> y
          | None -> assert false))
  end

let map pool f xs =
  map_order pool ~order:(Array.init (Array.length xs) Fun.id) f xs

let map_weighted pool ~weight f xs =
  let n = Array.length xs in
  let w = Array.map weight xs in
  let order = Array.init n Fun.id in
  (* Heaviest first, ties broken by input index so the schedule — and
     with it any counter interleaving — is deterministic. *)
  Array.sort
    (fun a b ->
      match Int.compare w.(b) w.(a) with 0 -> Int.compare a b | c -> c)
    order;
  map_order pool ~order f xs

(* Lazily created process-wide pool, reaped at exit so multicore hosts do
   not hang on dangling domains. *)
let global_pool = ref None

let global () =
  match !global_pool with
  | Some p -> p
  | None ->
    let p = create () in
    global_pool := Some p;
    at_exit (fun () ->
        match !global_pool with
        | Some p ->
          global_pool := None;
          shutdown p
        | None -> ());
    p
