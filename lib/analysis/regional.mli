(** Cross-region skew combining for the regional flow.

    Each region of {!Core.Flow.run_regional} is optimized standalone, so
    its {!Evaluator.t} speaks in region-local arrival times. Once the
    stitching top tree's tap latencies are measured, every regional sink
    arrival becomes [offset + local arrival] — these helpers fold the
    per-region results under those offsets into global skew/CLR figures
    and derive the delay padding that equalises the regions, without
    re-evaluating the stitched tree. *)

type summary = {
  skew_rise : float;
  skew_fall : float;
  skew : float;  (** max of the two, ps *)
  t_min : float;
  t_max : float;
  clr : float;
      (** slowest corner's max minus nominal corner's min, max over
          transitions — mirrors {!Evaluator.t.clr} *)
  slew_violations : int;  (** summed over regions *)
}

(** [combine ~tech parts] — the global summary of regions evaluated under
    per-region latency offsets (ps). [tech] supplies the corner list
    (nominal = head, slow = max resistance scale), exactly as the
    evaluator's own summary does. @raise Invalid_argument on []. *)
val combine : tech:Tech.t -> (float * Evaluator.t) list -> summary

(** [pad_targets parts] — per-region delay padding (ps, ≥ 0, same order)
    that aligns every region's nominal latency-window midpoint with the
    slowest region's: the initial wire-snaking budget for the stitch
    polish loop. *)
val pad_targets : (float * Evaluator.t) list -> float array
