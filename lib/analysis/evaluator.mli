(** Clock-Network Evaluation (CNE): full-tree timing with a pluggable
    engine.

    The tree is decomposed into driver stages; each stage is solved with
    the selected engine and the results chained — buffer input arrival plus
    the buffer's (corner-scaled) intrinsic and slew-dependent delay gives
    the next stage's launch time. Rising and falling source transitions
    are propagated separately (inverters flip the edge per stage), at every
    corner of the technology.

    Every call increments a global evaluation counter, mirroring the
    paper's count of SPICE runs (Table V). *)

type engine =
  | Elmore_model  (** construction-time estimates only *)
  | Arnoldi       (** two-pole moment matching, fast and accurate *)
  | Spice         (** backward-Euler transient — the reference *)

type transition = Rise | Fall

val flip : transition -> transition

type run = {
  corner : Tech.Corner.t;
  transition : transition;  (** at the clock source output *)
  latency : float array;
      (** node id → arrival of the 50 % crossing, meaningful at sinks and
          buffer inputs *)
  slew : float array;       (** node id → 10–90 % slew at that pin *)
  worst_slew : float;
  worst_slew_node : int;
}

type t = {
  runs : run list;
  sinks : int array;
  skew_rise : float;  (** nominal-corner skew for the source-rise runs *)
  skew_fall : float;
  skew : float;       (** max of the two, ps *)
  t_min : float;      (** least nominal sink latency over both transitions *)
  t_max : float;      (** greatest nominal sink latency *)
  clr : float;
      (** max over transitions of (max latency at the slow corner − min
          latency at the fast corner); equals skew when only one corner is
          configured *)
  slew_violations : int;  (** taps beyond the slew limit, over all runs *)
  cap_ok : bool;
  stats : Ctree.Stats.t;
}

(** [transient_step]/[transient_mode] tune the [Spice] engine's
    backward-Euler kernel (fine timestep in ps and stepping controller —
    see {!Transient.mode}); both default to the kernel's own defaults and
    are ignored by the other engines.

    [flat] (default false) runs the [Spice] engine through the streaming
    kernel instead: the tree is compiled into a {!Ctree.Arena} snapshot
    and an {!Rcflat} stage pool and every march runs over flat memory
    (see {!Transient.Flat}). Cache keys and adaptive rate choices are
    bit-identical to the boxed path; crossing times agree to
    sub-femtosecond (~1e-6 ps at 100K-node stages). Ignored by the
    other engines. *)
val evaluate :
  ?engine:engine -> ?flat:bool -> ?seg_len:int -> ?transient_step:float ->
  ?transient_mode:Transient.mode -> Ctree.Tree.t -> t

(** The nominal-corner run for a source transition. *)
val nominal_run : t -> transition -> run

(** Corner identity is the {e name}, never physical equality: callers
    legitimately rebuild corner records (variation sweeps, serialisation
    round-trips), so matching runs to corners with [==] silently drops
    them. Every consumer of {!run.corner} should compare through this. *)
val corner_equal : Tech.Corner.t -> Tech.Corner.t -> bool

(** [ok t] — no slew violations and within the capacitance budget. *)
val ok : t -> bool

val eval_count : unit -> int
val reset_eval_count : unit -> unit

val pp_summary : Format.formatter -> t -> unit

(** Cross-session stage-result store for long-lived processes (the serve
    daemon): a lock-striped bounded table of solved stage results under
    the same content-derived [(fingerprint, r_drv, s_drv)] keys the
    per-slot caches use, plus a shared {!Transient.Fstore} of
    backward-Euler factorisations. Result arrays are written once and
    only read afterwards, so sharing them across domains is race-free.

    {b Caveat}: the keys do not encode the evaluation config — every
    session attached to one store must be numerically identical (same
    engine, transient step and mode, flatness). Owners enforce this by
    keying stores per config family; [Flow] additionally skips the store
    on degraded retries, whose relaxed kernel settings would otherwise
    poison the shared entries. *)
module Store : sig
  type t

  (** [create ?stripes ?cap ()] — [cap] (default 262144) stage results
      spread over [stripes] (default 16) independently locked stripes;
      full stripes evict a random quarter rather than resetting. *)
  val create : ?stripes:int -> ?cap:int -> unit -> t

  (** A per-request view of a store: the same shared tables, plus this
      request's own atomic hit/miss counters — so concurrent requests
      each report their own cross-request reuse. *)
  type handle

  val handle : t -> handle

  (** Store lookups this handle answered from the shared table /
      had to compute. *)
  val hits : handle -> int

  val misses : handle -> int

  (** Live stage results across all stripes (takes each stripe lock). *)
  val length : t -> int

  (** Entries evicted since creation. *)
  val evictions : t -> int

  (** Drop all shared state, including the factorisation store. *)
  val clear : t -> unit
end

type cache_stats = {
  hits : int;            (** stage solves answered from cache *)
  misses : int;          (** stage solves that ran an engine *)
  refreshes : int;       (** total {!Incremental.refresh} calls *)
  fast_refreshes : int;  (** refreshes short-circuited by the revision memo *)
  dirty_refreshes : int;
      (** refreshes that re-extracted only journal-dirtied stages *)
  entries : int;         (** live cached stage results across all slots *)
  factored_entries : int;
      (** live backward-Euler factorisations across all per-slot caches *)
  store_hits : int;
      (** local misses answered by the shared {!Store} (0 when detached) *)
  store_misses : int;    (** local misses the shared store missed too *)
}

(** A journaled edit: the tree revision it started from and the node ids
    it touched (see {!Ctree.Tree.Journal.touched}). Passed to
    {!Incremental.refresh} / {!Incremental.note_edits}, it lets a session
    chain edits from the state it last saw and re-extract only the dirty
    stages instead of re-fingerprinting the whole tree. *)
type edit_hint = { base_revision : int; nodes : int list }

(** Session-based incremental evaluation.

    A session owns per-(corner × transition) caches of stage results keyed
    by the stage's content fingerprint (see {!Rcnet.fingerprint}) and the
    driver parameters, plus — for the [Spice] engine — a table of
    backward-Euler factorisations reusable across driver resistances.
    [refresh] recomputes only stages whose electrical content or launch
    conditions changed since any earlier refresh and is numerically
    identical to a from-scratch {!evaluate} with the same engine and
    [seg_len]; see doc/EXTENDING.md for the invalidation rules.

    Sessions are not thread-safe: call [refresh] from one domain at a
    time. Internally, refresh may fan the independent corner × transition
    passes out over a small domain pool ([parallel], default true); each
    pass owns its cache slot, so results are deterministic and identical
    to the sequential order. *)
module Incremental : sig
  type session

  (** [create tree] prepares a session; no evaluation happens yet.
      [engine]/[flat]/[seg_len]/[transient_step]/[transient_mode] default
      like {!evaluate}.

      With [flat] the session keeps a {!Ctree.Arena} snapshot and an
      {!Rcflat} stage pool alongside its caches: a full refresh
      recompiles them in place (reusing the grown buffers), the
      dirty-set fast path patches only the touched arena nodes and
      re-extracts the dirty stages inside the pool, and a parallel
      refresh batches each stage-DAG level's cache misses into
      contiguous index-range chunks across the domain pool instead of
      spawning a closure per stage. Results agree with the boxed
      session's to sub-femtosecond (~1e-6 ps at 100K-node stages).

      [store] attaches a shared {!Store} handle: slot-cache misses
      consult the shared table before running an engine, computed
      results are published back, and the per-slot factorisation caches
      read through the store's shared {!Transient.Fstore}. See the
      {!Store} caveat on numerically-identical configs. *)
  val create :
    ?engine:engine -> ?flat:bool -> ?seg_len:int -> ?parallel:bool ->
    ?transient_step:float -> ?transient_mode:Transient.mode ->
    ?store:Store.handle -> Ctree.Tree.t -> session

  (** Re-evaluate the session's tree, reusing every cached stage that
      still matches. [?tree] rebinds the session to a replacement tree
      (e.g. after {!Ctree.Tree.compact}); caches carry over because keys
      are content-derived, not id-derived. Counts as one evaluator run.

      [?edits] is the dirty-set fast path: when the hint's
      [base_revision] matches the revision the session's stage extraction
      describes (its anchor, advanced by {!note_edits}), only the stages
      containing the hinted nodes' parent wires (plus the driven stage of
      any hinted buffer) are re-extracted and re-fingerprinted; all other
      stages are answered from the per-slot caches, and the downstream
      arrival cone is recomputed by the propagation itself. A stale or
      unmappable hint silently falls back to a full extraction, so the
      result is always identical to a refresh without the hint. *)
  val refresh : ?tree:Ctree.Tree.t -> ?edits:edit_hint -> session -> t

  (** Report tree mutations that happened {e without} a refresh — a
      rolled-back speculative edit, or a winner journal replayed onto
      this session's tree. [edits = Some h] with [h.base_revision] equal
      to the session's anchor extends the anchor chain to
      [new_revision] and accumulates [h.nodes] into the pending dirty
      set; [None] (or a mismatched base) drops the anchor so the next
      refresh does a full extraction. Never evaluates. *)
  val note_edits :
    session -> edits:edit_hint option -> new_revision:int -> unit

  (** Waveform probe through the session's factorisation cache and
      workspace (see {!Transient.probe}); uses the session's
      [transient_step]. Call from the session's thread only. *)
  val probe :
    session -> Rcnet.t -> r_drv:float -> s_drv:float -> node:int ->
    times:float array -> float array

  val stats : session -> cache_stats

  (** Drop all cached state (stage results, factorisations, the
      whole-result memo). Only useful for benchmarks and tests. *)
  val invalidate : session -> unit
end
