(* Recursive path-resistance moments: m_j(i) = Σ_k R(root→i ∧ root→k) ·
   C_k · m_{j-1}(k), with m_0 ≡ 1 and the driver resistance on the path to
   every node. For H(s) = Σ (-1)^j m_j s^j of an RC tree all m_j are
   positive. *)

(* [down] holds the pass weights on entry and is accumulated downstream
   in place; [m] receives the moments. One scratch buffer serves all
   three passes — the Arnoldi cache-miss path runs this per stage solve,
   so the former copy-per-pass allocation was measurable. *)
let moment_pass (rc : Rcnet.t) ~r_drv ~down ~m =
  for i = rc.size - 1 downto 1 do
    down.(rc.parent.(i)) <- down.(rc.parent.(i)) +. down.(i)
  done;
  if rc.size > 0 then m.(0) <- Tech.Units.ps_of_rc r_drv down.(0);
  for i = 1 to rc.size - 1 do
    m.(i) <- m.(rc.parent.(i)) +. Tech.Units.ps_of_rc rc.res.(i) down.(i)
  done

let moments (rc : Rcnet.t) ~r_drv =
  let n = rc.size in
  let down = Array.make (max n 1) 0. in
  let m1 = Array.make n 0. in
  let m2 = Array.make n 0. in
  let m3 = Array.make n 0. in
  Array.blit rc.cap 0 down 0 n;
  moment_pass rc ~r_drv ~down ~m:m1;
  for i = 0 to n - 1 do
    down.(i) <- rc.cap.(i) *. m1.(i)
  done;
  moment_pass rc ~r_drv ~down ~m:m2;
  for i = 0 to n - 1 do
    down.(i) <- rc.cap.(i) *. m2.(i)
  done;
  moment_pass rc ~r_drv ~down ~m:m3;
  (m1, m2, m3)

type model =
  | One_pole of float                          (* tau *)
  | Two_pole of { p1 : float; p2 : float; k1 : float; k2 : float }

let fit ~m1 ~m2 ~m3 =
  if Float.is_nan m1 || Float.is_nan m2 || Float.is_nan m3 then
    Numerics.fail "moment fit: NaN moments (m1=%g m2=%g m3=%g)" m1 m2 m3;
  let denom = m2 -. (m1 *. m1) in
  if denom <= 1e-9 *. m1 *. m1 || m1 <= 0. then One_pole (max m1 1e-6)
  else begin
    let d1 = (m3 -. (m1 *. m2)) /. denom in
    let d2 = (d1 *. m1) -. m2 in
    let c1 = d1 -. m1 in
    let disc = (d1 *. d1) -. (4. *. d2) in
    if d2 <= 0. || disc < 0. then One_pole m1
    else begin
      let sq = sqrt disc in
      let p1 = (-.d1 +. sq) /. (2. *. d2) in
      let p2 = (-.d1 -. sq) /. (2. *. d2) in
      if p1 >= 0. || p2 >= 0. || p1 = p2 then One_pole m1
      else begin
        let k p other = (1. +. (c1 *. p)) /. (d2 *. p *. (p -. other)) in
        let k1 = k p1 p2 and k2 = k p2 p1 in
        (* The fit must satisfy v(0+) = 1 + k1 + k2 ≈ 0 and stay causal;
           reject wild fits. *)
        if Float.abs (1. +. k1 +. k2) > 0.05 then One_pole m1
        else Two_pole { p1; p2; k1; k2 }
      end
    end
  end

(* Integral of the step response from 0 to t. *)
let step_integral model t =
  match model with
  | One_pole tau -> t -. (tau *. (1. -. exp (-.t /. tau)))
  | Two_pole { p1; p2; k1; k2 } ->
    t
    +. ((k1 /. p1) *. (exp (p1 *. t) -. 1.))
    +. ((k2 /. p2) *. (exp (p2 *. t) -. 1.))

(* Response at time t to a saturated ramp of duration [ramp]. *)
let ramp_response model ~ramp t =
  if t <= 0. then 0.
  else
    let hi = step_integral model t in
    let lo = if t <= ramp then 0. else step_integral model (t -. ramp) in
    (hi -. lo) /. ramp

let crossing model ~ramp ~tau_hint threshold =
  (* The ramp response is monotone for RC-tree-like models; bisection. *)
  let hi = ref (ramp +. (20. *. tau_hint) +. 1.) in
  let guard = ref 0 in
  while ramp_response model ~ramp !hi < threshold && !guard < 60 do
    hi := !hi *. 2.;
    incr guard
  done;
  let lo = ref 0. and hi = ref !hi in
  for _ = 1 to 64 do
    let mid = 0.5 *. (!lo +. !hi) in
    if ramp_response model ~ramp mid < threshold then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let solve (rc : Rcnet.t) ~r_drv ~s_drv =
  let m1, m2, m3 = moments rc ~r_drv in
  let ramp = s_drv /. 0.8 in
  Array.map
    (fun (i, _) ->
      let model = fit ~m1:m1.(i) ~m2:m2.(i) ~m3:m3.(i) in
      let tau_hint = m1.(i) in
      let t50 = crossing model ~ramp ~tau_hint 0.5 in
      let t10 = crossing model ~ramp ~tau_hint 0.1 in
      let t90 = crossing model ~ramp ~tau_hint 0.9 in
      let delay = t50 -. (ramp /. 2.) and slew = t90 -. t10 in
      if Float.is_nan delay || Float.is_nan slew then
        Numerics.fail "moment solve: NaN result at tap node %d" i;
      (delay, slew))
    rc.taps

(* Ramp-response value and slope at t, sharing the exponentials between
   the two. The slope is the step response difference over the ramp. *)
let ramp_point model ~ramp t =
  if t <= 0. then (0., 0.)
  else begin
    let integ_and_step tt =
      match model with
      | One_pole tau ->
        let e = exp (-.tt /. tau) in
        (tt -. (tau *. (1. -. e)), 1. -. e)
      | Two_pole { p1; p2; k1; k2 } ->
        let e1 = exp (p1 *. tt) and e2 = exp (p2 *. tt) in
        ( tt +. ((k1 /. p1) *. (e1 -. 1.)) +. ((k2 /. p2) *. (e2 -. 1.)),
          1. +. (k1 *. e1) +. (k2 *. e2) )
    in
    let hi, shi = integ_and_step t in
    let lo, slo =
      if t <= ramp then (0., 0.) else integ_and_step (t -. ramp)
    in
    ((hi -. lo) /. ramp, (shi -. slo) /. ramp)
  end

(* Same crossing as [crossing] to within ~1e-12 ps, found by safeguarded
   Newton inside a maintained bracket instead of a fixed-count bisection.
   [lo0, hi0] must bracket the threshold. The estimated-error stopping
   rule (Newton step below 1e-12) is certified by the bisection fallback:
   if Newton cannot shrink its step, the bracket finishes the job. *)
let crossing_newton model ~ramp ~lo0 ~hi0 threshold =
  if Float.is_nan lo0 || Float.is_nan hi0 then
    Numerics.fail "moment crossing: NaN bracket [%g, %g] at threshold %g"
      lo0 hi0 threshold;
  let lo = ref lo0 and hi = ref hi0 in
  let t = ref (0.5 *. (lo0 +. hi0)) in
  let result = ref nan in
  let iter = ref 0 in
  while Float.is_nan !result && !iter < 50 do
    incr iter;
    let v, s = ramp_point model ~ramp !t in
    if v < threshold then lo := !t else hi := !t;
    let step = if s > 0. then (threshold -. v) /. s else nan in
    if (not (Float.is_nan step)) && Float.abs step < 1e-12 then
      result := !t +. step
    else begin
      let nt = !t +. step in
      t :=
        if Float.is_nan nt || nt <= !lo || nt >= !hi then
          0.5 *. (!lo +. !hi)
        else nt
    end
  done;
  if Float.is_nan !result then begin
    (* Newton exhausted its iterations without certifying a root; the
       maintained bracket still holds one, so finish by bisection. *)
    for _ = 1 to 64 do
      let mid = 0.5 *. (!lo +. !hi) in
      if fst (ramp_point model ~ramp mid) < threshold then lo := mid
      else hi := mid
    done;
    let r = 0.5 *. (!lo +. !hi) in
    if Float.is_nan r then
      Numerics.fail
        "moment crossing: bisection fallback produced NaN at threshold %g"
        threshold;
    r
  end
  else !result

(* Drop-in replacement for [solve] that agrees with it to well under
   1e-9 ps per tap but costs an order of magnitude fewer exponentials:
   one upper bracket is established for the 90 % threshold and shared,
   the monotone ordering t10 < t50 < t90 turns each crossing into the
   next one's bracket edge, and the roots are polished by safeguarded
   Newton. The incremental session uses this for cache misses; the
   stateless [evaluate] keeps [solve] so its results never move. *)
let solve_fast (rc : Rcnet.t) ~r_drv ~s_drv =
  let m1, m2, m3 = moments rc ~r_drv in
  let ramp = s_drv /. 0.8 in
  Array.map
    (fun (i, _) ->
      let model = fit ~m1:m1.(i) ~m2:m2.(i) ~m3:m3.(i) in
      let hi = ref (ramp +. (20. *. m1.(i)) +. 1.) in
      let guard = ref 0 in
      while fst (ramp_point model ~ramp !hi) < 0.9 && !guard < 60 do
        hi := !hi *. 2.;
        incr guard
      done;
      let t10 = crossing_newton model ~ramp ~lo0:0. ~hi0:!hi 0.1 in
      let t50 = crossing_newton model ~ramp ~lo0:t10 ~hi0:!hi 0.5 in
      let t90 = crossing_newton model ~ramp ~lo0:t50 ~hi0:!hi 0.9 in
      let delay = t50 -. (ramp /. 2.) and slew = t90 -. t10 in
      if Float.is_nan delay || Float.is_nan slew then
        Numerics.fail "moment solve_fast: NaN result at tap node %d" i;
      (delay, slew))
    rc.taps
