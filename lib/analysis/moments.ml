(* Recursive path-resistance moments: m_j(i) = Σ_k R(root→i ∧ root→k) ·
   C_k · m_{j-1}(k), with m_0 ≡ 1 and the driver resistance on the path to
   every node. For H(s) = Σ (-1)^j m_j s^j of an RC tree all m_j are
   positive. *)

let moment_pass (rc : Rcnet.t) ~r_drv ~weights =
  let down = Array.copy weights in
  for i = rc.size - 1 downto 1 do
    down.(rc.parent.(i)) <- down.(rc.parent.(i)) +. down.(i)
  done;
  let m = Array.make rc.size 0. in
  if rc.size > 0 then m.(0) <- Tech.Units.ps_of_rc r_drv down.(0);
  for i = 1 to rc.size - 1 do
    m.(i) <- m.(rc.parent.(i)) +. Tech.Units.ps_of_rc rc.res.(i) down.(i)
  done;
  m

let moments (rc : Rcnet.t) ~r_drv =
  let m1 = moment_pass rc ~r_drv ~weights:rc.cap in
  let w2 = Array.mapi (fun i c -> c *. m1.(i)) rc.cap in
  let m2 = moment_pass rc ~r_drv ~weights:w2 in
  let w3 = Array.mapi (fun i c -> c *. m2.(i)) rc.cap in
  let m3 = moment_pass rc ~r_drv ~weights:w3 in
  (m1, m2, m3)

type model =
  | One_pole of float                          (* tau *)
  | Two_pole of { p1 : float; p2 : float; k1 : float; k2 : float }

let fit ~m1 ~m2 ~m3 =
  let denom = m2 -. (m1 *. m1) in
  if denom <= 1e-9 *. m1 *. m1 || m1 <= 0. then One_pole (max m1 1e-6)
  else begin
    let d1 = (m3 -. (m1 *. m2)) /. denom in
    let d2 = (d1 *. m1) -. m2 in
    let c1 = d1 -. m1 in
    let disc = (d1 *. d1) -. (4. *. d2) in
    if d2 <= 0. || disc < 0. then One_pole m1
    else begin
      let sq = sqrt disc in
      let p1 = (-.d1 +. sq) /. (2. *. d2) in
      let p2 = (-.d1 -. sq) /. (2. *. d2) in
      if p1 >= 0. || p2 >= 0. || p1 = p2 then One_pole m1
      else begin
        let k p other = (1. +. (c1 *. p)) /. (d2 *. p *. (p -. other)) in
        let k1 = k p1 p2 and k2 = k p2 p1 in
        (* The fit must satisfy v(0+) = 1 + k1 + k2 ≈ 0 and stay causal;
           reject wild fits. *)
        if Float.abs (1. +. k1 +. k2) > 0.05 then One_pole m1
        else Two_pole { p1; p2; k1; k2 }
      end
    end
  end

(* Integral of the step response from 0 to t. *)
let step_integral model t =
  match model with
  | One_pole tau -> t -. (tau *. (1. -. exp (-.t /. tau)))
  | Two_pole { p1; p2; k1; k2 } ->
    t
    +. ((k1 /. p1) *. (exp (p1 *. t) -. 1.))
    +. ((k2 /. p2) *. (exp (p2 *. t) -. 1.))

(* Response at time t to a saturated ramp of duration [ramp]. *)
let ramp_response model ~ramp t =
  if t <= 0. then 0.
  else
    let hi = step_integral model t in
    let lo = if t <= ramp then 0. else step_integral model (t -. ramp) in
    (hi -. lo) /. ramp

let crossing model ~ramp ~tau_hint threshold =
  (* The ramp response is monotone for RC-tree-like models; bisection. *)
  let hi = ref (ramp +. (20. *. tau_hint) +. 1.) in
  let guard = ref 0 in
  while ramp_response model ~ramp !hi < threshold && !guard < 60 do
    hi := !hi *. 2.;
    incr guard
  done;
  let lo = ref 0. and hi = ref !hi in
  for _ = 1 to 64 do
    let mid = 0.5 *. (!lo +. !hi) in
    if ramp_response model ~ramp mid < threshold then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let solve (rc : Rcnet.t) ~r_drv ~s_drv =
  let m1, m2, m3 = moments rc ~r_drv in
  let ramp = s_drv /. 0.8 in
  Array.map
    (fun (i, _) ->
      let model = fit ~m1:m1.(i) ~m2:m2.(i) ~m3:m3.(i) in
      let tau_hint = m1.(i) in
      let t50 = crossing model ~ramp ~tau_hint 0.5 in
      let t10 = crossing model ~ramp ~tau_hint 0.1 in
      let t90 = crossing model ~ramp ~tau_hint 0.9 in
      (t50 -. (ramp /. 2.), t90 -. t10))
    rc.taps
