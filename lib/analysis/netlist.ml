module Tree = Ctree.Tree

(* Node naming: n<i> is the electrical net at ctree node i; inverter
   internals get suffixes. The clock root is driven by a PULSE source
   through the technology's source resistance. *)

let to_string ?(seg_len = Rcnet.default_seg_len) ?(t_stop = 2000.) tree =
  let tech = Tree.tech tree in
  let buf = Buffer.create 65536 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let vdd = 1.2 in
  pf "* Contango clock tree export (%d nodes)\n" (Tree.size tree);
  pf "* units: R ohm, C fF (printed as fF -> f), T ps (printed as ps -> p)\n";
  pf ".param vdd=%g\n" vdd;
  let rcount = ref 0 and ccount = ref 0 and bcount = ref 0 in
  let fresh p c = incr c; Printf.sprintf "%s%d" p !c in
  (* Driver source at the clock root. *)
  let slew = tech.Tech.source_slew in
  pf "Vclk nsrc 0 PULSE(0 %g 50p %gp %gp %gp %gp)\n" vdd (slew /. 0.8)
    (slew /. 0.8) (t_stop /. 2.) t_stop;
  pf "Rsrc nsrc n0 %g\n" tech.Tech.source_r;
  (* Wires, sinks, inverters. *)
  Tree.iter tree (fun nd ->
      let i = nd.Tree.id in
      (* Wire from parent's output net to this node. Inverter nodes own an
         input net n<i> and output net n<i>o. *)
      if nd.Tree.parent >= 0 then begin
        let parent = nd.Tree.parent in
        let parent_net =
          match (Tree.node tree parent).Tree.kind with
          | Tree.Buffer _ -> Printf.sprintf "n%do" parent
          | _ -> Printf.sprintf "n%d" parent
        in
        let len = Tree.wire_len nd in
        let wire = Tree.wire_of tree nd in
        let nseg = max 1 ((len + seg_len - 1) / seg_len) in
        let seg_r = Tech.Wire.res wire len /. float_of_int nseg in
        let seg_c = Tech.Wire.cap wire len /. float_of_int nseg in
        let prev = ref parent_net in
        for s = 1 to nseg do
          let nxt =
            if s = nseg then Printf.sprintf "n%d" i
            else Printf.sprintf "n%d_w%d" i s
          in
          pf "%s %s %s %g\n" (fresh "R" rcount) !prev nxt seg_r;
          pf "%s %s 0 %gf\n" (fresh "C" ccount) nxt seg_c;
          prev := nxt
        done
      end;
      match nd.Tree.kind with
      | Tree.Sink s ->
        pf "* sink %s\n" s.Tree.label;
        pf "%s n%d 0 %gf\n" (fresh "C" ccount) i s.Tree.cap
      | Tree.Buffer b ->
        incr bcount;
        (* Input pin cap; behavioural inverter through the average output
           resistance into the output parasitic. *)
        pf "* composite inverter %s at node %d\n" (Tech.Composite.name b) i;
        pf "%s n%d 0 %gf\n" (fresh "C" ccount) i (Tech.Composite.c_in b);
        pf "B%d n%di 0 V='(V(n%d) < vdd/2) ? vdd : 0'\n" i i i;
        pf "%s n%di n%do %g\n" (fresh "R" rcount) i i (Tech.Composite.r_out b);
        pf "%s n%do 0 %gf\n" (fresh "C" ccount) i (Tech.Composite.c_out b)
      | Tree.Source | Tree.Internal -> ());
  (* Measurements per sink. *)
  Array.iter
    (fun s ->
      pf ".measure tran t50_%d WHEN V(n%d)=%g RISE=1\n" s s (vdd /. 2.);
      pf ".measure tran slew_%d TRIG V(n%d) VAL=%g RISE=1 TARG V(n%d) VAL=%g RISE=1\n"
        s s (0.1 *. vdd) s (0.9 *. vdd))
    (Tree.sinks tree);
  pf ".tran 1p %gp\n" t_stop;
  pf ".end\n";
  Buffer.contents buf

let write_file path ?seg_len ?t_stop tree =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?seg_len ?t_stop tree))
