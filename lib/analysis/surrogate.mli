(** Calibrated surrogate model for speculative candidate ranking.

    Every candidate the IVC loops explore pays a full transient (or
    Arnoldi) evaluation today. SwiftCTS-style predictors show that a
    cheap model over features the flow already computes — per-edit
    wirelength/capacitance/drive deltas weighted by where the touched
    nodes sit in the baseline latency window — ranks candidates with
    enough fidelity to prune most of the expensive runs.

    A {!t} holds one linear model per (technology bundle × objective)
    key, calibrated online: callers feed every measured
    (features, objective delta) pair through {!observe} (a bounded ring
    buffer per key); the model refits by ordinary least squares (tiny
    ridge term for conditioning) every few observations once enough
    samples exist, and tracks its own RMS residual as a {e trust
    radius}. {!predict} returns [None] until the key is calibrated —
    consumers treat that as "evaluate everything", so a cold model can
    never change results.

    Determinism: no randomness anywhere. The model state is a pure
    function of the observation sequence, so two runs feeding identical
    pairs in identical order rank identically — the property the
    width-independence oracle tests. States are cheap, are expected to
    be per-flow (never shared across domains), and are not
    thread-safe. *)

module Tree = Ctree.Tree

(** Number of features in a vector (see {!features}). *)
val dim : int

(** Per-node electrical state captured over a journal's touched set;
    ids that do not exist (a rolled-back [split_wire]'s fresh node) or
    are out of range contribute zeros. *)
type node_state

(** [capture tree ids] — snapshot wire length/cap and driver strength
    of each touched node; order follows [ids]. *)
val capture : Tree.t -> int list -> node_state array

(** Latency-position weight from a baseline evaluation: node id ↦
    position of its nominal arrival inside the [t_min, t_max] window,
    scaled to [-1, 1] (early sinks negative — added delay there {e
    reduces} skew; late sinks positive). Ids without a meaningful
    latency weigh 0. *)
val position_fn : Evaluator.t -> int -> float

(** Feature vector of one candidate edit: unweighted and
    position-weighted deltas between the pre- and post-edit captures of
    the same touched set (see doc/EXTENDING.md for the exact layout).
    [pre] and [post] must come from {!capture} over the same [ids]. *)
val features :
  pos:(int -> float) -> ids:int list -> pre:node_state array ->
  post:node_state array -> float array

(** Closed-form ordinary least squares used by the refit: returns the
    [dim samples + 1] coefficient vector (bias term last) minimising
    the squared error of [x · coeffs] over the samples, with a tiny
    scale-aware ridge term for rank-deficient windows. Exposed for the
    refit-correctness fixture test. *)
val ols : (float array * float) array -> float array

type t

val create : unit -> t

(** Feed one measured pair into [key]'s ring buffer (and refit when
    due). [y] is the measured objective delta in ps (negative =
    improvement). *)
val observe : t -> key:string -> float array -> float -> unit

(** [Some (predicted_delta, trust_radius)] once [key] is calibrated;
    [None] while cold. A measured delta within
    [predicted ± trust_radius] is in-model; outside it the caller
    should count a mispredict ({!note_mispredict}) and fall back to
    evaluating the full candidate set. *)
val predict : t -> key:string -> float array -> (float * float) option

(** Margin for ruling candidates out {e without} evaluating them: the
    window RMS residual (1σ — deliberately tighter than the 3σ trust
    radius the mispredict guard uses), floored like the trust radius.
    [infinity] while [key] is cold, so a cold model never prunes. *)
val prune_radius : t -> key:string -> float

(** Persistent rank-widening for [key]: starts at 0, bumped by every
    {!note_mispredict}, added to the configured top-R so a model that
    keeps misranking pays for it with wider evaluation chunks. *)
val widening : t -> key:string -> int

val note_mispredict : t -> key:string -> unit

(** Record an in-trust ranked win for [key]: decays the {!widening} by
    one (floor 0), so a burst of mispredicts widens R quickly and a run
    of validated predictions narrows it back instead of pinning the
    search at full width forever. *)
val note_intrust : t -> key:string -> unit

(** Deterministic audit schedule for all-candidates-ruled-out rounds:
    returns [true] on every 8th call, telling the caller to evaluate the
    best-predicted candidate anyway so a drifted model keeps receiving
    corrective observations instead of silently terminating every
    loop. *)
val audit_hopeless : t -> bool

(** Telemetry counters (cumulative since {!create}). *)
type stats = {
  observations : int;   (** measured pairs fed to {!observe} *)
  refits : int;         (** OLS refits across all keys *)
  warmup_rounds : int;  (** rounds explored serially while cold *)
  ranked_rounds : int;  (** rounds that went through surrogate ranking *)
  fallbacks : int;      (** ranked rounds that evaluated beyond top-R *)
  mispredicts : int;    (** measured deltas outside the trust radius *)
  evals_saved : int;    (** candidate evaluations skipped by ranking *)
}

val stats : t -> stats
val note_warmup : t -> unit
val note_ranked : t -> unit
val note_fallback : t -> unit
val note_saved : t -> int -> unit
