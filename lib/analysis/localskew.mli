(** Local skew: the worst latency difference between *nearby* sink pairs.

    Global skew counts latency spread between arbitrary sinks, but only
    sinks that actually exchange data constrain the clock — and
    communicating registers are physically close. Industrial sign-off
    therefore also reports skew restricted to sink pairs within a distance
    window; a tree can trade harmless far-apart skew for tighter local
    alignment. *)

(** [compute run ~tree ~radius] — worst |latency difference| over sink
    pairs at Manhattan distance ≤ [radius] nm, using the latencies of one
    evaluation run. 0 for fewer than two sinks in every neighbourhood.
    Bucketised: O(n) in practice. *)
val compute :
  Evaluator.run -> tree:Ctree.Tree.t -> radius:int -> float

(** Local skew at several radii, smallest first: [(radius, skew)]. *)
val profile :
  Evaluator.run -> tree:Ctree.Tree.t -> radii:int list -> (int * float) list
