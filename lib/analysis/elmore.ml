let downstream_cap (rc : Rcnet.t) =
  let down = Array.copy rc.cap in
  for i = rc.size - 1 downto 1 do
    down.(rc.parent.(i)) <- down.(rc.parent.(i)) +. down.(i)
  done;
  down

let node_delays (rc : Rcnet.t) ~r_drv =
  let down = downstream_cap rc in
  let delay = Array.make rc.size 0. in
  if rc.size > 0 then delay.(0) <- Tech.Units.ps_of_rc r_drv down.(0);
  for i = 1 to rc.size - 1 do
    delay.(i) <- delay.(rc.parent.(i)) +. Tech.Units.ps_of_rc rc.res.(i) down.(i)
  done;
  delay

let solve (rc : Rcnet.t) ~r_drv ~s_drv =
  let delay = node_delays rc ~r_drv in
  Array.map
    (fun (i, _) ->
      let d = delay.(i) in
      let step_slew = Tech.Units.ln9 *. d in
      (d, sqrt ((s_drv *. s_drv) +. (step_slew *. step_slew))))
    rc.taps
