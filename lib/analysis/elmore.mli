(** Elmore delay with PERI-style slew propagation — the fast analytical
    model used during construction (ZST balancing, van Ginneken). *)

(** Per-tap [(delay, slew)] in ps for a stage driven through [r_drv] Ω by a
    ramp of 10–90 % slew [s_drv] ps. The result array is indexed like
    [rc.taps]. *)
val solve : Rcnet.t -> r_drv:float -> s_drv:float -> (float * float) array

(** Elmore delay at every rc node (ps), for callers needing interior
    values. *)
val node_delays : Rcnet.t -> r_drv:float -> float array

(** Total downstream capacitance seen at each rc node (fF). *)
val downstream_cap : Rcnet.t -> float array
