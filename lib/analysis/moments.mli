(** Two-pole moment-matching engine (Arnoldi-approximation stand-in).

    Matches the first three moments of each tap's transfer function with a
    Padé (1,2) approximant, yielding a two-real-pole step response that
    captures resistive shielding. Falls back to a single-pole model when
    the fit degenerates. Used as the accurate-but-fast evaluator for
    50K-sink scalability runs, as the paper suggests (§V footnote). *)

(** Per-tap [(delay, slew)] in ps, measured on the response to a saturated
    ramp through [r_drv]: delay from the ramp's 50 % point to the tap's
    50 % crossing, slew as the 10–90 % interval. Indexed like
    [rc.taps]. *)
val solve : Rcnet.t -> r_drv:float -> s_drv:float -> (float * float) array

(** Same model and thresholds as {!solve}, agreeing with it to well under
    1e-9 ps per tap, but finds the crossings by bracketed safeguarded
    Newton instead of fixed-count bisection — an order of magnitude fewer
    exponentials per tap. The incremental evaluation session uses this
    for cache misses; {!solve} stays the reference so the stateless
    evaluator's results never move. *)
val solve_fast : Rcnet.t -> r_drv:float -> s_drv:float -> (float * float) array

(** First three moments (ps, ps², ps³) at every rc node, driver resistance
    included. Exposed for tests. *)
val moments : Rcnet.t -> r_drv:float -> float array * float array * float array
