(** SPICE netlist export.

    Writes the buffered clock tree as an ngspice-compatible deck so the
    results of the built-in evaluator can be cross-checked against a real
    circuit simulator (the paper's flow is evaluator-agnostic — "any
    accurate delay evaluator can be used", §V).

    Modelling matches the built-in evaluator: wires become segmented RC
    ladders, sinks become grounded capacitors, and each composite inverter
    becomes a subcircuit with an input pin capacitance and a
    behavioural-source driver switching through its output resistance into
    its output parasitic. The deck includes a PULSE source at the clock
    root, a [.tran] analysis, and one [.measure] pair (50 % delay, 10–90 %
    slew) per sink. *)

(** [to_string ?seg_len ?t_stop tree] renders the deck. [seg_len] is the
    wire segmentation (default 30 µm); [t_stop] the transient horizon in
    ps (default 2000). *)
val to_string : ?seg_len:int -> ?t_stop:float -> Ctree.Tree.t -> string

val write_file : string -> ?seg_len:int -> ?t_stop:float -> Ctree.Tree.t -> unit
