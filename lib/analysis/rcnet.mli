(** Expansion of a buffered clock tree into driver stages.

    A stage is everything one driver (the clock source or a buffer output)
    sees: the RC interconnect up to — and including — the input pins of
    downstream buffers and the sink loads. Wires are segmented into π
    models so that resistive shielding is visible to the accurate
    engines. *)

type tap_kind =
  | Tap_sink of int    (** ctree node id of the sink *)
  | Tap_buffer of int  (** ctree node id of the downstream buffer *)

type t = {
  parent : int array;  (** rc-node parent; -1 for the driver output node *)
  res : float array;   (** Ω, edge to parent; unused at index of the root *)
  cap : float array;   (** grounded capacitance, fF (loads included) *)
  taps : (int * tap_kind) array;  (** rc node index paired with the tap *)
  size : int;
}

type stage = {
  driver : int;  (** ctree node id of the source or buffer driving this stage *)
  rc : t;
}

(** Default RC segmentation granularity, nm (30 µm) — the single source
    of truth; [Core.Config.default.seg_len] and the [--seg-len] CLI flag
    default to it. *)
val default_seg_len : int

(** Reusable growable extraction buffers. {!stages} and {!stage_for} copy
    the finished stage out of the builder, so one builder can serve any
    number of extractions — pass it explicitly on hot paths (the
    incremental dirty-set re-extraction) to avoid re-allocating the
    growable arrays per stage. Not thread-safe: one builder per domain. *)
type builder

val new_builder : unit -> builder

(** The calling domain's lazily-created builder ([Domain.DLS]): the
    default for {!stages}/{!stage_for} when no builder is passed, so
    repeated extractions on one domain — e.g. the regional flow's
    per-worker region trees — reuse the grown arrays instead of
    allocating fresh ones per call. *)
val domain_builder : unit -> builder

(** All stages of a tree in topological order (the source stage first, each
    buffer's stage after the stage containing that buffer's input).
    [seg_len] is the maximum wire-segment length in nm (default
    {!default_seg_len}); [builder] defaults to {!domain_builder}. *)
val stages : ?builder:builder -> ?seg_len:int -> Ctree.Tree.t -> stage list

(** Rebuild the single stage driven by [driver] (the source or a buffer),
    without expanding downstream stages — the incremental evaluator's
    dirty-set fast path uses it to re-extract only the stages a journaled
    edit touched. Produces exactly the stage {!stages} would for the same
    driver. *)
val stage_for :
  ?builder:builder -> ?seg_len:int -> Ctree.Tree.t -> driver:int -> stage

(** Content hash (64-bit FNV-1a) of a stage's electrical identity:
    topology, element values and tap layout. Ctree node ids carried by the
    taps are excluded so the fingerprint survives tree compaction. Two
    stages with equal fingerprints produce identical engine results for
    the same driver parameters (modulo the astronomically unlikely
    collision). *)
val fingerprint : t -> int64

(** Total downstream capacitance of the stage (wires + loads), fF.
    Excludes the driver's own output parasitic. *)
val total_cap : t -> float
