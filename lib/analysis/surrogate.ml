module Tree = Ctree.Tree

(* Feature layout (all deltas post − pre over the touched set):
     0  Δ wirelength, µm
     1  Δ wire capacitance, fF
     2  Δ driver output resistance, kΩ (touched buffer nodes)
     3  Δ buffer input capacitance, fF
     4  Σ pos(v) · Δlen_v        — where the length moved
     5  Σ pos(v) · Δcap_v
     6  Σ pos(v) · Δr_v
     7  Σ pos(v) · Δ(len_v²)     — Elmore's length-squared term
   Units are chosen so typical magnitudes land within a few orders of
   each other; the scale-aware ridge in [ols] covers the rest. *)
let dim = 8

type node_state = { len : float; cap : float; r : float; cin : float }

let zero_state = { len = 0.; cap = 0.; r = 0.; cin = 0. }

let capture tree ids =
  let n = Tree.size tree in
  Array.of_list
    (List.map
       (fun id ->
         if id < 0 || id >= n then zero_state
         else begin
           let node = Tree.node tree id in
           let len = float_of_int (Tree.wire_len node) /. 1000. in
           let cap = Tree.wire_cap tree node in
           match node.Tree.kind with
           | Tree.Buffer b ->
             { len; cap;
               r = Tech.Composite.r_out b /. 1000.;
               cin = Tech.Composite.c_in b }
           | Tree.Source | Tree.Internal | Tree.Sink _ ->
             { len; cap; r = 0.; cin = 0. }
         end)
       ids)

let position_fn (ev : Evaluator.t) =
  let lat = (Evaluator.nominal_run ev Evaluator.Rise).Evaluator.latency in
  let mid = 0.5 *. (ev.Evaluator.t_min +. ev.Evaluator.t_max) in
  let half = (0.5 *. (ev.Evaluator.t_max -. ev.Evaluator.t_min)) +. 1e-9 in
  fun id ->
    if id < 0 || id >= Array.length lat then 0.
    else begin
      let l = lat.(id) in
      if (not (Float.is_finite l)) || l <= 0. then 0.
      else Float.max (-1.) (Float.min 1. ((l -. mid) /. half))
    end

let features ~pos ~ids ~pre ~post =
  let x = Array.make dim 0. in
  List.iteri
    (fun i id ->
      let a = pre.(i) and b = post.(i) in
      let dlen = b.len -. a.len in
      let dcap = b.cap -. a.cap in
      let dr = b.r -. a.r in
      let dcin = b.cin -. a.cin in
      let p = pos id in
      x.(0) <- x.(0) +. dlen;
      x.(1) <- x.(1) +. dcap;
      x.(2) <- x.(2) +. dr;
      x.(3) <- x.(3) +. dcin;
      x.(4) <- x.(4) +. (p *. dlen);
      x.(5) <- x.(5) +. (p *. dcap);
      x.(6) <- x.(6) +. (p *. dr);
      x.(7) <- x.(7) +. (p *. ((b.len *. b.len) -. (a.len *. a.len))))
    ids;
  x

(* ------------------------------------------------------------------ *)
(* Ordinary least squares over the ring-buffer window.                 *)
(* ------------------------------------------------------------------ *)

(* Solve (XᵀX + λ·diag) β = Xᵀy by Gaussian elimination with partial
   pivoting. The ridge term is scale-aware (relative to each diagonal
   entry) and tiny, so it only matters on rank-deficient windows —
   e.g. when every observed edit so far moved the same feature. *)
let ols samples =
  let d =
    match samples with
    | [||] -> invalid_arg "Surrogate.ols: no samples"
    | _ -> Array.length (fst samples.(0)) + 1
  in
  let a = Array.make_matrix d d 0. in
  let b = Array.make d 0. in
  Array.iter
    (fun (x, y) ->
      let xi i = if i = d - 1 then 1. else x.(i) in
      for i = 0 to d - 1 do
        for j = 0 to d - 1 do
          a.(i).(j) <- a.(i).(j) +. (xi i *. xi j)
        done;
        b.(i) <- b.(i) +. (xi i *. y)
      done)
    samples;
  for i = 0 to d - 1 do
    a.(i).(i) <- a.(i).(i) +. (1e-8 *. (a.(i).(i) +. 1.))
  done;
  (* Elimination. *)
  for col = 0 to d - 1 do
    let piv = ref col in
    for row = col + 1 to d - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!piv).(col) then piv := row
    done;
    if !piv <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tb
    end;
    let p = a.(col).(col) in
    if Float.abs p > 1e-30 then
      for row = col + 1 to d - 1 do
        let f = a.(row).(col) /. p in
        if f <> 0. then begin
          for j = col to d - 1 do
            a.(row).(j) <- a.(row).(j) -. (f *. a.(col).(j))
          done;
          b.(row) <- b.(row) -. (f *. b.(col))
        end
      done
  done;
  let beta = Array.make d 0. in
  for i = d - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to d - 1 do
      s := !s -. (a.(i).(j) *. beta.(j))
    done;
    beta.(i) <- (if Float.abs a.(i).(i) > 1e-30 then !s /. a.(i).(i) else 0.)
  done;
  beta

(* ------------------------------------------------------------------ *)
(* Per-key calibrated model.                                           *)
(* ------------------------------------------------------------------ *)

let capacity = 64

(* Enough samples to over-determine the 9 coefficients before the first
   fit; until then {!predict} returns [None] and consumers evaluate
   everything (the warm-up schedule). *)
let min_samples = 10

let refit_every = 4

(* Trust radius: 3× the window RMS residual, floored so a lucky early
   window cannot claim near-zero uncertainty. *)
let trust_mult = 3.
let trust_floor_ps = 0.05

type model = {
  ring : (float array * float) array;  (* (features, measured delta) *)
  mutable count : int;                 (* total observations *)
  mutable since_fit : int;
  mutable coeffs : float array option;
  mutable trust : float;
  mutable widen : int;
}

type stats = {
  observations : int;
  refits : int;
  warmup_rounds : int;
  ranked_rounds : int;
  fallbacks : int;
  mispredicts : int;
  evals_saved : int;
}

type t = {
  models : (string, model) Hashtbl.t;
  mutable hopeless_seen : int;
  mutable s_observations : int;
  mutable s_refits : int;
  mutable s_warmup : int;
  mutable s_ranked : int;
  mutable s_fallbacks : int;
  mutable s_mispredicts : int;
  mutable s_saved : int;
}

let create () =
  { models = Hashtbl.create 4; hopeless_seen = 0; s_observations = 0;
    s_refits = 0; s_warmup = 0; s_ranked = 0; s_fallbacks = 0;
    s_mispredicts = 0; s_saved = 0 }

let model t key =
  match Hashtbl.find_opt t.models key with
  | Some m -> m
  | None ->
    let m =
      { ring = Array.make capacity ([||], 0.); count = 0; since_fit = 0;
        coeffs = None; trust = infinity; widen = 0 }
    in
    Hashtbl.replace t.models key m;
    m

let window m =
  let n = min m.count capacity in
  (* Oldest-first, so the fit is a pure function of the observation
     sequence regardless of where the ring pointer sits. *)
  Array.init n (fun i -> m.ring.((m.count - n + i) mod capacity))

let predict_with coeffs x =
  let d = Array.length coeffs in
  let s = ref coeffs.(d - 1) in
  for i = 0 to d - 2 do
    s := !s +. (coeffs.(i) *. x.(i))
  done;
  !s

let refit t m =
  let samples = window m in
  let coeffs = ols samples in
  let rss =
    Array.fold_left
      (fun acc (x, y) ->
        let e = y -. predict_with coeffs x in
        acc +. (e *. e))
      0. samples
  in
  let rms = sqrt (rss /. float_of_int (Array.length samples)) in
  m.coeffs <- Some coeffs;
  m.trust <- Float.max (trust_mult *. rms) trust_floor_ps;
  m.since_fit <- 0;
  t.s_refits <- t.s_refits + 1

let observe t ~key x y =
  if Float.is_finite y then begin
    let m = model t key in
    m.ring.(m.count mod capacity) <- (x, y);
    m.count <- m.count + 1;
    m.since_fit <- m.since_fit + 1;
    t.s_observations <- t.s_observations + 1;
    if
      m.count >= min_samples
      && (m.coeffs = None || m.since_fit >= refit_every)
    then refit t m
  end

let predict t ~key x =
  match Hashtbl.find_opt t.models key with
  | None -> None
  | Some m -> (
    match m.coeffs with
    | None -> None
    | Some c -> Some (predict_with c x, m.trust))

(* The pruning margin is deliberately tighter than the trust radius: the
   mispredict guard asks "was this evaluation consistent with the
   model?" (3σ — rarely trips on a healthy model), while pruning asks
   "is this candidate worth an evaluation at all?" — a 1σ bound, since a
   wrongly pruned candidate costs one missed improvement (bounded by the
   audit schedule) whereas a wrongly trusted one costs a committed bad
   edit. *)
let prune_radius t ~key =
  match Hashtbl.find_opt t.models key with
  | None -> infinity
  | Some m -> Float.max (0.5 *. m.trust /. trust_mult) trust_floor_ps

let widening t ~key =
  match Hashtbl.find_opt t.models key with Some m -> m.widen | None -> 0

let note_mispredict t ~key =
  let m = model t key in
  m.widen <- min 8 (m.widen + 1);
  t.s_mispredicts <- t.s_mispredicts + 1

(* In-trust wins pay the widening back down: a burst of mispredicts
   widens R quickly, a run of validated predictions narrows it again
   instead of pinning the search at full width forever. *)
let note_intrust t ~key =
  let m = model t key in
  if m.widen > 0 then m.widen <- m.widen - 1

(* Every 8th all-candidates-ruled-out round is audited (evaluated) rather
   than skipped, so a drifted model keeps receiving corrective
   observations instead of silently terminating every loop. The counter
   is part of the state, so the audit schedule is deterministic. *)
let audit_hopeless t =
  let n = t.hopeless_seen in
  t.hopeless_seen <- n + 1;
  n mod 8 = 7

let stats t =
  { observations = t.s_observations; refits = t.s_refits;
    warmup_rounds = t.s_warmup; ranked_rounds = t.s_ranked;
    fallbacks = t.s_fallbacks; mispredicts = t.s_mispredicts;
    evals_saved = t.s_saved }

let note_warmup t = t.s_warmup <- t.s_warmup + 1
let note_ranked t = t.s_ranked <- t.s_ranked + 1
let note_fallback t = t.s_fallbacks <- t.s_fallbacks + 1
let note_saved t n = if n > 0 then t.s_saved <- t.s_saved + n
