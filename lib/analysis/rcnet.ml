module Tree = Ctree.Tree

type tap_kind = Tap_sink of int | Tap_buffer of int

type t = {
  parent : int array;
  res : float array;
  cap : float array;
  taps : (int * tap_kind) array;
  size : int;
}

type stage = { driver : int; rc : t }

(* The single point of truth for the RC segmentation granularity (nm).
   [Core.Config.default] and every ?seg_len default below read it. *)
let default_seg_len = 30_000

(* Growable builder for one stage's rc arrays. Reusable across
   extractions: [finish] copies the filled prefix out, so [reset] makes
   the (already grown) buffers available to the next stage without
   re-allocating — the incremental dirty-set path re-extracts single
   stages at high frequency. *)
type builder = {
  mutable parent_b : int array;
  mutable res_b : float array;
  mutable cap_b : float array;
  mutable n : int;
  mutable taps_b : (int * tap_kind) list;
}

let new_builder () =
  { parent_b = Array.make 64 (-1); res_b = Array.make 64 0.;
    cap_b = Array.make 64 0.; n = 0; taps_b = [] }

let reset b =
  b.n <- 0;
  b.taps_b <- []

let push b ~parent ~res ~cap =
  if b.n = Array.length b.parent_b then begin
    let grow a fill =
      let bigger = Array.make (2 * b.n) fill in
      Array.blit a 0 bigger 0 b.n;
      bigger
    in
    b.parent_b <- grow b.parent_b (-1);
    b.res_b <- grow b.res_b 0.;
    b.cap_b <- grow b.cap_b 0.
  end;
  let id = b.n in
  b.parent_b.(id) <- parent;
  b.res_b.(id) <- res;
  b.cap_b.(id) <- cap;
  b.n <- b.n + 1;
  id

let finish b =
  {
    parent = Array.sub b.parent_b 0 b.n;
    res = Array.sub b.res_b 0 b.n;
    cap = Array.sub b.cap_b 0 b.n;
    taps = Array.of_list (List.rev b.taps_b);
    size = b.n;
  }

(* Expand one driver's stage. [on_buffer] fires for every downstream
   buffer reached (the drivers of the next stages). [?builder] lets a
   caller amortise the growable buffers across extractions. *)
let build_stage ?builder ~seg_len tree ~driver ~on_buffer =
  let b = match builder with Some b -> reset b; b | None -> new_builder () in
  let driver_node = Tree.node tree driver in
  let out_cap =
    match driver_node.Tree.kind with
    | Tree.Buffer buf -> Tech.Composite.c_out buf
    | Tree.Source | Tree.Internal | Tree.Sink _ -> 0.
  in
  let root_rc = push b ~parent:(-1) ~res:0. ~cap:out_cap in
  (* Expand the wire from [up_rc] down to ctree node [id], then recurse
     or terminate at taps. *)
  let rec expand up_rc id =
    let nd = Tree.node tree id in
    let len = Tree.wire_len nd in
    let wire = Tree.wire_of tree nd in
    let nsegs = max 1 ((len + seg_len - 1) / seg_len) in
    let total_r = Tech.Wire.res wire len in
    let total_c = Tech.Wire.cap wire len in
    let seg_r = total_r /. float_of_int nsegs in
    let seg_c = total_c /. float_of_int nsegs in
    (* π-segmentation: place each segment's capacitance at its far end;
       the near half of the first segment lands on the upstream node.
       For simplicity each segment is an RC L-section — with several
       segments per wire this converges to the same distributed
       behaviour. *)
    let last = ref up_rc in
    for _ = 1 to nsegs do
      last := push b ~parent:!last ~res:seg_r ~cap:seg_c
    done;
    let end_rc = !last in
    (match nd.Tree.kind with
    | Tree.Sink s ->
      b.cap_b.(end_rc) <- b.cap_b.(end_rc) +. s.Tree.cap;
      b.taps_b <- (end_rc, Tap_sink id) :: b.taps_b
    | Tree.Buffer buf ->
      b.cap_b.(end_rc) <- b.cap_b.(end_rc) +. Tech.Composite.c_in buf;
      b.taps_b <- (end_rc, Tap_buffer id) :: b.taps_b;
      on_buffer id
    | Tree.Internal ->
      List.iter (fun c -> expand end_rc c) nd.Tree.children
    | Tree.Source -> invalid_arg "Rcnet.stages: source below root")
  in
  List.iter (fun c -> expand root_rc c) driver_node.Tree.children;
  { driver; rc = finish b }

(* One lazily-created builder per domain: [finish] copies every stage
   out, so the grown arrays can serve consecutive extractions — including
   the regional flow's many trees per pool worker — without per-call
   allocation. Safe because extraction never nests within a domain. *)
let domain_builder_key = Domain.DLS.new_key new_builder
let domain_builder () = Domain.DLS.get domain_builder_key

let stages ?builder ?(seg_len = default_seg_len) tree =
  (* Queue of stage drivers to expand, seeded with the source. One
     builder serves every stage: [finish] copies out, [reset] recycles. *)
  let builder = match builder with Some b -> b | None -> domain_builder () in
  let pending = Queue.create () in
  Queue.add (Tree.root tree) pending;
  let out = ref [] in
  while not (Queue.is_empty pending) do
    let driver = Queue.pop pending in
    let stage =
      build_stage ~builder ~seg_len tree ~driver
        ~on_buffer:(fun id -> Queue.add id pending)
    in
    out := stage :: !out
  done;
  List.rev !out

let stage_for ?builder ?(seg_len = default_seg_len) tree ~driver =
  let builder = match builder with Some b -> b | None -> domain_builder () in
  build_stage ~builder ~seg_len tree ~driver ~on_buffer:(fun _ -> ())

(* 64-bit FNV-1a over the electrical content of a stage: topology (parent
   pointers), element values (bit patterns of res/cap) and the tap layout
   (rc indices and kinds, but NOT ctree node ids — the fingerprint must
   survive tree compaction/renumbering as long as the electricals match). *)
let fingerprint rc =
  let open Int64 in
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let mix x = h := mul (logxor !h x) prime in
  let mix_int i = mix (of_int i) in
  let mix_float f = mix (bits_of_float f) in
  mix_int rc.size;
  for i = 0 to rc.size - 1 do
    mix_int rc.parent.(i);
    mix_float rc.res.(i);
    mix_float rc.cap.(i)
  done;
  mix_int (Array.length rc.taps);
  Array.iter
    (fun (rc_idx, kind) ->
      mix_int rc_idx;
      mix_int (match kind with Tap_sink _ -> 0 | Tap_buffer _ -> 1))
    rc.taps;
  !h

let total_cap rc =
  let acc = ref 0. in
  for i = 1 to rc.size - 1 do
    acc := !acc +. rc.cap.(i)
  done;
  !acc
