(** Geometric sink partitioning for the regional flow: recursive
    capacity-balanced bisection of the sink set into [regions] cells.

    The split is purely deterministic — cut axis chosen by bounding-box
    aspect, cut position by cumulative capacitance — so a given sink set
    and region count always produce the same partition, which in turn
    keeps {!Flow.run_regional} digest-stable across worker counts. *)

(** [split ~regions sinks] — indices into [sinks], one array per region,
    each sorted ascending. Every region is non-empty; the capacitance of
    sibling cells at each bisection differs by at most one sink's cap.
    [regions] is clamped to [1, Array.length sinks].
    @raise Invalid_argument when [sinks] is empty or [regions < 1]. *)
val split : regions:int -> Dme.Zst.sink_spec array -> int array array

(** Rounded average position of the selected sinks — the pseudo-sink /
    regional source location used by the stitching top tree.
    @raise Invalid_argument on an empty selection. *)
val centroid : Dme.Zst.sink_spec array -> int array -> Geometry.Point.t
