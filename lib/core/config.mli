(** Flow parameters of the Contango methodology. All defaults follow the
    paper where it gives values (γ = 10 % power reserve, p_i = 100/(i+3) %
    sizing steps); the rest are robust settings that required no per-design
    tuning — a design goal the paper states explicitly. *)

type t = {
  engine : Analysis.Evaluator.engine;
      (** evaluation engine for every CNE (default [Spice]) *)
  flat : bool;
      (** run the [Spice] engine through the flat-arena streaming kernel
          ({!Analysis.Rcflat} pool + {!Analysis.Transient.Flat} marches)
          instead of boxed per-stage records; results agree to
          sub-femtosecond (~1e-6 ps at 100K-node stages), throughput at
          100K+ RC nodes is several times higher. Ignored by the model
          engines (default false) *)
  seg_len : int;
      (** RC segmentation granularity, nm (default
          {!Analysis.Rcnet.default_seg_len}) *)
  transient_step : float;
      (** [Spice] engine fine timestep, ps (default
          {!Analysis.Transient.default_step}) *)
  transient_mode : Analysis.Transient.mode;
      (** [Spice] engine stepping controller (default
          {!Analysis.Transient.default_mode}: per-stage auto-rated
          multi-rate marching; [Fixed] recovers the single-rate
          reference march) *)
  gamma : float;       (** power reserve kept for post-insertion steps *)
  vg_step : int;       (** buffer candidate spacing for insertion, nm *)
  vg_buckets : int option;
      (** candidate-list quantisation; [None] = exact van Ginneken *)
  composite_counts : int list;
      (** parallel counts tried for composite buffers, strongest first *)
  polarity_buf_count : int;
      (** parallel count of polarity-correcting inverters; 0 means "use
          the same composite as the insertion step chose" (the safe
          default — a weak corrective inverter above a subtree sized for a
          strong composite violates slew) *)
  snake_unit : int;    (** l_wn — wiresnaking unit length, nm *)
  max_snake_per_round : int;
      (** per-wire snaking cap per round, nm — keeps any one round's
          additions within slew margins; IVC and further rounds compound *)
  slew_margin : float;
      (** fraction of the slew limit the initial insertion must leave as
          headroom for the wire optimizations (which slow wires down and
          degrade slews); analogous to the γ power reserve *)
  damping : float;     (** fraction of estimated slack consumed per round *)
  max_rounds : int;    (** iteration cap per optimization *)
  second_pass_skew_ps : float;
      (** when the skew after BWSN is still above this band, {!Flow} runs
          the wire-optimization sequence (TWSZ→TWSN→BWSN) once more — the
          paper's "further optimization … at the cost of increased
          runtime" (§I). [infinity] disables the second pass, a negative
          value forces it *)
  deadline : float option;
      (** absolute monotonic deadline ({!Monoclock.now} scale) checked
          cooperatively before every {!Ivc.evaluate}; past it, evaluation
          raises {!Ivc.Deadline_exceeded}. [None] (the default) never
          times out. Set by the suite runner's per-instance budget *)
  branch_levels : int;
      (** tree levels after the first branch sized by capacitance
          borrowing (§IV-I suggests 4–5) *)
  multicorner_slacks : bool;
      (** take slack minima across corners, not just rise/fall (§III-B) *)
  stage_balancing : bool;
      (** equalise per-path inverter counts after insertion (see
          {!Stage_balance}); disable only for ablation studies *)
  elmore_prebalance : bool;
      (** run a cheap Elmore-engine snaking equalisation before the first
          accurate evaluation (§III-A: simple analytical models first);
          disable only for ablation studies *)
  incremental : bool;
      (** let {!Flow} drive all optimization steps through one
          {!Analysis.Evaluator.Incremental} session instead of from-scratch
          evaluations; results are identical, only wall-clock changes *)
  speculation : int;
      (** candidate-search width for {!Ivc.speculate}: [n > 0] uses [n]
          parallel lanes ([1] = serial journaled search on the main
          tree), [0] (the default) picks a width from the machine's core
          count, and [-1] restores the legacy copy-based serial attempt
          loop (full-tree snapshot per attempt, sequential scale ladder)
          — kept as the benchmark baseline. The final tree and
          evaluation are bit-identical for every value [>= 0]; width
          changes only wall-clock time and how many losing ladder rungs
          get (discarded) evaluations, while [-1] changes the whole
          evaluation schedule *)
  probe_count : int;
      (** waveform probes used by the wire-sizing/snaking/bottom-level
          correction estimators ({!Wiresizing.estimate_tws},
          {!Wiresnaking.estimate_twn}) *)
  size_probe_min_len : int;
      (** minimum parent-wire length, nm, for a wire-sizing probe site *)
  snake_probe_min_len : int;
      (** minimum parent-wire length, nm, for a snaking probe site *)
  max_stage_retries : int;
      (** how many times {!Flow} re-runs a failed stage before giving the
          failure to the caller. Each retry rolls the tree back to the
          last verified checkpoint and climbs the degraded-mode ladder
          (speculation off → fixed-mode halved-step serial evaluation);
          after a stage succeeds the normal configuration is restored.
          [0] disables stage retry entirely (failures propagate) *)
  regions : int;
      (** how many geometric regions {!Flow.run_regional} partitions the
          sinks into (recursive capacity-balanced bisection). Each region
          is synthesized and optimized as an independent tree in parallel
          on the domain pool, then stitched under a latency-balanced top
          tree. [1] (the default) is the monolithic flow, bit-identical
          to {!Flow.run}; values are clamped so no region gets fewer than
          two sinks *)
  stitch_skew_ps : float;
      (** convergence band for the post-stitch global polish loop: the
          loop stops once the measured cross-region skew drops below this
          (or its round budget runs out). Only read when [regions > 1] *)
  inject_numerical_failures : int;
      (** fault-injection knob for tests and drills: after the initial
          evaluation, the first [n] evaluations raise
          {!Analysis.Numerics.Numerical_failure} instead of returning.
          [0] (the default) injects nothing *)
  chaos : string option;
      (** fault-injection spec for the serve daemon's chaos harness
          (see {!Serve.Chaos} for the grammar — e.g.
          ["seed=7,eintr=0.2,drop_pre=1@1"]). Carried here so one config
          record describes a whole daemon; [None] (the default) injects
          nothing. Ignored by the one-shot flow entry points *)
  debug : bool;
      (** per-IVC-decision logging on stderr. Defaults to whether
          [CONTANGO_DEBUG] was set at startup; the suite runner can flip
          it per instance without re-exec *)
  surrogate : bool;
      (** rank speculative candidates with the calibrated
          {!Analysis.Surrogate} model: once calibrated, only the top-R
          predicted candidates of each round pay a full evaluation (a
          trust-radius mispredict guard falls back to the full set).
          [false] (the default) reproduces the unranked search exactly —
          bit-identical trees and evaluation schedule; [true] (set in
          {!scalability}) keeps final quality within the IVC tolerance
          while cutting the evaluation count. The surrogate-on schedule
          is itself width- and machine-independent: warm-up rounds use
          the serial lazy scan, ranked rounds evaluate a deterministic
          subset *)
  rank_top : int;
      (** how many top-ranked candidates pay a full evaluation per
          surrogate-ranked round; [0] (the default) scales with the
          candidate count ([max 1 (k/4)] — one rung of the scale
          ladder). Mispredicts persistently widen the effective R *)
  store : Analysis.Evaluator.Store.handle option;
      (** shared cross-request stage-result store for the main
          incremental session (see {!Analysis.Evaluator.Store}); set by
          long-lived callers (the serve daemon) so repeated instances
          reuse solved stages and factorisations. {!Flow} attaches it
          only to the primary session at degraded level 0 — degraded
          retries change the kernel's numerics, and replica sessions
          (speculation lanes, regional stitching) keep their own caches.
          [None] (the default) shares nothing *)
  evaluator : Speculate.hooks option;
      (** evaluation hooks used by {!Ivc.evaluate}; [None] falls back to
          [Evaluator.evaluate ~engine ~seg_len]. Set by {!Flow} to the
          incremental session's refresh/note pair — passes should not
          set it themselves *)
  spec : Speculate.t option;
      (** speculation context over the flow's main tree, set by {!Flow};
          {!Ivc.speculate} uses it when the pass operates on that tree
          and falls back to a serial context otherwise *)
  surrogate_state : Analysis.Surrogate.t option;
      (** live calibration state for [surrogate], created per run by
          {!Flow} (never shared across domains); [None] disables ranking
          even when [surrogate] is set — degraded retries clear it so
          recovery runs stay conservative. Passes should not set it
          themselves *)
}

val default : t

(** Default with the moment-matching engine and coarser knobs — the
    configuration for 10K+-sink scalability runs (§V uses groups of large
    inverters and a faster evaluator there). *)
val scalability : t

(** Effective lane count for {!t.speculation}: the value itself when
    positive, 1 for the legacy [-1] mode, and a core-count heuristic
    (cores − 1, clamped to [1, 8]) for the [0] auto setting. *)
val speculation_width : t -> int
