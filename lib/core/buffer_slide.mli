(** Buffer sliding and interleaving on the tree trunk (paper §IV-H).

    DME trees fed from a chip-boundary source have a long trunk wire to
    the first branch; it carries a chain of inverters responsible for a
    third to half of the insertion delay. Sliding re-spaces that chain
    evenly along the trunk (reducing the worst upstream wire span, so the
    chain can later be upsized without slew violations); interleaving adds
    inverters — in pairs, preserving sink polarity — when the spans remain
    too capacitive for one driver. *)

type report = {
  trunk_buffers_before : int;
  trunk_buffers_after : int;
  trunk_length : int;  (** electrical trunk length, nm *)
}

(** Node ids of the trunk chain, top-down: from the root's child through
    the first node with branching (or a sink); the last element is that
    branch node. *)
val trunk_chain : Ctree.Tree.t -> int list

(** Buffer nodes on the trunk (branch node excluded), top-down. *)
val trunk_buffers : Ctree.Tree.t -> int list

(** Re-space (and if needed interleave) the trunk buffer chain evenly.
    [ceiling] is the load-capacitance bound per driver used to decide
    interleaving. Returns the rebuilt (compacted) tree — node ids change —
    plus a report. Trees whose trunk has no buffers are returned
    unchanged. *)
val respace :
  Ctree.Tree.t -> ceiling:float -> Ctree.Tree.t * report
