type t = {
  engine : Analysis.Evaluator.engine;
  flat : bool;
  seg_len : int;
  transient_step : float;
  transient_mode : Analysis.Transient.mode;
  gamma : float;
  vg_step : int;
  vg_buckets : int option;
  composite_counts : int list;
  polarity_buf_count : int;
  snake_unit : int;
  max_snake_per_round : int;
  slew_margin : float;
  damping : float;
  max_rounds : int;
  second_pass_skew_ps : float;
  deadline : float option;
  branch_levels : int;
  multicorner_slacks : bool;
  stage_balancing : bool;
  elmore_prebalance : bool;
  incremental : bool;
  speculation : int;
  probe_count : int;
  size_probe_min_len : int;
  snake_probe_min_len : int;
  max_stage_retries : int;
  regions : int;
  stitch_skew_ps : float;
  inject_numerical_failures : int;
  chaos : string option;
  debug : bool;
  surrogate : bool;
  rank_top : int;
  store : Analysis.Evaluator.Store.handle option;
  evaluator : Speculate.hooks option;
  spec : Speculate.t option;
  surrogate_state : Analysis.Surrogate.t option;
}

(* Historical escape hatch, honoured once at startup so existing
   workflows keep working; per-run control goes through the [debug]
   field (the suite runner flips it per instance without re-exec). *)
let debug_env = Sys.getenv_opt "CONTANGO_DEBUG" <> None

let default =
  {
    engine = Analysis.Evaluator.Spice;
    flat = false;
    seg_len = Analysis.Rcnet.default_seg_len;
    transient_step = Analysis.Transient.default_step;
    transient_mode = Analysis.Transient.default_mode;
    gamma = 0.10;
    vg_step = 100_000;
    vg_buckets = Some 48;
    composite_counts = [ 64; 48; 32; 24; 16; 12; 8; 6; 4; 3; 2; 1 ];
    polarity_buf_count = 0;
    snake_unit = 2_000;
    max_snake_per_round = 800_000;
    slew_margin = 0.35;
    damping = 0.85;
    max_rounds = 150;
    second_pass_skew_ps = 5.;
    deadline = None;
    branch_levels = 4;
    multicorner_slacks = true;
    stage_balancing = true;
    elmore_prebalance = true;
    incremental = true;
    speculation = 0;
    probe_count = 5;
    size_probe_min_len = 20_000;
    snake_probe_min_len = 5_000;
    max_stage_retries = 2;
    regions = 1;
    stitch_skew_ps = 1.0;
    inject_numerical_failures = 0;
    chaos = None;
    debug = debug_env;
    surrogate = false;
    rank_top = 0;
    store = None;
    evaluator = None;
    spec = None;
    surrogate_state = None;
  }

let scalability =
  {
    default with
    engine = Analysis.Evaluator.Arnoldi;
    seg_len = 60_000;
    vg_step = 150_000;
    vg_buckets = Some 32;
    max_rounds = 200;
    surrogate = true;
  }

let speculation_width t =
  if t.speculation > 0 then t.speculation
  else if t.speculation < 0 then 1
  else max 1 (min 8 (Domain.recommended_domain_count () - 1))
