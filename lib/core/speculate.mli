(** Speculative parallel candidate search for the IVC loops.

    A speculation context owns the {e main} tree plus [width - 1 >= 0]
    content-identical {e replica} trees, each paired with its own
    incremental evaluation session (passed in as {!hooks}). A round hands
    K candidate mutations to {!explore}: each candidate is applied to a
    replica under a {!Ctree.Tree.Journal}, evaluated (the journal's
    touched set feeds the session's dirty-set fast path), and rolled
    back — O(edit), no tree copies. The caller picks a winner by a
    deterministic rule and {!commit} replays the winner's journal onto
    the main tree and every replica, so all lanes stay bit-identical.

    {b Determinism}: candidates are generated before exploration, the
    evaluation of each candidate depends only on tree content (stage
    solves are content-addressed), and winner selection is a pure
    function of the (ordered) outcome array — so any [width], including
    the serial [width = 1] mode that runs candidates on the main tree
    itself, produces bit-identical trees and evaluations. Parallelism
    changes only wall-clock time and, for {!explore_first}, how many
    losing candidates get (discarded) evaluations. *)

module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

(** The evaluation interface of one lane. [eval] evaluates the lane's
    tree (forwarding a dirty {!Analysis.Evaluator.edit_hint} when the
    journaled edit qualifies); [note] reports content changes that happen
    without an evaluation (rollbacks, winner replays) so the lane's
    session can keep its anchor chain — see
    {!Analysis.Evaluator.Incremental.note_edits}. Lanes without a session
    use a [note] that ignores its arguments. *)
type hooks = {
  eval : ?edits:Evaluator.edit_hint -> Tree.t -> Evaluator.t;
  note :
    edits:Evaluator.edit_hint option -> new_revision:int -> unit;
}

type t

(** One explored candidate: its evaluation and the closed journal whose
    redo log {!commit} replays. *)
type outcome = { ev : Evaluator.t; journal : Tree.journal }

(** [create ~width ~main ~main_hooks ~slot_hooks ()] builds a context
    with [width] lanes. [slot_hooks] is called once per replica to build
    its session; replica sessions should be created with
    [~parallel:false] (they already run inside the domain pool).
    [width <= 1] builds the serial context (no replicas). [pool]
    defaults to {!Analysis.Domain_pool.global}. *)
val create :
  width:int -> main:Tree.t -> main_hooks:hooks ->
  slot_hooks:(Tree.t -> hooks) -> ?pool:Analysis.Domain_pool.t -> unit ->
  t

(** Serial context on [main] with no replicas: candidates run (and roll
    back) on the main tree through [hooks]. Used as the fallback when a
    pass is invoked on a tree the flow's context does not own. *)
val serial : main:Tree.t -> hooks:hooks -> t

val width : t -> int
val main : t -> Tree.t

(** The dirty hint a journal justifies: its base revision and touched
    nodes when every recorded edit was a value edit and nothing bypassed
    the journal; [None] otherwise (structural or inconsistent journals
    must not steer the incremental fast path). *)
val hint_of_journal : Tree.journal -> Evaluator.edit_hint option

(** Evaluate all candidates speculatively; result [i] corresponds to
    candidate [i]. [None] marks a candidate that mutated its tree
    outside the journal (it cannot be rolled back or replayed; its lane
    is resynced with a deep assign before reuse — except the main lane,
    which has no pristine source: a bypass there raises
    [Invalid_argument] rather than corrupt silently). Candidate closures
    receive the tree to mutate — the main tree in serial mode, a replica
    otherwise — and must route every mutation through the public
    {!Ctree.Tree} mutators. An exception from a candidate propagates
    after its lane is restored (or marked stale). *)
val explore : t -> (Tree.t -> unit) array -> outcome option array

(** First-survivor exploration: return the lowest-indexed candidate that
    [accept] admits, with its outcome — or [None] when none survives.
    Order candidates by preference (the IVC scale ladder puts the
    largest scale first). The winner is a pure function of candidate
    order, identical at every width; serial mode evaluates lazily and
    stops at the winner (the legacy serial loop's schedule), parallel
    mode evaluates [width]-sized batches eagerly and discards the
    precomputed losers. A context whose domain pool has no workers (a
    single-core machine) falls back to the lazy scan — eager batches
    without concurrency only waste evaluations. Same lane-restoration
    contract as {!explore}.

    [measured] receives every evaluated outcome of the deterministic
    prefix (the candidates the serial scan would evaluate: everything
    up to and including the winner), in index order, on the caller's
    thread — so losing evaluations feed the surrogate calibration
    buffer instead of being discarded. Eager losers beyond the winner
    exist only at widths > 1 and are deliberately {e not} fed: feeding
    them would make the calibration state width-dependent.

    [lazy_only] (default false) forces the serial lazy scan on the main
    lane even when replica lanes exist — the machine-independent
    schedule surrogate warm-up rounds require. *)
val explore_first :
  ?measured:(int -> outcome -> unit) -> ?lazy_only:bool ->
  t -> (Tree.t -> unit) array -> accept:(outcome -> bool) ->
  (int * outcome) option

(** Replay the winning outcome's journal onto the main tree and every
    in-sync replica, notifying each lane's session of the touched
    nodes. After [commit] all lanes are content-identical again. *)
val commit : t -> outcome -> unit
