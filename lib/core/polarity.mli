(** Sink-polarity correction (paper §IV-D).

    The van Ginneken variant ignores polarity, so inverting buffers leave
    roughly half the sinks with the wrong signal parity. Three corrective
    strategies are provided; the flow uses [Minimal]:

    - [Per_sink]: one inverter at every inverted sink (n/2 on average);
    - [Top_then_per_sink]: when more than half the sinks are inverted, one
      inverter at the top first, then per-sink patches ((n+2)/4 average);
    - [Minimal] (Proposition 2): traverse bottom-up and mark every node
      whose downstream sinks all share one (wrong) polarity but whose
      parent's do not; insert one inverter at each wrong-polarity marked
      node. Runs in O(n), corrects all sinks, and minimises the number of
      added inverters subject to ≤ 1 added inverter per root-to-sink
      path. *)

type strategy = Per_sink | Top_then_per_sink | Minimal

type report = {
  inverted_before : int;  (** sinks with wrong parity before correction *)
  added : int;            (** inverters inserted *)
}

(** Sinks whose current inversion parity mismatches their requirement. *)
val inverted_sinks : Ctree.Tree.t -> int list

(** Correct all sink polarities in place. [buf] is the inverter to insert
    (must be inverting). *)
val correct :
  Ctree.Tree.t -> buf:Tech.Composite.t -> strategy:strategy -> report

(** Count the inverters [Minimal] would add, without modifying the tree. *)
val minimal_count : Ctree.Tree.t -> int
