(** Monotonic clock for deadlines.

    [now ()] returns seconds from an arbitrary fixed origin, strictly
    unaffected by wall-clock steps ([CLOCK_MONOTONIC]); only differences
    are meaningful. All deadline bookkeeping ({!Config.deadline}, the
    suite runner's per-instance timeout) uses this clock, so a timeout
    means "this much run time elapsed" even if the system clock jumps
    mid-run. *)
val now : unit -> float
