module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type step = Initial | Tbsz | Twsz | Twsn | Bwsn | Stitch | Polish

let step_name = function
  | Initial -> "INITIAL"
  | Tbsz -> "TBSZ"
  | Twsz -> "TWSZ"
  | Twsn -> "TWSN"
  | Bwsn -> "BWSN"
  | Stitch -> "STITCH"
  | Polish -> "POLISH"

let step_of_name = function
  | "INITIAL" -> Some Initial
  | "TBSZ" -> Some Tbsz
  | "TWSZ" -> Some Twsz
  | "TWSN" -> Some Twsn
  | "BWSN" -> Some Bwsn
  | "STITCH" -> Some Stitch
  | "POLISH" -> Some Polish
  | _ -> None

let rank = function
  | Initial -> 0
  | Tbsz -> 1
  | Twsz -> 2
  | Twsn -> 3
  | Bwsn -> 4
  | Stitch -> 5
  | Polish -> 6

type trace_entry = {
  step : step;
  skew : float;
  clr : float;
  t_max : float;
  eval_runs : int;
  seconds : float;
  cache_hits : int;
  cache_misses : int;
  step_seconds : float;
  kernel_solves : int;
  kernel_saved : int;
  kernel_truncations : int;
  attempts : int;
  accepts : int;
}

type incident = {
  inc_step : step;
  inc_attempt : int;
  inc_error : string;
  inc_action : string;
}

type stage_meta = {
  m_step : step;
  m_skew : float;
  m_clr : float;
  m_t_max : float;
  m_slew_waived : bool;
  m_cap_waived : bool;
}

type result = {
  tree : Tree.t;
  trace : trace_entry list;
  final : Evaluator.t;
  chosen_buf : Tech.Composite.t;
  polarity : Polarity.report;
  repair : Route.Repair.report option;
  incidents : incident list;
  eval_runs : int;
  seconds : float;
  surrogate : Analysis.Surrogate.stats option;
}

let initial_tree ?(config = Config.default) ~tech ~source ?(obstacles = [])
    sinks =
  let zst = Dme.Zst.build ~tech ~source sinks in
  let inserted = Insertion.run ~obstacles config zst in
  let polarity_buf =
    if config.Config.polarity_buf_count = 0 then inserted.Insertion.buf
    else
      Tech.Composite.make inserted.Insertion.buf.Tech.Composite.base
        config.Config.polarity_buf_count
  in
  let polarity =
    Polarity.correct inserted.Insertion.tree ~buf:polarity_buf
      ~strategy:Polarity.Minimal
  in
  (* Equalise per-path stage counts: the quantised van Ginneken variant
     and the polarity patches can leave paths a stage pair apart, which
     wire tuning cannot recover within slew limits. *)
  if config.Config.stage_balancing then
    ignore
      (Stage_balance.equalize inserted.Insertion.tree
         ~buf:inserted.Insertion.buf);
  (inserted.Insertion.tree, inserted.Insertion.buf, polarity,
   inserted.Insertion.repair)

let session_hooks s =
  { Speculate.eval =
      (fun ?edits t -> Evaluator.Incremental.refresh ?edits ~tree:t s);
    note =
      (fun ~edits ~new_revision ->
        Evaluator.Incremental.note_edits s ~edits ~new_revision) }

let plain_hooks config =
  { Speculate.eval =
      (fun ?edits:_ t ->
        Evaluator.evaluate ~engine:config.Config.engine
          ~flat:config.Config.flat ~seg_len:config.Config.seg_len
          ~transient_step:config.Config.transient_step
          ~transient_mode:config.Config.transient_mode t);
    note = (fun ~edits:_ ~new_revision:_ -> ()) }

(* ------------------------------------------------------------------ *)
(* Verified on-disk checkpoints.

   A checkpoint captures everything [run] needs to restart after a
   completed stage: the flow metadata the pre-optimization stages
   produced (chosen composite, polarity report, obstacle repair report),
   the per-stage metrics recorded so far, and the canonical tree text.
   Files are written atomically with a checksum trailer, so a reader
   only ever sees a complete, verified snapshot (or none). *)

module Checkpoint = struct
  type loaded = {
    ck_step : step;
    ck_tree : Tree.t;
    ck_buf : Tech.Composite.t;
    ck_polarity : Polarity.report;
    ck_repair : Route.Repair.report option;
    ck_metas : stage_meta list;
  }

  (* Same percent-escaping as the tree serializer: names stay a single
     space-free token. *)
  let escape s =
    if s = "" then "%empty%"
    else begin
      let buf = Buffer.create (String.length s) in
      String.iter
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '~' ->
            Buffer.add_char buf c
          | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
        s;
      Buffer.contents buf
    end

  exception Parse of string

  let unescape s =
    if s = "%empty%" then ""
    else begin
      let buf = Buffer.create (String.length s) in
      let n = String.length s in
      let i = ref 0 in
      while !i < n do
        if s.[!i] = '%' then begin
          if !i + 2 >= n then raise (Parse ("truncated escape in " ^ s));
          (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
          | Some code when code >= 0 && code < 256 ->
            Buffer.add_char buf (Char.chr code)
          | _ -> raise (Parse ("bad escape in " ^ s)));
          i := !i + 3
        end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      Buffer.contents buf
    end

  let path ~dir step = Filename.concat dir (step_name step ^ ".ckpt")

  let to_string ~step ~tree ~buf ~polarity ~repair ~metas =
    let b = Buffer.create 4096 in
    let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    pf "contango-checkpoint 1\n";
    pf "step %s\n" (step_name step);
    let d = buf.Tech.Composite.base in
    pf "buf %d %s %h %h %h %h %h %h %d\n" buf.Tech.Composite.count
      (escape d.Tech.Device.name) d.Tech.Device.c_in d.Tech.Device.c_out
      d.Tech.Device.r_up d.Tech.Device.r_down d.Tech.Device.d_intrinsic
      d.Tech.Device.slew_coeff
      (if d.Tech.Device.inverting then 1 else 0);
    pf "polarity %d %d\n" polarity.Polarity.inverted_before
      polarity.Polarity.added;
    (match repair with
    | None -> ()
    | Some r ->
      pf "repair %d %d %d %d %d\n" r.Route.Repair.bend_flips
        r.Route.Repair.detours r.Route.Repair.drivable_skips
        r.Route.Repair.reroutes r.Route.Repair.remaining_overlap);
    List.iter
      (fun m ->
        pf "meta %s %h %h %h %d %d\n" (step_name m.m_step) m.m_skew m.m_clr
          m.m_t_max
          (if m.m_slew_waived then 1 else 0)
          (if m.m_cap_waived then 1 else 0))
      metas;
    pf "tree\n";
    Buffer.add_string b (Tree.to_string tree);
    Buffer.contents b

  let save ~dir ~step ~tree ~buf ~polarity ~repair ~metas =
    Persist.write_atomic_checked (path ~dir step)
      (to_string ~step ~tree ~buf ~polarity ~repair ~metas)

  let of_string ~tech text =
    try
      let int_ s =
        match int_of_string_opt s with
        | Some v -> v
        | None -> raise (Parse (Printf.sprintf "not an integer: %S" s))
      in
      let float_ s =
        match float_of_string_opt s with
        | Some v -> v
        | None -> raise (Parse (Printf.sprintf "not a number: %S" s))
      in
      let flag = function
        | "0" -> false
        | "1" -> true
        | s -> raise (Parse (Printf.sprintf "not a flag: %S" s))
      in
      let tree_marker = "\ntree\n" in
      let split_at =
        if String.length text >= 5 && String.sub text 0 5 = "tree\n" then
          Some (0, 5)
        else begin
          let rec find i =
            if i + 6 > String.length text then None
            else if String.sub text i 6 = tree_marker then Some (i + 1, i + 6)
            else find (i + 1)
          in
          find 0
        end
      in
      let header_end, tree_start =
        match split_at with
        | Some p -> p
        | None -> raise (Parse "missing tree section")
      in
      let header = String.sub text 0 header_end in
      let tree_text =
        String.sub text tree_start (String.length text - tree_start)
      in
      let step = ref None and buf = ref None and polarity = ref None in
      let repair = ref None and metas = ref [] in
      let versioned = ref false in
      List.iter
        (fun line ->
          match
            String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
          with
          | [] -> ()
          | [ "contango-checkpoint"; "1" ] -> versioned := true
          | "contango-checkpoint" :: _ ->
            raise (Parse "unsupported checkpoint version")
          | [ "step"; name ] -> (
            match step_of_name name with
            | Some s -> step := Some s
            | None -> raise (Parse ("unknown step " ^ name)))
          | [ "buf"; count; name; cin; cout; rup; rdown; dint; slew; inv ]
            ->
            let name = unescape name in
            let c_in = float_ cin and c_out = float_ cout in
            let r_up = float_ rup and r_down = float_ rdown in
            let d_intrinsic = float_ dint and slew_coeff = float_ slew in
            let inverting = flag inv in
            let matches (d : Tech.Device.t) =
              d.Tech.Device.name = name
              && d.Tech.Device.c_in = c_in
              && d.Tech.Device.c_out = c_out
              && d.Tech.Device.r_up = r_up
              && d.Tech.Device.r_down = r_down
              && d.Tech.Device.d_intrinsic = d_intrinsic
              && d.Tech.Device.slew_coeff = slew_coeff
              && d.Tech.Device.inverting = inverting
            in
            let dev =
              match List.find_opt matches tech.Tech.devices with
              | Some d -> d
              | None ->
                Tech.Device.make ~name ~c_in ~c_out ~r_up ~r_down
                  ~d_intrinsic ~slew_coeff ~inverting ()
            in
            buf := Some (Tech.Composite.make dev (int_ count))
          | [ "polarity"; before; added ] ->
            polarity :=
              Some
                { Polarity.inverted_before = int_ before;
                  added = int_ added }
          | [ "repair"; bf; dt; ds; rr; ro ] ->
            repair :=
              Some
                { Route.Repair.bend_flips = int_ bf; detours = int_ dt;
                  drivable_skips = int_ ds; reroutes = int_ rr;
                  remaining_overlap = int_ ro }
          | [ "meta"; name; skew; clr; tmax; sw; cw ] -> (
            match step_of_name name with
            | None -> raise (Parse ("unknown meta step " ^ name))
            | Some s ->
              metas :=
                { m_step = s; m_skew = float_ skew; m_clr = float_ clr;
                  m_t_max = float_ tmax; m_slew_waived = flag sw;
                  m_cap_waived = flag cw }
                :: !metas)
          | d :: _ -> raise (Parse ("unknown checkpoint directive " ^ d)))
        (String.split_on_char '\n' header);
      if not !versioned then raise (Parse "missing checkpoint version line");
      let ck_step =
        match !step with
        | Some s -> s
        | None -> raise (Parse "missing step line")
      in
      let ck_buf =
        match !buf with
        | Some b -> b
        | None -> raise (Parse "missing buf line")
      in
      let ck_polarity =
        match !polarity with
        | Some p -> p
        | None -> raise (Parse "missing polarity line")
      in
      match Tree.of_string ~tech tree_text with
      | Error e -> Error ("tree section: " ^ e)
      | Ok ck_tree -> (
        match Ctree.Validate.check ck_tree with
        | [] ->
          Ok
            { ck_step; ck_tree; ck_buf; ck_polarity; ck_repair = !repair;
              ck_metas = List.rev !metas }
        | errs -> Error ("invalid tree: " ^ String.concat "; " errs))
    with
    | Parse m -> Error m
    | Invalid_argument m -> Error m

  let load ~tech file =
    match Persist.read_checked file with
    | Error e -> Error e
    | Ok text -> (
      match of_string ~tech text with
      | Ok l -> Ok l
      | Error e -> Error (file ^ ": " ^ e))

  (* Latest verified checkpoint in [dir]: later stages first, silently
     skipping missing, torn or corrupt files — a corrupt BWSN snapshot
     degrades the resume to the TWSN one instead of failing it. *)
  let load_latest ~tech ~dir =
    List.fold_left
      (fun acc step ->
        match acc with
        | Some _ -> acc
        | None -> (
          let file = path ~dir step in
          if not (Sys.file_exists file) then None
          else
            match load ~tech file with Ok l -> Some l | Error _ -> None))
      None
      [ Bwsn; Twsn; Twsz; Tbsz; Initial ]
end

(* Stage-local invariant failure: [Validate.check] found structural
   damage after a stage body ran. Caught by the retry machinery. *)
exception Invariant_violation of string list

let () =
  Printexc.register_printer (function
    | Invariant_violation errs ->
      Some
        (Printf.sprintf "Invariant_violation(%s)" (String.concat "; " errs))
    | _ -> None)

let run ?(config = Config.default) ?on_step ?on_incident ?checkpoint_dir
    ?(resume = false) ~tech ~source ?(obstacles = []) sinks =
  let t0 = Monoclock.now () in
  let runs0 = Evaluator.eval_count () in
  let kc0 = Analysis.Transient.counters () in
  let att0 = Ivc.attempts () and acc0 = Ivc.accepts () in
  let base_config = config in
  let loaded =
    if resume then
      Option.bind checkpoint_dir (fun dir ->
          Checkpoint.load_latest ~tech ~dir)
    else None
  in
  let tree0, chosen_buf, polarity, repair, resumed_metas, completed_rank =
    match loaded with
    | Some l ->
      (l.Checkpoint.ck_tree, l.ck_buf, l.ck_polarity, l.ck_repair,
       l.ck_metas, rank l.ck_step)
    | None ->
      let tree, buf, pol, rep =
        initial_tree ~config ~tech ~source ~obstacles sinks
      in
      (tree, buf, pol, rep, [], -1)
  in
  let tree = ref tree0 in
  let metas = ref resumed_metas in
  let incidents = ref [] in
  let baseline : Evaluator.t option ref = ref None in
  (* Fault injection (tests and drills): armed once the INITIAL
     evaluation is recorded, the next [inject_numerical_failures]
     evaluations — through any lane's hooks — raise instead of
     returning, exercising the same recovery path a real numerical
     blow-up takes. *)
  let inject_left = Atomic.make base_config.Config.inject_numerical_failures in
  let inject_armed = ref false in
  let wrap_hooks hooks =
    if base_config.Config.inject_numerical_failures = 0 then hooks
    else
      { Speculate.eval =
          (fun ?edits t ->
            if !inject_armed && Atomic.get inject_left > 0 then
              if Atomic.fetch_and_add inject_left (-1) > 0 then
                Analysis.Numerics.fail "injected numerical failure";
            hooks.Speculate.eval ?edits t);
        note = hooks.Speculate.note }
  in
  (* The degraded-mode ladder: attempt 0 is the caller's configuration;
     attempt 1 turns speculation serial and pins the transient kernel to
     the fixed-rate reference march; attempt 2 additionally halves the
     timestep and drops the incremental session (plain from-scratch
     evaluations). Later attempts (when [max_stage_retries] is raised)
     stay at the most conservative rung. *)
  let degraded_config k =
    if k = 0 then base_config
    else begin
      let c =
        { base_config with
          Config.speculation =
            (if base_config.Config.speculation < 0 then -1 else 1);
          transient_mode = Analysis.Transient.Fixed }
      in
      if k = 1 then c
      else
        (* The most conservative rung also retreats from the flat kernel
           to the boxed reference path. *)
        { c with
          Config.transient_step = base_config.Config.transient_step /. 2.;
          incremental = false;
          flat = false }
    end
  in
  let session = ref None in
  let main_hooks = ref (plain_hooks base_config) in
  let cfg = ref base_config in
  let last_hits = ref 0 and last_misses = ref 0 in
  (* One surrogate calibration state per run (never shared across
     domains — regional and suite fan-outs each create their own), armed
     only when the caller opted in and the journaled search is active. *)
  let surrogate_state =
    if base_config.Config.surrogate && base_config.Config.speculation >= 0
    then Some (Analysis.Surrogate.create ())
    else None
  in
  (* One incremental session drives every CNE of the optimization steps
     (unless disabled): the session survives IVC attempt/rollback cycles,
     so stages untouched by a rejected or localised move are answered from
     cache. [refresh ~tree] rebinds because Buffer_slide.respace returns a
     rebuilt tree. On a stage retry the session is rebuilt from scratch
     over the restored tree — its caches are content-addressed, so a
     rebuild costs misses, never correctness. *)
  let rebuild ~degraded =
    let c = degraded_config degraded in
    (* The shared cross-request store is only safe while the kernel
       settings match what its keys were computed under: degraded
       retries relax mode and step, so they run self-contained. *)
    let store = if degraded = 0 then c.Config.store else None in
    session :=
      (if c.Config.incremental then
         Some
           (Evaluator.Incremental.create ~engine:c.Config.engine
              ~flat:c.Config.flat ~seg_len:c.Config.seg_len
              ~transient_step:c.Config.transient_step
              ~transient_mode:c.Config.transient_mode ?store !tree)
       else None);
    let hooks =
      match !session with
      | Some s -> session_hooks s
      | None -> plain_hooks c
    in
    let hooks = wrap_hooks hooks in
    main_hooks := hooks;
    last_hits := 0;
    last_misses := 0;
    (* Degraded retries run without surrogate ranking: recovery should
       take the conservative, fully-evaluated path. *)
    cfg :=
      { c with
        Config.evaluator = Some hooks;
        spec = None;
        surrogate_state = (if degraded = 0 then surrogate_state else None) }
  in
  rebuild ~degraded:0;
  let evaluate t = Ivc.evaluate !cfg t in
  let ensure_baseline () =
    match !baseline with
    | Some ev -> ev
    | None ->
      let ev = evaluate !tree in
      baseline := Some ev;
      ev
  in
  (* Speculation context over the flow's main tree: [width - 1] replica
     lanes, each with its own incremental session ([~parallel:false] —
     the lanes themselves run on the domain pool). [speculation = -1]
     keeps the legacy copy-based attempts and installs no context. *)
  let install_spec () =
    if !cfg.Config.speculation >= 0 then begin
      let c = !cfg in
      let slot_hooks replica =
        wrap_hooks
          (if c.Config.incremental then
             session_hooks
               (Evaluator.Incremental.create ~engine:c.Config.engine
                  ~flat:c.Config.flat ~seg_len:c.Config.seg_len
                  ~parallel:false ~transient_step:c.Config.transient_step
                  ~transient_mode:c.Config.transient_mode replica)
           else plain_hooks c)
      in
      let spec =
        Speculate.create ~width:(Config.speculation_width c) ~main:!tree
          ~main_hooks:!main_hooks ~slot_hooks ()
      in
      cfg := { !cfg with Config.spec = Some spec }
    end
  in
  let trace = ref [] in
  let last_t = ref (Monoclock.now ()) in
  (* Every counter in a trace entry is a per-step delta against the value
     seen at the previous [record] (cache stats used to be cumulative
     session totals while the kernel counters were deltas — mixed
     semantics that made the streamed telemetry inconsistent). [eval_runs]
     and [seconds] stay cumulative, as documented. *)
  let last_kc = ref kc0 in
  let last_att = ref att0 and last_acc = ref acc0 in
  let record step (ev : Evaluator.t) =
    let now = Monoclock.now () in
    let hits, misses =
      match !session with
      | Some s ->
        let st = Evaluator.Incremental.stats s in
        (st.Evaluator.hits, st.Evaluator.misses)
      | None -> (0, 0)
    in
    let kc = Analysis.Transient.counters () in
    let entry =
      {
        step;
        skew = ev.Evaluator.skew;
        clr = ev.Evaluator.clr;
        t_max = ev.Evaluator.t_max;
        eval_runs = Evaluator.eval_count () - runs0;
        seconds = now -. t0;
        cache_hits = hits - !last_hits;
        cache_misses = misses - !last_misses;
        step_seconds = now -. !last_t;
        kernel_solves =
          kc.Analysis.Transient.total_solves
          - !last_kc.Analysis.Transient.total_solves;
        kernel_saved =
          kc.Analysis.Transient.total_saved
          - !last_kc.Analysis.Transient.total_saved;
        kernel_truncations =
          kc.Analysis.Transient.total_truncations
          - !last_kc.Analysis.Transient.total_truncations;
        attempts = Ivc.attempts () - !last_att;
        accepts = Ivc.accepts () - !last_acc;
      }
    in
    trace := entry :: !trace;
    last_t := now;
    last_hits := hits;
    last_misses := misses;
    last_kc := kc;
    last_att := Ivc.attempts ();
    last_acc := Ivc.accepts ();
    match on_step with Some f -> f entry | None -> ()
  in
  let incident step attempt error action =
    let inc =
      { inc_step = step; inc_attempt = attempt; inc_error = error;
        inc_action = action }
    in
    incidents := inc :: !incidents;
    match on_incident with Some f -> f inc | None -> ()
  in
  (* Synthetic trace entries for the stages a resumed run skips: the
     metrics come from the checkpoint, the per-step counters are zero
     (no work was repeated). *)
  List.iter
    (fun m ->
      let now = Monoclock.now () in
      let entry =
        { step = m.m_step; skew = m.m_skew; clr = m.m_clr;
          t_max = m.m_t_max; eval_runs = Evaluator.eval_count () - runs0;
          seconds = now -. t0; cache_hits = 0; cache_misses = 0;
          step_seconds = 0.; kernel_solves = 0; kernel_saved = 0;
          kernel_truncations = 0; attempts = 0; accepts = 0 }
      in
      trace := entry :: !trace;
      last_t := now;
      match on_step with Some f -> f entry | None -> ())
    resumed_metas;
  (* Run one stage under the retry umbrella: snapshot the tree, run the
     body, check structural invariants, record the step and (when
     verified) checkpoint it. Any failure except a cooperative deadline
     rolls the tree back to the snapshot, rebuilds the evaluation
     machinery one rung down the degraded ladder and retries; after a
     degraded attempt succeeds the normal configuration is restored for
     the following stages. *)
  let run_stage step body =
    let max_retries = base_config.Config.max_stage_retries in
    let rec attempt k =
      let entry_snapshot = Tree.copy !tree in
      match
        let ev = body () in
        (match Ctree.Validate.check !tree with
        | [] -> ()
        | errs -> raise (Invariant_violation errs));
        ev
      with
      | ev ->
        record step ev;
        let meta =
          { m_step = step; m_skew = ev.Evaluator.skew;
            m_clr = ev.Evaluator.clr; m_t_max = ev.Evaluator.t_max;
            m_slew_waived = ev.Evaluator.slew_violations > 0;
            m_cap_waived = not ev.Evaluator.cap_ok }
        in
        metas := !metas @ [ meta ];
        (match checkpoint_dir with
        | None -> ()
        | Some dir ->
          (* Structural invariants already passed above; the electrical
             gate refuses to persist a state whose headline numbers are
             not finite (a truncated march's [infinity] latency is not a
             verified state). Slew/cap violations do not block — they
             are recorded as waived in the stage meta. *)
          if
            Float.is_finite ev.Evaluator.skew
            && Float.is_finite ev.Evaluator.clr
            && Float.is_finite ev.Evaluator.t_max
          then (
            try
              Checkpoint.save ~dir ~step ~tree:!tree ~buf:chosen_buf
                ~polarity ~repair ~metas:!metas
            with e ->
              (* An unwritable checkpoint must not fail (or retry) an
                 otherwise successful stage — the run just loses this
                 resume point. *)
              incident step k (Printexc.to_string e) "checkpoint-skipped")
          else
            incident step k "non-finite skew/CLR/latency"
              "checkpoint-skipped");
        if k > 0 then begin
          (* Recovered in degraded mode: restore the caller's
             configuration for the remaining stages and force the next
             baseline to be re-evaluated under it. *)
          rebuild ~degraded:0;
          if rank step >= rank Tbsz then install_spec ();
          baseline := None
        end;
        ev
      | exception Ivc.Deadline_exceeded ->
        incident step k "deadline exceeded" "deadline";
        raise Ivc.Deadline_exceeded
      | exception e when k < max_retries ->
        incident step k (Printexc.to_string e) "retry-degraded";
        tree := entry_snapshot;
        rebuild ~degraded:(k + 1);
        if rank step > rank Tbsz then install_spec ();
        baseline := None;
        attempt (k + 1)
      | exception e ->
        incident step k (Printexc.to_string e) "gave-up";
        raise e
    in
    attempt 0
  in
  let do_stage step body =
    if rank step > completed_rank then ignore (run_stage step body)
  in
  if completed_rank >= rank Tbsz then install_spec ();
  do_stage Initial (fun () ->
      (* Elmore-driven pre-balance (§III-A: simple analytical models
         first): the buffered tree out of the quantised DP can carry
         large path-delay imbalance at scale; Elmore evaluations are
         near-free, so a snaking equalisation under the Elmore engine
         recovers the bulk before any accurate run is spent — no session
         here, it runs a different engine. *)
      if !cfg.Config.elmore_prebalance then begin
        let pre_config =
          { !cfg with
            Config.engine = Analysis.Evaluator.Elmore_model;
            max_rounds = 30;
            evaluator = None;
            spec = None }
        in
        let pre_eval =
          Evaluator.evaluate ~engine:Analysis.Evaluator.Elmore_model
            ~seg_len:!cfg.Config.seg_len !tree
        in
        ignore (Wiresnaking.run pre_config !tree ~baseline:pre_eval)
      end;
      let ev = evaluate !tree in
      baseline := Some ev;
      ev);
  inject_armed := true;
  do_stage Tbsz (fun () ->
      (* TBSZ: slide/interleave the trunk chain, then iterative sizing. *)
      let base_ev = ensure_baseline () in
      let ceiling =
        Float.min
          (Route.Slewcap.lumped ~tech ~buf:chosen_buf ())
          (Route.Slewcap.wire_aware ~tech ~buf:chosen_buf ())
      in
      let slid, _slide_report = Buffer_slide.respace !tree ~ceiling in
      let ev = evaluate slid in
      (* Keep the slid tree only if it did not break anything (IVC). *)
      let accepted, acc_ev =
        if
          ev.Evaluator.slew_violations <= base_ev.Evaluator.slew_violations
          && ev.Evaluator.cap_ok
        then (slid, ev)
        else (!tree, base_ev)
      in
      tree := accepted;
      (* The tree identity is now final for the rest of the flow, so the
         speculation context can be built over it. *)
      install_spec ();
      let sized = Buffer_sizing.run !cfg !tree ~baseline:acc_ev in
      (* Speed-up before slow-down (§III-B): strengthen drivers of
         critical subtrees so less slack has to be burned by the wire
         steps. *)
      let sped, _ =
        Buffer_sizing.speedup !cfg !tree ~baseline:sized.Buffer_sizing.eval
      in
      baseline := Some sped;
      sped);
  do_stage Twsz (fun () ->
      let wsz = Wiresizing.run !cfg !tree ~baseline:(ensure_baseline ()) in
      baseline := Some wsz.Wiresizing.eval;
      wsz.Wiresizing.eval);
  do_stage Twsn (fun () ->
      let wsn = Wiresnaking.run !cfg !tree ~baseline:(ensure_baseline ()) in
      baseline := Some wsn.Wiresnaking.eval;
      wsn.Wiresnaking.eval);
  let final_eval =
    if rank Bwsn <= completed_rank then ensure_baseline ()
    else
      run_stage Bwsn (fun () ->
          let bl = Bottomlevel.run !cfg !tree ~baseline:(ensure_baseline ()) in
          (* "Further optimization is possible … at the cost of increased
             runtime" (§I): when skew is still above the negligible band,
             run the wire sequence once more — larger instances sometimes
             converge in two passes. *)
          let ev =
            if
              bl.Bottomlevel.eval.Evaluator.skew
              > !cfg.Config.second_pass_skew_ps
            then begin
              let wsz2 =
                Wiresizing.run !cfg !tree ~baseline:bl.Bottomlevel.eval
              in
              let wsn2 =
                Wiresnaking.run !cfg !tree ~baseline:wsz2.Wiresizing.eval
              in
              let bl2 =
                Bottomlevel.run !cfg !tree ~baseline:wsn2.Wiresnaking.eval
              in
              bl2.Bottomlevel.eval
            end
            else bl.Bottomlevel.eval
          in
          baseline := Some ev;
          ev)
  in
  {
    tree = !tree;
    trace = List.rev !trace;
    final = final_eval;
    chosen_buf;
    polarity;
    repair;
    incidents = List.rev !incidents;
    eval_runs = Evaluator.eval_count () - runs0;
    seconds = Monoclock.now () -. t0;
    surrogate = Option.map Analysis.Surrogate.stats surrogate_state;
  }

(* ------------------------------------------------------------------ *)
(* Regional synthesis: partition the sinks geometrically, run the full
   monolithic flow over every region in parallel (each with the region
   centroid as its source), synthesize a top-level tree over pseudo-sinks
   at those centroids, graft the regional trees onto its taps by
   abutment, and close the loop with a measured global polish that snakes
   the top-level tap feeds until the stitched skew converges. *)

type region_report = {
  rg_index : int;
  rg_sinks : int;
  rg_skew : float;
  rg_clr : float;
  rg_t_max : float;
  rg_seconds : float;
  rg_eval_runs : int;
  rg_incidents : int;
}

type stitch_report = {
  st_regions : region_report list;
  st_predicted_skew : float;
  st_rounds : int;
  st_max_pad_ps : float;
}

type regional_result = {
  r_flow : result;
  r_stitch : stitch_report option;
}

let region_label i = Printf.sprintf "__region%d" i

(* Polish rounds are bounded independently of [max_rounds]: each round is
   one whole-tree balancing edit plus one (incremental) evaluation, and
   the damped gap shrinks geometrically, so convergence is fast or not at
   all. *)
let max_polish_rounds = 4

let run_regional ?(config = Config.default) ?on_step ?on_incident
    ?checkpoint_dir ?(resume = false) ?jobs ~tech ~source ?(obstacles = [])
    sinks =
  let n = Array.length sinks in
  (* Never let a region shrink below two sinks: degenerate cells stitch
     poorly and gain nothing over the monolithic flow. *)
  let regions = max 1 (min config.Config.regions (n / 2)) in
  if regions <= 1 then
    { r_flow =
        run ~config ?on_step ?on_incident ?checkpoint_dir ~resume ~tech
          ~source ~obstacles sinks;
      r_stitch = None }
  else begin
    let t0 = Monoclock.now () in
    let runs0 = Evaluator.eval_count () in
    let kc0 = Analysis.Transient.counters () in
    let evaluate_plain t =
      Evaluator.evaluate ~engine:config.Config.engine ~flat:config.Config.flat
        ~seg_len:config.Config.seg_len
        ~transient_step:config.Config.transient_step
        ~transient_mode:config.Config.transient_mode t
    in
    (* Fast resume: a verified POLISH checkpoint is the completed regional
       flow. Region membership is not recoverable from the stitched tree,
       so the per-region telemetry is gone, but the tree, metadata and
       headline metrics all survive at the cost of one evaluation. *)
    let polish_ckpt =
      if resume then
        Option.bind checkpoint_dir (fun dir ->
            let file = Checkpoint.path ~dir Polish in
            if not (Sys.file_exists file) then None
            else
              match Checkpoint.load ~tech file with
              | Ok l when l.Checkpoint.ck_step = Polish -> Some l
              | Ok _ | Error _ -> None)
      else None
    in
    match polish_ckpt with
    | Some l ->
      let ev = evaluate_plain l.Checkpoint.ck_tree in
      let now = Monoclock.now () in
      let trace =
        List.map
          (fun m ->
            { step = m.m_step; skew = m.m_skew; clr = m.m_clr;
              t_max = m.m_t_max;
              eval_runs = Evaluator.eval_count () - runs0;
              seconds = now -. t0; cache_hits = 0; cache_misses = 0;
              step_seconds = 0.; kernel_solves = 0; kernel_saved = 0;
              kernel_truncations = 0; attempts = 0; accepts = 0 })
          l.Checkpoint.ck_metas
      in
      List.iter (fun e -> match on_step with Some f -> f e | None -> ()) trace;
      { r_flow =
          { tree = l.Checkpoint.ck_tree; trace; final = ev;
            chosen_buf = l.Checkpoint.ck_buf;
            polarity = l.Checkpoint.ck_polarity;
            repair = l.Checkpoint.ck_repair; incidents = [];
            eval_runs = Evaluator.eval_count () - runs0;
            seconds = Monoclock.now () -. t0; surrogate = None };
        r_stitch = None }
    | None ->
      let incidents = ref [] in
      let note_incident inc =
        incidents := inc :: !incidents;
        match on_incident with Some f -> f inc | None -> ()
      in
      let incident step attempt error action =
        note_incident
          { inc_step = step; inc_attempt = attempt; inc_error = error;
            inc_action = action }
      in
      let parts = Partition.split ~regions sinks in
      let regions = Array.length parts in
      let centroids = Array.map (Partition.centroid sinks) parts in
      (* Region and top flows run monolithically whatever the caller's
         region count says, each under its own checkpoint subdirectory. *)
      let sub_config = { config with Config.regions = 1 } in
      let sub_dir name =
        Option.map (fun d -> Filename.concat d name) checkpoint_dir
      in
      (* Heaviest region first, so the pool never tail-waits on the big
         one. Incidents are collected per region and forwarded serially
         afterwards — [on_incident] is not required to be thread-safe. *)
      let region_runs =
        let pool = Analysis.Domain_pool.create ?size:jobs () in
        Fun.protect
          ~finally:(fun () -> Analysis.Domain_pool.shutdown pool)
          (fun () ->
            Analysis.Domain_pool.map_weighted pool
              ~weight:(fun i -> Array.length parts.(i))
              (fun i ->
                let region_sinks = Array.map (Array.get sinks) parts.(i) in
                let incs = ref [] in
                let r =
                  run ~config:sub_config
                    ~on_incident:(fun inc -> incs := inc :: !incs)
                    ?checkpoint_dir:(sub_dir (Printf.sprintf "region_%d" i))
                    ~resume ~tech ~source:centroids.(i) ~obstacles
                    region_sinks
                in
                (r, List.rev !incs))
              (Array.init regions Fun.id))
      in
      Array.iter
        (fun ((_ : result), incs) -> List.iter note_incident incs)
        region_runs;
      (* The stitching top tree: one pseudo-sink per region at the region
         centroid, loaded with the regional root buffer's input pin and
         carrying its inversion parity, so sink parities survive the
         graft. *)
      let pseudo_sinks =
        Array.mapi
          (fun i (r, _) ->
            { Dme.Zst.pos = centroids.(i);
              cap = Tech.Composite.c_in r.chosen_buf;
              parity = (if Tech.Composite.inverting r.chosen_buf then 1 else 0);
              label = region_label i })
          region_runs
      in
      let top =
        let incs = ref [] in
        let r =
          run ~config:sub_config
            ~on_incident:(fun inc -> incs := inc :: !incs)
            ?checkpoint_dir:(sub_dir "top") ~resume ~tech ~source ~obstacles
            pseudo_sinks
        in
        List.iter note_incident !incs;
        r
      in
      let stitched = top.tree in
      let taps =
        let tbl = Hashtbl.create (2 * regions) in
        Array.iter
          (fun s ->
            match (Tree.node stitched s).Tree.kind with
            | Tree.Sink sk -> Hashtbl.replace tbl sk.Tree.label s
            | Tree.Source | Tree.Internal | Tree.Buffer _ -> ())
          (Tree.sinks stitched);
        Array.init regions (fun i ->
            match Hashtbl.find_opt tbl (region_label i) with
            | Some s -> s
            | None ->
              raise
                (Invariant_violation
                   [ "run_regional: top tree lost tap " ^ region_label i ]))
      in
      (* Predicted cross-region figures before the stitched evaluation:
         each region's local arrivals shifted by the measured top-tree tap
         arrival plus the tap buffer's nominal gate delay. *)
      let nominal_corner = List.hd tech.Tech.corners in
      let tap_offset i (r : result) =
        let at f =
          let rr = Evaluator.nominal_run top.final Evaluator.Rise in
          let rf = Evaluator.nominal_run top.final Evaluator.Fall in
          (f rr +. f rf) /. 2.
        in
        let tap = taps.(i) in
        let arrival = at (fun (run : Evaluator.run) -> run.Evaluator.latency.(tap)) in
        let slew = at (fun (run : Evaluator.run) -> run.Evaluator.slew.(tap)) in
        arrival
        +. (Tech.Composite.d_intrinsic r.chosen_buf
            *. nominal_corner.Tech.Corner.d_scale)
        +. (Tech.Composite.slew_coeff r.chosen_buf *. slew)
      in
      let offset_parts =
        Array.to_list
          (Array.mapi (fun i (r, _) -> (tap_offset i r, r.final)) region_runs)
      in
      let predicted = Analysis.Regional.combine ~tech offset_parts in
      let pads = Analysis.Regional.pad_targets offset_parts in
      let max_pad = Array.fold_left Float.max 0. pads in
      (* Abutment graft: every regional tree is copied under its tap,
         which becomes the regional root buffer. *)
      let region_sink_ids =
        Array.mapi
          (fun i (r, _) ->
            let map =
              Tree.graft stitched ~at:taps.(i) ~buf:r.chosen_buf ~src:r.tree
            in
            Array.map (Array.get map) (Tree.sinks r.tree))
          region_runs
      in
      (match Ctree.Validate.check stitched with
      | [] -> ()
      | errs -> raise (Invariant_violation errs));
      (* Regions synthesized independently need not agree on per-path
         stage counts — a stage-pair gap between two regions is two gate
         delays of cross-region skew (with rise/fall asymmetry) that no
         wire tuning can repay. Same remedy as the monolithic flow's
         initial tree: parity-preserving inverter-pair insertion. *)
      if config.Config.stage_balancing then
        ignore (Stage_balance.equalize stitched ~buf:top.chosen_buf);
      let session =
        if config.Config.incremental then
          Some
            (Evaluator.Incremental.create ~engine:config.Config.engine
               ~flat:config.Config.flat ~seg_len:config.Config.seg_len
               ~transient_step:config.Config.transient_step
               ~transient_mode:config.Config.transient_mode stitched)
        else None
      in
      let eval_full ?edits () =
        match session with
        | Some s -> Evaluator.Incremental.refresh ?edits s
        | None -> evaluate_plain stitched
      in
      let check_deadline step =
        match config.Config.deadline with
        | Some d when Monoclock.now () > d ->
          incident step 0 "deadline exceeded" "deadline";
          raise Ivc.Deadline_exceeded
        | Some _ | None -> ()
      in
      let trace = ref [] in
      let last_t = ref t0 in
      let last_kc = ref kc0 in
      let last_hits = ref 0 and last_misses = ref 0 in
      let record step (ev : Evaluator.t) ~attempts ~accepts =
        let now = Monoclock.now () in
        let hits, misses =
          match session with
          | Some s ->
            let st = Evaluator.Incremental.stats s in
            (st.Evaluator.hits, st.Evaluator.misses)
          | None -> (0, 0)
        in
        let kc = Analysis.Transient.counters () in
        let entry =
          { step; skew = ev.Evaluator.skew; clr = ev.Evaluator.clr;
            t_max = ev.Evaluator.t_max;
            eval_runs = Evaluator.eval_count () - runs0;
            seconds = now -. t0;
            cache_hits = hits - !last_hits;
            cache_misses = misses - !last_misses;
            step_seconds = now -. !last_t;
            kernel_solves =
              kc.Analysis.Transient.total_solves
              - !last_kc.Analysis.Transient.total_solves;
            kernel_saved =
              kc.Analysis.Transient.total_saved
              - !last_kc.Analysis.Transient.total_saved;
            kernel_truncations =
              kc.Analysis.Transient.total_truncations
              - !last_kc.Analysis.Transient.total_truncations;
            attempts; accepts }
        in
        trace := entry :: !trace;
        last_t := now;
        last_hits := hits;
        last_misses := misses;
        last_kc := kc;
        match on_step with Some f -> f entry | None -> ()
      in
      check_deadline Stitch;
      let stitched_ev = eval_full () in
      record Stitch stitched_ev ~attempts:0 ~accepts:0;
      let att0 = Ivc.attempts () and acc0 = Ivc.accepts () in
      (* Global polish: per round, measure every region's nominal latency
         window on the stitched tree, snake the tap feed of each lagging
         region towards the slowest one (damped), refresh through the
         dirty-set fast path and keep the edit only if the global skew
         strictly improved without new violations. A rejected round halves
         the damping — the linear snake model overshoots near
         convergence. *)
      let best = ref stitched_ev in
      let rounds = ref 0 and accepts = ref 0 in
      let damping = ref config.Config.damping in
      let continue_ = ref true in
      while
        !continue_ && !rounds < max_polish_rounds
        && !best.Evaluator.skew > config.Config.stitch_skew_ps
      do
        check_deadline Polish;
        incr rounds;
        let sens = Probes.sensitivities stitched in
        let mid i =
          let ids = region_sink_ids.(i) in
          let lo = ref infinity and hi = ref neg_infinity in
          List.iter
            (fun (run : Evaluator.run) ->
              Array.iter
                (fun s ->
                  let l = run.Evaluator.latency.(s) in
                  if not (Float.is_nan l) then begin
                    if l < !lo then lo := l;
                    if l > !hi then hi := l
                  end)
                ids)
            [ Evaluator.nominal_run !best Evaluator.Rise;
              Evaluator.nominal_run !best Evaluator.Fall ];
          (!lo +. !hi) /. 2.
        in
        let mids = Array.init regions mid in
        let lead = Array.fold_left Float.max neg_infinity mids in
        let unit = config.Config.snake_unit in
        let deltas =
          Array.mapi
            (fun i m ->
              let gap_ps = (lead -. m) *. !damping in
              let per_nm = sens.Probes.snake_delay.(taps.(i)) in
              if gap_ps <= 0. || per_nm <= 1e-12 then 0
              else
                let nm =
                  min
                    (int_of_float (gap_ps /. per_nm))
                    config.Config.max_snake_per_round
                in
                nm / unit * unit)
            mids
        in
        if Array.for_all (fun d -> d = 0) deltas then continue_ := false
        else begin
          let j = Tree.Journal.start stitched in
          Array.iteri
            (fun i d ->
              if d > 0 then
                Tree.set_snake stitched taps.(i)
                  ((Tree.node stitched taps.(i)).Tree.snake + d))
            deltas;
          let touched = Tree.Journal.touched j in
          let base_rev = Tree.Journal.base_revision j in
          let post_rev = Tree.revision stitched in
          let ev =
            eval_full
              ~edits:{ Evaluator.base_revision = base_rev; nodes = touched }
              ()
          in
          if
            ev.Evaluator.skew < !best.Evaluator.skew -. 1e-9
            && ev.Evaluator.slew_violations <= !best.Evaluator.slew_violations
            && (ev.Evaluator.cap_ok || not !best.Evaluator.cap_ok)
          then begin
            Tree.Journal.commit j;
            best := ev;
            incr accepts
          end
          else begin
            Tree.Journal.rollback j;
            (match session with
            | Some s ->
              Evaluator.Incremental.note_edits s
                ~edits:
                  (Some { Evaluator.base_revision = post_rev; nodes = touched })
                ~new_revision:(Tree.revision stitched)
            | None -> ());
            damping := !damping /. 2.;
            if !damping < 0.05 then continue_ := false
          end
        end
      done;
      (* The tap feeds alone cannot repay a large inter-region latency gap:
         a single multi-millimetre snake breaks the slew limit at the tap
         buffer's input and every such round is rejected. The proven
         top-down wiresnaking pass finishes the job — it distributes the
         remaining padding over the grafted subtrees under per-site slew
         headroom and RSlack budgets, through the same incremental
         session. *)
      if !best.Evaluator.skew > config.Config.stitch_skew_ps then begin
        let hooks =
          match session with
          | Some s -> session_hooks s
          | None -> plain_hooks config
        in
        let polish_cfg =
          { config with Config.regions = 1; evaluator = Some hooks;
            spec = None }
        in
        match Wiresnaking.run polish_cfg stitched ~baseline:!best with
        | exception Ivc.Deadline_exceeded ->
          incident Polish 0 "deadline exceeded" "deadline";
          raise Ivc.Deadline_exceeded
        | wsn -> best := wsn.Wiresnaking.eval
      end;
      record Polish !best
        ~attempts:(!rounds + Ivc.attempts () - att0)
        ~accepts:(!accepts + Ivc.accepts () - acc0);
      let polarity =
        Array.fold_left
          (fun acc ((r : result), _) ->
            { Polarity.inverted_before =
                acc.Polarity.inverted_before
                + r.polarity.Polarity.inverted_before;
              added = acc.Polarity.added + r.polarity.Polarity.added })
          top.polarity region_runs
      in
      let meta_of step (ev : Evaluator.t) =
        { m_step = step; m_skew = ev.Evaluator.skew; m_clr = ev.Evaluator.clr;
          m_t_max = ev.Evaluator.t_max;
          m_slew_waived = ev.Evaluator.slew_violations > 0;
          m_cap_waived = not ev.Evaluator.cap_ok }
      in
      (match checkpoint_dir with
      | None -> ()
      | Some dir ->
        if
          Float.is_finite !best.Evaluator.skew
          && Float.is_finite !best.Evaluator.clr
          && Float.is_finite !best.Evaluator.t_max
        then (
          try
            Checkpoint.save ~dir ~step:Polish ~tree:stitched
              ~buf:top.chosen_buf ~polarity ~repair:top.repair
              ~metas:[ meta_of Stitch stitched_ev; meta_of Polish !best ]
          with e ->
            incident Polish 0 (Printexc.to_string e) "checkpoint-skipped")
        else
          incident Polish 0 "non-finite skew/CLR/latency" "checkpoint-skipped");
      let st_regions =
        Array.to_list
          (Array.mapi
             (fun i ((r : result), incs) ->
               { rg_index = i; rg_sinks = Array.length parts.(i);
                 rg_skew = r.final.Evaluator.skew;
                 rg_clr = r.final.Evaluator.clr;
                 rg_t_max = r.final.Evaluator.t_max;
                 rg_seconds = r.seconds; rg_eval_runs = r.eval_runs;
                 rg_incidents = List.length incs })
             region_runs)
      in
      { r_flow =
          { tree = stitched; trace = List.rev !trace; final = !best;
            chosen_buf = top.chosen_buf; polarity; repair = top.repair;
            incidents = List.rev !incidents;
            eval_runs = Evaluator.eval_count () - runs0;
            seconds = Monoclock.now () -. t0; surrogate = None };
        r_stitch =
          Some
            { st_regions;
              st_predicted_skew = predicted.Analysis.Regional.skew;
              st_rounds = !rounds; st_max_pad_ps = max_pad } }
  end
