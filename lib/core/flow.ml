module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type step = Initial | Tbsz | Twsz | Twsn | Bwsn

let step_name = function
  | Initial -> "INITIAL"
  | Tbsz -> "TBSZ"
  | Twsz -> "TWSZ"
  | Twsn -> "TWSN"
  | Bwsn -> "BWSN"

type trace_entry = {
  step : step;
  skew : float;
  clr : float;
  t_max : float;
  eval_runs : int;
  seconds : float;
  cache_hits : int;
  cache_misses : int;
  step_seconds : float;
  kernel_solves : int;
  kernel_saved : int;
  kernel_truncations : int;
  attempts : int;
  accepts : int;
}

type result = {
  tree : Tree.t;
  trace : trace_entry list;
  final : Evaluator.t;
  chosen_buf : Tech.Composite.t;
  polarity : Polarity.report;
  repair : Route.Repair.report option;
  eval_runs : int;
  seconds : float;
}

let initial_tree ?(config = Config.default) ~tech ~source ?(obstacles = [])
    sinks =
  let zst = Dme.Zst.build ~tech ~source sinks in
  let inserted = Insertion.run ~obstacles config zst in
  let polarity_buf =
    if config.Config.polarity_buf_count = 0 then inserted.Insertion.buf
    else
      Tech.Composite.make inserted.Insertion.buf.Tech.Composite.base
        config.Config.polarity_buf_count
  in
  let polarity =
    Polarity.correct inserted.Insertion.tree ~buf:polarity_buf
      ~strategy:Polarity.Minimal
  in
  (* Equalise per-path stage counts: the quantised van Ginneken variant
     and the polarity patches can leave paths a stage pair apart, which
     wire tuning cannot recover within slew limits. *)
  if config.Config.stage_balancing then
    ignore
      (Stage_balance.equalize inserted.Insertion.tree
         ~buf:inserted.Insertion.buf);
  (inserted.Insertion.tree, inserted.Insertion.buf, polarity,
   inserted.Insertion.repair)

let session_hooks s =
  { Speculate.eval =
      (fun ?edits t -> Evaluator.Incremental.refresh ?edits ~tree:t s);
    note =
      (fun ~edits ~new_revision ->
        Evaluator.Incremental.note_edits s ~edits ~new_revision) }

let plain_hooks config =
  { Speculate.eval =
      (fun ?edits:_ t ->
        Evaluator.evaluate ~engine:config.Config.engine
          ~seg_len:config.Config.seg_len
          ~transient_step:config.Config.transient_step
          ~transient_mode:config.Config.transient_mode t);
    note = (fun ~edits:_ ~new_revision:_ -> ()) }

let run ?(config = Config.default) ?on_step ~tech ~source ?(obstacles = [])
    sinks =
  let t0 = Monoclock.now () in
  let runs0 = Evaluator.eval_count () in
  let kc0 = Analysis.Transient.counters () in
  let att0 = Ivc.attempts () and acc0 = Ivc.accepts () in
  let tree, chosen_buf, polarity, repair =
    initial_tree ~config ~tech ~source ~obstacles sinks
  in
  (* One incremental session drives every CNE of the optimization steps
     (unless disabled): the session survives IVC attempt/rollback cycles,
     so stages untouched by a rejected or localised move are answered from
     cache. [refresh ~tree] rebinds because Buffer_slide.respace returns a
     rebuilt tree. *)
  let session =
    if config.Config.incremental then
      Some
        (Evaluator.Incremental.create ~engine:config.Config.engine
           ~seg_len:config.Config.seg_len
           ~transient_step:config.Config.transient_step
           ~transient_mode:config.Config.transient_mode tree)
    else None
  in
  let main_hooks =
    match session with
    | Some s -> session_hooks s
    | None -> plain_hooks config
  in
  let config = { config with Config.evaluator = Some main_hooks } in
  let evaluate t = Ivc.evaluate config t in
  let trace = ref [] in
  let last_t = ref (Monoclock.now ()) in
  (* Every counter in a trace entry is a per-step delta against the value
     seen at the previous [record] (cache stats used to be cumulative
     session totals while the kernel counters were deltas — mixed
     semantics that made the streamed telemetry inconsistent). [eval_runs]
     and [seconds] stay cumulative, as documented. *)
  let last_hits = ref 0 and last_misses = ref 0 in
  let last_kc = ref kc0 in
  let last_att = ref att0 and last_acc = ref acc0 in
  let record step (ev : Evaluator.t) =
    let now = Monoclock.now () in
    let hits, misses =
      match session with
      | Some s ->
        let st = Evaluator.Incremental.stats s in
        (st.Evaluator.hits, st.Evaluator.misses)
      | None -> (0, 0)
    in
    let kc = Analysis.Transient.counters () in
    let entry =
      {
        step;
        skew = ev.Evaluator.skew;
        clr = ev.Evaluator.clr;
        t_max = ev.Evaluator.t_max;
        eval_runs = Evaluator.eval_count () - runs0;
        seconds = now -. t0;
        cache_hits = hits - !last_hits;
        cache_misses = misses - !last_misses;
        step_seconds = now -. !last_t;
        kernel_solves =
          kc.Analysis.Transient.total_solves
          - !last_kc.Analysis.Transient.total_solves;
        kernel_saved =
          kc.Analysis.Transient.total_saved
          - !last_kc.Analysis.Transient.total_saved;
        kernel_truncations =
          kc.Analysis.Transient.total_truncations
          - !last_kc.Analysis.Transient.total_truncations;
        attempts = Ivc.attempts () - !last_att;
        accepts = Ivc.accepts () - !last_acc;
      }
    in
    trace := entry :: !trace;
    last_t := now;
    last_hits := hits;
    last_misses := misses;
    last_kc := kc;
    last_att := Ivc.attempts ();
    last_acc := Ivc.accepts ();
    match on_step with Some f -> f entry | None -> ()
  in
  (* Elmore-driven pre-balance (§III-A: simple analytical models first):
     the buffered tree out of the quantised DP can carry large path-delay
     imbalance at scale; Elmore evaluations are near-free, so a snaking
     equalisation under the Elmore engine recovers the bulk before any
     accurate run is spent — no session here, it runs a different engine. *)
  if config.Config.elmore_prebalance then begin
    let pre_config =
      { config with
        Config.engine = Analysis.Evaluator.Elmore_model;
        max_rounds = 30;
        evaluator = None }
    in
    let pre_eval =
      Evaluator.evaluate ~engine:Analysis.Evaluator.Elmore_model
        ~seg_len:config.Config.seg_len tree
    in
    ignore (Wiresnaking.run pre_config tree ~baseline:pre_eval)
  end;
  let initial_eval = evaluate tree in
  record Initial initial_eval;
  (* TBSZ: slide/interleave the trunk chain, then iterative sizing. *)
  let ceiling =
    Float.min
      (Route.Slewcap.lumped ~tech ~buf:chosen_buf ())
      (Route.Slewcap.wire_aware ~tech ~buf:chosen_buf ())
  in
  let slid, _slide_report = Buffer_slide.respace tree ~ceiling in
  let tree, eval =
    let ev = evaluate slid in
    (* Keep the slid tree only if it did not break anything (IVC). *)
    if
      ev.Evaluator.slew_violations <= initial_eval.Evaluator.slew_violations
      && ev.Evaluator.cap_ok
    then (slid, ev)
    else (tree, initial_eval)
  in
  (* The tree identity is now final for the rest of the flow, so the
     speculation context can be built over it: [width - 1] replica lanes,
     each with its own incremental session ([~parallel:false] — the lanes
     themselves run on the domain pool). [speculation = -1] keeps the
     legacy copy-based attempts and installs no context. *)
  let config =
    if config.Config.speculation < 0 then config
    else begin
      let slot_hooks replica =
        if config.Config.incremental then
          session_hooks
            (Evaluator.Incremental.create ~engine:config.Config.engine
               ~seg_len:config.Config.seg_len ~parallel:false
               ~transient_step:config.Config.transient_step
               ~transient_mode:config.Config.transient_mode replica)
        else plain_hooks config
      in
      let spec =
        Speculate.create ~width:(Config.speculation_width config) ~main:tree
          ~main_hooks ~slot_hooks ()
      in
      { config with Config.spec = Some spec }
    end
  in
  let sized = Buffer_sizing.run config tree ~baseline:eval in
  (* Speed-up before slow-down (§III-B): strengthen drivers of critical
     subtrees so less slack has to be burned by the wire steps. *)
  let sped, _ = Buffer_sizing.speedup config tree ~baseline:sized.Buffer_sizing.eval in
  record Tbsz sped;
  (* TWSZ *)
  let wsz = Wiresizing.run config tree ~baseline:sped in
  record Twsz wsz.Wiresizing.eval;
  (* TWSN *)
  let wsn = Wiresnaking.run config tree ~baseline:wsz.Wiresizing.eval in
  record Twsn wsn.Wiresnaking.eval;
  (* BWSN *)
  let bl = Bottomlevel.run config tree ~baseline:wsn.Wiresnaking.eval in
  (* "Further optimization is possible … at the cost of increased runtime"
     (§I): when skew is still above the negligible band, run the wire
     sequence once more — larger instances sometimes converge in two
     passes. *)
  let final_eval =
    if bl.Bottomlevel.eval.Evaluator.skew > config.Config.second_pass_skew_ps
    then begin
      let wsz2 = Wiresizing.run config tree ~baseline:bl.Bottomlevel.eval in
      let wsn2 = Wiresnaking.run config tree ~baseline:wsz2.Wiresizing.eval in
      let bl2 = Bottomlevel.run config tree ~baseline:wsn2.Wiresnaking.eval in
      bl2.Bottomlevel.eval
    end
    else bl.Bottomlevel.eval
  in
  record Bwsn final_eval;
  {
    tree;
    trace = List.rev !trace;
    final = final_eval;
    chosen_buf;
    polarity;
    repair;
    eval_runs = Evaluator.eval_count () - runs0;
    seconds = Monoclock.now () -. t0;
  }
