module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type objective = Skew | Clr | Insertion_delay

let eps = 1e-3

let better obj ~candidate:(c : Evaluator.t) ~baseline:(b : Evaluator.t) =
  match obj with
  | Skew ->
    c.Evaluator.skew < b.Evaluator.skew -. eps
    || (c.Evaluator.skew < b.Evaluator.skew +. eps
        && c.Evaluator.clr < b.Evaluator.clr -. eps)
  | Clr ->
    c.Evaluator.clr < b.Evaluator.clr -. eps
    || (c.Evaluator.clr < b.Evaluator.clr +. eps
        && c.Evaluator.skew < b.Evaluator.skew -. eps)
  | Insertion_delay -> c.Evaluator.t_max < b.Evaluator.t_max -. eps

let violation_free (ev : Evaluator.t) = Evaluator.ok ev

(* A candidate introducing violations loses even if the objective
   improved; a baseline that already had violations only needs to not
   get worse. *)
let ok_violations ~baseline ~candidate =
  if violation_free baseline then violation_free candidate
  else
    candidate.Evaluator.slew_violations <= baseline.Evaluator.slew_violations
    && (candidate.Evaluator.cap_ok || not baseline.Evaluator.cap_ok)

exception Deadline_exceeded

let check_deadline config =
  match config.Config.deadline with
  | Some d when Monoclock.now () > d -> raise Deadline_exceeded
  | _ -> ()

(* Atomic: whole flows fan out over domains in the suite runner, and the
   speculative candidate evaluations themselves run on the pool. *)
let attempts_counter = Atomic.make 0
let accepts_counter = Atomic.make 0
let attempts () = Atomic.get attempts_counter
let accepts () = Atomic.get accepts_counter

let hooks config =
  match config.Config.evaluator with
  | Some h -> h
  | None ->
    { Speculate.eval =
        (fun ?edits:_ t ->
          Evaluator.evaluate ~engine:config.Config.engine
            ~flat:config.Config.flat ~seg_len:config.Config.seg_len
            ~transient_step:config.Config.transient_step
            ~transient_mode:config.Config.transient_mode t);
      note = (fun ~edits:_ ~new_revision:_ -> ()) }

(* Every CNE in the optimization loops funnels through here so that Flow
   can swap in an incremental session for the whole run — which also makes
   it the natural cooperative cancellation point: a run that overruns its
   wall-clock budget is caught before the next evaluation rather than
   killed mid-solve, so the tree and telemetry stay consistent. *)
let evaluate ?journal config tree =
  check_deadline config;
  let h = hooks config in
  match Option.bind journal Speculate.hint_of_journal with
  | Some hint -> h.Speculate.eval ~edits:hint tree
  | None -> h.Speculate.eval tree

let rollback config tree j =
  let h = hooks config in
  let edits =
    match Speculate.hint_of_journal j with
    | Some _ ->
      Some
        { Evaluator.base_revision = Tree.revision tree;
          nodes = Tree.Journal.touched j }
    | None -> None
  in
  Tree.Journal.rollback j;
  h.Speculate.note ~edits ~new_revision:(Tree.revision tree)

let debug_decision config ~baseline ~candidate =
  if config.Config.debug then
    Format.eprintf
      "[ivc] base skew=%.3f clr=%.3f sv=%d | cand skew=%.3f clr=%.3f sv=%d capok=%b@."
      baseline.Evaluator.skew baseline.Evaluator.clr
      baseline.Evaluator.slew_violations candidate.Evaluator.skew
      candidate.Evaluator.clr candidate.Evaluator.slew_violations
      candidate.Evaluator.cap_ok

(* Legacy (PR 3-style) attempt: full-tree snapshot, full-tree restore.
   Kept behind [speculation = -1] as the benchmark baseline and escape
   hatch; no journal, no session notes — rejected attempts leave the
   session's anchor behind and force full extractions, exactly as
   before. *)
let legacy_attempt config tree ~baseline ~objective mutate =
  Atomic.incr attempts_counter;
  let snapshot = Tree.copy tree in
  mutate tree;
  let candidate = evaluate config tree in
  debug_decision config ~baseline ~candidate;
  if
    ok_violations ~baseline ~candidate
    && better objective ~candidate ~baseline
  then begin
    Atomic.incr accepts_counter;
    Ok candidate
  end
  else begin
    Tree.assign ~dst:tree ~src:snapshot;
    Error
      (if not (ok_violations ~baseline ~candidate) then
         "violations introduced"
       else "no improvement")
  end

let journal_attempt config tree ~baseline ~objective mutate =
  Atomic.incr attempts_counter;
  let h = hooks config in
  let j = Tree.Journal.start tree in
  match
    mutate tree;
    evaluate ~journal:j config tree
  with
  | exception e ->
    (try rollback config tree j
     with Invalid_argument _ ->
       Tree.Journal.abandon j;
       h.Speculate.note ~edits:None ~new_revision:(Tree.revision tree));
    raise e
  | candidate ->
    debug_decision config ~baseline ~candidate;
    if
      ok_violations ~baseline ~candidate
      && better objective ~candidate ~baseline
    then begin
      Atomic.incr accepts_counter;
      Tree.Journal.commit j;
      Ok candidate
    end
    else begin
      rollback config tree j;
      Error
        (if not (ok_violations ~baseline ~candidate) then
           "violations introduced"
         else "no improvement")
    end

let attempt config tree ~baseline ~objective mutate =
  if config.Config.speculation < 0 then
    legacy_attempt config tree ~baseline ~objective mutate
  else journal_attempt config tree ~baseline ~objective mutate

(* The speculation context for a pass: the flow's, when the pass operates
   on the flow's main tree; otherwise a serial journaled context over the
   given tree (direct pass invocations, tests). *)
let ctx_for config tree =
  match config.Config.spec with
  | Some ctx when Speculate.main ctx == tree -> ctx
  | _ -> Speculate.serial ~main:tree ~hooks:(hooks config)

(* ------------------------------------------------------------------ *)
(* Surrogate-ranked candidate search                                   *)
(* ------------------------------------------------------------------ *)

module Surrogate = Analysis.Surrogate

(* The live calibration state, when ranking applies: the flag is on,
   the legacy loop is not forced, and Flow created a per-run state. *)
let surrogate_state config =
  if config.Config.surrogate && config.Config.speculation >= 0 then
    config.Config.surrogate_state
  else None

let objective_tag = function
  | Skew -> "skew"
  | Clr -> "clr"
  | Insertion_delay -> "tmax"

(* Models are calibrated per technology bundle (the paper's point that
   per-design tuning must not be needed) and per objective — a skew
   delta and a CLR delta respond to the same edit differently. *)
let surrogate_key tree objective =
  (Tree.tech tree).Tech.name ^ "/" ^ objective_tag objective

let measured_delta objective ~baseline (ev : Evaluator.t) =
  match objective with
  | Skew -> ev.Evaluator.skew -. baseline.Evaluator.skew
  | Clr -> ev.Evaluator.clr -. baseline.Evaluator.clr
  | Insertion_delay -> ev.Evaluator.t_max -. baseline.Evaluator.t_max

(* Cheap feature probe: apply the candidate under a journal, snapshot
   the touched nodes' electrical state, roll back through the session
   hooks (so the dirty-anchor chain survives), snapshot the same nodes
   again on the restored tree. No evaluation anywhere — the probe costs
   tree surgery only. *)
let probe_features config tree ~pos apply =
  let h = hooks config in
  let abandon () =
    h.Speculate.note ~edits:None ~new_revision:(Tree.revision tree)
  in
  let j = Tree.Journal.start tree in
  match apply tree with
  | exception e ->
    (try rollback config tree j
     with Invalid_argument _ ->
       Tree.Journal.abandon j;
       abandon ());
    raise e
  | () ->
    let ids = Tree.Journal.touched j in
    let post = Surrogate.capture tree ids in
    (try rollback config tree j
     with Invalid_argument _ as e ->
       (* A journal bypass on the main tree is the same fatal condition
          the serial explorer reports — never corrupt silently. *)
       Tree.Journal.abandon j;
       abandon ();
       raise e);
    let pre = Surrogate.capture tree ids in
    Surrogate.features ~pos ~ids ~pre ~post

let speculate config tree ~baseline ~objective candidates =
  check_deadline config;
  let ctx = ctx_for config tree in
  ignore (Atomic.fetch_and_add attempts_counter (Array.length candidates));
  (* Deterministic winner: the lowest-indexed survivor of the IVC
     acceptance rule. Candidates arrive ordered by preference (the scale
     ladder puts the largest scale first), so acceptance is a pure
     function of candidate order — independent of the speculation width
     and of domain scheduling. Serial exploration stops at the winner;
     wider contexts precompute would-be-discarded rungs in parallel. *)
  let accept { Speculate.ev = candidate; _ } =
    debug_decision config ~baseline ~candidate;
    ok_violations ~baseline ~candidate && better objective ~candidate ~baseline
  in
  let commit_win (i, (outcome : Speculate.outcome)) =
    Atomic.incr accepts_counter;
    Speculate.commit ctx outcome;
    Some (i, outcome.Speculate.ev)
  in
  match surrogate_state config with
  | None -> (
    match Speculate.explore_first ctx candidates ~accept with
    | None -> None
    | Some win -> commit_win win)
  | Some state ->
    (* Surrogate-ranked search. Every decision below is a pure function
       of (model state, probed features, measured evaluations), and
       every evaluated candidate set is deterministic — so the schedule,
       the eval count and the winner are identical at every speculation
       width and on every machine, unlike the eager unranked batches
       whose discarded-loser count depends on the pool size. *)
    let k = Array.length candidates in
    let key = surrogate_key tree objective in
    let pos = Surrogate.position_fn baseline in
    let feats = Array.map (probe_features config tree ~pos) candidates in
    let observe i (o : Speculate.outcome) =
      Surrogate.observe state ~key feats.(i)
        (measured_delta objective ~baseline o.Speculate.ev)
    in
    let preds = Array.map (fun x -> Surrogate.predict state ~key x) feats in
    if k = 0 || Array.exists Option.is_none preds then begin
      (* Warm-up: the model is cold. Run the width-1 lazy schedule
         (identical at every width — [lazy_only]) and feed every
         measured pair, winner or loser, into the calibration buffer. *)
      Surrogate.note_warmup state;
      match
        Speculate.explore_first ~measured:observe ~lazy_only:true ctx
          candidates ~accept
      with
      | None -> None
      | Some win -> commit_win win
    end
    else begin
      Surrogate.note_ranked state;
      let preds = Array.map Option.get preds in
      (* First-survivor scan over a candidate subset, in original-index
         order, feeding every measured outcome to calibration. The lazy
         serial schedule stops at the first acceptance — exactly the
         unranked search's cost model — and keeps the evaluated set
         width-independent. *)
      let explore_sub idxs =
        if Array.length idxs = 0 then None
        else begin
          let mapped = Array.map (fun i -> candidates.(i)) idxs in
          let measured si o = observe idxs.(si) o in
          match
            Speculate.explore_first ~measured ~lazy_only:true ctx mapped
              ~accept
          with
          | None -> None
          | Some (si, o) -> Some (idxs.(si), o)
        end
      in
      (* A candidate whose optimistic bound (prediction minus the 1σ
         pruning margin) cannot clear the improvement threshold is ruled
         out without evaluation. *)
      let prune = Surrogate.prune_radius state ~key in
      let hopeless j = fst preds.(j) -. prune > -.eps in
      let all = List.init k Fun.id in
      if
        List.for_all hopeless all
        && not (Surrogate.audit_hopeless state)
      then begin
        (* The model confidently rules out the whole round — the search
           ends with zero evaluations where the unranked scan would pay
           k rejections. Every 8th such round falls through to the
           ranked path instead (the audit), so a drifted model cannot
           silently terminate every loop. *)
        Surrogate.note_saved state k;
        None
      end
      else begin
        (* Rank by predicted delta (most improving first), ties by index
           so the baseline's preference order breaks them. *)
        let order = Array.init k Fun.id in
        Array.sort
          (fun a b ->
            match Float.compare (fst preds.(a)) (fst preds.(b)) with
            | 0 -> Int.compare a b
            | c -> c)
          order;
        let base_r =
          if config.Config.rank_top > 0 then config.Config.rank_top
          else max 1 (k / 4)
        in
        let r = min k (base_r + Surrogate.widening state ~key) in
        let chunk = Array.sub order 0 r in
        (* Scan in original-index order: the winner rule stays "lowest
           original index among accepted", the same preference the
           unranked search implements. *)
        Array.sort Int.compare chunk;
        let in_chunk = Array.make k false in
        Array.iter (fun i -> in_chunk.(i) <- true) chunk;
        match explore_sub chunk with
        | Some (i, o) ->
          let pred, trust = preds.(i) in
          let meas = measured_delta objective ~baseline o.Speculate.ev in
          if Float.abs (meas -. pred) <= trust then begin
            Surrogate.note_intrust state ~key;
            Surrogate.note_saved state (k - r);
            commit_win (i, o)
          end
          else begin
            (* Mispredict guard: the winner's measured delta fell outside
               the model's own trust radius, so the ranking cannot be
               relied on this round — widen R persistently and fall back.
               Only skipped candidates {e below} i can displace it: the
               winner rule is lowest accepted index, so anything above i
               loses to it regardless of its outcome. *)
            Surrogate.note_mispredict state ~key;
            Surrogate.note_fallback state;
            let below =
              Array.of_list
                (List.filter (fun j -> (not in_chunk.(j)) && j < i) all)
            in
            let final =
              match explore_sub below with
              | Some win -> win  (* index < i by construction *)
              | None -> (i, o)
            in
            commit_win final
          end
        | None -> (
          (* Nothing in the chunk survived. Remaining candidates the
             model rules out ({!hopeless}) are skipped — the
             rejection-round savings; the rest are scanned so a real
             winner cannot be lost to a ranking mistake. *)
          let keep, skipped =
            List.partition
              (fun j -> not (hopeless j))
              (List.filter (fun j -> not in_chunk.(j)) all)
          in
          Surrogate.note_saved state (List.length skipped);
          if keep <> [] then Surrogate.note_fallback state;
          match explore_sub (Array.of_list keep) with
          | None -> None
          | Some (i2, o2) ->
            let pred, trust = preds.(i2) in
            let meas = measured_delta objective ~baseline o2.Speculate.ev in
            if Float.abs (meas -. pred) > trust then
              Surrogate.note_mispredict state ~key;
            commit_win (i2, o2))
      end
    end

let iterate config tree ~baseline ~objective plan =
  if config.Config.speculation < 0 then
    let rec go baseline accepted round =
      if round >= config.Config.max_rounds then (baseline, accepted)
      else
        match
          legacy_attempt config tree ~baseline ~objective (fun t ->
              (plan t baseline) t)
        with
        | Ok ev -> go ev (accepted + 1) (round + 1)
        | Error _ -> (baseline, accepted)
    in
    go baseline 0 0
  else
    let rec go baseline accepted round =
      if round >= config.Config.max_rounds then (baseline, accepted)
      else begin
        let apply = plan tree baseline in
        match speculate config tree ~baseline ~objective [| apply |] with
        | Some (_, ev) -> go ev (accepted + 1) (round + 1)
        | None -> (baseline, accepted)
      end
    in
    go baseline 0 0

(* The speculative scale ladder: instead of discovering the right damping
   one CNE at a time (try s, reject, halve, retry …), evaluate the whole
   ladder as one candidate batch and keep the best survivor. The ladder
   is a fixed function of the current scale, so the evaluation schedule —
   and with it the eval count and the final tree — is identical at every
   speculation width. *)
let ladder scale = [| scale; scale /. 2.; scale /. 4.; scale /. 8. |]

let adaptive_iterate config tree ~baseline ~objective plan =
  if config.Config.speculation < 0 then
    let rec go baseline accepted attempts scale fails =
      if attempts >= config.Config.max_rounds || fails >= 4 || scale < 0.01
      then (baseline, accepted, attempts)
      else
        match
          legacy_attempt config tree ~baseline ~objective (fun t ->
              (plan t baseline) ~scale t)
        with
        | Ok ev ->
          go ev (accepted + 1) (attempts + 1) (Float.min 1. (scale *. 1.3)) 0
        | Error _ ->
          go baseline accepted (attempts + 1) (scale /. 2.) (fails + 1)
    in
    go baseline 0 0 1.0 0
  else
    let rec go baseline accepted attempts scale =
      if attempts >= config.Config.max_rounds || scale < 0.01 then
        (baseline, accepted, attempts)
      else begin
        (* One plan per round, on the (unmutated) main tree: the O(n)
           slack/sensitivity analysis is hoisted out of the K-candidate
           fan-out; the returned closure only applies precomputed edits,
           which is valid on any content-identical replica. *)
        let apply = plan tree baseline in
        let rungs = ladder scale in
        let candidates =
          Array.map (fun s t -> apply ~scale:s t) rungs
        in
        let k = Array.length rungs in
        match speculate config tree ~baseline ~objective candidates with
        | Some (i, ev) ->
          go ev (accepted + 1) (attempts + k)
            (Float.min 1. (rungs.(i) *. 1.3))
        | None ->
          (* No rung survived: the ladder already explored four halvings,
             the serial loop's give-up condition. *)
          (baseline, accepted, attempts + k)
      end
    in
    go baseline 0 0 1.0
