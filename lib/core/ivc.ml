module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type objective = Skew | Clr | Insertion_delay

let eps = 1e-3

let better obj ~candidate:(c : Evaluator.t) ~baseline:(b : Evaluator.t) =
  match obj with
  | Skew ->
    c.Evaluator.skew < b.Evaluator.skew -. eps
    || (c.Evaluator.skew < b.Evaluator.skew +. eps
        && c.Evaluator.clr < b.Evaluator.clr -. eps)
  | Clr ->
    c.Evaluator.clr < b.Evaluator.clr -. eps
    || (c.Evaluator.clr < b.Evaluator.clr +. eps
        && c.Evaluator.skew < b.Evaluator.skew -. eps)
  | Insertion_delay -> c.Evaluator.t_max < b.Evaluator.t_max -. eps

let violation_free (ev : Evaluator.t) = Evaluator.ok ev

(* A candidate introducing violations loses even if the objective
   improved; a baseline that already had violations only needs to not
   get worse. *)
let ok_violations ~baseline ~candidate =
  if violation_free baseline then violation_free candidate
  else
    candidate.Evaluator.slew_violations <= baseline.Evaluator.slew_violations
    && (candidate.Evaluator.cap_ok || not baseline.Evaluator.cap_ok)

exception Deadline_exceeded

let check_deadline config =
  match config.Config.deadline with
  | Some d when Monoclock.now () > d -> raise Deadline_exceeded
  | _ -> ()

(* Atomic: whole flows fan out over domains in the suite runner, and the
   speculative candidate evaluations themselves run on the pool. *)
let attempts_counter = Atomic.make 0
let accepts_counter = Atomic.make 0
let attempts () = Atomic.get attempts_counter
let accepts () = Atomic.get accepts_counter

let hooks config =
  match config.Config.evaluator with
  | Some h -> h
  | None ->
    { Speculate.eval =
        (fun ?edits:_ t ->
          Evaluator.evaluate ~engine:config.Config.engine
            ~flat:config.Config.flat ~seg_len:config.Config.seg_len
            ~transient_step:config.Config.transient_step
            ~transient_mode:config.Config.transient_mode t);
      note = (fun ~edits:_ ~new_revision:_ -> ()) }

(* Every CNE in the optimization loops funnels through here so that Flow
   can swap in an incremental session for the whole run — which also makes
   it the natural cooperative cancellation point: a run that overruns its
   wall-clock budget is caught before the next evaluation rather than
   killed mid-solve, so the tree and telemetry stay consistent. *)
let evaluate ?journal config tree =
  check_deadline config;
  let h = hooks config in
  match Option.bind journal Speculate.hint_of_journal with
  | Some hint -> h.Speculate.eval ~edits:hint tree
  | None -> h.Speculate.eval tree

let rollback config tree j =
  let h = hooks config in
  let edits =
    match Speculate.hint_of_journal j with
    | Some _ ->
      Some
        { Evaluator.base_revision = Tree.revision tree;
          nodes = Tree.Journal.touched j }
    | None -> None
  in
  Tree.Journal.rollback j;
  h.Speculate.note ~edits ~new_revision:(Tree.revision tree)

let debug_decision config ~baseline ~candidate =
  if config.Config.debug then
    Format.eprintf
      "[ivc] base skew=%.3f clr=%.3f sv=%d | cand skew=%.3f clr=%.3f sv=%d capok=%b@."
      baseline.Evaluator.skew baseline.Evaluator.clr
      baseline.Evaluator.slew_violations candidate.Evaluator.skew
      candidate.Evaluator.clr candidate.Evaluator.slew_violations
      candidate.Evaluator.cap_ok

(* Legacy (PR 3-style) attempt: full-tree snapshot, full-tree restore.
   Kept behind [speculation = -1] as the benchmark baseline and escape
   hatch; no journal, no session notes — rejected attempts leave the
   session's anchor behind and force full extractions, exactly as
   before. *)
let legacy_attempt config tree ~baseline ~objective mutate =
  Atomic.incr attempts_counter;
  let snapshot = Tree.copy tree in
  mutate tree;
  let candidate = evaluate config tree in
  debug_decision config ~baseline ~candidate;
  if
    ok_violations ~baseline ~candidate
    && better objective ~candidate ~baseline
  then begin
    Atomic.incr accepts_counter;
    Ok candidate
  end
  else begin
    Tree.assign ~dst:tree ~src:snapshot;
    Error
      (if not (ok_violations ~baseline ~candidate) then
         "violations introduced"
       else "no improvement")
  end

let journal_attempt config tree ~baseline ~objective mutate =
  Atomic.incr attempts_counter;
  let h = hooks config in
  let j = Tree.Journal.start tree in
  match
    mutate tree;
    evaluate ~journal:j config tree
  with
  | exception e ->
    (try rollback config tree j
     with Invalid_argument _ ->
       Tree.Journal.abandon j;
       h.Speculate.note ~edits:None ~new_revision:(Tree.revision tree));
    raise e
  | candidate ->
    debug_decision config ~baseline ~candidate;
    if
      ok_violations ~baseline ~candidate
      && better objective ~candidate ~baseline
    then begin
      Atomic.incr accepts_counter;
      Tree.Journal.commit j;
      Ok candidate
    end
    else begin
      rollback config tree j;
      Error
        (if not (ok_violations ~baseline ~candidate) then
           "violations introduced"
         else "no improvement")
    end

let attempt config tree ~baseline ~objective mutate =
  if config.Config.speculation < 0 then
    legacy_attempt config tree ~baseline ~objective mutate
  else journal_attempt config tree ~baseline ~objective mutate

(* The speculation context for a pass: the flow's, when the pass operates
   on the flow's main tree; otherwise a serial journaled context over the
   given tree (direct pass invocations, tests). *)
let ctx_for config tree =
  match config.Config.spec with
  | Some ctx when Speculate.main ctx == tree -> ctx
  | _ -> Speculate.serial ~main:tree ~hooks:(hooks config)

let speculate config tree ~baseline ~objective candidates =
  check_deadline config;
  let ctx = ctx_for config tree in
  ignore (Atomic.fetch_and_add attempts_counter (Array.length candidates));
  (* Deterministic winner: the lowest-indexed survivor of the IVC
     acceptance rule. Candidates arrive ordered by preference (the scale
     ladder puts the largest scale first), so acceptance is a pure
     function of candidate order — independent of the speculation width
     and of domain scheduling. Serial exploration stops at the winner;
     wider contexts precompute would-be-discarded rungs in parallel. *)
  let accept { Speculate.ev = candidate; _ } =
    debug_decision config ~baseline ~candidate;
    ok_violations ~baseline ~candidate && better objective ~candidate ~baseline
  in
  match Speculate.explore_first ctx candidates ~accept with
  | None -> None
  | Some (i, outcome) ->
    Atomic.incr accepts_counter;
    Speculate.commit ctx outcome;
    Some (i, outcome.Speculate.ev)

let iterate config tree ~baseline ~objective plan =
  if config.Config.speculation < 0 then
    let rec go baseline accepted round =
      if round >= config.Config.max_rounds then (baseline, accepted)
      else
        match
          legacy_attempt config tree ~baseline ~objective (fun t ->
              (plan t baseline) t)
        with
        | Ok ev -> go ev (accepted + 1) (round + 1)
        | Error _ -> (baseline, accepted)
    in
    go baseline 0 0
  else
    let rec go baseline accepted round =
      if round >= config.Config.max_rounds then (baseline, accepted)
      else begin
        let apply = plan tree baseline in
        match speculate config tree ~baseline ~objective [| apply |] with
        | Some (_, ev) -> go ev (accepted + 1) (round + 1)
        | None -> (baseline, accepted)
      end
    in
    go baseline 0 0

(* The speculative scale ladder: instead of discovering the right damping
   one CNE at a time (try s, reject, halve, retry …), evaluate the whole
   ladder as one candidate batch and keep the best survivor. The ladder
   is a fixed function of the current scale, so the evaluation schedule —
   and with it the eval count and the final tree — is identical at every
   speculation width. *)
let ladder scale = [| scale; scale /. 2.; scale /. 4.; scale /. 8. |]

let adaptive_iterate config tree ~baseline ~objective plan =
  if config.Config.speculation < 0 then
    let rec go baseline accepted attempts scale fails =
      if attempts >= config.Config.max_rounds || fails >= 4 || scale < 0.01
      then (baseline, accepted, attempts)
      else
        match
          legacy_attempt config tree ~baseline ~objective (fun t ->
              (plan t baseline) ~scale t)
        with
        | Ok ev ->
          go ev (accepted + 1) (attempts + 1) (Float.min 1. (scale *. 1.3)) 0
        | Error _ ->
          go baseline accepted (attempts + 1) (scale /. 2.) (fails + 1)
    in
    go baseline 0 0 1.0 0
  else
    let rec go baseline accepted attempts scale =
      if attempts >= config.Config.max_rounds || scale < 0.01 then
        (baseline, accepted, attempts)
      else begin
        (* One plan per round, on the (unmutated) main tree: the O(n)
           slack/sensitivity analysis is hoisted out of the K-candidate
           fan-out; the returned closure only applies precomputed edits,
           which is valid on any content-identical replica. *)
        let apply = plan tree baseline in
        let rungs = ladder scale in
        let candidates =
          Array.map (fun s t -> apply ~scale:s t) rungs
        in
        let k = Array.length rungs in
        match speculate config tree ~baseline ~objective candidates with
        | Some (i, ev) ->
          go ev (accepted + 1) (attempts + k)
            (Float.min 1. (rungs.(i) *. 1.3))
        | None ->
          (* No rung survived: the ladder already explored four halvings,
             the serial loop's give-up condition. *)
          (baseline, accepted, attempts + k)
      end
    in
    go baseline 0 0 1.0
