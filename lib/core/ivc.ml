module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type objective = Skew | Clr | Insertion_delay

let eps = 1e-3

let better obj ~candidate:(c : Evaluator.t) ~baseline:(b : Evaluator.t) =
  match obj with
  | Skew ->
    c.Evaluator.skew < b.Evaluator.skew -. eps
    || (c.Evaluator.skew < b.Evaluator.skew +. eps
        && c.Evaluator.clr < b.Evaluator.clr -. eps)
  | Clr ->
    c.Evaluator.clr < b.Evaluator.clr -. eps
    || (c.Evaluator.clr < b.Evaluator.clr +. eps
        && c.Evaluator.skew < b.Evaluator.skew -. eps)
  | Insertion_delay -> c.Evaluator.t_max < b.Evaluator.t_max -. eps

let violation_free (ev : Evaluator.t) = Evaluator.ok ev

let debug =
  match Sys.getenv_opt "CONTANGO_DEBUG" with Some ("1" | "true") -> true | _ -> false

exception Deadline_exceeded

(* Every CNE in the optimization loops funnels through here so that Flow
   can swap in an incremental session for the whole run — which also makes
   it the natural cooperative cancellation point: a run that overruns its
   wall-clock budget is caught before the next evaluation rather than
   killed mid-solve, so the tree and telemetry stay consistent. *)
let evaluate config tree =
  (match config.Config.deadline with
  | Some d when Unix.gettimeofday () > d -> raise Deadline_exceeded
  | _ -> ());
  match config.Config.evaluator with
  | Some f -> f tree
  | None ->
    Evaluator.evaluate ~engine:config.Config.engine
      ~seg_len:config.Config.seg_len
      ~transient_step:config.Config.transient_step
      ~transient_mode:config.Config.transient_mode tree

let attempt config tree ~baseline ~objective mutate =
  let snapshot = Tree.copy tree in
  mutate tree;
  let candidate = evaluate config tree in
  if debug then
    Format.eprintf "[ivc] base skew=%.3f clr=%.3f sv=%d | cand skew=%.3f clr=%.3f sv=%d capok=%b@."
      baseline.Evaluator.skew baseline.Evaluator.clr
      baseline.Evaluator.slew_violations candidate.Evaluator.skew
      candidate.Evaluator.clr candidate.Evaluator.slew_violations
      candidate.Evaluator.cap_ok;
  let ok_violations =
    if violation_free baseline then violation_free candidate
    else
      candidate.Evaluator.slew_violations <= baseline.Evaluator.slew_violations
      && (candidate.Evaluator.cap_ok || not baseline.Evaluator.cap_ok)
  in
  if ok_violations && better objective ~candidate ~baseline then Ok candidate
  else begin
    Tree.assign ~dst:tree ~src:snapshot;
    Error
      (if not ok_violations then "violations introduced"
       else "no improvement")
  end

let iterate config tree ~baseline ~objective mutate =
  let rec go baseline accepted round =
    if round >= config.Config.max_rounds then (baseline, accepted)
    else
      match
        attempt config tree ~baseline ~objective (fun t -> mutate t baseline)
      with
      | Ok ev -> go ev (accepted + 1) (round + 1)
      | Error _ -> (baseline, accepted)
  in
  go baseline 0 0

let adaptive_iterate config tree ~baseline ~objective mutate =
  let rec go baseline accepted attempts scale fails =
    if attempts >= config.Config.max_rounds || fails >= 4 || scale < 0.01 then
      (baseline, accepted, attempts)
    else
      match
        attempt config tree ~baseline ~objective (fun t ->
            mutate ~scale t baseline)
      with
      | Ok ev ->
        go ev (accepted + 1) (attempts + 1) (Float.min 1. (scale *. 1.3)) 0
      | Error _ -> go baseline accepted (attempts + 1) (scale /. 2.) (fails + 1)
  in
  go baseline 0 0 1.0 0
