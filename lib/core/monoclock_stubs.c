/* Monotonic time for deadline checks: CLOCK_MONOTONIC is immune to
   wall-clock steps (NTP slews, manual adjustments), so suite timeouts
   measure elapsed run time, never calendar time.  Falls back to the
   wall clock only if the monotonic clock is unavailable. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>
#include <stddef.h>

CAMLprim value contango_monoclock_now(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
