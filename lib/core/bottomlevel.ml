module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type result = {
  eval : Evaluator.t;
  rounds : int;
  downsized : int;
  snaked_wires : int;
}

(* Downsize sink wires whose per-sink slow-down slack affords the
   predicted impact, within slew headroom. [slacks]/[headrooms]/[sens]
   are precomputed by the round's plan (shared by the scale ladder's
   candidates). *)
let bottom_sizing_pass config tree ~slacks ~headrooms ~sens ~correction
    ~scale ~count =
  let factor = config.Config.damping *. scale in
  Array.iter
    (fun s ->
      let nd = Tree.node tree s in
      if nd.Tree.wire_class > 0 then begin
        let len = float_of_int (Tree.wire_len nd) in
        let impact = correction *. sens.Probes.size_delay.(s) *. len in
        let slew_impact = correction *. sens.Probes.size_slew.(s) *. len in
        let available = slacks.Slack.sink_slow.(s) *. factor in
        if impact > 0. && available > impact
           && slew_impact < 0.5 *. (headrooms.(s) -. 5.)
        then begin
          Tree.set_wire_class tree s (nd.Tree.wire_class - 1);
          incr count
        end
      end)
    (Tree.sinks tree)

let plan_arrays config tree eval =
  let slacks =
    Slack.combined ~multicorner:config.Config.multicorner_slacks tree eval
  in
  let headrooms = Probes.subtree_slew_headroom tree eval in
  let sens = Probes.sensitivities tree in
  (slacks, headrooms, sens)

let run config tree ~baseline =
  let tws, size_corr = Wiresizing.estimate_tws config tree ~baseline in
  let twn, snake_corr = Wiresnaking.estimate_twn config tree ~baseline in
  let downsized = ref 0 and snaked = ref 0 and dummy = ref 0 in
  let baseline, r1, _ =
    if tws > 0. then
      Ivc.adaptive_iterate config tree ~baseline ~objective:Ivc.Skew
        (fun t ev ->
          let slacks, headrooms, sens = plan_arrays config t ev in
          fun ~scale t ->
            bottom_sizing_pass config t ~slacks ~headrooms ~sens
              ~correction:size_corr ~scale ~count:downsized)
    else (baseline, 0, 0)
  in
  let eval, r2, _ =
    if twn > 0. then
      Ivc.adaptive_iterate config tree ~baseline ~objective:Ivc.Skew
        (fun t ev ->
          let slacks, headrooms, sens = plan_arrays config t ev in
          fun ~scale t ->
            Wiresnaking.bottom_pass config t ~slacks ~headrooms ~sens
              ~correction:snake_corr ~scale ~count:snaked ~added:dummy)
    else (baseline, 0, 0)
  in
  { eval; rounds = r1 + r2; downsized = !downsized; snaked_wires = !snaked }
