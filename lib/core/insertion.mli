(** Initial inverter insertion with sizing (paper §IV-C).

    The fast van Ginneken variant is launched with a sequence of composite
    buffer configurations, strongest first; the chosen solution is the
    strongest configuration that evaluates without slew violations while
    staying within (1 − γ) of the capacitance budget — the γ reserve pays
    for the downstream accurate optimizations. The per-configuration
    capacitance ceiling starts at the slew-free capacitance and shrinks
    adaptively when the accurate evaluation still reports slew
    violations. *)

type result = {
  tree : Ctree.Tree.t;
  buf : Tech.Composite.t;       (** the chosen composite configuration *)
  ceiling : float;              (** final load-cap ceiling used, fF *)
  eval : Analysis.Evaluator.t;  (** evaluation of the chosen tree *)
  tried : int;                  (** configurations attempted *)
  repair : Route.Repair.report option;
      (** obstacle-repair report for the chosen configuration *)
}

(** Composite configurations to try, strongest (most parallel devices)
    first: the non-dominated frontier of each library device at the
    config's counts. *)
val candidates : Config.t -> Tech.t -> Tech.Composite.t list

(** @raise Failure when no configuration yields a violation-free tree
    within the power budget (callers should widen [config] knobs).
    When [obstacles] are given, each configuration first repairs the tree
    with its own slew-free capacitance ({!Route.Repair}) and buffer
    positions inside obstacles are excluded from the dynamic program. *)
val run :
  ?obstacles:Geometry.Rect.t list -> Config.t -> Ctree.Tree.t -> result
