(** Stage-count equalisation.

    The paper's premise "source-to-sink paths contain practically the same
    numbers of buffers" (§IV-C) holds for van Ginneken on an
    Elmore-balanced tree, but the fast quantised variant can leave paths
    differing by a stage pair — roughly two gate delays of skew that no
    amount of wiresizing or snaking can recover within slew limits. This
    step inserts inverter pairs (parity-preserving) on the feed wires of
    maximal subtrees whose sinks all miss the same even number of stages,
    spacing the pair along the wire. *)

type report = {
  pairs_added : int;
  max_count : int;  (** target inverter count per path *)
}

(** Equalise in place. No-op on already balanced trees. Polarity must
    already be correct (deficits are even). *)
val equalize : Ctree.Tree.t -> buf:Tech.Composite.t -> report

(** Per-sink inverter counts (for tests): (min, max) over all sinks. *)
val count_range : Ctree.Tree.t -> int * int
