module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type t = {
  slow : float array;
  fast : float array;
  sink_slow : float array;
  sink_fast : float array;
  t_min : float;
  t_max : float;
}

let of_run tree (run : Evaluator.run) =
  let n = Tree.size tree in
  let sinks = Tree.sinks tree in
  let t_min = ref infinity and t_max = ref neg_infinity in
  Array.iter
    (fun s ->
      let l = run.Evaluator.latency.(s) in
      if not (Float.is_nan l) then begin
        if l < !t_min then t_min := l;
        if l > !t_max then t_max := l
      end)
    sinks;
  let sink_slow = Array.make n infinity and sink_fast = Array.make n infinity in
  Array.iter
    (fun s ->
      let l = run.Evaluator.latency.(s) in
      sink_slow.(s) <- !t_max -. l;
      sink_fast.(s) <- l -. !t_min)
    sinks;
  (* Lemma 1: edge slack = min over downstream sinks, one post-order
     pass. *)
  let slow = Array.make n infinity and fast = Array.make n infinity in
  Array.iter
    (fun s ->
      slow.(s) <- sink_slow.(s);
      fast.(s) <- sink_fast.(s))
    sinks;
  let order = Tree.post_order tree in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      if nd.Tree.parent >= 0 then begin
        let p = nd.Tree.parent in
        if slow.(i) < slow.(p) then slow.(p) <- slow.(i);
        if fast.(i) < fast.(p) then fast.(p) <- fast.(i)
      end)
    order;
  { slow; fast; sink_slow; sink_fast; t_min = !t_min; t_max = !t_max }

let combined ?(multicorner = false) tree (ev : Evaluator.t) =
  let nominal = (List.hd ev.Evaluator.runs).Evaluator.corner in
  (* Corners compare by name: runs whose corner record was rebuilt (e.g.
     round-tripped through a variation sweep) are still nominal runs —
     physical equality silently dropped them here. *)
  let runs =
    List.filter
      (fun (r : Evaluator.run) ->
        multicorner || Evaluator.corner_equal r.Evaluator.corner nominal)
      ev.Evaluator.runs
  in
  match List.map (of_run tree) runs with
  | [] -> invalid_arg "Slack.combined: no runs"
  | first :: rest ->
    List.fold_left
      (fun acc s ->
        let minimise a b = Array.iteri (fun i v -> if v < a.(i) then a.(i) <- v) b; a in
        {
          slow = minimise acc.slow s.slow;
          fast = minimise acc.fast s.fast;
          sink_slow = minimise acc.sink_slow s.sink_slow;
          sink_fast = minimise acc.sink_fast s.sink_fast;
          t_min = Float.min acc.t_min s.t_min;
          t_max = Float.max acc.t_max s.t_max;
        })
      first rest

let parent_slack arr tree id =
  let nd = Tree.node tree id in
  if nd.Tree.parent < 0 || nd.Tree.parent = Tree.root tree then 0.
  else arr.(nd.Tree.parent)

let delta_slow t tree id = Float.max 0. (t.slow.(id) -. parent_slack t.slow tree id)
let delta_fast t tree id = Float.max 0. (t.fast.(id) -. parent_slack t.fast tree id)
