open Geometry
module Tree = Ctree.Tree

type report = {
  trunk_buffers_before : int;
  trunk_buffers_after : int;
  trunk_length : int;
}

let trunk_chain tree =
  let rec walk id acc =
    let nd = Tree.node tree id in
    match (nd.Tree.kind, nd.Tree.children) with
    | (Tree.Sink _, _) | (_, ([] | _ :: _ :: _)) -> List.rev (id :: acc)
    | _, [ c ] -> walk c (id :: acc)
  in
  match (Tree.node tree (Tree.root tree)).Tree.children with
  | [ c ] -> walk c []
  | [] | _ :: _ :: _ -> []

let trunk_buffers tree =
  match trunk_chain tree with
  | [] -> []
  | chain ->
    let body = List.filteri (fun i _ -> i < List.length chain - 1) chain in
    List.filter
      (fun id ->
        match (Tree.node tree id).Tree.kind with
        | Tree.Buffer _ -> true
        | _ -> false)
      body

(* Concatenated embedding polyline of the whole trunk. *)
let trunk_polyline tree chain =
  let pts = ref [ (Tree.node tree (Tree.root tree)).Tree.pos ] in
  List.iter
    (fun id ->
      let nd = Tree.node tree id in
      let wire_pts =
        match nd.Tree.route with
        | [] ->
          let p = (Tree.node tree nd.Tree.parent).Tree.pos in
          let b = Segment.L.bend nd.Tree.bend p nd.Tree.pos in
          if Point.equal b p || Point.equal b nd.Tree.pos then [ nd.Tree.pos ]
          else [ b; nd.Tree.pos ]
        | route -> List.tl route
      in
      pts := List.rev_append wire_pts !pts)
    chain;
  List.rev !pts

let polyline_length pts =
  match pts with
  | [] | [ _ ] -> 0
  | first :: _ ->
    snd
      (List.fold_left
         (fun (prev, acc) p -> (p, acc + Point.dist prev p))
         (first, 0) pts)

(* Point at arc distance d, plus the polyline suffix from that point. *)
let split_at pts d =
  let rec walk prev remaining = function
    | [] -> (prev, [ prev ])
    | p :: rest ->
      let step = Point.dist prev p in
      if remaining <= step then begin
        let q =
          if step = 0 then p
          else
            let f a b = a + ((b - a) * remaining / step) in
            Point.make (f prev.Point.x p.Point.x) (f prev.Point.y p.Point.y)
        in
        (q, q :: (if Point.equal q p then rest else p :: rest))
      end
      else walk p (remaining - step) rest
  in
  match pts with
  | [] -> invalid_arg "split_at: empty polyline"
  | first :: rest -> walk first d rest

let respace tree ~ceiling =
  let chain = trunk_chain tree in
  let buffers = trunk_buffers tree in
  if buffers = [] || chain = [] then
    ( tree,
      { trunk_buffers_before = 0; trunk_buffers_after = 0; trunk_length = 0 } )
  else begin
    let tree = Tree.copy tree in
    let branch = Listx.last ~what:"Buffer_slide: trunk chain" chain in
    let composite =
      match (Tree.node tree (List.hd buffers)).Tree.kind with
      | Tree.Buffer b -> b
      | _ -> assert false
    in
    let wire_class = (Tree.node tree (List.hd chain)).Tree.wire_class in
    let polyline = trunk_polyline tree chain in
    let geom_total = polyline_length polyline in
    let elec_total =
      List.fold_left (fun acc id -> acc + Tree.wire_len (Tree.node tree id)) 0 chain
    in
    (* Interleave in pairs until every span's wire capacitance plus the
       next stage's input pin fits under the ceiling. *)
    let tech = Tree.tech tree in
    let wire = Tech.wire tech wire_class in
    let span_ok k =
      let span = float_of_int elec_total /. float_of_int (k + 1) in
      (wire.Tech.Wire.cap_per_nm *. span) +. Tech.Composite.c_in composite
      <= ceiling
    in
    let k = ref (List.length buffers) in
    while (not (span_ok !k)) && !k < List.length buffers + 32 do
      k := !k + 2
    done;
    let k = !k in
    (* Detach the old chain; rebuild an even chain along the polyline. *)
    Tree.detach tree branch;
    Tree.detach tree (List.hd chain);
    let parent = ref (Tree.root tree) in
    let remaining = ref polyline in
    let consumed = ref 0 in
    let span_elec = elec_total / (k + 1) in
    for i = 1 to k do
      let target = i * geom_total / (k + 1) in
      let pos, suffix = split_at !remaining (target - !consumed) in
      let id =
        Tree.add_node tree ~kind:(Tree.Buffer composite) ~pos ~parent:!parent
          ~wire_class ()
      in
      let nd = Tree.node tree id in
      if List.length suffix >= 1 then begin
        let prefix_pts =
          (* points from previous position to pos *)
          let rec take acc = function
            | p :: rest when not (Point.equal p pos) -> take (p :: acc) rest
            | _ -> List.rev (pos :: acc)
          in
          take [] !remaining
        in
        if List.length prefix_pts > 2 then Tree.set_route tree id prefix_pts
        else Tree.set_geom_len tree id (polyline_length prefix_pts)
      end;
      Tree.set_snake tree id (max 0 (span_elec - nd.Tree.geom_len));
      consumed := target;
      remaining := suffix;
      parent := id
    done;
    (* Final span: reattach the branch node along the rest of the
       polyline. *)
    Tree.reparent tree branch ~new_parent:!parent;
    let bn = Tree.node tree branch in
    if List.length !remaining > 2 then Tree.set_route tree branch !remaining
    else Tree.set_geom_len tree branch (polyline_length !remaining);
    Tree.set_snake tree branch
      (max 0 (elec_total - (k * span_elec) - bn.Tree.geom_len));
    Tree.set_wire_class tree branch wire_class;
    let tree, _ = Tree.compact tree in
    ( tree,
      {
        trunk_buffers_before = List.length buffers;
        trunk_buffers_after = k;
        trunk_length = elec_total;
      } )
  end
