external now : unit -> float = "contango_monoclock_now"
