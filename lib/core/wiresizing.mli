(** Iterative top-down wiresizing (paper §IV-E, Algorithm 1) — "TWSZ".

    A single probing evaluation estimates T_ws, the worst latency increase
    per nm of downsized wire, by downsizing a few independent mid-tree
    segments (the impact of sizing a short segment is linear because the
    affected R and C never share an RC term). Each round then walks the
    tree top-down carrying the slack already consumed on the path (RSlack)
    and downsizes every wire whose remaining slow-down slack exceeds the
    estimated impact. Rounds repeat until no improvement or a slew
    violation (IVC). *)

type result = {
  eval : Analysis.Evaluator.t;  (** evaluation after the last kept round *)
  rounds : int;                 (** accepted rounds *)
  downsized : int;
      (** downsize operations attempted across rounds (the final rejected
          round, if any, was rolled back) *)
  tws : float;                  (** estimated T_ws, ps per nm *)
}

(** Estimate with one extra evaluation (restores the tree): the pair
    (T_ws, correction) — the paper's scalar (worst per-nm latency
    increase) and the measured/predicted calibration factor for the
    per-edge sensitivities. (0, 1) when the technology has a single wire
    class. *)
val estimate_tws :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t -> float * float

(** Run TWSZ in place. *)
val run :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t -> result
