(** Iterative top-down wiresnaking (paper §IV-F) — "TWSN".

    One probing evaluation measures T_wn, the worst-case latency increase
    of snaking a wire by the unit length l_wn, and calibrates per-edge
    stage-aware Elmore sensitivities (see {!Probes.sensitivities}). Each
    round walks the tree top-down with inherited consumed-slack (RSlack)
    and consumed-slew budgets and snakes every wire with positive
    remaining slow-down slack — slowing the fast subtrees high in the tree
    where few modifications suffice. Rounds repeat under IVC until skew
    stops improving; rejected rounds retry at smaller scale. *)

type result = {
  eval : Analysis.Evaluator.t;
  rounds : int;
  snaked_wires : int;   (** snake operations attempted across rounds *)
  added_length : int;   (** snake wirelength attempted, nm *)
  twn : float;          (** measured worst per-unit latency increase, ps *)
}

(** Estimate with one extra evaluation (restores the tree): the pair
    (T_wn, correction) — the paper's scalar and the measured/predicted
    calibration factor applied to the per-edge sensitivities. *)
val estimate_twn :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t -> float * float

val run :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t -> result

(** One top-down snaking pass (no IVC) — exposed for experiments. *)
val topdown_pass :
  Config.t -> Ctree.Tree.t -> eval:Analysis.Evaluator.t -> correction:float ->
  scale:float -> count:int ref -> added:int ref -> unit

(** A single snaking pass over only the wires feeding sinks, driven by
    per-sink slacks — the wiresnaking half of bottom-level fine-tuning
    (§IV-G). Used by {!Bottomlevel}. *)
val bottom_pass :
  Config.t -> Ctree.Tree.t -> eval:Analysis.Evaluator.t -> correction:float ->
  scale:float -> count:int ref -> added:int ref -> unit
