(** Iterative top-down wiresnaking (paper §IV-F) — "TWSN".

    One probing evaluation measures T_wn, the worst-case latency increase
    of snaking a wire by the unit length l_wn, and calibrates per-edge
    stage-aware Elmore sensitivities (see {!Probes.sensitivities}). Each
    round walks the tree top-down with inherited consumed-slack (RSlack)
    and consumed-slew budgets and snakes every wire with positive
    remaining slow-down slack — slowing the fast subtrees high in the tree
    where few modifications suffice. Rounds repeat under IVC until skew
    stops improving; rejected rounds retry at smaller scale. *)

type result = {
  eval : Analysis.Evaluator.t;
  rounds : int;
  snaked_wires : int;   (** snake operations attempted across rounds *)
  added_length : int;   (** snake wirelength attempted, nm *)
  twn : float;          (** measured worst per-unit latency increase, ps *)
}

(** Estimate with one extra evaluation (journaled probe edits, O(edit)
    restore): the pair (T_wn, correction) — the paper's scalar and the
    measured/predicted calibration factor applied to the per-edge
    sensitivities. Probe count and minimum site length come from
    [config.probe_count] / [config.snake_probe_min_len]. *)
val estimate_twn :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t -> float * float

val run :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t -> result

(** One top-down snaking pass (no IVC) — exposed for experiments.
    [slacks], [headrooms] and [sens] are the per-round analyses
    ({!Slack.combined}, {!Probes.subtree_slew_headroom},
    {!Probes.sensitivities}), precomputed by the round's plan so the
    speculative candidates share them. *)
val topdown_pass :
  Config.t -> Ctree.Tree.t -> slacks:Slack.t -> headrooms:float array ->
  sens:Probes.sens -> correction:float -> scale:float -> count:int ref ->
  added:int ref -> unit

(** A single snaking pass over only the wires feeding sinks, driven by
    per-sink slacks — the wiresnaking half of bottom-level fine-tuning
    (§IV-G). Used by {!Bottomlevel}. Same precomputed-analysis contract
    as {!topdown_pass}. *)
val bottom_pass :
  Config.t -> Ctree.Tree.t -> slacks:Slack.t -> headrooms:float array ->
  sens:Probes.sens -> correction:float -> scale:float -> count:int ref ->
  added:int ref -> unit
