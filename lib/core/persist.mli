(** Crash-safe file I/O: atomic tmp + rename writes, with an optional
    FNV-1a checksum trailer for verified snapshots. Readers never see a
    torn file — only the old content or the complete new content. *)

(** 64-bit FNV-1a hash of a string. *)
val fnv1a : string -> int64

(** Injectable disk faults for chaos drills. An installed injector is
    consulted once per {!write_atomic} call and can fail it at any point
    a real crash can: mid-data-write (a torn temp file), at the fsync,
    or at the rename. Whatever the point, the module's atomicity
    contract holds — the destination keeps its old content and the temp
    file is removed. *)
type fault =
  | Fail_fsync   (** fsync fails: data may not be durable *)
  | Fail_rename  (** rename fails: the snapshot never lands *)
  | Torn_tmp     (** crash mid-write: only a prefix reaches the temp file *)

(** Raised by a faulted {!write_atomic} (after cleanup). *)
exception Injected_fault of fault

(** Short stable name of a fault class ("fsync" / "rename" / "torn-tmp"),
    for counters and logs. *)
val fault_name : fault -> string

(** Install a process-wide injector: called with the destination path of
    every atomic write; returning [Some fault] makes that write fail.
    The injector may be called from any domain — it must be
    thread-safe. *)
val set_fault_injector : (path:string -> fault option) -> unit

(** Remove the installed injector (no-op when none is installed). *)
val clear_fault_injector : unit -> unit

(** [mkdir_p dir] creates [dir] and its missing ancestors. *)
val mkdir_p : string -> unit

(** Write [content] to a temp file in [path]'s directory, fsync, and
    atomically rename it over [path] (creating directories as needed).
    On failure the temp file is removed and the old [path] is intact. *)
val write_atomic : string -> string -> unit

(** {!write_atomic} with a fixed-width ["#fnv1a %016Lx\n"] trailer
    appended, for {!read_checked}. *)
val write_atomic_checked : string -> string -> unit

(** Read a file written by {!write_atomic_checked}; verifies and strips
    the trailer. [Error] on I/O failure, missing trailer or checksum
    mismatch — never raises. *)
val read_checked : string -> (string, string) result
