(** Crash-safe file I/O: atomic tmp + rename writes, with an optional
    FNV-1a checksum trailer for verified snapshots. Readers never see a
    torn file — only the old content or the complete new content. *)

(** 64-bit FNV-1a hash of a string. *)
val fnv1a : string -> int64

(** [mkdir_p dir] creates [dir] and its missing ancestors. *)
val mkdir_p : string -> unit

(** Write [content] to a temp file in [path]'s directory, fsync, and
    atomically rename it over [path] (creating directories as needed).
    On failure the temp file is removed and the old [path] is intact. *)
val write_atomic : string -> string -> unit

(** {!write_atomic} with a fixed-width ["#fnv1a %016Lx\n"] trailer
    appended, for {!read_checked}. *)
val write_atomic_checked : string -> string -> unit

(** Read a file written by {!write_atomic_checked}; verifies and strips
    the trailer. [Error] on I/O failure, missing trailer or checksum
    mismatch — never raises. *)
val read_checked : string -> (string, string) result
