(** Slow-down and speed-up slacks (paper §III, Definitions 1–2).

    For a sink s: [Slack_slow s = Tmax − Ts] and [Slack_fast s = Ts −
    Tmin] — how much its latency may move without increasing skew. For an
    edge e, the slack is the minimum over its downstream sinks (Lemma 1,
    computed in O(n)); slacks are monotone non-decreasing down any
    root-to-sink path (Lemma 2). The Δ-decomposition of Proposition 1
    ([delta_slow]) gives the per-edge slow-down that would zero the skew.

    Rising/falling transitions (and optionally all corners) are combined
    by taking the per-edge minimum, per §III-B. *)

type t = {
  slow : float array;  (** node id → slow-down slack of its parent edge, ps *)
  fast : float array;  (** node id → speed-up slack of its parent edge, ps *)
  sink_slow : float array;  (** node id → sink slack (sinks only), ps *)
  sink_fast : float array;
  t_min : float;
  t_max : float;
}

(** Slacks from a single evaluation run. *)
val of_run : Ctree.Tree.t -> Analysis.Evaluator.run -> t

(** Per-edge minimum across runs: always both transitions at the nominal
    corner; all corners too when [multicorner] (default false). *)
val combined :
  ?multicorner:bool -> Ctree.Tree.t -> Analysis.Evaluator.t -> t

(** [delta_slow slacks tree id] = slack of [id]'s parent edge minus the
    slack of its parent's parent edge (0 at root edges) — the amount this
    edge itself should be slowed in the Proposition 1 decomposition. *)
val delta_slow : t -> Ctree.Tree.t -> int -> float

val delta_fast : t -> Ctree.Tree.t -> int -> float
