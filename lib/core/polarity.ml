module Tree = Ctree.Tree

type strategy = Per_sink | Top_then_per_sink | Minimal
type report = { inverted_before : int; added : int }

let wrongness tree =
  let inv = Tree.inversions tree in
  fun sink_id ->
    match (Tree.node tree sink_id).Tree.kind with
    | Tree.Sink s -> inv.(sink_id) land 1 <> s.Tree.parity land 1
    | _ -> invalid_arg "Polarity: not a sink"

let inverted_sinks tree =
  let wrong = wrongness tree in
  Tree.sinks tree |> Array.to_list |> List.filter wrong

(* Status of a subtree: do all its sinks share the same (current)
   correctness, and which? *)
type status = Uniform of bool (* wrong? *) | Mixed

let statuses tree =
  let wrong = wrongness tree in
  let n = Tree.size tree in
  let status = Array.make n Mixed in
  let order = Tree.post_order tree in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      match nd.Tree.kind with
      | Tree.Sink _ -> status.(i) <- Uniform (wrong i)
      | Tree.Source | Tree.Internal | Tree.Buffer _ ->
        status.(i) <-
          (match nd.Tree.children with
          | [] -> Mixed
          | first :: rest ->
            List.fold_left
              (fun acc c ->
                match (acc, status.(c)) with
                | Uniform a, Uniform b when a = b -> Uniform a
                | _ -> Mixed)
              status.(first) rest))
    order;
  status

(* Marked nodes of Proposition 2: uniformly-wrong subtrees whose parent's
   subtree is not uniform (or the root). *)
let minimal_marks tree =
  let status = statuses tree in
  let marks = ref [] in
  Tree.iter tree (fun nd ->
      let i = nd.Tree.id in
      match status.(i) with
      | Uniform true ->
        let parent_uniform =
          nd.Tree.parent >= 0
          &&
          match status.(nd.Tree.parent) with Uniform _ -> true | Mixed -> false
        in
        if not parent_uniform then marks := i :: !marks
      | Uniform false | Mixed -> ());
  List.rev !marks

let minimal_count tree = List.length (minimal_marks tree)

(* Insert an inverter in series immediately above [id]. *)
let insert_above tree id buf =
  let nd = Tree.node tree id in
  ignore (Tree.insert_buffer_on_wire tree id ~at:nd.Tree.geom_len ~buf)

(* Inverter right at the source output (top of the tree). *)
let insert_at_top tree buf =
  match (Tree.node tree (Tree.root tree)).Tree.children with
  | [] -> invalid_arg "Polarity: empty tree"
  | first :: _ -> ignore (Tree.insert_buffer_on_wire tree first ~at:0 ~buf)

let correct tree ~buf ~strategy =
  if not (Tech.Composite.inverting buf) then
    invalid_arg "Polarity.correct: buffer must invert";
  let inverted_before = List.length (inverted_sinks tree) in
  let added = ref 0 in
  let patch_sinks () =
    List.iter
      (fun s ->
        insert_above tree s buf;
        incr added)
      (inverted_sinks tree)
  in
  (match strategy with
  | Per_sink -> patch_sinks ()
  | Top_then_per_sink ->
    let n = Array.length (Tree.sinks tree) in
    if 2 * inverted_before > n then begin
      insert_at_top tree buf;
      incr added
    end;
    patch_sinks ()
  | Minimal ->
    List.iter
      (fun id ->
        (* A uniformly-wrong whole tree marks the root, which has no
           parent wire: the inverter goes right below the source. *)
        if id = Tree.root tree then insert_at_top tree buf
        else insert_above tree id buf;
        incr added)
      (minimal_marks tree));
  { inverted_before; added = !added }
