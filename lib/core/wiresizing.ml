module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type result = {
  eval : Evaluator.t;
  rounds : int;
  downsized : int;
  tws : float;
}

(* Probe calibration for downsizing: downsize a few independent mid-tree
   wires, evaluate once, compare against the Elmore sensitivity
   prediction. Returns (tws, correction) — the paper's scalar (worst
   per-nm latency increase) and the calibration factor for the per-edge
   sensitivities. The probe edits run under a journal: the evaluation
   gets a dirty hint and the restore is an O(edit) rollback reported to
   the session, so the calibration does not break its anchor chain. *)
let estimate_tws config tree ~baseline =
  if Array.length (Tree.tech tree).Tech.wires < 2 then (0., 1.)
  else begin
    let probes =
      Probes.pick_probes tree ~count:config.Config.probe_count
        ~min_len:config.Config.size_probe_min_len
        ~eligible:(fun nd -> nd.Tree.wire_class > 0)
    in
    if probes = [] then (0., 1.)
    else begin
      let sens = Probes.sensitivities tree in
      let j = Tree.Journal.start tree in
      match
        List.iter
          (fun id ->
            let nd = Tree.node tree id in
            Tree.set_wire_class tree id (nd.Tree.wire_class - 1))
          probes;
        Ivc.evaluate ~journal:j config tree
      with
      | exception e ->
        (try Ivc.rollback config tree j
         with Invalid_argument _ -> Tree.Journal.abandon j);
        raise e
      | after ->
        let tws = ref 0. and ratio_sum = ref 0. and ratio_n = ref 0 in
        List.iter
          (fun id ->
            let len = float_of_int (Tree.wire_len (Tree.node tree id)) in
            if len > 0. then begin
              let measured =
                Probes.worst_increase tree ~before:baseline ~after id
              in
              let predicted = sens.Probes.size_delay.(id) *. len in
              if measured > 0. then tws := Float.max !tws (measured /. len);
              if predicted > 1e-6 && measured > 0. then begin
                ratio_sum := !ratio_sum +. (measured /. predicted);
                incr ratio_n
              end
            end)
          probes;
        Ivc.rollback config tree j;
        let correction =
          if !ratio_n = 0 then 1.
          else Float.min 4. (Float.max 0.5 (!ratio_sum /. float_of_int !ratio_n))
        in
        (!tws, correction)
    end
  end

(* One top-down pass of Algorithm 1: downsize wires whose slow-down slack
   net of inherited RSlack exceeds the per-edge predicted impact, subject
   to the remaining slew headroom of their subtree. [slacks], [headrooms]
   and [sens] are precomputed by the round's plan on the un-mutated tree
   (ids are shared with any content-identical replica this pass runs
   on). *)
let downsizing_pass config tree ~slacks ~headrooms ~sens ~correction ~scale
    ~count =
  let factor = config.Config.damping *. scale in
  let queue = Queue.create () in
  List.iter
    (fun c -> Queue.add (c, 0., 0.) queue)
    (Tree.node tree (Tree.root tree)).Tree.children;
  while not (Queue.is_empty queue) do
    let id, rslack, rslew = Queue.pop queue in
    let nd = Tree.node tree id in
    let rslack, rslew =
      if nd.Tree.wire_class > 0 then begin
        let len = float_of_int (Tree.wire_len nd) in
        let impact = correction *. sens.Probes.size_delay.(id) *. len in
        let slew_impact = correction *. sens.Probes.size_slew.(id) *. len in
        let available = (slacks.Slack.slow.(id) -. rslack) *. factor in
        if impact > 0. && available > impact
           && slew_impact < 0.5 *. (headrooms.(id) -. rslew -. 5.)
        then begin
          Tree.set_wire_class tree id (nd.Tree.wire_class - 1);
          incr count;
          (rslack +. impact, rslew +. slew_impact)
        end
        else (rslack, rslew)
      end
      else (rslack, rslew)
    in
    List.iter (fun c -> Queue.add (c, rslack, rslew) queue) nd.Tree.children
  done

let run config tree ~baseline =
  let tws, correction = estimate_tws config tree ~baseline in
  if tws <= 0. then { eval = baseline; rounds = 0; downsized = 0; tws }
  else begin
    let count = ref 0 in
    let eval, rounds, _attempts =
      Ivc.adaptive_iterate config tree ~baseline ~objective:Ivc.Skew
        (fun t ev ->
          (* Planned once per round: the O(n) analyses run on the main
             tree; the scale ladder's candidates only replay the walk. *)
          let slacks =
            Slack.combined ~multicorner:config.Config.multicorner_slacks t ev
          in
          let headrooms = Probes.subtree_slew_headroom t ev in
          let sens = Probes.sensitivities t in
          fun ~scale t ->
            downsizing_pass config t ~slacks ~headrooms ~sens ~correction
              ~scale ~count)
    in
    { eval; rounds; downsized = !count; tws }
  end
