(* Shared machinery for the ad-hoc linear models of §IV-E/F: pick a few
   independent mid-tree wires, perturb them, run ONE evaluation, and
   measure the worst per-unit latency increase over downstream sinks. *)

module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

let depths tree =
  let n = Tree.size tree in
  let d = Array.make n 0 in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      if nd.Tree.parent >= 0 then d.(i) <- d.(nd.Tree.parent) + 1)
    (Tree.topo_order tree);
  d

(* Up to [count] wires near the middle depth of the tree, pairwise
   independent (no ancestor relation), each of length >= min_len and
   satisfying [eligible]. *)
let pick_probes tree ~count ~min_len ~eligible =
  let d = depths tree in
  let max_depth = Array.fold_left max 0 d in
  let mid = max_depth / 2 in
  let cands = ref [] in
  Tree.iter tree (fun nd ->
      if nd.Tree.parent >= 0 && nd.Tree.geom_len >= min_len && eligible nd then
        cands := (abs (d.(nd.Tree.id) - mid), nd.Tree.id) :: !cands);
  let sorted =
    List.sort
      (fun (a, i) (b, j) -> if a <> b then Int.compare a b else Int.compare i j)
      !cands
  in
  (* Greedily keep ids with disjoint subtrees: reject any id that is an
     ancestor or descendant of an already-kept one. *)
  let ancestor_of a b =
    (* is a an ancestor of b? *)
    let rec up i = if i < 0 then false else if i = a then true else up (Tree.node tree i).Tree.parent in
    up b
  in
  let kept = ref [] in
  List.iter
    (fun (_, id) ->
      if List.length !kept < count
         && not
              (List.exists
                 (fun k -> ancestor_of k id || ancestor_of id k)
                 !kept)
      then kept := id :: !kept)
    sorted;
  !kept

(* Worst latency increase per downstream sink of [id], across the nominal
   rise/fall runs, between [before] and [after]. *)
let worst_increase_of field tree ~before ~after id =
  let sinks = Tree.subtree_sinks tree id in
  let per_run (b : Evaluator.run) (a : Evaluator.run) =
    List.fold_left
      (fun acc s ->
        let d = field a s -. field b s in
        if Float.is_nan d then acc else Float.max acc d)
      0. sinks
  in
  let br = Evaluator.nominal_run before Evaluator.Rise in
  let bf = Evaluator.nominal_run before Evaluator.Fall in
  let ar = Evaluator.nominal_run after Evaluator.Rise in
  let af = Evaluator.nominal_run after Evaluator.Fall in
  Float.max (per_run br ar) (per_run bf af)

let worst_increase tree ~before ~after id =
  worst_increase_of
    (fun (r : Evaluator.run) s -> r.Evaluator.latency.(s))
    tree ~before ~after id

let worst_slew_increase tree ~before ~after id =
  worst_increase_of
    (fun (r : Evaluator.run) s -> r.Evaluator.slew.(s))
    tree ~before ~after id

(* Per-edge first-order sensitivities under the Elmore model, stage-aware:
   buffers regenerate the signal, so added RC at an edge only matters
   within its stage — through the resistance from the stage driver down to
   the edge (Rup) and the stage-limited downstream capacitance (Cdown).
   Per nm of ADDED wire at the edge: d(delay) = k·(r·Cdown + Rup·c);
   downsizing swaps (r, c) for (Δr, Δc). Slews at the stage taps move
   proportionally (ln9/ln2 ≈ 3.17 × the delay shift of the tap's time
   constant). The probing evaluation calibrates a global correction on top
   of these shapes. *)
type sens = {
  snake_delay : float array;  (* ps per nm of snake at edge i *)
  snake_slew : float array;
  size_delay : float array;   (* ps per nm of downsized wire at edge i *)
  size_slew : float array;
  cdown : float array;        (* stage-limited downstream cap at node i, fF *)
  rup : float array;          (* resistance from stage driver to node i, Ω *)
}

let slew_per_delay = Tech.Units.ln9 /. log 2.

let sensitivities tree =
  let tech = Tree.tech tree in
  let n = Tree.size tree in
  let k = Tech.Units.rc_to_ps in
  (* Stage-limited downstream cap below each node. *)
  let cdown = Array.make n 0. in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      let own =
        match nd.Tree.kind with
        | Tree.Sink s -> s.Tree.cap
        | Tree.Buffer b -> Tech.Composite.c_in b
        | Tree.Source | Tree.Internal -> 0.
      in
      let below =
        match nd.Tree.kind with
        | Tree.Buffer _ -> 0.  (* next stage is regenerated *)
        | _ -> cdown.(i)
      in
      let total = own +. below in
      if nd.Tree.parent >= 0 then
        cdown.(nd.Tree.parent) <-
          cdown.(nd.Tree.parent) +. total +. Tree.wire_cap tree nd)
    (Tree.post_order tree);
  (* Resistance from the stage driver down to each node (driver output
     resistance included). *)
  let rup = Array.make n 0. in
  let driver_r nd =
    match nd.Tree.kind with
    | Tree.Source -> tech.Tech.source_r
    | Tree.Buffer b -> Tech.Composite.r_out b
    | Tree.Internal | Tree.Sink _ -> 0.
  in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      if nd.Tree.parent >= 0 then begin
        let pn = Tree.node tree nd.Tree.parent in
        let base =
          match pn.Tree.kind with
          | Tree.Source | Tree.Buffer _ -> driver_r pn
          | Tree.Internal | Tree.Sink _ -> rup.(nd.Tree.parent)
        in
        let wire = Tree.wire_of tree nd in
        rup.(i) <- base +. Tech.Wire.res wire (Tree.wire_len nd)
      end)
    (Tree.topo_order tree);
  let snake_delay = Array.make n 0. and snake_slew = Array.make n 0. in
  let size_delay = Array.make n 0. and size_slew = Array.make n 0. in
  let narrow_exists = Array.length tech.Tech.wires >= 2 in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      if nd.Tree.parent >= 0 then begin
        let wire = Tree.wire_of tree nd in
        let r = wire.Tech.Wire.res_per_nm and c = wire.Tech.Wire.cap_per_nm in
        let dd = k *. ((r *. cdown.(i)) +. (rup.(i) *. c)) in
        snake_delay.(i) <- dd;
        snake_slew.(i) <- slew_per_delay *. dd;
        if narrow_exists && nd.Tree.wire_class > 0 then begin
          let narrow = Tech.wire tech (nd.Tree.wire_class - 1) in
          let dr = narrow.Tech.Wire.res_per_nm -. r in
          let dc = narrow.Tech.Wire.cap_per_nm -. c in
          let len = float_of_int (Tree.wire_len nd) in
          let rup_mid = rup.(i) -. (r *. len /. 2.) in
          let dsz =
            k *. ((dr *. (cdown.(i) +. (c *. len /. 2.))) +. (rup_mid *. dc))
          in
          size_delay.(i) <- dsz;
          (* Downsizing raises R (slew up) and lowers C (slew down);
             charge only the pessimistic R term against headroom. *)
          size_slew.(i) <- slew_per_delay *. k *. dr *. cdown.(i)
        end
      end)
    (Tree.topo_order tree);
  { snake_delay; snake_slew; size_delay; size_slew; cdown; rup }

(* Per-node slew headroom: the slew limit minus the worst slew at any tap
   of the node's OWN stage below it — sinks and buffer inputs reachable
   without crossing a buffer. Buffers regenerate the edge, so a
   slew-critical tap deep in the tree does not constrain wires above its
   driver. *)
let subtree_slew_headroom tree (eval : Evaluator.t) =
  let n = Tree.size tree in
  let own = Array.make n 0. in
  List.iter
    (fun (r : Evaluator.run) ->
      Array.iteri
        (fun i s ->
          if i < n && (not (Float.is_nan s)) && s > own.(i) then own.(i) <- s)
        r.Evaluator.slew)
    eval.Evaluator.runs;
  let worst = Array.copy own in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      if nd.Tree.parent >= 0 then begin
        (* A buffer contributes only its input-tap slew upward; its
           subtree belongs to the next stage. *)
        let contribution =
          match nd.Tree.kind with
          | Tree.Buffer _ -> own.(i)
          | Tree.Source | Tree.Internal | Tree.Sink _ -> worst.(i)
        in
        if contribution > worst.(nd.Tree.parent) then
          worst.(nd.Tree.parent) <- contribution
      end)
    (Tree.post_order tree);
  let limit = (Tree.tech tree).Tech.slew_limit in
  Array.map (fun w -> limit -. w) worst
