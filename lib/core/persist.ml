(* Crash-safe file I/O: write to a temp file in the target directory,
   fsync, then rename over the destination. POSIX rename is atomic within
   a filesystem, so readers only ever observe the old content or the
   complete new content — never a torn write. The checksummed variants
   add a trailing FNV-1a line so a reader can also reject snapshots from
   a crashed-then-restarted writer whose rename did land but whose
   content was produced from corrupted in-memory state. *)

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_atomic path content =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  (try
     output_string oc content;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(* The trailer is fixed-width ("#fnv1a " + 16 hex digits + \n = 24
   bytes) so [read_checked] can strip it without parsing the payload. *)
let trailer content = Printf.sprintf "#fnv1a %016Lx\n" (fnv1a content)

let write_atomic_checked path content =
  write_atomic path (content ^ trailer content)

let read_checked path =
  match
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  with
  | exception Sys_error e -> Error e
  | raw ->
    let n = String.length raw in
    if n < 24 then Error (path ^ ": too short for a checksum trailer")
    else begin
      let content = String.sub raw 0 (n - 24) in
      let tr = String.sub raw (n - 24) 24 in
      if tr = trailer content then Ok content
      else Error (path ^ ": checksum mismatch")
    end
