(* Crash-safe file I/O: write to a temp file in the target directory,
   fsync, then rename over the destination. POSIX rename is atomic within
   a filesystem, so readers only ever observe the old content or the
   complete new content — never a torn write. The checksummed variants
   add a trailing FNV-1a line so a reader can also reject snapshots from
   a crashed-then-restarted writer whose rename did land but whose
   content was produced from corrupted in-memory state. *)

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

(* Chaos drills ask "what does a dying disk do to the daemon?" without a
   dying disk: an installed injector is consulted once per atomic write
   and can make that write fail at any of the three points a real crash
   can hit — the data write itself (leaving a torn temp file), the
   fsync, or the rename. The injector runs process-wide (persistence is
   a process-wide resource) and the contract it must uphold is the
   module's own: the destination keeps its old content whenever the
   write fails, whichever point failed. *)

type fault =
  | Fail_fsync   (* fsync raises EIO: data may not be durable *)
  | Fail_rename  (* rename raises: the snapshot never lands *)
  | Torn_tmp     (* the process "dies" mid-write: half the bytes land *)

exception Injected_fault of fault

let fault_name = function
  | Fail_fsync -> "fsync"
  | Fail_rename -> "rename"
  | Torn_tmp -> "torn-tmp"

let injector : (path:string -> fault option) option Atomic.t =
  Atomic.make None

let set_fault_injector f = Atomic.set injector (Some f)
let clear_fault_injector () = Atomic.set injector None

let injected_fault ~path =
  match Atomic.get injector with None -> None | Some f -> f ~path

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_atomic path content =
  let fault = injected_fault ~path in
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  (try
     (match fault with
     | Some Torn_tmp ->
       (* A crash mid-write: only a prefix reaches the temp file, and
          nothing after it runs. The cleanup below still removes the
          torn file; what matters is that [path] never sees it. *)
       output_string oc (String.sub content 0 (String.length content / 2));
       flush oc;
       raise (Injected_fault Torn_tmp)
     | Some _ | None -> output_string oc content);
     flush oc;
     (match fault with
     | Some Fail_fsync -> raise (Injected_fault Fail_fsync)
     | _ -> Unix.fsync (Unix.descr_of_out_channel oc));
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  match fault with
  | Some Fail_rename ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise (Injected_fault Fail_rename)
  | _ -> (
    try Sys.rename tmp path
    with e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e)

(* The trailer is fixed-width ("#fnv1a " + 16 hex digits + \n = 24
   bytes) so [read_checked] can strip it without parsing the payload. *)
let trailer content = Printf.sprintf "#fnv1a %016Lx\n" (fnv1a content)

let write_atomic_checked path content =
  write_atomic path (content ^ trailer content)

let read_checked path =
  match
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  with
  | exception Sys_error e -> Error e
  | raw ->
    let n = String.length raw in
    if n < 24 then Error (path ^ ": too short for a checksum trailer")
    else begin
      let content = String.sub raw 0 (n - 24) in
      let tr = String.sub raw (n - 24) 24 in
      if tr = trailer content then Ok content
      else Error (path ^ ": checksum mismatch")
    end
