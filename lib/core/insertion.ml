module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type result = {
  tree : Tree.t;
  buf : Tech.Composite.t;
  ceiling : float;
  eval : Evaluator.t;
  tried : int;
  repair : Route.Repair.report option;
}

let candidates config tech =
  let composites =
    List.concat_map
      (fun d ->
        List.map
          (fun count -> Tech.Composite.make d count)
          config.Config.composite_counts)
      tech.Tech.devices
  in
  (* Non-dominated under (c_in, r_out); then strongest first. *)
  Tech.Composite.non_dominated composites
  |> List.sort (fun a b ->
         Float.compare (Tech.Composite.r_out a) (Tech.Composite.r_out b))

let run ?(obstacles = []) config tree =
  let tech = Tree.tech tree in
  let budget = (1. -. config.Config.gamma) *. tech.Tech.cap_limit in
  let evaluate t =
    Evaluator.evaluate ~engine:config.Config.engine
      ~seg_len:config.Config.seg_len t
  in
  let forbidden =
    match obstacles with
    | [] -> fun _ -> false
    | _ ->
      let compounds = Route.Obstacle.compounds obstacles in
      fun p -> List.exists (fun c -> Route.Obstacle.inside c p) compounds
  in
  let tried = ref 0 in
  let try_config buf =
    (* Obstacle repair is configuration-dependent: the slew-free
       capacitance that decides which subtrees need contour detours
       belongs to the composite being tried (Fig. 1's feedback between
       repair and insertion). *)
    let tree, repair =
      match obstacles with
      | [] -> (tree, None)
      | _ ->
        let drivable_cap =
          Float.min
            (Route.Slewcap.lumped ~tech ~buf ())
            (Route.Slewcap.wire_aware ~tech ~buf ())
        in
        let repaired, report = Route.Repair.run tree ~obstacles ~drivable_cap in
        (repaired, Some report)
    in
    (* Adaptive ceiling: shrink while the accurate evaluation still sees
       slew violations (the Elmore-level ceiling is optimistic on long
       resistive wires). *)
    let rec attempt ceiling retries =
      incr tried;
      match
        Buffering.Fast_vg.insert tree ~buf ~step:config.Config.vg_step
          ?buckets:config.Config.vg_buckets ~forbidden ~cap_ceiling:ceiling ()
      with
      | exception Buffering.Fast_vg.Infeasible _ -> None
      | buffered ->
        let ev = evaluate buffered in
        let worst =
          List.fold_left
            (fun acc (r : Evaluator.run) -> Float.max acc r.Evaluator.worst_slew)
            0. ev.Evaluator.runs
        in
        let headroom_ok =
          worst
          <= (1. -. config.Config.slew_margin) *. tech.Tech.slew_limit
        in
        if ev.Evaluator.slew_violations = 0 && headroom_ok then
          if ev.Evaluator.stats.Ctree.Stats.total_cap <= budget then
            Some (buffered, ceiling, ev)
          else None (* too much capacitance: configuration too strong *)
        else if retries > 0 then attempt (ceiling *. 0.7) (retries - 1)
        else None
    in
    let seed_ceiling =
      Float.min
        (Route.Slewcap.lumped ~tech ~buf ())
        (Route.Slewcap.wire_aware ~tech ~buf ())
    in
    match attempt seed_ceiling 8 with
    | Some (buffered, ceiling, ev) -> Some (buffered, ceiling, ev, repair)
    | None -> None
  in
  let rec sweep = function
    | [] ->
      failwith
        "Insertion.run: no composite configuration fits the slew and power \
         constraints"
    | buf :: rest ->
      (match try_config buf with
      | Some (buffered, ceiling, ev, repair) ->
        { tree = buffered; buf; ceiling; eval = ev; tried = !tried; repair }
      | None -> sweep rest)
  in
  sweep (candidates config tech)
