module Tree = Ctree.Tree

type report = { pairs_added : int; max_count : int }

let count_range tree =
  let inv = Tree.inversions tree in
  Array.fold_left
    (fun (lo, hi) s -> (min lo inv.(s), max hi inv.(s)))
    (max_int, min_int) (Tree.sinks tree)

(* Per-node (min, max) inverter count over the sinks below; (max_int,
   min_int) marks nodes with no sinks. *)
let subtree_ranges tree =
  let inv = Tree.inversions tree in
  let n = Tree.size tree in
  let lo = Array.make n max_int and hi = Array.make n min_int in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      (match nd.Tree.kind with
      | Tree.Sink _ ->
        lo.(i) <- inv.(i);
        hi.(i) <- inv.(i)
      | _ -> ());
      if nd.Tree.parent >= 0 then begin
        let p = nd.Tree.parent in
        if lo.(i) < lo.(p) then lo.(p) <- lo.(i);
        if hi.(i) > hi.(p) then hi.(p) <- hi.(i)
      end)
    (Tree.post_order tree);
  (lo, hi)

(* Strength needed to drive [load] fF within slew limits, in parallel
   copies of [base]: one device handles roughly the wire-aware slew-free
   capacitance of a single inverter. *)
let pair_composite tree ~buf load =
  let tech = Tree.tech tree in
  let base = buf.Tech.Composite.base in
  let unit_drive =
    Float.max 20. (Route.Slewcap.wire_aware ~tech ~buf:(Tech.Composite.make base 1) ())
  in
  let by_load = int_of_float (Float.round (0.5 +. (load /. unit_drive))) in
  (* Floor at half the main composite: under-strength pairs become
     slew-pinned stages the wire optimizers then cannot slow past. *)
  let count = max by_load (buf.Tech.Composite.count / 2) in
  Tech.Composite.make base (max 1 (min buf.Tech.Composite.count count))

let equalize tree ~buf =
  let tech = Tree.tech tree in
  let pairs = ref 0 in
  let target = ref 0 in
  let continue = ref true in
  (* Each sweep fixes the currently-maximal uniform-deficit subtrees; the
     loop terminates because every sweep strictly raises the global
     minimum count. Stops early when the capacitance budget is spent —
     partial balance is recoverable by the wire optimizations, a blown
     budget is not. *)
  let guard = ref 0 in
  while !continue && !guard < 64 do
    incr guard;
    let lo, hi = subtree_ranges tree in
    let _, global_hi = count_range tree in
    target := global_hi;
    let marks = ref [] in
    Tree.iter tree (fun nd ->
        let i = nd.Tree.id in
        if
          nd.Tree.parent >= 0 && hi.(i) > min_int && lo.(i) = hi.(i)
          && global_hi - hi.(i) >= 2
          &&
          (* parent subtree is not uniformly deficient by the same amount *)
          let p = nd.Tree.parent in
          not (lo.(p) = hi.(p) && lo.(p) = lo.(i))
        then marks := (i, global_hi - hi.(i)) :: !marks);
    (* Largest deficits first: they contribute the most unfixable skew per
       picofarad of added inverters. *)
    let marks_list =
      List.sort (fun (_, a) (_, b) -> Int.compare b a) !marks
    in
    (match marks_list with
    | [] -> continue := false
    | _ ->
      let sens = Probes.sensitivities tree in
      let progressed = ref false in
      List.iter
        (fun (id, deficit) ->
          let headroom =
            tech.Tech.cap_limit
            -. (Ctree.Stats.compute tree).Ctree.Stats.total_cap
          in
          let deficit = deficit - (deficit mod 2) in
          let load =
            sens.Probes.cdown.(id) +. Tree.wire_cap tree (Tree.node tree id)
          in
          let pair_buf = pair_composite tree ~buf load in
          let pair_cost =
            float_of_int deficit
            *. (Tech.Composite.c_in pair_buf +. Tech.Composite.c_out pair_buf)
          in
          if pair_cost < 0.98 *. headroom then begin
            let nd = Tree.node tree id in
            let len = nd.Tree.geom_len in
            (* Spread the new inverters along the feed wire, deepest first
               so each insertion splits the remaining upper span. *)
            let target_node = ref id in
            for j = deficit downto 1 do
              let at = len * j / (deficit + 1) in
              let at = min at (Tree.node tree !target_node).Tree.geom_len in
              target_node :=
                Tree.insert_buffer_on_wire tree !target_node ~at ~buf:pair_buf
            done;
            pairs := !pairs + (deficit / 2);
            progressed := true
          end)
        marks_list;
      if not !progressed then continue := false)
  done;
  { pairs_added = !pairs; max_count = !target }
