module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type result = {
  eval : Evaluator.t;
  rounds : int;
  snaked_wires : int;
  added_length : int;
  twn : float;
}

(* Probe calibration: snake a few independent mid-tree wires by one unit,
   evaluate once, and compare the measured latency increases against the
   Elmore sensitivity prediction. Returns (twn, correction): twn is the
   paper's scalar (worst per-unit latency increase, for reporting), and
   [correction] scales the per-edge sensitivities — clamped to [0.5, 4] so
   a noisy probe cannot disable the optimizer. The probe edits run under a
   journal so the evaluation gets a dirty hint and the restore is an
   O(edit) rollback reported to the session. *)
let estimate_twn config tree ~baseline =
  let unit = config.Config.snake_unit in
  let probes =
    Probes.pick_probes tree ~count:config.Config.probe_count
      ~min_len:config.Config.snake_probe_min_len ~eligible:(fun _ -> true)
  in
  match probes with
  | [] -> (0., 1.)
  | _ ->
    let sens = Probes.sensitivities tree in
    let j = Tree.Journal.start tree in
    (match
       List.iter
         (fun id ->
           let nd = Tree.node tree id in
           Tree.set_snake tree id (nd.Tree.snake + unit))
         probes;
       Ivc.evaluate ~journal:j config tree
     with
    | exception e ->
      (try Ivc.rollback config tree j
       with Invalid_argument _ -> Tree.Journal.abandon j);
      raise e
    | after ->
      let twn = ref 0. and ratio_sum = ref 0. and ratio_n = ref 0 in
      List.iter
        (fun id ->
          let measured =
            Probes.worst_increase tree ~before:baseline ~after id
          in
          let predicted = sens.Probes.snake_delay.(id) *. float_of_int unit in
          if measured > 0. then twn := Float.max !twn measured;
          if predicted > 1e-6 && measured > 0. then begin
            ratio_sum := !ratio_sum +. (measured /. predicted);
            incr ratio_n
          end)
        probes;
      Ivc.rollback config tree j;
      let correction =
        if !ratio_n = 0 then 1.
        else Float.min 4. (Float.max 0.5 (!ratio_sum /. float_of_int !ratio_n))
      in
      (!twn, correction))

(* Snaking units for one wire given the remaining slack budget [available]
   (ps) and the remaining slew headroom of its subtree (ps). Applies the
   snake; returns (units, delay consumed, slew consumed). *)
let snake_wire config tree nd ~available ~factor ~correction ~sens ~headroom =
  let unit = config.Config.snake_unit in
  let id = nd.Tree.id in
  let dd = correction *. sens.Probes.snake_delay.(id) *. float_of_int unit in
  let ds = correction *. sens.Probes.snake_slew.(id) *. float_of_int unit in
  (* Absolute safety floor: the linear slew model can underestimate by a
     small factor; never spend the last few ps of headroom. *)
  let headroom = headroom -. 5. in
  if dd <= 1e-9 then (0, 0., 0.)
  else begin
    let max_units = config.Config.max_snake_per_round / unit in
    let slew_units =
      if ds <= 0. then max_units else int_of_float (0.5 *. headroom /. ds)
    in
    let units = int_of_float (available *. factor /. dd) in
    let units = max 0 (min (min units max_units) slew_units) in
    if units = 0 then (0, 0., 0.)
    else begin
      Tree.set_snake tree id (nd.Tree.snake + (units * unit));
      (units, float_of_int units *. dd, float_of_int units *. ds)
    end
  end

(* [slacks], [headrooms] and [sens] are precomputed by the round's plan on
   the un-mutated main tree; node ids are shared with any
   content-identical replica this pass mutates. [count]/[added] are
   attempt telemetry (every explored candidate counts, as before). *)
let topdown_pass config tree ~slacks ~headrooms ~sens ~correction ~scale
    ~count ~added =
  let factor = config.Config.damping *. scale in
  let queue = Queue.create () in
  List.iter
    (fun c -> Queue.add (c, 0., 0.) queue)
    (Tree.node tree (Tree.root tree)).Tree.children;
  while not (Queue.is_empty queue) do
    let id, rslack, rslew = Queue.pop queue in
    let nd = Tree.node tree id in
    let available = slacks.Slack.slow.(id) -. rslack in
    let units, dcons, scons =
      if available > 0. then
        snake_wire config tree nd ~available ~factor ~correction ~sens
          ~headroom:(headrooms.(id) -. rslew)
      else (0, 0., 0.)
    in
    if units > 0 then begin
      incr count;
      added := !added + (units * config.Config.snake_unit)
    end;
    List.iter
      (fun c -> Queue.add (c, rslack +. dcons, rslew +. scons) queue)
      nd.Tree.children
  done

let bottom_pass config tree ~slacks ~headrooms ~sens ~correction ~scale
    ~count ~added =
  let factor = config.Config.damping *. scale in
  Array.iter
    (fun s ->
      let nd = Tree.node tree s in
      let available = slacks.Slack.sink_slow.(s) in
      if available > 0. then begin
        let units, _, _ =
          snake_wire config tree nd ~available ~factor ~correction ~sens
            ~headroom:headrooms.(s)
        in
        if units > 0 then begin
          incr count;
          added := !added + (units * config.Config.snake_unit)
        end
      end)
    (Tree.sinks tree)

(* Slew-recovery round: when fast sinks still hold slow-down slack but
   their wires are slew-pinned (tap slew at the limit), strengthen the
   stage driver — recovering headroom — and immediately re-snake in the
   same IVC round (upsizing alone would speed the subtree up and be
   rejected). Self-contained (runs entirely inside the candidate closure):
   the re-snaking sensitivities must be computed {e after} the upsizing. *)
let recovery_pass config tree ~eval ~correction ~scale ~count ~added =
  let tech = Tree.tech tree in
  let slacks =
    Slack.combined ~multicorner:config.Config.multicorner_slacks tree eval
  in
  let headrooms = Probes.subtree_slew_headroom tree eval in
  let rec driver_of i =
    let nd = Tree.node tree i in
    if nd.Tree.parent < 0 then None
    else
      match (Tree.node tree nd.Tree.parent).Tree.kind with
      | Tree.Buffer _ -> Some nd.Tree.parent
      | _ -> driver_of nd.Tree.parent
  in
  let to_upsize = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      if
        slacks.Slack.sink_slow.(s) > 3.
        && headrooms.(s) < 0.05 *. tech.Tech.slew_limit
      then
        match driver_of s with
        | Some b -> Hashtbl.replace to_upsize b ()
        | None -> ())
    (Tree.sinks tree);
  Hashtbl.iter
    (fun b () ->
      match (Tree.node tree b).Tree.kind with
      | Tree.Buffer buf ->
        Tree.set_buffer tree b
          (Tech.Composite.scale buf (1. +. (0.4 *. scale)))
      | _ -> ())
    to_upsize;
  let slacks =
    Slack.combined ~multicorner:config.Config.multicorner_slacks tree eval
  in
  let headrooms = Probes.subtree_slew_headroom tree eval in
  let sens = Probes.sensitivities tree in
  topdown_pass config tree ~slacks ~headrooms ~sens ~correction ~scale ~count
    ~added

let plan_arrays config tree eval =
  let slacks =
    Slack.combined ~multicorner:config.Config.multicorner_slacks tree eval
  in
  let headrooms = Probes.subtree_slew_headroom tree eval in
  let sens = Probes.sensitivities tree in
  (slacks, headrooms, sens)

let run config tree ~baseline =
  let twn, correction = estimate_twn config tree ~baseline in
  let count = ref 0 and added = ref 0 in
  let topdown_plan t ev =
    let slacks, headrooms, sens = plan_arrays config t ev in
    fun ~scale t ->
      topdown_pass config t ~slacks ~headrooms ~sens ~correction ~scale ~count
        ~added
  in
  let eval, rounds, _attempts =
    Ivc.adaptive_iterate config tree ~baseline ~objective:Ivc.Skew
      topdown_plan
  in
  (* Alternate slew-recovery and plain rounds until neither helps. *)
  let eval, extra, _ =
    Ivc.adaptive_iterate config tree ~baseline:eval ~objective:Ivc.Skew
      (fun _t ev ->
        fun ~scale t ->
          recovery_pass config t ~eval:ev ~correction ~scale ~count ~added)
  in
  let eval, more, _ =
    if extra > 0 then
      Ivc.adaptive_iterate config tree ~baseline:eval ~objective:Ivc.Skew
        topdown_plan
    else (eval, 0, 0)
  in
  { eval; rounds = rounds + extra + more; snaked_wires = !count;
    added_length = !added; twn }
