(** Improvement- & Violation-Checking (the IVC boxes of Fig. 1).

    Every optimization round mutates the tree, re-evaluates it, and keeps
    the change only when the objective improved without introducing slew
    or capacitance violations; otherwise the tree is rolled back and the
    flow moves on. *)

type objective =
  | Skew   (** nominal skew, CLR as tie-breaker *)
  | Clr    (** CLR, nominal skew as tie-breaker *)
  | Insertion_delay  (** max sink latency (used by speed-up steps) *)

(** [better obj ~candidate ~baseline] — did the objective strictly
    improve? (Violations are checked separately.) *)
val better :
  objective -> candidate:Analysis.Evaluator.t -> baseline:Analysis.Evaluator.t ->
  bool

(** Raised by {!evaluate} when [config.deadline] has passed — the
    cooperative cancellation used by the suite runner's per-instance
    wall-clock budget. The tree is left exactly as the last completed
    evaluation saw it. *)
exception Deadline_exceeded

(** The configured evaluation: [config.evaluator] when set (Flow points it
    at an incremental session), otherwise a from-scratch
    [Evaluator.evaluate ~engine ~seg_len]. Optimization passes should call
    this instead of {!Analysis.Evaluator.evaluate} directly.
    @raise Deadline_exceeded when [config.deadline] is in the past. *)
val evaluate : Config.t -> Ctree.Tree.t -> Analysis.Evaluator.t

(** [attempt config tree ~baseline ~objective mutate] snapshots the tree,
    applies [mutate], re-evaluates, and either keeps the change returning
    [Ok eval] or rolls the tree back returning [Error reason].

    A candidate introducing violations is rejected even if the objective
    improved; a baseline that already had violations only needs to not get
    worse. *)
val attempt :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t ->
  objective:objective -> (Ctree.Tree.t -> unit) ->
  (Analysis.Evaluator.t, string) result

(** Run [attempt] in a loop (at most [config.max_rounds] times), feeding
    each accepted evaluation back as the next baseline. Returns the final
    evaluation and the number of accepted rounds. *)
val iterate :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t ->
  objective:objective ->
  (Ctree.Tree.t -> Analysis.Evaluator.t -> unit) ->
  Analysis.Evaluator.t * int

(** Like {!iterate}, but the mutation receives a scale factor in (0, 1]:
    rejected rounds halve the scale and retry (the linear T_ws/T_wn models
    overshoot on large slacks — §IV-F notes the accuracy/rounds trade-off
    of the unit length); accepted rounds grow it back. Stops after
    [config.max_rounds] total attempts, three consecutive rejections, or
    when the scale underflows. Returns the final evaluation, accepted
    rounds, and total attempts. *)
val adaptive_iterate :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t ->
  objective:objective ->
  (scale:float -> Ctree.Tree.t -> Analysis.Evaluator.t -> unit) ->
  Analysis.Evaluator.t * int * int
