(** Improvement- & Violation-Checking (the IVC boxes of Fig. 1).

    Every optimization round produces candidate mutations, re-evaluates
    them, and keeps a change only when the objective improved without
    introducing slew or capacitance violations; otherwise the tree is
    rolled back and the flow moves on.

    Candidate exploration is speculative: each candidate runs under a
    {!Ctree.Tree.Journal} (rollback is O(edit), never a tree copy) and —
    when {!Flow} installed a {!Speculate} context — candidates are
    evaluated concurrently on per-lane tree replicas. Winner selection
    is deterministic: the lowest-indexed candidate passing the IVC
    acceptance rule, a pure function of candidate order — so every
    speculation width [>= 0] produces bit-identical trees and
    evaluations. Width changes only wall-clock time and how many losing
    candidates get evaluated before being discarded (serial exploration
    stops at the winner). [Config.speculation = -1] restores the legacy
    copy-based serial loop as a benchmark baseline. *)

type objective =
  | Skew   (** nominal skew, CLR as tie-breaker *)
  | Clr    (** CLR, nominal skew as tie-breaker *)
  | Insertion_delay  (** max sink latency (used by speed-up steps) *)

(** [better obj ~candidate ~baseline] — did the objective strictly
    improve? (Violations are checked separately.) *)
val better :
  objective -> candidate:Analysis.Evaluator.t -> baseline:Analysis.Evaluator.t ->
  bool

(** Raised by {!evaluate} (and the speculative loops, once per round)
    when [config.deadline] has passed on the monotonic clock
    ({!Monoclock.now} scale) — the cooperative cancellation used by the
    suite runner's per-instance wall-clock budget. The tree is left
    exactly as the last completed evaluation saw it. *)
exception Deadline_exceeded

(** Process-wide counters of candidate attempts and accepted candidates
    across every IVC loop (atomic: flows and speculative evaluations run
    on domains). {!Flow} reports per-step deltas in its trace. *)
val attempts : unit -> int

val accepts : unit -> int

(** The configured evaluation: [config.evaluator] when set (Flow points it
    at an incremental session), otherwise a from-scratch
    [Evaluator.evaluate ~engine ~seg_len]. Optimization passes should call
    this instead of {!Analysis.Evaluator.evaluate} directly. [?journal]
    forwards the journal's dirty hint to the session when the journaled
    edit qualifies (value-only and consistent).
    @raise Deadline_exceeded when [config.deadline] is in the past. *)
val evaluate :
  ?journal:Ctree.Tree.journal -> Config.t -> Ctree.Tree.t ->
  Analysis.Evaluator.t

(** Roll a journal back and report the rollback to the configured
    session so its dirty-anchor chain stays unbroken. Use this (not
    {!Ctree.Tree.Journal.rollback} directly) to undo exploratory edits
    made outside {!attempt} — e.g. probe calibrations.
    @raise Invalid_argument if the journal is inconsistent. *)
val rollback : Config.t -> Ctree.Tree.t -> Ctree.Tree.journal -> unit

(** [attempt config tree ~baseline ~objective mutate] opens a journal,
    applies [mutate], re-evaluates, and either keeps the change returning
    [Ok eval] or rolls the journal back returning [Error reason].

    A candidate introducing violations is rejected even if the objective
    improved; a baseline that already had violations only needs to not
    get worse. [mutate] must go through the public {!Ctree.Tree}
    mutators only (journal invariant). With [config.speculation = -1]
    the legacy snapshot/restore implementation is used instead and the
    journal invariant does not apply. *)
val attempt :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t ->
  objective:objective -> (Ctree.Tree.t -> unit) ->
  (Analysis.Evaluator.t, string) result

(** [speculate config tree ~baseline ~objective candidates] explores the
    candidates speculatively (see {!Speculate.explore_first}),
    deterministically selects the {e first} survivor in index order —
    passing the violation rules and strictly better than [baseline]; put
    the preferred candidate first — and commits it to [tree] (and every
    replica lane). Returns the winning index and its evaluation, or
    [None] when no candidate survived. Counts [Array.length candidates]
    attempts (submitted, identical at every width) and at most one
    accept.
    @raise Deadline_exceeded when [config.deadline] is in the past. *)
val speculate :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t ->
  objective:objective -> (Ctree.Tree.t -> unit) array ->
  (int * Analysis.Evaluator.t) option

(** Run single-candidate rounds (at most [config.max_rounds]), feeding
    each accepted evaluation back as the next baseline. [plan tree
    baseline] runs once per round on the un-mutated tree and returns the
    mutation closure — hoisting the per-round analysis out of the
    candidate application, which may run on a replica. Returns the final
    evaluation and the number of accepted rounds. *)
val iterate :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t ->
  objective:objective ->
  (Ctree.Tree.t -> Analysis.Evaluator.t -> Ctree.Tree.t -> unit) ->
  Analysis.Evaluator.t * int

(** Like {!iterate} with a damping scale: each round plans once, then
    explores the scale ladder [s, s/2, s/4, s/8] as one speculative
    candidate batch (the linear T_ws/T_wn models overshoot on large
    slacks — §IV-F notes the accuracy/rounds trade-off). The first
    surviving rung wins — serial exploration evaluates the ladder
    lazily, reproducing the legacy loop's try/halve/retry schedule,
    while parallel lanes precompute the smaller rungs concurrently. The
    winning rung's scale grows by 1.3× (capped at 1) for the next
    round; a round with no survivor stops the loop (the ladder is
    exactly the serial loop's four halvings). Stops after
    [config.max_rounds] total submitted candidates or when the scale
    underflows. Returns the final evaluation, accepted rounds, and
    total candidate attempts. *)
val adaptive_iterate :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t ->
  objective:objective ->
  (Ctree.Tree.t -> Analysis.Evaluator.t ->
   scale:float -> Ctree.Tree.t -> unit) ->
  Analysis.Evaluator.t * int * int
