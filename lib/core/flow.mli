(** The end-to-end Contango methodology (paper Fig. 1):

    ZST/DME construction → obstacle repair → composite-buffer analysis and
    initial insertion with sizing → sink-polarity correction → [INITIAL
    evaluation] → buffer sliding/interleaving + iterative buffer sizing
    (TBSZ) → iterative top-down wiresizing (TWSZ) → iterative top-down
    wiresnaking (TWSN) → bottom-level fine-tuning (BWSN).

    Every optimization is wrapped in Improvement- & Violation-Checking;
    the per-step trace is the data behind the paper's Table III. *)

type step = Initial | Tbsz | Twsz | Twsn | Bwsn

val step_name : step -> string

type trace_entry = {
  step : step;
  skew : float;     (** nominal skew after the step, ps *)
  clr : float;      (** CLR after the step, ps *)
  t_max : float;    (** max sink latency, ps *)
  eval_runs : int;  (** cumulative evaluation ("SPICE") runs so far *)
  seconds : float;  (** cumulative wall-clock seconds *)
  cache_hits : int;
      (** incremental-session stage-cache hits during this step alone (0
          when [config.incremental] is false) — like every other counter
          below, a per-step delta, so streamed telemetry lines sum to the
          session totals *)
  cache_misses : int;
      (** stage solves that ran an engine during this step alone *)
  step_seconds : float;  (** wall-clock seconds spent in this step alone *)
  kernel_solves : int;
      (** transient-kernel linear solves during this step (fine + coarse;
          see {!Analysis.Transient.counters}). The kernel counters are
          process-global: when several flows run concurrently (the suite
          runner's parallel instances) the per-step split between them is
          approximate *)
  kernel_saved : int;
      (** fine-step-equivalents the adaptive stepping skipped this step;
          0 under [Transient.Fixed] or non-[Spice] engines *)
  kernel_truncations : int;
      (** marches that hit their step budget with crossings pending this
          step — the stages behind any [infinity] latencies *)
  attempts : int;
      (** IVC candidate attempts during this step (see {!Ivc.attempts});
          speculative ladder rungs count individually, so the value is
          identical at every speculation width [>= 0] *)
  accepts : int;  (** accepted candidates during this step *)
}

type result = {
  tree : Ctree.Tree.t;
  trace : trace_entry list;      (** one entry per step, in flow order *)
  final : Analysis.Evaluator.t;  (** evaluation after the last step *)
  chosen_buf : Tech.Composite.t;
  polarity : Polarity.report;
  repair : Route.Repair.report option;  (** present when obstacles given *)
  eval_runs : int;               (** total evaluation runs consumed *)
  seconds : float;
}

(** Run the whole methodology. [obstacles] defaults to none.

    [on_step] is invoked with each trace entry the moment the step
    finishes (INITIAL, TBSZ, …), before the next step starts — the hook
    behind the suite runner's streamed JSONL telemetry, so a run that
    later crashes or times out has still reported every completed step.
    An exception raised by [on_step] aborts the run and propagates.

    @raise Ivc.Deadline_exceeded between evaluations once
    [config.deadline] has passed. *)
val run :
  ?config:Config.t -> ?on_step:(trace_entry -> unit) -> tech:Tech.t ->
  source:Geometry.Point.t -> ?obstacles:Geometry.Rect.t list ->
  Dme.Zst.sink_spec array -> result

(** Stages before any optimization — ZST, repair, insertion, polarity —
    exposed so baselines and experiments can start from the same initial
    tree. Returns the initial buffered, polarity-correct tree. *)
val initial_tree :
  ?config:Config.t -> tech:Tech.t -> source:Geometry.Point.t ->
  ?obstacles:Geometry.Rect.t list -> Dme.Zst.sink_spec array ->
  Ctree.Tree.t * Tech.Composite.t * Polarity.report * Route.Repair.report option
