(** The end-to-end Contango methodology (paper Fig. 1):

    ZST/DME construction → obstacle repair → composite-buffer analysis and
    initial insertion with sizing → sink-polarity correction → [INITIAL
    evaluation] → buffer sliding/interleaving + iterative buffer sizing
    (TBSZ) → iterative top-down wiresizing (TWSZ) → iterative top-down
    wiresnaking (TWSN) → bottom-level fine-tuning (BWSN).

    Every optimization is wrapped in Improvement- & Violation-Checking;
    the per-step trace is the data behind the paper's Table III.

    Each stage additionally runs under a retry umbrella: on an exception,
    a {!Analysis.Numerics.Numerical_failure} or a structural invariant
    violation, the tree is rolled back to the stage entry state and the
    stage re-runs in degraded mode (serial speculation and the fixed-rate
    transient reference march, then additionally a halved timestep with
    plain from-scratch evaluations), up to {!Config.t.max_stage_retries}
    times. Completed stages can be persisted as verified checkpoints and
    resumed after a crash. *)

(** The two extra steps belong to {!run_regional} only: [Stitch] is the
    evaluation of the grafted global tree, [Polish] the measured
    cross-region balancing loop that follows. The monolithic {!run} never
    emits them. *)
type step = Initial | Tbsz | Twsz | Twsn | Bwsn | Stitch | Polish

val step_name : step -> string

(** Inverse of {!step_name}; [None] for unknown names. *)
val step_of_name : string -> step option

type trace_entry = {
  step : step;
  skew : float;     (** nominal skew after the step, ps *)
  clr : float;      (** CLR after the step, ps *)
  t_max : float;    (** max sink latency, ps *)
  eval_runs : int;  (** cumulative evaluation ("SPICE") runs so far *)
  seconds : float;  (** cumulative wall-clock seconds *)
  cache_hits : int;
      (** incremental-session stage-cache hits during this step alone (0
          when [config.incremental] is false) — like every other counter
          below, a per-step delta, so streamed telemetry lines sum to the
          session totals *)
  cache_misses : int;
      (** stage solves that ran an engine during this step alone *)
  step_seconds : float;  (** wall-clock seconds spent in this step alone *)
  kernel_solves : int;
      (** transient-kernel linear solves during this step (fine + coarse;
          see {!Analysis.Transient.counters}). The kernel counters are
          process-global: when several flows run concurrently (the suite
          runner's parallel instances) the per-step split between them is
          approximate *)
  kernel_saved : int;
      (** fine-step-equivalents the adaptive stepping skipped this step;
          0 under [Transient.Fixed] or non-[Spice] engines *)
  kernel_truncations : int;
      (** marches that hit their step budget with crossings pending this
          step — the stages behind any [infinity] latencies *)
  attempts : int;
      (** IVC candidate attempts during this step (see {!Ivc.attempts});
          speculative ladder rungs count individually, so the value is
          identical at every speculation width [>= 0] *)
  accepts : int;  (** accepted candidates during this step *)
}

(** A structured stage-failure record. [inc_action] is one of
    ["retry-degraded"] (the stage re-runs one rung down the degraded
    ladder), ["gave-up"] (retries exhausted; the failure propagates),
    ["deadline"] (cooperative deadline — never retried) or
    ["checkpoint-skipped"] (the stage succeeded but its state was not
    persisted: non-finite headline metrics or an I/O failure). *)
type incident = {
  inc_step : step;
  inc_attempt : int;  (** 0 = first attempt, 1.. = degraded retries *)
  inc_error : string;
  inc_action : string;
}

(** Per-stage metrics persisted in checkpoints; [m_slew_waived] /
    [m_cap_waived] record that the stage was checkpointed despite
    slew/cap violations (they never block a checkpoint — non-finite
    metrics do). *)
type stage_meta = {
  m_step : step;
  m_skew : float;
  m_clr : float;
  m_t_max : float;
  m_slew_waived : bool;
  m_cap_waived : bool;
}

type result = {
  tree : Ctree.Tree.t;
  trace : trace_entry list;      (** one entry per step, in flow order *)
  final : Analysis.Evaluator.t;  (** evaluation after the last step *)
  chosen_buf : Tech.Composite.t;
  polarity : Polarity.report;
  repair : Route.Repair.report option;  (** present when obstacles given *)
  incidents : incident list;     (** stage failures, in occurrence order *)
  eval_runs : int;               (** total evaluation runs consumed *)
  seconds : float;
  surrogate : Analysis.Surrogate.stats option;
      (** calibration telemetry of this run's surrogate state, when
          [config.surrogate] armed ranking ([None] otherwise, and for
          stitched regional results — each region run reports its own) *)
}

(** Verified on-disk flow checkpoints: one [<STEP>.ckpt] per completed
    stage, written atomically with a checksum trailer
    ({!Persist.write_atomic_checked}), containing the flow metadata
    (chosen composite, polarity/repair reports, per-stage metrics) and
    the canonical tree text ({!Ctree.Tree.to_string}). *)
module Checkpoint : sig
  type loaded = {
    ck_step : step;
    ck_tree : Ctree.Tree.t;
    ck_buf : Tech.Composite.t;
    ck_polarity : Polarity.report;
    ck_repair : Route.Repair.report option;
    ck_metas : stage_meta list;  (** in flow order, [ck_step] last *)
  }

  (** [<dir>/<STEP>.ckpt]. *)
  val path : dir:string -> step -> string

  (** Atomically persist a stage checkpoint (creates [dir] as needed). *)
  val save :
    dir:string -> step:step -> tree:Ctree.Tree.t ->
    buf:Tech.Composite.t -> polarity:Polarity.report ->
    repair:Route.Repair.report option -> metas:stage_meta list -> unit

  (** Read and verify one checkpoint file: checksum, format, tree parse
      and {!Ctree.Validate.check} all gate the result. Never raises. *)
  val load : tech:Tech.t -> string -> (loaded, string) Stdlib.result

  (** Latest loadable checkpoint in [dir] (BWSN first, INITIAL last);
      missing, torn or corrupt files are skipped, so a damaged late
      checkpoint degrades the resume rather than failing it. *)
  val load_latest : tech:Tech.t -> dir:string -> loaded option
end

(** Run the whole methodology. [obstacles] defaults to none.

    [on_step] is invoked with each trace entry the moment the step
    finishes (INITIAL, TBSZ, …), before the next step starts — the hook
    behind the suite runner's streamed JSONL telemetry, so a run that
    later crashes or times out has still reported every completed step.
    An exception raised by [on_step] aborts the run and propagates.

    [on_incident] is invoked with each {!incident} as it is recorded
    (including ones whose failure ultimately propagates).

    [checkpoint_dir] enables verified per-stage checkpoints. With
    [resume] also set, the run first loads the latest checkpoint from
    [checkpoint_dir] and skips every completed stage (replaying their
    trace entries through [on_step] with zeroed per-step counters);
    because evaluations are content-derived, an interrupted run resumed
    this way converges to a final tree bit-identical to the
    uninterrupted one. With [resume] and no loadable checkpoint the run
    starts from scratch.

    @raise Ivc.Deadline_exceeded between evaluations once
    [config.deadline] has passed (recorded as an incident first, never
    retried). *)
val run :
  ?config:Config.t -> ?on_step:(trace_entry -> unit) ->
  ?on_incident:(incident -> unit) -> ?checkpoint_dir:string ->
  ?resume:bool -> tech:Tech.t -> source:Geometry.Point.t ->
  ?obstacles:Geometry.Rect.t list -> Dme.Zst.sink_spec array -> result

(** Stages before any optimization — ZST, repair, insertion, polarity —
    exposed so baselines and experiments can start from the same initial
    tree. Returns the initial buffered, polarity-correct tree. *)
val initial_tree :
  ?config:Config.t -> tech:Tech.t -> source:Geometry.Point.t ->
  ?obstacles:Geometry.Rect.t list -> Dme.Zst.sink_spec array ->
  Ctree.Tree.t * Tech.Composite.t * Polarity.report * Route.Repair.report option

(** What one region of a regional run did: the region's standalone flow
    result condensed. [rg_eval_runs] and [rg_seconds] are the region
    flow's own totals (regions run concurrently, so the seconds overlap
    and do not sum to the wall clock). *)
type region_report = {
  rg_index : int;      (** position in {!Partition.split} order *)
  rg_sinks : int;
  rg_skew : float;     (** region-local nominal skew, ps *)
  rg_clr : float;
  rg_t_max : float;
  rg_seconds : float;
  rg_eval_runs : int;
  rg_incidents : int;
}

type stitch_report = {
  st_regions : region_report list;
  st_predicted_skew : float;
      (** global skew predicted by {!Analysis.Regional.combine} from the
          regional results and the measured top-tree tap latencies, before
          the stitched tree was first evaluated *)
  st_rounds : int;      (** polish rounds run (accepted or not) *)
  st_max_pad_ps : float;
      (** largest initial per-region delay-padding target
          ({!Analysis.Regional.pad_targets}) *)
}

type regional_result = {
  r_flow : result;
      (** the stitched global tree and its trace; the trace carries one
          [Stitch] and one [Polish] entry (region stages are not
          re-streamed — each region already has its own checkpointed
          flow) *)
  r_stitch : stitch_report option;
      (** [None] when the run degenerated to the monolithic flow
          (regions <= 1 after clamping) or was fast-resumed from a
          POLISH checkpoint *)
}

(** [run_regional] — the partitioned variant of {!run}:
    {!Partition.split} cuts the sinks into [config.regions]
    capacity-balanced cells (clamped so no region gets fewer than two
    sinks); every region runs the full monolithic flow concurrently on a
    dedicated domain pool ([jobs] workers, default
    [Domain.recommended_domain_count () - 1]), sourced at its centroid;
    a top-level tree is synthesized over one pseudo-sink per region
    (loaded with the regional root buffer's input pin, carrying its
    inversion parity) and the regional trees are grafted onto its taps
    ({!Ctree.Tree.graft}); finally a measured polish loop snakes the
    top-level tap feeds ({!Config.t.damping}-damped, journaled,
    improvement-checked) until the stitched nominal skew falls below
    [config.stitch_skew_ps] or the moves stop helping.

    With [config.regions <= 1] (or after clamping) this is exactly
    {!run} — bit-identical result, [r_stitch = None].

    The result is deterministic for a given sink set and configuration
    regardless of [jobs]: the partition is deterministic, region flows
    are independent, and the polish loop is serial.

    [checkpoint_dir] gives every region flow its own subdirectory
    ([region_<i>/]), the top flow [top/], and the finished stitched tree
    a POLISH checkpoint in [checkpoint_dir] itself. With [resume], a
    loadable POLISH checkpoint short-circuits the whole run (one
    verification evaluation); otherwise regions and the top flow resume
    from their own latest checkpoints and the stitch/polish re-runs.

    [on_step] receives the [Stitch] and [Polish] trace entries;
    [on_incident] receives region and top incidents (forwarded serially
    after each flow finishes) and stitch-phase incidents as they occur. *)
val run_regional :
  ?config:Config.t -> ?on_step:(trace_entry -> unit) ->
  ?on_incident:(incident -> unit) -> ?checkpoint_dir:string ->
  ?resume:bool -> ?jobs:int -> tech:Tech.t -> source:Geometry.Point.t ->
  ?obstacles:Geometry.Rect.t list -> Dme.Zst.sink_spec array ->
  regional_result
