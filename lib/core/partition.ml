open Geometry

(* Recursive capacity-balanced bisection. Each level sorts the cell's
   sink indices along the longer bounding-box dimension (ties broken by
   the other coordinate, then by index — a total order, so the partition
   is deterministic) and cuts where the cumulative capacitance reaches
   the child regions' share of the total. *)

let bbox (sinks : Dme.Zst.sink_spec array) idxs =
  Array.fold_left
    (fun (lx, ly, hx, hy) i ->
      let p = sinks.(i).Dme.Zst.pos in
      (min lx p.Point.x, min ly p.Point.y, max hx p.Point.x, max hy p.Point.y))
    (max_int, max_int, min_int, min_int)
    idxs

let split ~regions (sinks : Dme.Zst.sink_spec array) =
  let n = Array.length sinks in
  if n = 0 then invalid_arg "Partition.split: empty sink set";
  if regions < 1 then invalid_arg "Partition.split: regions < 1";
  let regions = min regions n in
  let out = ref [] in
  let rec bisect r idxs =
    if r <= 1 then begin
      let cell = Array.copy idxs in
      Array.sort Int.compare cell;
      out := cell :: !out
    end
    else begin
      let r1 = r / 2 in
      let lx, ly, hx, hy = bbox sinks idxs in
      let along_x = hx - lx >= hy - ly in
      let key i =
        let p = sinks.(i).Dme.Zst.pos in
        if along_x then (p.Point.x, p.Point.y, i)
        else (p.Point.y, p.Point.x, i)
      in
      let sorted = Array.copy idxs in
      Array.sort (fun a b -> compare (key a) (key b)) sorted;
      let total =
        Array.fold_left (fun acc i -> acc +. sinks.(i).Dme.Zst.cap) 0. sorted
      in
      let target = total *. float_of_int r1 /. float_of_int r in
      (* First cut at or past the capacitance target, clamped so each
         child keeps at least one sink per region it must still form. *)
      let m = Array.length sorted in
      let cut = ref 0 and acc = ref 0. in
      while !cut < m && !acc < target do
        acc := !acc +. sinks.(sorted.(!cut)).Dme.Zst.cap;
        incr cut
      done;
      let cut = max r1 (min (m - (r - r1)) !cut) in
      bisect r1 (Array.sub sorted 0 cut);
      bisect (r - r1) (Array.sub sorted cut (m - cut))
    end
  in
  bisect regions (Array.init n Fun.id);
  (* [out] accumulates depth-first right-to-left; reverse restores the
     left-to-right (spatial) order. *)
  Array.of_list (List.rev !out)

let centroid (sinks : Dme.Zst.sink_spec array) idxs =
  let m = Array.length idxs in
  if m = 0 then invalid_arg "Partition.centroid: empty selection";
  let sx = ref 0. and sy = ref 0. in
  Array.iter
    (fun i ->
      let p = sinks.(i).Dme.Zst.pos in
      sx := !sx +. float_of_int p.Point.x;
      sy := !sy +. float_of_int p.Point.y)
    idxs;
  let f s = int_of_float (Float.round (s /. float_of_int m)) in
  Point.make (f !sx) (f !sy)
