(** Iterative buffer sizing (paper §IV-I) — the sizing half of "TBSZ".

    Trunk first: at iteration i the trunk composites are scaled up by at
    most p_i = 100/(i+3) %, iterating under IVC on the CLR objective while
    results improve without slew violations. Branch buffers within the
    first few levels after the first branch are then sized up with
    *capacitance borrowing*: the added input capacitance is paid for by
    downsizing bottom-level buffers, keeping total power in check. Buffer
    sizing deliberately trades nominal skew for CLR; the subsequent wire
    optimizations bring skew back down (Table III). *)

type result = {
  eval : Analysis.Evaluator.t;
  trunk_rounds : int;
  branch_rounds : int;
}

(** Buffers with no buffer descendants (the bottom level, donors for
    capacitance borrowing). *)
val bottom_buffers : Ctree.Tree.t -> int list

val run :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t -> result

(** Skew-objective speed-up rounds (§III-B: speed-up before slow-down):
    upsize the buffers driving critical subtrees (small slow-down slack),
    reducing the worst latency instead of burning slew headroom on the
    fast side. Returns the final evaluation and accepted rounds. *)
val speedup :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t ->
  Analysis.Evaluator.t * int
