module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator
module Domain_pool = Analysis.Domain_pool

type hooks = {
  eval : ?edits:Evaluator.edit_hint -> Tree.t -> Evaluator.t;
  note :
    edits:Evaluator.edit_hint option -> new_revision:int -> unit;
}

(* One speculation lane: a content replica of the main tree plus its own
   incremental session (wrapped in [hooks]). [synced_rev] is the main
   tree's revision the replica content mirrors; -1 marks it stale (an
   exception interrupted a rollback), forcing a full [Tree.assign]
   resync before its next use. *)
type slot = {
  replica : Tree.t;
  s_hooks : hooks;
  mutable synced_rev : int;
}

type t = {
  width : int;
  main : Tree.t;
  main_hooks : hooks;
  slots : slot array; (* [||] = serial mode: candidates run on [main] *)
  pool : Domain_pool.t option;
}

type outcome = { ev : Evaluator.t; journal : Tree.journal }

let create ~width ~main ~main_hooks ~slot_hooks ?pool () =
  let slots =
    if width <= 1 then [||]
    else
      Array.init width (fun _ ->
          let replica = Tree.copy main in
          { replica; s_hooks = slot_hooks replica;
            synced_rev = Tree.revision main })
  in
  { width = max 1 width; main; main_hooks; slots; pool }

let serial ~main ~hooks =
  { width = 1; main; main_hooks = hooks; slots = [||]; pool = None }

let width t = t.width
let main t = t.main

let hint_of_journal j =
  if Tree.Journal.value_only j && Tree.Journal.consistent j then
    Some
      { Evaluator.base_revision = Tree.Journal.base_revision j;
        nodes = Tree.Journal.touched j }
  else None

(* Run one candidate on [tree]: journal, apply, evaluate (with the dirty
   hint when the edit qualifies), roll back, and report the rollback to
   the lane's session so its anchor chain stays unbroken. The closed
   journal carries the redo log {!commit} needs. Returns [None] when the
   candidate mutated the tree outside the journal (rollback refused; the
   lane is marked stale and resynced before its next use). *)
let run_candidate tree hooks mark_stale apply =
  let j = Tree.Journal.start tree in
  match
    apply tree;
    let hint = hint_of_journal j in
    let ev = hooks.eval ?edits:hint tree in
    (ev, hint)
  with
  | exception e ->
    let stale =
      try
        Tree.Journal.rollback j;
        false
      with _ ->
        Tree.Journal.abandon j;
        true
    in
    hooks.note ~edits:None ~new_revision:(Tree.revision tree);
    if stale then mark_stale ();
    raise e
  | ev, hint ->
    let post_mut_rev = Tree.revision tree in
    let usable = Tree.Journal.consistent j in
    if usable then begin
      let nodes = Tree.Journal.touched j in
      Tree.Journal.rollback j;
      let edits =
        match hint with
        | Some _ -> Some { Evaluator.base_revision = post_mut_rev; nodes }
        | None -> None
      in
      hooks.note ~edits ~new_revision:(Tree.revision tree);
      Some { ev; journal = j }
    end
    else begin
      Tree.Journal.abandon j;
      hooks.note ~edits:None ~new_revision:(Tree.revision tree);
      mark_stale ();
      None
    end

(* A journal bypass on the main lane cannot be repaired — there is no
   pristine replica to resync from, so the tree stays mutated. Refuse to
   continue rather than corrupt silently. *)
let serial_bypass () =
  invalid_arg
    "Speculate: candidate mutated the main tree outside the journal \
     (route mutations through the public Ctree.Tree mutators)"

let resync t slot =
  if slot.synced_rev <> Tree.revision t.main then begin
    Tree.assign ~dst:slot.replica ~src:t.main;
    slot.s_hooks.note ~edits:None
      ~new_revision:(Tree.revision slot.replica);
    slot.synced_rev <- Tree.revision t.main
  end

let explore t candidates =
  let k = Array.length candidates in
  let out = Array.make k None in
  if Array.length t.slots = 0 then
    (* Serial: every candidate runs (and is rolled back) on the main
       tree itself, through the main session. A journal bypass is fatal
       here — there is no pristine replica to resync the main tree
       from, so the corruption must not be silent. *)
    Array.iteri
      (fun i apply ->
        out.(i) <- run_candidate t.main t.main_hooks serial_bypass apply)
      candidates
  else begin
    let pool =
      match t.pool with Some p -> p | None -> Domain_pool.global ()
    in
    let batch = Array.length t.slots in
    let start = ref 0 in
    while !start < k do
      let count = min batch (k - !start) in
      Array.iter (fun slot -> resync t slot) (Array.sub t.slots 0 count);
      let jobs = Array.init count (fun i -> i) in
      let results =
        Domain_pool.map pool
          (fun i ->
            let slot = t.slots.(i) in
            run_candidate slot.replica slot.s_hooks
              (fun () -> slot.synced_rev <- -1)
              candidates.(!start + i))
          jobs
      in
      Array.iteri (fun i r -> out.(!start + i) <- r) results;
      start := !start + count
    done
  end;
  out

(* First-survivor exploration: the winner is the lowest-indexed candidate
   [accept] admits — a pure function of candidate order, so every width
   picks the same winner. Serial mode exploits it by evaluating lazily
   (candidates after the winner never run — the legacy serial loop's
   schedule); parallel lanes evaluate a whole batch eagerly and discard
   the precomputed losers, trading eval count for wall-clock.

   [measured] hands every evaluated outcome of the {e deterministic
   prefix} — the candidates the serial lazy scan would also evaluate:
   everything up to and including the winner — back to the caller, in
   index order, on the caller's thread. Losing evaluations become
   surrogate training data instead of pure waste. Eagerly precomputed
   losers {e beyond} the winner exist only at widths > 1, so feeding
   them would make the calibration state width-dependent; they stay
   unfed, keeping the model a pure function of candidate order.

   [lazy_only] forces the serial lazy scan on the main lane even when
   replica lanes exist — the width-independent schedule surrogate
   warm-up rounds need (every width then runs — and measures — exactly
   the width-1 evaluation sequence). *)
let explore_first ?measured ?(lazy_only = false) t candidates ~accept =
  let k = Array.length candidates in
  let result = ref None in
  let feed i o = match measured with Some f -> f i o | None -> () in
  let pool =
    lazy
      (match t.pool with Some p -> p | None -> Domain_pool.global ())
  in
  (* Eager batches only pay off when the pool actually runs them
     concurrently; on a workerless (degraded-to-sequential) pool the lazy
     scan on the main lane is the same winner for strictly fewer
     evaluations. *)
  if
    lazy_only || Array.length t.slots = 0
    || Domain_pool.size (Lazy.force pool) = 0
  then begin
    let i = ref 0 in
    while !result = None && !i < k do
      (match run_candidate t.main t.main_hooks serial_bypass candidates.(!i)
       with
      | Some o ->
        feed !i o;
        if accept o then result := Some (!i, o)
      | None -> ());
      incr i
    done
  end
  else begin
    let pool = Lazy.force pool in
    let batch = Array.length t.slots in
    let start = ref 0 in
    while !result = None && !start < k do
      let count = min batch (k - !start) in
      Array.iter (fun slot -> resync t slot) (Array.sub t.slots 0 count);
      let jobs = Array.init count (fun i -> i) in
      let results =
        Domain_pool.map pool
          (fun i ->
            let slot = t.slots.(i) in
            run_candidate slot.replica slot.s_hooks
              (fun () -> slot.synced_rev <- -1)
              candidates.(!start + i))
          jobs
      in
      Array.iteri
        (fun i r ->
          if !result = None then
            match r with
            | Some o ->
              feed (!start + i) o;
              if accept o then result := Some (!start + i, o)
            | None -> ())
        results;
      start := !start + count
    done
  end;
  !result

(* Replay the winner's redo log onto the main tree and every in-sync
   replica, keeping all lanes content-identical without a single deep
   copy; each lane's session is told exactly which nodes moved. *)
let commit t { journal = j; ev = _ } =
  let apply_to tree hooks =
    let base = Tree.revision tree in
    Tree.Journal.replay j ~onto:tree;
    let edits =
      if Tree.Journal.value_only j then
        Some
          { Evaluator.base_revision = base;
            nodes = Tree.Journal.touched j }
      else None
    in
    hooks.note ~edits ~new_revision:(Tree.revision tree)
  in
  apply_to t.main t.main_hooks;
  Array.iter
    (fun slot ->
      if slot.synced_rev >= 0 then begin
        apply_to slot.replica slot.s_hooks;
        slot.synced_rev <- Tree.revision t.main
      end)
    t.slots
