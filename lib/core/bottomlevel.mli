(** Bottom-level fine-tuning (paper §IV-G) — "BWSN".

    After the two top-down phases, skew is small enough that only the
    wires directly feeding sinks are adjusted, where the impact on skew is
    most predictable: per-sink slack drives wire downsizing and snaking of
    the sink wires, iterated under IVC until results stop improving. The
    typical gain is small in absolute terms but a significant fraction of
    the remaining skew; rise/fall divergence eventually stops progress. *)

type result = {
  eval : Analysis.Evaluator.t;
  rounds : int;
  downsized : int;
  snaked_wires : int;
}

val run :
  Config.t -> Ctree.Tree.t -> baseline:Analysis.Evaluator.t -> result
