module Tree = Ctree.Tree
module Evaluator = Analysis.Evaluator

type result = {
  eval : Evaluator.t;
  trunk_rounds : int;
  branch_rounds : int;
}

let scale_buffer tree id f =
  match (Tree.node tree id).Tree.kind with
  | Tree.Buffer b -> Tree.set_buffer tree id (Tech.Composite.scale b f)
  | _ -> invalid_arg "Buffer_sizing: not a buffer"

let buffer_depths tree =
  (* Number of buffer ancestors (strictly above) per node. *)
  let n = Tree.size tree in
  let d = Array.make n 0 in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      if nd.Tree.parent >= 0 then begin
        let pd = d.(nd.Tree.parent) in
        let pbuf =
          match (Tree.node tree nd.Tree.parent).Tree.kind with
          | Tree.Buffer _ -> 1
          | _ -> 0
        in
        d.(i) <- pd + pbuf
      end)
    (Tree.topo_order tree);
  d

let bottom_buffers tree =
  let has_buf_descendant = Array.make (Tree.size tree) false in
  Array.iter
    (fun i ->
      let nd = Tree.node tree i in
      if nd.Tree.parent >= 0 then begin
        let self_or_below =
          has_buf_descendant.(i)
          || match nd.Tree.kind with Tree.Buffer _ -> true | _ -> false
        in
        if self_or_below then has_buf_descendant.(nd.Tree.parent) <- true
      end)
    (Tree.post_order tree);
  Array.to_list (Tree.buffer_ids tree)
  |> List.filter (fun id -> not has_buf_descendant.(id))

let cin_sum tree ids =
  List.fold_left
    (fun acc id ->
      match (Tree.node tree id).Tree.kind with
      | Tree.Buffer b -> acc +. Tech.Composite.c_in b
      | _ -> acc)
    0. ids

(* Speed-up pass (§III-B: "if any speed-up is possible, e.g., by using
   stronger buffers, it is performed first"): upsize the buffers driving
   critical subtrees — those whose edge slow-down slack is small, i.e.
   containing the slowest sinks. Reduces Tmax (and improves slews) rather
   than slowing the fast side, which costs slew headroom. [slacks]/[sens]
   come from the round's plan; the decision factor [f] depends on the
   candidate's scale, so the gain/cost test stays in here. *)
let speedup_pass config tree ~slacks ~sens ~scale =
  ignore config;
  let k = Tech.Units.rc_to_ps in
  let skew = ref 0. in
  Array.iter
    (fun s -> skew := Float.max !skew slacks.Slack.sink_slow.(s))
    (Tree.sinks tree);
  let threshold = 0.25 *. !skew in
  let f = 1. +. (0.20 *. scale) in
  Array.iter
    (fun id ->
      if slacks.Slack.slow.(id) < threshold then begin
        match (Tree.node tree id).Tree.kind with
        | Tree.Buffer b ->
          (* Net benefit of upsizing by f: the output stage speeds up by
             ΔR·Cdown, the input stage slows by Rup·ΔCin; upsize only when
             the first term clearly wins. *)
          let dr = Tech.Composite.r_out b *. (1. -. (1. /. f)) in
          let dcin = Tech.Composite.c_in b *. (f -. 1.) in
          let gain = k *. dr *. sens.Probes.cdown.(id) in
          let cost = k *. sens.Probes.rup.(id) *. dcin in
          if gain > 1.5 *. cost then scale_buffer tree id f
        | _ -> ()
      end)
    (Tree.buffer_ids tree)

let speedup config tree ~baseline =
  let eval, rounds, _ =
    Ivc.adaptive_iterate config tree ~baseline ~objective:Ivc.Skew
      (fun t ev ->
        let slacks =
          Slack.combined ~multicorner:config.Config.multicorner_slacks t ev
        in
        let sens = Probes.sensitivities t in
        fun ~scale t -> speedup_pass config t ~slacks ~sens ~scale)
  in
  (eval, rounds)

let run config tree ~baseline =
  (* Trunk sizing: p_i = 100/(i+3) percent at iteration i. The plan runs
     once per round, so the iteration counter lives there; the returned
     closure only applies the precomputed scaling. *)
  let iteration = ref 0 in
  let eval, trunk_rounds =
    Ivc.iterate config tree ~baseline ~objective:Ivc.Clr (fun plan_t _ev ->
        incr iteration;
        let p = 100. /. float_of_int (!iteration + 3) in
        let f = 1. +. (p /. 100.) in
        let trunk = Buffer_slide.trunk_buffers plan_t in
        fun t -> List.iter (fun id -> scale_buffer t id f) trunk)
  in
  (* Branch sizing with capacitance borrowing. *)
  let branch_round = ref 0 in
  let eval, branch_rounds =
    Ivc.iterate config tree ~baseline:eval ~objective:Ivc.Clr
      (fun plan_t _ev ->
        incr branch_round;
        let p = 100. /. float_of_int (!branch_round + 4) in
        let f = 1. +. (p /. 100.) in
        let depths = buffer_depths plan_t in
        let trunk = Buffer_slide.trunk_buffers plan_t in
        let trunk_levels = List.length trunk in
        let targets =
          Array.to_list (Tree.buffer_ids plan_t)
          |> List.filter (fun id ->
                 let d = depths.(id) in
                 d >= trunk_levels
                 && d < trunk_levels + config.Config.branch_levels
                 && not (List.mem id trunk))
        in
        let donors =
          bottom_buffers plan_t
          |> List.filter (fun id -> not (List.mem id targets))
        in
        fun t ->
          let before_cap = cin_sum t targets in
          List.iter (fun id -> scale_buffer t id f) targets;
          let added = cin_sum t targets -. before_cap in
          let donor_cap = cin_sum t donors in
          if donor_cap > added && added > 0. then begin
            let g = (donor_cap -. added) /. donor_cap in
            List.iter (fun id -> scale_buffer t id (Float.max 0.3 g)) donors
          end)
  in
  { eval; trunk_rounds; branch_rounds }
