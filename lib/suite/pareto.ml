module Flow = Core.Flow
module Config = Core.Config
module Ev = Analysis.Evaluator
module Json = Report.Json

type knob = {
  k_label : string;
  k_multiwidth : bool;
  k_composite_counts : int list option;
  k_snake_unit : int option;
  k_max_snake_per_round : int option;
  k_transient_mode : Analysis.Transient.mode option;
  k_speculation : int option;
}

let point label =
  {
    k_label = label;
    k_multiwidth = false;
    k_composite_counts = None;
    k_snake_unit = None;
    k_max_snake_per_round = None;
    k_transient_mode = None;
    k_speculation = None;
  }

(* The speculation-width points trace bit-identical trees (width changes
   only the schedule), so they exercise the runtime axis while their
   stage solves land almost entirely in the shared store — the sweep's
   guaranteed-reuse points. Baseline first: with sequential jobs every
   later point starts against a warm store. *)
let default_grid =
  [
    point "baseline";
    { (point "spec-serial") with k_speculation = Some 1 };
    { (point "spec-2") with k_speculation = Some 2 };
    { (point "spec-3") with k_speculation = Some 3 };
    { (point "spec-4") with k_speculation = Some 4 };
    { (point "spec-8") with k_speculation = Some 8 };
    { (point "buffers-coarse") with
      k_composite_counts = Some [ 64; 32; 16; 8; 4; 2; 1 ] };
    { (point "multiwidth") with k_multiwidth = true };
    { (point "snake-fine") with k_snake_unit = Some 1_000 };
    { (point "snake-coarse") with k_snake_unit = Some 4_000 };
    { (point "transient-fixed") with
      k_transient_mode = Some Analysis.Transient.Fixed };
  ]

type metrics = {
  pm_skew_ps : float;
  pm_clr_ps : float;
  pm_t_max_ps : float;
  pm_cap_ff : float;
  pm_cap_pct : float;
  pm_buffers : int;
  pm_eval_runs : int;
}

type point_report = {
  pt_label : string;
  pt_family : string;
  pt_seconds : float;
  pt_store_hits : int;
  pt_store_misses : int;
  pt_outcome : (metrics, string) result;
  pt_on_front : bool;
}

type t = {
  pr_bench : string;
  pr_points : point_report list;
  pr_seconds : float;
}

let knob_config base k =
  let c = base in
  let c =
    match k.k_composite_counts with
    | Some l -> { c with Config.composite_counts = l }
    | None -> c
  in
  let c =
    match k.k_snake_unit with
    | Some n -> { c with Config.snake_unit = n }
    | None -> c
  in
  let c =
    match k.k_max_snake_per_round with
    | Some n -> { c with Config.max_snake_per_round = n }
    | None -> c
  in
  let c =
    match k.k_transient_mode with
    | Some m -> { c with Config.transient_mode = m }
    | None -> c
  in
  match k.k_speculation with
  | Some n -> { c with Config.speculation = n }
  | None -> c

let engine_word = function
  | Ev.Spice -> "spice"
  | Ev.Arnoldi -> "arnoldi"
  | Ev.Elmore_model -> "elmore"

let mode_word = function
  | Analysis.Transient.Fixed -> "fixed"
  | Analysis.Transient.Adaptive { mult } -> Printf.sprintf "adaptive%d" mult
  | Analysis.Transient.Auto { max_mult } -> Printf.sprintf "auto%d" max_mult

(* Two points may share a store only while the kernel numerics that
   computed its entries match — the same gate {!Core.Flow} applies to
   degraded retries. Content-level knobs (buffer counts, snaking, wire
   widths, speculation) change which stages exist, not how a given stage
   solves, so they stay in one family. *)
let family_of (c : Config.t) =
  Printf.sprintf "%s%s/seg%d/step%g/%s" (engine_word c.Config.engine)
    (if c.Config.flat then "+flat" else "")
    c.Config.seg_len c.Config.transient_step
    (mode_word c.Config.transient_mode)

let run ?timeout ?jobs ?(config = Config.default) ?(grid = default_grid)
    (b : Format_io.t) =
  let t0 = Core.Monoclock.now () in
  (* Family stores and per-point handles are set up sequentially, before
     the parallel map — the stores themselves are lock-striped and safe
     to share, the bookkeeping hashtable is not. *)
  let stores = Hashtbl.create 4 in
  let prepared =
    Array.of_list
      (List.map
         (fun k ->
           let c = knob_config config k in
           let family = family_of c in
           let store =
             match Hashtbl.find_opt stores family with
             | Some s -> s
             | None ->
               let s = Ev.Store.create () in
               Hashtbl.replace stores family s;
               s
           in
           (k, c, family, Ev.Store.handle store))
         grid)
  in
  let run_point (k, c, family, handle) =
    let t0 = Core.Monoclock.now () in
    let deadline = Option.map (fun s -> t0 +. s) timeout in
    let c = { c with Config.deadline; store = Some handle } in
    let tech =
      if k.k_multiwidth then
        Tech.default45_multiwidth ~cap_limit:b.Format_io.tech.Tech.cap_limit ()
      else b.Format_io.tech
    in
    let outcome =
      match
        Flow.run ~config:c ~tech ~source:b.Format_io.source
          ~obstacles:b.Format_io.obstacles b.Format_io.sinks
      with
      | r ->
        let final = r.Flow.final in
        let stats = final.Ev.stats in
        let cap_limit = tech.Tech.cap_limit in
        Ok
          {
            pm_skew_ps = final.Ev.skew;
            pm_clr_ps = final.Ev.clr;
            pm_t_max_ps = final.Ev.t_max;
            pm_cap_ff = stats.Ctree.Stats.total_cap;
            pm_cap_pct =
              (if cap_limit = infinity then nan
               else 100. *. stats.Ctree.Stats.total_cap /. cap_limit);
            pm_buffers = stats.Ctree.Stats.buffer_count;
            pm_eval_runs = r.Flow.eval_runs;
          }
      | exception Core.Ivc.Deadline_exceeded ->
        Error
          (Printf.sprintf "exceeded the %gs wall-clock budget"
             (Option.value timeout ~default:nan))
      | exception e -> Error (Printexc.to_string e)
    in
    {
      pt_label = k.k_label;
      pt_family = family;
      pt_seconds = Core.Monoclock.now () -. t0;
      pt_store_hits = Ev.Store.hits handle;
      pt_store_misses = Ev.Store.misses handle;
      pt_outcome = outcome;
      pt_on_front = false;
    }
  in
  let pool = Analysis.Domain_pool.create ?size:jobs () in
  let points =
    Fun.protect
      ~finally:(fun () -> Analysis.Domain_pool.shutdown pool)
      (fun () -> Analysis.Domain_pool.map pool run_point prepared)
  in
  (* Non-dominated front over (skew, CLR, cap, runtime): a point is off
     the front iff some other completed point is at least as good on
     every axis and strictly better on one. *)
  let axes = function
    | { pt_outcome = Ok m; pt_seconds; _ } ->
      Some [| m.pm_skew_ps; m.pm_clr_ps; m.pm_cap_ff; pt_seconds |]
    | { pt_outcome = Error _; _ } -> None
  in
  let dominates a b =
    let le = ref true and lt = ref false in
    Array.iteri
      (fun i av ->
        if av > b.(i) then le := false;
        if av < b.(i) then lt := true)
      a;
    !le && !lt
  in
  let points =
    Array.to_list
      (Array.map
         (fun p ->
           match axes p with
           | None -> p
           | Some own ->
             let dominated =
               Array.exists
                 (fun q ->
                   match axes q with
                   | Some other -> q != p && dominates other own
                   | None -> false)
                 points
             in
             { p with pt_on_front = not dominated })
         points)
  in
  { pr_bench = b.Format_io.name; pr_points = points;
    pr_seconds = Core.Monoclock.now () -. t0 }

let store_totals r =
  List.fold_left
    (fun (h, m) p -> (h + p.pt_store_hits, m + p.pt_store_misses))
    (0, 0) r.pr_points

let hit_rate r =
  let h, m = store_totals r in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let table r =
  let rows =
    List.map
      (fun p ->
        let skew, clr, cap, evals =
          match p.pt_outcome with
          | Ok m ->
            ( Report.fmt ~decimals:2 m.pm_skew_ps,
              Report.fmt ~decimals:2 m.pm_clr_ps,
              Report.fmt ~decimals:1 (m.pm_cap_ff /. 1000.),
              string_of_int m.pm_eval_runs )
          | Error _ -> ("-", "-", "-", "-")
        in
        let reuse =
          let total = p.pt_store_hits + p.pt_store_misses in
          if total = 0 then "-"
          else
            Printf.sprintf "%.0f%%"
              (100. *. float_of_int p.pt_store_hits /. float_of_int total)
        in
        [ p.pt_label; skew; clr; cap; evals;
          Report.fmt ~decimals:1 p.pt_seconds; reuse;
          (if p.pt_on_front then "*" else
           match p.pt_outcome with Ok _ -> "" | Error _ -> "failed") ])
      r.pr_points
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Pareto sweep — %s (front members starred; reuse = shared-store \
          hit rate)"
         r.pr_bench)
    ~header:
      [ "point"; "skew ps"; "CLR ps"; "cap pF"; "evals"; "s"; "reuse";
        "front" ]
    rows

let point_json p =
  let base =
    [
      ("label", Json.Str p.pt_label);
      ("family", Json.Str p.pt_family);
      ("seconds", Json.Num p.pt_seconds);
      ("store_hits", Json.Num (float_of_int p.pt_store_hits));
      ("store_misses", Json.Num (float_of_int p.pt_store_misses));
      ("pareto", Json.Bool p.pt_on_front);
    ]
  in
  let outcome =
    match p.pt_outcome with
    | Ok m ->
      [
        ("status", Json.Str "completed");
        ("skew_ps", Json.Num m.pm_skew_ps);
        ("clr_ps", Json.Num m.pm_clr_ps);
        ("t_max_ps", Json.Num m.pm_t_max_ps);
        ("cap_ff", Json.Num m.pm_cap_ff);
        ("cap_pct", Json.Num m.pm_cap_pct);
        ("buffers", Json.Num (float_of_int m.pm_buffers));
        ("eval_runs", Json.Num (float_of_int m.pm_eval_runs));
      ]
    | Error detail ->
      [ ("status", Json.Str "failed"); ("detail", Json.Str detail) ]
  in
  Json.Obj (base @ outcome)

let to_json r =
  let hits, misses = store_totals r in
  Json.Obj
    [
      ("bench", Json.Str r.pr_bench);
      ("seconds", Json.Num r.pr_seconds);
      ("store",
       Json.Obj
         [
           ("hits", Json.Num (float_of_int hits));
           ("misses", Json.Num (float_of_int misses));
           ("hit_rate", Json.Num (hit_rate r));
         ]);
      ("points", Json.List (List.map point_json r.pr_points));
    ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_json ~out_dir r =
  mkdir_p out_dir;
  let path = Filename.concat out_dir (r.pr_bench ^ ".pareto.json") in
  Core.Persist.write_atomic path (Json.to_string (to_json r));
  path
