(** Text format for clock-network synthesis benchmarks, in the spirit of
    the ISPD'09 contest files.

    Grammar (one directive per line, [#] comments, blank lines ignored):
    {v
    chip <lx> <ly> <hx> <hy>          # die, nm
    source <x> <y>                    # clock source pin, nm
    slewlimit <ps>
    caplimit <fF>                     # omit for unlimited
    wire <name> <res ohm/um> <cap fF/um>     # narrow..wide order
    inverter <name> <cin fF> <cout fF> <rout ohm> <dint ps>
    sink <name> <x> <y> <cap fF> [parity]
    obstacle <lx> <ly> <hx> <hy>
    v}
    [wire]/[inverter] lines are optional; the 45 nm contest technology is
    used when absent. *)

type t = {
  name : string;
  chip : Geometry.Rect.t;
  source : Geometry.Point.t;
  sinks : Dme.Zst.sink_spec array;
  obstacles : Geometry.Rect.t list;
  tech : Tech.t;
}

val to_string : t -> string
val of_string : name:string -> string -> (t, string) result

val write_file : string -> t -> unit

(** @raise Failure on parse errors, with the offending line number. *)
val read_file : string -> t
