(** Text format for clock-network synthesis benchmarks, in the spirit of
    the ISPD'09 contest files.

    Grammar (one directive per line, [#] comments, blank lines ignored):
    {v
    chip <lx> <ly> <hx> <hy>          # die, nm
    source <x> <y>                    # clock source pin, nm
    slewlimit <ps>
    caplimit <fF>                     # omit for unlimited
    wire <name> <res ohm/um> <cap fF/um>     # narrow..wide order
    inverter <name> <cin fF> <cout fF> <rout ohm> <dint ps>
    sink <name> <x> <y> <cap fF> [parity]
    obstacle <lx> <ly> <hx> <hy>
    v}
    [wire]/[inverter] lines are optional; the 45 nm contest technology is
    used when absent. *)

type t = {
  name : string;
  chip : Geometry.Rect.t;
  source : Geometry.Point.t;
  sinks : Dme.Zst.sink_spec array;
  obstacles : Geometry.Rect.t list;
  tech : Tech.t;
}

val to_string : t -> string
val of_string : name:string -> string -> (t, string) result

(** Atomic (tmp + rename via {!Core.Persist.write_atomic}): a crash
    never leaves a torn benchmark file. *)
val write_file : string -> t -> unit

(** Never raises: I/O failures yield [Error msg]; parse errors yield
    [Error "path:line: message"] so CLI diagnostics point at the
    offending line. *)
val read_file : string -> (t, string) result
