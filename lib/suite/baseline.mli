(** Greedy-CTS baseline: what a non-integrated flow produces.

    Same nearest-neighbour topology as Contango, but: centroid embedding
    instead of DME merging segments (no zero-skew balancing, no snaking),
    a fixed mid-strength composite buffer instead of the sizing sweep,
    naive per-sink polarity patching, and no slack-driven optimization at
    all. Stands in for the contest-grade comparison flows of Table IV. *)

type result = {
  tree : Ctree.Tree.t;
  eval : Analysis.Evaluator.t;
  seconds : float;
}

val run :
  ?config:Core.Config.t -> Format_io.t -> result
