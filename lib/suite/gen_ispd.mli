(** Synthetic stand-ins for the seven ISPD'09 CNS contest benchmarks.

    The original files are not redistributable, so each benchmark is
    regenerated deterministically from its published statistics: die size
    (up to 17 mm × 17 mm), sink count (91–330), clustered sink placement,
    blockages on the SoC-style benchmarks, the contest's 45 nm electricals
    (Table I inverters, two wire widths), 100 ps slew limit, and a total
    capacitance budget. Same name ⇒ same benchmark, bit for bit. *)

(** ["ispd09f11"] … ["ispd09fnb1"]. *)
val names : string list

(** @raise Invalid_argument for unknown names. *)
val generate : string -> Format_io.t

val all : unit -> Format_io.t list
