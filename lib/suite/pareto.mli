(** Cache-reusing Pareto sweep — the harness behind [contango pareto].

    Runs one benchmark instance through the full {!Core.Flow} once per
    knob vector (buffer-count ladder, wire-width set, snaking
    granularity, transient stepping mode, speculation width) and reduces
    the results to the non-dominated front over (skew, CLR, total cap,
    runtime) — the axes of the paper's quality/cost trade-off tables.

    Points run concurrently on a dedicated {!Analysis.Domain_pool} and
    share stage-result stores ({!Analysis.Evaluator.Store}) across
    points: every point whose kernel numerics match (same engine, flat
    setting, segmentation, transient step and mode — the {e family})
    attaches a handle onto one family store, so a point re-solving a
    stage another point already solved answers it from cache instead of
    re-running the kernel. Knobs that change only the search trajectory
    (speculation width) or tree content (buffer counts, snaking) share a
    family; knobs that change the numerics (transient mode) get their
    own — reusing across those would change results.

    Sweeps with [jobs = 0] (sequential points) maximise reuse — later
    points see everything earlier points solved; parallel sweeps trade
    some hit rate for wall-clock. *)

(** One knob vector: [None]/[false] fields keep the base configuration's
    value, so {!point} with all defaults is the unmodified flow. *)
type knob = {
  k_label : string;
  k_multiwidth : bool;
      (** swap the technology for {!Tech.default45_multiwidth} (four
          graduated wire widths — finer TWSZ steps), keeping the
          benchmark's cap limit. Approximate for benchmarks carrying a
          custom technology: the sweep substitutes the contest 45 nm
          bundle *)
  k_composite_counts : int list option;  (** buffer-count ladder *)
  k_snake_unit : int option;             (** l_wn, nm *)
  k_max_snake_per_round : int option;
  k_transient_mode : Analysis.Transient.mode option;
      (** a different stepping controller starts its own store family *)
  k_speculation : int option;
}

(** All-default knob vector with the given label. *)
val point : string -> knob

(** The standard eleven-point grid: baseline, a coarse buffer-count
    ladder, the multiwidth wire set, fine/coarse snaking, the [Fixed]
    transient reference, and speculation widths 1/2/3/4/8 (identical
    result trajectories — the runtime axis — whose stage solves hit the
    shared store almost completely). *)
val default_grid : knob list

type metrics = {
  pm_skew_ps : float;
  pm_clr_ps : float;
  pm_t_max_ps : float;
  pm_cap_ff : float;   (** total tree capacitance — the power axis *)
  pm_cap_pct : float;  (** cap as % of the limit; [nan] if unlimited *)
  pm_buffers : int;
  pm_eval_runs : int;
}

type point_report = {
  pt_label : string;
  pt_family : string;
      (** the kernel-numerics store family this point shared *)
  pt_seconds : float;
  pt_store_hits : int;
      (** stage solves answered by another point's work (or an earlier
          stage of this one) through the family store *)
  pt_store_misses : int;
  pt_outcome : (metrics, string) result;  (** [Error] = crash/timeout *)
  pt_on_front : bool;
      (** member of the non-dominated front over
          (skew, CLR, cap, seconds); always [false] for failed points *)
}

type t = {
  pr_bench : string;
  pr_points : point_report list;  (** in grid order *)
  pr_seconds : float;
}

(** Completed-point store traffic summed across the sweep. *)
val store_totals : t -> int * int

(** [hits / (hits + misses)]; 0 when the sweep never touched a store. *)
val hit_rate : t -> float

(** Run the sweep. [timeout] bounds each point (cooperative deadline,
    like the suite runner); [jobs] is the point-level worker count
    ([Some 0] = sequential, the maximum-reuse setting; default: one per
    spare core); [config] seeds every point before its knob vector is
    applied. Never raises on point failure — failed points carry
    [Error detail]. *)
val run :
  ?timeout:float -> ?jobs:int -> ?config:Core.Config.t ->
  ?grid:knob list -> Format_io.t -> t

(** Paper-style summary table: one row per point, front members
    marked. *)
val table : t -> string

val to_json : t -> Report.Json.t

(** Write [<out_dir>/<bench>.pareto.json] atomically; returns the path
    written. *)
val write_json : out_dir:string -> t -> string
