(** Deterministic splittable PRNG (splitmix64) so that benchmark
    generation never depends on global [Random] state: the same seed
    always produces the same benchmark, on any platform. *)

type t

val create : int -> t

(** Uniform in [0, bound). @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

(** Standard normal (Box–Muller). *)
val normal : t -> float

(** Independent generator derived from this one's stream. *)
val split : t -> t
