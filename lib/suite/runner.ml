module Flow = Core.Flow
module Ev = Analysis.Evaluator
module Json = Report.Json

type spec =
  | Bench of Format_io.t
  | Inject_fail of string
  | Inject_hang of string
  | Bad_spec of { bs_name : string; bs_detail : string }

let load_bench s =
  if Sys.file_exists s then
    match Format_io.read_file s with
    | Ok b -> b
    | Error e -> failwith e
  else if List.mem s Gen_ispd.names then Gen_ispd.generate s
  else
    let prefixed p =
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = p ->
        Some (String.sub s (i + 1) (String.length s - i - 1))
      | _ -> None
    in
    (* [ti:]/[grid:] sizes must be strictly positive integers: a generator
       handed 0 or a negative count would otherwise fail obscurely deep
       in topology construction (or not at all, looping on an empty sink
       set). *)
    let sized p body =
      match int_of_string_opt body with
      | Some n when n > 0 -> n
      | Some n ->
        failwith
          (Printf.sprintf "%s: %s:<n> needs a positive sink count, got %d" s p n)
      | None ->
        failwith
          (Printf.sprintf "%s: %s:<n> needs a positive integer, got %S" s p body)
    in
    match (prefixed "ti", prefixed "grid") with
    | Some body, _ -> Gen_ti.generate (sized "ti" body)
    | _, Some body -> Gen_grid.generate ~n:(sized "grid" body) ()
    | None, None ->
      failwith
        (Printf.sprintf
           "%s: not a file, an ISPD'09 name (%s), ti:<sinks> or grid:<n>" s
           (String.concat ", " Gen_ispd.names))

let spec_of_string s =
  let prefixed p =
    let pl = String.length p in
    if String.length s > pl && String.sub s 0 pl = p then
      Some (String.sub s pl (String.length s - pl))
    else None
  in
  match (prefixed "fail:", prefixed "hang:") with
  | Some name, _ -> Inject_fail name
  | _, Some name -> Inject_hang name
  | None, None -> (
    (* An unloadable spec becomes a structured per-instance failure —
       one bad argument must not abort a whole suite of good ones. *)
    try Bench (load_bench s)
    with Failure detail -> Bad_spec { bs_name = s; bs_detail = detail })

type reason = Crashed | Timed_out

type completed = {
  skew_ps : float;
  clr_ps : float;
  t_max_ps : float;
  cap_pct : float;
  buffers : int;
  eval_runs : int;
  store_hits : int;
  store_misses : int;
  digest : int64;
}

type status =
  | Completed of completed
  | Failed of { reason : reason; detail : string }

type instance_report = {
  name : string;
  sinks : int;
  regions : int;
  status : status;
  seconds : float;
  steps : Core.Flow.trace_entry list;
  incidents : Core.Flow.incident list;
  trace_path : string;
}

type t = {
  reports : instance_report list;
  seconds : float;
  out_dir : string;
}

let failures r =
  List.filter
    (fun i -> match i.status with Failed _ -> true | Completed _ -> false)
    r.reports

let spec_name = function
  | Bench b -> b.Format_io.name
  | Inject_fail n | Inject_hang n -> n
  | Bad_spec { bs_name; _ } -> bs_name

let spec_sinks = function
  | Bench b -> Array.length b.Format_io.sinks
  | Inject_fail _ | Inject_hang _ | Bad_spec _ -> 0

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    name

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* JSONL telemetry                                                     *)
(* ------------------------------------------------------------------ *)

let step_json (e : Flow.trace_entry) =
  Json.Obj
    [
      ("step", Json.Str (Flow.step_name e.Flow.step));
      ("skew_ps", Json.Num e.Flow.skew);
      ("clr_ps", Json.Num e.Flow.clr);
      ("t_max_ps", Json.Num e.Flow.t_max);
      ("eval_runs", Json.Num (float_of_int e.Flow.eval_runs));
      ("seconds", Json.Num e.Flow.seconds);
      ("step_seconds", Json.Num e.Flow.step_seconds);
      ("cache_hits", Json.Num (float_of_int e.Flow.cache_hits));
      ("cache_misses", Json.Num (float_of_int e.Flow.cache_misses));
      ("kernel_solves", Json.Num (float_of_int e.Flow.kernel_solves));
      ("kernel_saved", Json.Num (float_of_int e.Flow.kernel_saved));
      ("kernel_truncations", Json.Num (float_of_int e.Flow.kernel_truncations));
      ("attempts", Json.Num (float_of_int e.Flow.attempts));
      ("accepts", Json.Num (float_of_int e.Flow.accepts));
    ]

let trace_line ~name e =
  match step_json e with
  | Json.Obj fields -> Json.Obj (("bench", Json.Str name) :: fields)
  | other -> other

let incident_json (i : Flow.incident) =
  Json.Obj
    [
      ("event", Json.Str "incident");
      ("step", Json.Str (Flow.step_name i.Flow.inc_step));
      ("attempt", Json.Num (float_of_int i.Flow.inc_attempt));
      ("error", Json.Str i.Flow.inc_error);
      ("action", Json.Str i.Flow.inc_action);
    ]

let incident_line ~name i =
  match incident_json i with
  | Json.Obj fields -> Json.Obj (("bench", Json.Str name) :: fields)
  | other -> other

(* ------------------------------------------------------------------ *)
(* Per-instance execution with fault isolation                         *)
(* ------------------------------------------------------------------ *)

let run_one ~timeout ~config ~store ~resume (spec, trace_path, checkpoint_dir) =
  let name = spec_name spec in
  (* The per-instance budget lives on the monotonic clock — the scale
     {!Core.Config.deadline} is defined on — so a wall-clock jump (NTP
     step, suspend) can neither kill a healthy run nor keep a stuck one
     alive. *)
  let t0 = Core.Monoclock.now () in
  let deadline = Option.map (fun s -> t0 +. s) timeout in
  let steps = ref [] in
  let incidents = ref [] in
  let regions_used = ref 1 in
  let oc = open_out trace_path in
  let finish status =
    {
      name;
      sinks = spec_sinks spec;
      regions = !regions_used;
      status;
      seconds = Core.Monoclock.now () -. t0;
      steps = List.rev !steps;
      incidents = List.rev !incidents;
      trace_path;
    }
  in
  let timed_out () =
    Failed
      {
        reason = Timed_out;
        detail =
          Printf.sprintf "exceeded the %gs wall-clock budget"
            (Option.value timeout ~default:nan);
      }
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      match spec with
      | Bad_spec { bs_detail; _ } ->
        finish (Failed { reason = Crashed; detail = bs_detail })
      | Inject_fail _ ->
        (* Through the same handler as a real crash, so tests exercise the
           exact production path. *)
        (try failwith "injected failure" with
        | Failure _ as e ->
          finish
            (Failed { reason = Crashed; detail = Printexc.to_string e }))
      | Inject_hang _ -> (
        (* A "never converges" instance: only the cooperative deadline can
           end it, exactly like a real flow stuck in its optimization
           loops. *)
        match deadline with
        | None ->
          finish
            (Failed
               {
                 reason = Crashed;
                 detail = "hang instance requires a per-instance timeout";
               })
        | Some d ->
          let rec spin () =
            if Core.Monoclock.now () > d then raise Core.Ivc.Deadline_exceeded
            else begin
              Unix.sleepf 0.005;
              spin ()
            end
          in
          (try spin () with Core.Ivc.Deadline_exceeded -> ());
          finish (timed_out ()))
      | Bench b -> (
        (* Each instance gets its own handle onto the suite-shared store,
           so the hit/miss counters below are exactly this instance's
           cross-instance reuse (handles share tables, not counters). *)
        let handle = Option.map Ev.Store.handle store in
        let config =
          match handle with
          | Some h -> { config with Core.Config.deadline; store = Some h }
          | None -> { config with Core.Config.deadline }
        in
        let on_step e =
          steps := e :: !steps;
          output_string oc (Json.to_compact_string (trace_line ~name e));
          output_char oc '\n';
          (* Flushed per line so a later crash loses no telemetry. *)
          flush oc
        in
        (* Incidents stream into the same JSONL file (distinguished by
           their ["event": "incident"] field) so a later SIGKILL loses
           neither telemetry nor failure forensics. *)
        let on_incident i =
          incidents := i :: !incidents;
          output_string oc (Json.to_compact_string (incident_line ~name i));
          output_char oc '\n';
          flush oc
        in
        try
          (* [run_regional] with [regions <= 1] delegates to the plain
             flow bit-for-bit, so every instance goes through one entry
             point. *)
          let rr =
            Flow.run_regional ~config ~on_step ~on_incident ?checkpoint_dir
              ~resume ~tech:b.Format_io.tech ~source:b.Format_io.source
              ~obstacles:b.Format_io.obstacles b.Format_io.sinks
          in
          let r = rr.Flow.r_flow in
          (* Per-region telemetry joins the JSONL stream (these lines only
             exist once the stitched run finished, unlike the streamed
             step lines). *)
          (match rr.Flow.r_stitch with
          | None -> ()
          | Some st ->
            regions_used := List.length st.Flow.st_regions;
            List.iter
              (fun (rg : Flow.region_report) ->
                let line =
                  Json.Obj
                    [
                      ("bench", Json.Str name);
                      ("event", Json.Str "region");
                      ("region", Json.Num (float_of_int rg.Flow.rg_index));
                      ("sinks", Json.Num (float_of_int rg.Flow.rg_sinks));
                      ("skew_ps", Json.Num rg.Flow.rg_skew);
                      ("clr_ps", Json.Num rg.Flow.rg_clr);
                      ("t_max_ps", Json.Num rg.Flow.rg_t_max);
                      ("seconds", Json.Num rg.Flow.rg_seconds);
                      ("eval_runs",
                       Json.Num (float_of_int rg.Flow.rg_eval_runs));
                      ("incidents",
                       Json.Num (float_of_int rg.Flow.rg_incidents));
                    ]
                in
                output_string oc (Json.to_compact_string line);
                output_char oc '\n')
              st.Flow.st_regions;
            let line =
              Json.Obj
                [
                  ("bench", Json.Str name);
                  ("event", Json.Str "stitch");
                  ("predicted_skew_ps", Json.Num st.Flow.st_predicted_skew);
                  ("polish_rounds",
                   Json.Num (float_of_int st.Flow.st_rounds));
                  ("max_pad_ps", Json.Num st.Flow.st_max_pad_ps);
                ]
            in
            output_string oc (Json.to_compact_string line);
            output_char oc '\n';
            flush oc);
          let final = r.Flow.final in
          let stats = final.Ev.stats in
          let cap_limit = b.Format_io.tech.Tech.cap_limit in
          finish
            (Completed
               {
                 skew_ps = final.Ev.skew;
                 clr_ps = final.Ev.clr;
                 t_max_ps = final.Ev.t_max;
                 cap_pct =
                   (if cap_limit = infinity then nan
                    else 100. *. stats.Ctree.Stats.total_cap /. cap_limit);
                 buffers = stats.Ctree.Stats.buffer_count;
                 eval_runs = r.Flow.eval_runs;
                 store_hits =
                   (match config.Core.Config.store with
                   | Some h -> Ev.Store.hits h
                   | None -> 0);
                 store_misses =
                   (match config.Core.Config.store with
                   | Some h -> Ev.Store.misses h
                   | None -> 0);
                 digest = Ctree.Tree.digest r.Flow.tree;
               })
        with
        | Core.Ivc.Deadline_exceeded -> finish (timed_out ())
        | e ->
          finish (Failed { reason = Crashed; detail = Printexc.to_string e })))

let run ?(out_dir = "bench_out") ?timeout ?jobs ?(config = Core.Config.default)
    ?checkpoints ?(resume = false) specs =
  mkdir_p out_dir;
  let t0 = Core.Monoclock.now () in
  (* Unique trace paths (and checkpoint directories) even when the same
     benchmark appears twice. *)
  let seen = Hashtbl.create 8 in
  let jobs_arr =
    Array.of_list
      (List.map
         (fun spec ->
           let base = sanitize (spec_name spec) in
           let count =
             match Hashtbl.find_opt seen base with Some c -> c + 1 | None -> 1
           in
           Hashtbl.replace seen base count;
           let unique =
             if count = 1 then base else Printf.sprintf "%s~%d" base count
           in
           let ckpt_dir =
             Option.map (fun root -> Filename.concat root unique) checkpoints
           in
           (spec, Filename.concat out_dir (unique ^ ".trace.jsonl"), ckpt_dir))
         specs)
  in
  let pool = Analysis.Domain_pool.create ?size:jobs () in
  (* One stage-result store shared across the whole suite: instances with
     overlapping subtrees (or a resumed re-run) answer each other's stage
     solves. Entries are content-keyed, so instances of different sizes
     or techs coexist safely — they just never collide. A caller that
     already threads its own store handle (the serve daemon) keeps it. *)
  let store =
    if config.Core.Config.store = None then Some (Ev.Store.create ())
    else None
  in
  let reports =
    Fun.protect
      ~finally:(fun () -> Analysis.Domain_pool.shutdown pool)
      (fun () ->
        (* Largest instance first: on a multi-worker pool this keeps the
           tail of the suite from waiting on the biggest benchmark. *)
        Analysis.Domain_pool.map_weighted pool
          ~weight:(fun (spec, _, _) -> spec_sinks spec)
          (run_one ~timeout ~config ~store ~resume)
          jobs_arr)
  in
  { reports = Array.to_list reports; seconds = Core.Monoclock.now () -. t0;
    out_dir }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let status_word = function
  | Completed _ -> "completed"
  | Failed { reason = Crashed; _ } -> "crashed"
  | Failed { reason = Timed_out; _ } -> "timed_out"

let summary_table result =
  let rows =
    List.map
      (fun r ->
        let skew, clr =
          match r.status with
          | Completed c -> (Report.fmt ~decimals:2 c.skew_ps,
                            Report.fmt ~decimals:2 c.clr_ps)
          | Failed _ -> ("-", "-")
        in
        let paper_clr =
          match List.assoc_opt r.name Report.paper_table4 with
          | Some (Some (clr, _, _) :: _) -> Report.fmt ~decimals:2 clr
          | _ -> "-"
        in
        [ r.name; string_of_int r.sinks; status_word r.status; skew; clr;
          paper_clr; Report.fmt ~decimals:1 r.seconds ])
      result.reports
  in
  Report.table
    ~title:
      "Suite — measured vs paper (paper CLR = Table IV Contango, ISPD'09 \
       benchmarks only)"
    ~header:[ "bench"; "sinks"; "status"; "skew ps"; "CLR ps"; "CLR(p)"; "s" ]
    rows

let instance_json r =
  let base =
    [
      ("name", Json.Str r.name);
      ("sinks", Json.Num (float_of_int r.sinks));
      ("regions", Json.Num (float_of_int r.regions));
      ("status", Json.Str (status_word r.status));
      ("seconds", Json.Num r.seconds);
    ]
  in
  let outcome =
    match r.status with
    | Completed c ->
      [
        ("skew_ps", Json.Num c.skew_ps);
        ("clr_ps", Json.Num c.clr_ps);
        ("t_max_ps", Json.Num c.t_max_ps);
        ("cap_pct", Json.Num c.cap_pct);
        ("buffers", Json.Num (float_of_int c.buffers));
        ("eval_runs", Json.Num (float_of_int c.eval_runs));
        ("store_hits", Json.Num (float_of_int c.store_hits));
        ("store_misses", Json.Num (float_of_int c.store_misses));
        ("tree_digest", Json.Str (Printf.sprintf "%016Lx" c.digest));
      ]
    | Failed { detail; _ } -> [ ("detail", Json.Str detail) ]
  in
  let steps = [ ("steps", Json.List (List.map step_json r.steps)) ] in
  let incidents =
    if r.incidents = [] then []
    else [ ("incidents", Json.List (List.map incident_json r.incidents)) ]
  in
  let trace = [ ("trace_file", Json.Str (Filename.basename r.trace_path)) ] in
  Json.Obj (base @ outcome @ steps @ incidents @ trace)

let to_json result =
  let completed =
    List.length result.reports - List.length (failures result)
  in
  let store_hits, store_misses =
    List.fold_left
      (fun (h, m) r ->
        match r.status with
        | Completed c -> (h + c.store_hits, m + c.store_misses)
        | Failed _ -> (h, m))
      (0, 0) result.reports
  in
  Json.Obj
    [
      ("suite",
       Json.Obj
         [
           ("seconds", Json.Num result.seconds);
           ("instances", Json.Num (float_of_int (List.length result.reports)));
           ("completed", Json.Num (float_of_int completed));
           ("failed",
            Json.Num (float_of_int (List.length (failures result))));
           ("store_hits", Json.Num (float_of_int store_hits));
           ("store_misses", Json.Num (float_of_int store_misses));
         ]);
      ("instances", Json.List (List.map instance_json result.reports));
    ]

let write_suite_json result =
  let path = Filename.concat result.out_dir "suite.json" in
  (* Atomic: a crash mid-write never leaves a torn suite.json for a
     later --baseline diff (or a resume inspection) to choke on. *)
  Core.Persist.write_atomic path (Json.to_string (to_json result));
  path

let summary_line result =
  let total = List.length result.reports in
  let failed = failures result in
  let failure_words =
    List.map
      (fun r ->
        Printf.sprintf "%s (%s)" r.name
          (match r.status with
          | Failed { reason = Crashed; _ } -> "crashed"
          | Failed { reason = Timed_out; _ } -> "timed out"
          | Completed _ -> assert false))
      failed
  in
  if failed = [] then
    Printf.sprintf "suite: %d/%d instances completed in %.1f s" total total
      result.seconds
  else
    Printf.sprintf "suite: %d/%d instances completed in %.1f s — FAILED: %s"
      (total - List.length failed)
      total result.seconds
      (String.concat ", " failure_words)

(* ------------------------------------------------------------------ *)
(* Golden-baseline diff                                                *)
(* ------------------------------------------------------------------ *)

type tolerance = { tol_skew_ps : float; tol_clr_ps : float }

let default_tolerance = { tol_skew_ps = 0.5; tol_clr_ps = 1.0 }

type regression = {
  reg_name : string;
  what : string;
  measured : float;
  golden : float;
}

let diff_baseline ?(tolerance = default_tolerance) ~golden result =
  let golden_instances = Json.to_list (Json.member "instances" golden) in
  let measured name =
    List.find_opt (fun r -> r.name = name) result.reports
  in
  List.concat_map
    (fun g ->
      match (Json.to_str (Json.member "name" g),
             Json.to_str (Json.member "status" g)) with
      | Some name, Some "completed" -> (
        let g_skew = Json.to_float (Json.member "skew_ps" g) in
        let g_clr = Json.to_float (Json.member "clr_ps" g) in
        match measured name with
        | None ->
          [ { reg_name = name;
              what = "present in the baseline but missing from this run";
              measured = nan; golden = nan } ]
        | Some { status = Failed { reason; _ }; _ } ->
          [ { reg_name = name;
              what =
                Printf.sprintf "completed in the baseline but %s now"
                  (match reason with
                  | Crashed -> "crashed"
                  | Timed_out -> "timed out");
              measured = nan; golden = nan } ]
        | Some { status = Completed c; _ } ->
          let metric what tol golden_v measured_v =
            match golden_v with
            | Some gv when measured_v > gv +. tol ->
              [ { reg_name = name;
                  what =
                    Printf.sprintf "%s regressed %.3f -> %.3f ps (tol %.3f)"
                      what gv measured_v tol;
                  measured = measured_v; golden = gv } ]
            | _ -> []
          in
          metric "skew" tolerance.tol_skew_ps g_skew c.skew_ps
          @ metric "CLR" tolerance.tol_clr_ps g_clr c.clr_ps)
      | _ -> [])
    golden_instances

let load_baseline path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Json.of_string text
