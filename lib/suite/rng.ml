type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Shift by 2 so the result fits OCaml's 63-bit native int without
     wrapping negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let normal t =
  let u1 = Float.max 1e-12 (float t) and u2 = float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let split t = { state = next t }
