open Geometry
module Tree = Ctree.Tree

type result = {
  tree : Tree.t;
  eval : Analysis.Evaluator.t;
  seconds : float;
}

(* Centroid embedding: internal nodes at the midpoint of their children,
   no delay balancing. *)
let embed_centroid ~tech ~source ~topo ~(sinks : Dme.Zst.sink_spec array) =
  let tree = Tree.create ~tech ~source_pos:source in
  let rec centroid = function
    | Dme.Topology.Leaf i -> sinks.(i).Dme.Zst.pos
    | Dme.Topology.Node (a, b) -> Point.midpoint (centroid a) (centroid b)
  in
  let rec place topo ~parent =
    match topo with
    | Dme.Topology.Leaf i ->
      let s = sinks.(i) in
      ignore
        (Tree.add_node tree
           ~kind:
             (Tree.Sink
                { Tree.cap = s.Dme.Zst.cap; parity = s.Dme.Zst.parity;
                  label = s.Dme.Zst.label })
           ~pos:s.Dme.Zst.pos ~parent ())
    | Dme.Topology.Node (a, b) ->
      let id =
        Tree.add_node tree ~kind:Tree.Internal ~pos:(centroid topo) ~parent ()
      in
      place a ~parent:id;
      place b ~parent:id
  in
  place topo ~parent:(Tree.root tree);
  tree

let run ?(config = Core.Config.default) (b : Format_io.t) =
  (* Monotonic, like the runner and flow: a wall-clock (NTP) step here
     would corrupt the baseline timing and hence golden-diff tolerances. *)
  let t0 = Core.Monoclock.now () in
  let tech = b.Format_io.tech in
  let positions = Array.map (fun s -> s.Dme.Zst.pos) b.Format_io.sinks in
  let topo = Dme.Topology.generate positions in
  let tree =
    embed_centroid ~tech ~source:b.Format_io.source ~topo ~sinks:b.Format_io.sinks
  in
  (* Fixed mid-strength buffer; shrink the insertion ceiling until the
     result is slew-legal (a disqualified entry would not be a fair
     comparator), but perform no further optimization. *)
  let buf = Tech.Composite.make Tech.Device.small_inverter 8 in
  let evaluate t =
    Analysis.Evaluator.evaluate ~engine:config.Core.Config.engine
      ~seg_len:config.Core.Config.seg_len t
  in
  let rec insert ceiling tries =
    let buffered =
      Buffering.Fast_vg.insert tree ~buf ~step:config.Core.Config.vg_step
        ~cap_ceiling:ceiling ()
    in
    ignore
      (Core.Polarity.correct buffered ~buf ~strategy:Core.Polarity.Per_sink);
    let eval = evaluate buffered in
    if eval.Analysis.Evaluator.slew_violations = 0 || tries = 0 then
      (buffered, eval)
    else insert (ceiling *. 0.7) (tries - 1)
  in
  let tree, eval = insert (Route.Slewcap.lumped ~tech ~buf ()) 8 in
  { tree; eval; seconds = Core.Monoclock.now () -. t0 }
