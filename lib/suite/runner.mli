(** Fault-tolerant parallel suite runner — the harness behind the
    [contango suite] subcommand.

    Runs an arbitrary set of benchmark instances (ISPD'09 names, [ti:N]
    scalings, [grid:N] grids, [.cts] files) through the full {!Core.Flow}
    across a dedicated {!Analysis.Domain_pool}, with per-instance fault
    isolation: an instance that raises or overruns its wall-clock budget
    becomes a structured failure record while every other instance keeps
    running, so the suite always produces partial results instead of
    aborting.

    Timeouts are cooperative: each instance's budget is installed as
    {!Core.Config.deadline} and checked before every evaluation
    ({!Core.Ivc.evaluate}); the transient kernel's own step budget bounds
    any single march, so a stiff stage cannot hang between checks.

    While an instance runs, each completed flow step streams one JSONL
    telemetry line (via {!Core.Flow.run}'s [on_step] hook) to
    [<out_dir>/<name>.trace.jsonl] — a crash after three steps still
    leaves three parseable lines on disk. The suite summary lands in
    [<out_dir>/suite.json], and {!diff_baseline} compares it against a
    committed golden copy for regression gating.

    Caveat: the evaluation and transient-kernel counters are
    process-global, so with [jobs > 0] the per-instance and per-step
    counter splits are approximate; skew/CLR/latency results themselves
    are unaffected (instances share no mutable state). The runner creates
    its own pool rather than using {!Analysis.Domain_pool.global} so that
    instance jobs and the incremental evaluator's inner corner ×
    transition fan-out (which does use the global pool) never compete for
    the same queue. *)

(** What to run. [Bench] is a loaded benchmark; the two [Inject_*]
    variants exist for fault-path tests and CI smoke runs. *)
type spec =
  | Bench of Format_io.t
  | Inject_fail of string  (** raises immediately — a crashing instance *)
  | Inject_hang of string
      (** never converges: cooperatively polls the deadline until the
          budget expires (or fails outright when no timeout is set) *)
  | Bad_spec of { bs_name : string; bs_detail : string }
      (** a spec string that failed to load or validate — reported as a
          structured [Crashed] instance so the rest of the suite runs *)

(** [load_bench s] — [s] as a [.cts] file path, an ISPD'09 name, [ti:N]
    or [grid:N] (with [N > 0]). @raise Failure with a descriptive
    message otherwise — including non-positive or non-integer sizes. *)
val load_bench : string -> Format_io.t

(** [spec_of_string s] — [fail:NAME] / [hang:NAME] injections, anything
    else via {!load_bench}. Never raises: an unloadable or invalid spec
    (e.g. [ti:-5], [grid:0]) becomes a {!Bad_spec}, which {!run} reports
    as a per-instance [Crashed] record. *)
val spec_of_string : string -> spec

type reason = Crashed | Timed_out

type completed = {
  skew_ps : float;
  clr_ps : float;
  t_max_ps : float;
  cap_pct : float;  (** total cap as % of the limit; [nan] if unlimited *)
  buffers : int;
  eval_runs : int;
  store_hits : int;
      (** stage solves this instance answered from the suite-shared
          {!Analysis.Evaluator.Store} (each instance gets its own handle
          onto one store created per {!run}, unless the caller already
          supplied [config.store]); summed across instances in the
          suite.json header *)
  store_misses : int;
  digest : int64;
      (** {!Ctree.Tree.digest} of the final tree — the bit-identity
          witness behind kill-and-resume equivalence checks (emitted as
          ["tree_digest"] hex in the JSON report) *)
}

type status =
  | Completed of completed
  | Failed of { reason : reason; detail : string }

type instance_report = {
  name : string;
  sinks : int;
  regions : int;
      (** regions the instance actually ran with after clamping (1 =
          monolithic). Regional instances additionally stream one
          ["event":"region"] JSONL line per region and one
          ["event":"stitch"] line into the trace file once the stitched
          run finishes. *)
  status : status;
  seconds : float;
  steps : Core.Flow.trace_entry list;
      (** completed steps in flow order — partial when the instance
          failed mid-run *)
  incidents : Core.Flow.incident list;
      (** stage failures/retries recorded by the flow, in occurrence
          order (also streamed into the trace file as
          ["event":"incident"] JSONL lines) *)
  trace_path : string;  (** the instance's JSONL telemetry file *)
}

type t = {
  reports : instance_report list;  (** in input order *)
  seconds : float;
  out_dir : string;
}

(** Instances whose status is [Failed]. *)
val failures : t -> instance_report list

(** Run the suite. [out_dir] (default ["bench_out"]) receives the
    per-instance [*.trace.jsonl] files and [suite.json]; [timeout] is the
    per-instance wall-clock budget in seconds (default: none); [jobs] is
    the worker-domain count ([Some 0] = strictly sequential, default:
    one per spare core); [config] seeds every instance's flow
    configuration (its [deadline] is overwritten per instance).

    [checkpoints] is a root directory for per-instance verified flow
    checkpoints ([<root>/<name>/<STEP>.ckpt], names uniquified like
    trace files); with [resume] also set, each instance first loads its
    latest checkpoint and skips the completed stages — re-running a
    SIGKILLed suite this way converges to bit-identical final trees
    (compare the ["tree_digest"] fields). [resume] without loadable
    checkpoints just runs from scratch.

    Never raises on instance failure — inspect {!failures}. *)
val run :
  ?out_dir:string -> ?timeout:float -> ?jobs:int -> ?config:Core.Config.t ->
  ?checkpoints:string -> ?resume:bool -> spec list -> t

(** The measured-vs-paper summary table (final skew/CLR next to the
    paper's Table IV Contango CLR where the instance is an ISPD'09
    benchmark), one row per instance including failures. *)
val summary_table : t -> string

val to_json : t -> Report.Json.t

(** Write [<out_dir>/suite.json]; returns the path written. *)
val write_suite_json : t -> string

(** One-line-per-instance exit summary (also encodes failure reasons). *)
val summary_line : t -> string

type tolerance = { tol_skew_ps : float; tol_clr_ps : float }

val default_tolerance : tolerance

type regression = {
  reg_name : string;
  what : string;      (** human-readable: which metric regressed and how *)
  measured : float;   (** [nan] when the instance failed or went missing *)
  golden : float;
}

(** [diff_baseline ~golden result] — regressions of [result] against a
    golden [suite.json] document (as parsed by {!Report.Json.of_string}):
    a completed golden instance that now fails or is missing, or whose
    final skew/CLR exceeds the golden value by more than the tolerance.
    Instances present only in [result] are ignored (new coverage is not a
    regression). *)
val diff_baseline :
  ?tolerance:tolerance -> golden:Report.Json.t -> t -> regression list

(** Read and parse a golden baseline file. *)
val load_baseline : string -> (Report.Json.t, string) result
