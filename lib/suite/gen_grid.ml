open Geometry

let generate ~n ?(pitch = 500_000) () =
  if n < 1 then invalid_arg "Gen_grid.generate: n < 1";
  let sinks =
    Array.init (n * n) (fun idx ->
        let i = idx / n and j = idx mod n in
        { Dme.Zst.label = Printf.sprintf "g%d_%d" i j;
          pos = Point.make ((i + 1) * pitch) ((j + 1) * pitch);
          cap = 10.; parity = 0 })
  in
  let span = (n + 1) * pitch in
  {
    Format_io.name = Printf.sprintf "grid%dx%d" n n;
    chip = Rect.make ~lx:0 ~ly:0 ~hx:span ~hy:span;
    source = Point.make 0 (span / 2);
    sinks;
    obstacles = [];
    tech = Tech.default45 ();
  }
