let fmt ?(decimals = 2) v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v >= 1000. then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.*f" decimals v

let table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> width.(i) <- max width.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let render row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (Printf.sprintf "%*s" (width.(i) + 2) cell))
      row;
    Buffer.add_char buf '\n'
  in
  render header;
  let total = Array.fold_left (fun acc w -> acc + w + 2) 0 width in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter render rows;
  Buffer.contents buf

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf indent v =
    let pad n = String.make (2 * n) ' ' in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num f ->
      if Float.is_finite f then
        Buffer.add_string buf
          (if Float.is_integer f && Float.abs f < 1e15 then
             Printf.sprintf "%.0f" f
           else Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          emit buf (indent + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf (indent + 1) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 1024 in
    emit buf 0 v;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  (* Single-line form, no trailing newline: one JSONL telemetry record per
     call. *)
  let rec emit_compact buf v =
    match v with
    | Null | Bool _ | Num _ | Str _ -> emit buf 0 v
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit_compact buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit_compact buf item)
        fields;
      Buffer.add_char buf '}'

  let to_compact_string v =
    let buf = Buffer.create 256 in
    emit_compact buf v;
    Buffer.contents buf

  (* Recursive-descent parser for everything this module emits (and plain
     JSON generally). Kept dependency-free on purpose: the golden-baseline
     diff has to read back committed suite.json files. *)
  exception Parse of string

  let of_string text =
    let n = String.length text in
    let pos = ref 0 in
    let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some text.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      if !pos < n && text.[!pos] = c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let word w v =
      let l = String.length w in
      if !pos + l <= n && String.sub text !pos l = w then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" w)
    in
    let add_utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = text.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape";
           let e = text.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub text !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
             | Some cp -> add_utf8 buf cp
             | None -> fail "bad \\u escape")
           | _ -> fail "unknown escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      while
        !pos < n
        &&
        match text.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        advance ()
      done;
      match float_of_string_opt (String.sub text start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> word "true" (Bool true)
      | Some 'f' -> word "false" (Bool false)
      | Some 'n' -> word "null" Null
      | Some ('-' | '0' .. '9') -> Num (parse_number ())
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    match parse_value () with
    | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
    | exception Parse msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  let to_float = function
    | Some (Num f) -> Some f
    | _ -> None

  let to_str = function
    | Some (Str s) -> Some s
    | _ -> None

  let to_list = function
    | Some (List l) -> l
    | _ -> []
end

(* -------- Published numbers (DATE'10 paper) -------- *)

(* Table III: (CLR, skew) per benchmark f11 f12 f21 f22 f31 f32 fnb1. *)
let paper_table3 =
  [
    ("INITIAL",
     [ (56.18, 30.58); (75.81, 48.96); (89.29, 59.17); (52.01, 31.55);
       (151.8, 116.5); (121.6, 88.19); (31.86, 21.15) ]);
    ("TBSZ",
     [ (55.61, 46.78); (80.03, 66.24); (89.49, 76.31); (43.16, 33.65);
       (140.3, 129.2); (110.7, 98.27); (31.54, 21.13) ]);
    ("TWSZ",
     [ (23.38, 15.07); (19.70, 8.127); (26.00, 12.25); (16.35, 6.933);
       (43.08, 32.21); (27.23, 14.84); (30.75, 20.44) ]);
    ("TWSN",
     [ (13.75, 2.929); (16.21, 3.384); (17.60, 2.826); (12.58, 1.99);
       (12.81, 3.91); (17.92, 4.594); (13.94, 3.149) ]);
    ("BWSN",
     [ (13.36, 2.867); (15.27, 2.611); (17.40, 2.738); (12.36, 2.227);
       (12.81, 3.91); (17.92, 4.594); (13.40, 3.5) ]);
  ]

let paper_table4_teams = [ "Contango"; "NTU"; "NCTU"; "U.Michigan" ]

(* Table IV rows: per benchmark, per team: (CLR ps, cap %, CPU s); None =
   "fail". *)
let paper_table4 =
  [
    ("ispd09f11",
     [ Some (13.36, 99.61, 6488.); Some (26.71, 85.53, 14764.);
       Some (22.31, 89.90, 23358.); Some (32.29, 73.86, 3892.) ]);
    ("ispd09f12",
     [ Some (15.27, 99.99, 6564.); Some (25.73, 84.72, 13934.);
       Some (22.18, 87.86, 14992.); Some (32.17, 73.45, 3944.) ]);
    ("ispd09f21",
     [ Some (17.40, 96.74, 6673.); Some (30.54, 80.79, 14978.);
       Some (19.61, 86.65, 26420.); Some (34.31, 74.30, 4587.) ]);
    ("ispd09f22",
     [ Some (12.36, 97.43, 3618.); Some (24.51, 81.82, 7189.);
       Some (16.38, 85.01, 9432.); Some (30.45, 70.01, 2005.) ]);
    ("ispd09f31",
     [ Some (12.81, 98.29, 21379.); Some (45.07, 73.49, 40088.);
       Some (212.0, 92.38, 1.29); Some (51.34, 81.53, 17333.) ]);
    ("ispd09f32",
     [ Some (17.92, 99.24, 12895.); Some (36.90, 80.14, 3566.);
       None; Some (40.32, 77.39, 10599.) ]);
    ("ispd09fnb1",
     [ Some (13.40, 78.38, 778.); None; None; Some (19.84, 63.10, 477.) ]);
  ]

(* Table V: sinks, CLR, skew, max 1.2V latency, cap pF, minutes, SPICE
   runs. *)
let paper_table5 =
  [
    (200, 13.47, 2.124, 506.8, 52.21, 2.2, 21);
    (500, 14.84, 2.174, 528.0, 99.53, 6.28, 20);
    (1_000, 17.53, 3.138, 543.1, 162.3, 12.5, 20);
    (2_000, 16.56, 3.136, 543.9, 276.1, 19.3, 15);
    (5_000, 23.20, 3.853, 538.5, 591.1, 99.6, 22);
    (10_000, 25.54, 5.562, 538.0, 1130., 352.8, 23);
    (20_000, 32.47, 10.46, 546.8, 2243., 1867., 35);
    (50_000, 31.52, 8.774, 545.1, 5243., 16027., 45);
  ]

(* Table II: inverted sinks after insertion vs. added inverters. *)
let paper_table2 =
  [
    ("ispd09f11", (77, 9)); ("ispd09f12", (71, 7)); ("ispd09f21", (46, 8));
    ("ispd09f22", (57, 9)); ("ispd09f31", (140, 16)); ("ispd09f32", (47, 13));
    ("ispd09fnb1", (153, 2));
  ]

(* Table I. *)
let paper_table1 =
  [
    ("1X Large", 35., 80., 61.2);
    ("1X Small", 4.2, 6.1, 440.);
    ("2X Small", 8.4, 12.2, 220.);
    ("4X Small", 16.8, 24.4, 110.);
    ("8X Small", 33.6, 48.8, 55.);
  ]
