(** Regular-grid benchmark family: n × n sinks on a uniform grid with
    identical loads.

    Perfect symmetry is the classic CTS sanity case (an H-tree is optimal)
    and a stress case for tie-breaking: every merge is equidistant, so any
    asymmetry in topology generation, merging or embedding shows up
    directly as skew. *)

(** [generate ~n ~pitch] — n² sinks spaced [pitch] nm apart (default
    500 µm), 10 fF each, source at the west edge midpoint.
    @raise Invalid_argument when [n < 1]. *)
val generate : n:int -> ?pitch:int -> unit -> Format_io.t
