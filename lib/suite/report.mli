(** Fixed-width table rendering and the paper's published numbers, for
    side-by-side "paper vs. measured" output in the bench harness and
    EXPERIMENTS.md. *)

(** [table ~title ~header rows] renders a fixed-width text table; column
    widths adapt to content. *)
val table : title:string -> header:string list -> string list list -> string

val fmt : ?decimals:int -> float -> string

(** Minimal JSON value tree and serialiser (no external dependency), used
    by the bench harness to emit machine-readable results alongside the
    text tables. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  (** Pretty-printed with two-space indentation. NaN/infinite numbers are
      emitted as [null] (JSON has no representation for them). *)
  val to_string : t -> string

  (** Single-line rendering, no trailing newline — one JSONL record. *)
  val to_compact_string : t -> string

  (** Parse a complete JSON document (accepts everything {!to_string} and
      {!to_compact_string} emit). Errors carry the byte offset. *)
  val of_string : string -> (t, string) result

  (** [member k v] — field [k] of an [Obj], [None] otherwise. *)
  val member : string -> t -> t option

  val to_float : t option -> float option
  val to_str : t option -> string option

  (** Items of a [List]; [[]] for anything else. *)
  val to_list : t option -> t list
end

(** Paper Table III: per-step (INITIAL, TBSZ, TWSZ, TWSN, BWSN) CLR and
    skew for the seven benchmarks, ps. [(step, [(clr, skew); ...])] in the
    order of {!Gen_ispd.names}. *)
val paper_table3 : (string * (float * float) list) list

(** Paper Table IV: per-benchmark (CLR ps, cap % of limit, CPU s) for
    Contango, NTU, NCTU, U. of Michigan. [nan] marks "fail" entries. *)
val paper_table4 : (string * (float * float * float) option list) list

val paper_table4_teams : string list

(** Paper Table V: (sinks, CLR ps, skew ps, latency ps, cap pF, minutes,
    SPICE runs). *)
val paper_table5 : (int * float * float * float * float * float * int) list

(** Paper Table II: benchmark → (inverted sinks, added inverters). *)
val paper_table2 : (string * (int * int)) list

(** Paper Table I rows: (type, input cap fF, output cap fF, output res Ω). *)
val paper_table1 : (string * float * float * float) list
