open Geometry

let family = [ 200; 500; 1_000; 2_000; 5_000; 10_000; 20_000; 50_000 ]

let die_w = 4_200_000 (* nm *)
let die_h = 3_000_000

(* 450 placement rows × 300 columns = 135 000 candidate sites. *)
let rows = 450
let cols = 300
let candidate_count = rows * cols

(* Deterministic candidate site: jittered grid position with a smooth
   density warp (flops bunch towards register banks). *)
let site rng idx =
  let r = idx / cols and c = idx mod cols in
  let fx = (float_of_int c +. 0.5) /. float_of_int cols in
  let fy = (float_of_int r +. 0.5) /. float_of_int rows in
  (* Warp coordinates towards two "register bank" attractors. *)
  let warp f centre strength = f +. (strength *. sin ((f -. centre) *. Float.pi)) in
  let fx = warp fx 0.3 0.08 and fy = warp fy 0.6 0.06 in
  let jitter scale = int_of_float (Rng.normal rng *. scale) in
  let clamp v hi = min (max v 0) hi in
  Point.make
    (clamp (int_of_float (fx *. float_of_int die_w) + jitter 2_000.) die_w)
    (clamp (int_of_float (fy *. float_of_int die_h) + jitter 2_000.) die_h)

let generate n =
  if n < 1 || n > candidate_count then
    invalid_arg (Printf.sprintf "Gen_ti.generate: n=%d out of range" n);
  let rng = Rng.create (0x71 + n) in
  (* Sample n distinct site indices: Floyd's algorithm. *)
  let chosen = Hashtbl.create (2 * n) in
  for j = candidate_count - n to candidate_count - 1 do
    let t = Rng.int rng (j + 1) in
    if Hashtbl.mem chosen t then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen t ()
  done;
  let site_rng = Rng.create 0x7151 in
  (* Generate all candidate positions deterministically, pick the chosen
     ones (site jitter must not depend on n). *)
  let sinks = ref [] in
  let count = ref 0 in
  for idx = 0 to candidate_count - 1 do
    let p = site site_rng idx in
    if Hashtbl.mem chosen idx then begin
      sinks :=
        { Dme.Zst.label = Printf.sprintf "ff%d" idx; pos = p;
          cap = 2. +. (Rng.float rng *. 4.); parity = 0 }
        :: !sinks;
      incr count
    end
  done;
  {
    Format_io.name = Printf.sprintf "ti%d" n;
    chip = Rect.make ~lx:0 ~ly:0 ~hx:die_w ~hy:die_h;
    source = Point.make 0 (die_h / 2);
    sinks = Array.of_list (List.rev !sinks);
    obstacles = [];
    tech = Tech.default45 ();
  }
