open Geometry

type spec = {
  name : string;
  seed : int;
  chip_mm : float * float;
  n_sinks : int;
  n_clusters : int;
  n_obstacles : int;
  cap_limit_pf : float;
}

(* Sink counts match the contest's published benchmark sizes; capacitance
   budgets are sized so a reasonable flow lands in the 90–100 % band the
   contest scoring encouraged (Table IV reports cap as % of limit). *)
let specs =
  [
    { name = "ispd09f11"; seed = 0xf11; chip_mm = (17., 17.); n_sinks = 121;
      n_clusters = 8; n_obstacles = 0; cap_limit_pf = 88. };
    { name = "ispd09f12"; seed = 0xf12; chip_mm = (17., 17.); n_sinks = 117;
      n_clusters = 8; n_obstacles = 0; cap_limit_pf = 85. };
    { name = "ispd09f21"; seed = 0xf21; chip_mm = (14., 14.); n_sinks = 117;
      n_clusters = 7; n_obstacles = 0; cap_limit_pf = 60. };
    { name = "ispd09f22"; seed = 0xf22; chip_mm = (11., 11.); n_sinks = 91;
      n_clusters = 6; n_obstacles = 0; cap_limit_pf = 52. };
    { name = "ispd09f31"; seed = 0xf31; chip_mm = (16., 16.); n_sinks = 273;
      n_clusters = 12; n_obstacles = 6; cap_limit_pf = 230. };
    { name = "ispd09f32"; seed = 0xf32; chip_mm = (14., 14.); n_sinks = 190;
      n_clusters = 10; n_obstacles = 4; cap_limit_pf = 115. };
    { name = "ispd09fnb1"; seed = 0xfb1; chip_mm = (10., 10.); n_sinks = 330;
      n_clusters = 16; n_obstacles = 12; cap_limit_pf = 155. };
  ]

let names = List.map (fun s -> s.name) specs

let gen_obstacles rng ~w ~h ~count =
  (* Blocks of 8–22 % of the die span; every third block gets an abutting
     companion, exercising compound-obstacle handling. Keep the left edge
     clear — the clock source sits there. *)
  let rects = ref [] in
  for i = 0 to count - 1 do
    let bw = (8 + Rng.int rng 15) * w / 100 in
    let bh = (8 + Rng.int rng 15) * h / 100 in
    let lx = (w / 5) + Rng.int rng (max 1 ((4 * w / 5) - bw)) in
    let ly = Rng.int rng (max 1 (h - bh)) in
    let r = Rect.make ~lx ~ly ~hx:(lx + bw) ~hy:(ly + bh) in
    rects := r :: !rects;
    if i mod 3 = 2 then begin
      (* abutting companion on the right edge of [r] *)
      let cw = bw / 2 and ch = max 1 (bh * 2 / 3) in
      let cy = ly + Rng.int rng (max 1 (bh - ch)) in
      if lx + bw + cw < w then
        rects :=
          Rect.make ~lx:(lx + bw) ~ly:cy ~hx:(lx + bw + cw) ~hy:(cy + ch)
          :: !rects
    end
  done;
  !rects

let inside_any rects p = List.exists (fun r -> Rect.contains_open r p) rects

let generate name =
  let spec =
    match List.find_opt (fun s -> s.name = name) specs with
    | Some s -> s
    | None -> invalid_arg ("Gen_ispd.generate: unknown benchmark " ^ name)
  in
  let rng = Rng.create spec.seed in
  let w = Tech.Units.nm_of_um (fst spec.chip_mm *. 1000.) in
  let h = Tech.Units.nm_of_um (snd spec.chip_mm *. 1000.) in
  let chip = Rect.make ~lx:0 ~ly:0 ~hx:w ~hy:h in
  let obstacles = gen_obstacles rng ~w ~h ~count:spec.n_obstacles in
  (* Cluster centres, then sinks Gaussian around them (σ = span/18), with
     a quarter of the sinks scattered uniformly. *)
  let centers =
    Array.init spec.n_clusters (fun _ ->
        Point.make
          ((w / 10) + Rng.int rng (8 * w / 10))
          ((h / 10) + Rng.int rng (8 * h / 10)))
  in
  let sigma = float_of_int (max w h) /. 18. in
  let clamp v lo hi = min (max v lo) hi in
  let rec sample_sink i tries =
    if tries > 200 then invalid_arg "Gen_ispd: cannot place sink off-obstacle";
    let p =
      if Rng.int rng 4 = 0 then
        Point.make (Rng.int rng w) (Rng.int rng h)
      else begin
        let c = centers.(Rng.int rng spec.n_clusters) in
        Point.make
          (clamp (c.Point.x + int_of_float (Rng.normal rng *. sigma)) 0 w)
          (clamp (c.Point.y + int_of_float (Rng.normal rng *. sigma)) 0 h)
      end
    in
    if inside_any obstacles p then sample_sink i (tries + 1)
    else
      { Dme.Zst.label = Printf.sprintf "s%d" i; pos = p;
        cap = 5. +. (Rng.float rng *. 30.); parity = 0 }
  in
  let sinks = Array.init spec.n_sinks (fun i -> sample_sink i 0) in
  let tech = Tech.default45 ~cap_limit:(spec.cap_limit_pf *. 1000.) () in
  {
    Format_io.name = spec.name;
    chip;
    source = Point.make 0 (h / 2);
    sinks;
    obstacles;
    tech;
  }

let all () = List.map (fun s -> generate s.name) specs
