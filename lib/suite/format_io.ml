open Geometry

type t = {
  name : string;
  chip : Rect.t;
  source : Point.t;
  sinks : Dme.Zst.sink_spec array;
  obstacles : Rect.t list;
  tech : Tech.t;
}

let to_string b =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "# benchmark %s\n" b.name;
  pf "chip %d %d %d %d\n" b.chip.Rect.lx b.chip.Rect.ly b.chip.Rect.hx b.chip.Rect.hy;
  pf "source %d %d\n" b.source.Point.x b.source.Point.y;
  pf "slewlimit %g\n" b.tech.Tech.slew_limit;
  if b.tech.Tech.cap_limit < infinity then pf "caplimit %g\n" b.tech.Tech.cap_limit;
  Array.iter
    (fun (w : Tech.Wire.t) ->
      pf "wire %s %g %g\n" w.Tech.Wire.name
        (w.Tech.Wire.res_per_nm *. 1000.)
        (w.Tech.Wire.cap_per_nm *. 1000.))
    b.tech.Tech.wires;
  List.iter
    (fun (d : Tech.Device.t) ->
      pf "inverter %s %g %g %g %g\n" d.Tech.Device.name d.Tech.Device.c_in
        d.Tech.Device.c_out (Tech.Device.r_out d) d.Tech.Device.d_intrinsic)
    b.tech.Tech.devices;
  Array.iter
    (fun (s : Dme.Zst.sink_spec) ->
      pf "sink %s %d %d %.9g %d\n" s.Dme.Zst.label s.Dme.Zst.pos.Point.x
        s.Dme.Zst.pos.Point.y s.Dme.Zst.cap s.Dme.Zst.parity)
    b.sinks;
  List.iter
    (fun (r : Rect.t) ->
      pf "obstacle %d %d %d %d\n" r.Rect.lx r.Rect.ly r.Rect.hx r.Rect.hy)
    b.obstacles;
  Buffer.contents buf

type partial = {
  mutable chip_p : Rect.t option;
  mutable source_p : Point.t option;
  mutable slew_p : float option;
  mutable cap_p : float option;
  mutable wires_p : Tech.Wire.t list;    (* reversed *)
  mutable devices_p : Tech.Device.t list;  (* reversed *)
  mutable sinks_p : Dme.Zst.sink_spec list;  (* reversed *)
  mutable obstacles_p : Rect.t list;  (* reversed *)
}

let of_string ~name text =
  let p =
    { chip_p = None; source_p = None; slew_p = None; cap_p = None;
      wires_p = []; devices_p = []; sinks_p = []; obstacles_p = [] }
  in
  let error = ref None in
  let fail lineno msg =
    if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let tokens =
        String.split_on_char ' ' (String.trim line)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      let num s =
        match float_of_string_opt s with
        | Some f -> f
        | None ->
          fail lineno (Printf.sprintf "not a number: %S" s);
          0.
      in
      let inum s = int_of_float (num s) in
      try
        match tokens with
        | [] -> ()
        | [ "chip"; a; b; c; d ] ->
          p.chip_p <- Some (Rect.make ~lx:(inum a) ~ly:(inum b) ~hx:(inum c) ~hy:(inum d))
        | [ "source"; x; y ] -> p.source_p <- Some (Point.make (inum x) (inum y))
        | [ "slewlimit"; s ] -> p.slew_p <- Some (num s)
        | [ "caplimit"; s ] -> p.cap_p <- Some (num s)
        | [ "wire"; wname; r; c ] ->
          p.wires_p <-
            Tech.Wire.make ~name:wname ~res_per_nm:(num r /. 1000.)
              ~cap_per_nm:(num c /. 1000.)
            :: p.wires_p
        | [ "inverter"; dname; cin; cout; rout; dint ] ->
          let r = num rout in
          p.devices_p <-
            Tech.Device.make ~name:dname ~c_in:(num cin) ~c_out:(num cout)
              ~r_up:(r *. 1.05) ~r_down:(r *. 0.95) ~d_intrinsic:(num dint)
              ~inverting:true ()
            :: p.devices_p
        | "sink" :: sname :: x :: y :: cap :: rest ->
          let parity = match rest with [ pa ] -> inum pa | _ -> 0 in
          p.sinks_p <-
            { Dme.Zst.label = sname; pos = Point.make (inum x) (inum y);
              cap = num cap; parity }
            :: p.sinks_p
        | [ "obstacle"; a; b; c; d ] ->
          p.obstacles_p <-
            Rect.make ~lx:(inum a) ~ly:(inum b) ~hx:(inum c) ~hy:(inum d)
            :: p.obstacles_p
        | directive :: _ -> fail lineno ("unknown directive " ^ directive)
      with Invalid_argument m -> fail lineno m)
    lines;
  match !error with
  | Some e -> Error e
  | None ->
    (match (p.chip_p, p.source_p) with
    | None, _ -> Error "missing chip directive"
    | _, None -> Error "missing source directive"
    | Some chip, Some source ->
      if p.sinks_p = [] then Error "no sinks"
      else begin
        let default = Tech.default45 () in
        let wires =
          match List.rev p.wires_p with
          | [] -> default.Tech.wires
          | ws -> Array.of_list ws
        in
        let devices =
          match List.rev p.devices_p with
          | [] -> default.Tech.devices
          | ds -> ds
        in
        match
          Tech.make ~name ~wires ~devices
            ~slew_limit:(Option.value p.slew_p ~default:default.Tech.slew_limit)
            ~cap_limit:(Option.value p.cap_p ~default:infinity)
            ()
        with
        | exception Invalid_argument m -> Error m
        | tech ->
          Ok
          {
            name;
            chip;
            source;
            sinks = Array.of_list (List.rev p.sinks_p);
            obstacles = List.rev p.obstacles_p;
            tech;
          }
      end)

let write_file path b = Core.Persist.write_atomic path (to_string b)

let read_file path =
  match
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  with
  | exception Sys_error e -> Error e
  | text -> (
    let name = Filename.remove_extension (Filename.basename path) in
    match of_string ~name text with
    | Ok b -> Ok b
    | Error e ->
      (* "path:line: message" so CLI diagnostics point straight at the
         offending benchmark line (parse errors already start with
         "line N: ..."). *)
      let relocated =
        if String.length e > 5 && String.sub e 0 5 = "line " then
          match String.index_opt e ':' with
          | Some colon -> (
            match int_of_string_opt (String.sub e 5 (colon - 5)) with
            | Some n ->
              Some
                (Printf.sprintf "%s:%d:%s" path n
                   (String.sub e (colon + 1) (String.length e - colon - 1)))
            | None -> None)
          | None -> None
        else None
      in
      Error
        (match relocated with
        | Some m -> m
        | None -> Printf.sprintf "%s: %s" path e))
