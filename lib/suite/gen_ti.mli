(** Texas-Instruments-style scalability benchmarks (paper §V, Table V).

    The paper samples 135 K sink locations identified on a 4.2 mm × 3.0 mm
    production chip. The chip is proprietary, so this generator lays out
    135 K candidate flop sites in jittered placement rows with realistic
    density variation and deterministically samples n of them. The Table V
    family uses n ∈ {200, 500, 1K, 2K, 5K, 10K, 20K, 50K}. *)

(** The Table V sink counts. *)
val family : int list

(** [generate n] — benchmark named ["ti<n>"] with [n] sinks sampled from
    the 135 K candidate sites. @raise Invalid_argument when [n] is not in
    [1, 135000]. *)
val generate : int -> Format_io.t

(** Number of candidate sink sites (135 000). *)
val candidate_count : int
