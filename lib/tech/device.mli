(** Clock inverters/buffers.

    Electrically a device is a Thevenin driver: the input pin presents
    [c_in] to the upstream stage; after an intrinsic delay (plus a
    slew-dependent term) the output switches through the pull-up or
    pull-down resistance, driving its own parasitic [c_out] plus the
    downstream network. Separate pull-up/pull-down resistances produce the
    rise/fall asymmetry discussed in the paper (§IV-G, rise–fall
    divergence). *)

type t = {
  name : string;
  c_in : float;         (** input pin capacitance, fF *)
  c_out : float;        (** output parasitic capacitance, fF *)
  r_up : float;         (** pull-up (output rising) resistance, Ω *)
  r_down : float;       (** pull-down (output falling) resistance, Ω *)
  d_intrinsic : float;  (** intrinsic delay, ps *)
  slew_coeff : float;   (** added delay per ps of input slew *)
  inverting : bool;
}

val make :
  name:string -> c_in:float -> c_out:float -> r_up:float -> r_down:float ->
  d_intrinsic:float -> ?slew_coeff:float -> inverting:bool -> unit -> t

(** Average of pull-up and pull-down resistance — the "output resistance"
    of Table I. *)
val r_out : t -> float

(** The contest's two inverter types with the Table I electricals
    (resistances split ±5 % into pull-up/pull-down around the Table I
    value). *)
val large_inverter : t
val small_inverter : t

val pp : Format.formatter -> t -> unit
