(** Composite inverters: [count] parallel copies of a base device (§IV-B).

    Parallel composition multiplies capacitances and divides resistances by
    [count]; Table I shows that 8 parallel small inverters dominate one
    large inverter (lower input cap, output cap and output resistance). *)

type t = { base : Device.t; count : int }

(** @raise Invalid_argument when [count < 1]. *)
val make : Device.t -> int -> t

val name : t -> string
val c_in : t -> float
val c_out : t -> float
val r_up : t -> float
val r_down : t -> float
val r_out : t -> float
val d_intrinsic : t -> float
val slew_coeff : t -> float
val inverting : t -> bool

(** Scale the parallel count by a real factor, rounding to the nearest
    count [>= 1] (used by iterative buffer sizing, §IV-I). *)
val scale : t -> float -> t

(** All composites of each base device with counts 1..[max_count]. *)
val enumerate : Device.t list -> max_count:int -> t list

(** The Pareto frontier of composites under (input cap, output resistance)
    minimisation — the "non-dominated configurations" selected by dynamic
    programming in §IV-B. Sorted by increasing input cap. *)
val non_dominated : t list -> t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
