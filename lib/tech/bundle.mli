(** Technology bundle: everything benchmark-independent that the flow
    needs — wire classes, the inverter library, limits and corners. *)

type t = {
  name : string;
  wires : Wire.t array;
      (** Available wire classes, ordered from narrowest (index 0, highest
          resistance) to widest. New trees are built with the widest. *)
  devices : Device.t list;  (** inverter library *)
  slew_limit : float;       (** 10–90 % slew ceiling at any pin, ps *)
  cap_limit : float;        (** total capacitance budget, fF *)
  source_r : float;         (** clock-source driver resistance, Ω *)
  source_slew : float;      (** slew of the clock source ramp, ps *)
  corners : Corner.t list;  (** evaluation corners; head = nominal *)
}

val make :
  ?name:string -> wires:Wire.t array -> devices:Device.t list ->
  slew_limit:float -> cap_limit:float -> ?source_r:float ->
  ?source_slew:float -> ?corners:Corner.t list -> unit -> t

(** The 45 nm setting of the ISPD'09 contest: two wire widths, the Table I
    inverters, 100 ps slew limit, corners 1.2 V (nominal/fast) and 1.0 V
    (slow). [cap_limit] defaults to infinity; benchmarks override it. *)
val default45 : ?cap_limit:float -> unit -> t

(** Like {!default45} but with four graduated wire widths — finer
    wiresizing granularity for the TWSZ step. *)
val default45_multiwidth : ?cap_limit:float -> unit -> t

val widest_wire : t -> int
val narrowest_wire : t -> int
val wire : t -> int -> Wire.t
val nominal_corner : t -> Corner.t
