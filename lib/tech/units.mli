(** Unit conventions used throughout the code base.

    - length: integer nanometres (nm)
    - resistance: ohm (Ω)
    - capacitance: femtofarad (fF)
    - time: picoseconds (ps)
    - voltage: volts (V), normalised waveforms use 0..1

    One Ω·fF equals 10⁻³ ps, so delays computed as R·C products must be
    scaled by {!rc_to_ps}. *)

(** Multiply an Ω·fF product by this to obtain picoseconds. *)
val rc_to_ps : float

(** [ps_of_rc r c] is the RC product of [r] Ω and [c] fF in ps. *)
val ps_of_rc : float -> float -> float

val nm_of_um : float -> int
val um_of_nm : int -> float
val mm_of_nm : int -> float

(** ln 9 ≈ 2.197: the 10%–90% transition time of a single-pole exponential
    with time constant τ is [ln9 ⋅ τ]. *)
val ln9 : float
