type t = {
  name : string;
  c_in : float;
  c_out : float;
  r_up : float;
  r_down : float;
  d_intrinsic : float;
  slew_coeff : float;
  inverting : bool;
}

let make ~name ~c_in ~c_out ~r_up ~r_down ~d_intrinsic ?(slew_coeff = 0.1)
    ~inverting () =
  if c_in <= 0. || c_out < 0. || r_up <= 0. || r_down <= 0. then
    invalid_arg "Device.make: nonpositive electricals";
  { name; c_in; c_out; r_up; r_down; d_intrinsic; slew_coeff; inverting }

let r_out d = (d.r_up +. d.r_down) /. 2.

(* Table I of the paper: ISPD'09 contest inverters. The ±5 % split models
   the PMOS/NMOS strength mismatch that makes rising and falling corner
   sinks diverge once skew is small. *)
let split r = (r *. 1.05, r *. 0.95)

let large_inverter =
  let r_up, r_down = split 61.2 in
  make ~name:"INV_L" ~c_in:35.0 ~c_out:80.0 ~r_up ~r_down ~d_intrinsic:14.0
    ~inverting:true ()

let small_inverter =
  let r_up, r_down = split 440.0 in
  make ~name:"INV_S" ~c_in:4.2 ~c_out:6.1 ~r_up ~r_down ~d_intrinsic:17.0
    ~inverting:true ()

let pp ppf d =
  Format.fprintf ppf "%s(cin=%.1ffF,cout=%.1ffF,r=%.1fΩ%s)" d.name d.c_in
    d.c_out (r_out d) (if d.inverting then ",inv" else "")
