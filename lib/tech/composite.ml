type t = { base : Device.t; count : int }

let make base count =
  if count < 1 then invalid_arg "Composite.make: count < 1";
  { base; count }

let name t =
  if t.count = 1 then t.base.Device.name
  else Printf.sprintf "%dx%s" t.count t.base.Device.name

let fcount t = float_of_int t.count
let c_in t = t.base.Device.c_in *. fcount t
let c_out t = t.base.Device.c_out *. fcount t
let r_up t = t.base.Device.r_up /. fcount t
let r_down t = t.base.Device.r_down /. fcount t
let r_out t = Device.r_out t.base /. fcount t
let d_intrinsic t = t.base.Device.d_intrinsic
let slew_coeff t = t.base.Device.slew_coeff
let inverting t = t.base.Device.inverting

let scale t f =
  if f <= 0. then invalid_arg "Composite.scale: nonpositive factor";
  let count = max 1 (int_of_float (Float.round (float_of_int t.count *. f))) in
  { t with count }

let enumerate devices ~max_count =
  List.concat_map
    (fun d -> List.init max_count (fun i -> make d (i + 1)))
    devices

let non_dominated composites =
  let dominated a b =
    (* [b] dominates [a]: no worse on both axes, better on one. *)
    c_in b <= c_in a && r_out b <= r_out a
    && (c_in b < c_in a || r_out b < r_out a)
  in
  let keep =
    List.filter
      (fun a -> not (List.exists (fun b -> dominated a b) composites))
      composites
  in
  (* Equal-electricals duplicates: keep the first occurrence. *)
  let rec uniq = function
    | [] -> []
    | a :: rest ->
      a :: uniq (List.filter (fun b -> c_in b <> c_in a || r_out b <> r_out a) rest)
  in
  List.sort (fun a b -> Float.compare (c_in a) (c_in b)) (uniq keep)

let equal a b = a.base.Device.name = b.base.Device.name && a.count = b.count

let pp ppf t =
  Format.fprintf ppf "%s(cin=%.1f,cout=%.1f,r=%.2f)" (name t) (c_in t)
    (c_out t) (r_out t)
