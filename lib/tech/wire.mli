(** Wire classes (widths/layers) available for clock routing.

    The ISPD'09 contest provided two wire widths; a wider wire has lower
    resistance and higher capacitance per unit length, so *downsizing* a
    wire slows the paths through it — the mechanism exploited by Contango's
    top-down wiresizing. *)

type t = {
  name : string;
  res_per_nm : float;  (** Ω per nm *)
  cap_per_nm : float;  (** fF per nm *)
}

val make : name:string -> res_per_nm:float -> cap_per_nm:float -> t

val res : t -> int -> float
(** [res w len] — total resistance of [len] nm of wire, Ω. *)

val cap : t -> int -> float
(** [cap w len] — total capacitance of [len] nm of wire, fF. *)

(** Elmore delay (ps) of [len] nm of this wire driving an external load of
    [load] fF: [R (C/2 + load)]. *)
val elmore_ps : t -> int -> load:float -> float

val pp : Format.formatter -> t -> unit
