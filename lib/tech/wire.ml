type t = { name : string; res_per_nm : float; cap_per_nm : float }

let make ~name ~res_per_nm ~cap_per_nm =
  if res_per_nm <= 0. || cap_per_nm <= 0. then
    invalid_arg "Wire.make: nonpositive unit parasitics";
  { name; res_per_nm; cap_per_nm }

let res w len = w.res_per_nm *. float_of_int len
let cap w len = w.cap_per_nm *. float_of_int len

let elmore_ps w len ~load =
  let r = res w len and c = cap w len in
  Units.ps_of_rc r ((c /. 2.) +. load)

let pp ppf w =
  Format.fprintf ppf "%s(r=%.4gΩ/um,c=%.4gfF/um)" w.name
    (w.res_per_nm *. 1000.) (w.cap_per_nm *. 1000.)
