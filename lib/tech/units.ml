let rc_to_ps = 1e-3
let ps_of_rc r c = r *. c *. rc_to_ps
let nm_of_um um = int_of_float (Float.round (um *. 1000.))
let um_of_nm nm = float_of_int nm /. 1000.
let mm_of_nm nm = float_of_int nm /. 1.e6
let ln9 = log 9.
