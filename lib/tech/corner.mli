(** Process/voltage corners.

    The ISPD'09 CLR objective is the difference between the greatest sink
    latency at 1.0 V supply and the least sink latency at 1.2 V. Supply
    scaling is modelled by the alpha-power law: driver on-resistance scales
    as [Vdd / (Vdd - Vth)^alpha], so weaker supplies slow drivers more than
    wires — which is why strong composite buffers reduce CLR (§IV-H). *)

type t = {
  name : string;
  vdd : float;
  r_scale : float;      (** multiplier on device output resistance *)
  d_scale : float;      (** multiplier on device intrinsic delay *)
}

val make : name:string -> vdd:float -> ?vth:float -> ?alpha:float -> unit -> t
(** Scales are derived from the alpha-power law relative to the nominal
    1.2 V supply. Defaults: [vth = 0.15] V, [alpha = 1.05] — effective
    values softer than raw transistor parameters, matching the supply
    sensitivity observed in the contest results. *)

(** 1.2 V — the contest's fast evaluation corner (scales = 1). *)
val fast : t

(** 1.0 V — the contest's slow evaluation corner. *)
val slow : t

val pp : Format.formatter -> t -> unit
