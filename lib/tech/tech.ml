(** Library root: re-exports the technology submodules so that users write
    [Tech.Wire], [Tech.Device], … and [Tech.t] for the bundle itself. *)

module Units = Units
module Wire = Wire
module Device = Device
module Composite = Composite
module Corner = Corner
include Bundle
