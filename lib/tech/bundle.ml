type t = {
  name : string;
  wires : Wire.t array;
  devices : Device.t list;
  slew_limit : float;
  cap_limit : float;
  source_r : float;
  source_slew : float;
  corners : Corner.t list;
}

let make ?(name = "custom") ~wires ~devices ~slew_limit ~cap_limit
    ?(source_r = 25.) ?(source_slew = 30.)
    ?(corners = [ Corner.fast; Corner.slow ]) () =
  if Array.length wires = 0 then invalid_arg "Tech.make: no wire classes";
  if devices = [] then invalid_arg "Tech.make: empty device library";
  if corners = [] then invalid_arg "Tech.make: no corners";
  { name; wires; devices; slew_limit; cap_limit; source_r; source_slew; corners }

let default45 ?(cap_limit = infinity) () =
  (* 45 nm global-layer clock wires: the wide class halves resistance at
     ~1.6x the capacitance, matching the contest's two widths in spirit. *)
  let narrow =
    Wire.make ~name:"W1" ~res_per_nm:1.0e-4 ~cap_per_nm:1.6e-4
  in
  let wide =
    Wire.make ~name:"W2" ~res_per_nm:0.5e-4 ~cap_per_nm:2.5e-4
  in
  make ~name:"ispd09-45nm" ~wires:[| narrow; wide |]
    ~devices:[ Device.small_inverter; Device.large_inverter ]
    ~slew_limit:100. ~cap_limit ()

(* A finer wire ladder: four widths with graduated R/C. More classes give
   the top-down wiresizing step finer slow-down granularity (each downsize
   moves one class). *)
let default45_multiwidth ?(cap_limit = infinity) () =
  let mk name r c = Wire.make ~name ~res_per_nm:r ~cap_per_nm:c in
  make ~name:"ispd09-45nm-4w"
    ~wires:
      [| mk "W1" 1.0e-4 1.6e-4; mk "W2" 0.8e-4 1.9e-4;
         mk "W3" 0.65e-4 2.2e-4; mk "W4" 0.5e-4 2.5e-4 |]
    ~devices:[ Device.small_inverter; Device.large_inverter ]
    ~slew_limit:100. ~cap_limit ()

let widest_wire t = Array.length t.wires - 1
let narrowest_wire _ = 0
let wire t i = t.wires.(i)
let nominal_corner t = List.hd t.corners
