type t = { name : string; vdd : float; r_scale : float; d_scale : float }

let v_nominal = 1.2

let alpha_power ~vdd ~vth ~alpha =
  (* R_eff ∝ Vdd / (Vdd - Vth)^alpha, normalised to 1 at the nominal
     supply. *)
  if vdd <= vth then invalid_arg "Corner: vdd <= vth";
  let r v = v /. ((v -. vth) ** alpha) in
  r vdd /. r v_nominal

(* Effective (vth, alpha) are softer than raw transistor values: a gate's
   delay has wire-like components that do not scale with drive current.
   These defaults land the 1.0 V/1.2 V sensitivity near the ~2-4 % of
   latency implied by the contest's published CLR-to-latency ratios. *)
let make ~name ~vdd ?(vth = 0.15) ?(alpha = 1.05) () =
  let r_scale = alpha_power ~vdd ~vth ~alpha in
  (* Intrinsic delay tracks drive strength but more weakly: gate delay has
     a wire-ish component. *)
  let d_scale = 1. +. ((r_scale -. 1.) *. 0.6) in
  { name; vdd; r_scale; d_scale }

let fast = make ~name:"fast@1.2V" ~vdd:1.2 ()
let slow = make ~name:"slow@1.0V" ~vdd:1.0 ()

let pp ppf c =
  Format.fprintf ppf "%s(r×%.3f,d×%.3f)" c.name c.r_scale c.d_scale
