open Geometry

type t = {
  region : Marc.t;
  cap : float;
  delay : float;      (* max Elmore delay from the tapping point *)
  delay_min : float;  (* min Elmore delay from the tapping point *)
  shape : shape;
}

and shape = Mleaf of int | Mnode of t * t * float * float

let edge_delay ~wire ~len ~load =
  let r = wire.Tech.Wire.res_per_nm *. len in
  let c = wire.Tech.Wire.cap_per_nm *. len in
  Tech.Units.ps_of_rc r ((c /. 2.) +. load)

(* Extension length x >= 0 such that driving [load] through x nm of wire
   adds exactly [delta] ps: r·x·(c·x/2 + load)·k = delta with k the Ω·fF→ps
   scale. Positive root of the quadratic. *)
let extension ~wire ~load ~delta =
  if delta <= 0. then 0.
  else begin
    let r = wire.Tech.Wire.res_per_nm and c = wire.Tech.Wire.cap_per_nm in
    let k = Tech.Units.rc_to_ps in
    (* (r·c·k/2)·x² + (r·load·k)·x − delta = 0 *)
    let a = r *. c *. k /. 2. and b = r *. load *. k in
    ((-.b) +. sqrt ((b *. b) +. (4. *. a *. delta))) /. (2. *. a)
  end

let rec bottom_up ?(skew_budget = 0.) topo ~positions ~caps ~wire =
  match topo with
  | Topology.Leaf i ->
    { region = Marc.of_point positions.(i); cap = caps.(i); delay = 0.;
      delay_min = 0.; shape = Mleaf i }
  | Topology.Node (ta, tb) ->
    let a = bottom_up ~skew_budget ta ~positions ~caps ~wire in
    let b = bottom_up ~skew_budget tb ~positions ~caps ~wire in
    let d = float_of_int (Marc.dist a.region b.region) in
    let r = wire.Tech.Wire.res_per_nm and c = wire.Tech.Wire.cap_per_nm in
    let k = Tech.Units.rc_to_ps in
    (* Tsay's balance point: ea·r·(cd + capa + capb) = B − A + r·d(c·d/2 +
       capb), all in ps via k. *)
    let ea =
      if d = 0. then
        if a.delay >= b.delay then 0. else 1.  (* degenerate; resolved below *)
      else
        (b.delay -. a.delay +. (r *. d *. ((c *. d /. 2.) +. b.cap) *. k))
        /. (r *. ((c *. d) +. a.cap +. b.cap) *. k)
    in
    let ea, eb, region =
      if d > 0. && ea >= 0. && ea <= d then begin
        let eb = d -. ea in
        let ra = int_of_float (Float.round ea) in
        let rb = int_of_float d - ra in
        let region =
          match
            Marc.intersect (Marc.expand a.region ra) (Marc.expand b.region rb)
          with
          | Some m -> m
          | None ->
            (* Integer rounding can separate the TRRs by 1 nm; widen. *)
            (match
               Marc.intersect
                 (Marc.expand a.region (ra + 1))
                 (Marc.expand b.region (rb + 1))
             with
            | Some m -> m
            | None -> Marc.of_point (Marc.center a.region))
        in
        (ea, eb, region)
      end
      else begin
        (* One branch is intrinsically too slow: tap on its region and
           either absorb the imbalance within the skew budget (bounded-
           skew mode — saves the snake wirelength) or elongate (snake) the
           wire towards the fast branch. The retained region is restricted
           to tapping points geometrically reachable within the elongated
           length so the balance stays exact after embedding. *)
        let slow, fast, slow_first =
          if a.delay >= b.delay then (a, b, true) else (b, a, false)
        in
        let gap =
          slow.delay -. (fast.delay +. edge_delay ~wire ~len:d ~load:fast.cap)
        in
        let spread_budget =
          skew_budget
          -. Float.max (a.delay -. a.delay_min) (b.delay -. b.delay_min)
        in
        let e_fast =
          if gap <= spread_budget then d
          else
            Float.max d
              (extension ~wire ~load:fast.cap ~delta:(slow.delay -. fast.delay))
        in
        let region =
          match
            Marc.intersect slow.region
              (Marc.expand fast.region (int_of_float (Float.round e_fast)))
          with
          | Some m -> m
          | None -> slow.region
        in
        if slow_first then (0., e_fast, region) else (e_fast, 0., region)
      end
    in
    let da = a.delay +. edge_delay ~wire ~len:ea ~load:a.cap in
    let db = b.delay +. edge_delay ~wire ~len:eb ~load:b.cap in
    let da_min = a.delay_min +. edge_delay ~wire ~len:ea ~load:a.cap in
    let db_min = b.delay_min +. edge_delay ~wire ~len:eb ~load:b.cap in
    let cap = a.cap +. b.cap +. (c *. (ea +. eb)) in
    { region; cap; delay = Float.max da db;
      delay_min = Float.min da_min db_min;
      shape = Mnode (a, b, ea, eb) }
