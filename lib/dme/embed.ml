open Geometry
module Tree = Ctree.Tree

let build ~tech ~source ~merged ~sink_info ~wire_class =
  let tree = Tree.create ~tech ~source_pos:source in
  let rec place (m : Merge.t) ~parent ~parent_pos ~required_len =
    let pos = Marc.closest_to m.Merge.region parent_pos in
    let geom = Point.dist parent_pos pos in
    let electrical = max geom (int_of_float (Float.round required_len)) in
    let kind =
      match m.Merge.shape with
      | Merge.Mleaf i -> Tree.Sink (sink_info i)
      | Merge.Mnode _ -> Tree.Internal
    in
    let id =
      Tree.add_node tree ~kind ~pos ~parent ~wire_class ~geom_len:geom ()
    in
    (Tree.node tree id).Tree.snake <- electrical - geom;
    match m.Merge.shape with
    | Merge.Mleaf _ -> ()
    | Merge.Mnode (a, b, ea, eb) ->
      place a ~parent:id ~parent_pos:pos ~required_len:ea;
      place b ~parent:id ~parent_pos:pos ~required_len:eb
  in
  place merged ~parent:(Tree.root tree) ~parent_pos:source ~required_len:0.;
  tree
