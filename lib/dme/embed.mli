(** Top-down DME phase: choose concrete tapping points inside merging
    regions and emit the clock tree.

    The clock source connects to the point of the root merging region
    closest to the source pin — the resulting long wire is the "tree
    trunk" the paper's buffer sliding/sizing steps operate on. Each child
    tapping point is the point of its region closest to its parent's
    chosen point; any difference between the balanced electrical length and
    the geometric distance becomes snake length on that wire. *)

(** [build ~tech ~source ~merged ~sink_info ~wire_class] — [sink_info i]
    gives the sink's load cap, required parity and label for leaf index
    [i]. *)
val build :
  tech:Tech.t -> source:Geometry.Point.t -> merged:Merge.t ->
  sink_info:(int -> Ctree.Tree.sink) -> wire_class:int -> Ctree.Tree.t
