type sink_spec = {
  pos : Geometry.Point.t;
  cap : float;
  parity : int;
  label : string;
}

let build ~tech ~source ?wire_class ?(skew_budget = 0.) sinks =
  if Array.length sinks = 0 then invalid_arg "Zst.build: no sinks";
  let wire_class =
    match wire_class with Some w -> w | None -> Tech.widest_wire tech
  in
  let positions = Array.map (fun s -> s.pos) sinks in
  let caps = Array.map (fun s -> s.cap) sinks in
  let topo = Topology.generate positions in
  let merged =
    Merge.bottom_up ~skew_budget topo ~positions ~caps
      ~wire:(Tech.wire tech wire_class)
  in
  let sink_info i =
    let s = sinks.(i) in
    { Ctree.Tree.cap = s.cap; parity = s.parity; label = s.label }
  in
  Embed.build ~tech ~source ~merged ~sink_info ~wire_class
