(** End-to-end zero-skew-tree construction: Edahiro topology → bottom-up
    merging segments → top-down embedding. The result has (near-)zero
    Elmore skew, before buffering. *)

type sink_spec = {
  pos : Geometry.Point.t;
  cap : float;    (** fF *)
  parity : int;   (** required inversions mod 2; 0 for standard sinks *)
  label : string;
}

(** [build ~tech ~source ~sinks] constructs the unbuffered ZST using the
    technology's widest wire class (override with [wire_class]).
    [skew_budget] (ps) switches to bounded-skew construction: snake
    elongations are skipped while the Elmore-delay spread stays within the
    budget, trading construction skew for wirelength (see
    {!Merge.bottom_up}). @raise Invalid_argument when [sinks] is empty. *)
val build :
  tech:Tech.t -> source:Geometry.Point.t -> ?wire_class:int ->
  ?skew_budget:float -> sink_spec array -> Ctree.Tree.t
