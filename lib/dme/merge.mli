(** Bottom-up DME phase: merging segments with Elmore-balanced tapping
    points.

    For each topology node the merging region (a Manhattan arc / tilted
    rectangle) is computed together with the electrical edge lengths
    towards the two children. When one branch is intrinsically too slow,
    the fast branch's edge is elongated beyond the geometric distance
    (wire snaking) to preserve zero Elmore skew. *)

type t = {
  region : Geometry.Marc.t;  (** locus of zero-skew tapping points *)
  cap : float;    (** downstream capacitance incl. subtree wires, fF *)
  delay : float;  (** worst Elmore delay from the tapping point, ps *)
  delay_min : float;
      (** best Elmore delay — [delay -. delay_min] is the subtree's skew
          spread, zero in plain ZST mode *)
  shape : shape;
}

and shape =
  | Mleaf of int  (** sink index *)
  | Mnode of t * t * float * float
      (** children plus electrical edge lengths (nm) towards each *)

(** [bottom_up topo ~positions ~caps ~wire] — [caps.(i)] is the load of
    sink [i], [wire] the wire class used for merging.

    [skew_budget] (ps, default 0 = exact ZST) enables bounded-skew
    merging: when one branch is intrinsically slower, the imbalance is
    absorbed — the fast branch's snake elongation is skipped — as long as
    the subtree's Elmore delay spread stays within the budget. Larger
    budgets save snaking wirelength at the cost of construction-time skew
    (the BST trade-off of Cong et al. / Huang-Kahng-Tsao, paper §II). *)
val bottom_up :
  ?skew_budget:float -> Topology.t -> positions:Geometry.Point.t array ->
  caps:float array -> wire:Tech.Wire.t -> t

(** Elmore delay of [len] nm of [wire] into [load] fF — exposed for
    tests. *)
val edge_delay : wire:Tech.Wire.t -> len:float -> load:float -> float
