open Geometry

type t = Leaf of int | Node of t * t

let leaves topo =
  let rec go acc = function
    | Leaf i -> i :: acc
    | Node (a, b) -> go (go acc a) b
  in
  List.rev (go [] topo)

let rec depth = function
  | Leaf _ -> 0
  | Node (a, b) -> 1 + max (depth a) (depth b)

let rec size = function Leaf _ -> 1 | Node (a, b) -> size a + size b

type cluster = { topo : t; pos : Point.t }

let generate positions =
  let n = Array.length positions in
  if n = 0 then invalid_arg "Topology.generate: no sinks";
  if n = 1 then Leaf 0
  else begin
    (* Cluster ids are slots in a growing array; live ones are in the
       bucket index. *)
    let clusters = ref (Array.init n (fun i -> Some { topo = Leaf i; pos = positions.(i) })) in
    let bbox =
      Rect.bounding_box
        (Array.to_list (Array.map (fun p -> Rect.of_points p p) positions))
    in
    let span = max 1 (max (Rect.width bbox) (Rect.height bbox)) in
    let next_id = ref n in
    let live = ref n in
    let cell = max 1 (span / max 1 (int_of_float (sqrt (float_of_int n)))) in
    let bucket = Bucket.create ~cell in
    Array.iteri (fun i p -> Bucket.add bucket i p) positions;
    let get i = match !clusters.(i) with Some c -> c | None -> assert false in
    let add_cluster c =
      let id = !next_id in
      incr next_id;
      if id >= Array.length !clusters then begin
        let bigger = Array.make (2 * id) None in
        Array.blit !clusters 0 bigger 0 (Array.length !clusters);
        clusters := bigger
      end;
      !clusters.(id) <- Some c;
      Bucket.add bucket id c.pos;
      id
    in
    while !live > 1 do
      (* Candidate pair per live cluster: its nearest other live cluster. *)
      let candidates = ref [] in
      Bucket.iter bucket (fun id p ->
          match Bucket.nearest bucket ~exclude:(fun j -> j = id) p with
          | Some (j, q) ->
            let a, b = if id < j then (id, j) else (j, id) in
            candidates := (Point.dist p q, a, b) :: !candidates
          | None -> ());
      let candidates =
        List.sort_uniq
          (fun (d1, a1, b1) (d2, a2, b2) ->
            if d1 <> d2 then Int.compare d1 d2
            else if a1 <> a2 then Int.compare a1 a2
            else Int.compare b1 b2)
          !candidates
      in
      let matched = Hashtbl.create 16 in
      List.iter
        (fun (_, a, b) ->
          if (not (Hashtbl.mem matched a)) && not (Hashtbl.mem matched b) then begin
            Hashtbl.replace matched a ();
            Hashtbl.replace matched b ();
            let ca = get a and cb = get b in
            Bucket.remove bucket a;
            Bucket.remove bucket b;
            !clusters.(a) <- None;
            !clusters.(b) <- None;
            let merged =
              { topo = Node (ca.topo, cb.topo);
                pos = Point.midpoint ca.pos cb.pos }
            in
            ignore (add_cluster merged);
            decr live
          end)
        candidates
    done;
    let result = ref None in
    Bucket.iter bucket (fun id _ -> result := Some (get id).topo);
    match !result with Some t -> t | None -> assert false
  end
