module Rcnet = Analysis.Rcnet

let slow_r_scale tech =
  List.fold_left
    (fun acc (c : Tech.Corner.t) -> Float.max acc c.Tech.Corner.r_scale)
    1. tech.Tech.corners

let lumped ~tech ~buf ?(margin = 0.8) () =
  let r =
    Float.max (Tech.Composite.r_up buf) (Tech.Composite.r_down buf)
    *. slow_r_scale tech
  in
  let c_max = tech.Tech.slew_limit /. (Tech.Units.ln9 *. r *. Tech.Units.rc_to_ps) in
  margin *. (c_max -. Tech.Composite.c_out buf)

let wire_aware ~tech ~buf ?(margin = 0.8) () =
  let r_drv =
    Float.max (Tech.Composite.r_up buf) (Tech.Composite.r_down buf)
    *. slow_r_scale tech
  in
  let wire = Tech.wire tech (Tech.widest_wire tech) in
  let rho = wire.Tech.Wire.res_per_nm /. wire.Tech.Wire.cap_per_nm in
  (* ln9·k·(r_drv·C + ρ·C²/2) = margin·limit, positive root. *)
  let kk = Tech.Units.ln9 *. Tech.Units.rc_to_ps in
  let a = kk *. rho /. 2. and b = kk *. r_drv in
  let c = -.(margin *. tech.Tech.slew_limit) in
  let disc = (b *. b) -. (4. *. a *. c) in
  (* The driver's own output parasitic sits at the near end, fully
     shielded from the far-end slew — it does not reduce this bound. *)
  ((-.b) +. sqrt disc) /. (2. *. a)

(* One stage: buffer driving [wire_len] nm of the widest wire into a lumped
   load; bisect the largest load keeping the tap slew within limit. *)
let simulated ~tech ~buf ?(wire_len = 200_000) () =
  let wire = Tech.wire tech (Tech.widest_wire tech) in
  let r_drv =
    Float.max (Tech.Composite.r_up buf) (Tech.Composite.r_down buf)
    *. slow_r_scale tech
  in
  let slew_of load =
    let nseg = 8 in
    let size = nseg + 2 in
    let parent = Array.init size (fun i -> i - 1) in
    let seg_r = Tech.Wire.res wire wire_len /. float_of_int nseg in
    let seg_c = Tech.Wire.cap wire wire_len /. float_of_int nseg in
    let res =
      Array.init size (fun i ->
          if i = 0 then 0. else if i <= nseg then seg_r else 1e-3)
    in
    let cap =
      Array.init size (fun i ->
          if i = 0 then Tech.Composite.c_out buf
          else if i <= nseg then seg_c
          else load)
    in
    let rc =
      { Rcnet.parent; res; cap; taps = [| (size - 1, Rcnet.Tap_sink 0) |]; size }
    in
    let results = Analysis.Transient.solve rc ~r_drv ~s_drv:tech.Tech.source_slew in
    snd results.(0)
  in
  let lo = ref 0. and hi = ref (Float.max 1. (2. *. lumped ~tech ~buf ~margin:1.5 ())) in
  (* Ensure hi really violates. *)
  let guard = ref 0 in
  while slew_of !hi <= tech.Tech.slew_limit && !guard < 12 do
    hi := !hi *. 2.;
    incr guard
  done;
  for _ = 1 to 24 do
    let mid = 0.5 *. (!lo +. !hi) in
    if slew_of mid <= tech.Tech.slew_limit then lo := mid else hi := mid
  done;
  !lo
