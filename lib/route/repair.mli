(** Obstacle-violation repair for clock trees (paper §IV-A step 1 plus the
    orchestration of steps 2–3).

    In order:
    + choose the L-shape configuration of every bent wire that minimises
      overlap with blockages;
    + detour every enclosed subtree whose capacitance exceeds the
      slew-free capacitance along its compound's contour ({!Detour});
    + compact the tree (drops the replaced interior Steiner nodes);
    + maze-reroute point-to-point wires that still cross an obstacle and
      whose downstream capacitance a single pre-obstacle buffer could not
      drive. Crossing wires under the capacitance bound are left in place
      — a buffer inserted immediately before the obstacle will drive them
      (the ISPD'09 rules allow wires, but not buffers, over blockages). *)

type report = {
  bend_flips : int;
  detours : int;
  drivable_skips : int;   (** enclosed subtrees left because one buffer can drive them *)
  reroutes : int;
  remaining_overlap : int;  (** wirelength still over obstacle interiors, nm *)
}

(** [run tree ~obstacles ~drivable_cap] returns the repaired (compacted)
    tree and a report. [drivable_cap] is the slew-free capacitance bound
    (see {!Slewcap}). The input tree is not modified. *)
val run :
  Ctree.Tree.t -> obstacles:Geometry.Rect.t list -> drivable_cap:float ->
  Ctree.Tree.t * report

val pp_report : Format.formatter -> report -> unit

(** Buffers located strictly inside an obstacle — must be empty for a
    legal tree. *)
val illegal_buffers :
  Ctree.Tree.t -> obstacles:Geometry.Rect.t list -> int list
