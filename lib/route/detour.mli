(** Contour detours for subtrees enclosed by obstacles (paper §IV-A steps
    2–3, Fig. 2).

    When a subtree crossing an obstacle is too capacitive for a single
    buffer placed before the obstacle, its enclosed Steiner structure is
    replaced by wiring along the obstacle contour: every point where the
    subtree leaves the obstacle becomes an attachment on the contour, the
    whole contour is taken as the detour, and one contour arc between
    adjacent attachments is removed to keep the network a tree — the arc
    chosen so that the longest detoured source-to-attachment path is
    minimal (equivalently, the arc "furthest from the source along the
    contour"). *)

type result = {
  attachments : int;        (** exit points re-attached along the contour *)
  cut : int * int;          (** contour parameters of the removed arc *)
  chain_wirelength : int;   (** wirelength of the contour chain, nm *)
}

(** Total capacitance hanging off the feed wire of the subtree rooted at
    [id]: its parent wire, all subtree wires (electrical length), buffer
    input pins and sink loads. fF. *)
val subtree_cap : Ctree.Tree.t -> int -> float

(** Maximal nodes strictly inside the compound (nodes inside whose parent
    is not inside). *)
val enclosed_roots : Ctree.Tree.t -> Obstacle.t -> int list

(** Reroute the enclosed subtree rooted at [root] along the compound's
    contour. Interior Steiner nodes become unreachable; call
    {!Ctree.Tree.compact} afterwards. *)
val apply : Ctree.Tree.t -> Obstacle.t -> root:int -> result
