(** Compound obstacles: abutting or overlapping blockage rectangles merged
    into single regions (a buffer cannot be placed between two abutting
    blocks, so they act as one obstacle — paper §IV-A). *)

open Geometry

type t = {
  rects : Rect.t list;
  contour : Contour.t;
  bbox : Rect.t;
}

(** Group raw blockage rectangles into compound obstacles. *)
val compounds : Rect.t list -> t list

(** Is the point strictly inside the compound (interior, boundary
    excluded)? *)
val inside : t -> Point.t -> bool

(** Is the point inside or on the boundary? *)
val covers : t -> Point.t -> bool

(** Open-overlap length of a polyline with the compound's interior, nm. *)
val polyline_overlap : t -> Point.t list -> int
