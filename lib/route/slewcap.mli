(** Slew-free capacitance (paper §IV-A step 2): the largest load one
    composite buffer can drive without risking a slew violation. Used to
    decide whether a subtree crossing an obstacle needs a detour — no
    buffer may be placed over the obstacle, so the whole enclosed subtree
    hangs off one driver. *)

(** Closed-form bound: a lumped load C driven through the buffer's worst
    output resistance (slow corner) shows a 10–90 % slew of about
    [ln 9 · R · C]; the bound is the C for which that reaches the slew
    limit, shrunk by [margin] (default 0.8) to absorb the lumped-model
    optimism. *)
val lumped : tech:Tech.t -> buf:Tech.Composite.t -> ?margin:float -> unit -> float

(** Wire-aware bound: assumes the stage capacitance is wire of the widest
    class, whose own resistance degrades the far-end slew quadratically —
    [ln9·(R_drv·C + (r/c)·C²/2)] reaches the (margin-scaled) limit.
    Much tighter than {!lumped} for long stages; this is the bound
    insertion should seed its ceiling with. *)
val wire_aware : tech:Tech.t -> buf:Tech.Composite.t -> ?margin:float -> unit -> float

(** Simulation-refined bound: binary search over the load of a single
    lumped-RC stage evaluated with the transient engine at the slow
    corner. Tighter than {!lumped}; costs a handful of simulations. *)
val simulated : tech:Tech.t -> buf:Tech.Composite.t -> ?wire_len:int -> unit -> float
