open Geometry
module Tree = Ctree.Tree

type result = {
  attachments : int;
  cut : int * int;
  chain_wirelength : int;
}

let subtree_cap tree id =
  let acc = ref 0. in
  let rec visit i =
    let nd = Tree.node tree i in
    if nd.Tree.parent >= 0 then acc := !acc +. Tree.wire_cap tree nd;
    (match nd.Tree.kind with
    | Tree.Sink s -> acc := !acc +. s.Tree.cap
    | Tree.Buffer b -> acc := !acc +. Tech.Composite.c_in b
    | Tree.Source | Tree.Internal -> ());
    List.iter visit nd.Tree.children
  in
  visit id;
  !acc

let enclosed_roots tree compound =
  let roots = ref [] in
  Tree.iter tree (fun nd ->
      if nd.Tree.parent >= 0 && Obstacle.inside compound nd.Tree.pos then begin
        let parent_inside =
          Obstacle.inside compound (Tree.node tree nd.Tree.parent).Tree.pos
        in
        if not parent_inside then roots := nd.Tree.id :: !roots
      end);
  List.rev !roots

(* Exit points: descend from [root]; stop at the first node that is not
   strictly inside, or at a sink (sinks inside the obstacle must still be
   reached and act as attachments themselves). *)
let exits tree compound root =
  let out = ref [] in
  let rec visit i =
    let nd = Tree.node tree i in
    let is_sink = match nd.Tree.kind with Tree.Sink _ -> true | _ -> false in
    if (not (Obstacle.inside compound nd.Tree.pos)) || is_sink then
      out := i :: !out
    else List.iter visit nd.Tree.children
  in
  let root_nd = Tree.node tree root in
  List.iter visit root_nd.Tree.children;
  List.rev !out

let apply tree compound ~root =
  let contour = compound.Obstacle.contour in
  let root_nd = Tree.node tree root in
  let parent = root_nd.Tree.parent in
  if parent < 0 then invalid_arg "Detour.apply: root of tree is enclosed";
  let parent_pos = (Tree.node tree parent).Tree.pos in
  let s_src, src_point = Contour.project contour parent_pos in
  let exit_ids = exits tree compound root in
  let exit_params =
    List.map
      (fun v ->
        let s, _ = Contour.project contour (Tree.node tree v).Tree.pos in
        (v, s))
      exit_ids
  in
  (* Choose the cut arc: among arcs between cyclically consecutive
     parameters (attachments ∪ source), remove the one minimising the
     longest source-to-attachment walk that avoids the cut. *)
  let params =
    List.sort_uniq Int.compare (s_src :: List.map snd exit_params)
  in
  let arr = Array.of_list params in
  let k = Array.length arr in
  (* Removing the forward-open arc (cut_lo → cut_hi) leaves a path; a
     parameter is then reached from s_src by the direction that does not
     enter the arc. The two predicates below partition all non-source
     parameters (the cut arc contains no attachments by construction). *)
  let forward_side ~cut_lo s =
    cut_lo <> s_src
    && s <> s_src
    && Contour.dist_forward contour s_src s
       <= Contour.dist_forward contour s_src cut_lo
  in
  let backward_side ~cut_hi s =
    cut_hi <> s_src
    && s <> s_src
    && Contour.dist_forward contour s s_src
       <= Contour.dist_forward contour cut_hi s_src
  in
  let reach_cost ~cut_lo ~cut_hi s =
    if s = s_src then 0
    else if forward_side ~cut_lo s then Contour.dist_forward contour s_src s
    else if backward_side ~cut_hi s then Contour.dist_forward contour s s_src
    else max_int
  in
  let best_cut = ref (s_src, s_src) and best_cost = ref max_int in
  for i = 0 to k - 1 do
    let cut_lo = arr.(i) and cut_hi = arr.((i + 1) mod k) in
    let cost =
      List.fold_left
        (fun acc (_, s) -> max acc (reach_cost ~cut_lo ~cut_hi s))
        0 exit_params
    in
    if cost < !best_cost then begin
      best_cost := cost;
      best_cut := (cut_lo, cut_hi)
    end
  done;
  let cut_lo, cut_hi = !best_cut in
  (* Detach the enclosed structure and the exit subtrees. *)
  List.iter (fun v -> Tree.detach tree v) exit_ids;
  Tree.detach tree root;
  (* Anchor node on the contour, fed from the outside parent. *)
  let anchor =
    Tree.add_node tree ~kind:Tree.Internal ~pos:src_point ~parent
      ~wire_class:root_nd.Tree.wire_class ()
  in
  (* Build the two chains (forward and backward from the source anchor),
     creating one node per distinct attachment parameter, connected along
     the contour. *)
  let chain_wl = ref 0 in
  let side_params dir =
    let dist s =
      match dir with
      | `Forward -> Contour.dist_forward contour s_src s
      | `Backward -> Contour.dist_forward contour s s_src
    in
    let on_side s =
      match dir with
      | `Forward -> forward_side ~cut_lo s
      | `Backward -> backward_side ~cut_hi s
    in
    List.filter on_side params
    |> List.sort (fun a b -> Int.compare (dist a) (dist b))
  in
  let build_side dir =
    let prev_id = ref anchor and prev_param = ref s_src in
    List.iter
      (fun s ->
        let pos = Contour.point_at contour s in
        let id =
          Tree.add_node tree ~kind:Tree.Internal ~pos ~parent:!prev_id
            ~wire_class:root_nd.Tree.wire_class ()
        in
        let path =
          match dir with
          | `Forward -> Contour.path_between contour `Forward !prev_param s
          | `Backward -> Contour.path_between contour `Backward !prev_param s
        in
        if List.length path >= 2 then Tree.set_route tree id path;
        chain_wl := !chain_wl + (Tree.node tree id).Tree.geom_len;
        (* Hang every exit that projects to this parameter. *)
        List.iter
          (fun (v, sv) -> if sv = s then Tree.reparent tree v ~new_parent:id)
          exit_params;
        prev_id := id;
        prev_param := s)
      (side_params dir)
  in
  build_side `Forward;
  build_side `Backward;
  (* Exits projecting exactly onto the source anchor. *)
  List.iter
    (fun (v, sv) -> if sv = s_src then Tree.reparent tree v ~new_parent:anchor)
    exit_params;
  {
    attachments = List.length exit_params;
    cut = (cut_lo, cut_hi);
    chain_wirelength = !chain_wl;
  }
