open Geometry
module Tree = Ctree.Tree

type report = {
  bend_flips : int;
  detours : int;
  drivable_skips : int;
  reroutes : int;
  remaining_overlap : int;
}

(* Overlap of a node's parent wire with obstacle interiors, nm. *)
let wire_overlap tree compounds id =
  let nd = Tree.node tree id in
  if nd.Tree.parent < 0 then 0
  else begin
    let pts =
      match nd.Tree.route with
      | [] ->
        let p = (Tree.node tree nd.Tree.parent).Tree.pos in
        let b = Segment.L.bend nd.Tree.bend p nd.Tree.pos in
        if Point.equal b p || Point.equal b nd.Tree.pos then [ p; nd.Tree.pos ]
        else [ p; b; nd.Tree.pos ]
      | route -> route
    in
    List.fold_left
      (fun acc c -> acc + Obstacle.polyline_overlap c pts)
      0 compounds
  end

let total_overlap tree compounds =
  let acc = ref 0 in
  Tree.iter tree (fun nd ->
      if nd.Tree.parent >= 0 then
        acc := !acc + wire_overlap tree compounds nd.Tree.id);
  !acc

let flip_bends tree rects =
  let flips = ref 0 in
  Tree.iter tree (fun nd ->
      if nd.Tree.parent >= 0 && nd.Tree.route = [] then begin
        let p = (Tree.node tree nd.Tree.parent).Tree.pos in
        if not (Point.is_aligned p nd.Tree.pos) then begin
          let best, _ = Segment.L.best p nd.Tree.pos rects in
          if best <> nd.Tree.bend then begin
            let before = Segment.L.overlap nd.Tree.bend p nd.Tree.pos rects in
            let after = Segment.L.overlap best p nd.Tree.pos rects in
            if after < before then begin
              nd.Tree.bend <- best;
              incr flips
            end
          end
        end
      end);
  !flips

let run tree ~obstacles ~drivable_cap =
  let tree = Tree.copy tree in
  let compounds = Obstacle.compounds obstacles in
  let bend_flips = flip_bends tree obstacles in
  (* Detour enclosed subtrees that one buffer cannot drive. *)
  let detours = ref 0 and skips = ref 0 in
  List.iter
    (fun compound ->
      List.iter
        (fun root ->
          if Detour.subtree_cap tree root > drivable_cap then begin
            ignore (Detour.apply tree compound ~root);
            incr detours
          end
          else incr skips)
        (Detour.enclosed_roots tree compound))
    compounds;
  let tree, _remap = Tree.compact tree in
  (* Maze-reroute remaining heavy crossing wires. *)
  let reroutes = ref 0 in
  let order = Tree.topo_order tree in
  Array.iter
    (fun id ->
      let nd = Tree.node tree id in
      if nd.Tree.parent >= 0
         && wire_overlap tree compounds id > 0
         && Detour.subtree_cap tree id > drivable_cap
      then begin
        let p = (Tree.node tree nd.Tree.parent).Tree.pos in
        match Grid.route ~obstacles ~src:p ~dst:nd.Tree.pos with
        | Some path when List.length path >= 2 ->
          Tree.set_route tree id path;
          incr reroutes
        | Some _ | None -> ()
      end)
    order;
  let report =
    {
      bend_flips;
      detours = !detours;
      drivable_skips = !skips;
      reroutes = !reroutes;
      remaining_overlap = total_overlap tree compounds;
    }
  in
  (tree, report)

let pp_report ppf r =
  Format.fprintf ppf
    "bend flips=%d detours=%d drivable skips=%d reroutes=%d remaining \
     overlap=%.3fmm"
    r.bend_flips r.detours r.drivable_skips r.reroutes
    (float_of_int r.remaining_overlap /. 1.e6)

let illegal_buffers tree ~obstacles =
  let compounds = Obstacle.compounds obstacles in
  Array.to_list (Tree.buffer_ids tree)
  |> List.filter (fun id ->
         let pos = (Tree.node tree id).Tree.pos in
         List.exists (fun c -> Obstacle.inside c pos) compounds)
