open Geometry

type t = { rects : Rect.t list; contour : Contour.t; bbox : Rect.t }

let compounds rect_list =
  List.map
    (fun group ->
      { rects = group; contour = Contour.of_rects group;
        bbox = Rect.bounding_box group })
    (Rect.compound_groups rect_list)

(* Interior of the union: covered, and all four axis neighbours covered too
   (a union-boundary point has an uncovered neighbour). *)
let inside t p =
  let covered q = List.exists (fun r -> Rect.contains r q) t.rects in
  Rect.contains_open t.bbox p && covered p
  && covered (Point.make p.Point.x (p.Point.y + 1))
  && covered (Point.make p.Point.x (p.Point.y - 1))
  && covered (Point.make (p.Point.x + 1) p.Point.y)
  && covered (Point.make (p.Point.x - 1) p.Point.y)

let covers t p =
  Rect.contains t.bbox p && List.exists (fun r -> Rect.contains r p) t.rects

let polyline_overlap t pts =
  let rec go acc = function
    | a :: b :: rest ->
      let seg_overlap =
        if Point.is_aligned a b then
          let s = Segment.make a b in
          List.fold_left (fun acc r -> acc + Segment.overlap_with_rect s r) 0 t.rects
        else
          (* Non-axis-aligned (diagonal-drawn L): measure both legs of the
             default XY embedding. *)
          Segment.L.overlap Segment.L.XY a b t.rects
      in
      go (acc + seg_overlap) (b :: rest)
    | _ -> acc
  in
  go 0 pts
