(* Shared van-Ginneken-style dynamic program over a clock tree.

   Candidates are (downstream cap, worst Elmore delay to any downstream
   sink, placement set); buffer positions are every [step] nm of electrical
   wirelength plus every tree node. Candidate lists are kept Pareto-minimal
   (cap ascending, delay strictly descending). The [buckets] option
   additionally quantises the cap axis and keeps the best candidate per
   bucket, which bounds list sizes by a constant — the near-linear variant
   in the spirit of Shi & Li's O(n log n) algorithm.

   Placement sets are O(1)-concatenation rope lists so that branch merges
   do not copy. *)

module Tree = Ctree.Tree

type placements =
  | Empty
  | Single of loc
  | Cat of placements * placements

and loc = { wire_id : int; at_elec : int }
(* Buffer at [at_elec] nm of electrical length from the parent end of the
   wire owned by node [wire_id]. *)

type cand = { cap : float; delay : float; places : placements }

let rec flatten acc = function
  | Empty -> acc
  | Single l -> l :: acc
  | Cat (a, b) -> flatten (flatten acc b) a

(* Pareto prune a cap-sorted list: keep strictly improving delay. *)
let pareto cands =
  let sorted =
    List.sort
      (fun a b ->
        if a.cap <> b.cap then Float.compare a.cap b.cap
        else Float.compare a.delay b.delay)
      cands
  in
  let rec go best_delay = function
    | [] -> []
    | c :: rest ->
      if c.delay < best_delay then c :: go c.delay rest else go best_delay rest
  in
  go infinity sorted

let quantise ~buckets ~ceiling cands =
  match buckets with
  | None -> cands
  | Some k ->
    let width = ceiling /. float_of_int k in
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun c ->
        let b = int_of_float (c.cap /. width) in
        match Hashtbl.find_opt tbl b with
        | Some best when best.delay <= c.delay -> ()
        | _ -> Hashtbl.replace tbl b c)
      cands;
    Hashtbl.fold (fun _ c acc -> c :: acc) tbl []

(* Pareto combination of two children lists under (cap sum, delay max):
   for each candidate on one side, pair it with the cheapest candidate on
   the other side whose delay does not exceed it. *)
let combine a b =
  let arr_a = Array.of_list a and arr_b = Array.of_list b in
  let best_partner arr d =
    (* arr sorted cap asc / delay desc: first (cheapest) element with delay
       <= d; binary search on the descending delay. *)
    let n = Array.length arr in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if arr.(mid).delay <= d then hi := mid else lo := mid + 1
    done;
    if !lo >= n then None else Some arr.(!lo)
  in
  let one_side xs other =
    List.filter_map
      (fun x ->
        match best_partner other x.delay with
        | None -> None
        | Some y ->
          Some
            { cap = x.cap +. y.cap;
              delay = Float.max x.delay y.delay;
              places = Cat (x.places, y.places) })
      xs
  in
  pareto (one_side a arr_b @ one_side b arr_a)

type params = {
  buf : Tech.Composite.t;
  step : int;           (* candidate spacing along wires, nm *)
  ceiling : float;      (* max cap any driver may see, fF *)
  buckets : int option; (* cap-axis quantisation; None = exact *)
  forbidden : Geometry.Point.t -> bool;
      (* no buffer may be placed where this holds (obstacle interiors) *)
}

exception Infeasible of string

let run tree p =
  let k = Tech.Units.rc_to_ps in
  let buf_r = Tech.Composite.r_out p.buf in
  let buf_cout = Tech.Composite.c_out p.buf in
  let buf_cin = Tech.Composite.c_in p.buf in
  let buf_d = Tech.Composite.d_intrinsic p.buf in
  let prune cands =
    let kept =
      List.filter (fun c -> c.cap <= p.ceiling) cands
      |> quantise ~buckets:p.buckets ~ceiling:p.ceiling
      |> pareto
    in
    kept
  in
  let add_buffer_options ~loc cands =
    let buffered =
      List.filter_map
        (fun c ->
          if c.cap > p.ceiling then None
          else
            Some
              { cap = buf_cin;
                delay = c.delay +. buf_d +. (buf_r *. (buf_cout +. c.cap) *. k);
                places = Cat (Single loc, c.places) })
        cands
    in
    cands @ buffered
  in
  (* Process the wire above [id]: from the child end to the parent end,
     inserting candidate positions every [step] nm. *)
  let climb_wire id cands =
    let nd = Tree.node tree id in
    let wire = Tree.wire_of tree nd in
    let len = Tree.wire_len nd in
    let r = wire.Tech.Wire.res_per_nm and c = wire.Tech.Wire.cap_per_nm in
    let add_span cands span =
      if span = 0 then cands
      else begin
        let fl = float_of_int span in
        let wc = c *. fl and wr = r *. fl in
        List.map
          (fun cd ->
            { cd with
              cap = cd.cap +. wc;
              delay = cd.delay +. (wr *. ((wc /. 2.) +. cd.cap) *. k) })
          cands
      end
    in
    let geom = nd.Tree.geom_len in
    let position_ok at_elec =
      (* Map the electrical position to geometry and test legality. *)
      let at_geom = if len = 0 then 0 else at_elec * geom / len in
      not (p.forbidden (Tree.point_along_wire tree id (min geom at_geom)))
    in
    let rec walk cands travelled =
      (* [travelled] nm processed from the child end. Zero-length wires
         (coincident DME merge points, frequent at dense scale) must still
         offer a buffer position, or stacked merges could exceed any
         ceiling with nowhere to buffer. *)
      if travelled >= len then
        if len = 0 && position_ok 0 then
          prune (add_buffer_options ~loc:{ wire_id = id; at_elec = 0 } cands)
        else cands
      else begin
        let span = min p.step (len - travelled) in
        let cands = add_span cands span in
        let travelled = travelled + span in
        let at_elec = len - travelled in
        let cands =
          if position_ok at_elec then
            prune (add_buffer_options ~loc:{ wire_id = id; at_elec } cands)
          else begin
            (* Forbidden span (over an obstacle): no buffer may be added
               here. If the ceiling would empty the list, keep the
               lightest candidate — the span is unavoidably unbuffered and
               the accurate evaluation downstream will police the slew. *)
            match prune cands with
            | [] ->
              (match
                 List.sort (fun a b -> Float.compare a.cap b.cap) cands
               with
              | lightest :: _ -> [ lightest ]
              | [] -> [])
            | pruned -> pruned
          end
        in
        walk cands travelled
      end
    in
    walk cands 0
  in
  let rec solve id =
    let nd = Tree.node tree id in
    let base =
      match nd.Tree.kind with
      | Tree.Sink s ->
        if s.Tree.cap > p.ceiling then
          raise
            (Infeasible
               (Printf.sprintf "sink %d load %.1f fF exceeds ceiling %.1f" id
                  s.Tree.cap p.ceiling));
        [ { cap = s.Tree.cap; delay = 0.; places = Empty } ]
      | Tree.Internal | Tree.Source ->
        (match nd.Tree.children with
        | [] -> raise (Infeasible (Printf.sprintf "childless internal node %d" id))
        | first :: rest ->
          List.fold_left
            (fun acc child -> combine acc (solve_edge child))
            (solve_edge first) rest)
      | Tree.Buffer _ ->
        raise (Infeasible "tree already contains buffers")
    in
    prune base
  and solve_edge child =
    let cands = solve child in
    if cands = [] then
      raise (Infeasible (Printf.sprintf "no feasible candidates below node %d" child));
    climb_wire child cands
  in
  let root_cands = solve (Tree.root tree) in
  match pareto root_cands with
  | [] -> raise (Infeasible "no feasible solution at the root")
  | best :: _ ->
    (* Cap-sorted Pareto list: the head has least cap; the tail least
       delay. Pick least delay whose cap the source can drive. *)
    let chosen =
      List.fold_left
        (fun acc c -> if c.cap <= p.ceiling && c.delay < acc.delay then c else acc)
        best root_cands
    in
    flatten [] chosen.places

(* Apply a placement list to (a copy of) the tree. *)
let apply tree buf locs =
  let tree = Tree.copy tree in
  let by_wire = Hashtbl.create 64 in
  List.iter
    (fun l ->
      let cur = try Hashtbl.find by_wire l.wire_id with Not_found -> [] in
      Hashtbl.replace by_wire l.wire_id (l.at_elec :: cur))
    locs;
  Hashtbl.iter
    (fun wire_id ats ->
      (* Insert from the deepest (largest at) upwards; each insertion
         leaves the shallower span as the new target's parent wire. *)
      let ats = List.sort_uniq (fun a b -> Int.compare b a) ats in
      let nd = Tree.node tree wire_id in
      let elec = Tree.wire_len nd in
      let geom = nd.Tree.geom_len in
      let target = ref wire_id in
      List.iter
        (fun at_elec ->
          let at_geom =
            if elec = 0 then 0
            else
              min (Tree.node tree !target).Tree.geom_len
                (at_elec * geom / max 1 elec)
          in
          let id =
            Tree.insert_buffer_on_wire tree !target ~at:at_geom ~buf
          in
          target := id)
        ats)
    by_wire;
  tree
