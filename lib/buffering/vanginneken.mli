(** Classic van Ginneken buffer insertion (exact dynamic program, O(n²)
    in the number of candidate positions).

    Minimises the worst source-to-sink Elmore delay of an unbuffered tree
    by inserting copies of one composite buffer at positions spaced every
    [step] nm of electrical wirelength, subject to a load-capacitance
    ceiling per driver (the slew constraint in Elmore terms). Sink polarity
    is deliberately ignored — Contango corrects it afterwards (§IV-D). *)

exception Infeasible of string

(** [insert tree ~buf ~cap_ceiling] returns a new tree; the input is
    unchanged. [step] defaults to 100 µm. [forbidden] marks positions
    where no buffer may be placed (obstacle interiors; default none) —
    candidate positions there are skipped, so wires cross blockages
    unbuffered exactly as the ISPD'09 rules require.
    @raise Infeasible when a sink load alone exceeds the ceiling or the
    tree contains buffers already. *)
val insert :
  Ctree.Tree.t -> buf:Tech.Composite.t -> ?step:int ->
  ?forbidden:(Geometry.Point.t -> bool) -> cap_ceiling:float ->
  unit -> Ctree.Tree.t

(** Placement count of the last [insert] on this tree — exposed for
    tests/reporting. Returns the number of buffers inserted. *)
val last_inserted : unit -> int
