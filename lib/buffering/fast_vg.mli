(** Near-linear van Ginneken variant, in the spirit of Shi & Li's
    O(n log n) algorithm [12]: identical dynamic program, but the cap axis
    of every candidate list is quantised into [buckets] levels (best delay
    per level kept), bounding list sizes by a constant. Like the paper's
    variant it spares buffers on fast paths and yields low skew on
    balanced input trees, at a small optimality loss versus the exact
    DP. *)

exception Infeasible of string

(** [insert tree ~buf ~cap_ceiling] — [step] defaults to 100 µm, [buckets]
    to 48. @raise Infeasible as for {!Vanginneken.insert}. *)
val insert :
  Ctree.Tree.t -> buf:Tech.Composite.t -> ?step:int -> ?buckets:int ->
  ?forbidden:(Geometry.Point.t -> bool) -> cap_ceiling:float ->
  unit -> Ctree.Tree.t

val last_inserted : unit -> int
