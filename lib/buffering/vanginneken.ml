exception Infeasible of string

let last_count = ref 0
let last_inserted () = !last_count

let insert tree ~buf ?(step = 100_000) ?(forbidden = fun _ -> false) ~cap_ceiling () =
  let locs =
    try Dp.run tree { Dp.buf; step; ceiling = cap_ceiling; buckets = None; forbidden }
    with Dp.Infeasible msg -> raise (Infeasible msg)
  in
  last_count := List.length locs;
  Dp.apply tree buf locs
