(** Total list accessors missing from the stdlib. *)

(** [last ~what xs] — the final element of [xs], found in a single
    traversal (the [List.nth xs (List.length xs - 1)] idiom walks the list
    twice and raises a bare [Failure]/[Invalid_argument]).
    @raise Invalid_argument naming [what] when [xs] is empty. *)
val last : what:string -> 'a list -> 'a
