(** Rectilinear outline of a compound obstacle (a connected union of
    rectangles), with arc-length parametrisation.

    The Contango detour algorithm (paper §IV-A, Fig. 2) routes along the
    contour of a compound obstacle; it needs the closest boundary point to
    an arbitrary location, distances measured along the contour, and the
    concrete polyline between two boundary parameters. *)

type t

(** Outer boundary of the union of the rectangles. The rectangles must form
    a single connected compound (see {!Rect.compound_groups}).
    @raise Invalid_argument on an empty list or a disconnected compound. *)
val of_rects : Rect.t list -> t

(** Counter-clockwise vertex list of the outline (no repeated last
    vertex). *)
val vertices : t -> Point.t list

val perimeter : t -> int

(** [project t p] is the closest boundary point to [p] together with its
    arc-length parameter in [0, perimeter). *)
val project : t -> Point.t -> int * Point.t

(** Boundary point at a (cyclic) arc-length parameter. *)
val point_at : t -> int -> Point.t

(** Minimum cyclic distance along the contour between two parameters. *)
val dist_along : t -> int -> int -> int

(** Forward walking distance from [s1] to [s2] (in [0, perimeter)). *)
val dist_forward : t -> int -> int -> int

(** Polyline from parameter [s1] to [s2] walking in the given direction
    (vertices of the contour in between included; endpoints are the
    concrete boundary points). *)
val path_between : t -> [ `Forward | `Backward ] -> int -> int -> Point.t list

(** Polyline along the shorter of the two directions. *)
val shortest_path : t -> int -> int -> Point.t list

(** [contains t p] — is [p] inside the compound region (boundary
    inclusive)? *)
val contains : t -> Point.t -> bool
