(** Coordinate-compressed rectilinear maze router.

    Routes a point-to-point connection around obstacle interiors on the
    Hanan grid induced by the obstacle corners and the two terminals.
    Routing along obstacle boundaries is allowed (the ISPD'09 rules allow
    wires over blockages; the detouring policy decides when crossing is
    acceptable — this router provides the fully-avoiding alternative). *)

(** [route ~obstacles ~src ~dst] is the shortest rectilinear path from
    [src] to [dst] whose segments never cross an obstacle interior, as a
    polyline including both endpoints (collinear interior vertices are
    merged), or [None] when no such path exists inside the routing region
    (the bounding box of everything, expanded by a margin).

    Terminals strictly inside an obstacle are first escaped to the nearest
    boundary point, and the escape stub is included in the path. *)
val route :
  obstacles:Rect.t list -> src:Point.t -> dst:Point.t -> Point.t list option

(** Length of a polyline returned by {!route}. *)
val path_length : Point.t list -> int
