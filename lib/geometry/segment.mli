(** Axis-parallel segments and rectilinear L-shapes.

    Clock-tree wires are embedded as straight segments when their endpoints
    are aligned, and as one of the two L-shape configurations otherwise. *)

type t = private { a : Point.t; b : Point.t }

(** @raise Invalid_argument when the points are not axis-aligned. *)
val make : Point.t -> Point.t -> t

val length : t -> int
val is_horizontal : t -> bool
val is_vertical : t -> bool
val is_point : t -> bool

(** Points of the segment at integer parameters, inclusive of endpoints. *)
val contains : t -> Point.t -> bool

(** Length of the part of the segment lying strictly inside the rectangle
    (open overlap, in nm). Touching the boundary contributes nothing. *)
val overlap_with_rect : t -> Rect.t -> int

(** [crosses_rect s r] holds when a positive length of [s] lies inside the
    open rectangle. *)
val crosses_rect : t -> Rect.t -> bool

val pp : Format.formatter -> t -> unit

(** Rectilinear L-shapes connecting two arbitrary points. *)
module L : sig
  (** The two configurations for connecting [p] to [q]: bend at
      [(q.x, p.y)] ([XY], horizontal first) or at [(p.x, q.y)] ([YX],
      vertical first). Aligned endpoints yield a single segment under either
      configuration. *)
  type config = XY | YX

  (** The one or two segments of a configuration, in order from [p] to [q].
      Degenerate (zero-length) segments are omitted. *)
  val segments : config -> Point.t -> Point.t -> t list

  val bend : config -> Point.t -> Point.t -> Point.t

  (** Total open-overlap length of a configuration with a set of
      rectangles. *)
  val overlap : config -> Point.t -> Point.t -> Rect.t list -> int

  (** The configuration of least obstacle overlap (ties prefer [XY]),
      together with its overlap length. *)
  val best : Point.t -> Point.t -> Rect.t list -> config * int
end
