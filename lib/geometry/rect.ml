type t = { lx : int; ly : int; hx : int; hy : int }

let make ~lx ~ly ~hx ~hy =
  if hx < lx || hy < ly then
    invalid_arg
      (Printf.sprintf "Rect.make: inverted bounds (%d,%d)-(%d,%d)" lx ly hx hy);
  { lx; ly; hx; hy }

let of_points (a : Point.t) (b : Point.t) =
  make ~lx:(min a.x b.x) ~ly:(min a.y b.y) ~hx:(max a.x b.x) ~hy:(max a.y b.y)

let width r = r.hx - r.lx
let height r = r.hy - r.ly
let area r = width r * height r
let center r = Point.make ((r.lx + r.hx) / 2) ((r.ly + r.hy) / 2)

let corners r =
  [ Point.make r.lx r.ly; Point.make r.hx r.ly;
    Point.make r.hx r.hy; Point.make r.lx r.hy ]

let contains r (p : Point.t) = r.lx <= p.x && p.x <= r.hx && r.ly <= p.y && p.y <= r.hy
let contains_open r (p : Point.t) = r.lx < p.x && p.x < r.hx && r.ly < p.y && p.y < r.hy

let intersect a b =
  let lx = max a.lx b.lx and ly = max a.ly b.ly in
  let hx = min a.hx b.hx and hy = min a.hy b.hy in
  if hx < lx || hy < ly then None else Some { lx; ly; hx; hy }

let overlaps_open a b =
  max a.lx b.lx < min a.hx b.hx && max a.ly b.ly < min a.hy b.hy

let abuts a b =
  match intersect a b with
  | None -> false
  | Some _ -> not (overlaps_open a b)

let touches a b = intersect a b <> None

let expand r d =
  let lx = r.lx - d and ly = r.ly - d and hx = r.hx + d and hy = r.hy + d in
  if hx >= lx && hy >= ly then { lx; ly; hx; hy }
  else
    let c = center r in
    { lx = c.x; ly = c.y; hx = c.x; hy = c.y }

let dist_to_point r (p : Point.t) =
  let dx = max 0 (max (r.lx - p.x) (p.x - r.hx)) in
  let dy = max 0 (max (r.ly - p.y) (p.y - r.hy)) in
  dx + dy

let clamp r (p : Point.t) =
  Point.make (min (max p.x r.lx) r.hx) (min (max p.y r.ly) r.hy)

let bounding_box = function
  | [] -> invalid_arg "Rect.bounding_box: empty list"
  | r0 :: rest ->
    List.fold_left
      (fun acc r ->
        { lx = min acc.lx r.lx; ly = min acc.ly r.ly;
          hx = max acc.hx r.hx; hy = max acc.hy r.hy })
      r0 rest

(* Union-find over rectangle indices; [touches] pairs are unioned. Quadratic
   in the number of rectangles, which is fine for layout blockage counts. *)
let compound_groups rects =
  let arr = Array.of_list rects in
  let n = Array.length arr in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  (* Corner-only contact does not merge: a detour cannot pass through a
     point, so point-touching rectangles act as separate obstacles. *)
  let connected a b =
    match intersect a b with
    | None -> false
    | Some i -> width i > 0 || height i > 0
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if connected arr.(i) arr.(j) then union i j
    done
  done;
  let groups = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let root = find i in
    let cur = try Hashtbl.find groups root with Not_found -> [] in
    Hashtbl.replace groups root (arr.(i) :: cur)
  done;
  Hashtbl.fold (fun _ g acc -> List.rev g :: acc) groups []

let equal (a : t) (b : t) = a = b
let pp ppf r = Format.fprintf ppf "[%d,%d]x[%d,%d]" r.lx r.hx r.ly r.hy
