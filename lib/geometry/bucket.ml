type t = {
  cell : int;
  cells : (int * int, (int, Point.t) Hashtbl.t) Hashtbl.t;
  ids : (int, Point.t) Hashtbl.t;
}

let create ~cell =
  if cell <= 0 then invalid_arg "Bucket.create: cell must be positive";
  { cell; cells = Hashtbl.create 256; ids = Hashtbl.create 256 }

let key t (p : Point.t) =
  let q v = if v >= 0 then v / t.cell else ((v + 1) / t.cell) - 1 in
  (q p.x, q p.y)

let add t id p =
  if Hashtbl.mem t.ids id then
    invalid_arg (Printf.sprintf "Bucket.add: duplicate id %d" id);
  Hashtbl.replace t.ids id p;
  let k = key t p in
  let bucket =
    match Hashtbl.find_opt t.cells k with
    | Some b -> b
    | None ->
      let b = Hashtbl.create 4 in
      Hashtbl.replace t.cells k b;
      b
  in
  Hashtbl.replace bucket id p

let remove t id =
  match Hashtbl.find_opt t.ids id with
  | None -> ()
  | Some p ->
    Hashtbl.remove t.ids id;
    (match Hashtbl.find_opt t.cells (key t p) with
    | Some bucket -> Hashtbl.remove bucket id
    | None -> ())

let mem t id = Hashtbl.mem t.ids id
let size t = Hashtbl.length t.ids
let position t id = Hashtbl.find_opt t.ids id
let iter t f = Hashtbl.iter (fun id p -> f id p) t.ids

let nearest t ?(exclude = fun _ -> false) p =
  if Hashtbl.length t.ids = 0 then None
  else begin
    let cx, cy = key t p in
    let best = ref None in
    let consider id q =
      if not (exclude id) then begin
        let d = Point.dist p q in
        match !best with
        | Some (bd, bid, _) when d > bd || (d = bd && id >= bid) -> ()
        | _ -> best := Some (d, id, q)
      end
    in
    let scan_ring r =
      (* Visit cells at Chebyshev ring distance exactly r around (cx,cy). *)
      if r = 0 then begin
        match Hashtbl.find_opt t.cells (cx, cy) with
        | Some b -> Hashtbl.iter consider b
        | None -> ()
      end
      else
        for dx = -r to r do
          let columns = if abs dx = r then List.init ((2 * r) + 1) (fun i -> i - r) else [ -r; r ] in
          List.iter
            (fun dy ->
              match Hashtbl.find_opt t.cells (cx + dx, cy + dy) with
              | Some b -> Hashtbl.iter consider b
              | None -> ())
            columns
        done
    in
    (* Expanding ring search. A point in a cell at Chebyshev ring r is at
       Manhattan distance at least (r-1)*cell+1 from p, so once the best
       found distance is below that bound no farther ring can win. *)
    let r = ref 0 in
    let continue = ref true in
    while !continue do
      scan_ring !r;
      (match !best with
      | Some (bd, _, _) when bd <= !r * t.cell -> continue := false
      | _ -> ());
      (* Safety stop: beyond the populated area nothing more can appear. *)
      if !r > 4 + (Hashtbl.length t.cells * 2) && !best <> None then continue := false
      else if !r > 4 + (Hashtbl.length t.cells * 2) && Hashtbl.length t.ids > 0 && !best = None
      then begin
        (* Sparse fallback: direct scan (can only happen for far-away
           queries relative to the populated region). *)
        Hashtbl.iter consider t.ids;
        continue := false
      end;
      incr r
    done;
    match !best with Some (_, id, q) -> Some (id, q) | None -> None
  end
