(** Axis-parallel rectangles (closed point sets), used for layout obstacles.

    A rectangle is stored by its lower-left and upper-right corners; both
    boundaries belong to the rectangle. Degenerate (zero width or height)
    rectangles are permitted — they behave as segments or points. *)

type t = private { lx : int; ly : int; hx : int; hy : int }

(** [make ~lx ~ly ~hx ~hy] builds a rectangle.
    @raise Invalid_argument if [hx < lx] or [hy < ly]. *)
val make : lx:int -> ly:int -> hx:int -> hy:int -> t

val of_points : Point.t -> Point.t -> t

val width : t -> int
val height : t -> int
val area : t -> int
val center : t -> Point.t
val corners : t -> Point.t list

(** Closed containment: boundary points are inside. *)
val contains : t -> Point.t -> bool

(** Open containment: strictly inside, boundary excluded. *)
val contains_open : t -> Point.t -> bool

(** [intersect a b] is the common rectangle of two closed rectangles, or
    [None] when they are disjoint. Touching rectangles intersect in a
    degenerate rectangle. *)
val intersect : t -> t -> t option

(** [overlaps_open a b] holds when the interiors overlap (positive area in
    both dimensions of the intersection). *)
val overlaps_open : t -> t -> bool

(** [abuts a b] holds when the closed rectangles share at least a boundary
    point but their interiors do not overlap. *)
val abuts : t -> t -> bool

(** [touches a b] = [overlaps_open a b || abuts a b]: the rectangles form a
    single compound region. *)
val touches : t -> t -> bool

(** Grow by [d] in every direction (negative [d] shrinks; the result is
    clamped to a degenerate rectangle at the centre when over-shrunk). *)
val expand : t -> int -> t

(** Minimum Manhattan distance from a point to the closed rectangle
    (0 when inside). *)
val dist_to_point : t -> Point.t -> int

(** Closest point of the closed rectangle to the argument. *)
val clamp : t -> Point.t -> Point.t

(** Bounding box of a non-empty list.
    @raise Invalid_argument on an empty list. *)
val bounding_box : t list -> t

(** Partition rectangles into compound groups: two rectangles are in the
    same group when connected through a chain of pairs that overlap or
    share a boundary segment of positive length (corner-only contact does
    not connect). Order of groups and of members within a group is
    unspecified. *)
val compound_groups : t list -> t list list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
