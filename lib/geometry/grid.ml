(* Binary min-heap keyed by int priorities. *)
module Heap = struct
  type t = { mutable data : (int * int) array; mutable size : int }

  let create () = { data = Array.make 64 (0, 0); size = 0 }

  let push h prio v =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0, 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.data.(!i) <- (prio, v);
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if fst h.data.(parent) > fst h.data.(!i) then begin
        let tmp = h.data.(parent) in
        h.data.(parent) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let path_length = function
  | [] -> 0
  | first :: _ as pts ->
    snd
      (List.fold_left
         (fun (prev, acc) p -> (p, acc + Point.dist prev p))
         (first, 0) pts)

let sorted_uniq = List.sort_uniq Int.compare

(* Escape a terminal strictly inside an obstacle to the closest point of
   that obstacle's boundary. *)
let escape obstacles (p : Point.t) =
  match List.find_opt (fun r -> Rect.contains_open r p) obstacles with
  | None -> p
  | Some (r : Rect.t) ->
    let candidates =
      [ Point.make r.lx p.y; Point.make r.hx p.y;
        Point.make p.x r.ly; Point.make p.x r.hy ]
    in
    List.fold_left
      (fun best c -> if Point.dist p c < Point.dist p best then c else best)
      (Point.make r.lx p.y) candidates

let route ~obstacles ~src ~dst =
  let src' = escape obstacles src and dst' = escape obstacles dst in
  let margin = 1 + (Point.dist src' dst' / 2) in
  let bbox =
    Rect.bounding_box
      (Rect.of_points src' dst' :: obstacles)
  in
  let region = Rect.expand bbox margin in
  let xs =
    sorted_uniq
      (region.lx :: region.hx :: src'.x :: dst'.x
      :: List.concat_map (fun (r : Rect.t) -> [ r.lx; r.hx ]) obstacles)
  in
  let ys =
    sorted_uniq
      (region.ly :: region.hy :: src'.y :: dst'.y
      :: List.concat_map (fun (r : Rect.t) -> [ r.ly; r.hy ]) obstacles)
  in
  let xs = Array.of_list xs and ys = Array.of_list ys in
  let nx = Array.length xs and ny = Array.length ys in
  let id i j = (i * ny) + j in
  let blocked_h i j =
    (* horizontal step from (i,j) to (i+1,j) *)
    List.exists
      (fun (r : Rect.t) ->
        r.ly < ys.(j) && ys.(j) < r.hy && r.lx <= xs.(i) && xs.(i + 1) <= r.hx)
      obstacles
  in
  let blocked_v i j =
    List.exists
      (fun (r : Rect.t) ->
        r.lx < xs.(i) && xs.(i) < r.hx && r.ly <= ys.(j) && ys.(j + 1) <= r.hy)
      obstacles
  in
  let find arr v =
    let rec bs lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if arr.(mid) < v then bs (mid + 1) hi else bs lo mid
    in
    bs 0 (Array.length arr - 1)
  in
  let si = find xs src'.x and sj = find ys src'.y in
  let di = find xs dst'.x and dj = find ys dst'.y in
  let n = nx * ny in
  let dist = Array.make n max_int in
  let prev = Array.make n (-1) in
  let heap = Heap.create () in
  dist.(id si sj) <- 0;
  Heap.push heap 0 (id si sj);
  let target = id di dj in
  let finished = ref false in
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
      if v = target then finished := true
      else if d > dist.(v) then loop ()
      else begin
        let i = v / ny and j = v mod ny in
        let relax i' j' w =
          let v' = id i' j' in
          if d + w < dist.(v') then begin
            dist.(v') <- d + w;
            prev.(v') <- v;
            Heap.push heap (d + w) v'
          end
        in
        if i + 1 < nx && not (blocked_h i j) then relax (i + 1) j (xs.(i + 1) - xs.(i));
        if i > 0 && not (blocked_h (i - 1) j) then relax (i - 1) j (xs.(i) - xs.(i - 1));
        if j + 1 < ny && not (blocked_v i j) then relax i (j + 1) (ys.(j + 1) - ys.(j));
        if j > 0 && not (blocked_v i (j - 1)) then relax i (j - 1) (ys.(j) - ys.(j - 1));
        loop ()
      end
  in
  loop ();
  if not !finished && dist.(target) = max_int then None
  else begin
    let rec backtrack v acc =
      let i = v / ny and j = v mod ny in
      let acc = Point.make xs.(i) ys.(j) :: acc in
      if prev.(v) = -1 then acc else backtrack prev.(v) acc
    in
    let pts = backtrack target [] in
    (* Stitch in the escape stubs and merge collinear interior points. *)
    let pts = (if Point.equal src src' then [] else [ src ]) @ pts in
    let pts = pts @ (if Point.equal dst dst' then [] else [ dst ]) in
    let rec simplify = function
      | a :: b :: rest when Point.equal a b -> simplify (b :: rest)
      | a :: b :: c :: rest ->
        if (a.Point.x = b.Point.x && b.Point.x = c.Point.x)
           || (a.Point.y = b.Point.y && b.Point.y = c.Point.y)
        then simplify (a :: c :: rest)
        else a :: simplify (b :: c :: rest)
      | l -> l
    in
    Some (simplify pts)
  end
