type t = { a : Point.t; b : Point.t }

let make (a : Point.t) (b : Point.t) =
  if not (Point.is_aligned a b) then
    invalid_arg
      (Printf.sprintf "Segment.make: %s and %s are not axis-aligned"
         (Point.to_string a) (Point.to_string b));
  { a; b }

let length s = Point.dist s.a s.b
let is_point s = Point.equal s.a s.b
let is_horizontal s = s.a.y = s.b.y && not (is_point s)
let is_vertical s = s.a.x = s.b.x && not (is_point s)

let contains s (p : Point.t) =
  if s.a.y = s.b.y then
    p.y = s.a.y && min s.a.x s.b.x <= p.x && p.x <= max s.a.x s.b.x
  else p.x = s.a.x && min s.a.y s.b.y <= p.y && p.y <= max s.a.y s.b.y

(* Clip a 1-d closed interval [lo,hi] against an open interval (l,h) and
   return the overlap length. *)
let clip_open lo hi l h =
  let lo' = max lo l and hi' = min hi h in
  max 0 (hi' - lo')

let overlap_with_rect s (r : Rect.t) =
  if is_point s then 0
  else if s.a.y = s.b.y then begin
    (* Horizontal: positive overlap needs y strictly inside. *)
    if r.ly < s.a.y && s.a.y < r.hy then
      clip_open (min s.a.x s.b.x) (max s.a.x s.b.x) r.lx r.hx
    else 0
  end
  else if r.lx < s.a.x && s.a.x < r.hx then
    clip_open (min s.a.y s.b.y) (max s.a.y s.b.y) r.ly r.hy
  else 0

let crosses_rect s r = overlap_with_rect s r > 0
let pp ppf s = Format.fprintf ppf "%a--%a" Point.pp s.a Point.pp s.b

module L = struct
  type config = XY | YX

  let bend config (p : Point.t) (q : Point.t) =
    match config with
    | XY -> Point.make q.x p.y
    | YX -> Point.make p.x q.y

  let segments config p q =
    let c = bend config p q in
    let seg a b = if Point.equal a b then [] else [ make a b ] in
    seg p c @ seg c q

  let overlap config p q rects =
    List.fold_left
      (fun acc s ->
        acc + List.fold_left (fun acc r -> acc + overlap_with_rect s r) 0 rects)
      0 (segments config p q)

  let best p q rects =
    let oxy = overlap XY p q rects and oyx = overlap YX p q rects in
    if oxy <= oyx then (XY, oxy) else (YX, oyx)
end
