type t = { ulo : int; uhi : int; vlo : int; vhi : int }

let uv_of_point (p : Point.t) = (p.x + p.y, p.x - p.y)

(* Snap a (u, v) pair to valid parity (u ≡ v mod 2), preferring to stay
   within [box] when adjusting. *)
let point_of_uv_snapped box (u, v) =
  let u =
    if (u - v) land 1 = 0 then u
    else if u + 1 <= box.uhi then u + 1
    else u - 1
  in
  Point.make ((u + v) asr 1) ((u - v) asr 1)

let of_point p =
  let u, v = uv_of_point p in
  { ulo = u; uhi = u; vlo = v; vhi = v }

let of_arc a b =
  let ua, va = uv_of_point a and ub, vb = uv_of_point b in
  if ua <> ub && va <> vb then
    invalid_arg
      (Printf.sprintf "Marc.of_arc: %s-%s is not a Manhattan arc"
         (Point.to_string a) (Point.to_string b));
  { ulo = min ua ub; uhi = max ua ub; vlo = min va vb; vhi = max va vb }

let of_uv ~ulo ~uhi ~vlo ~vhi =
  if uhi < ulo || vhi < vlo then invalid_arg "Marc.of_uv: inverted bounds";
  { ulo; uhi; vlo; vhi }

let expand t r =
  if r < 0 then invalid_arg "Marc.expand: negative radius";
  { ulo = t.ulo - r; uhi = t.uhi + r; vlo = t.vlo - r; vhi = t.vhi + r }

let intersect a b =
  let ulo = max a.ulo b.ulo and uhi = min a.uhi b.uhi in
  let vlo = max a.vlo b.vlo and vhi = min a.vhi b.vhi in
  if uhi < ulo || vhi < vlo then None else Some { ulo; uhi; vlo; vhi }

let gap lo hi lo' hi' = max 0 (max (lo - hi') (lo' - hi))
let dist a b = max (gap a.ulo a.uhi b.ulo b.uhi) (gap a.vlo a.vhi b.vlo b.vhi)

let dist_to_point t p =
  let u, v = uv_of_point p in
  max (gap t.ulo t.uhi u u) (gap t.vlo t.vhi v v)

let contains t p = dist_to_point t p = 0

let closest_to t p =
  let u, v = uv_of_point p in
  let cu = min (max u t.ulo) t.uhi and cv = min (max v t.vlo) t.vhi in
  point_of_uv_snapped t (cu, cv)

let center t =
  point_of_uv_snapped t ((t.ulo + t.uhi) asr 1, (t.vlo + t.vhi) asr 1)

let is_arc t = t.ulo = t.uhi || t.vlo = t.vhi

let endpoints t =
  ( point_of_uv_snapped t (t.ulo, t.vlo),
    point_of_uv_snapped t (t.uhi, t.vhi) )

let pp ppf t =
  Format.fprintf ppf "u[%d,%d]v[%d,%d]" t.ulo t.uhi t.vlo t.vhi
