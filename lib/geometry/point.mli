(** Integer points on the manufacturing grid (coordinates in nanometres). *)

type t = { x : int; y : int }

val make : int -> int -> t
val origin : t

(** Manhattan (L1) distance. *)
val dist : t -> t -> int

(** Euclidean distance squared, as float (for tie-breaking only). *)
val dist2_euclid : t -> t -> float

val equal : t -> t -> bool
val compare : t -> t -> int

(** Component-wise midpoint, rounded towards the first argument. *)
val midpoint : t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t

(** [is_aligned a b] holds when the two points share an x or y coordinate,
    i.e. the straight connection is a single axis-parallel segment. *)
val is_aligned : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
