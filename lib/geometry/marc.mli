(** Manhattan arcs and tilted rectangle regions (TRRs).

    DME merging segments are segments of slope ±1 ("Manhattan arcs"); the
    locus of points within Manhattan distance [r] of an arc is a tilted
    rectangle. Under the rotation [u = x + y], [v = x - y] Manhattan
    distance becomes Chebyshev (L∞) distance and every tilted rectangle
    becomes an axis-parallel rectangle, so all TRR operations reduce to
    interval arithmetic. A region is stored as its (u, v) interval box.

    Valid layout points satisfy [u ≡ v (mod 2)]; conversions back to layout
    coordinates snap by at most 1 nm when a degenerate region falls on an
    invalid parity. *)

type t = private { ulo : int; uhi : int; vlo : int; vhi : int }

val of_point : Point.t -> t

(** Arc through two points of slope ±1 (or a degenerate point).
    @raise Invalid_argument when the points do not lie on a common
    Manhattan arc. *)
val of_arc : Point.t -> Point.t -> t

(** Raw constructor for tests. @raise Invalid_argument on inverted bounds. *)
val of_uv : ulo:int -> uhi:int -> vlo:int -> vhi:int -> t

(** Minkowski expansion by Manhattan radius [r >= 0]. *)
val expand : t -> int -> t

val intersect : t -> t -> t option

(** Minimum Manhattan distance between the two regions (0 if they meet). *)
val dist : t -> t -> int

val dist_to_point : t -> Point.t -> int
val contains : t -> Point.t -> bool

(** A point of the region closest (in Manhattan distance) to the argument,
    snapped to valid parity (the snap may leave the region by at most
    1 nm). *)
val closest_to : t -> Point.t -> Point.t

(** Canonical representative point (centre, parity-snapped). *)
val center : t -> Point.t

(** Is the region a single Manhattan arc (degenerate in u or v)? *)
val is_arc : t -> bool

(** Endpoints of a Manhattan arc region in layout coordinates; for a full
    tilted rectangle, the endpoints of one diagonal. *)
val endpoints : t -> Point.t * Point.t

val pp : Format.formatter -> t -> unit
