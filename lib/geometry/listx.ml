let last ~what = function
  | [] -> invalid_arg (what ^ ": empty list")
  | x :: xs -> List.fold_left (fun _ y -> y) x xs
