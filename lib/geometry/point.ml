type t = { x : int; y : int }

let make x y = { x; y }
let origin = { x = 0; y = 0 }
let dist a b = abs (a.x - b.x) + abs (a.y - b.y)

let dist2_euclid a b =
  let dx = float_of_int (a.x - b.x) and dy = float_of_int (a.y - b.y) in
  (dx *. dx) +. (dy *. dy)

let equal a b = a.x = b.x && a.y = b.y
let compare a b = if a.x <> b.x then Int.compare a.x b.x else Int.compare a.y b.y

let midpoint a b =
  (* Round towards [a] so that midpoint a b and midpoint b a are both valid
     grid points even for odd spans. *)
  let half lo hi = lo + ((hi - lo) / 2) in
  { x = half a.x b.x; y = half a.y b.y }

let add a b = { x = a.x + b.x; y = a.y + b.y }
let sub a b = { x = a.x - b.x; y = a.y - b.y }
let is_aligned a b = a.x = b.x || a.y = b.y
let pp ppf p = Format.fprintf ppf "(%d,%d)" p.x p.y
let to_string p = Format.asprintf "%a" pp p
