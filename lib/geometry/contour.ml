type t = {
  rects : Rect.t array;
  pts : Point.t array;   (* CCW outline, edge i = pts.(i) -> pts.(i+1 mod n) *)
  cum : int array;       (* cum.(i) = arc length from pts.(0) to pts.(i) *)
  perimeter : int;
}

let sorted_uniq l =
  List.sort_uniq Int.compare l

(* Boundary edges of the covered cells, directed so that the interior is on
   the walker's left: outer loops come out counter-clockwise. *)
let boundary_edges rects =
  let xs = sorted_uniq (List.concat_map (fun (r : Rect.t) -> [ r.lx; r.hx ]) rects) in
  let ys = sorted_uniq (List.concat_map (fun (r : Rect.t) -> [ r.ly; r.hy ]) rects) in
  let xs = Array.of_list xs and ys = Array.of_list ys in
  let nx = Array.length xs - 1 and ny = Array.length ys - 1 in
  let covered i j =
    i >= 0 && i < nx && j >= 0 && j < ny
    && List.exists
         (fun (r : Rect.t) ->
           r.lx <= xs.(i) && xs.(i + 1) <= r.hx
           && r.ly <= ys.(j) && ys.(j + 1) <= r.hy)
         rects
  in
  let edges = ref [] in
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      if covered i j then begin
        let p a b = Point.make xs.(a) ys.(b) in
        if not (covered i (j - 1)) then edges := (p i j, p (i + 1) j) :: !edges;
        if not (covered i (j + 1)) then edges := (p (i + 1) (j + 1), p i (j + 1)) :: !edges;
        if not (covered (i - 1) j) then edges := (p i (j + 1), p i j) :: !edges;
        if not (covered (i + 1) j) then edges := (p (i + 1) j, p (i + 1) (j + 1)) :: !edges
      end
    done
  done;
  !edges

let dir (a : Point.t) (b : Point.t) =
  (compare b.x a.x, compare b.y a.y)

(* Left-turn preference when several boundary edges leave a vertex (pinch
   points): ranks candidate directions by the turn relative to the incoming
   direction, sharpest left first. *)
let turn_rank (dx, dy) (dx', dy') =
  (* left of (dx,dy) is (-dy,dx) *)
  if (dx', dy') = (-dy, dx) then 0
  else if (dx', dy') = (dx, dy) then 1
  else if (dx', dy') = (dy, -dx) then 2
  else 3

let extract_loops edges =
  let out = Hashtbl.create 64 in
  List.iter
    (fun ((a, _) as e) ->
      let cur = try Hashtbl.find out a with Not_found -> [] in
      Hashtbl.replace out a (e :: cur))
    edges;
  let take_from a incoming =
    match Hashtbl.find_opt out a with
    | None | Some [] -> None
    | Some [ e ] -> Hashtbl.remove out a; Some e
    | Some es ->
      let best =
        List.sort
          (fun (_, b1) (_, b2) ->
            Int.compare (turn_rank incoming (dir a b1)) (turn_rank incoming (dir a b2)))
          es
        |> List.hd
      in
      Hashtbl.replace out a (List.filter (fun e -> e != best) es);
      Some best
  in
  let loops = ref [] in
  let rec drain () =
    (* Pick any remaining edge as a loop seed. *)
    let seed =
      Hashtbl.fold (fun _ es acc -> match acc, es with Some _, _ -> acc | None, e :: _ -> Some e | None, [] -> None)
        out None
    in
    match seed with
    | None -> ()
    | Some (a0, b0) ->
      ignore (take_from a0 (dir a0 b0));
      let rec walk acc prev cur =
        if Point.equal cur a0 then List.rev acc
        else
          match take_from cur (dir prev cur) with
          | None -> List.rev acc (* open chain: malformed input; stop *)
          | Some (_, nxt) -> walk (cur :: acc) cur nxt
      in
      let loop = a0 :: walk [] a0 b0 in
      loops := loop :: !loops;
      drain ()
  in
  drain ();
  !loops

let merge_collinear pts =
  let n = List.length pts in
  if n < 3 then pts
  else
    let arr = Array.of_list pts in
    let keep = ref [] in
    for i = n - 1 downto 0 do
      let p = arr.((i + n - 1) mod n) and q = arr.(i) and r = arr.((i + 1) mod n) in
      if not (dir p q = dir q r) then keep := q :: !keep
    done;
    !keep

let signed_area2 pts =
  let arr = Array.of_list pts in
  let n = Array.length arr in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let (p : Point.t) = arr.(i) and (q : Point.t) = arr.((i + 1) mod n) in
    acc := !acc + ((p.x * q.y) - (q.x * p.y))
  done;
  !acc

let of_rects rects_list =
  if rects_list = [] then invalid_arg "Contour.of_rects: empty list";
  (match Rect.compound_groups rects_list with
  | [ _ ] -> ()
  | _ -> invalid_arg "Contour.of_rects: rectangles do not form one compound");
  let loops = extract_loops (boundary_edges rects_list) in
  let outer =
    List.fold_left
      (fun best l ->
        match best with
        | None -> Some l
        | Some b -> if abs (signed_area2 l) > abs (signed_area2 b) then Some l else best)
      None loops
  in
  let outer = match outer with Some l -> merge_collinear l | None -> invalid_arg "Contour.of_rects: no boundary" in
  let pts = Array.of_list outer in
  let n = Array.length pts in
  let cum = Array.make n 0 in
  for i = 1 to n - 1 do
    cum.(i) <- cum.(i - 1) + Point.dist pts.(i - 1) pts.(i)
  done;
  let perimeter = cum.(n - 1) + Point.dist pts.(n - 1) pts.(0) in
  { rects = Array.of_list rects_list; pts; cum; perimeter }

let vertices t = Array.to_list t.pts
let perimeter t = t.perimeter

let contains t p = Array.exists (fun r -> Rect.contains r p) t.rects

(* Closest point of the axis-parallel segment [a,b] to [p]. *)
let closest_on_edge (a : Point.t) (b : Point.t) (p : Point.t) =
  let clamp v lo hi = min (max v lo) hi in
  if a.y = b.y then Point.make (clamp p.x (min a.x b.x) (max a.x b.x)) a.y
  else Point.make a.x (clamp p.y (min a.y b.y) (max a.y b.y))

let project t p =
  let n = Array.length t.pts in
  let best = ref (max_int, 0, t.pts.(0)) in
  for i = 0 to n - 1 do
    let a = t.pts.(i) and b = t.pts.((i + 1) mod n) in
    let c = closest_on_edge a b p in
    let d = Point.dist c p in
    let bd, _, _ = !best in
    if d < bd then best := (d, t.cum.(i) + Point.dist a c, c)
  done;
  let _, s, c = !best in
  (s, c)

let norm t s =
  let s = s mod t.perimeter in
  if s < 0 then s + t.perimeter else s

(* Index of the edge containing parameter [s] (normalised). *)
let edge_at t s =
  let n = Array.length t.pts in
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if t.cum.(mid) <= s then bs mid hi else bs lo (mid - 1)
  in
  bs 0 (n - 1)

let point_at t s =
  let s = norm t s in
  let i = edge_at t s in
  let n = Array.length t.pts in
  let a = t.pts.(i) and b = t.pts.((i + 1) mod n) in
  let off = s - t.cum.(i) in
  if a.y = b.y then Point.make (a.x + (compare b.x a.x * off)) a.y
  else Point.make a.x (a.y + (compare b.y a.y * off))

let dist_forward t s1 s2 = norm t (norm t s2 - norm t s1)

let dist_along t s1 s2 =
  let d = dist_forward t s1 s2 in
  min d (t.perimeter - d)

let rec path_between t direction s1 s2 =
  match direction with
  | `Backward -> List.rev (path_between_fwd t s2 s1)
  | `Forward -> path_between_fwd t s1 s2

and path_between_fwd t s1 s2 =
  let s1 = norm t s1 and s2 = norm t s2 in
  let n = Array.length t.pts in
  let start = point_at t s1 and stop = point_at t s2 in
  let acc = ref [ start ] in
  let i = ref (edge_at t s1) in
  let remaining = dist_forward t s1 s2 in
  let travelled = ref 0 in
  (* Walk vertex by vertex until the forward distance is consumed. *)
  let continue = ref (remaining > 0) in
  while !continue do
    let j = (!i + 1) mod n in
    let vertex_param = if j = 0 then t.perimeter else t.cum.(j) in
    let step = vertex_param - (if !travelled = 0 then s1 else t.cum.(!i)) in
    travelled := !travelled + step;
    if !travelled >= remaining then continue := false
    else begin
      acc := t.pts.(j) :: !acc;
      i := j
    end
  done;
  let path = List.rev (stop :: !acc) in
  (* Drop duplicate consecutive points (when s1/s2 sit on vertices). *)
  let rec dedup = function
    | a :: b :: rest when Point.equal a b -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup path

let shortest_path t s1 s2 =
  if dist_forward t s1 s2 <= dist_forward t s2 s1 then
    path_between t `Forward s1 s2
  else path_between t `Backward s1 s2
