(** Uniform spatial hash over integer points, for nearest-neighbour queries
    during Edahiro-style topology generation.

    Elements are identified by integer ids; an id may be present at most
    once. *)

type t

(** [create ~cell] with the bucket edge length in nm ([cell > 0]). Pick the
    expected nearest-neighbour spacing for best performance; correctness
    does not depend on the choice. *)
val create : cell:int -> t

val add : t -> int -> Point.t -> unit

(** Remove an id; silently ignores absent ids. *)
val remove : t -> int -> unit

val mem : t -> int -> bool
val size : t -> int
val position : t -> int -> Point.t option

(** [nearest t ?exclude p] is the member closest to [p] in Manhattan
    distance among those for which [exclude] is false (default: nothing
    excluded). Ties break towards the smaller id. *)
val nearest : t -> ?exclude:(int -> bool) -> Point.t -> (int * Point.t) option

val iter : t -> (int -> Point.t -> unit) -> unit
