(* Seeded fault injection for the serve stack.

   A chaos spec is a comma-separated list of [fault=p] or [fault=p@n]
   assignments: [p] is the per-opportunity injection probability, [n] an
   optional budget (at most [n] injections over the daemon's life —
   [drop_pre=1@1] deterministically kills exactly the first response).
   Decisions come from a splitmix64 stream over (seed, decision index),
   so a fixed seed reproduces the same fault mix statistically — and
   exactly, under a serial request schedule. Every injection increments
   a per-class counter surfaced through the daemon's [stats] op, so a
   chaos run can assert both that faults actually fired and that the
   containment contract held. *)

module Json = Suite.Report.Json

exception Injected of string

(* ------------------------------------------------------------------ *)
(* One fault class: probability, optional budget, counter              *)
(* ------------------------------------------------------------------ *)

type knob = {
  p : float;
  budget : int;  (* -1 = unlimited *)
  fired : int Atomic.t;
}

let knob_off = { p = 0.; budget = -1; fired = Atomic.make 0 }
let knob p budget = { p; budget; fired = Atomic.make 0 }

type t = {
  seed : int;
  stall_s : float;    (* duration of one injected stall *)
  short_bytes : int;  (* cap of one injected short write *)
  frame_garbage : knob;
  frame_truncate : knob;
  frame_oversize : knob;
  stall : knob;
  drop_pre : knob;
  drop_post : knob;
  eintr : knob;
  short_write : knob;
  job_crash : knob;
  persist : knob;
  (* Decision index: every probabilistic draw consumes one slot of the
     splitmix64 stream. *)
  draws : int Atomic.t;
}

let none =
  {
    seed = 0;
    stall_s = 0.05;
    short_bytes = 1;
    frame_garbage = knob_off;
    frame_truncate = knob_off;
    frame_oversize = knob_off;
    stall = knob_off;
    drop_pre = knob_off;
    drop_post = knob_off;
    eintr = knob_off;
    short_write = knob_off;
    job_crash = knob_off;
    persist = knob_off;
    draws = Atomic.make 0;
  }

let is_active t =
  List.exists
    (fun k -> k.p > 0.)
    [
      t.frame_garbage; t.frame_truncate; t.frame_oversize; t.stall;
      t.drop_pre; t.drop_post; t.eintr; t.short_write; t.job_crash;
      t.persist;
    ]

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

let parse spec =
  let t = ref { none with draws = Atomic.make 0 } in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let parse_knob v =
    (* "p" or "p@n" *)
    match String.index_opt v '@' with
    | None -> (
      match float_of_string_opt v with
      | Some p when p >= 0. && p <= 1. -> Ok (knob p (-1))
      | _ -> Error ())
    | Some i -> (
      let ps = String.sub v 0 i in
      let ns = String.sub v (i + 1) (String.length v - i - 1) in
      match (float_of_string_opt ps, int_of_string_opt ns) with
      | Some p, Some n when p >= 0. && p <= 1. && n >= 0 -> Ok (knob p n)
      | _ -> Error ())
  in
  let step entry =
    match String.index_opt entry '=' with
    | None -> err "chaos: %S is not a key=value assignment" entry
    | Some i -> (
      let key = String.sub entry 0 i in
      let v = String.sub entry (i + 1) (String.length entry - i - 1) in
      let set f =
        match parse_knob v with
        | Ok k ->
          t := f !t k;
          Ok ()
        | Error () ->
          err "chaos: %s needs a probability in [0,1], optionally @budget \
               (got %S)" key v
      in
      match key with
      | "seed" -> (
        match int_of_string_opt v with
        | Some s ->
          t := { !t with seed = s };
          Ok ()
        | None -> err "chaos: seed needs an integer (got %S)" v)
      | "stall_s" -> (
        match float_of_string_opt v with
        | Some s when s >= 0. ->
          t := { !t with stall_s = s };
          Ok ()
        | _ -> err "chaos: stall_s needs a non-negative number (got %S)" v)
      | "short_bytes" -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
          t := { !t with short_bytes = n };
          Ok ()
        | _ -> err "chaos: short_bytes needs a positive integer (got %S)" v)
      | "frame_garbage" -> set (fun t k -> { t with frame_garbage = k })
      | "frame_truncate" -> set (fun t k -> { t with frame_truncate = k })
      | "frame_oversize" -> set (fun t k -> { t with frame_oversize = k })
      | "stall" -> set (fun t k -> { t with stall = k })
      | "drop_pre" -> set (fun t k -> { t with drop_pre = k })
      | "drop_post" -> set (fun t k -> { t with drop_post = k })
      | "eintr" -> set (fun t k -> { t with eintr = k })
      | "short_write" -> set (fun t k -> { t with short_write = k })
      | "job_crash" -> set (fun t k -> { t with job_crash = k })
      | "persist" -> set (fun t k -> { t with persist = k })
      | _ -> err "chaos: unknown fault %S" key)
  in
  let rec go = function
    | [] -> Ok !t
    | e :: rest -> ( match step e with Ok () -> go rest | Error _ as r -> r)
  in
  go entries

(* ------------------------------------------------------------------ *)
(* Seeded decisions                                                    *)
(* ------------------------------------------------------------------ *)

(* splitmix64: the standard 64-bit finalizer — uniform enough for fault
   scheduling and dependency-free. *)
let splitmix64 x =
  let open Int64 in
  let x = add x 0x9e3779b97f4a7c15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let uniform t =
  let i = Atomic.fetch_and_add t.draws 1 in
  let bits =
    splitmix64 (Int64.logxor (Int64.of_int t.seed) (Int64.of_int (i * 2 + 1)))
  in
  (* 53 mantissa bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992.

(* One injection opportunity for [k]: flip the seeded coin, respect the
   budget, count the hit. *)
let fires t k =
  k.p > 0.
  && uniform t < k.p
  &&
  if k.budget < 0 then begin
    Atomic.incr k.fired;
    true
  end
  else begin
    let n = Atomic.fetch_and_add k.fired 1 in
    if n < k.budget then true
    else begin
      Atomic.decr k.fired;
      false
    end
  end

(* ------------------------------------------------------------------ *)
(* Boundary hooks                                                      *)
(* ------------------------------------------------------------------ *)

(* Frame-I/O faults for the daemon's reads and writes. One decision per
   syscall; EINTR wins over a stall over a short write so the storms
   compose deterministically from the same stream. *)
let io_faults t =
  if t.eintr.p <= 0. && t.stall.p <= 0. && t.short_write.p <= 0. then None
  else
    Some
      {
        Protocol.on_io =
          (fun dir ->
            if fires t t.eintr then Some Protocol.Fault_eintr
            else if fires t t.stall then Some (Protocol.Fault_stall t.stall_s)
            else
              match dir with
              | `Write when fires t t.short_write ->
                Some (Protocol.Fault_short t.short_bytes)
              | `Write | `Read -> None);
      }

(* What to do with one outgoing response frame. *)
type write_plan =
  | Deliver
  | Drop_before   (* close without writing: the peer sees a clean EOF *)
  | Drop_after    (* write, then close: the exchange lands, the conn dies *)
  | Garbage       (* well-framed garbage payload: unparseable JSON *)
  | Truncate      (* header + half the payload, then close: a torn frame *)
  | Oversize      (* header claiming > max_frame: the peer must reject it *)

let plan_response t =
  if fires t t.drop_pre then Drop_before
  else if fires t t.frame_garbage then Garbage
  else if fires t t.frame_truncate then Truncate
  else if fires t t.frame_oversize then Oversize
  else if fires t t.drop_post then Drop_after
  else Deliver

(* Should this dispatched job die on a worker domain? *)
let job_crashes t = fires t t.job_crash

(* Install the persist-layer hook: every atomic write is an opportunity,
   and consecutive injections cycle through the three failure points so
   one budget exercises them all. *)
let install_persist t =
  if t.persist.p > 0. then
    Core.Persist.set_fault_injector (fun ~path:_ ->
        if fires t t.persist then
          Some
            (match (Atomic.get t.persist.fired - 1) mod 3 with
            | 0 -> Core.Persist.Fail_fsync
            | 1 -> Core.Persist.Fail_rename
            | _ -> Core.Persist.Torn_tmp)
        else None)

let uninstall_persist () = Core.Persist.clear_fault_injector ()

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let injected t =
  [
    ("frame_garbage", Atomic.get t.frame_garbage.fired);
    ("frame_truncate", Atomic.get t.frame_truncate.fired);
    ("frame_oversize", Atomic.get t.frame_oversize.fired);
    ("stall", Atomic.get t.stall.fired);
    ("drop_pre", Atomic.get t.drop_pre.fired);
    ("drop_post", Atomic.get t.drop_post.fired);
    ("eintr", Atomic.get t.eintr.fired);
    ("short_write", Atomic.get t.short_write.fired);
    ("job_crash", Atomic.get t.job_crash.fired);
    ("persist", Atomic.get t.persist.fired);
  ]

let total_injected t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (injected t)

let stats_json t =
  Json.Obj
    (("seed", Json.Num (float_of_int t.seed))
    :: List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) (injected t))
