(** The [contango serve] daemon: a stream-socket accept loop fronting a
    shared {!Session} and a dedicated {!Analysis.Domain_pool}.

    Connections are handled by systhreads (blocking I/O costs no domain);
    Run/Eval/Sleep requests execute on the pool's worker domains, so
    concurrent requests genuinely run in parallel and share the session's
    cross-request caches. Admission is bounded: at most [max_queue]
    requests are queued-or-running at once, and requests over the bound
    are answered {!Protocol.Busy} with a retry hint instead of being
    enqueued. [Stats]/[Ping] are answered inline and are never subject to
    backpressure, so a saturated daemon stays observable.

    Connection lifecycle hardening: reads are bounded by [conn_timeout_s]
    (a silent peer cannot park a thread forever), the connection
    population is bounded by [max_conns] with oldest-idle eviction,
    SIGPIPE is ignored for the process (a vanished peer costs a counted
    per-connection loss, never the daemon), and graceful shutdown closes
    idle connections instead of waiting on them. Under an active
    {!Chaos} spec the daemon injects faults at every boundary and counts
    them in [stats]. *)

type t

(** [create ?config ?max_queue ?workers ?conn_timeout_s ?max_conns
    ?chaos ?checkpoints ?idem_cap sockaddr] binds and listens but does
    not accept yet. [config] (default {!Core.Config.default}) seeds
    every request's flow configuration; [max_queue] (default 16) bounds
    queued-plus-running requests; [workers] sizes the compute pool
    (default: one per spare core — 0 runs compute inline on connection
    threads, the single-core degradation). [conn_timeout_s] bounds every
    framed read (idle or mid-frame); [max_conns] (default 0 = unbounded)
    caps concurrent connections, evicting the oldest idle connection —
    or rejecting with [Busy] when all are mid-request. [chaos] overrides
    the spec in [config.chaos] (parsed with {!Chaos.parse}).
    [checkpoints] / [idem_cap] pass through to {!Session.create}.
    Unix-domain socket paths are unlinked before bind and after
    {!serve} returns.
    @raise Unix.Unix_error when binding fails (address in use, bad path).
    @raise Invalid_argument when [config.chaos] does not parse. *)
val create :
  ?config:Core.Config.t -> ?max_queue:int -> ?workers:int ->
  ?conn_timeout_s:float -> ?max_conns:int -> ?chaos:Chaos.t ->
  ?checkpoints:string -> ?idem_cap:int ->
  Unix.sockaddr -> t

(** The address actually bound — a TCP request for port 0 resolves to
    the ephemeral port here. *)
val sockaddr : t -> Unix.sockaddr

val session : t -> Session.t

(** The active chaos spec ({!Chaos.none} when chaos is off). *)
val chaos : t -> Chaos.t

(** Accept and serve until a [Shutdown] request (or {!shutdown}) stops
    the loop, then drain: idle connections are closed (a parked client
    cannot wedge shutdown), in-flight requests finish (each bounded by
    its own deadline), the pool joins, sockets close. Blocks the calling
    thread for the daemon's whole life. *)
val serve : t -> unit

(** Ask a running {!serve} to stop accepting and drain. Safe from any
    thread or signal context; idempotent. *)
val shutdown : t -> unit
