(** The [contango serve] daemon: a stream-socket accept loop fronting a
    shared {!Session} and a dedicated {!Analysis.Domain_pool}.

    Connections are handled by systhreads (blocking I/O costs no domain);
    Run/Eval/Sleep requests execute on the pool's worker domains, so
    concurrent requests genuinely run in parallel and share the session's
    cross-request caches. Admission is bounded: at most [max_queue]
    requests are queued-or-running at once, and requests over the bound
    are answered {!Protocol.Busy} with a retry hint instead of being
    enqueued. [Stats]/[Ping] are answered inline and are never subject to
    backpressure, so a saturated daemon stays observable. *)

type t

(** [create ?config ?max_queue ?workers sockaddr] binds and listens but
    does not accept yet. [config] (default {!Core.Config.default}) seeds
    every request's flow configuration; [max_queue] (default 16) bounds
    queued-plus-running requests; [workers] sizes the compute pool
    (default: one per spare core — 0 runs compute inline on connection
    threads, the single-core degradation). Unix-domain socket paths are
    unlinked before bind and after {!serve} returns.
    @raise Unix.Unix_error when binding fails (address in use, bad path). *)
val create :
  ?config:Core.Config.t -> ?max_queue:int -> ?workers:int ->
  Unix.sockaddr -> t

(** The address actually bound — a TCP request for port 0 resolves to
    the ephemeral port here. *)
val sockaddr : t -> Unix.sockaddr

val session : t -> Session.t

(** Accept and serve until a [Shutdown] request (or {!shutdown}) stops
    the loop, then drain: in-flight requests finish (each bounded by its
    own deadline), the pool joins, sockets close. Blocks the calling
    thread for the daemon's whole life. *)
val serve : t -> unit

(** Ask a running {!serve} to stop accepting and drain. Safe from any
    thread or signal context; idempotent. *)
val shutdown : t -> unit
