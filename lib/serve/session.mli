(** Shared evaluation state of the daemon, plus the execution of one
    request against it.

    One daemon serves one flow configuration, so one
    {!Analysis.Evaluator.Store} {e is} the config family: every request
    evaluates under numerically identical kernel settings — the
    correctness condition for sharing solved stages and factorisations
    across requests. ({!Core.Flow} itself detaches the store on degraded
    retries, whose relaxed numerics would poison the shared entries.)

    All counters are atomic; {!execute} may run on any worker domain. *)

type t

(** [create ?config ?checkpoints ?idem_cap ()] — fresh shared state
    around an empty store. [config] (default {!Core.Config.default})
    seeds every request's flow configuration; its [deadline] and [store]
    fields are overwritten per request. [checkpoints] makes every [Run]
    write verified per-stage checkpoints under
    [<checkpoints>/<sanitised spec>/] (an unwritable checkpoint is a
    recorded incident, never a failed request). [idem_cap] (default 256)
    bounds the idempotency cache. *)
val create :
  ?config:Core.Config.t -> ?checkpoints:string -> ?idem_cap:int -> unit -> t

(** The shared cross-request store (exposed for tests and telemetry). *)
val store : t -> Analysis.Evaluator.Store.t

(** Record a backpressure rejection (the server answers those without
    entering {!execute}). *)
val note_busy : t -> unit

(** Seconds since [create], monotonic. *)
val uptime : t -> float

(** Requests answered from the idempotency cache (never recomputed). *)
val idempotent_hits : t -> int

(** The ["stats"] response body: uptime, queue/pool shape, request
    outcome counters, idempotency and cumulative cache telemetry.
    [extra] fields (the server's connection/chaos counters) are appended
    verbatim. *)
val stats_body :
  t -> queue_depth:int -> max_queue:int -> workers:int -> pool_failed:int ->
  ?extra:(string * Suite.Report.Json.t) list -> unit -> Suite.Report.Json.t

(** Execute one queued request. [deadline] is on the {!Core.Monoclock}
    scale and is re-checked at entry (queue wait counts against the
    budget) and cooperatively during execution via
    {!Core.Config.deadline}. Never raises: failures come back as
    {!Protocol.Failed} ([deadline] / [bad_request] / [crashed]).

    A [Run]/[Eval] request carrying a [request_key] is first looked up
    in the bounded idempotency cache — before the deadline check, so a
    retry of an already-answered key succeeds even on a spent budget;
    its [Completed] response is remembered afterwards.
    [Stats]/[Ping]/[Shutdown] are answered inline by the server and
    rejected here. *)
val execute :
  t -> deadline:float option -> Protocol.request -> Protocol.response
