(* Shared evaluation state of the daemon plus the execution of one
   request against it. One daemon serves one flow configuration, so one
   {!Analysis.Evaluator.Store} is the config family — every request
   evaluates under numerically identical kernel settings, which is the
   correctness condition for sharing solved stages and factorisations
   (Flow itself drops the store on degraded retries, whose relaxed
   numerics would poison the shared entries). *)

module Ev = Analysis.Evaluator
module Json = Suite.Report.Json

(* Bounded LRU of completed responses keyed by the client's idempotency
   key. A retry of a key the daemon already answered is served from here
   — zero recomputation — which is what makes blind client retries after
   a lost connection safe. Only [Completed] responses are remembered:
   caching a transient failure would make every retry of that key fail
   forever. Mutex-protected (lookups come from connection systhreads and
   worker domains); eviction is an O(cap) scan for the stalest
   generation, fine at the default cap. *)
module Idem = struct
  type entry = { resp : Protocol.response; mutable gen : int }

  type cache = {
    lock : Mutex.t;
    tbl : (string, entry) Hashtbl.t;
    cap : int;
    mutable tick : int;
  }

  let create cap =
    {
      lock = Mutex.create ();
      tbl = Hashtbl.create 64;
      cap = max 1 cap;
      tick = 0;
    }

  let find c key =
    Mutex.lock c.lock;
    let r =
      match Hashtbl.find_opt c.tbl key with
      | Some e ->
        c.tick <- c.tick + 1;
        e.gen <- c.tick;
        Some e.resp
      | None -> None
    in
    Mutex.unlock c.lock;
    r

  let add c key resp =
    Mutex.lock c.lock;
    (* First writer wins: concurrent same-key requests may both compute,
       but retries see one stable answer. *)
    if not (Hashtbl.mem c.tbl key) then begin
      if Hashtbl.length c.tbl >= c.cap then begin
        let victim =
          Hashtbl.fold
            (fun k e acc ->
              match acc with
              | Some (_, g) when g <= e.gen -> acc
              | _ -> Some (k, e.gen))
            c.tbl None
        in
        match victim with
        | Some (k, _) -> Hashtbl.remove c.tbl k
        | None -> ()
      end;
      c.tick <- c.tick + 1;
      Hashtbl.add c.tbl key { resp; gen = c.tick }
    end;
    Mutex.unlock c.lock

  let length c =
    Mutex.lock c.lock;
    let n = Hashtbl.length c.tbl in
    Mutex.unlock c.lock;
    n
end

type t = {
  config : Core.Config.t;
  store : Ev.Store.t;
  checkpoints : string option;
  idem : Idem.cache;
  started : float;  (* Monoclock origin of uptime *)
  served : int Atomic.t;
  busy_rejected : int Atomic.t;
  deadline_expired : int Atomic.t;
  crashed : int Atomic.t;
  idempotent_hits : int Atomic.t;
  cum_local_hits : int Atomic.t;
  cum_local_misses : int Atomic.t;
  cum_store_hits : int Atomic.t;
  cum_store_misses : int Atomic.t;
}

let default_idem_cap = 256

let create ?(config = Core.Config.default) ?checkpoints
    ?(idem_cap = default_idem_cap) () =
  {
    config;
    store = Ev.Store.create ();
    checkpoints;
    idem = Idem.create idem_cap;
    started = Core.Monoclock.now ();
    served = Atomic.make 0;
    busy_rejected = Atomic.make 0;
    deadline_expired = Atomic.make 0;
    crashed = Atomic.make 0;
    idempotent_hits = Atomic.make 0;
    cum_local_hits = Atomic.make 0;
    cum_local_misses = Atomic.make 0;
    cum_store_hits = Atomic.make 0;
    cum_store_misses = Atomic.make 0;
  }

let store t = t.store
let note_busy t = Atomic.incr t.busy_rejected
let uptime t = Core.Monoclock.now () -. t.started
let idempotent_hits t = Atomic.get t.idempotent_hits

let stats_body t ~queue_depth ~max_queue ~workers ~pool_failed
    ?(extra = []) () =
  Json.Obj
    ([
      ("uptime_s", Json.Num (uptime t));
      ("queue_depth", Json.Num (float_of_int queue_depth));
      ("max_queue", Json.Num (float_of_int max_queue));
      ("workers", Json.Num (float_of_int workers));
      ("served", Json.Num (float_of_int (Atomic.get t.served)));
      ("busy_rejected", Json.Num (float_of_int (Atomic.get t.busy_rejected)));
      ("deadline_expired",
       Json.Num (float_of_int (Atomic.get t.deadline_expired)));
      ("crashed", Json.Num (float_of_int (Atomic.get t.crashed)));
      ("pool_failed_jobs", Json.Num (float_of_int pool_failed));
      ("idempotent_hits",
       Json.Num (float_of_int (Atomic.get t.idempotent_hits)));
      ("idempotent_entries", Json.Num (float_of_int (Idem.length t.idem)));
      ("cache",
       Json.Obj
         [
           ("local_hits",
            Json.Num (float_of_int (Atomic.get t.cum_local_hits)));
           ("local_misses",
            Json.Num (float_of_int (Atomic.get t.cum_local_misses)));
           ("store_hits",
            Json.Num (float_of_int (Atomic.get t.cum_store_hits)));
           ("store_misses",
            Json.Num (float_of_int (Atomic.get t.cum_store_misses)));
           ("store_results", Json.Num (float_of_int (Ev.Store.length t.store)));
           ("store_evictions",
            Json.Num (float_of_int (Ev.Store.evictions t.store)));
         ]);
    ]
    @ extra)

(* ------------------------------------------------------------------ *)
(* Request execution (runs on a worker domain)                         *)
(* ------------------------------------------------------------------ *)

let cache_json ~local_hits ~local_misses ~store_hits ~store_misses =
  Json.Obj
    [
      ("local_hits", Json.Num (float_of_int local_hits));
      ("local_misses", Json.Num (float_of_int local_misses));
      ("store_hits", Json.Num (float_of_int store_hits));
      ("store_misses", Json.Num (float_of_int store_misses));
    ]

let deadline_failed t =
  Atomic.incr t.deadline_expired;
  Protocol.Failed
    { code = "deadline"; detail = "request exceeded its time budget" }

let crash_failed t e bt =
  Atomic.incr t.crashed;
  let detail =
    let raw = Printexc.raw_backtrace_to_string bt in
    if raw = "" then Printexc.to_string e
    else Printf.sprintf "%s\n%s" (Printexc.to_string e) raw
  in
  Protocol.Failed { code = "crashed"; detail }

(* Per-spec checkpoint directory, when the daemon persists at all: the
   spec string sanitised to a path component. *)
let sanitize_spec spec =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    spec

let checkpoint_dir t spec =
  Option.map (fun d -> Filename.concat d (sanitize_spec spec)) t.checkpoints

let run_request t ~deadline spec =
  match Suite.Runner.load_bench spec with
  | exception Failure detail -> Protocol.Failed { code = "bad_request"; detail }
  | b -> (
    let handle = Ev.Store.handle t.store in
    let config =
      { t.config with Core.Config.deadline; store = Some handle }
    in
    let t0 = Core.Monoclock.now () in
    (* Per-request local cache counters: each trace entry carries the
       per-step delta, so the sum over the streamed entries is the
       request's session total. *)
    let local_hits = ref 0 and local_misses = ref 0 in
    let on_step (e : Core.Flow.trace_entry) =
      local_hits := !local_hits + e.Core.Flow.cache_hits;
      local_misses := !local_misses + e.Core.Flow.cache_misses
    in
    match
      Core.Flow.run_regional ~config ~on_step
        ?checkpoint_dir:(checkpoint_dir t spec)
        ~tech:b.Suite.Format_io.tech ~source:b.Suite.Format_io.source
        ~obstacles:b.Suite.Format_io.obstacles b.Suite.Format_io.sinks
    with
    | exception Core.Ivc.Deadline_exceeded -> deadline_failed t
    | exception e -> crash_failed t e (Printexc.get_raw_backtrace ())
    | rr ->
      let r = rr.Core.Flow.r_flow in
      let final = r.Core.Flow.final in
      let store_hits = Ev.Store.hits handle in
      let store_misses = Ev.Store.misses handle in
      Atomic.incr t.served;
      ignore (Atomic.fetch_and_add t.cum_local_hits !local_hits);
      ignore (Atomic.fetch_and_add t.cum_local_misses !local_misses);
      ignore (Atomic.fetch_and_add t.cum_store_hits store_hits);
      ignore (Atomic.fetch_and_add t.cum_store_misses store_misses);
      Protocol.Completed
        {
          op = "run";
          body =
            Json.Obj
              [
                ("spec", Json.Str spec);
                ("result",
                 Json.Obj
                   [
                     ("skew_ps", Json.Num final.Ev.skew);
                     ("clr_ps", Json.Num final.Ev.clr);
                     ("t_max_ps", Json.Num final.Ev.t_max);
                     ("buffers",
                      Json.Num
                        (float_of_int
                           final.Ev.stats.Ctree.Stats.buffer_count));
                     ("eval_runs",
                      Json.Num (float_of_int r.Core.Flow.eval_runs));
                     ("seconds", Json.Num (Core.Monoclock.now () -. t0));
                   ]);
                ("cache",
                 cache_json ~local_hits:!local_hits
                   ~local_misses:!local_misses ~store_hits ~store_misses);
              ];
        })

let eval_request t ~deadline:_ spec =
  match Suite.Runner.load_bench spec with
  | exception Failure detail -> Protocol.Failed { code = "bad_request"; detail }
  | b -> (
    match Suite.Baseline.run ~config:t.config b with
    | exception e -> crash_failed t e (Printexc.get_raw_backtrace ())
    | r ->
      Atomic.incr t.served;
      let eval = r.Suite.Baseline.eval in
      Protocol.Completed
        {
          op = "eval";
          body =
            Json.Obj
              [
                ("spec", Json.Str spec);
                ("result",
                 Json.Obj
                   [
                     ("skew_ps", Json.Num eval.Ev.skew);
                     ("clr_ps", Json.Num eval.Ev.clr);
                     ("t_max_ps", Json.Num eval.Ev.t_max);
                     ("seconds", Json.Num r.Suite.Baseline.seconds);
                   ]);
              ];
        })

let sleep_request t ~deadline seconds =
  let finish = Core.Monoclock.now () +. Float.max 0. seconds in
  (* Cooperative like the flow: sleep in slices so the budget is honoured
     within ~5 ms even mid-hold. *)
  let rec hold () =
    let now = Core.Monoclock.now () in
    match deadline with
    | Some d when now > d -> deadline_failed t
    | _ ->
      if now >= finish then begin
        Atomic.incr t.served;
        Protocol.Completed
          {
            op = "sleep";
            body = Json.Obj [ ("slept_s", Json.Num seconds) ];
          }
      end
      else begin
        Unix.sleepf (Float.min 0.005 (finish -. now));
        hold ()
      end
  in
  hold ()

(* Budget checked once more at execution start: a request can spend its
   whole budget waiting in the queue. *)
let execute_uncached t ~deadline request =
  match deadline with
  | Some d when Core.Monoclock.now () > d -> deadline_failed t
  | _ -> (
    match request with
    | Protocol.Run { spec; _ } -> run_request t ~deadline spec
    | Protocol.Eval { spec; _ } -> eval_request t ~deadline spec
    | Protocol.Sleep { seconds; _ } -> sleep_request t ~deadline seconds
    | Protocol.Stats | Protocol.Ping | Protocol.Shutdown ->
      (* Inline ops never reach the queue; see Server. *)
      Protocol.Failed
        { code = "bad_request"; detail = "op is answered inline, not queued" })

(* The idempotency cache is consulted before the deadline: a retry whose
   answer is already computed deserves it even on a spent budget —
   serving it costs nothing and recomputing is exactly what the key
   exists to prevent. Only [Completed] responses are remembered. *)
let execute t ~deadline request =
  match Protocol.request_key request with
  | None -> execute_uncached t ~deadline request
  | Some key -> (
    match Idem.find t.idem key with
    | Some resp ->
      Atomic.incr t.idempotent_hits;
      resp
    | None ->
      let resp = execute_uncached t ~deadline request in
      (match resp with
      | Protocol.Completed _ -> Idem.add t.idem key resp
      | Protocol.Busy _ | Protocol.Failed _ -> ());
      resp)
