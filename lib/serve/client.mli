(** Scripted client for the serve protocol — the [contango client]
    subcommand, the serve tests and the CONTANGO_BENCH_SERVE harness all
    go through these calls. *)

(** Connect a stream socket to the daemon.
    @raise Unix.Unix_error when the daemon is not listening. *)
val connect : Unix.sockaddr -> Unix.file_descr

val close : Unix.file_descr -> unit

(** One request/response exchange on an open connection. [Error] carries
    a decode problem or an early close; framing problems raise
    {!Protocol.Framing_error}. *)
val request :
  Unix.file_descr -> Protocol.request -> (Protocol.response, string) result

(** [with_connection addr f] — connect, run [f], always close. *)
val with_connection : Unix.sockaddr -> (Unix.file_descr -> 'a) -> 'a

(** Connect, send one request, close. *)
val oneshot :
  Unix.sockaddr -> Protocol.request -> (Protocol.response, string) result

(** Poll [Ping] until the daemon answers; [false] once [timeout_s]
    (default 10) elapses first. For scripts that just forked the
    server. *)
val wait_ready : ?timeout_s:float -> Unix.sockaddr -> bool
