(** Scripted client for the serve protocol — the [contango client]
    subcommand, the serve tests and the CONTANGO_BENCH_SERVE harness all
    go through these calls. *)

(** Connect a stream socket to the daemon.
    @raise Unix.Unix_error when the daemon is not listening. *)
val connect : Unix.sockaddr -> Unix.file_descr

val close : Unix.file_descr -> unit

(** One request/response exchange on an open connection. [Error] carries
    a decode problem or an early close; framing problems raise
    {!Protocol.Framing_error}. *)
val request :
  Unix.file_descr -> Protocol.request -> (Protocol.response, string) result

(** [with_connection addr f] — connect, run [f], always close. *)
val with_connection : Unix.sockaddr -> (Unix.file_descr -> 'a) -> 'a

(** Connect, send one request, close. *)
val oneshot :
  Unix.sockaddr -> Protocol.request -> (Protocol.response, string) result

(** [request_with_retry ?retries ?backoff_s ?max_backoff_s addr req] —
    {!oneshot} with up to [retries] (default 4) additional attempts and
    jittered exponential backoff starting at [backoff_s] (default 0.05),
    capped at [max_backoff_s] (default 2).

    Retries on: connection-level failures (refused/reset/EPIPE/framing
    errors/early close), [Busy] (sleeping at least the daemon's
    [retry_after_s] hint), and [Failed] with code ["crashed"] (a
    transient worker loss). Does {e not} retry [deadline] or
    [bad_request] failures — those are deterministic.

    A [Run]/[Eval] without a [request_key] is stamped with a fresh
    process-unique key before the first attempt, so every retry carries
    the same key and a request whose response was lost in flight is
    answered from the daemon's idempotency cache rather than recomputed.
    [Error] reports the last failure once attempts are exhausted. *)
val request_with_retry :
  ?retries:int -> ?backoff_s:float -> ?max_backoff_s:float ->
  Unix.sockaddr -> Protocol.request -> (Protocol.response, string) result

(** Poll [Ping] until the daemon answers — any decoded response counts
    as ready, including [Busy] or [Failed]; [false] once [timeout_s]
    (default 10) elapses first. For scripts that just forked the
    server. *)
val wait_ready : ?timeout_s:float -> Unix.sockaddr -> bool
