(* Wire protocol of the serve daemon: length-prefixed JSON frames over a
   stream socket. A frame is a 4-byte big-endian payload length followed
   by that many bytes of compact JSON ({!Suite.Report.Json}); both
   directions use the same framing, one request frame begets exactly one
   response frame, and a connection carries any number of request/response
   pairs sequentially. *)

module Json = Suite.Report.Json

exception Framing_error of string
exception Timeout

(* Generous for any realistic response (a stats or run summary is a few
   hundred bytes) while bounding what a broken or hostile peer can make
   the daemon allocate. *)
let max_frame = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Injectable I/O faults                                               *)
(* ------------------------------------------------------------------ *)

(* The chaos harness hands the framing layer a decision function that is
   consulted before every syscall. [Fault_eintr] simulates a signal
   landing mid-syscall (the loops below must retry, not surface a lost
   connection); [Fault_stall] parks the thread mid-frame (the deadline
   machinery must bound it); [Fault_short n] caps one write at [n]
   bytes (the write loop must finish the rest). *)
type io_fault =
  | Fault_eintr
  | Fault_stall of float
  | Fault_short of int

type faults = { on_io : [ `Read | `Write ] -> io_fault option }

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

(* Wait until [fd] is readable or [deadline] (Monoclock scale) passes.
   EINTR during the park is not an event, just a reason to re-arm. *)
let rec wait_readable fd deadline =
  let remaining = deadline -. Core.Monoclock.now () in
  if remaining <= 0. then raise Timeout
  else
    match Unix.select [ fd ] [] [] remaining with
    | [], _, _ -> raise Timeout
    | _ :: _, _, _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd deadline

let apply_fault faults dir name =
  match faults with
  | None -> ()
  | Some { on_io } -> (
    match on_io dir with
    | None -> ()
    | Some Fault_eintr -> raise (Unix.Unix_error (Unix.EINTR, name, "injected"))
    | Some (Fault_stall s) -> Unix.sleepf s
    | Some (Fault_short _) -> ())

(* A short-write cap, when the fault injector orders one. *)
let write_cap faults n =
  match faults with
  | None -> n
  | Some { on_io } -> (
    match on_io `Write with
    | Some (Fault_short c) -> max 1 (min c n)
    | Some Fault_eintr -> raise (Unix.Unix_error (Unix.EINTR, "write", "injected"))
    | Some (Fault_stall s) ->
      Unix.sleepf s;
      n
    | None -> n)

let really_write ?faults fd buf =
  let n = Bytes.length buf in
  let rec go off =
    if off < n then
      match
        let len = write_cap faults (n - off) in
        Unix.write fd buf off len
      with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (* A signal mid-write is not a lost connection: the kernel wrote
           nothing, the offset is still right — go again. *)
        go off
  in
  go 0

(* [None] on clean EOF at a frame boundary; raises {!Framing_error} on a
   torn frame, {!Timeout} once [deadline] passes with the read
   incomplete. *)
let really_read ?deadline ?faults fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Some buf
    else begin
      (match deadline with
      | Some d -> wait_readable fd d
      | None -> ());
      match
        apply_fault faults `Read "read";
        Unix.read fd buf off (n - off)
      with
      | 0 -> if off = 0 then None else raise (Framing_error "truncated frame")
      | r -> go (off + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

let write_frame ?faults fd json =
  let payload = Bytes.of_string (Json.to_compact_string json) in
  let n = Bytes.length payload in
  if n > max_frame then raise (Framing_error "frame too large");
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  really_write ?faults fd hdr;
  really_write ?faults fd payload

(* [timeout_s] bounds the whole frame, idle wait included: the deadline
   is fixed before the first header byte, so neither a silent peer nor a
   mid-frame staller can hold the fd past it. *)
let read_frame ?timeout_s ?faults fd =
  let deadline = Option.map (fun s -> Core.Monoclock.now () +. s) timeout_s in
  match really_read ?deadline ?faults fd 4 with
  | None -> None
  | Some hdr ->
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_frame then
      raise (Framing_error (Printf.sprintf "bad frame length %d" n));
    (match really_read ?deadline ?faults fd n with
    | None -> raise (Framing_error "truncated frame")
    | Some payload -> (
      match Json.of_string (Bytes.to_string payload) with
      | Ok json -> Some json
      | Error e -> raise (Framing_error ("bad frame payload: " ^ e))))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Run of { spec : string; timeout_s : float option; request_key : string option }
  | Eval of { spec : string; timeout_s : float option; request_key : string option }
  | Sleep of { seconds : float; timeout_s : float option }
  | Stats
  | Ping
  | Shutdown

let request_key = function
  | Run { request_key; _ } | Eval { request_key; _ } -> request_key
  | Sleep _ | Stats | Ping | Shutdown -> None

let with_request_key request key =
  match request with
  | Run r -> Run { r with request_key = Some key }
  | Eval r -> Eval { r with request_key = Some key }
  | Sleep _ | Stats | Ping | Shutdown -> request

let timeout_field = function
  | None -> []
  | Some s -> [ ("timeout_s", Json.Num s) ]

let key_field = function
  | None -> []
  | Some k -> [ ("request_key", Json.Str k) ]

let encode_request = function
  | Run { spec; timeout_s; request_key } ->
    Json.Obj
      ([ ("op", Json.Str "run"); ("spec", Json.Str spec) ]
      @ timeout_field timeout_s @ key_field request_key)
  | Eval { spec; timeout_s; request_key } ->
    Json.Obj
      ([ ("op", Json.Str "eval"); ("spec", Json.Str spec) ]
      @ timeout_field timeout_s @ key_field request_key)
  | Sleep { seconds; timeout_s } ->
    Json.Obj
      ([ ("op", Json.Str "sleep"); ("seconds", Json.Num seconds) ]
      @ timeout_field timeout_s)
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Ping -> Json.Obj [ ("op", Json.Str "ping") ]
  | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ]

let decode_request json =
  let timeout_s = Json.to_float (Json.member "timeout_s" json) in
  let request_key = Json.to_str (Json.member "request_key" json) in
  match Json.to_str (Json.member "op" json) with
  | Some "run" -> (
    match Json.to_str (Json.member "spec" json) with
    | Some spec -> Ok (Run { spec; timeout_s; request_key })
    | None -> Error "run request needs a \"spec\" string")
  | Some "eval" -> (
    match Json.to_str (Json.member "spec" json) with
    | Some spec -> Ok (Eval { spec; timeout_s; request_key })
    | None -> Error "eval request needs a \"spec\" string")
  | Some "sleep" -> (
    match Json.to_float (Json.member "seconds" json) with
    | Some seconds -> Ok (Sleep { seconds; timeout_s })
    | None -> Error "sleep request needs a \"seconds\" number")
  | Some "stats" -> Ok Stats
  | Some "ping" -> Ok Ping
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "request needs an \"op\" string"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type response =
  | Completed of { op : string; body : Json.t }
  | Busy of { retry_after_s : float }
  | Failed of { code : string; detail : string }

let encode_response = function
  | Completed { op; body } ->
    Json.Obj
      [ ("status", Json.Str "ok"); ("op", Json.Str op); ("body", body) ]
  | Busy { retry_after_s } ->
    Json.Obj
      [ ("status", Json.Str "busy"); ("retry_after_s", Json.Num retry_after_s) ]
  | Failed { code; detail } ->
    Json.Obj
      [ ("status", Json.Str "error"); ("code", Json.Str code);
        ("detail", Json.Str detail) ]

let decode_response json =
  match Json.to_str (Json.member "status" json) with
  | Some "ok" -> (
    match Json.member "op" json |> Json.to_str with
    | Some op ->
      let body =
        Option.value (Json.member "body" json) ~default:Json.Null
      in
      Ok (Completed { op; body })
    | None -> Error "ok response needs an \"op\" string")
  | Some "busy" -> (
    match Json.to_float (Json.member "retry_after_s" json) with
    | Some retry_after_s -> Ok (Busy { retry_after_s })
    | None -> Error "busy response needs a \"retry_after_s\" number")
  | Some "error" -> (
    match (Json.to_str (Json.member "code" json),
           Json.to_str (Json.member "detail" json)) with
    | Some code, Some detail -> Ok (Failed { code; detail })
    | _ -> Error "error response needs \"code\" and \"detail\" strings")
  | Some s -> Error (Printf.sprintf "unknown status %S" s)
  | None -> Error "response needs a \"status\" string"
