(* Wire protocol of the serve daemon: length-prefixed JSON frames over a
   stream socket. A frame is a 4-byte big-endian payload length followed
   by that many bytes of compact JSON ({!Suite.Report.Json}); both
   directions use the same framing, one request frame begets exactly one
   response frame, and a connection carries any number of request/response
   pairs sequentially. *)

module Json = Suite.Report.Json

exception Framing_error of string

(* Generous for any realistic response (a stats or run summary is a few
   hundred bytes) while bounding what a broken or hostile peer can make
   the daemon allocate. *)
let max_frame = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let really_write fd buf =
  let n = Bytes.length buf in
  let rec go off =
    if off < n then
      let w = Unix.write fd buf off (n - off) in
      go (off + w)
  in
  go 0

(* [None] on clean EOF at a frame boundary; raises {!Framing_error} on a
   torn frame or one beyond {!max_frame}. *)
let really_read fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Some buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 then None else raise (Framing_error "truncated frame")
      | r -> go (off + r)
  in
  go 0

let write_frame fd json =
  let payload = Bytes.of_string (Json.to_compact_string json) in
  let n = Bytes.length payload in
  if n > max_frame then raise (Framing_error "frame too large");
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  really_write fd hdr;
  really_write fd payload

let read_frame fd =
  match really_read fd 4 with
  | None -> None
  | Some hdr ->
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_frame then
      raise (Framing_error (Printf.sprintf "bad frame length %d" n));
    (match really_read fd n with
    | None -> raise (Framing_error "truncated frame")
    | Some payload -> (
      match Json.of_string (Bytes.to_string payload) with
      | Ok json -> Some json
      | Error e -> raise (Framing_error ("bad frame payload: " ^ e))))

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Run of { spec : string; timeout_s : float option }
  | Eval of { spec : string; timeout_s : float option }
  | Sleep of { seconds : float; timeout_s : float option }
  | Stats
  | Ping
  | Shutdown

let timeout_field = function
  | None -> []
  | Some s -> [ ("timeout_s", Json.Num s) ]

let encode_request = function
  | Run { spec; timeout_s } ->
    Json.Obj
      ([ ("op", Json.Str "run"); ("spec", Json.Str spec) ]
      @ timeout_field timeout_s)
  | Eval { spec; timeout_s } ->
    Json.Obj
      ([ ("op", Json.Str "eval"); ("spec", Json.Str spec) ]
      @ timeout_field timeout_s)
  | Sleep { seconds; timeout_s } ->
    Json.Obj
      ([ ("op", Json.Str "sleep"); ("seconds", Json.Num seconds) ]
      @ timeout_field timeout_s)
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Ping -> Json.Obj [ ("op", Json.Str "ping") ]
  | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ]

let decode_request json =
  let timeout_s = Json.to_float (Json.member "timeout_s" json) in
  match Json.to_str (Json.member "op" json) with
  | Some "run" -> (
    match Json.to_str (Json.member "spec" json) with
    | Some spec -> Ok (Run { spec; timeout_s })
    | None -> Error "run request needs a \"spec\" string")
  | Some "eval" -> (
    match Json.to_str (Json.member "spec" json) with
    | Some spec -> Ok (Eval { spec; timeout_s })
    | None -> Error "eval request needs a \"spec\" string")
  | Some "sleep" -> (
    match Json.to_float (Json.member "seconds" json) with
    | Some seconds -> Ok (Sleep { seconds; timeout_s })
    | None -> Error "sleep request needs a \"seconds\" number")
  | Some "stats" -> Ok Stats
  | Some "ping" -> Ok Ping
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "request needs an \"op\" string"

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type response =
  | Completed of { op : string; body : Json.t }
  | Busy of { retry_after_s : float }
  | Failed of { code : string; detail : string }

let encode_response = function
  | Completed { op; body } ->
    Json.Obj
      [ ("status", Json.Str "ok"); ("op", Json.Str op); ("body", body) ]
  | Busy { retry_after_s } ->
    Json.Obj
      [ ("status", Json.Str "busy"); ("retry_after_s", Json.Num retry_after_s) ]
  | Failed { code; detail } ->
    Json.Obj
      [ ("status", Json.Str "error"); ("code", Json.Str code);
        ("detail", Json.Str detail) ]

let decode_response json =
  match Json.to_str (Json.member "status" json) with
  | Some "ok" -> (
    match Json.member "op" json |> Json.to_str with
    | Some op ->
      let body =
        Option.value (Json.member "body" json) ~default:Json.Null
      in
      Ok (Completed { op; body })
    | None -> Error "ok response needs an \"op\" string")
  | Some "busy" -> (
    match Json.to_float (Json.member "retry_after_s" json) with
    | Some retry_after_s -> Ok (Busy { retry_after_s })
    | None -> Error "busy response needs a \"retry_after_s\" number")
  | Some "error" -> (
    match (Json.to_str (Json.member "code" json),
           Json.to_str (Json.member "detail" json)) with
    | Some code, Some detail -> Ok (Failed { code; detail })
    | _ -> Error "error response needs \"code\" and \"detail\" strings")
  | Some s -> Error (Printf.sprintf "unknown status %S" s)
  | None -> Error "response needs a \"status\" string"
